package svc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/netsim"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// newSimService builds a simulator-mode service plus its fabric front:
// client nodes [0, clients), shard nodes [clients, clients+shardSlots).
// Must be called from a simulation process.
func newSimService(t *testing.T, k *sim.Kernel, shards, clients, shardSlots int, adm AdmissionConfig) (*Service, *Front) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })
	fabric := netsim.New(k, netsim.DefaultConfig(clients+shardSlots))
	s, err := New(Options{
		Shards: shards,
		OpenShard: func(i int) (*core.Manager, error) {
			return core.NewManager("store", core.ManagerOptions{
				Store: core.StoreOptions{
					FS:       vfs.NewMemFS(),
					Platform: lsm.SimPlatform(k),
					Async:    true,
				},
				Kernel: k,
				Obs:    reg,
			})
		},
		Kernel:    k,
		Obs:       reg,
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, shardSlots)
	for i := range nodes {
		nodes[i] = clients + i
	}
	return s, NewFront(s, fabric, nodes)
}

func TestFrontBasic(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f := newSimService(t, k, 2, 2, 2, AdmissionConfig{})
		defer s.Close()
		a := f.Connect("app-a", 0)
		b := f.Connect("app-b", 1)
		if got := s.reg.Gauge("svc.conns").Load(); got != 2 {
			t.Errorf("svc.conns = %d, want 2", got)
		}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("step000/block%03d", i)
			if err := a.Put(key, []byte(fmt.Sprintf("a%03d", i))); err != nil {
				t.Fatal(err)
			}
			if err := b.Put(key, []byte(fmt.Sprintf("b%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Barrier(); err != nil {
			t.Fatal(err)
		}
		if err := b.Barrier(); err != nil {
			t.Fatal(err)
		}
		v, err := a.Get("step000/block011")
		if err != nil || string(v) != "a011" {
			t.Fatalf("tenant a read %q, %v", v, err)
		}
		v, err = b.Get("step000/block011")
		if err != nil || string(v) != "b011" {
			t.Fatalf("tenant b read %q, %v", v, err)
		}
		if _, err := a.Get("absent"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("miss over fabric = %v, want ErrNotFound", err)
		}
		count := 0
		if err := a.Scan("step000/", func(k string, v []byte) bool {
			if !bytes.HasPrefix(v, []byte("a")) {
				t.Fatalf("scan leaked foreign value %q", v)
			}
			count++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if count != 40 {
			t.Fatalf("scan found %d keys, want 40", count)
		}
		if err := a.Del("step000/block011"); err != nil {
			t.Fatal(err)
		}
		if err := a.Barrier(); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Get("step000/block011"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key still readable: %v", err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Put("x", nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("Put on closed client = %v, want ErrClosed", err)
		}
		// Both shards saw traffic (the hash spread the namespaces).
		s0 := s.reg.Counter("svc.shard.000.ops").Load()
		s1 := s.reg.Counter("svc.shard.001.ops").Load()
		if s0 == 0 || s1 == 0 {
			t.Errorf("shard ops skewed: %d / %d", s0, s1)
		}
		f.Stop(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// faultyBarrierStore fails WriteBarrier with a transient fault, for
// the wire-taxonomy regression over the sharded front.
type faultyBarrierStore struct {
	core.Store
	fail error
}

func (f *faultyBarrierStore) WriteBarrier(sync bool) error {
	if f.fail != nil {
		return f.fail
	}
	return f.Store.WriteBarrier(sync)
}

type stallErr struct{}

func (stallErr) Error() string        { return "svc-test: engine stalled" }
func (stallErr) TransientFault() bool { return true }

// TestFrontErrorClassRoundTrip: a transient stall raised inside a
// shard store must reach the fabric client still classified transient
// (as a resil.ClassError), not collapsed into a generic failure.
func TestFrontErrorClassRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		reg := obs.NewRegistry()
		reg.SetClock(func() time.Duration { return k.Now().Duration() })
		fabric := netsim.New(k, netsim.DefaultConfig(2))
		var faulty *faultyBarrierStore
		s, err := New(Options{
			Shards: 1,
			OpenShard: func(i int) (*core.Manager, error) {
				st, err := core.OpenStore("store", core.StoreOptions{
					FS:       vfs.NewMemFS(),
					Platform: lsm.SimPlatform(k),
					Async:    true,
					Obs:      reg,
				})
				if err != nil {
					return nil, err
				}
				faulty = &faultyBarrierStore{Store: st}
				return core.NewManager("", core.ManagerOptions{Kernel: k, Remote: faulty, Obs: reg})
			},
			Kernel: k,
			Obs:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		f := NewFront(s, fabric, []int{1})
		c := f.Connect("app", 0)
		if err := c.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		faulty.fail = stallErr{}
		err = c.Barrier()
		if err == nil {
			t.Fatal("expected the shard's barrier fault to round-trip")
		}
		if got := resil.Classify(err); got != resil.ClassTransient {
			t.Fatalf("round-tripped error classified %v, want transient (err: %v)", got, err)
		}
		var ce *resil.ClassError
		if !errors.As(err, &ce) || ce.Msg == "" {
			t.Fatalf("want a resil.ClassError carrying the shard's message, got %T %v", err, err)
		}
		faulty.fail = nil
		if err := c.Barrier(); err != nil {
			t.Fatalf("barrier after fault cleared: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontRebalanceUnderLoad grows the pool while tenants are
// committing over the fabric; every acknowledged write must survive
// the handoff and the epoch must advance exactly once.
func TestFrontRebalanceUnderLoad(t *testing.T) {
	k := sim.NewKernel()
	s, f := func() (s *Service, f *Front) {
		k.Spawn("setup", func(p *sim.Proc) {
			s, f = newSimService(t, k, 2, 3, 5, AdmissionConfig{})
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return
	}()
	if s == nil {
		t.Fatal("setup failed")
	}

	const tenants, steps, blocks = 3, 6, 25
	acks := make([]int, tenants)
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("tenant%d", ti), func(p *sim.Proc) {
			c := f.Connect(fmt.Sprintf("tenant%d", ti), ti)
			for st := 0; st < steps; st++ {
				for b := 0; b < blocks; b++ {
					key := fmt.Sprintf("step%03d/block%03d", st, b)
					if err := c.Put(key, []byte(fmt.Sprintf("%d-%s", ti, key))); err != nil {
						t.Errorf("tenant %d put: %v", ti, err)
						return
					}
				}
				if err := c.Barrier(); err != nil {
					t.Errorf("tenant %d barrier: %v", ti, err)
					return
				}
				acks[ti] += blocks
			}
		})
	}
	k.Spawn("rebalancer", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond) // let load build up
		if err := s.Rebalance(5); err != nil {
			t.Errorf("rebalance: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 || s.Shards() != 5 {
		t.Fatalf("epoch=%d shards=%d after rebalance", s.Epoch(), s.Shards())
	}

	k.Spawn("verify", func(p *sim.Proc) {
		for ti := 0; ti < tenants; ti++ {
			c := f.Connect(fmt.Sprintf("tenant%d", ti), ti)
			count := 0
			if err := c.Scan("", func(key string, v []byte) bool {
				want := fmt.Sprintf("%d-%s", ti, key)
				if string(v) != want {
					t.Errorf("tenant %d key %s holds %q", ti, key, v)
				}
				count++
				return true
			}); err != nil {
				t.Error(err)
				return
			}
			if count != acks[ti] {
				t.Errorf("tenant %d: %d keys present, %d acknowledged", ti, count, acks[ti])
			}
		}
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontFairShareIsolation is the admission headline in miniature:
// with a shared byte capacity, a flooding tenant is paced at its share
// while a polite tenant's requests see negligible admission wait.
func TestFrontFairShareIsolation(t *testing.T) {
	k := sim.NewKernel()
	var s *Service
	var f *Front
	k.Spawn("setup", func(p *sim.Proc) {
		s, f = newSimService(t, k, 2, 2, 2, AdmissionConfig{
			CapacityBytesPerSec: 64 << 20,
			MaxWait:             time.Second,
		})
		if _, err := s.RegisterTenant("noisy", TenantConfig{Weight: 1}); err != nil {
			t.Error(err)
		}
		if _, err := s.RegisterTenant("polite", TenantConfig{Weight: 1}); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s == nil || t.Failed() {
		t.Fatal("setup failed")
	}
	done := 0
	k.Spawn("noisy", func(p *sim.Proc) {
		c := f.Connect("noisy", 0)
		for i := 0; i < 100; i++ {
			if err := c.Put(fmt.Sprintf("n%04d", i), make([]byte, 1<<20)); err != nil {
				var qe *QuotaError
				if errors.As(err, &qe) {
					p.Sleep(qe.RetryAfter)
					i--
					continue
				}
				t.Errorf("noisy put: %v", err)
				return
			}
		}
		done++
	})
	k.Spawn("polite", func(p *sim.Proc) {
		c := f.Connect("polite", 1)
		for i := 0; i < 50; i++ {
			if err := c.Put(fmt.Sprintf("p%04d", i), make([]byte, 64<<10)); err != nil {
				t.Errorf("polite put: %v", err)
				return
			}
			p.Sleep(2 * time.Millisecond)
		}
		done++
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("only %d/2 tenants completed", done)
	}
	noisyW := s.reg.Histogram("svc.tenant.noisy.admission_wait_ns").Snapshot().Quantile(0.99)
	politeW := s.reg.Histogram("svc.tenant.polite.admission_wait_ns").Snapshot().Quantile(0.99)
	if politeW >= noisyW {
		t.Fatalf("polite p99 admission wait %v not below noisy %v", politeW, noisyW)
	}
	// The polite tenant's demand (~1.6 MB/s) is far below its 32 MB/s
	// share: its requests should be admitted essentially immediately.
	if politeW > int64(time.Millisecond) {
		t.Fatalf("polite tenant waited %v at p99; fair share failed to isolate it", politeW)
	}
	k.Spawn("teardown", func(p *sim.Proc) { s.Close() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
