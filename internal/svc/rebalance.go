package svc

import (
	"errors"
	"fmt"

	"lsmio/internal/core"
)

// Rebalance grows or shrinks the shard pool to n shards without
// dropping any acknowledged write. The protocol (DESIGN.md §12):
//
//  1. Open any new shard stores. Writes keep flowing under the old
//     ring, which stays authoritative for reads and writes throughout
//     the copy phase.
//  2. Warm pass: copy every key whose target-ring owner differs from
//     its current owner, overwriting stale copies. Writers are not
//     blocked; deletes shadow onto the target ring so a migrated copy
//     cannot resurrect a deleted key.
//  3. Cutover: pause new writes, fence until every in-flight write has
//     been applied, then run delta passes until one copies nothing.
//     Under quiescence this converges in at most two passes.
//  4. Flush the shards that received copies, atomically flip the ring,
//     resume writers.
//  5. Cleanup: delete the now non-owned source copies (scans filter by
//     ring ownership, so stale copies are invisible even before
//     cleanup finishes) and close removed shards.
//
// SetRebalanceHook installs fn to be called at each rebalance phase
// ("open", "warm", "fence", "delta", "flip", "cleanup"), from the
// rebalancing process itself. The chaos sweeps use it to inject shard
// crashes at every phase boundary; production code leaves it nil.
func (s *Service) SetRebalanceHook(fn func(phase string)) {
	s.mu.Lock()
	s.phaseHook = fn
	s.mu.Unlock()
}

func (s *Service) hook(phase string) {
	s.mu.RLock()
	fn := s.phaseHook
	s.mu.RUnlock()
	if fn != nil {
		fn(phase)
	}
}

// Inside the simulator Rebalance must run in a simulation process. One
// rebalance may run at a time; concurrent calls fail with
// ErrRebalancing.
func (s *Service) Rebalance(n int) error {
	if n <= 0 {
		return errors.New("svc: rebalance needs at least one shard")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.rebalancing {
		s.mu.Unlock()
		return ErrRebalancing
	}
	s.rebalancing = true
	old := len(s.shards)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.rebalancing = false
		s.mu.Unlock()
	}()
	if n == old {
		return nil
	}
	s.cRebalances.Inc()

	// 1. Open new shards (no locks held: opening performs store I/O).
	s.hook("open")
	var added []*shard
	for i := old; i < n; i++ {
		sh, err := s.openShard(i)
		if err != nil {
			for _, a := range added {
				a.mgr.Close()
			}
			return err
		}
		added = append(added, sh)
	}
	s.mu.Lock()
	s.shards = append(s.shards, added...)
	s.next = NewRing(n)
	s.mu.Unlock()

	// 2. Warm pass with writes flowing.
	s.hook("warm")
	if _, err := s.migratePass(); err != nil {
		return s.abortRebalance(added, err)
	}

	// 3. Cutover: take ownership of the pause gate (a shard restart
	// also needs it), quiesce, then delta passes until clean.
	s.acquireCutover()
	s.setPaused(true)
	s.fenceWrites()
	s.hook("fence")
	abortCutover := func(err error) error {
		s.setPaused(false)
		s.releaseCutover()
		return s.abortRebalance(added, err)
	}
	s.hook("delta")
	for {
		moved, err := s.migratePass()
		if err != nil {
			return abortCutover(err)
		}
		if moved == 0 {
			break
		}
	}

	// 4. Make the copies durable, then flip.
	s.mu.RLock()
	receivers := append([]*shard(nil), s.shards...)
	s.mu.RUnlock()
	for _, sh := range receivers {
		if err := s.applyBarrier(sh); err != nil {
			return abortCutover(err)
		}
	}
	s.hook("flip")
	s.mu.Lock()
	s.ring = s.next
	s.next = nil
	s.epoch++
	var removed []*shard
	if n < len(s.shards) {
		removed = append(removed, s.shards[n:]...)
		s.shards = s.shards[:n]
	}
	kept := append([]*shard(nil), s.shards...)
	ring := s.ring
	s.mu.Unlock()
	s.setPaused(false)
	s.releaseCutover()
	s.gShards.Set(int64(n))
	s.gEpoch.Set(int64(s.Epoch()))

	// 5. Cleanup stale source copies and retire removed shards.
	s.hook("cleanup")
	for _, sh := range kept {
		if err := s.dropForeign(ring, sh); err != nil {
			return err
		}
	}
	var first error
	for _, sh := range removed {
		if err := s.closeShard(sh); err != nil && first == nil {
			first = err
		}
	}
	if err := s.writeManifest(); err != nil && first == nil {
		first = err
	}
	return first
}

// abortRebalance unwinds a failed rebalance: the old ring stays
// authoritative, the target ring is dropped, and newly opened shards
// are closed again (any partial copies on them are harmless — they are
// filtered by ring ownership and deleted on the next attempt).
func (s *Service) abortRebalance(added []*shard, cause error) error {
	s.mu.Lock()
	s.next = nil
	if len(added) > 0 {
		s.shards = s.shards[:len(s.shards)-len(added)]
	}
	s.mu.Unlock()
	for _, sh := range added {
		s.closeShard(sh)
	}
	return fmt.Errorf("svc: rebalance aborted: %w", cause)
}

// closeShard retires a shard's manager if it still has one (a crashed
// shard may already be detached by the supervisor).
func (s *Service) closeShard(sh *shard) error {
	s.lock(sh)
	mgr := sh.mgr
	sh.mgr = nil
	s.unlock(sh)
	if mgr == nil {
		return nil
	}
	return mgr.Close()
}

// migratePass sweeps every shard and copies keys whose target-ring
// owner differs, skipping copies that are already current. It returns
// how many keys it copied; a zero return means the pools are in sync.
func (s *Service) migratePass() (int, error) {
	s.mu.RLock()
	shards := append([]*shard(nil), s.shards...)
	target := s.next
	s.mu.RUnlock()
	if target == nil {
		return 0, nil
	}
	s.cPasses.Inc()
	moved := 0
	for _, src := range shards {
		// Collect first, then copy: mutating the destination shards
		// while a source scan is open keeps iterator semantics simple.
		// A crashed shard surfaces a typed ShardDownError, so the
		// rebalance aborts cleanly and can be retried after recovery.
		var pending []Pair
		s.lock(src)
		err := s.shardUp(src)
		if err == nil {
			err = src.mgr.ReadBatch(nsRoot, func(k string, v []byte) bool {
				if target.Route(k) != src.idx {
					pending = append(pending, Pair{Key: k, Value: append([]byte(nil), v...)})
				}
				return true
			})
		}
		s.unlock(src)
		if err != nil {
			return moved, err
		}
		for _, pr := range pending {
			dst := shards[target.Route(pr.Key)]
			s.lock(dst)
			if err := s.shardUp(dst); err != nil {
				s.unlock(dst)
				return moved, err
			}
			cur, err := dst.mgr.Get(pr.Key)
			if err == nil && keyEqual(cur, pr.Value) {
				s.unlock(dst)
				continue
			}
			if err != nil && !errors.Is(err, core.ErrNotFound) {
				s.unlock(dst)
				return moved, err
			}
			err = dst.mgr.Put(pr.Key, pr.Value)
			s.unlock(dst)
			if err != nil {
				return moved, err
			}
			moved++
		}
	}
	s.cMoved.Add(int64(moved))
	return moved, nil
}

// dropForeign deletes every key on sh that the (new) authoritative
// ring routes elsewhere — the source copies left behind by migration.
func (s *Service) dropForeign(ring *Ring, sh *shard) error {
	var stale []string
	s.lock(sh)
	err := s.shardUp(sh)
	if err == nil {
		err = sh.mgr.ReadBatch(nsRoot, func(k string, v []byte) bool {
			if ring.Route(k) != sh.idx {
				stale = append(stale, k)
			}
			return true
		})
	}
	s.unlock(sh)
	if err != nil {
		return err
	}
	for _, k := range stale {
		s.lock(sh)
		err := s.shardUp(sh)
		if err == nil {
			err = sh.mgr.Del(k)
		}
		s.unlock(sh)
		if err != nil {
			return err
		}
	}
	return nil
}
