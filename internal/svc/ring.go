package svc

import (
	"fmt"
	"sort"
)

// ringVnodes is the number of virtual points each shard contributes to
// the hash ring. 64 points per shard keeps the key-ownership imbalance
// across shards within a few tens of percent while keeping ring
// construction and routing cheap.
const ringVnodes = 64

// Ring is a consistent-hash routing table over a contiguous set of
// shards [0, Shards). Each shard owns the arc between its predecessor
// point and each of its virtual points, so growing the ring from N to
// N+1 shards moves only the keys that land on the new shard's points —
// every key that stays owned keeps its previous owner. A Ring is
// immutable after construction; the Service swaps whole rings when it
// rebalances.
type Ring struct {
	shards int
	points []ringPoint // sorted by (hash, shard)
}

type ringPoint struct {
	hash  uint64
	shard int
}

// fnv64a is the FNV-1a 64-bit hash, inlined so routing does not
// allocate a hash.Hash per key.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// NewRing builds the routing table for the given shard count.
func NewRing(shards int) *Ring {
	if shards <= 0 {
		panic("svc: ring needs at least one shard")
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*ringVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVnodes; v++ {
			h := fnv64a(fmt.Sprintf("shard-%d/vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring routes over.
func (r *Ring) Shards() int { return r.shards }

// Route returns the shard that owns key: the shard of the first ring
// point at or after the key's hash, wrapping at the top of the hash
// space.
func (r *Ring) Route(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
