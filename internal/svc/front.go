package svc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lsmio/internal/netsim"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// Front is the simulated-fabric transport for a Service: one server
// process per shard slot, each draining a FIFO request queue, with
// clients on compute nodes paying netsim transfer costs for requests
// and replies. It generalizes the single-store core.KVService loop to
// the sharded, multi-tenant case; admission control runs client-side
// (modelling credit-based flow control), so a throttled tenant's
// requests never occupy fabric or shard-queue capacity.
type Front struct {
	s          *Service
	fabric     *netsim.Fabric
	shardNodes []int
	queues     []*sim.Queue
	qDepth     []*obs.Gauge
}

type frontOp int

const (
	fopPut frontOp = iota
	fopDel
	fopGet
	fopScan
	fopBarrier
	fopStop
)

type frontReq struct {
	op    frontOp
	shard int
	key   string // namespaced key (or scan prefix)
	value []byte
	write bool // registered via enterWrites; server must exitWrite
	reply *sim.Queue
}

type frontRep struct {
	value    []byte
	pairs    []Pair
	notFound bool
	errClass resil.Class
	errMsg   string
}

func (rep *frontRep) encodeErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrNotFound) {
		rep.notFound = true
		return
	}
	rep.errClass = resil.Classify(err)
	rep.errMsg = err.Error()
}

func (rep *frontRep) decodeErr() error {
	if rep.notFound {
		return ErrNotFound
	}
	if rep.errMsg == "" && rep.errClass == resil.ClassOK {
		return nil
	}
	return &resil.ClassError{C: rep.errClass, Msg: rep.errMsg}
}

// frontOpCost models the per-request CPU the shard server spends on
// decode/dispatch, matching the collective-I/O leader's cost.
const frontOpCost = 3 * time.Microsecond

// NewFront starts shard server processes over fabric. shardNodes maps
// shard index to fabric endpoint and must be sized for the largest
// shard count the service will ever rebalance to. Requires a service
// running inside the simulator.
func NewFront(s *Service, fabric *netsim.Fabric, shardNodes []int) *Front {
	if s.kern == nil {
		panic("svc: NewFront requires a simulator-mode service")
	}
	if len(shardNodes) < s.Shards() {
		panic("svc: shardNodes must cover every shard")
	}
	f := &Front{s: s, fabric: fabric, shardNodes: shardNodes}
	for i := range shardNodes {
		i := i
		f.queues = append(f.queues, sim.NewQueue(s.kern, fmt.Sprintf("svc-shard%d", i)))
		f.qDepth = append(f.qDepth, s.reg.Gauge(fmt.Sprintf("svc.shard.%03d.queue_max", i)))
		s.kern.Spawn(fmt.Sprintf("svc-shard-%d", i), func(p *sim.Proc) {
			f.serve(p, i)
		}).SetDaemon(true)
	}
	return f
}

// serve is one shard's server loop: FIFO application of requests onto
// the shard's Manager, with write-fence bookkeeping (a write counts as
// in flight from client admission until it is applied here).
func (f *Front) serve(p *sim.Proc, idx int) {
	s := f.s
	for {
		req := f.queues[idx].Recv(p).(frontReq)
		if req.op == fopStop {
			if req.reply != nil {
				req.reply.Send(frontRep{})
			}
			return
		}
		f.qDepth[idx].SetMax(int64(f.queues[idx].Len() + 1))
		p.Sleep(frontOpCost)
		var rep frontRep
		var err error
		sh := s.shardAt(req.shard)
		if sh == nil {
			err = fmt.Errorf("svc: shard %d not in pool", req.shard)
		} else {
			switch req.op {
			case fopPut:
				err = s.applyPut(sh, req.key, req.value)
			case fopDel:
				err = s.applyDel(sh, req.key)
			case fopGet:
				rep.value, err = s.applyGet(sh, req.key)
			case fopScan:
				ring, _ := s.snapshotRing()
				rep.pairs, err = s.scanShard(ring, sh, req.key)
			case fopBarrier:
				err = s.applyBarrier(sh)
			}
		}
		if req.write {
			s.exitWrite()
		}
		if err != nil && req.reply == nil {
			// Asynchronous writes have no reply to carry the error;
			// count it so the loss is visible in snapshots.
			s.cApplyErrs.Inc()
		}
		rep.encodeErr(err)
		if req.reply != nil {
			req.reply.Send(rep)
		}
	}
}

// Stop shuts every shard server down (mainly for tests; the servers
// are daemons and do not hold the simulation open).
func (f *Front) Stop(p *sim.Proc) {
	for _, q := range f.queues {
		reply := sim.NewQueue(f.s.kern, "svc-stop")
		q.Send(frontReq{op: fopStop, reply: reply})
		reply.Recv(p)
	}
}

// Connect opens a tenant client at the given fabric endpoint,
// registering the tenant on first use.
func (f *Front) Connect(tenant string, node int) *Client {
	f.s.gConns.Add(1)
	return &Client{f: f, ts: f.s.adm.tenant(tenant, nil), node: node}
}

// Client is the fabric-transport tenant client. It mirrors Tenant's
// semantics with every operation paying fabric transfer and shard
// queueing costs. A Client is bound to one simulation process at a
// time (like core.RemoteStore).
type Client struct {
	f      *Front
	ts     *tenantState
	node   int
	closed bool
}

// Tenant returns the tenant name the client is bound to.
func (c *Client) Tenant() string { return c.ts.name }

func (c *Client) proc() *sim.Proc {
	p := c.f.s.kern.Current()
	if p == nil {
		panic("svc: fabric Client used outside a simulation process")
	}
	return p
}

// admit runs client-side admission, sleeping out any fair-share delay.
func (c *Client) admit(nBytes, nOps int) error {
	s := c.f.s
	if c.closed || s.isClosed() {
		return ErrClosed
	}
	wait, err := s.adm.admit(c.ts, nBytes, nOps)
	if err != nil {
		return err
	}
	if wait > 0 {
		c.proc().Sleep(wait)
	}
	return nil
}

// send ships one request to a shard server, paying the request
// transfer; when sync it waits for the reply and pays the return
// transfer.
func (c *Client) send(req frontReq, payload int64, sync bool) (frontRep, error) {
	p := c.proc()
	if sync {
		req.reply = sim.NewQueue(c.f.s.kern, "svc-reply")
	}
	c.f.fabric.Transfer(p, c.node, c.f.shardNodes[req.shard], payload+64)
	c.f.queues[req.shard].Send(req)
	if !sync {
		return frontRep{}, nil
	}
	rep := req.reply.Recv(p).(frontRep)
	size := int64(len(rep.value)) + 32
	for _, pr := range rep.pairs {
		size += int64(len(pr.Key) + len(pr.Value) + 16)
	}
	c.f.fabric.Transfer(p, c.f.shardNodes[req.shard], c.node, size)
	return rep, rep.decodeErr()
}

// Put stores key (asynchronous; durable at the next Barrier). The
// value is copied before transmission.
func (c *Client) Put(key string, value []byte) error {
	s := c.f.s
	start := s.reg.Now()
	if err := c.admit(len(value), 1); err != nil {
		return err
	}
	s.enterWrites(1)
	nsk := nsKey(c.ts.name, key)
	idx := s.routeIdx(nsk)
	_, err := c.send(frontReq{
		op: fopPut, shard: idx, key: nsk,
		value: append([]byte(nil), value...), write: true,
	}, int64(len(nsk)+len(value)), false)
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return err
}

// Del removes key, shadowing the delete onto the rebalance-target
// shard when a migration is in flight.
func (c *Client) Del(key string) error {
	s := c.f.s
	start := s.reg.Now()
	if err := c.admit(0, 1); err != nil {
		return err
	}
	// Register two slots up front: the routes must be read after
	// registration (so a ring flip cannot slip between routing and
	// shipping), and re-registering the second slot later could
	// deadlock against a rebalance cutover.
	s.enterWrites(2)
	nsk := nsKey(c.ts.name, key)
	idx := s.routeIdx(nsk)
	shadow := s.shadowIdx(nsk)
	_, err := c.send(frontReq{op: fopDel, shard: idx, key: nsk, write: true}, int64(len(nsk)), false)
	if err == nil && shadow >= 0 {
		_, err = c.send(frontReq{op: fopDel, shard: shadow, key: nsk, write: true}, int64(len(nsk)), false)
	} else {
		s.exitWrite() // the shadow slot went unused
	}
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return err
}

// Get fetches the tenant's value for key: a synchronous round trip to
// the owning shard.
func (c *Client) Get(key string) ([]byte, error) {
	s := c.f.s
	start := s.reg.Now()
	if err := c.admit(0, 1); err != nil {
		return nil, err
	}
	nsk := nsKey(c.ts.name, key)
	rep, err := c.send(frontReq{op: fopGet, shard: s.routeIdx(nsk), key: nsk}, int64(len(nsk)), true)
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return rep.value, err
}

// Scan streams the tenant's keys under prefix in key order (namespace
// stripped), merging per-shard sweeps client-side.
func (c *Client) Scan(prefix string, fn func(key string, value []byte) bool) error {
	s := c.f.s
	if err := c.admit(0, 1); err != nil {
		return err
	}
	ns := nsKey(c.ts.name, prefix)
	strip := len(nsKey(c.ts.name, ""))
	var all []Pair
	for idx := 0; idx < s.Shards(); idx++ {
		rep, err := c.send(frontReq{op: fopScan, shard: idx, key: ns}, int64(len(ns)), true)
		if err != nil {
			return err
		}
		all = append(all, rep.pairs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	for _, pr := range all {
		if !fn(pr.Key[strip:], pr.Value) {
			break
		}
	}
	return nil
}

// Barrier flushes every shard: the tenant's commit point.
func (c *Client) Barrier() error {
	s := c.f.s
	start := s.reg.Now()
	if c.closed || s.isClosed() {
		return ErrClosed
	}
	for idx := 0; idx < s.Shards(); idx++ {
		if _, err := c.send(frontReq{op: fopBarrier, shard: idx}, 0, true); err != nil {
			return err
		}
	}
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return nil
}

// Close releases the client's connection; later calls return
// ErrClosed.
func (c *Client) Close() error {
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.f.s.gConns.Add(-1)
	return nil
}
