package svc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lsmio/internal/netsim"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// Front is the simulated-fabric transport for a Service: one server
// process per shard slot, each draining a FIFO request queue, with
// clients on compute nodes paying netsim transfer costs for requests
// and replies. It generalizes the single-store core.KVService loop to
// the sharded, multi-tenant case; admission control runs client-side
// (modelling credit-based flow control), so a throttled tenant's
// requests never occupy fabric or shard-queue capacity.
//
// Under a netsim fault plan the front is the layer that keeps requests
// alive: every client operation carries an optional end-to-end deadline
// (FrontOptions.RequestTimeout) and a bounded hedged retry driven by
// resil.Policy, so a dropped message, a timed-out reply, or a request
// that raced a shard restart is retried once before the typed transient
// error surfaces — and never after the caller's deadline has passed
// (deadline expiry classifies as resil.ClassCanceled).
type Front struct {
	s          *Service
	fabric     *netsim.Fabric
	shardNodes []int
	opts       FrontOptions
	queues     []*sim.Queue
	qDepth     []*obs.Gauge
	// lost tracks asynchronous writes a shard server accepted but lost
	// before application (the shard crashed mid-request), per tenant.
	// Each slot's map and sequence counter are owned by that slot's
	// server process. lossSeq only grows, so an ack token issued for an
	// earlier loss can never clear an entry recorded after it.
	lost    []map[string]lossEntry
	lossSeq []uint64

	cRetries  *obs.Counter
	cTimeouts *obs.Counter
	cLost     *obs.Counter
}

// FrontOptions tunes the fabric transport's fault handling. The zero
// value keeps historical behavior (no deadlines, no extra virtual-time
// events) apart from the bounded retry, which only fires on transport
// faults that previously surfaced raw.
type FrontOptions struct {
	// RequestTimeout bounds one client operation end to end — attempts
	// plus backoff — on virtual time. Expiry surfaces as an error
	// wrapping context.DeadlineExceeded (resil.ClassCanceled: the
	// caller gave up, so hedged retries never fire past it). Zero means
	// no deadline.
	RequestTimeout time.Duration
	// AttemptTimeout bounds one reply wait. A timed-out attempt counts
	// as a transient transport fault and is hedge-retried. Zero
	// defaults to RequestTimeout/2 (no per-attempt bound when both are
	// zero).
	AttemptTimeout time.Duration
	// Retry is the hedged-retry policy for transport faults: dropped
	// messages, attempt timeouts, and shard-down rejections. Zero
	// MaxRetries defaults to 1 (one hedged retry); zero BaseDelay to
	// 50µs. Retry.Timeout is overwritten with RequestTimeout.
	Retry resil.Policy
}

func (o FrontOptions) withDefaults() FrontOptions {
	if o.Retry.MaxRetries <= 0 {
		o.Retry.MaxRetries = 1
	}
	if o.Retry.BaseDelay <= 0 {
		o.Retry.BaseDelay = 50 * time.Microsecond
	}
	if o.AttemptTimeout <= 0 && o.RequestTimeout > 0 {
		o.AttemptTimeout = o.RequestTimeout / 2
	}
	o.Retry.Timeout = o.RequestTimeout
	return o
}

type frontOp int

const (
	fopPut frontOp = iota
	fopDel
	fopGet
	fopScan
	fopBarrier
	fopStop
)

type frontReq struct {
	op     frontOp
	shard  int
	tenant string
	key    string // namespaced key (or scan prefix)
	value  []byte
	write  bool // registered via enterWrites; server must exitWrite
	dup    bool // fault-plan duplicated delivery of an already-sent request
	// lossAck (barriers only) echoes the Seq of the latest WriteLossError
	// the client observed for this shard — the two-phase ack that lets
	// the server clear its loss ledger.
	lossAck uint64
	reply   *sim.Queue
}

// lossEntry is one tenant's outstanding lost-write record on a shard:
// how many accepted-but-lost async writes, and the slot's sequence
// number at the latest loss. The sequence is the two-phase-ack token —
// a WriteLossError carries it, and only a barrier echoing a sequence at
// least this new clears the entry, proving the tenant observed the
// report even if earlier refusal replies were eaten by the fault plan.
type lossEntry struct {
	n   int
	seq uint64
}

// frontRep is a reply as it would cross the wire: values, flags, and
// plain-old-data error payloads (the typed errors the client must be
// able to reconstruct — sentinels, shard-down, write-loss — travel as
// data; everything else degrades to a resil class + message).
type frontRep struct {
	value    []byte
	pairs    []Pair
	notFound bool
	closed   bool
	down     *ShardDownError
	loss     *WriteLossError
	errClass resil.Class
	errMsg   string
}

func (rep *frontRep) encodeErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrNotFound) {
		rep.notFound = true
		return
	}
	if errors.Is(err, ErrClosed) {
		rep.closed = true
		return
	}
	var sde *ShardDownError
	if errors.As(err, &sde) {
		rep.down = sde
		return
	}
	var wle *WriteLossError
	if errors.As(err, &wle) {
		rep.loss = wle
		return
	}
	rep.errClass = resil.Classify(err)
	rep.errMsg = err.Error()
}

func (rep *frontRep) decodeErr() error {
	switch {
	case rep.notFound:
		return ErrNotFound
	case rep.closed:
		return ErrClosed
	case rep.down != nil:
		d := *rep.down
		return &d
	case rep.loss != nil:
		l := *rep.loss
		return &l
	}
	if rep.errMsg == "" && rep.errClass == resil.ClassOK {
		return nil
	}
	return &resil.ClassError{C: rep.errClass, Msg: rep.errMsg}
}

// WriteLossError reports asynchronous writes a shard server accepted
// but lost before they were applied (the shard crashed with them in
// flight). It surfaces on the tenant's next Barrier against that shard
// so a commit covering lost writes is never acknowledged; transient,
// because re-running the step's writes and re-barriering succeeds once
// the shard is back. The front never auto-retries it — only the tenant
// can replay the lost writes.
type WriteLossError struct {
	Shard  int
	Tenant string
	Lost   int
	// Seq is the two-phase-ack token: the tenant's next barrier to this
	// shard echoes it (Client does so automatically), proving the report
	// was delivered before the server clears its loss ledger. Without
	// it, a refusal reply lost to a timeout or drop would let the hedged
	// barrier retry find an emptied ledger and falsely acknowledge the
	// commit.
	Seq uint64
}

func (e *WriteLossError) Error() string {
	return fmt.Sprintf("svc: shard %d lost %d async write(s) for tenant %q before barrier",
		e.Shard, e.Lost, e.Tenant)
}

// TransientFault marks the error retryable (by replaying the step).
func (e *WriteLossError) TransientFault() bool { return true }

// attemptTimeoutError reports one reply wait exceeding AttemptTimeout.
// Transient: the reply may be stuck behind a dying shard, and a hedged
// retry on a fresh reply queue can still win.
type attemptTimeoutError struct {
	shard int
	d     time.Duration
}

func (e *attemptTimeoutError) Error() string {
	return fmt.Sprintf("svc: shard %d reply timed out after %v", e.shard, e.d)
}

func (e *attemptTimeoutError) TransientFault() bool { return true }

// timeoutSentinel is what the attempt timer injects into a reply queue.
type timeoutSentinel struct{}

// frontOpCost models the per-request CPU the shard server spends on
// decode/dispatch, matching the collective-I/O leader's cost.
const frontOpCost = 3 * time.Microsecond

// NewFront starts shard server processes over fabric with default
// options. shardNodes maps shard index to fabric endpoint and must be
// sized for the largest shard count the service will ever rebalance
// to. Requires a service running inside the simulator.
func NewFront(s *Service, fabric *netsim.Fabric, shardNodes []int) *Front {
	return NewFrontOpts(s, fabric, shardNodes, FrontOptions{})
}

// NewFrontOpts is NewFront with explicit fault-handling options.
func NewFrontOpts(s *Service, fabric *netsim.Fabric, shardNodes []int, opts FrontOptions) *Front {
	if s.kern == nil {
		panic("svc: NewFront requires a simulator-mode service")
	}
	if len(shardNodes) < s.Shards() {
		panic("svc: shardNodes must cover every shard")
	}
	f := &Front{
		s:          s,
		fabric:     fabric,
		shardNodes: shardNodes,
		opts:       opts.withDefaults(),
		cRetries:   s.reg.Counter("svc.front.retries"),
		cTimeouts:  s.reg.Counter("svc.front.attempt_timeouts"),
		cLost:      s.reg.Counter("svc.front.lost_writes"),
	}
	for i := range shardNodes {
		i := i
		f.queues = append(f.queues, sim.NewQueue(s.kern, fmt.Sprintf("svc-shard%d", i)))
		f.qDepth = append(f.qDepth, s.reg.Gauge(fmt.Sprintf("svc.shard.%03d.queue_max", i)))
		f.lost = append(f.lost, make(map[string]lossEntry))
		f.lossSeq = append(f.lossSeq, 0)
		s.kern.Spawn(fmt.Sprintf("svc-shard-%d", i), func(p *sim.Proc) {
			f.serve(p, i)
		}).SetDaemon(true)
	}
	return f
}

// serve is one shard's server loop: FIFO application of requests onto
// the shard's Manager, with write-fence bookkeeping (a write counts as
// in flight from client admission until it is applied here).
func (f *Front) serve(p *sim.Proc, idx int) {
	s := f.s
	for {
		req := f.queues[idx].Recv(p).(frontReq)
		if req.op == fopStop {
			if req.reply != nil {
				req.reply.Send(frontRep{})
			}
			return
		}
		f.qDepth[idx].SetMax(int64(f.queues[idx].Len() + 1))
		p.Sleep(frontOpCost)
		var rep frontRep
		var err error
		sh := s.shardAt(req.shard)
		if sh == nil {
			// Routed by a ring the client saw before a shrink flip:
			// transient, the retry re-routes under the new ring.
			err = &resil.ClassError{C: resil.ClassTransient,
				Msg: fmt.Sprintf("svc: shard %d not in pool", req.shard)}
		} else {
			switch req.op {
			case fopPut:
				err = s.applyPut(sh, req.key, req.value)
			case fopDel:
				err = s.applyDel(sh, req.key)
			case fopGet:
				rep.value, err = s.applyGet(sh, req.key)
			case fopScan:
				ring, _ := s.snapshotRing()
				rep.pairs, err = s.scanShard(ring, sh, req.key)
			case fopBarrier:
				// A barrier acknowledges every earlier write on this
				// shard — refuse it while accepted-but-lost writes are
				// outstanding for the tenant, so the client never acks
				// a commit the crash ate. The ledger entry is cleared
				// only by a barrier echoing the loss sequence (the
				// two-phase ack): the refusal reply itself can be lost
				// to a drop or attempt timeout, and at-least-once
				// request delivery would then hedge-retry the barrier —
				// a delete-on-read ledger would let that retry falsely
				// succeed.
				if e := f.lost[idx][req.tenant]; e.n > 0 {
					if req.lossAck >= e.seq {
						delete(f.lost[idx], req.tenant)
						err = s.applyBarrier(sh)
					} else {
						err = &WriteLossError{Shard: idx, Tenant: req.tenant, Lost: e.n, Seq: e.seq}
					}
				} else {
					err = s.applyBarrier(sh)
				}
			}
		}
		if req.write {
			s.exitWrite()
		}
		if err != nil && req.reply == nil && !req.dup {
			// Asynchronous writes have no reply to carry the error:
			// record the loss against the tenant so its next Barrier
			// fails instead of falsely acknowledging the step. A
			// fault-plan duplicated delivery is the same logical write —
			// only the primary delivery may record its loss, or one lost
			// put would be ledgered (and counted) twice.
			s.cApplyErrs.Inc()
			f.cLost.Inc()
			if req.tenant != "" {
				f.lossSeq[idx]++
				e := f.lost[idx][req.tenant]
				e.n++
				e.seq = f.lossSeq[idx]
				f.lost[idx][req.tenant] = e
			}
		}
		rep.encodeErr(err)
		if req.reply != nil {
			req.reply.Send(rep)
		}
	}
}

// Stop shuts every shard server down (mainly for tests; the servers
// are daemons and do not hold the simulation open).
func (f *Front) Stop(p *sim.Proc) {
	for _, q := range f.queues {
		reply := sim.NewQueue(f.s.kern, "svc-stop")
		q.Send(frontReq{op: fopStop, reply: reply})
		reply.Recv(p)
	}
}

// Connect opens a tenant client at the given fabric endpoint,
// registering the tenant on first use.
func (f *Front) Connect(tenant string, node int) *Client {
	f.s.gConns.Add(1)
	return &Client{f: f, ts: f.s.adm.tenant(tenant, nil), node: node,
		lossAck: make(map[int]uint64)}
}

// Client is the fabric-transport tenant client. It mirrors Tenant's
// semantics with every operation paying fabric transfer and shard
// queueing costs. A Client is bound to one simulation process at a
// time (like core.RemoteStore).
type Client struct {
	f      *Front
	ts     *tenantState
	node   int
	closed bool
	// lossAck holds, per shard, the Seq of the latest WriteLossError
	// this client observed: the two-phase-ack token its next barrier
	// echoes so the server knows the loss report was delivered before
	// clearing the ledger.
	lossAck map[int]uint64
}

// Tenant returns the tenant name the client is bound to.
func (c *Client) Tenant() string { return c.ts.name }

func (c *Client) proc() *sim.Proc {
	p := c.f.s.kern.Current()
	if p == nil {
		panic("svc: fabric Client used outside a simulation process")
	}
	return p
}

// simClock adapts the calling simulation process to resil.Clock so the
// retry policy's deadline and backoff run on virtual time.
type simClock struct{ p *sim.Proc }

func (c simClock) Now() time.Duration    { return c.p.Now().Duration() }
func (c simClock) Sleep(d time.Duration) { c.p.Sleep(d) }

func (c *Client) clock() resil.Clock { return simClock{p: c.proc()} }

// admit runs client-side admission, sleeping out any fair-share delay.
func (c *Client) admit(nBytes, nOps int) error {
	s := c.f.s
	if c.closed || s.isClosed() {
		return ErrClosed
	}
	wait, err := s.adm.admit(c.ts, nBytes, nOps)
	if err != nil {
		return err
	}
	if wait > 0 {
		c.proc().Sleep(wait)
	}
	return nil
}

// sendOnce ships one attempt: the request transfer under the fabric's
// fault plan, queueing, and — when sync — the reply wait plus return
// transfer. Transport faults (fabric drop, attempt timeout) come back
// as transient errors; server-side outcomes ride in the reply.
//
// When AttemptTimeout is set, a daemon timer process bounds the whole
// attempt — including fault-plan delay — by injecting a sentinel into
// the reply queue; each attempt uses a fresh queue, so a late real
// reply lands in an abandoned one and is harmless.
func (c *Client) sendOnce(req frontReq, payload int64, sync bool) (frontRep, error) {
	p := c.proc()
	// settled is written by this (client) proc and read by the attempt
	// timer proc with no synchronization. That is safe only because
	// NewFront requires simulator mode, where procs are cooperatively
	// scheduled and never run concurrently; goroutine-mode reuse of this
	// pattern would need an atomic.Bool.
	settled := false
	if sync {
		req.reply = sim.NewQueue(c.f.s.kern, "svc-reply")
		if d := c.f.opts.AttemptTimeout; d > 0 {
			c.f.s.kern.Spawn("svc-attempt-timer", func(tp *sim.Proc) {
				tp.Sleep(d)
				if !settled {
					req.reply.Send(timeoutSentinel{})
				}
			}).SetDaemon(true)
		}
	}
	dup, err := c.f.fabric.TryTransfer(p, c.node, c.f.shardNodes[req.shard], payload+64)
	if err != nil {
		settled = true
		return frontRep{}, err // dropped; the caller releases any write slot
	}
	c.f.queues[req.shard].Send(req)
	if dup {
		// Duplicated delivery: the server applies (and, for writes,
		// exitWrites) twice, so register the extra in-flight slot. Both
		// deliveries reply; the first wins, the stale one dies with the
		// queue. Applies are idempotent (put/del/barrier re-apply).
		if req.write {
			c.f.s.dupWrite()
		}
		dreq := req
		dreq.dup = true
		c.f.queues[req.shard].Send(dreq)
	}
	if !sync {
		return frontRep{}, nil
	}
	v := req.reply.Recv(p)
	settled = true
	if _, ok := v.(timeoutSentinel); ok {
		c.f.cTimeouts.Inc()
		return frontRep{}, &attemptTimeoutError{shard: req.shard, d: c.f.opts.AttemptTimeout}
	}
	rep := v.(frontRep)
	size := int64(len(rep.value)) + 32
	for _, pr := range rep.pairs {
		size += int64(len(pr.Key) + len(pr.Value) + 16)
	}
	c.f.fabric.Transfer(p, c.f.shardNodes[req.shard], c.node, size)
	return rep, nil
}

// roundTrip runs a synchronous request under the hedged-retry policy.
// Transport faults and shard-down rejections are retried (the shard
// may be back after its restart backoff); every other server-side
// error — including WriteLossError, which only the tenant can resolve
// by replaying the step — surfaces without an internal retry.
func (c *Client) roundTrip(mk func() frontReq, payload int64) (frontRep, error) {
	var rep frontRep
	var appErr error
	pol := c.f.opts.Retry
	err := pol.Do(nil, c.clock(), fnv64a(c.ts.name), func(attempt int) error {
		if attempt > 0 {
			c.f.cRetries.Inc()
		}
		r, err := c.sendOnce(mk(), payload, true)
		if err != nil {
			return err
		}
		rep, appErr = r, r.decodeErr()
		var sde *ShardDownError
		if errors.As(appErr, &sde) {
			return appErr
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	return rep, appErr
}

// Put stores key (asynchronous; durable at the next Barrier). The
// value is copied before transmission. A transfer dropped by the fault
// plan is hedge-retried with a fresh write slot per attempt.
func (c *Client) Put(key string, value []byte) error {
	s := c.f.s
	start := s.reg.Now()
	if err := c.admit(len(value), 1); err != nil {
		return err
	}
	nsk := nsKey(c.ts.name, key)
	val := append([]byte(nil), value...)
	pol := c.f.opts.Retry
	err := pol.Do(nil, c.clock(), fnv64a(nsk), func(attempt int) error {
		if attempt > 0 {
			c.f.cRetries.Inc()
		}
		s.enterWrites(1)
		req := frontReq{op: fopPut, shard: s.routeIdx(nsk), tenant: c.ts.name,
			key: nsk, value: val, write: true}
		_, err := c.sendOnce(req, int64(len(nsk)+len(val)), false)
		if err != nil {
			s.exitWrite() // the message never reached a server
		}
		return err
	})
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return err
}

// Del removes key, shadowing the delete onto the rebalance-target
// shard when a migration is in flight.
func (c *Client) Del(key string) error {
	s := c.f.s
	start := s.reg.Now()
	if err := c.admit(0, 1); err != nil {
		return err
	}
	nsk := nsKey(c.ts.name, key)
	pol := c.f.opts.Retry
	err := pol.Do(nil, c.clock(), fnv64a(nsk)+1, func(attempt int) error {
		if attempt > 0 {
			c.f.cRetries.Inc()
		}
		// Register both slots before routing (so a ring flip cannot
		// slip between routing and shipping). Each attempt registers
		// its own slots: a retry must never hold a slot across the
		// backoff sleep, which could deadlock a cutover fence.
		s.enterWrites(2)
		idx := s.routeIdx(nsk)
		shadow := s.shadowIdx(nsk)
		if _, err := c.sendOnce(frontReq{op: fopDel, shard: idx, tenant: c.ts.name,
			key: nsk, write: true}, int64(len(nsk)), false); err != nil {
			s.exitWrite()
			s.exitWrite()
			return err
		}
		if shadow < 0 {
			s.exitWrite() // the shadow slot went unused
			return nil
		}
		_, err := c.sendOnce(frontReq{op: fopDel, shard: shadow, tenant: c.ts.name,
			key: nsk, write: true}, int64(len(nsk)), false)
		if err != nil {
			s.exitWrite() // lost in the fabric; the retry re-deletes both
		}
		return err
	})
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return err
}

// Get fetches the tenant's value for key: a synchronous round trip to
// the owning shard (re-routed on every retry attempt).
func (c *Client) Get(key string) ([]byte, error) {
	s := c.f.s
	start := s.reg.Now()
	if err := c.admit(0, 1); err != nil {
		return nil, err
	}
	nsk := nsKey(c.ts.name, key)
	rep, err := c.roundTrip(func() frontReq {
		return frontReq{op: fopGet, shard: s.routeIdx(nsk), tenant: c.ts.name, key: nsk}
	}, int64(len(nsk)))
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return rep.value, err
}

// Scan streams the tenant's keys under prefix in key order (namespace
// stripped), merging per-shard sweeps client-side.
func (c *Client) Scan(prefix string, fn func(key string, value []byte) bool) error {
	s := c.f.s
	if err := c.admit(0, 1); err != nil {
		return err
	}
	ns := nsKey(c.ts.name, prefix)
	strip := len(nsKey(c.ts.name, ""))
	var all []Pair
	for idx := 0; idx < s.Shards(); idx++ {
		idx := idx
		rep, err := c.roundTrip(func() frontReq {
			return frontReq{op: fopScan, shard: idx, tenant: c.ts.name, key: ns}
		}, int64(len(ns)))
		if err != nil {
			return err
		}
		all = append(all, rep.pairs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	for _, pr := range all {
		if !fn(pr.Key[strip:], pr.Value) {
			break
		}
	}
	return nil
}

// Barrier flushes every shard: the tenant's commit point. A barrier
// refused because the crash ate earlier async writes surfaces as a
// WriteLossError — the tenant must replay the step, so the front never
// retries it internally. Observing the error records its Seq as the
// ack token the next barrier carries, which is what lets the server
// clear the loss ledger (two-phase ack: the server keeps refusing
// until the client provably saw a report).
func (c *Client) Barrier() error {
	s := c.f.s
	start := s.reg.Now()
	if c.closed || s.isClosed() {
		return ErrClosed
	}
	for idx := 0; idx < s.Shards(); idx++ {
		idx := idx
		if _, err := c.roundTrip(func() frontReq {
			return frontReq{op: fopBarrier, shard: idx, tenant: c.ts.name,
				lossAck: c.lossAck[idx]}
		}, 0); err != nil {
			var wle *WriteLossError
			if errors.As(err, &wle) {
				c.lossAck[wle.Shard] = wle.Seq
			}
			return err
		}
	}
	c.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return nil
}

// Close releases the client's connection; later calls return
// ErrClosed.
func (c *Client) Close() error {
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.f.s.gConns.Add(-1)
	return nil
}
