package svc

import (
	"context"
	"errors"
	"testing"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/netsim"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// newFaultFront builds a 1-client, simulator-mode service with a fabric
// fault plan installed and explicit FrontOptions. Must be called from a
// simulation process. Client node 0; shard nodes 1..shards.
func newFaultFront(t *testing.T, k *sim.Kernel, shards int, fo FrontOptions, sup SupervisorConfig) (*Service, *Front, *netsim.Plan) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })
	fabric := netsim.New(k, netsim.DefaultConfig(1+shards))
	plan := netsim.NewPlan()
	fabric.SetPlan(plan)
	s, err := New(Options{
		Shards: shards,
		OpenShard: func(i int) (*core.Manager, error) {
			return core.NewManager("store", core.ManagerOptions{
				Store: core.StoreOptions{
					FS:       vfs.NewMemFS(),
					Platform: lsm.SimPlatform(k),
					Async:    true,
				},
				Kernel: k,
				Obs:    reg,
			})
		},
		Kernel:     k,
		Obs:        reg,
		Supervisor: sup,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, shards)
	for i := range nodes {
		nodes[i] = 1 + i
	}
	return s, NewFrontOpts(s, fabric, nodes, fo), plan
}

// TestFrontDropHedgedRetry: the fault plan eats the first request
// message; the client's bounded hedged retry resends and the operation
// succeeds without the caller ever seeing the fault.
func TestFrontDropHedgedRetry(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, plan := newFaultFront(t, k, 1, FrontOptions{}, SupervisorConfig{})
		defer s.Close()
		c := f.Connect("app", 0)
		if err := c.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		plan.AddRule(netsim.Rule{From: -1, To: -1, Action: netsim.FaultDrop, Nth: 1, Times: 1})
		v, err := c.Get("k")
		if err != nil || string(v) != "v" {
			t.Fatalf("Get under drop = %q, %v", v, err)
		}
		if got := plan.Dropped(); got != 1 {
			t.Errorf("plan dropped %d messages, want 1", got)
		}
		if got := s.reg.Counter("svc.front.retries").Load(); got != 1 {
			t.Errorf("svc.front.retries = %d, want 1", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontDupDelivery: a duplicated request is applied twice without
// corrupting the write-fence accounting — the barrier (which fences all
// in-flight writes) still completes and the value reads back once.
func TestFrontDupDelivery(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, plan := newFaultFront(t, k, 1, FrontOptions{}, SupervisorConfig{})
		defer s.Close()
		c := f.Connect("app", 0)
		plan.AddRule(netsim.Rule{From: -1, To: -1, Action: netsim.FaultDup, Nth: 1, Times: 1})
		if err := c.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		if got := plan.Duplicated(); got != 1 {
			t.Errorf("plan duplicated %d messages, want 1", got)
		}
		v, err := c.Get("k")
		if err != nil || string(v) != "v" {
			t.Fatalf("Get after dup = %q, %v", v, err)
		}
		count := 0
		if err := c.Scan("", func(string, []byte) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != 1 {
			t.Errorf("scan found %d keys after duplicated put, want 1", count)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontDeadlineClassCanceled is the taxonomy regression for the
// request deadline: under an injected netsim delay longer than the
// deadline, the operation's final error classifies as ClassCanceled
// (the caller gave up) and no hedged retry fires past the deadline.
func TestFrontDeadlineClassCanceled(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, plan := newFaultFront(t, k, 1, FrontOptions{
			RequestTimeout: 2 * time.Millisecond,
			AttemptTimeout: time.Millisecond,
		}, SupervisorConfig{})
		defer s.Close()
		c := f.Connect("app", 0)
		if err := c.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		// Every request message now takes 10ms of injected delay —
		// far past both the attempt and the request deadline.
		plan.AddRule(netsim.Rule{From: -1, To: -1, Action: netsim.FaultDelay, Delay: 10 * time.Millisecond, Times: -1})
		_, err := c.Get("k")
		if err == nil {
			t.Fatal("Get under 10ms delay with 2ms deadline succeeded")
		}
		if got := resil.Classify(err); got != resil.ClassCanceled {
			t.Fatalf("deadline error classified %v, want canceled (err: %v)", got, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline error does not wrap context.DeadlineExceeded: %v", err)
		}
		// The deadline expired during the first attempt: the policy must
		// not have launched a hedged retry after the caller gave up.
		if got := s.reg.Counter("svc.front.retries").Load(); got != 0 {
			t.Errorf("svc.front.retries = %d after deadline expiry, want 0", got)
		}
		if got := s.reg.Counter("svc.front.attempt_timeouts").Load(); got == 0 {
			t.Error("attempt timeout never fired under injected delay")
		}
		// After the plan heals, the same client recovers.
		plan.Heal()
		plan.ClearRules()
		if v, err := c.Get("k"); err != nil || string(v) != "v" {
			t.Fatalf("Get after heal = %q, %v", v, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontWriteLossFailsBarrier: an async write accepted by a shard
// server that dies before applying it must fail the tenant's next
// barrier with a typed, transient WriteLossError — the commit is never
// silently acknowledged.
func TestFrontWriteLossFailsBarrier(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		// Supervision disabled: the shard stays down so the loss path is
		// deterministic.
		s, f, _ := newFaultFront(t, k, 2, FrontOptions{}, SupervisorConfig{Disabled: true})
		defer s.Close()
		c := f.Connect("app", 0)
		keys := shardKeys(s, "app")
		if err := c.Put(keys[1], []byte("safe")); err != nil {
			t.Fatal(err)
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		if err := s.CrashShard(0); err != nil {
			t.Fatal(err)
		}
		// The async put is admitted and shipped; the server finds the
		// shard down and must ledger the loss instead of dropping it.
		if err := c.Put(keys[0], []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		err := c.Barrier()
		var wle *WriteLossError
		if !errors.As(err, &wle) {
			t.Fatalf("Barrier after lost write = %v, want WriteLossError", err)
		}
		if wle.Shard != 0 || wle.Tenant != "app" || wle.Lost != 1 {
			t.Fatalf("WriteLossError = %+v", wle)
		}
		if resil.Classify(err) != resil.ClassTransient {
			t.Fatalf("WriteLossError classified %v, want transient", resil.Classify(err))
		}
		if got := s.reg.Counter("svc.front.lost_writes").Load(); got != 1 {
			t.Errorf("svc.front.lost_writes = %d, want 1", got)
		}
		// The loss is reported exactly once; the next barrier fails only
		// because the shard itself is still down (typed ShardDownError).
		err = c.Barrier()
		var sde *ShardDownError
		if !errors.As(err, &sde) {
			t.Fatalf("second Barrier = %v, want ShardDownError", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontWriteLossSurvivesLostReply: the loss ledger is cleared by
// two-phase ack, not on read. The first barrier's refusal reply misses
// AttemptTimeout (the request leg is fault-delayed past it), so the
// hedged retry re-delivers the barrier — it must be refused again with
// the same WriteLossError, never acknowledged: a delete-on-read ledger
// would let the retry falsely ack the commit the crash ate.
func TestFrontWriteLossSurvivesLostReply(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, plan := newFaultFront(t, k, 1, FrontOptions{
			AttemptTimeout: time.Millisecond,
		}, SupervisorConfig{RestartBackoff: 500 * time.Microsecond})
		defer s.Close()
		c := f.Connect("app", 0)
		if err := s.CrashShard(0); err != nil {
			t.Fatal(err)
		}
		// Admitted and shipped while the shard is down: the server
		// ledgers the loss. The supervisor then restarts the shard, so a
		// falsely-acknowledged barrier would actually succeed.
		if err := c.Put("k", []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		for i := 0; s.ShardStatuses()[0].State != "up"; i++ {
			if i > 100 {
				t.Fatal("shard never restarted")
			}
			p.Sleep(time.Millisecond)
		}
		// Delay the first barrier's request leg past AttemptTimeout: the
		// attempt timer (armed before the outbound transfer) wins, the
		// refusal reply lands in the abandoned queue, and the policy
		// hedge-retries the barrier.
		plan.AddRule(netsim.Rule{From: 0, To: 1, Nth: 1, Times: 1,
			Action: netsim.FaultDelay, Delay: 5 * time.Millisecond})
		err := c.Barrier()
		var wle *WriteLossError
		if !errors.As(err, &wle) {
			t.Fatalf("Barrier with lost refusal reply = %v, want WriteLossError", err)
		}
		if wle.Shard != 0 || wle.Lost != 1 {
			t.Fatalf("WriteLossError = %+v", wle)
		}
		if got := s.reg.Counter("svc.front.attempt_timeouts").Load(); got == 0 {
			t.Error("attempt timeout never fired; the refusal reply was not lost")
		}
		if got := s.reg.Counter("svc.front.retries").Load(); got == 0 {
			t.Error("hedged retry never fired")
		}
		// The observed error's Seq is the ack token: after replaying the
		// step, the re-barrier clears the ledger and commits.
		if err := c.Put("k", []byte("v2")); err != nil {
			t.Fatal(err)
		}
		if err := c.Barrier(); err != nil {
			t.Fatalf("Barrier after replay = %v", err)
		}
		if v, err := c.Get("k"); err != nil || string(v) != "v2" {
			t.Fatalf("Get after replay = %q, %v", v, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontDupAsyncLossRecordedOnce: a fault-plan duplicated async put
// that fails server-side is one logical write — only its primary
// delivery records the loss, so WriteLossError.Lost (and the
// lost_writes counter) match what the tenant must actually replay.
func TestFrontDupAsyncLossRecordedOnce(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, plan := newFaultFront(t, k, 1, FrontOptions{}, SupervisorConfig{Disabled: true})
		defer s.Close()
		c := f.Connect("app", 0)
		if err := s.CrashShard(0); err != nil {
			t.Fatal(err)
		}
		plan.AddRule(netsim.Rule{From: -1, To: -1, Action: netsim.FaultDup, Nth: 1, Times: 1})
		if err := c.Put("k", []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		err := c.Barrier()
		var wle *WriteLossError
		if !errors.As(err, &wle) {
			t.Fatalf("Barrier after duplicated lost put = %v, want WriteLossError", err)
		}
		if wle.Lost != 1 {
			t.Errorf("WriteLossError.Lost = %d, want 1 (dup delivery must not double-count)", wle.Lost)
		}
		if got := s.reg.Counter("svc.front.lost_writes").Load(); got != 1 {
			t.Errorf("svc.front.lost_writes = %d, want 1", got)
		}
		if got := plan.Duplicated(); got != 1 {
			t.Errorf("plan duplicated %d messages, want 1", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontPostCloseErrClosed: after Service.Close every fabric-client
// operation fails with ErrClosed — the transport must not hang on the
// closed pool or surface an untyped error.
func TestFrontPostCloseErrClosed(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, _ := newFaultFront(t, k, 2, FrontOptions{}, SupervisorConfig{})
		c := f.Connect("app", 0)
		if err := c.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close = %v, want nil (idempotent)", err)
		}
		if err := c.Put("k", []byte("v2")); !errors.Is(err, ErrClosed) {
			t.Errorf("Put after close = %v, want ErrClosed", err)
		}
		if _, err := c.Get("k"); !errors.Is(err, ErrClosed) {
			t.Errorf("Get after close = %v, want ErrClosed", err)
		}
		if err := c.Del("k"); !errors.Is(err, ErrClosed) {
			t.Errorf("Del after close = %v, want ErrClosed", err)
		}
		if err := c.Barrier(); !errors.Is(err, ErrClosed) {
			t.Errorf("Barrier after close = %v, want ErrClosed", err)
		}
		if err := c.Scan("", func(string, []byte) bool { return true }); !errors.Is(err, ErrClosed) {
			t.Errorf("Scan after close = %v, want ErrClosed", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontShardDownRetrySurfaces: with supervision disabled and a
// shard crashed, a synchronous request against it is hedged once and
// then surfaces the typed ShardDownError (never a raw error).
func TestFrontShardDownRetrySurfaces(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		s, f, _ := newFaultFront(t, k, 2, FrontOptions{}, SupervisorConfig{Disabled: true})
		defer s.Close()
		c := f.Connect("app", 0)
		keys := shardKeys(s, "app")
		if err := s.CrashShard(0); err != nil {
			t.Fatal(err)
		}
		_, err := c.Get(keys[0])
		var sde *ShardDownError
		if !errors.As(err, &sde) {
			t.Fatalf("Get on downed shard = %v, want ShardDownError", err)
		}
		if sde.Shard != 0 {
			t.Fatalf("ShardDownError names shard %d, want 0", sde.Shard)
		}
		if got := s.reg.Counter("svc.front.retries").Load(); got != 1 {
			t.Errorf("svc.front.retries = %d, want 1 (one hedged retry)", got)
		}
		// The healthy shard is untouched.
		if _, err := c.Get(keys[1]); !errors.Is(err, ErrNotFound) {
			t.Fatalf("healthy shard Get = %v, want ErrNotFound", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
