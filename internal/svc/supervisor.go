package svc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// The shard supervisor: per-shard health tracking (request-outcome
// EWMA + consecutive-error breaker from internal/resil, plus a
// goroutine-mode heartbeat prober) and automatic crash-restart. A shard
// whose breaker trips — or that is crashed explicitly via CrashShard —
// is detached immediately, so routing fails fast with a typed retryable
// ShardDownError instead of hanging callers, while a restart worker
// reopens the store (LSM recovery replays the WAL) and swaps it back in
// under the write fence so no admitted commit can land on the dead
// manager. DESIGN.md §13 documents the state machine and parameters.

// ShardDownError reports a request routed to a shard that is crashed or
// restarting. It is transient: the supervisor is (or will be) bringing
// the shard back, so callers should retry after Retry.
type ShardDownError struct {
	Shard int
	State string        // "restarting" or "down"
	Retry time.Duration // suggested backoff before retrying
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("svc: shard %d %s (retry in %v)", e.Shard, e.State, e.Retry)
}

// TransientFault marks the error retryable for resil.Classify.
func (e *ShardDownError) TransientFault() bool { return true }

// probeKey is the heartbeat read target. It lives outside the tenant
// namespace root ("t/"), so probes are invisible to scans and
// migration; the probe expects ErrNotFound (a healthy miss).
const probeKey = "\x00svc/probe"

// SupervisorConfig tunes per-shard health tracking and crash-restart.
// The zero value enables supervision with the defaults below.
type SupervisorConfig struct {
	// Disabled turns supervision off: no health breaker, no prober,
	// and a crashed shard stays down until the service is restarted.
	Disabled bool
	// HeartbeatInterval is the goroutine-mode prober period (default
	// 25ms). The simulator runs no free-running prober — a periodic
	// daemon would hold virtual time open forever — so detection there
	// is driven by request outcomes and explicit CrashShard injection.
	HeartbeatInterval time.Duration
	// RestartBackoff is the delay before the first restart attempt
	// (default 10ms); each failed attempt doubles it, capped at 64x.
	RestartBackoff time.Duration
	// MaxRestarts bounds consecutive failed restart attempts before the
	// shard is left permanently down (default 16).
	MaxRestarts int
	// Breaker tunes the per-shard request-outcome breaker; zero fields
	// take the resil.Options defaults (3 consecutive errors trip it).
	Breaker resil.Options
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 16
	}
	return c
}

type supervisor struct {
	s   *Service
	cfg SupervisorConfig

	stopOnce sync.Once
	stopC    chan struct{}
	wg       sync.WaitGroup

	cKicks    *obs.Counter
	cRestarts *obs.Counter
	cFails    *obs.Counter
	cGaveUp   *obs.Counter
	hMTTR     *obs.Histogram
}

func newSupervisor(s *Service, cfg SupervisorConfig) *supervisor {
	return &supervisor{
		s:         s,
		cfg:       cfg.withDefaults(),
		stopC:     make(chan struct{}),
		cKicks:    s.reg.Counter("svc.supervisor.kicks"),
		cRestarts: s.reg.Counter("svc.supervisor.restarts"),
		cFails:    s.reg.Counter("svc.supervisor.restart_failures"),
		cGaveUp:   s.reg.Counter("svc.supervisor.gaveup"),
		hMTTR:     s.reg.Histogram("svc.supervisor.mttr_ns"),
	}
}

// newTracker builds one shard's health breaker (nil when disabled).
func (u *supervisor) newTracker() *resil.Tracker {
	if u.cfg.Disabled {
		return nil
	}
	return resil.New(1, u.s.reg.Now, u.cfg.Breaker)
}

// retryHint is the backoff suggested to callers hitting a down shard.
func (u *supervisor) retryHint() time.Duration { return u.cfg.RestartBackoff }

// start launches the goroutine-mode heartbeat prober.
func (u *supervisor) start() {
	if u.cfg.Disabled || u.s.kern != nil {
		return
	}
	u.wg.Add(1)
	go u.probeLoop()
}

// stop halts the prober and waits for in-flight restart workers
// (goroutine mode; simulator restart procs abort via isClosed).
func (u *supervisor) stop() {
	u.stopOnce.Do(func() { close(u.stopC) })
	u.wg.Wait()
}

func (u *supervisor) probeLoop() {
	defer u.wg.Done()
	t := time.NewTicker(u.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-u.stopC:
			return
		case <-t.C:
		}
		if u.s.isClosed() {
			return
		}
		_, shards := u.s.snapshotRing()
		for _, sh := range shards {
			if sh.state.Load() == shardUp {
				u.s.probeShard(sh)
			}
		}
	}
}

// probeShard issues one heartbeat read against the shard store, feeding
// the same breaker as request outcomes (a healthy miss counts as OK).
func (s *Service) probeShard(sh *shard) {
	s.lock(sh)
	defer s.unlock(sh)
	if sh.mgr == nil || sh.state.Load() != shardUp {
		return
	}
	start := s.reg.Now()
	_, err := sh.mgr.Get(probeKey)
	s.observe(sh, start, err)
}

// kick transitions an Up shard to Down and starts its restart worker.
// The CAS makes exactly one worker per failure episode.
func (u *supervisor) kick(sh *shard, cause error) {
	if u.cfg.Disabled || u.s.isClosed() {
		return
	}
	if !sh.state.CompareAndSwap(shardUp, shardDown) {
		return
	}
	sh.downAt.Store(int64(u.s.reg.Now()))
	sh.gState.Set(int64(shardDown))
	u.cKicks.Inc()
	u.s.reg.Trace().Emitf("svc.shard.down", "shard %d: %v", sh.idx, cause)
	u.spawnRestart(sh)
}

func (u *supervisor) spawnRestart(sh *shard) {
	if u.s.kern != nil {
		u.s.kern.Spawn(fmt.Sprintf("svc-restart-%d", sh.idx), func(p *sim.Proc) {
			u.restart(p, sh)
		})
		return
	}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		u.restart(nil, sh)
	}()
}

// sleepIn charges a restart backoff: virtual time in the simulator,
// stop-interruptible wall time outside.
func (u *supervisor) sleepIn(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	if p != nil {
		p.Sleep(d)
		return
	}
	select {
	case <-u.stopC:
	case <-time.After(d):
	}
}

// restart is one shard's crash-restart worker: reap the dead manager,
// reopen the store with backoff (LSM recovery replays everything up to
// the last synced state), probe it, then swap it in under the write
// fence. Runs as a simulation process (p != nil) or a goroutine.
func (u *supervisor) restart(p *sim.Proc, sh *shard) {
	s := u.s
	// Tear down whatever is left of the failed manager first: two
	// managers must never be open over one shard directory. CrashShard
	// has usually detached it already; a breaker-triggered kick has not.
	s.lock(sh)
	old := sh.mgr
	sh.mgr = nil
	s.unlock(sh)
	if old != nil {
		old.Close() // best effort; flushing a dead store may fail
	}
	backoff := u.cfg.RestartBackoff
	for attempt := 0; ; attempt++ {
		if attempt >= u.cfg.MaxRestarts {
			u.cGaveUp.Inc()
			s.reg.Trace().Emitf("svc.shard.gaveup", "shard %d: %d failed restart attempts", sh.idx, attempt)
			return
		}
		u.sleepIn(p, backoff<<uint(min(attempt, 6)))
		if s.isClosed() {
			return
		}
		sh.state.Store(shardRestarting)
		sh.gState.Set(int64(shardRestarting))
		mgr, err := s.open(sh.idx)
		if err != nil {
			u.cFails.Inc()
			s.reg.Trace().Emitf("svc.shard.restart_failed", "shard %d attempt %d: %v", sh.idx, attempt+1, err)
			sh.state.Store(shardDown)
			sh.gState.Set(int64(shardDown))
			continue
		}
		if _, err := mgr.Get(probeKey); err != nil && !errors.Is(err, ErrNotFound) {
			mgr.Close()
			u.cFails.Inc()
			s.reg.Trace().Emitf("svc.shard.restart_failed", "shard %d attempt %d: probe: %v", sh.idx, attempt+1, err)
			sh.state.Store(shardDown)
			sh.gState.Set(int64(shardDown))
			continue
		}
		if s.isClosed() {
			mgr.Close()
			return
		}
		if s.shardAt(sh.idx) != sh {
			mgr.Close() // the slot was removed by a shrink while down
			return
		}
		// Swap under the write fence: after the fence drains, no write
		// admitted before the crash is still in flight, so everything
		// the new manager recovered plus everything applied after the
		// swap is the complete admitted history.
		s.acquireCutover()
		s.setPaused(true)
		s.fenceWrites()
		if s.isClosed() {
			s.setPaused(false)
			s.releaseCutover()
			mgr.Close()
			return
		}
		s.lock(sh)
		sh.mgr = mgr
		sh.health = u.newTracker()
		s.unlock(sh)
		sh.state.Store(shardUp)
		sh.gState.Set(int64(shardUp))
		s.setPaused(false)
		s.releaseCutover()
		sh.restarts.Add(1)
		u.cRestarts.Inc()
		mttr := s.reg.Now() - time.Duration(sh.downAt.Load())
		u.hMTTR.ObserveDuration(mttr)
		s.reg.Counter(fmt.Sprintf("svc.shard.%03d.restarts", sh.idx)).Inc()
		s.reg.Trace().Emitf("svc.shard.up", "shard %d restarted after %v (attempt %d)", sh.idx, mttr, attempt+1)
		s.writeManifestQuiet()
		return
	}
}

// CrashShard simulates the abrupt death of shard i's manager process:
// the manager is detached so every subsequent request fails fast with a
// typed retryable ShardDownError, the remains are reaped with a
// best-effort Close (to stop its background workers; chaos tests crash
// the backing faultfs first so the reap cannot make unbarriered data
// durable), and the supervisor begins the crash-restart cycle. Inside
// the simulator it must be called from a simulation process. This is
// the fault-injection entry point for the chaos sweeps and the
// under-fault benchmark panel.
func (s *Service) CrashShard(i int) error {
	sh := s.shardAt(i)
	if sh == nil {
		return fmt.Errorf("svc: crash: shard %d not in pool", i)
	}
	if !sh.state.CompareAndSwap(shardUp, shardDown) {
		return nil // already down or restarting
	}
	sh.downAt.Store(int64(s.reg.Now()))
	sh.gState.Set(int64(shardDown))
	s.reg.Trace().Emitf("svc.shard.down", "shard %d: injected crash", i)
	s.lock(sh)
	old := sh.mgr
	sh.mgr = nil
	s.unlock(sh)
	if old != nil {
		old.Close() // reap: stop background work; errors are expected
	}
	if !s.sup.cfg.Disabled && !s.isClosed() {
		s.sup.cKicks.Inc()
		s.sup.spawnRestart(sh)
	}
	return nil
}

// ShardStatus is one shard's supervisor view.
type ShardStatus struct {
	Shard      int           `json:"shard"`
	State      string        `json:"state"` // up | restarting | down
	Restarts   int64         `json:"restarts"`
	Breaker    string        `json:"breaker,omitempty"` // closed | open | half-open
	ConsecErrs int           `json:"consec_errs,omitempty"`
	DownFor    time.Duration `json:"down_for_ns,omitempty"`
}

// ShardStatuses reports every shard's supervisor state, restart count,
// and breaker status (lsmioctl tenants -health renders it).
func (s *Service) ShardStatuses() []ShardStatus {
	_, shards := s.snapshotRing()
	out := make([]ShardStatus, 0, len(shards))
	for _, sh := range shards {
		st := ShardStatus{
			Shard:    sh.idx,
			State:    shardStateName(sh.state.Load()),
			Restarts: sh.restarts.Load(),
		}
		s.lock(sh)
		if sh.health != nil {
			h := sh.health.Snapshot()[0]
			st.Breaker = h.State.String()
			st.ConsecErrs = h.ConsecErrs
		}
		s.unlock(sh)
		if sh.state.Load() != shardUp {
			st.DownFor = s.reg.Now() - time.Duration(sh.downAt.Load())
		}
		out = append(out, st)
	}
	return out
}

// writeManifestQuiet persists the manifest best-effort (restart workers
// must not fail a recovery over a manifest write error).
func (s *Service) writeManifestQuiet() {
	if err := s.writeManifest(); err != nil {
		s.reg.Trace().Emitf("svc.manifest", "write failed: %v", err)
	}
}
