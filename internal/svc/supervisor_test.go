package svc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/obs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// newCrashableService builds a goroutine-mode service whose shards sit
// on pinned faultfs-wrapped memory filesystems, so a shard can be
// crashed (ffs[i].Crash()) and the supervisor's reopen recovers from
// the same filesystem — unlike newLocalService, which hands every open
// a fresh MemFS.
func newCrashableService(t *testing.T, shards int, sup SupervisorConfig) (*Service, []*faultfs.FS) {
	t.Helper()
	reg := obs.NewRegistry()
	ffs := make([]*faultfs.FS, shards)
	for i := range ffs {
		ffs[i] = faultfs.New(vfs.NewMemFS())
	}
	s, err := New(Options{
		Shards: shards,
		OpenShard: func(i int) (*core.Manager, error) {
			return core.NewManager("store", core.ManagerOptions{
				Store: core.StoreOptions{FS: ffs[i], Async: true},
				Obs:   reg,
			})
		},
		Obs:        reg,
		Supervisor: sup,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, ffs
}

// shardKeys returns per-shard tenant keys: keys[i] routes to shard i.
func shardKeys(s *Service, tenant string) []string {
	keys := make([]string, s.Shards())
	found := 0
	for n := 0; found < len(keys); n++ {
		k := fmt.Sprintf("probe%04d", n)
		idx := s.routeIdx(nsKey(tenant, k))
		if keys[idx] == "" {
			keys[idx] = k
			found++
		}
	}
	return keys
}

func waitShardUp(t *testing.T, s *Service, idx int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := s.ShardStatuses()[idx]
		if st.State == "up" && st.Restarts >= 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("shard %d never restarted: %+v", idx, s.ShardStatuses()[idx])
}

// TestSupervisorBreakerRestart crashes a shard's backing filesystem and
// drives requests at it: the request-outcome breaker must trip, the
// supervisor must restart the shard on the same (rebooted) filesystem,
// and every barriered write must survive the round trip.
func TestSupervisorBreakerRestart(t *testing.T) {
	s, ffs := newCrashableService(t, 2, SupervisorConfig{RestartBackoff: time.Millisecond})
	defer s.Close()
	ten := s.Tenant("app")
	keys := shardKeys(s, "app")

	for i, k := range keys {
		if err := ten.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ten.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Kill shard 0's node. Reads may keep serving from the manager's
	// in-memory state, but writes and barriers hit the dead handles; the
	// breaker needs a few consecutive failures before it trips, and the
	// first raw (untyped) errors may surface to callers.
	if err := ffs[0].Crash(); err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for i := 0; i < 50 && !sawDown; i++ {
		err := ten.Put(keys[0], []byte("post-crash"))
		if err == nil {
			err = ten.Barrier()
		}
		var sde *ShardDownError
		if errors.As(err, &sde) {
			if sde.Shard != 0 || sde.Retry <= 0 {
				t.Fatalf("bad ShardDownError: %+v", sde)
			}
			sawDown = true
		}
		time.Sleep(time.Millisecond)
	}
	if !sawDown {
		t.Fatal("breaker never tripped into ShardDownError")
	}

	waitShardUp(t, s, 0)
	// The pre-crash barriered value must be restorable. A post-crash
	// overwrite may also have survived (recovery keeps unacked writes
	// whose log records made it down — allowed; the invariant is that
	// acked data is never lost, not that unacked data is).
	got, err := ten.Get(keys[0])
	if err != nil {
		t.Fatalf("post-restart Get(%s): %v", keys[0], err)
	}
	if string(got) != "v0" && string(got) != "post-crash" {
		t.Fatalf("post-restart Get(%s) = %q", keys[0], got)
	}
	if got, err := ten.Get(keys[1]); err != nil || string(got) != "v1" {
		t.Fatalf("healthy-shard Get = %q, %v", got, err)
	}
	if n := s.ShardStatuses()[1].Restarts; n != 0 {
		t.Fatalf("healthy shard restarted %d times", n)
	}
}

// TestSupervisorCrashShardSim injects a shard crash inside the
// simulator: requests fail fast with the typed error while the shard is
// down, and the restart process brings it back on virtual time.
func TestSupervisorCrashShardSim(t *testing.T) {
	kern := sim.NewKernel()
	fss := []vfs.FS{vfs.NewMemFS(), vfs.NewMemFS()}
	var s *Service
	kern.Spawn("main", func(p *sim.Proc) {
		var err error
		s, err = New(Options{
			Shards: 2,
			Kernel: kern,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager("store", core.ManagerOptions{
					Store: core.StoreOptions{FS: fss[i], Async: true},
				})
			},
			Supervisor: SupervisorConfig{RestartBackoff: time.Millisecond},
		})
		if err != nil {
			t.Error(err)
			return
		}
		ten := s.Tenant("app")
		keys := shardKeys(s, "app")
		for _, k := range keys {
			if err := ten.Put(k, []byte("x")); err != nil {
				t.Error(err)
				return
			}
		}
		if err := ten.Barrier(); err != nil {
			t.Error(err)
			return
		}

		if err := s.CrashShard(0); err != nil {
			t.Error(err)
			return
		}
		var sde *ShardDownError
		if _, err := ten.Get(keys[0]); !errors.As(err, &sde) {
			t.Errorf("Get on downed shard = %v, want ShardDownError", err)
		}
		if st := s.ShardStatuses()[0]; st.State != "down" && st.State != "restarting" {
			t.Errorf("crashed shard state = %q", st.State)
		}

		p.Sleep(time.Second) // let the restart worker run its backoff
		if got, err := ten.Get(keys[0]); err != nil || string(got) != "x" {
			t.Errorf("post-restart Get = %q, %v", got, err)
		}
		st := s.ShardStatuses()[0]
		if st.State != "up" || st.Restarts != 1 {
			t.Errorf("post-restart status = %+v", st)
		}
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	kern.Run()
}

// TestSupervisorDisabled verifies the opt-out: a crashed shard stays
// down (still failing fast with the typed error) and no breaker state
// is reported.
func TestSupervisorDisabled(t *testing.T) {
	s, _ := newCrashableService(t, 2, SupervisorConfig{Disabled: true})
	defer s.Close()
	ten := s.Tenant("app")
	keys := shardKeys(s, "app")
	if err := ten.Put(keys[0], []byte("x")); err != nil {
		t.Fatal(err)
	}

	if err := s.CrashShard(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	var sde *ShardDownError
	if _, err := ten.Get(keys[0]); !errors.As(err, &sde) {
		t.Fatalf("Get = %v, want ShardDownError", err)
	}
	st := s.ShardStatuses()[0]
	if st.State != "down" || st.Restarts != 0 || st.Breaker != "" {
		t.Fatalf("disabled-supervisor status = %+v", st)
	}
	// The other shard keeps serving.
	if _, err := ten.Get(keys[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("healthy shard Get = %v, want ErrNotFound", err)
	}
}

// TestCrashShardBadIndex covers the error path for a nonexistent slot.
func TestCrashShardBadIndex(t *testing.T) {
	s, _ := newCrashableService(t, 1, SupervisorConfig{})
	defer s.Close()
	if err := s.CrashShard(7); err == nil {
		t.Fatal("CrashShard(7) on a 1-shard pool succeeded")
	}
}
