package svc

import (
	"fmt"
	"testing"
)

// TestRingConsistency is the consistent-hash invariant: growing the
// ring from n to n+1 shards may move a key only onto the new shard,
// and shrinking from n+1 to n may move only keys that lived on the
// removed shard. Any other movement would force needless migration.
func TestRingConsistency(t *testing.T) {
	keys := make([]string, 5000)
	for i := range keys {
		keys[i] = nsKey(fmt.Sprintf("tenant%d", i%7), fmt.Sprintf("step%03d/block%05d", i%13, i))
	}
	for n := 1; n <= 8; n++ {
		small, big := NewRing(n), NewRing(n+1)
		movedIn, movedOut := 0, 0
		for _, k := range keys {
			a, b := small.Route(k), big.Route(k)
			if a != b {
				// Grow: the only legal new destination is shard n.
				if b != n {
					t.Fatalf("grow %d->%d moved %q from shard %d to %d (not the new shard)", n, n+1, k, a, b)
				}
				movedIn++
			}
			// Shrink is the same comparison read backwards: a key whose
			// route differs must have lived on the removed shard.
			if a != b && b != n {
				movedOut++
			}
		}
		if n > 1 && movedIn == 0 {
			t.Errorf("grow %d->%d moved no keys; new shard would stay empty", n, n+1)
		}
		if movedOut != 0 {
			t.Errorf("shrink %d->%d would move %d keys between surviving shards", n+1, n, movedOut)
		}
	}
}

// TestRingBalance checks that 64 vnodes per shard spread ownership
// reasonably: no empty shards and no shard far above its fair share.
func TestRingBalance(t *testing.T) {
	const shards, n = 8, 20000
	r := NewRing(shards)
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		counts[r.Route(nsKey("app", fmt.Sprintf("key%06d", i)))]++
	}
	avg := n / shards
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no keys", s)
		}
		if c > 3*avg {
			t.Errorf("shard %d owns %d keys, more than 3x the fair share %d", s, c, avg)
		}
	}
}

// TestRingRouteStable pins routing determinism: the same key always
// routes to the same shard across independently built rings.
func TestRingRouteStable(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for i := 0; i < 1000; i++ {
		k := nsKey("t", fmt.Sprintf("k%d", i))
		if a.Route(k) != b.Route(k) {
			t.Fatalf("key %q routed differently by identical rings", k)
		}
	}
}
