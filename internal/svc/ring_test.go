package svc

import (
	"fmt"
	"testing"
)

// TestRingConsistency is the consistent-hash invariant: growing the
// ring from n to n+1 shards may move a key only onto the new shard,
// and shrinking from n+1 to n may move only keys that lived on the
// removed shard. Any other movement would force needless migration.
func TestRingConsistency(t *testing.T) {
	keys := make([]string, 5000)
	for i := range keys {
		keys[i] = nsKey(fmt.Sprintf("tenant%d", i%7), fmt.Sprintf("step%03d/block%05d", i%13, i))
	}
	for n := 1; n <= 8; n++ {
		small, big := NewRing(n), NewRing(n+1)
		movedIn, movedOut := 0, 0
		for _, k := range keys {
			a, b := small.Route(k), big.Route(k)
			if a != b {
				// Grow: the only legal new destination is shard n.
				if b != n {
					t.Fatalf("grow %d->%d moved %q from shard %d to %d (not the new shard)", n, n+1, k, a, b)
				}
				movedIn++
			}
			// Shrink is the same comparison read backwards: a key whose
			// route differs must have lived on the removed shard.
			if a != b && b != n {
				movedOut++
			}
		}
		if n > 1 && movedIn == 0 {
			t.Errorf("grow %d->%d moved no keys; new shard would stay empty", n, n+1)
		}
		if movedOut != 0 {
			t.Errorf("shrink %d->%d would move %d keys between surviving shards", n+1, n, movedOut)
		}
	}
}

// TestRingBalance checks that 64 vnodes per shard spread ownership
// reasonably: no empty shards and no shard far above its fair share.
func TestRingBalance(t *testing.T) {
	const shards, n = 8, 20000
	r := NewRing(shards)
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		counts[r.Route(nsKey("app", fmt.Sprintf("key%06d", i)))]++
	}
	avg := n / shards
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no keys", s)
		}
		if c > 3*avg {
			t.Errorf("shard %d owns %d keys, more than 3x the fair share %d", s, c, avg)
		}
	}
}

// TestRingRouteStable pins routing determinism: the same key always
// routes to the same shard across independently built rings.
func TestRingRouteStable(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for i := 0; i < 1000; i++ {
		k := nsKey("t", fmt.Sprintf("k%d", i))
		if a.Route(k) != b.Route(k) {
			t.Fatalf("key %q routed differently by identical rings", k)
		}
	}
}

// TestRingSingleShard: with one shard every key routes to it — the
// degenerate ring must not wrap into garbage.
func TestRingSingleShard(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 500; i++ {
		if s := r.Route(nsKey("t", fmt.Sprintf("k%d", i))); s != 0 {
			t.Fatalf("single-shard ring routed key to shard %d", s)
		}
	}
}

// TestRingZeroShards: a ring cannot route over nothing — construction
// must panic rather than build a table that routes into thin air, and
// the service-level entry point (Rebalance) must refuse n <= 0 with an
// error instead of reaching that panic.
func TestRingZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestRebalanceToZeroShards(t *testing.T) {
	s := newLocalService(t, 2, AdmissionConfig{}, nil)
	defer s.Close()
	if err := s.Rebalance(0); err == nil {
		t.Fatal("Rebalance(0) succeeded; the last shard must not be removable")
	}
	if err := s.Rebalance(-3); err == nil {
		t.Fatal("Rebalance(-3) succeeded")
	}
	if s.Shards() != 2 {
		t.Fatalf("failed rebalance changed the pool to %d shards", s.Shards())
	}
}

// TestRingReAddDroppedShard: dropping a shard and re-adding it must
// restore the exact original routing (rings are pure functions of the
// shard count), and keys untouched by the shrink must never have moved
// at any point in the 3 -> 2 -> 3 cycle.
func TestRingReAddDroppedShard(t *testing.T) {
	r3a, r2, r3b := NewRing(3), NewRing(2), NewRing(3)
	for i := 0; i < 5000; i++ {
		k := nsKey(fmt.Sprintf("tenant%d", i%5), fmt.Sprintf("k%05d", i))
		before, during, after := r3a.Route(k), r2.Route(k), r3b.Route(k)
		if before != after {
			t.Fatalf("key %q moved (%d -> %d) across a drop/re-add cycle", k, before, after)
		}
		// Keys that did not live on the dropped shard stay put even
		// while it is gone.
		if before != 2 && during != before {
			t.Fatalf("key %q on shard %d moved to %d when an unrelated shard was dropped",
				k, before, during)
		}
	}
}
