// Package svc is the multi-tenant checkpoint service: a long-running
// front-end that multiplexes many tenants over a pool of sharded
// core.Manager stores. It generalizes the single-store collective-I/O
// request loop (internal/core/collective.go) into a real service:
//
//   - Sharding. Keys are namespaced per tenant ("t/<tenant>/<key>") and
//     routed over a consistent-hash Ring of shards, each shard backed by
//     its own core.Manager (and therefore its own LSM store). Growing or
//     shrinking the pool is a Rebalance: a background copy pass while
//     writes keep flowing, a brief write fence, a delta pass, an atomic
//     ring flip, then cleanup — no acknowledged write is ever dropped.
//   - Fair-share admission. A weighted GCRA token bucket per tenant
//     (bytes and ops), layered above the LSM engine's slowdown/stall
//     ladder: the engine ladder protects the store, admission divides
//     the service's front-door capacity between tenants so one noisy
//     tenant cannot inflate everyone else's tail latency. Requests that
//     would wait longer than MaxWait fail fast with a retryable
//     QuotaError.
//   - Transports. The same Service core serves two fronts: an
//     in-process client (Service.Tenant, goroutine mode, used by lsmiod
//     against a real filesystem) and a simulated-fabric front (Front /
//     Client, one server process per shard over netsim, used by the
//     ext-service experiment).
//
// Every layer records into internal/obs under the `svc.` prefix:
// per-tenant op/byte counters, admission-wait and request-latency
// histograms, per-shard op counters, and shard/epoch gauges.
//
// DESIGN.md §12 documents the sharding and rebalance protocol and how
// admission interacts with the engine's stall ladder.
package svc

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/iosched"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// ErrClosed reports an operation on a closed service or client; it is
// the same sentinel the core store layer uses, so errors.Is works
// across layers.
var ErrClosed = core.ErrClosed

// ErrNotFound re-exports the store miss sentinel for svc callers.
var ErrNotFound = core.ErrNotFound

// ErrRebalancing reports a Rebalance attempted while another one is
// still running.
var ErrRebalancing = errors.New("svc: rebalance already in progress")

// nsRoot prefixes every tenant key in the shard stores.
const nsRoot = "t/"

// nsKey namespaces a tenant key. Slashes in tenant names would alias
// other tenants' namespaces, so they are folded.
func nsKey(tenant, key string) string {
	if strings.ContainsRune(tenant, '/') {
		tenant = strings.ReplaceAll(tenant, "/", "_")
	}
	return nsRoot + tenant + "/" + key
}

// Options configures a Service.
type Options struct {
	// Shards is the initial shard count (default 1).
	Shards int
	// OpenShard opens the store behind shard i. Required. For a real
	// deployment it opens dir/ShardDirName(i); tests and the simulator
	// back shards with memory or pfs filesystems.
	OpenShard func(shard int) (*core.Manager, error)
	// Kernel must be set when the service runs inside the simulator;
	// nil means goroutine mode (real time, real concurrency).
	Kernel *sim.Kernel
	// Obs is the shared metrics registry (`svc.` prefix). Nil creates
	// one, clocked on the kernel's virtual time when Kernel is set.
	Obs *obs.Registry
	// Admission configures fair-share admission control.
	Admission AdmissionConfig
	// ManifestFS, when set, keeps a SERVICE.json manifest at the
	// filesystem root describing the shard layout and tenant quotas, so
	// offline tools (lsmioctl stats/tenants) can find and aggregate the
	// shard stores.
	ManifestFS vfs.FS
	// Supervisor configures per-shard health tracking and
	// crash-restart (on by default; see SupervisorConfig).
	Supervisor SupervisorConfig
	// IOSched is the shared bandwidth scheduler the shard stores draw
	// from. The service front-end never acquires tokens itself — the
	// shard managers do, through the StoreOptions their OpenShard
	// closure builds — but the service keeps the reference so one
	// instance demonstrably covers every shard and operator tooling
	// (lsmioctl stats) can surface per-class scheduler state alongside
	// service metrics. Nil when scheduling is disabled.
	IOSched *iosched.Scheduler
}

// Shard supervisor states (also the value of the per-shard state
// gauge: 0 up, 1 restarting, 2 down).
const (
	shardUp int32 = iota
	shardRestarting
	shardDown
)

func shardStateName(st int32) string {
	switch st {
	case shardUp:
		return "up"
	case shardRestarting:
		return "restarting"
	case shardDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", st)
}

// shard is one slot of the pool: a Manager plus its serialization lock
// (goroutine mode only; in the simulator the per-shard server process
// and cooperative scheduling serialize access).
type shard struct {
	idx int
	mgr *core.Manager
	mu  sync.Mutex
	ops *obs.Counter

	// Supervisor state. state/restarts/downAt are atomics so request
	// paths can fail fast without locks; mgr and health are swapped only
	// under the shard lock (goroutine mode) / cooperative scheduling
	// (simulator), with writers fenced.
	state    atomic.Int32
	restarts atomic.Int64
	downAt   atomic.Int64 // reg.Now() ns at which the shard went down
	health   *resil.Tracker
	gState   *obs.Gauge
}

// Service is the multi-tenant sharded checkpoint service.
type Service struct {
	kern  *sim.Kernel
	reg   *obs.Registry
	open  func(int) (*core.Manager, error)
	mfs   vfs.FS
	adm   *admission
	sup   *supervisor
	iosch *iosched.Scheduler

	// mu guards the routing state. It is never held across a blocking
	// store operation, so taking it from a simulation process is safe.
	mu          sync.RWMutex
	shards      []*shard
	ring        *Ring // authoritative routing table
	next        *Ring // rebalance target, nil outside a rebalance
	epoch       int
	closed      bool
	rebalancing bool
	phaseHook   func(phase string) // test hook, fired at rebalance phases

	// Write fencing: pauseMu guards paused, the in-flight write count,
	// and cutover ownership; writers wait on pauseCond (goroutine mode)
	// or pauseSig (simulator), the fence holder waits for inflight to
	// drain on pauseCond / fenceSig. Both a rebalance flip and a shard
	// restart need the pause gate, so they first take cutover ownership
	// (gateSig / pauseCond).
	pauseMu   sync.Mutex
	paused    bool
	cutover   bool
	inflight  int
	pauseCond *sync.Cond
	pauseSig  *sim.Signal
	fenceSig  *sim.Signal
	gateSig   *sim.Signal

	gShards     *obs.Gauge
	gEpoch      *obs.Gauge
	gConns      *obs.Gauge
	cRebalances *obs.Counter
	cMoved      *obs.Counter
	cPasses     *obs.Counter
	cApplyErrs  *obs.Counter
}

// New opens the shard pool and starts the service. Inside the
// simulator it must be called from a simulation process (opening the
// shard stores performs I/O).
func New(opts Options) (*Service, error) {
	if opts.OpenShard == nil {
		return nil, errors.New("svc: Options.OpenShard is required")
	}
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
		if k := opts.Kernel; k != nil {
			reg.SetClock(func() time.Duration { return k.Now().Duration() })
		}
	}
	s := &Service{
		kern:        opts.Kernel,
		reg:         reg,
		open:        opts.OpenShard,
		mfs:         opts.ManifestFS,
		iosch:       opts.IOSched,
		adm:         newAdmission(opts.Admission, reg),
		ring:        NewRing(n),
		gShards:     reg.Gauge("svc.shards"),
		gEpoch:      reg.Gauge("svc.epoch"),
		gConns:      reg.Gauge("svc.conns"),
		cRebalances: reg.Counter("svc.rebalances"),
		cMoved:      reg.Counter("svc.rebalance.moved_keys"),
		cPasses:     reg.Counter("svc.rebalance.passes"),
		cApplyErrs:  reg.Counter("svc.apply_errors"),
	}
	s.pauseCond = sync.NewCond(&s.pauseMu)
	if s.kern != nil {
		s.pauseSig = sim.NewSignal(s.kern)
		s.fenceSig = sim.NewSignal(s.kern)
		s.gateSig = sim.NewSignal(s.kern)
	}
	s.sup = newSupervisor(s, opts.Supervisor)
	for i := 0; i < n; i++ {
		sh, err := s.openShard(i)
		if err != nil {
			for _, prev := range s.shards {
				prev.mgr.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	s.gShards.Set(int64(n))
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	s.sup.start()
	return s, nil
}

func (s *Service) openShard(i int) (*shard, error) {
	mgr, err := s.open(i)
	if err != nil {
		return nil, fmt.Errorf("svc: open shard %d: %w", i, err)
	}
	sh := &shard{
		idx:    i,
		mgr:    mgr,
		ops:    s.reg.Counter(fmt.Sprintf("svc.shard.%03d.ops", i)),
		health: s.sup.newTracker(),
		gState: s.reg.Gauge(fmt.Sprintf("svc.shard.%03d.state", i)),
	}
	sh.gState.Set(int64(shardUp))
	return sh, nil
}

// Obs returns the service's metrics registry.
func (s *Service) Obs() *obs.Registry { return s.reg }

// Kernel returns the simulation kernel, nil in goroutine mode.
func (s *Service) Kernel() *sim.Kernel { return s.kern }

// IOScheduler returns the shared bandwidth scheduler the shard stores
// draw from, nil when scheduling is disabled.
func (s *Service) IOScheduler() *iosched.Scheduler { return s.iosch }

// Shards reports the current shard count.
func (s *Service) Shards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.shards)
}

// Epoch reports how many rebalances have completed.
func (s *Service) Epoch() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

func (s *Service) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// RegisterTenant declares a tenant's weight and quotas, recomputing
// every tenant's fair share. Registering an existing tenant updates
// its configuration in place.
func (s *Service) RegisterTenant(name string, cfg TenantConfig) (*Tenant, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	ts := s.adm.tenant(name, &cfg)
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return &Tenant{s: s, ts: ts}, nil
}

// Tenant returns the named tenant's in-process client, registering the
// tenant with default settings (weight 1, no caps) on first use.
func (s *Service) Tenant(name string) *Tenant {
	return &Tenant{s: s, ts: s.adm.tenant(name, nil)}
}

// TenantNames returns the registered tenants, sorted.
func (s *Service) TenantNames() []string {
	s.adm.mu.Lock()
	defer s.adm.mu.Unlock()
	names := make([]string, 0, len(s.adm.tenants))
	for n := range s.adm.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- write fencing ----------------------------------------------------

// enterWrites blocks while writes are paused by a rebalance cutover,
// then registers n in-flight write applications. Every registered
// application must be balanced by exitWrite (at apply completion, which
// for the fabric front happens on the shard server).
func (s *Service) enterWrites(n int) {
	if s.kern != nil {
		p := s.kern.Current()
		for {
			s.pauseMu.Lock()
			if !s.paused {
				s.inflight += n
				s.pauseMu.Unlock()
				return
			}
			s.pauseMu.Unlock()
			s.pauseSig.Wait(p)
		}
	}
	s.pauseMu.Lock()
	for s.paused {
		s.pauseCond.Wait()
	}
	s.inflight += n
	s.pauseMu.Unlock()
}

// exitWrite retires one in-flight write application, waking a pending
// fence when the last one drains. The broadcast is not gated on paused:
// Close fences without pausing (nothing new is admitted once closed),
// and its fence must still wake when the last write lands.
func (s *Service) exitWrite() {
	s.pauseMu.Lock()
	s.inflight--
	drained := s.inflight == 0
	s.pauseMu.Unlock()
	if drained {
		if s.kern != nil {
			s.fenceSig.Broadcast()
		} else {
			s.pauseCond.Broadcast()
		}
	}
}

// setPaused flips the write gate. Resuming wakes every blocked writer.
func (s *Service) setPaused(on bool) {
	s.pauseMu.Lock()
	s.paused = on
	s.pauseMu.Unlock()
	if !on {
		if s.kern != nil {
			s.pauseSig.Broadcast()
		} else {
			s.pauseCond.Broadcast()
		}
	}
}

// fenceWrites waits until every in-flight write application has been
// applied. Callers set the pause gate first, so the count can only
// drain.
func (s *Service) fenceWrites() {
	if s.kern != nil {
		p := s.kern.Current()
		for {
			s.pauseMu.Lock()
			n := s.inflight
			s.pauseMu.Unlock()
			if n == 0 {
				return
			}
			s.fenceSig.Wait(p)
		}
	}
	s.pauseMu.Lock()
	for s.inflight > 0 {
		s.pauseCond.Wait()
	}
	s.pauseMu.Unlock()
}

// acquireCutover takes exclusive ownership of the pause gate. A
// rebalance flip and a shard-restart swap both need to pause and fence
// writers; ownership serializes them so neither can resume the other's
// pause mid-swap.
func (s *Service) acquireCutover() {
	if s.kern != nil {
		p := s.kern.Current()
		for {
			s.pauseMu.Lock()
			if !s.cutover {
				s.cutover = true
				s.pauseMu.Unlock()
				return
			}
			s.pauseMu.Unlock()
			s.gateSig.Wait(p)
		}
	}
	s.pauseMu.Lock()
	for s.cutover {
		s.pauseCond.Wait()
	}
	s.cutover = true
	s.pauseMu.Unlock()
}

func (s *Service) releaseCutover() {
	s.pauseMu.Lock()
	s.cutover = false
	s.pauseMu.Unlock()
	if s.kern != nil {
		s.gateSig.Broadcast()
	} else {
		s.pauseCond.Broadcast()
	}
}

// dupWrite registers one extra in-flight write application without
// checking the pause gate: a fault-plan duplicated delivery re-applies
// a write that was already admitted through enterWrites, and blocking
// here could deadlock against a cutover that is already fencing.
func (s *Service) dupWrite() {
	s.pauseMu.Lock()
	s.inflight++
	s.pauseMu.Unlock()
}

// sleep charges an admission delay to the caller: virtual time inside
// the simulator, wall time outside.
func (s *Service) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.kern != nil {
		if p := s.kern.Current(); p != nil {
			p.Sleep(d)
			return
		}
	}
	time.Sleep(d)
}

// ---- routing ----------------------------------------------------------

// routeWrite returns the authoritative shard for a namespaced key and,
// during a rebalance, the shadow shard under the target ring (for
// deletes, which must erase any migrated copy too).
func (s *Service) routeWrite(nsk string) (dst, shadow *shard) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := s.ring.Route(nsk)
	dst = s.shards[i]
	if s.next != nil {
		if j := s.next.Route(nsk); j != i {
			shadow = s.shards[j]
		}
	}
	return dst, shadow
}

// routeIdx returns the authoritative shard index for a namespaced key.
func (s *Service) routeIdx(nsk string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Route(nsk)
}

// shadowIdx returns the rebalance-target shard index for a namespaced
// key when it differs from the authoritative one, else -1.
func (s *Service) shadowIdx(nsk string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.next == nil {
		return -1
	}
	i, j := s.ring.Route(nsk), s.next.Route(nsk)
	if i == j {
		return -1
	}
	return j
}

// shardAt returns shard i, or nil when the index is out of range
// (possible transiently after a shrink).
func (s *Service) shardAt(i int) *shard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

// snapshotRing returns the authoritative ring and shard slice.
func (s *Service) snapshotRing() (*Ring, []*shard) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring, append([]*shard(nil), s.shards...)
}

// ---- shard application ------------------------------------------------

// lock serializes direct shard access in goroutine mode. Inside the
// simulator the cooperative scheduler plus the one-server-per-shard
// front provide the serialization, and holding a sync.Mutex across a
// virtual-time park could deadlock the kernel, so the lock is skipped.
func (s *Service) lock(sh *shard) {
	if s.kern == nil {
		sh.mu.Lock()
	}
}

func (s *Service) unlock(sh *shard) {
	if s.kern == nil {
		sh.mu.Unlock()
	}
}

// shardUp fails fast when sh is not serving: callers get a typed
// retryable ShardDownError (or ErrClosed during shutdown) instead of
// touching a dead store. Must be called with the shard lock held.
func (s *Service) shardUp(sh *shard) error {
	if sh.state.Load() == shardUp && sh.mgr != nil {
		return nil
	}
	if s.isClosed() {
		return ErrClosed
	}
	return &ShardDownError{Shard: sh.idx, State: shardStateName(sh.state.Load()), Retry: s.sup.retryHint()}
}

// observe feeds one request outcome into the shard's health breaker and
// kicks the supervisor when the breaker trips. An op that raced a crash
// (the shard left Up while it was in flight) is converted to the typed
// retryable form so tenants never see the dying store's raw error.
// Must be called with the shard lock held.
func (s *Service) observe(sh *shard, start time.Duration, err error) error {
	if err == nil || errors.Is(err, ErrNotFound) {
		if sh.health != nil {
			sh.health.ObserveOK(0, s.reg.Now()-start)
		}
		return err
	}
	if sh.state.Load() != shardUp {
		return &ShardDownError{Shard: sh.idx, State: shardStateName(sh.state.Load()), Retry: s.sup.retryHint()}
	}
	if s.isClosed() {
		return err
	}
	if sh.health != nil {
		sh.health.ObserveErr(0)
		if sh.health.State(0) != resil.Closed {
			s.sup.kick(sh, err)
			if sh.state.Load() != shardUp {
				return &ShardDownError{Shard: sh.idx, State: shardStateName(sh.state.Load()), Retry: s.sup.retryHint()}
			}
		}
	}
	return err
}

func (s *Service) applyPut(sh *shard, nsk string, value []byte) error {
	s.lock(sh)
	defer s.unlock(sh)
	if err := s.shardUp(sh); err != nil {
		return err
	}
	sh.ops.Inc()
	start := s.reg.Now()
	return s.observe(sh, start, sh.mgr.Put(nsk, value))
}

func (s *Service) applyDel(sh *shard, nsk string) error {
	s.lock(sh)
	defer s.unlock(sh)
	if err := s.shardUp(sh); err != nil {
		return err
	}
	sh.ops.Inc()
	start := s.reg.Now()
	return s.observe(sh, start, sh.mgr.Del(nsk))
}

func (s *Service) applyGet(sh *shard, nsk string) ([]byte, error) {
	s.lock(sh)
	defer s.unlock(sh)
	if err := s.shardUp(sh); err != nil {
		return nil, err
	}
	sh.ops.Inc()
	start := s.reg.Now()
	v, err := sh.mgr.Get(nsk)
	return v, s.observe(sh, start, err)
}

func (s *Service) applyBarrier(sh *shard) error {
	s.lock(sh)
	defer s.unlock(sh)
	if err := s.shardUp(sh); err != nil {
		return err
	}
	sh.ops.Inc()
	start := s.reg.Now()
	return s.observe(sh, start, sh.mgr.WriteBarrier())
}

// scanShard sweeps shard i for keys under nsPrefix that the ring
// actually routes to i, dropping not-yet-cleaned migration leftovers.
func (s *Service) scanShard(r *Ring, sh *shard, nsPrefix string) ([]Pair, error) {
	s.lock(sh)
	defer s.unlock(sh)
	if err := s.shardUp(sh); err != nil {
		return nil, err
	}
	sh.ops.Inc()
	start := s.reg.Now()
	var out []Pair
	err := sh.mgr.ReadBatch(nsPrefix, func(k string, v []byte) bool {
		if r.Route(k) == sh.idx {
			out = append(out, Pair{Key: k, Value: append([]byte(nil), v...)})
		}
		return true
	})
	return out, s.observe(sh, start, err)
}

// Pair is one key/value from a Scan.
type Pair struct {
	Key   string
	Value []byte
}

// ---- in-process client (the thin client library) ----------------------

// Tenant is a tenant-scoped in-process client for the service: the
// goroutine-mode transport lsmiod uses, and the reference semantics the
// fabric Client mirrors. All methods are safe for concurrent use.
type Tenant struct {
	s  *Service
	ts *tenantState
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.ts.name }

// Put stores key for this tenant (asynchronous; durable at the next
// Barrier). Fair-share admission may delay or reject it.
func (t *Tenant) Put(key string, value []byte) error {
	s := t.s
	if s.isClosed() {
		return ErrClosed
	}
	start := s.reg.Now()
	wait, err := s.adm.admit(t.ts, len(value), 1)
	if err != nil {
		return err
	}
	s.sleep(wait)
	s.enterWrites(1)
	dst, _ := s.routeWrite(nsKey(t.ts.name, key))
	err = s.applyPut(dst, nsKey(t.ts.name, key), value)
	s.exitWrite()
	t.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return err
}

// Del removes key. During a rebalance the delete also lands on the
// target-ring shard so no migrated copy can resurrect the key.
func (t *Tenant) Del(key string) error {
	s := t.s
	if s.isClosed() {
		return ErrClosed
	}
	start := s.reg.Now()
	wait, err := s.adm.admit(t.ts, 0, 1)
	if err != nil {
		return err
	}
	s.sleep(wait)
	s.enterWrites(1)
	nsk := nsKey(t.ts.name, key)
	dst, shadow := s.routeWrite(nsk)
	err = s.applyDel(dst, nsk)
	if err == nil && shadow != nil {
		err = s.applyDel(shadow, nsk)
	}
	s.exitWrite()
	t.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return err
}

// Get returns the tenant's value for key.
func (t *Tenant) Get(key string) ([]byte, error) {
	s := t.s
	if s.isClosed() {
		return nil, ErrClosed
	}
	start := s.reg.Now()
	wait, err := s.adm.admit(t.ts, 0, 1)
	if err != nil {
		return nil, err
	}
	s.sleep(wait)
	nsk := nsKey(t.ts.name, key)
	dst, _ := s.routeWrite(nsk)
	v, err := s.applyGet(dst, nsk)
	t.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return v, err
}

// Scan calls fn for every tenant key with the given prefix, in key
// order, with the namespace stripped. Scans concurrent with a
// rebalance are best-effort.
func (t *Tenant) Scan(prefix string, fn func(key string, value []byte) bool) error {
	s := t.s
	if s.isClosed() {
		return ErrClosed
	}
	if _, err := s.adm.admit(t.ts, 0, 1); err != nil {
		return err
	}
	ns := nsKey(t.ts.name, prefix)
	strip := len(nsKey(t.ts.name, ""))
	ring, shards := s.snapshotRing()
	var all []Pair
	for _, sh := range shards {
		pairs, err := s.scanShard(ring, sh, ns)
		if err != nil {
			return err
		}
		all = append(all, pairs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	for _, pr := range all {
		if !fn(pr.Key[strip:], pr.Value) {
			break
		}
	}
	return nil
}

// Barrier flushes every shard, making all of the tenant's earlier puts
// durable (the end-of-checkpoint commit point).
func (t *Tenant) Barrier() error {
	s := t.s
	if s.isClosed() {
		return ErrClosed
	}
	start := s.reg.Now()
	_, shards := s.snapshotRing()
	for _, sh := range shards {
		if err := s.applyBarrier(sh); err != nil {
			return err
		}
	}
	t.ts.reqLat.ObserveDuration(s.reg.Now() - start)
	return nil
}

// ---- lifecycle --------------------------------------------------------

// Close fences in-flight writes, stops the supervisor, and closes
// every shard store. Close is idempotent — a second call is a no-op
// returning nil — while all other post-close operations return
// ErrClosed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	shards := s.shards
	s.mu.Unlock()
	// Stop the prober and wait for goroutine-mode restart workers so a
	// restart cannot install a fresh manager after we close the pool
	// (simulator restart procs abort on the isClosed checks instead).
	s.sup.stop()
	s.fenceWrites()
	var first error
	for _, sh := range shards {
		s.lock(sh)
		mgr := sh.mgr
		sh.mgr = nil
		s.unlock(sh)
		if mgr == nil {
			continue // crashed and not yet restarted
		}
		if err := mgr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// keyEqual reports whether two values are byte-identical.
func keyEqual(a, b []byte) bool { return bytes.Equal(a, b) }
