package svc

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"lsmio/internal/obs"
)

// QuotaError reports a request rejected by fair-share admission: the
// tenant's token debt is so deep that admitting the request would mean
// waiting longer than the configured MaxWait. It is retryable —
// resil.Classify maps it to ClassTransient — and RetryAfter tells the
// client how long the bucket needs to drain before the request would
// be admitted.
type QuotaError struct {
	Tenant     string
	Resource   string // "bytes" or "ops"
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("svc: tenant %q over %s quota (retry after %v)", e.Tenant, e.Resource, e.RetryAfter)
}

// TransientFault marks the rejection retryable for resil.Classify.
func (e *QuotaError) TransientFault() bool { return true }

// TenantConfig sets a tenant's fair-share weight and hard quotas. The
// zero value means weight 1 and no per-tenant caps (the tenant is still
// bounded by its weighted share of the service capacity, when one is
// configured).
type TenantConfig struct {
	// Weight is the tenant's fair-share weight; the tenant's slice of
	// the service capacity is Weight over the sum of all registered
	// weights. Zero or negative means 1.
	Weight float64
	// BytesPerSec / OpsPerSec are hard per-tenant rate caps applied on
	// top of the weighted share. Zero means no cap.
	BytesPerSec float64
	OpsPerSec   float64
	// BurstBytes / BurstOps size the tenant's token buckets (how far a
	// tenant may run ahead of its sustained rate). Zero picks a default
	// of a quarter second at the tenant's rate.
	BurstBytes float64
	BurstOps   float64
}

// AdmissionConfig configures the service-wide fair-share admission
// control. The zero value enables admission with no capacity limits:
// every request is admitted immediately until tenants carry hard
// quotas or a capacity is set.
type AdmissionConfig struct {
	// Disabled turns fair-share admission off entirely (requests go
	// straight to the shards); used as the control arm of the
	// ext-service experiment.
	Disabled bool
	// CapacityBytesPerSec / CapacityOpsPerSec are the aggregate service
	// capacity split between tenants by weight. Zero means unlimited.
	CapacityBytesPerSec float64
	CapacityOpsPerSec   float64
	// MaxWait bounds how long a request may be delayed by admission
	// before it is rejected with a QuotaError instead (default 2s).
	MaxWait time.Duration
}

const defaultMaxWait = 2 * time.Second

// gcra is a deterministic token bucket in GCRA (virtual scheduling)
// form: tat is the theoretical arrival time of the next conforming
// request. It needs no background refill process and, running on the
// registry's (virtual) clock, behaves identically under the simulator
// and in real time.
type gcra struct {
	rate  float64 // units per second; <= 0 means unlimited
	burst float64 // bucket depth in units
	tat   time.Duration
}

func unitsDur(n, rate float64) time.Duration {
	return time.Duration(n / rate * float64(time.Second))
}

// need returns how long a request for n units must wait to conform,
// without committing it.
func (g *gcra) need(now time.Duration, n float64) time.Duration {
	if g.rate <= 0 || n <= 0 {
		return 0
	}
	tat := g.tat
	if now > tat {
		tat = now
	}
	w := tat - unitsDur(g.burst, g.rate) - now
	if w < 0 {
		w = 0
	}
	return w
}

// commit reserves n units at now, advancing the bucket debt.
func (g *gcra) commit(now time.Duration, n float64) {
	if g.rate <= 0 || n <= 0 {
		return
	}
	if now > g.tat {
		g.tat = now
	}
	g.tat += unitsDur(n, g.rate)
}

// tenantState is one tenant's admission buckets plus its cached
// instrument handles.
type tenantState struct {
	name   string
	cfg    TenantConfig
	bytesB gcra
	opsB   gcra

	ops     *obs.Counter
	bytesIn *obs.Counter
	rejects *obs.Counter
	admWait *obs.Histogram
	reqLat  *obs.Histogram
}

func (ts *tenantState) weight() float64 {
	if ts.cfg.Weight <= 0 {
		return 1
	}
	return ts.cfg.Weight
}

// admission is the service-wide fair-share admission controller: one
// weighted GCRA pair (bytes, ops) per tenant, with rates recomputed
// whenever the tenant set or a weight changes.
type admission struct {
	cfg AdmissionConfig
	reg *obs.Registry

	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newAdmission(cfg AdmissionConfig, reg *obs.Registry) *admission {
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = defaultMaxWait
	}
	return &admission{cfg: cfg, reg: reg, tenants: make(map[string]*tenantState)}
}

// metricName makes a tenant name safe as a dotted-path segment.
func metricName(tenant string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', '/', ' ':
			return '_'
		}
		return r
	}, tenant)
}

// tenant returns (registering on first use) the named tenant's state.
func (a *admission) tenant(name string, cfg *TenantConfig) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts, ok := a.tenants[name]
	if !ok {
		pfx := "svc.tenant." + metricName(name) + "."
		ts = &tenantState{
			name:    name,
			ops:     a.reg.Counter(pfx + "ops"),
			bytesIn: a.reg.Counter(pfx + "bytes_in"),
			rejects: a.reg.Counter(pfx + "quota_rejects"),
			admWait: a.reg.Histogram(pfx + "admission_wait_ns"),
			reqLat:  a.reg.Histogram(pfx + "request_ns"),
		}
		a.tenants[name] = ts
	}
	if cfg != nil {
		ts.cfg = *cfg
	}
	if !ok || cfg != nil {
		a.recomputeLocked()
	}
	return ts
}

// recomputeLocked re-derives every tenant's bucket rates from the
// capacity split by weight, intersected with the tenant's hard caps.
func (a *admission) recomputeLocked() {
	var sumW float64
	for _, ts := range a.tenants {
		sumW += ts.weight()
	}
	for _, ts := range a.tenants {
		share := func(capacity float64) float64 {
			if capacity <= 0 || sumW <= 0 {
				return 0
			}
			return capacity * ts.weight() / sumW
		}
		ts.bytesB.rate = combineRate(ts.cfg.BytesPerSec, share(a.cfg.CapacityBytesPerSec))
		ts.opsB.rate = combineRate(ts.cfg.OpsPerSec, share(a.cfg.CapacityOpsPerSec))
		ts.bytesB.burst = burstOr(ts.cfg.BurstBytes, ts.bytesB.rate, 64<<10)
		ts.opsB.burst = burstOr(ts.cfg.BurstOps, ts.opsB.rate, 16)
	}
}

// combineRate intersects a hard cap and a fair share: the tighter of
// the two positive rates, unlimited when both are zero.
func combineRate(hard, share float64) float64 {
	switch {
	case hard <= 0:
		return share
	case share <= 0:
		return hard
	case hard < share:
		return hard
	default:
		return share
	}
}

// burstOr picks the configured burst or a default of a quarter second
// at the sustained rate, floored at min.
func burstOr(cfg, rate, min float64) float64 {
	if cfg > 0 {
		return cfg
	}
	b := rate / 4
	if b < min {
		b = min
	}
	return b
}

// admit decides one request of nBytes/nOps for tenant ts. It returns
// the admission delay the caller must sleep before proceeding, or a
// QuotaError when the delay would exceed MaxWait. Counters are charged
// on admission (the request will run); rejects are counted separately.
func (a *admission) admit(ts *tenantState, nBytes, nOps int) (time.Duration, error) {
	a.mu.Lock()
	ts.ops.Add(int64(nOps))
	ts.bytesIn.Add(int64(nBytes))
	if a.cfg.Disabled {
		a.mu.Unlock()
		ts.admWait.Observe(0)
		return 0, nil
	}
	now := a.reg.Now()
	wb := ts.bytesB.need(now, float64(nBytes))
	wo := ts.opsB.need(now, float64(nOps))
	wait, resource := wb, "bytes"
	if wo > wait {
		wait, resource = wo, "ops"
	}
	if wait > a.cfg.MaxWait {
		ts.rejects.Inc()
		a.mu.Unlock()
		return 0, &QuotaError{Tenant: ts.name, Resource: resource, RetryAfter: wait}
	}
	ts.bytesB.commit(now, float64(nBytes))
	ts.opsB.commit(now, float64(nOps))
	a.mu.Unlock()
	ts.admWait.ObserveDuration(wait)
	return wait, nil
}
