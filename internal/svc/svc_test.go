package svc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/vfs"
)

// newLocalService builds a goroutine-mode service: every shard on its
// own MemFS, one shared registry, optional manifest filesystem.
func newLocalService(t *testing.T, shards int, adm AdmissionConfig, mfs vfs.FS) *Service {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := New(Options{
		Shards: shards,
		OpenShard: func(i int) (*core.Manager, error) {
			return core.NewManager("store", core.ManagerOptions{
				Store: core.StoreOptions{FS: vfs.NewMemFS(), Async: true},
				Obs:   reg,
			})
		},
		Obs:        reg,
		Admission:  adm,
		ManifestFS: mfs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocalBasic(t *testing.T) {
	mfs := vfs.NewMemFS()
	s := newLocalService(t, 3, AdmissionConfig{}, mfs)
	defer s.Close()

	a := s.Tenant("app-a")
	b := s.Tenant("app-b")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("step000/block%03d", i)
		if err := a.Put(key, []byte(fmt.Sprintf("a%03d", i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(key, []byte(fmt.Sprintf("b%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Tenant namespaces are disjoint: same key, different values.
	v, err := a.Get("step000/block007")
	if err != nil || string(v) != "a007" {
		t.Fatalf("tenant a read %q, %v", v, err)
	}
	v, err = b.Get("step000/block007")
	if err != nil || string(v) != "b007" {
		t.Fatalf("tenant b read %q, %v", v, err)
	}
	if _, err := a.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss returned %v, want ErrNotFound", err)
	}

	// Scan sees only the tenant's own keys, in order, unprefixed.
	var keys []string
	if err := a.Scan("step000/", func(k string, v []byte) bool {
		if !bytes.HasPrefix(v, []byte("a")) {
			t.Fatalf("tenant a scan leaked value %q", v)
		}
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 50 || keys[0] != "step000/block000" || keys[49] != "step000/block049" {
		t.Fatalf("scan returned %d keys (first %q)", len(keys), keys[0])
	}

	if err := a.Del("step000/block007"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("step000/block007"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still readable: %v", err)
	}

	// The manifest reflects the layout and tenant table.
	m, err := ReadManifest(mfs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 3 || len(m.Tenants) != 0 {
		// Tenants registered via Tenant() (defaults) only enter the
		// manifest after an explicit RegisterTenant.
		t.Logf("manifest: %+v", m)
	}
	if _, err := s.RegisterTenant("app-a", TenantConfig{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	m, err = ReadManifest(mfs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 3 || len(m.Tenants) == 0 || m.Tenants[0].Weight != 2 {
		t.Fatalf("manifest after register: %+v", m)
	}
}

func TestLocalRebalance(t *testing.T) {
	s := newLocalService(t, 1, AdmissionConfig{}, nil)
	defer s.Close()
	tn := s.Tenant("app")
	const n = 300
	for i := 0; i < n; i++ {
		if err := tn.Put(fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.Barrier(); err != nil {
		t.Fatal(err)
	}

	if err := s.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 || s.Epoch() != 1 {
		t.Fatalf("after grow: shards=%d epoch=%d", s.Shards(), s.Epoch())
	}
	if moved := s.reg.Counter("svc.rebalance.moved_keys").Load(); moved == 0 {
		t.Fatal("grow to 4 shards moved no keys")
	}
	count := 0
	if err := tn.Scan("", func(k string, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("after grow: scan found %d keys, want %d", count, n)
	}
	for i := 0; i < n; i += 17 {
		v, err := tn.Get(fmt.Sprintf("k%04d", i))
		if err != nil || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("k%04d after grow: %q %v", i, v, err)
		}
	}

	// Shrink back down: removed shards' keys must come home.
	if err := s.Rebalance(2); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 2 || s.Epoch() != 2 {
		t.Fatalf("after shrink: shards=%d epoch=%d", s.Shards(), s.Epoch())
	}
	count = 0
	if err := tn.Scan("", func(k string, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("after shrink: scan found %d keys, want %d", count, n)
	}
}

// TestConcurrentTenants drives N goroutine tenants into a shared shard
// pool; with -race this is the data-race regression for the service
// core.
func TestConcurrentTenants(t *testing.T) {
	s := newLocalService(t, 2, AdmissionConfig{}, nil)
	defer s.Close()
	const tenants, puts = 8, 120
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			tn := s.Tenant(fmt.Sprintf("tenant%d", ti))
			for i := 0; i < puts; i++ {
				if err := tn.Put(fmt.Sprintf("k%04d", i), bytes.Repeat([]byte{byte(ti)}, 128)); err != nil {
					errs <- err
					return
				}
			}
			if err := tn.Barrier(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for ti := 0; ti < tenants; ti++ {
		tn := s.Tenant(fmt.Sprintf("tenant%d", ti))
		count := 0
		if err := tn.Scan("", func(k string, v []byte) bool {
			if len(v) != 128 || v[0] != byte(ti) {
				t.Fatalf("tenant %d key %s holds foreign value", ti, k)
			}
			count++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if count != puts {
			t.Fatalf("tenant %d has %d keys, want %d", ti, count, puts)
		}
	}
}

// TestConcurrentRebalance commits from several tenants while the pool
// grows underneath them: no acknowledged write may be lost.
func TestConcurrentRebalance(t *testing.T) {
	s := newLocalService(t, 2, AdmissionConfig{}, nil)
	defer s.Close()
	const tenants, puts = 4, 200
	var wg sync.WaitGroup
	errs := make(chan error, tenants+1)
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			tn := s.Tenant(fmt.Sprintf("tenant%d", ti))
			for i := 0; i < puts; i++ {
				if err := tn.Put(fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("%d-%04d", ti, i))); err != nil {
					errs <- err
					return
				}
			}
			if err := tn.Barrier(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
		if err := s.Rebalance(5); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Shards() != 5 {
		t.Fatalf("shards=%d after rebalance", s.Shards())
	}
	for ti := 0; ti < tenants; ti++ {
		tn := s.Tenant(fmt.Sprintf("tenant%d", ti))
		for i := 0; i < puts; i++ {
			want := fmt.Sprintf("%d-%04d", ti, i)
			v, err := tn.Get(fmt.Sprintf("k%04d", i))
			if err != nil || string(v) != want {
				t.Fatalf("tenant %d k%04d after rebalance: %q %v", ti, i, v, err)
			}
		}
	}
}

func TestQuotaExhaustion(t *testing.T) {
	s := newLocalService(t, 1, AdmissionConfig{
		CapacityBytesPerSec: 1 << 20, // 1 MB/s
		MaxWait:             20 * time.Millisecond,
	}, nil)
	defer s.Close()
	if _, err := s.RegisterTenant("greedy", TenantConfig{Weight: 1, BurstBytes: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	tn := s.Tenant("greedy")
	var qe *QuotaError
	var last error
	for i := 0; i < 64 && qe == nil; i++ {
		last = tn.Put(fmt.Sprintf("k%d", i), make([]byte, 32<<10))
		errors.As(last, &qe)
	}
	if qe == nil {
		t.Fatal("quota never exhausted")
	}
	if got := resil.Classify(last); got != resil.ClassTransient {
		t.Fatalf("QuotaError classified %v, want transient", got)
	}
	if qe.RetryAfter <= 0 || qe.Tenant != "greedy" {
		t.Fatalf("unexpected QuotaError: %+v", qe)
	}
	if s.reg.Counter("svc.tenant.greedy.quota_rejects").Load() == 0 {
		t.Fatal("rejects counter not incremented")
	}
}

// TestFairShareWeights verifies the admission math directly: with a
// shared capacity, a weight-3 tenant gets three times the byte rate of
// a weight-1 tenant.
func TestFairShareWeights(t *testing.T) {
	s := newLocalService(t, 1, AdmissionConfig{CapacityBytesPerSec: 4 << 20}, nil)
	defer s.Close()
	if _, err := s.RegisterTenant("heavy", TenantConfig{Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterTenant("light", TenantConfig{Weight: 1}); err != nil {
		t.Fatal(err)
	}
	s.adm.mu.Lock()
	heavy := s.adm.tenants["heavy"].bytesB.rate
	light := s.adm.tenants["light"].bytesB.rate
	s.adm.mu.Unlock()
	if heavy != 3<<20 || light != 1<<20 {
		t.Fatalf("rates heavy=%v light=%v, want 3MiB/1MiB split", heavy, light)
	}
	// A hard cap tightens the share, never loosens it.
	if _, err := s.RegisterTenant("heavy", TenantConfig{Weight: 3, BytesPerSec: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	s.adm.mu.Lock()
	capped := s.adm.tenants["heavy"].bytesB.rate
	s.adm.mu.Unlock()
	if capped != 1<<20 {
		t.Fatalf("hard cap ignored: rate=%v", capped)
	}
}

// TestZeroWeightTenant: a zero (or negative) Weight means weight 1,
// never a zero share — a misconfigured tenant must still be admitted,
// and must not poison the shared-capacity split for everyone else.
func TestZeroWeightTenant(t *testing.T) {
	s := newLocalService(t, 1, AdmissionConfig{CapacityBytesPerSec: 4 << 20}, nil)
	defer s.Close()
	if _, err := s.RegisterTenant("zero", TenantConfig{Weight: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterTenant("neg", TenantConfig{Weight: -2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterTenant("one", TenantConfig{Weight: 1}); err != nil {
		t.Fatal(err)
	}
	s.adm.mu.Lock()
	zero := s.adm.tenants["zero"].bytesB.rate
	neg := s.adm.tenants["neg"].bytesB.rate
	one := s.adm.tenants["one"].bytesB.rate
	s.adm.mu.Unlock()
	if zero != one || neg != one {
		t.Fatalf("rates zero=%v neg=%v one=%v, want an even three-way split", zero, neg, one)
	}
	if zero <= 0 {
		t.Fatalf("zero-weight tenant got rate %v", zero)
	}
	if err := s.Tenant("zero").Put("k", []byte("v")); err != nil {
		t.Fatalf("zero-weight tenant rejected: %v", err)
	}
}

func TestServiceClosed(t *testing.T) {
	s := newLocalService(t, 2, AdmissionConfig{}, nil)
	tn := s.Tenant("app")
	if err := tn.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent: a second call is a no-op, not an error.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	// Every other post-close operation reports ErrClosed.
	if err := tn.Put("k2", []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := tn.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := tn.Del("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Del after Close = %v, want ErrClosed", err)
	}
	if err := tn.Barrier(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Barrier after Close = %v, want ErrClosed", err)
	}
	if err := tn.Scan("", func(string, []byte) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after Close = %v, want ErrClosed", err)
	}
	if _, err := s.RegisterTenant("late", TenantConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("RegisterTenant after Close = %v, want ErrClosed", err)
	}
	if err := s.Rebalance(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rebalance after Close = %v, want ErrClosed", err)
	}
}
