package svc

import (
	"encoding/json"
	"fmt"
	"sort"

	"lsmio/internal/vfs"
)

// ManifestName is the service-layout manifest kept at the root of a
// service directory. Offline tools (lsmioctl stats/tenants) read it to
// find the shard stores and the tenant quota table without talking to
// a live service.
const ManifestName = "SERVICE.json"

// ShardDirName returns the canonical directory name for shard i inside
// a service directory.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Manifest describes a service's on-disk layout and tenant table.
type Manifest struct {
	Version int              `json:"version"`
	Shards  int              `json:"shards"`
	Epoch   int              `json:"epoch"`
	Tenants []ManifestTenant `json:"tenants,omitempty"`
	// ShardStatus is the supervisor's per-shard view (state, restart
	// count, breaker) at the time the manifest was written; offline
	// tools render it so an operator can see which shards were
	// struggling when the service last persisted its layout.
	ShardStatus []ShardStatus `json:"shard_status,omitempty"`
}

// ManifestTenant is one tenant's registered admission settings.
type ManifestTenant struct {
	Name        string  `json:"name"`
	Weight      float64 `json:"weight"`
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
}

// Manifest returns the service's current layout description.
func (s *Service) Manifest() Manifest {
	s.mu.RLock()
	m := Manifest{Version: 1, Shards: len(s.shards), Epoch: s.epoch}
	s.mu.RUnlock()
	s.adm.mu.Lock()
	for name, ts := range s.adm.tenants {
		m.Tenants = append(m.Tenants, ManifestTenant{
			Name:        name,
			Weight:      ts.weight(),
			BytesPerSec: ts.cfg.BytesPerSec,
			OpsPerSec:   ts.cfg.OpsPerSec,
		})
	}
	s.adm.mu.Unlock()
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].Name < m.Tenants[j].Name })
	m.ShardStatus = s.ShardStatuses()
	return m
}

// writeManifest persists the layout when a manifest filesystem is
// configured; a crash between the write and the rename leaves the old
// manifest intact.
func (s *Service) writeManifest() error {
	if s.mfs == nil {
		return nil
	}
	return WriteManifest(s.mfs, s.Manifest())
}

// WriteManifest atomically writes m as fs's SERVICE.json.
func WriteManifest(fs vfs.FS, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := ManifestName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, ManifestName)
}

// ReadManifest loads fs's SERVICE.json.
func ReadManifest(fs vfs.FS) (Manifest, error) {
	f, err := fs.Open(ManifestName)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	data, err := vfs.ReadAll(f)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("svc: parse %s: %w", ManifestName, err)
	}
	return m, nil
}
