package adios2

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/internal/mpisim"
	"lsmio/internal/netsim"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// TestMultiRankBP exercises the MPI-coupled BP path: every rank writes its
// own subfile, metadata is gathered to rank 0 which writes md.0/md.idx,
// and each rank reads its own data back.
func TestMultiRankBP(t *testing.T) {
	const ranks = 4
	k := sim.NewKernel()
	fabric := netsim.New(k, netsim.DefaultConfig(ranks))
	world := mpisim.NewWorld(k, fabric, ranks)
	fs := vfs.NewMemFS() // shared backing store (one namespace)

	err := world.Run(func(r *mpisim.Rank) {
		a := New(Config{FS: fs, Kernel: k, Rank: r})
		io := a.DeclareIO("out")
		io.SetParameter("BufferChunkSize", "65536")
		v := io.DefineVariable("field", 8, 1024)

		w, err := io.Open("multi", ModeWrite)
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte{byte('A' + r.Rank())}, 8192)
		if err := w.Put(v, payload, Deferred); err != nil {
			t.Error(err)
			return
		}
		if err := w.PerformPuts(); err != nil {
			t.Error(err)
			return
		}
		if err := w.Close(); err != nil { // gathers metadata to rank 0
			t.Error(err)
			return
		}
		r.Barrier()

		// Read back own subfile data.
		rd, err := io.Open("multi", ModeRead)
		if err != nil {
			t.Error(err)
			return
		}
		dst := make([]byte, 8192)
		if err := rd.Get(v, dst); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(dst, payload) {
			t.Errorf("rank %d read wrong data", r.Rank())
		}
		rd.Close()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every rank produced a subfile + index; only rank 0 wrote md files.
	for r := 0; r < ranks; r++ {
		for _, name := range []string{fmt.Sprintf("multi.bp/data.%d", r), fmt.Sprintf("multi.bp/idx.%d", r)} {
			if !fs.Exists(name) {
				t.Fatalf("missing %s", name)
			}
		}
	}
	if !fs.Exists("multi.bp/md.0") || !fs.Exists("multi.bp/md.idx") {
		t.Fatal("rank 0 metadata files missing")
	}
	// The aggregated metadata holds all ranks' block records.
	f, _ := fs.Open("multi.bp/md.0")
	md, _ := vfs.ReadAll(f)
	f.Close()
	for r := 0; r < ranks; r++ {
		if !bytes.Contains(md, []byte(fmt.Sprintf(`"rank":%d`, r))) {
			t.Fatalf("md.0 missing rank %d records", r)
		}
	}
}
