package adios2

import (
	"sync"

	"lsmio/internal/mpisim"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// The Plugin mechanism mirrors ADIOS2's: a custom storage engine is
// registered under a name, and applications select it purely through
// configuration —
//
//	io.SetEngine("plugin")
//	io.SetParameter("PluginName", "lsmio")
//
// or the equivalent XML — with no application code changes (§3.1.7, §4.3).

// PluginContext is everything a plugin engine gets at Open time.
type PluginContext struct {
	Path   string
	Mode   Mode
	IO     *IO
	FS     vfs.FS
	Kernel *sim.Kernel
	Rank   *mpisim.Rank
	Params map[string]string
}

// PluginFactory constructs a plugin engine instance.
type PluginFactory func(ctx PluginContext) (Engine, error)

var pluginRegistry = struct {
	sync.RWMutex
	m map[string]PluginFactory
}{m: make(map[string]PluginFactory)}

// RegisterPlugin makes a plugin engine available under name. Registering
// the same name again replaces the factory (tests rely on this).
func RegisterPlugin(name string, factory PluginFactory) {
	pluginRegistry.Lock()
	defer pluginRegistry.Unlock()
	pluginRegistry.m[name] = factory
}

func lookupPlugin(name string) (PluginFactory, bool) {
	pluginRegistry.RLock()
	defer pluginRegistry.RUnlock()
	f, ok := pluginRegistry.m[name]
	return f, ok
}

// RegisteredPlugins lists the registered plugin names (diagnostics).
func RegisteredPlugins() []string {
	pluginRegistry.RLock()
	defer pluginRegistry.RUnlock()
	names := make([]string, 0, len(pluginRegistry.m))
	for n := range pluginRegistry.m {
		names = append(names, n)
	}
	return names
}
