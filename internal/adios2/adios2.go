// Package adios2 reimplements the slice of ADIOS2 the LSMIO paper
// compares against and extends: IO objects configured by parameters or an
// XML document, variables, steps, deferred/sync Puts, a BP5-like engine
// that aggregates writes into BufferChunkSize chunks and emits per-rank
// subfiles plus separate metadata files, and the Plugin engine mechanism
// that lets LSMIO slot in as a storage backend with no application code
// changes (§3.1.7).
//
// The write path is faithful to BP5's behaviour as the paper exercises it:
// deferred Puts only record intent; PerformPuts marshals data into 32 MB
// buffer chunks (charging serialization CPU); chunks are written to the
// rank's subfile as large sequential writes; EndStep/Close gather variable
// metadata to rank 0, which writes md.0 and md.idx.
package adios2

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"lsmio/internal/mpisim"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// Mode selects engine direction.
type Mode int

// Open modes.
const (
	ModeWrite Mode = iota
	ModeRead
)

// PutMode mirrors adios2::Mode::Deferred / Sync.
type PutMode int

// Put modes.
const (
	Deferred PutMode = iota
	Sync
)

// CostModel is the CPU cost model for the ADIOS2 data path, charged to
// simulation processes (no-ops outside the simulator). The defaults
// reflect the overheads the paper attributes to ADIOS2 versus LSMIO's raw
// byte-array path: strong typing and element-wise marshalling, buffer
// management, and per-variable metadata handling.
type CostModel struct {
	MarshalPerByte   float64       // ns per payload byte at PerformPuts
	PutFixed         time.Duration // per-Put bookkeeping
	VarMetaCost      time.Duration // per variable per step metadata build
	UnmarshalPerByte float64       // ns per payload byte on Get
}

// DefaultCostModel returns the calibrated cost model. The marshal rate is
// set so that per-rank ADIOS2 write throughput lands where the paper's
// ratios put it (≈50 MB/s per rank at 48 nodes: 2.4x below a
// ceiling-bound LSMIO and 10.7x above the collapsed IOR baseline);
// EXPERIMENTS.md records the calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		MarshalPerByte:   17.5,
		PutFixed:         1 * time.Microsecond,
		VarMetaCost:      8 * time.Microsecond,
		UnmarshalPerByte: 0.55,
	}
}

// Config configures an Adios instance (one per rank, like adios2::ADIOS).
type Config struct {
	FS     vfs.FS
	Kernel *sim.Kernel  // nil outside the simulator
	Rank   *mpisim.Rank // nil for serial use; enables metadata aggregation
	Cost   CostModel    // zero value: defaults
}

// Adios is the top-level factory object (adios2::ADIOS).
type Adios struct {
	cfg Config
	ios map[string]*IO
}

// New creates an ADIOS2 instance.
func New(cfg Config) *Adios {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	return &Adios{cfg: cfg, ios: make(map[string]*IO)}
}

// DeclareIO returns (creating on first use) a named IO configuration.
func (a *Adios) DeclareIO(name string) *IO {
	if io, ok := a.ios[name]; ok {
		return io
	}
	io := &IO{
		a:          a,
		name:       name,
		engineType: "BP5",
		params:     make(map[string]string),
		vars:       make(map[string]*Variable),
	}
	a.ios[name] = io
	return io
}

// IO carries engine choice, parameters and variable definitions
// (adios2::IO).
type IO struct {
	a          *Adios
	name       string
	engineType string
	params     map[string]string
	vars       map[string]*Variable
}

// SetEngine selects the engine type ("BP5" or "plugin").
func (io *IO) SetEngine(engineType string) { io.engineType = engineType }

// EngineType returns the configured engine type.
func (io *IO) EngineType() string { return io.engineType }

// SetParameter sets an engine parameter (e.g. BufferChunkSize, PluginName).
func (io *IO) SetParameter(key, value string) { io.params[key] = value }

// Parameter returns an engine parameter and whether it was set.
func (io *IO) Parameter(key string) (string, bool) {
	v, ok := io.params[key]
	return v, ok
}

// Variable describes a typed array (adios2::Variable). Only the byte-level
// geometry matters to the storage layer.
type Variable struct {
	Name     string
	ElemSize int
	Count    int64 // elements per Put
}

// DefineVariable registers a variable on the IO.
func (io *IO) DefineVariable(name string, elemSize int, count int64) *Variable {
	v := &Variable{Name: name, ElemSize: elemSize, Count: count}
	io.vars[name] = v
	return v
}

// InquireVariable returns a previously defined variable, or nil.
func (io *IO) InquireVariable(name string) *Variable { return io.vars[name] }

// Engine is the ADIOS2 engine interface the paper's plugin implements.
type Engine interface {
	// BeginStep starts an output step.
	BeginStep() error
	// Put schedules (Deferred) or immediately buffers (Sync) a write.
	Put(v *Variable, data []byte, mode PutMode) error
	// PerformPuts drains deferred puts into the transport buffers.
	PerformPuts() error
	// Get reads a variable's bytes for the current step into dst.
	Get(v *Variable, dst []byte) error
	// EndStep completes the step, flushing data and metadata.
	EndStep() error
	// Close finalizes the output.
	Close() error
}

// Open instantiates the configured engine for a path.
func (io *IO) Open(path string, mode Mode) (Engine, error) {
	switch io.engineType {
	case "BP5", "bp5", "BP4", "bp4", "":
		return openBP(io, path, mode)
	case "plugin", "Plugin":
		name, ok := io.params["PluginName"]
		if !ok {
			return nil, fmt.Errorf("adios2: plugin engine needs a PluginName parameter")
		}
		factory, ok := lookupPlugin(name)
		if !ok {
			return nil, fmt.Errorf("adios2: plugin %q is not registered", name)
		}
		return factory(PluginContext{
			Path:   path,
			Mode:   mode,
			IO:     io,
			FS:     io.a.cfg.FS,
			Kernel: io.a.cfg.Kernel,
			Rank:   io.a.cfg.Rank,
			Params: io.params,
		})
	default:
		return nil, fmt.Errorf("adios2: unknown engine type %q", io.engineType)
	}
}

// rankID returns this process's rank (0 when serial).
func (a *Adios) rankID() int {
	if a.cfg.Rank == nil {
		return 0
	}
	return a.cfg.Rank.Rank()
}

// bufferChunkSize reads the BufferChunkSize parameter (default 32 MB, the
// value the paper configures for both ADIOS2 and LSMIO).
func (io *IO) bufferChunkSize() int64 {
	if s, ok := io.params["BufferChunkSize"]; ok {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 32 << 20
}

// metaRecord is one variable-block record in the metadata stream.
type metaRecord struct {
	Var    string `json:"var"`
	Step   int    `json:"step"`
	Rank   int    `json:"rank"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
}

func encodeMeta(recs []metaRecord) []byte {
	b, _ := json.Marshal(recs)
	return b
}

func putUint64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
