package adios2

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"lsmio/internal/vfs"
)

// bpEngine is the BP5-like default engine: per-rank data subfiles inside a
// <path>.bp directory, plus md.0/md.idx metadata files written by rank 0.
//
// Write side:
//
//	deferred Put  -> pending list (no copy, like BP5)
//	PerformPuts   -> marshal into chunk buffer(s) of BufferChunkSize,
//	                 charging MarshalPerByte; full chunks stream to the
//	                 subfile as large sequential writes
//	EndStep/Close -> flush tail chunk, gather metadata to rank 0, rank 0
//	                 appends md.0 and md.idx; per-rank block index lands in
//	                 idx.<rank> so readers can locate blocks
type bpEngine struct {
	io   *IO
	path string
	mode Mode
	rank int

	dataFile vfs.File
	buf      []byte
	bufCap   int64
	offset   int64 // current subfile write offset

	pending []pendingPut
	step    int
	meta    []metaRecord

	// Read side.
	index   []metaRecord
	readBuf []byte
}

type pendingPut struct {
	v    *Variable
	data []byte
	sync bool
}

func bpDir(path string) string { return path + ".bp" }

func openBP(ioObj *IO, path string, mode Mode) (Engine, error) {
	e := &bpEngine{
		io:     ioObj,
		path:   path,
		mode:   mode,
		rank:   ioObj.a.rankID(),
		bufCap: ioObj.bufferChunkSize(),
	}
	fs := ioObj.a.cfg.FS
	dir := bpDir(path)
	switch mode {
	case ModeWrite:
		if err := fs.MkdirAll(dir); err != nil {
			return nil, err
		}
		f, err := fs.Create(fmt.Sprintf("%s/data.%d", dir, e.rank))
		if err != nil {
			return nil, err
		}
		e.dataFile = f
		e.buf = make([]byte, 0, e.bufCap)
	case ModeRead:
		f, err := fs.Open(fmt.Sprintf("%s/data.%d", dir, e.rank))
		if err != nil {
			return nil, err
		}
		e.dataFile = f
		idxFile, err := fs.Open(fmt.Sprintf("%s/idx.%d", dir, e.rank))
		if err != nil {
			return nil, err
		}
		idxBytes, err := vfs.ReadAll(idxFile)
		idxFile.Close()
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(idxBytes, &e.index); err != nil {
			return nil, fmt.Errorf("adios2: corrupt idx.%d: %w", e.rank, err)
		}
	default:
		return nil, fmt.Errorf("adios2: bad mode %d", mode)
	}
	return e, nil
}

func (e *bpEngine) compute(d time.Duration) { e.io.a.cfg.Kernel.Compute(d) }

// BeginStep implements Engine.
func (e *bpEngine) BeginStep() error { return nil }

// Put implements Engine. Deferred puts record intent only; Sync puts
// marshal immediately.
func (e *bpEngine) Put(v *Variable, data []byte, mode PutMode) error {
	if e.mode != ModeWrite {
		return fmt.Errorf("adios2: Put on a read engine")
	}
	e.compute(e.io.a.cfg.Cost.PutFixed)
	if mode == Sync {
		return e.marshal(v, data)
	}
	e.pending = append(e.pending, pendingPut{v: v, data: data})
	return nil
}

// PerformPuts implements Engine: drains deferred puts into the buffer.
func (e *bpEngine) PerformPuts() error {
	for _, p := range e.pending {
		if err := e.marshal(p.v, p.data); err != nil {
			return err
		}
	}
	e.pending = e.pending[:0]
	return nil
}

// marshal serializes one variable block into the chunk buffer, spilling
// full chunks to the subfile.
func (e *bpEngine) marshal(v *Variable, data []byte) error {
	cost := e.io.a.cfg.Cost
	e.compute(time.Duration(cost.MarshalPerByte * float64(len(data))))
	e.meta = append(e.meta, metaRecord{
		Var:    v.Name,
		Step:   e.step,
		Rank:   e.rank,
		Offset: e.offset + int64(len(e.buf)),
		Length: int64(len(data)),
	})
	e.compute(cost.VarMetaCost)
	for len(data) > 0 {
		space := e.bufCap - int64(len(e.buf))
		take := int64(len(data))
		if take > space {
			take = space
		}
		e.buf = append(e.buf, data[:take]...)
		data = data[take:]
		if int64(len(e.buf)) == e.bufCap {
			if err := e.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushChunk writes the current buffer chunk to the subfile.
func (e *bpEngine) flushChunk() error {
	if len(e.buf) == 0 {
		return nil
	}
	n, err := e.dataFile.Write(e.buf)
	if err != nil {
		return err
	}
	e.offset += int64(n)
	e.buf = e.buf[:0]
	return nil
}

// Get implements Engine: reads the variable's block for the current step
// from the subfile (sequential large reads — BP readers stream blocks).
func (e *bpEngine) Get(v *Variable, dst []byte) error {
	if e.mode != ModeRead {
		return fmt.Errorf("adios2: Get on a write engine")
	}
	for _, rec := range e.index {
		if rec.Var == v.Name && rec.Step == e.step {
			if int64(len(dst)) < rec.Length {
				return fmt.Errorf("adios2: Get buffer too small for %q", v.Name)
			}
			if _, err := e.dataFile.ReadAt(dst[:rec.Length], rec.Offset); err != nil && err != io.EOF {
				return err
			}
			e.compute(time.Duration(e.io.a.cfg.Cost.UnmarshalPerByte * float64(rec.Length)))
			return nil
		}
	}
	return fmt.Errorf("adios2: variable %q step %d not found", v.Name, e.step)
}

// EndStep implements Engine: completes the step and pushes metadata.
func (e *bpEngine) EndStep() error {
	if e.mode == ModeRead {
		e.step++
		return nil
	}
	if err := e.PerformPuts(); err != nil {
		return err
	}
	e.step++
	return nil
}

// Close implements Engine.
func (e *bpEngine) Close() error {
	if e.mode == ModeRead {
		return e.dataFile.Close()
	}
	if err := e.PerformPuts(); err != nil {
		return err
	}
	if err := e.flushChunk(); err != nil {
		return err
	}
	if err := e.dataFile.Sync(); err != nil {
		return err
	}
	if err := e.dataFile.Close(); err != nil {
		return err
	}
	fs := e.io.a.cfg.FS
	dir := bpDir(e.path)
	// Per-rank block index (lets the read engine find its blocks).
	idxFile, err := fs.Create(fmt.Sprintf("%s/idx.%d", dir, e.rank))
	if err != nil {
		return err
	}
	if _, err := idxFile.Write(encodeMeta(e.meta)); err != nil {
		idxFile.Close()
		return err
	}
	if err := idxFile.Close(); err != nil {
		return err
	}
	// Global metadata: gathered to rank 0, which writes md.0 and md.idx —
	// the side-channel writes that distinguish BP5 from LSMIO's single
	// write stream.
	rank := e.io.a.cfg.Rank
	all := e.meta
	if rank != nil {
		gathered := rank.Gather(0, e.meta, int64(len(e.meta))*64)
		if rank.Rank() != 0 {
			return nil
		}
		all = nil
		for _, g := range gathered {
			all = append(all, g.([]metaRecord)...)
		}
	}
	md, err := fs.Create(dir + "/md.0")
	if err != nil {
		return err
	}
	if _, err := md.Write(encodeMeta(all)); err != nil {
		md.Close()
		return err
	}
	if err := md.Close(); err != nil {
		return err
	}
	idx, err := fs.Create(dir + "/md.idx")
	if err != nil {
		return err
	}
	var hdr [16]byte
	putUint64(hdr[:8], uint64(len(all)))
	putUint64(hdr[8:], uint64(e.step))
	if _, err := idx.Write(hdr[:]); err != nil {
		idx.Close()
		return err
	}
	return idx.Close()
}
