package adios2

import (
	"encoding/xml"
	"fmt"
)

// XML runtime configuration, the mechanism the paper highlights: an
// application switches from BP5 to the LSMIO plugin by editing its
// adios2.xml, read at startup, with no recompilation.
//
//	<adios-config>
//	  <io name="checkpoint">
//	    <engine type="plugin">
//	      <parameter key="PluginName" value="lsmio"/>
//	      <parameter key="BufferChunkSize" value="33554432"/>
//	    </engine>
//	  </io>
//	</adios-config>

type xmlConfig struct {
	XMLName xml.Name `xml:"adios-config"`
	IOs     []xmlIO  `xml:"io"`
}

type xmlIO struct {
	Name   string    `xml:"name,attr"`
	Engine xmlEngine `xml:"engine"`
}

type xmlEngine struct {
	Type   string     `xml:"type,attr"`
	Params []xmlParam `xml:"parameter"`
}

type xmlParam struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// NewFromConfig creates an ADIOS2 instance whose IOs are pre-configured
// from an XML document (adios2::ADIOS(configFile) equivalent).
func NewFromConfig(cfg Config, xmlText []byte) (*Adios, error) {
	a := New(cfg)
	if err := a.ApplyConfig(xmlText); err != nil {
		return nil, err
	}
	return a, nil
}

// ApplyConfig parses the XML document and applies engine types and
// parameters to the named IOs.
func (a *Adios) ApplyConfig(xmlText []byte) error {
	var doc xmlConfig
	if err := xml.Unmarshal(xmlText, &doc); err != nil {
		return fmt.Errorf("adios2: config: %w", err)
	}
	for _, io := range doc.IOs {
		if io.Name == "" {
			return fmt.Errorf("adios2: config: io element without name")
		}
		target := a.DeclareIO(io.Name)
		if io.Engine.Type != "" {
			target.SetEngine(io.Engine.Type)
		}
		for _, p := range io.Engine.Params {
			target.SetParameter(p.Key, p.Value)
		}
	}
	return nil
}
