package adios2

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/internal/vfs"
)

func newSerial(fs vfs.FS) *Adios { return New(Config{FS: fs}) }

func TestBPWriteReadRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("out")
	io.SetParameter("BufferChunkSize", "65536")
	v := io.DefineVariable("temperature", 8, 1024)

	w, err := io.Open("ckpt", ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	steps := 3
	payloads := make([][]byte, steps)
	for s := 0; s < steps; s++ {
		payloads[s] = bytes.Repeat([]byte{byte('a' + s)}, 8*1024)
		if err := w.BeginStep(); err != nil {
			t.Fatal(err)
		}
		if err := w.Put(v, payloads[s], Deferred); err != nil {
			t.Fatal(err)
		}
		if err := w.PerformPuts(); err != nil {
			t.Fatal(err)
		}
		if err := w.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Metadata + subfiles exist.
	for _, name := range []string{"ckpt.bp/data.0", "ckpt.bp/idx.0", "ckpt.bp/md.0", "ckpt.bp/md.idx"} {
		if !fs.Exists(name) {
			t.Fatalf("missing %s", name)
		}
	}

	r, err := io.Open("ckpt", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		r.BeginStep()
		dst := make([]byte, 8*1024)
		if err := r.Get(v, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, payloads[s]) {
			t.Fatalf("step %d data mismatch", s)
		}
		r.EndStep()
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBPDeferredPutsNotWrittenUntilPerformPuts(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("out")
	v := io.DefineVariable("x", 1, 100)
	w, _ := io.Open("d", ModeWrite)
	w.Put(v, make([]byte, 100), Deferred)
	if size, _ := fs.Stat("d.bp/data.0"); size != 0 {
		t.Fatalf("deferred put hit the file early: %d bytes", size)
	}
	w.Close()
	if size, _ := fs.Stat("d.bp/data.0"); size != 100 {
		t.Fatalf("close did not flush: %d bytes", size)
	}
}

func TestBPSyncPutBuffersImmediately(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("out")
	io.SetParameter("BufferChunkSize", "128")
	v := io.DefineVariable("x", 1, 100)
	w, _ := io.Open("s", ModeWrite)
	// 300 bytes through a 128-byte chunk: at least two chunks spill before
	// close.
	w.Put(v, make([]byte, 300), Sync)
	if size, _ := fs.Stat("s.bp/data.0"); size < 256 {
		t.Fatalf("sync put should spill full chunks: %d bytes", size)
	}
	w.Close()
}

func TestBPChunkSpill(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("out")
	io.SetParameter("BufferChunkSize", "1024")
	v := io.DefineVariable("x", 1, 100)
	w, _ := io.Open("spill", ModeWrite)
	total := 0
	for i := 0; i < 50; i++ {
		w.Put(v, bytes.Repeat([]byte{byte(i)}, 100), Deferred)
		total += 100
	}
	w.PerformPuts()
	w.Close()
	if size, _ := fs.Stat("spill.bp/data.0"); size != int64(total) {
		t.Fatalf("subfile size %d, want %d", size, total)
	}
}

func TestXMLConfigSelectsPlugin(t *testing.T) {
	called := false
	RegisterPlugin("test-plugin", func(ctx PluginContext) (Engine, error) {
		called = true
		if ctx.Path != "some/path" || ctx.Mode != ModeWrite {
			t.Errorf("ctx = %+v", ctx)
		}
		if v, ok := ctx.Params["Knob"]; !ok || v != "7" {
			t.Errorf("params = %v", ctx.Params)
		}
		return nil, fmt.Errorf("stop here")
	})
	xmlText := []byte(`
<adios-config>
  <io name="checkpoint">
    <engine type="plugin">
      <parameter key="PluginName" value="test-plugin"/>
      <parameter key="Knob" value="7"/>
    </engine>
  </io>
</adios-config>`)
	a, err := NewFromConfig(Config{FS: vfs.NewMemFS()}, xmlText)
	if err != nil {
		t.Fatal(err)
	}
	io := a.DeclareIO("checkpoint")
	if io.EngineType() != "plugin" {
		t.Fatalf("engine type = %q", io.EngineType())
	}
	if _, err := io.Open("some/path", ModeWrite); err == nil || err.Error() != "stop here" {
		t.Fatalf("open err = %v", err)
	}
	if !called {
		t.Fatal("plugin factory was not invoked")
	}
}

func TestUnknownPluginErrors(t *testing.T) {
	a := newSerial(vfs.NewMemFS())
	io := a.DeclareIO("x")
	io.SetEngine("plugin")
	io.SetParameter("PluginName", "does-not-exist")
	if _, err := io.Open("p", ModeWrite); err == nil {
		t.Fatal("unknown plugin should error")
	}
	io2 := a.DeclareIO("y")
	io2.SetEngine("plugin")
	if _, err := io2.Open("p", ModeWrite); err == nil {
		t.Fatal("missing PluginName should error")
	}
}

func TestBadXMLConfig(t *testing.T) {
	a := newSerial(vfs.NewMemFS())
	if err := a.ApplyConfig([]byte("<not-closed")); err == nil {
		t.Fatal("bad XML should error")
	}
	if err := a.ApplyConfig([]byte(`<adios-config><io><engine type="BP5"/></io></adios-config>`)); err == nil {
		t.Fatal("io without name should error")
	}
}

func TestVariableInquire(t *testing.T) {
	a := newSerial(vfs.NewMemFS())
	io := a.DeclareIO("io")
	io.DefineVariable("v", 4, 10)
	if v := io.InquireVariable("v"); v == nil || v.ElemSize != 4 {
		t.Fatalf("inquire: %+v", v)
	}
	if io.InquireVariable("absent") != nil {
		t.Fatal("absent variable should be nil")
	}
	// DeclareIO is idempotent.
	if a.DeclareIO("io") != io {
		t.Fatal("DeclareIO should return the same IO")
	}
}

func TestBufferChunkSizeParameter(t *testing.T) {
	a := newSerial(vfs.NewMemFS())
	io := a.DeclareIO("io")
	if got := io.bufferChunkSize(); got != 32<<20 {
		t.Fatalf("default chunk = %d", got)
	}
	io.SetParameter("BufferChunkSize", "1048576")
	if got := io.bufferChunkSize(); got != 1<<20 {
		t.Fatalf("chunk = %d", got)
	}
	io.SetParameter("BufferChunkSize", "garbage")
	if got := io.bufferChunkSize(); got != 32<<20 {
		t.Fatalf("garbage chunk should fall back: %d", got)
	}
}

func TestEngineDirectionErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("d")
	v := io.DefineVariable("x", 1, 4)
	w, _ := io.Open("dir", ModeWrite)
	if err := w.Get(v, make([]byte, 4)); err == nil {
		t.Fatal("Get on write engine should fail")
	}
	w.Put(v, []byte("abcd"), Deferred)
	w.Close()

	r, _ := io.Open("dir", ModeRead)
	if err := r.Put(v, []byte("abcd"), Deferred); err == nil {
		t.Fatal("Put on read engine should fail")
	}
	if err := r.Get(v, make([]byte, 1)); err == nil {
		t.Fatal("undersized Get buffer should fail")
	}
	missing := io.DefineVariable("never-written", 1, 4)
	if err := r.Get(missing, make([]byte, 4)); err == nil {
		t.Fatal("Get of missing variable should fail")
	}
	r.Close()
}

func TestOpenMissingSubfile(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("m")
	if _, err := io.Open("never-written", ModeRead); err == nil {
		t.Fatal("reading a never-written path should fail")
	}
	if _, err := io.Open("x", Mode(99)); err == nil {
		t.Fatal("bad mode should fail")
	}
}

func TestCorruptIndexRejected(t *testing.T) {
	fs := vfs.NewMemFS()
	a := newSerial(fs)
	io := a.DeclareIO("c")
	v := io.DefineVariable("x", 1, 4)
	w, _ := io.Open("corrupt", ModeWrite)
	w.Put(v, []byte("data"), Deferred)
	w.Close()
	f, _ := fs.Create("corrupt.bp/idx.0")
	f.Write([]byte("{broken json"))
	f.Close()
	if _, err := io.Open("corrupt", ModeRead); err == nil {
		t.Fatal("corrupt index should fail open")
	}
}

func TestUnknownEngineType(t *testing.T) {
	a := newSerial(vfs.NewMemFS())
	io := a.DeclareIO("u")
	io.SetEngine("HDF5Mixer")
	if _, err := io.Open("p", ModeWrite); err == nil {
		t.Fatal("unknown engine type should fail")
	}
}
