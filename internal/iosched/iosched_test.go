package iosched

import (
	"context"
	"sync"
	"testing"
	"time"

	"lsmio/internal/sim"
)

// fakeClock is a deterministic single-threaded clock: Sleep simply
// advances Now, so a test observes exactly the pacing the scheduler
// imposed.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) Now() time.Duration    { return f.now }
func (f *fakeClock) Sleep(d time.Duration) { f.now += d }

func TestDisabledAndNilAreFree(t *testing.T) {
	var nilSched *Scheduler
	if w := nilSched.Acquire(Flush, 1<<20); w != 0 {
		t.Fatalf("nil scheduler waited %v", w)
	}
	nilSched.Cancel(Flush, 1<<20)
	if nilSched.Enabled() {
		t.Fatal("nil scheduler reports enabled")
	}
	f := &fakeClock{}
	s := New(Config{Now: f.Now, Sleep: f.Sleep}) // BytesPerSec 0: disabled
	if w := s.Acquire(Compaction, 64<<20); w != 0 || f.now != 0 {
		t.Fatalf("disabled scheduler paced: wait=%v now=%v", w, f.now)
	}
}

// Work conservation: a class alone on the device borrows the whole
// budget regardless of its configured share.
func TestWorkConservationIdleBudgetBorrowable(t *testing.T) {
	f := &fakeClock{}
	s := New(Config{BytesPerSec: 100e6, Now: f.Now, Sleep: f.Sleep})
	for i := 0; i < 10; i++ {
		s.Acquire(Scrub, 1<<20) // 5% reserved share, but nobody else is active
	}
	// 9 chunks paced at the FULL device rate before the 10th is granted:
	// ~94ms. At scrub's reserved 5% it would have been ~1.9s.
	elapsed := f.now
	if elapsed < 85*time.Millisecond || elapsed > 105*time.Millisecond {
		t.Fatalf("lone scrub class not work-conserving: elapsed %v, want ~94ms", elapsed)
	}
}

// Borrowing reverts once another class activates: with compaction
// holding unexpired claims, scrub is paced at share-proportional rate.
func TestBorrowingRevertsUnderContention(t *testing.T) {
	f := &fakeClock{}
	s := New(Config{BytesPerSec: 100e6, Now: f.Now, Sleep: f.Sleep})
	s.Acquire(Compaction, 15<<20) // alone: full rate, claims ~157ms of device
	s.Acquire(Scrub, 1<<20)
	// Scrub's effective rate = 100e6 * 5/(5+15) = 25 MB/s → 1 MiB ≈ 41.9ms.
	got := s.State(Scrub).NextFree - f.now
	want := time.Duration(float64(1<<20) / 25e6 * float64(time.Second))
	if got < want*9/10 || got > want*11/10 {
		t.Fatalf("contended scrub grant %v, want ~%v (25%% of device)", got, want)
	}
}

// Deficit accounting: a class that waited accrues a byte deficit, its
// weight doubles, and the deficit drains to zero as grants flow.
func TestDeficitAccruesAndDrains(t *testing.T) {
	f := &fakeClock{}
	s := New(Config{BytesPerSec: 10e6, Now: f.Now, Sleep: f.Sleep})
	s.Acquire(Scrub, 10<<20) // builds ~1.05s of backlog
	s.Acquire(Scrub, 1024)   // waits behind it → accrues deficit at reserved rate
	if d := s.State(Scrub).Deficit; d <= 0 {
		t.Fatalf("no deficit accrued after a %v wait", f.now)
	}
	for i := 0; i < 64 && s.State(Scrub).Deficit > 0; i++ {
		s.Acquire(Scrub, 64<<10)
	}
	if d := s.State(Scrub).Deficit; d != 0 {
		t.Fatalf("deficit did not drain: %d bytes left", d)
	}
}

// No starvation + determinism on the sim clock: a scrub class draining
// a fixed backlog beside a compaction flood finishes within its
// reserved-rate bound, and two identical runs produce identical grant
// timelines.
func TestSimDeterminismAndNoStarvation(t *testing.T) {
	run := func() (compEnd, scrubEnd time.Duration) {
		k := sim.NewKernel()
		s := New(Config{BytesPerSec: 100e6, Kernel: k})
		k.Spawn("comp", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				s.Acquire(Compaction, 1<<20)
			}
			compEnd = p.Now().Duration()
		})
		k.Spawn("scrub", func(p *sim.Proc) {
			for i := 0; i < 32; i++ {
				s.Acquire(Scrub, 256<<10)
			}
			scrubEnd = p.Now().Duration()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return compEnd, scrubEnd
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic grant timeline: (%v,%v) vs (%v,%v)", c1, s1, c2, s2)
	}
	// 8 MiB of scrub at its reserved 5% of 100 MB/s would take 1.68s;
	// finishing by then (with margin) means the flood never starved it.
	if bound := 2 * time.Second; s1 > bound {
		t.Fatalf("scrub starved beside compaction flood: finished at %v > %v", s1, bound)
	}
	// And it must actually have been contended — alone it takes ~84ms.
	if s1 < 100*time.Millisecond {
		t.Fatalf("scrub unthrottled beside compaction flood: finished at %v", s1)
	}
}

// Token accounting stays balanced under concurrent acquire/cancel
// (run with -race): granted − consumed-refunds bytes equal the device
// time charged, and refund pools never exceed what was canceled.
func TestTokenAccountingUnderConcurrentAcquireCancel(t *testing.T) {
	const rate = 4e9
	s := New(Config{BytesPerSec: rate})
	classes := []Class{Foreground, Flush, Drain, Compaction, Scrub}
	var mu sync.Mutex
	var granted, canceled int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var myGranted, myCanceled int64
			for i := 0; i < 60; i++ {
				c := classes[(g+i)%len(classes)]
				n := int64(64 << 10)
				s.Acquire(c, n)
				myGranted += n
				if i%5 == 4 {
					// Model a failed write: the tokens were never
					// spent on the device, return them.
					s.Cancel(c, n)
					myCanceled += n
				}
			}
			mu.Lock()
			granted += myGranted
			canceled += myCanceled
			mu.Unlock()
		}()
	}
	wg.Wait()
	var refundLeft int64
	var grantedCtr, canceledCtr int64
	for _, c := range classes {
		st := s.State(c)
		if st.Refund < 0 || st.Deficit < 0 {
			t.Fatalf("class %v: negative accounting %+v", c, st)
		}
		refundLeft += st.Refund
		grantedCtr += s.m.bytes[c].Load()
		canceledCtr += s.m.canceled[c].Load()
	}
	if grantedCtr != granted || canceledCtr != canceled {
		t.Fatalf("counter drift: granted %d/%d canceled %d/%d",
			grantedCtr, granted, canceledCtr, canceled)
	}
	if refundLeft > canceled {
		t.Fatalf("refund pool %d exceeds canceled bytes %d", refundLeft, canceled)
	}
	// Bytes actually bought = granted − refunds that later acquires
	// consumed; the device-time counter must agree with it.
	bought := granted - (canceled - refundLeft)
	wantBusy := float64(bought) / rate * float64(time.Second)
	gotBusy := float64(s.m.busyNanos.Load())
	if diff := gotBusy - wantBusy; diff < -0.02*wantBusy || diff > 0.02*wantBusy {
		t.Fatalf("device-time accounting drift: busy %v, want ~%v",
			time.Duration(gotBusy), time.Duration(wantBusy))
	}
}

func TestAcquireCtxCancellationRefunds(t *testing.T) {
	f := &fakeClock{}
	s := New(Config{BytesPerSec: 10e6, Now: f.Now, Sleep: f.Sleep})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.AcquireCtx(ctx, Drain, 1<<20); err == nil {
		t.Fatal("canceled context acquired tokens")
	}
	if st := s.State(Drain); st.NextFree != 0 {
		t.Fatalf("pre-canceled acquire advanced the class clock: %+v", st)
	}
	// Cancellation that lands while the caller is parked in the pacing
	// sleep refunds the grant.
	ctx2, cancel2 := context.WithCancel(context.Background())
	f2 := &fakeClock{}
	s2 := New(Config{BytesPerSec: 10e6, Now: f2.Now, Sleep: func(d time.Duration) {
		f2.now += d
		cancel2()
	}})
	s2.Acquire(Drain, 8<<20) // backlog so the next acquire must sleep
	if _, err := s2.AcquireCtx(ctx2, Drain, 1<<20); err == nil {
		t.Fatal("post-sleep cancellation not surfaced")
	}
	if st := s2.State(Drain); st.Refund != 1<<20 {
		t.Fatalf("canceled grant not refunded: %+v", st)
	}
}
