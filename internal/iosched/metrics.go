package iosched

import (
	"lsmio/internal/obs"
)

// schedMetrics holds the scheduler's obs instrument handles under the
// `iosched.` prefix, resolved once at New. Per-class names follow the
// repo's unified pacing-time convention (`iosched.<class>.wait_nanos`);
// the burst tier's legacy `burst.drain.throttle_nanos` counter is kept
// as a snapshot view of the Drain class's wait.
type schedMetrics struct {
	grants    [NumClasses]*obs.Counter   // acquires granted
	bytes     [NumClasses]*obs.Counter   // bytes granted (grant rate per window)
	waitNanos [NumClasses]*obs.Counter   // time callers slept for tokens
	waitHist  [NumClasses]*obs.Histogram // queue-wait distribution
	deficit   [NumClasses]*obs.Gauge     // current catch-up backlog, bytes
	canceled  [NumClasses]*obs.Counter   // bytes refunded via Cancel

	// busyNanos accumulates device time charged (granted bytes over the
	// device rate): busy/elapsed per window is the budget utilization.
	busyNanos *obs.Counter
	rate      *obs.Gauge // configured device bytes/sec (0 = disabled)
}

func newSchedMetrics(reg *obs.Registry) schedMetrics {
	sc := reg.Scope("iosched")
	var m schedMetrics
	for c := Class(0); c < NumClasses; c++ {
		p := c.String()
		m.grants[c] = sc.Counter(p + ".grants")
		m.bytes[c] = sc.Counter(p + ".granted_bytes")
		m.waitNanos[c] = sc.Counter(p + ".wait_nanos")
		m.waitHist[c] = sc.Histogram(p + ".wait")
		m.deficit[c] = sc.Gauge(p + ".deficit_bytes")
		m.canceled[c] = sc.Counter(p + ".canceled_bytes")
	}
	m.busyNanos = sc.Counter("device.busy_nanos")
	m.rate = sc.Gauge("device.rate_bytes_per_sec")
	return m
}
