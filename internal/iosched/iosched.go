// Package iosched is the global I/O-bandwidth fair scheduler: one
// shared arbiter that splits a device's (simulated or wall-clock)
// bandwidth across priority classes using per-class token budgets.
// Before PR 10 every background I/O consumer self-throttled with a
// local heuristic — job counts in the LSM engine, DrainRate sleep
// pacing in the burst tier, nothing at all for the parity scrubber —
// exactly the uncoordinated setup Luo & Carey ("On Performance
// Stability in LSM-based Storage Systems") show produces hour-scale
// throughput variance and p999 drift under sustained load. The
// scheduler replaces all of those private rate limits: every
// background byte now buys tokens from one instance, and job counts
// remain purely a concurrency cap.
//
// Model (DESIGN.md §15):
//
//   - Five classes, highest priority first: Foreground (WAL/commit),
//     Flush, Drain (burst-buffer drain), Compaction, Scrub. Priority is
//     expressed as a bandwidth share (weight), not strict precedence,
//     so no class can be starved outright.
//   - Token budgets in the time domain. Each class keeps a virtual
//     next-free time; a grant of n bytes at effective rate R advances
//     it by n/R. A grant whose start lies in the future makes the
//     caller sleep until then — on the simulator's virtual clock when
//     Config.Kernel is set, so scheduling is deterministic under
//     mpisim.
//   - Work-conserving borrowing. The effective rate divides the device
//     rate over the *active* classes only (a class is active while its
//     next-free time lies in the future, i.e. it has unexpired claims
//     on the device). A class alone on the device gets all of it.
//   - Deficit accounting. While a class waits for its grant it accrues
//     a byte deficit at its reserved rate; a class with a positive
//     deficit counts with twice its weight until the backlog it
//     accumulated has drained, so a class starved through a storm
//     catches up instead of being perpetually out-bid.
//   - A burst allowance: an idle class may fall at most Config.Burst
//     behind the current time, so a freshly woken class gets one
//     burst's worth of free tokens rather than an unbounded backlog.
//
// All methods are nil-receiver safe and free when the scheduler is
// disabled (BytesPerSec <= 0), so call sites thread one optional
// *Scheduler without guards. Instruments live under `iosched.<class>.*`
// in the configured obs registry: grants, granted_bytes, wait_nanos
// (the shared pacing-time convention — the burst tier's legacy
// drain.throttle_nanos is now a snapshot view of the Drain class's
// wait), a wait histogram, and deficit/utilization gauges.
package iosched

import (
	"context"
	"sync"
	"time"

	"lsmio/internal/obs"
	"lsmio/internal/sim"
)

// Class is a priority class drawing from the shared bandwidth budget.
type Class int

// Classes, highest priority (largest default share) first.
const (
	// Foreground is latency-critical commit I/O: WAL appends and group
	// commits the application is actively blocked on.
	Foreground Class = iota
	// Flush is memtable-to-L0 table builds — the write path's backlog
	// drain, one step behind foreground.
	Flush
	// Drain is the burst tier's staged-step copy to the durable store.
	Drain
	// Compaction is background level compaction I/O.
	Compaction
	// Scrub is parity scrub/repair — pure maintenance, lowest class.
	Scrub
	// NumClasses bounds the class enum.
	NumClasses
)

var classNames = [NumClasses]string{"foreground", "flush", "drain", "compaction", "scrub"}

// String returns the class's dotted-name segment ("foreground", ...).
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "invalid"
	}
	return classNames[c]
}

// DefaultShares is the default bandwidth split, in weight units
// (foreground > flush > drain = compaction > scrub).
var DefaultShares = [NumClasses]float64{40, 25, 15, 15, 5}

// Config configures a Scheduler.
type Config struct {
	// BytesPerSec is the device bandwidth the scheduler divides. Zero
	// or negative disables the scheduler: every Acquire returns
	// immediately (the pass-through used for A/B baselines).
	BytesPerSec float64
	// Shares are the per-class weights; an all-zero array picks
	// DefaultShares, and any non-positive entry is floored at 1 so no
	// class can be configured into total starvation.
	Shares [NumClasses]float64
	// Burst bounds the free-token backlog an idle class accumulates
	// (expressed as device time). 0 picks the default, 50ms.
	Burst time.Duration
	// Kernel, when set, clocks the scheduler on the simulator's virtual
	// time: waits park the calling simulation process, so grant
	// timelines are deterministic. Nil means wall clock + time.Sleep.
	Kernel *sim.Kernel
	// Now / Sleep override the clock explicitly (tests); both must be
	// set together to be meaningful. They take precedence over Kernel.
	Now   func() time.Duration
	Sleep func(time.Duration)
	// Obs is the registry the scheduler records into under the
	// `iosched.` prefix. Nil creates a private registry on the
	// scheduler's own clock.
	Obs *obs.Registry
}

// Scheduler divides device bandwidth across classes. One instance is
// shared by every background I/O consumer in a deployment (engine
// flush + compaction, burst drain, parity scrub) plus the foreground
// WAL path; see New.
type Scheduler struct {
	rate       float64
	share      [NumClasses]float64
	totalShare float64
	burst      time.Duration
	now        func() time.Duration
	sleep      func(time.Duration)
	reg        *obs.Registry
	m          schedMetrics

	mu sync.Mutex
	// next is each class's virtual next-free time: the moment its
	// already-granted bytes will have been paid for at the effective
	// rates in force when they were granted. next > now ⇒ active.
	next [NumClasses]time.Duration
	// deficit is the catch-up backlog in bytes (see package comment);
	// deficitCap bounds it to one second at the class's reserved rate.
	deficit    [NumClasses]int64
	deficitCap [NumClasses]int64
	// refund holds bytes returned by Cancel; the next Acquire consumes
	// them before buying new tokens, keeping the token accounting
	// balanced under concurrent acquire/cancel.
	refund [NumClasses]int64
}

// New builds a scheduler from cfg. The zero Config is valid and yields
// a disabled scheduler (all acquires free).
func New(cfg Config) *Scheduler {
	s := &Scheduler{
		rate:  cfg.BytesPerSec,
		burst: cfg.Burst,
		now:   cfg.Now,
		sleep: cfg.Sleep,
	}
	if s.burst <= 0 {
		s.burst = 50 * time.Millisecond
	}
	shares := cfg.Shares
	allZero := true
	for _, v := range shares {
		if v > 0 {
			allZero = false
			break
		}
	}
	if allZero {
		shares = DefaultShares
	}
	for c := range shares {
		if shares[c] <= 0 {
			shares[c] = 1
		}
		s.totalShare += shares[c]
	}
	s.share = shares
	if k := cfg.Kernel; k != nil {
		if s.now == nil {
			s.now = func() time.Duration { return k.Now().Duration() }
		}
		if s.sleep == nil {
			s.sleep = func(d time.Duration) { k.Current().Sleep(d) }
		}
	}
	if s.now == nil {
		epoch := time.Now()
		s.now = func() time.Duration { return time.Since(epoch) }
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	if s.rate > 0 {
		for c := Class(0); c < NumClasses; c++ {
			s.deficitCap[c] = int64(s.rate * s.share[c] / s.totalShare)
		}
	}
	s.reg = cfg.Obs
	if s.reg == nil {
		s.reg = obs.NewRegistry()
		s.reg.SetClock(s.now)
	}
	s.m = newSchedMetrics(s.reg)
	s.m.rate.Set(int64(s.rate))
	return s
}

// Enabled reports whether the scheduler actually throttles (non-nil
// and configured with a positive device rate).
func (s *Scheduler) Enabled() bool { return s != nil && s.rate > 0 }

// Rate returns the configured device bandwidth in bytes per second.
func (s *Scheduler) Rate() float64 {
	if s == nil {
		return 0
	}
	return s.rate
}

// Obs returns the registry the scheduler records into.
func (s *Scheduler) Obs() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Acquire blocks until class may issue n bytes of I/O, sleeping on the
// configured clock until the grant's start time, and returns how long
// it waited. Free (and wait-less) on a nil or disabled scheduler.
func (s *Scheduler) Acquire(class Class, n int64) time.Duration {
	if !s.Enabled() || n <= 0 {
		return 0
	}
	wait := s.reserve(class, n)
	if wait > 0 {
		s.sleep(wait)
	}
	return wait
}

// AcquireCtx is Acquire with cooperative cancellation: a context
// already canceled buys nothing, and a cancellation observed after the
// pacing sleep refunds the tokens (Cancel) and returns the context
// error, so an aborted I/O does not leak budget.
func (s *Scheduler) AcquireCtx(ctx context.Context, class Class, n int64) (time.Duration, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	wait := s.Acquire(class, n)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Cancel(class, n)
			return wait, err
		}
	}
	return wait, nil
}

// Cancel returns n bytes of previously acquired budget that were never
// issued to the device (the write errored or was aborted). The bytes
// become a refund credit consumed by the class's next Acquire.
func (s *Scheduler) Cancel(class Class, n int64) {
	if !s.Enabled() || n <= 0 {
		return
	}
	s.mu.Lock()
	s.refund[class] += n
	s.m.canceled[class].Add(n)
	s.mu.Unlock()
}

// reserve computes one grant under the scheduler mutex and returns how
// long the caller must sleep before issuing its I/O.
func (s *Scheduler) reserve(class Class, n int64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	granted := n
	if r := s.refund[class]; r > 0 {
		take := r
		if take > n {
			take = n
		}
		s.refund[class] -= take
		n -= take
	}
	// Metrics count the full request as granted either way; refunded
	// bytes were already paid for by the canceled acquire.
	s.m.grants[class].Inc()
	s.m.bytes[class].Add(granted)
	if n == 0 {
		s.m.waitHist[class].ObserveDuration(0)
		return 0
	}
	// Burst allowance: an idle class's token bucket holds at most one
	// burst of credit.
	if floor := now - s.burst; s.next[class] < floor {
		s.next[class] = floor
	}
	// Work-conserving effective rate: divide the device over the active
	// classes (unexpired claims), weighting deficit-carrying classes
	// double so they catch up.
	weights := 0.0
	for c := Class(0); c < NumClasses; c++ {
		if c == class || s.next[c] > now {
			weights += s.weight(c)
		}
	}
	eff := s.rate * s.weight(class) / weights
	start := s.next[class]
	if start < now {
		start = now
	}
	dur := time.Duration(float64(n) / eff * float64(time.Second))
	s.next[class] = start + dur
	wait := start - now
	if wait < 0 {
		wait = 0
	}
	if wait > 0 {
		reserved := s.rate * s.share[class] / s.totalShare
		s.deficit[class] += int64(reserved * wait.Seconds())
		if s.deficit[class] > s.deficitCap[class] {
			s.deficit[class] = s.deficitCap[class]
		}
	}
	if s.deficit[class] > 0 {
		s.deficit[class] -= granted
		if s.deficit[class] < 0 {
			s.deficit[class] = 0
		}
	}
	s.m.waitNanos[class].Add(int64(wait))
	s.m.waitHist[class].ObserveDuration(wait)
	s.m.deficit[class].Set(s.deficit[class])
	s.m.busyNanos.Add(int64(float64(n) / s.rate * float64(time.Second)))
	return wait
}

// weight is a class's live share: doubled while it carries a deficit.
func (s *Scheduler) weight(c Class) float64 {
	w := s.share[c]
	if s.deficit[c] > 0 {
		w *= 2
	}
	return w
}

// ClassState is a diagnostic snapshot of one class's accounting,
// exposed for tests and the lsmioctl stats iosched section.
type ClassState struct {
	// NextFree is the class's virtual next-free time; values in the
	// future mean the class has unexpired claims on the device.
	NextFree time.Duration
	// Deficit is the catch-up backlog in bytes.
	Deficit int64
	// Refund is the canceled-but-unconsumed byte credit.
	Refund int64
}

// State returns class c's current accounting.
func (s *Scheduler) State(c Class) ClassState {
	if s == nil || c < 0 || c >= NumClasses {
		return ClassState{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return ClassState{NextFree: s.next[c], Deficit: s.deficit[c], Refund: s.refund[c]}
}
