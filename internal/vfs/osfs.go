package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// OSFS implements FS on a directory of the real operating-system
// filesystem. It is what the LSMIO examples and the lsmioctl tool use when
// running outside the simulator.
type OSFS struct {
	root string
}

// NewOSFS returns an FS rooted at dir, creating it if necessary.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: root %s: %w", dir, err)
	}
	return &OSFS{root: dir}, nil
}

// Root returns the root directory.
func (o *OSFS) Root() string { return o.root }

func (o *OSFS) path(name string) string {
	return filepath.Join(o.root, filepath.FromSlash(clean(name)))
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("%w (%v)", ErrNotExist, err)
	case errors.Is(err, fs.ErrExist):
		return fmt.Errorf("%w (%v)", ErrExist, err)
	default:
		return err
	}
}

// Create implements FS.
func (o *OSFS) Create(name string) (File, error) {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, mapErr(err)
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, mapErr(err)
	}
	return &osFile{name: clean(name), f: f}, nil
}

// Open implements FS.
func (o *OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_RDWR, 0)
	if err != nil {
		return nil, mapErr(err)
	}
	return &osFile{name: clean(name), f: f}, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error { return mapErr(os.Remove(o.path(name))) }

// Rename implements FS.
func (o *OSFS) Rename(oldName, newName string) error {
	dst := o.path(newName)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return mapErr(err)
	}
	return mapErr(os.Rename(o.path(oldName), dst))
}

// MkdirAll implements FS.
func (o *OSFS) MkdirAll(dir string) error { return mapErr(os.MkdirAll(o.path(dir), 0o755)) }

// List implements FS.
func (o *OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(o.path(dir))
	if err != nil {
		return nil, mapErr(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (o *OSFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(o.path(name))
	if err != nil {
		return 0, mapErr(err)
	}
	return fi.Size(), nil
}

// Exists implements FS.
func (o *OSFS) Exists(name string) bool {
	_, err := os.Stat(o.path(name))
	return err == nil
}

type osFile struct {
	name string
	f    *os.File
}

func (f *osFile) Name() string                            { return f.name }
func (f *osFile) Read(p []byte) (int, error)              { return f.f.Read(p) }
func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	return f.f.WriteAt(p, off)
}
func (f *osFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}
func (f *osFile) Size() (int64, error) {
	fi, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
func (f *osFile) Sync() error            { return f.f.Sync() }
func (f *osFile) Truncate(n int64) error { return f.f.Truncate(n) }
func (f *osFile) Close() error           { return f.f.Close() }
