package vfs

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS used by unit tests and as the data store
// backing the simulated parallel file system. It is safe for concurrent
// use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode
	dirs  map[string]bool
}

type memNode struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string]*memNode),
		dirs:  map[string]bool{".": true},
	}
}

func clean(name string) string {
	name = path.Clean(strings.TrimPrefix(name, "/"))
	if name == "" {
		name = "."
	}
	return name
}

func (m *MemFS) ensureParents(name string) {
	for d := path.Dir(name); d != "." && d != "/"; d = path.Dir(d) {
		m.dirs[d] = true
	}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[name] {
		return nil, fmt.Errorf("create %s: %w", name, ErrIsDir)
	}
	n := &memNode{}
	m.files[name] = n
	m.ensureParents(name)
	return &memFile{name: name, node: n, fs: m}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("open %s: %w", name, ErrNotExist)
	}
	return &memFile{name: name, node: n, fs: m}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	oldName, newName = clean(oldName), clean(newName)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldName, ErrNotExist)
	}
	delete(m.files, oldName)
	m.files[newName] = n
	m.ensureParents(newName)
	return nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	dir = clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	m.ensureParents(dir + "/x")
	return nil
}

// List implements FS.
func (m *MemFS) List(dir string) ([]string, error) {
	dir = clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] && dir != "." {
		return nil, fmt.Errorf("list %s: %w", dir, ErrNotExist)
	}
	seen := make(map[string]bool)
	collect := func(p string) {
		if dir == "." {
			if i := strings.IndexByte(p, '/'); i >= 0 {
				seen[p[:i]] = true
			} else {
				seen[p] = true
			}
			return
		}
		prefix := dir + "/"
		if strings.HasPrefix(p, prefix) {
			rest := p[len(prefix):]
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			seen[rest] = true
		}
	}
	for p := range m.files {
		collect(p)
	}
	for p := range m.dirs {
		if p != "." && p != dir {
			collect(p)
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (int64, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("stat %s: %w", name, ErrNotExist)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.data)), nil
}

// Exists implements FS.
func (m *MemFS) Exists(name string) bool {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return true
	}
	return m.dirs[name]
}

// TotalBytes reports the sum of all file sizes, for tests and accounting.
func (m *MemFS) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, n := range m.files {
		n.mu.Lock()
		total += int64(len(n.data))
		n.mu.Unlock()
	}
	return total
}

type memFile struct {
	name   string
	node   *memNode
	fs     *MemFS
	pos    int64
	closed bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	n, err := f.WriteAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.node.data)) {
		if end <= int64(cap(f.node.data)) {
			f.node.data = f.node.data[:end]
		} else {
			// Amortized doubling so sequential appends are O(n) overall.
			newCap := int64(cap(f.node.data))
			if newCap < 1024 {
				newCap = 1024
			}
			for newCap < end {
				newCap *= 2
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.node.data)
			f.node.data = grown
		}
	}
	copy(f.node.data[off:end], p)
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		f.node.mu.Lock()
		base = int64(len(f.node.data))
		f.node.mu.Unlock()
	default:
		return 0, fmt.Errorf("seek %s: bad whence %d", f.name, whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("seek %s: negative position", f.name)
	}
	f.pos = np
	return np, nil
}

func (f *memFile) Size() (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	return int64(len(f.node.data)), nil
}

func (f *memFile) Sync() error {
	if f.closed {
		return ErrClosed
	}
	return nil
}

func (f *memFile) Truncate(size int64) error {
	if f.closed {
		return ErrClosed
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if size < int64(len(f.node.data)) {
		f.node.data = f.node.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	return nil
}

func (f *memFile) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}
