// Package vfs defines the filesystem abstraction shared by every storage
// component in this repository. The LSM engine, the LSMIO library and the
// comparator file formats (HDF5-like, ADIOS2-like) perform all their I/O
// through FS and File, so the same code runs unchanged against the real
// operating-system filesystem (OSFS), an in-memory filesystem for tests
// (MemFS), and the simulated Lustre parallel file system (package pfs),
// where each operation additionally advances the calling rank's virtual
// clock.
package vfs

import (
	"errors"
	"fmt"
	"io"
)

// Common error values. Implementations wrap or return these so callers can
// test with errors.Is.
var (
	ErrNotExist = errors.New("file does not exist")
	ErrExist    = errors.New("file already exists")
	ErrClosed   = errors.New("file already closed")
	ErrIsDir    = errors.New("is a directory")
)

// FS is a minimal hierarchical filesystem. Paths are slash-separated and
// relative to the filesystem root.
type FS interface {
	// Create makes (or truncates) a file and opens it for reading and
	// writing, creating parent directories as needed.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file.
	Rename(oldName, newName string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// List returns the names (not full paths) of entries in dir, sorted.
	List(dir string) ([]string, error)
	// Stat returns the size of a file.
	Stat(name string) (size int64, err error)
	// Exists reports whether a file or directory exists.
	Exists(name string) bool
}

// File is an open file supporting both positional and cursor I/O.
// Implementations need not be safe for concurrent use; the storage engines
// in this repository serialize access per file handle.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	io.Seeker
	// Size returns the current file length.
	Size() (int64, error)
	// Sync forces buffered data to stable storage. On the simulated PFS
	// this is where write-back cache drain time is charged.
	Sync() error
	// Truncate changes the file length.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// WriteString writes s to f.
func WriteString(f File, s string) (int, error) { return f.Write([]byte(s)) }

// ReadAll reads the whole file from the beginning regardless of cursor.
func ReadAll(f File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if err == io.EOF {
		err = nil
	}
	if err == nil && int64(n) < size {
		// A short read with no error would hand the caller a buffer whose
		// tail is silent zeros — treat it as the I/O failure it is.
		return buf[:n], fmt.Errorf("vfs: short read of %s: %d of %d bytes: %w",
			f.Name(), n, size, io.ErrUnexpectedEOF)
	}
	return buf, err
}
