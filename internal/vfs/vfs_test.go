package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// fsUnderTest runs the same behavioural suite over every FS implementation.
func fsUnderTest(t *testing.T) map[string]FS {
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"mem": NewMemFS(),
		"os":  osfs,
	}
}

func TestCreateWriteRead(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fsys.Create("dir/sub/file.dat")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			g, err := fsys.Open("dir/sub/file.dat")
			if err != nil {
				t.Fatal(err)
			}
			data, err := ReadAll(g)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "hello world" {
				t.Fatalf("got %q", data)
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadAtWriteAt(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fsys.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("abcdef"), 0); err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("XY"), 2); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 6)
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "abXYef" {
				t.Fatalf("got %q", buf)
			}
			// Sparse extension.
			if _, err := f.WriteAt([]byte("Z"), 10); err != nil {
				t.Fatal(err)
			}
			if size, _ := f.Size(); size != 11 {
				t.Fatalf("size = %d, want 11", size)
			}
		})
	}
}

func TestSeek(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("f")
			defer f.Close()
			f.Write([]byte("0123456789"))
			if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
				t.Fatalf("seek: %v %v", pos, err)
			}
			b := make([]byte, 3)
			f.Read(b)
			if string(b) != "234" {
				t.Fatalf("got %q", b)
			}
			if pos, _ := f.Seek(-2, io.SeekEnd); pos != 8 {
				t.Fatalf("seek end: %d", pos)
			}
			if pos, _ := f.Seek(1, io.SeekCurrent); pos != 9 {
				t.Fatalf("seek current: %d", pos)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fsys.Open("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("err = %v, want ErrNotExist", err)
			}
			if _, err := fsys.Stat("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("stat err = %v", err)
			}
			if err := fsys.Remove("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("remove err = %v", err)
			}
		})
	}
}

func TestRename(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("a")
			f.Write([]byte("payload"))
			f.Close()
			if err := fsys.Rename("a", "b/c"); err != nil {
				t.Fatal(err)
			}
			if fsys.Exists("a") {
				t.Fatal("old name still exists")
			}
			g, err := fsys.Open("b/c")
			if err != nil {
				t.Fatal(err)
			}
			data, _ := ReadAll(g)
			g.Close()
			if string(data) != "payload" {
				t.Fatalf("got %q", data)
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for _, p := range []string{"d/b", "d/a", "d/sub/x", "top"} {
				f, err := fsys.Create(p)
				if err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
			names, err := fsys.List("d")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a", "b", "sub"}
			if len(names) != len(want) {
				t.Fatalf("names = %v, want %v", names, want)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("names = %v, want %v", names, want)
				}
			}
		})
	}
}

func TestTruncate(t *testing.T) {
	for name, fsys := range fsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("f")
			defer f.Close()
			f.Write([]byte("0123456789"))
			if err := f.Truncate(4); err != nil {
				t.Fatal(err)
			}
			if size, _ := f.Size(); size != 4 {
				t.Fatalf("size = %d", size)
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			data, _ := ReadAll(f)
			if !bytes.Equal(data, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
				t.Fatalf("data = %q", data)
			}
		})
	}
}

func TestClosedFileRejectsIO(t *testing.T) {
	fsys := NewMemFS()
	f, _ := fsys.Create("f")
	f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
}

// Property: for any sequence of (offset, data) writes, reading the whole
// file back matches an in-memory reference model.
func TestQuickWriteAtMatchesModel(t *testing.T) {
	fn := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		fsys := NewMemFS()
		f, _ := fsys.Create("f")
		defer f.Close()
		var model []byte
		for _, op := range ops {
			off := int64(op.Off % 4096)
			end := off + int64(len(op.Data))
			if end > int64(len(model)) {
				grown := make([]byte, end)
				copy(grown, model)
				model = grown
			}
			copy(model[off:end], op.Data)
			if _, err := f.WriteAt(op.Data, off); err != nil {
				return false
			}
		}
		got, err := ReadAll(f)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	fsys := NewMemFS()
	f, _ := fsys.Create("a")
	f.Write(make([]byte, 100))
	f.Close()
	g, _ := fsys.Create("b")
	g.Write(make([]byte, 50))
	g.Close()
	if got := fsys.TotalBytes(); got != 150 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

// shortReadFile claims a larger size than ReadAt delivers, modeling a
// file truncated between Stat and read (or a lying transport).
type shortReadFile struct {
	File
	claim int64
}

func (s *shortReadFile) Size() (int64, error) { return s.claim, nil }

func (s *shortReadFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := s.File.ReadAt(p, off)
	if err == io.EOF {
		err = nil
	}
	return n, err
}

func TestReadAllShortReadIsError(t *testing.T) {
	fsys := NewMemFS()
	f, _ := fsys.Create("f")
	f.Write([]byte("only-8b!"))
	got, err := ReadAll(&shortReadFile{File: f, claim: 64})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
	if string(got) != "only-8b!" {
		t.Fatalf("partial buffer = %q", got)
	}
	f.Close()
}
