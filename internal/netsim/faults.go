package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Fault injection for the fabric, mirroring faultfs's scheduled-error
// style at the network layer: a Plan is a deterministic schedule of
// partitions, link flaps, and per-transfer rules (drop / duplicate /
// delay the Nth matching message) that the fabric consults on every
// TryTransfer. Everything is keyed on virtual time and match counts, so
// a given seed and schedule always produce the same failure sequence.

// FaultAction is what a matched Rule does to a transfer.
type FaultAction int

const (
	// FaultDrop loses the message: the sender pays the base latency
	// (the message left the NIC before dying) and gets a *DropError.
	FaultDrop FaultAction = iota
	// FaultDup delivers the message twice, charging the wire twice.
	FaultDup
	// FaultDelay adds Rule.Delay of extra latency before delivery.
	FaultDelay
)

func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Rule schedules a fault on individual transfers, in the style of
// faultfs.Rule: it arms on the Nth matching transfer and then fires on
// Times consecutive matches.
type Rule struct {
	// From and To select the endpoints; -1 matches any node.
	From, To int
	// Nth is the 1-based index of the first matching transfer the rule
	// fires on (0 behaves as 1: fire immediately). At most one rule
	// fires per transfer (the first armed match wins), and a transfer
	// consumed by an earlier rule does not advance later rules' match
	// counts: with overlapping rules, Nth indexes the transfers left
	// over by the rules above this one.
	Nth int
	// Times is how many consecutive matches fire once armed (0 behaves
	// as 1; negative means every match forever).
	Times int
	// Action is what firing does.
	Action FaultAction
	// Delay is the extra latency for FaultDelay.
	Delay time.Duration

	seen, fired int
}

func (r *Rule) matches(from, to int) bool {
	return (r.From < 0 || r.From == from) && (r.To < 0 || r.To == to)
}

// window is a time span during which a set of node pairs cannot talk.
type window struct {
	a, b        map[int]bool
	from, until time.Duration // until <= 0 means forever
}

func (w *window) active(now time.Duration, from, to int) bool {
	if now < w.from || (w.until > 0 && now >= w.until) {
		return false
	}
	return (w.a[from] && w.b[to]) || (w.a[to] && w.b[from])
}

// flap periodically takes a link set down: during each period the link
// is dead for the first downFor, starting at offset.
type flap struct {
	a, b            map[int]bool
	period, downFor time.Duration
	offset          time.Duration
}

func (fl *flap) active(now time.Duration, from, to int) bool {
	if now < fl.offset || fl.period <= 0 {
		return false
	}
	if !((fl.a[from] && fl.b[to]) || (fl.a[to] && fl.b[from])) {
		return false
	}
	return (now-fl.offset)%fl.period < fl.downFor
}

// Plan is a deterministic fabric fault schedule. Methods are safe for
// concurrent use (the fabric may be driven from many procs and the race
// detector watches the counters).
type Plan struct {
	mu      sync.Mutex
	windows []*window
	flaps   []*flap
	rules   []*Rule

	dropped    int64
	duplicated int64
	delayed    int64
}

// NewPlan returns an empty fault plan.
func NewPlan() *Plan { return &Plan{} }

func nodeSet(nodes []int) map[int]bool {
	m := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		m[n] = true
	}
	return m
}

// Partition makes the node sets a and b unable to exchange messages
// (either direction) from virtual time `from` until `until`; until <= 0
// partitions forever (until Heal). Returns the plan for chaining.
func (pl *Plan) Partition(a, b []int, from, until time.Duration) *Plan {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.windows = append(pl.windows, &window{a: nodeSet(a), b: nodeSet(b), from: from, until: until})
	return pl
}

// FlapLink takes the a<->b links down for downFor at the start of every
// period, beginning at offset — a link that keeps coming and going.
func (pl *Plan) FlapLink(a, b []int, period, downFor, offset time.Duration) *Plan {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.flaps = append(pl.flaps, &flap{a: nodeSet(a), b: nodeSet(b), period: period, downFor: downFor, offset: offset})
	return pl
}

// AddRule schedules a per-transfer rule. The rule is copied; the plan
// owns the match counters.
func (pl *Plan) AddRule(r Rule) *Plan {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	rc := r
	pl.rules = append(pl.rules, &rc)
	return pl
}

// Heal removes every partition window and flap (scheduled rules keep
// their remaining budget).
func (pl *Plan) Heal() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.windows = nil
	pl.flaps = nil
}

// ClearRules removes every scheduled per-transfer rule (partition
// windows and flaps are untouched; see Heal for those).
func (pl *Plan) ClearRules() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.rules = nil
}

// Dropped reports how many transfers the plan has dropped.
func (pl *Plan) Dropped() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.dropped
}

// Duplicated reports how many transfers the plan has duplicated.
func (pl *Plan) Duplicated() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.duplicated
}

// Delayed reports how many transfers the plan has delayed.
func (pl *Plan) Delayed() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.delayed
}

// verdict decides the fate of one transfer at virtual time now:
// extra delay to charge, whether to duplicate, and whether to drop.
// Partitions and flaps drop; at most one scheduled rule fires per
// transfer (the first armed match wins).
func (pl *Plan) verdict(now time.Duration, from, to int) (delay time.Duration, dup, drop bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, w := range pl.windows {
		if w.active(now, from, to) {
			pl.dropped++
			return 0, false, true
		}
	}
	for _, fl := range pl.flaps {
		if fl.active(now, from, to) {
			pl.dropped++
			return 0, false, true
		}
	}
	for _, r := range pl.rules {
		if !r.matches(from, to) {
			continue
		}
		r.seen++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if r.seen < nth {
			continue
		}
		times := r.Times
		if times == 0 {
			times = 1
		}
		if times > 0 && r.fired >= times {
			continue
		}
		r.fired++
		switch r.Action {
		case FaultDrop:
			pl.dropped++
			return 0, false, true
		case FaultDup:
			pl.duplicated++
			return 0, true, false
		case FaultDelay:
			pl.delayed++
			return r.Delay, false, false
		}
	}
	return 0, false, false
}

// DropError reports a transfer lost to the fault plan. It is a
// transient fault: the message is gone but the link may work on retry,
// so resil.Classify maps it to ClassTransient.
type DropError struct {
	From, To int
}

func (e *DropError) Error() string {
	return fmt.Sprintf("netsim: message %d->%d dropped by fault plan", e.From, e.To)
}

// TransientFault marks the drop as retryable.
func (e *DropError) TransientFault() bool { return true }
