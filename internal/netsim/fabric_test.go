package netsim

import (
	"testing"
	"time"

	"lsmio/internal/sim"
)

func testConfig(nodes int) Config {
	return Config{Nodes: nodes, Latency: time.Millisecond, Bandwidth: 1e9, MaxPacket: 1 << 20}
}

func TestTransferTime(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	var end sim.Time
	k.Spawn("sender", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 1e9) // 1 GB at 1 GB/s + 1 ms latency
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(time.Second + time.Millisecond)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestDisjointPairsOverlap(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(4))
	ends := make([]sim.Time, 2)
	k.Spawn("s0", func(p *sim.Proc) { f.Transfer(p, 0, 1, 1e9); ends[0] = p.Now() })
	k.Spawn("s1", func(p *sim.Proc) { f.Transfer(p, 2, 3, 1e9); ends[1] = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(time.Second + time.Millisecond)
	if ends[0] != want || ends[1] != want {
		t.Fatalf("ends = %v, want both %v (parallel transfers)", ends, want)
	}
}

func TestSharedReceiverSerializes(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(3))
	ends := make([]sim.Time, 2)
	k.Spawn("s0", func(p *sim.Proc) { f.Transfer(p, 0, 2, 1e9); ends[0] = p.Now() })
	k.Spawn("s1", func(p *sim.Proc) { f.Transfer(p, 1, 2, 1e9); ends[1] = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both target node 2's rx NIC: the slower must finish near 2 s, not 1 s.
	later := ends[0]
	if ends[1] > later {
		later = ends[1]
	}
	if later < sim.Time(1900*time.Millisecond) {
		t.Fatalf("later end = %v, want near 2s (serialized rx)", later)
	}
}

func TestLoopbackIsCheap(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	var end sim.Time
	k.Spawn("s", func(p *sim.Proc) { f.Transfer(p, 0, 0, 1e6); end = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end > sim.Time(time.Millisecond) {
		t.Fatalf("loopback took %v", end)
	}
}

func TestAccounting(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	k.Spawn("s", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 100)
		f.Transfer(p, 0, 1, 200)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.BytesMoved() != 300 || f.Messages() != 2 {
		t.Fatalf("bytes=%d msgs=%d", f.BytesMoved(), f.Messages())
	}
}

func TestZeroByteTransferPaysLatencyOnly(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	var end sim.Time
	k.Spawn("s", func(p *sim.Proc) { f.Transfer(p, 0, 1, 0); end = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(time.Millisecond) {
		t.Fatalf("end = %v, want 1ms", end)
	}
}

func TestLargeTransferChunksShareNIC(t *testing.T) {
	// With MaxPacket chunking, a long transfer must not monopolize the
	// sender's NIC: a short transfer issued mid-way finishes long before
	// the bulk one.
	k := sim.NewKernel()
	f := New(k, Config{Nodes: 3, Latency: time.Microsecond, Bandwidth: 1e9, MaxPacket: 1 << 20})
	var bulkEnd, smallEnd sim.Time
	k.Spawn("bulk", func(p *sim.Proc) {
		f.Transfer(p, 0, 1, 100<<20) // ~105 ms of wire time
		bulkEnd = p.Now()
	})
	k.Spawn("small", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		f.Transfer(p, 0, 2, 1<<20) // same tx NIC
		smallEnd = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if smallEnd >= bulkEnd {
		t.Fatalf("small transfer (%v) starved behind bulk (%v)", smallEnd, bulkEnd)
	}
	if smallEnd > sim.Time(40*time.Millisecond) {
		t.Fatalf("small transfer took too long: %v", smallEnd)
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { New(k, Config{Nodes: 0, Bandwidth: 1}) })
	mustPanic(func() { New(k, Config{Nodes: 1, Bandwidth: 0}) })
	f := New(k, Config{Nodes: 2, Bandwidth: 1e9})
	k.Spawn("oob", func(p *sim.Proc) {
		mustPanic(func() { f.Transfer(p, 0, 5, 10) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
