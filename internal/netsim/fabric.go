// Package netsim models the cluster interconnect for the simulated HPC
// system: a flat fat-tree-like fabric where every node has a full-duplex
// NIC with fixed bandwidth, and every message pays a base latency. Link
// contention is modelled by treating each NIC direction as a serial
// resource, so concurrent transfers to or from one node queue behind each
// other while transfers between disjoint node pairs proceed in parallel.
package netsim

import (
	"fmt"
	"time"

	"lsmio/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	Nodes     int           // number of endpoints
	Latency   time.Duration // one-way per-message latency
	Bandwidth float64       // per-NIC bandwidth, bytes/second
	// MaxPacket chunks large transfers so that a long message does not
	// monopolize a NIC for its entire duration. Zero means no chunking.
	MaxPacket int64
}

// DefaultConfig returns an interconnect resembling a 100 Gb/s class HPC
// fabric (EDR/HDR InfiniBand era, matching the Viking cluster's vintage).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:     nodes,
		Latency:   20 * time.Microsecond,
		Bandwidth: 10e9, // 10 GB/s
		MaxPacket: 4 << 20,
	}
}

// Fabric is the simulated interconnect.
type Fabric struct {
	k    *sim.Kernel
	cfg  Config
	tx   []*sim.Resource // per-node transmit side
	rx   []*sim.Resource // per-node receive side
	plan *Plan           // fault schedule, nil when the fabric is healthy

	bytesMoved int64
	messages   int64
}

// New builds a fabric on kernel k.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Nodes <= 0 {
		panic("netsim: need at least one node")
	}
	if cfg.Bandwidth <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	f := &Fabric{k: k, cfg: cfg}
	f.tx = make([]*sim.Resource, cfg.Nodes)
	f.rx = make([]*sim.Resource, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		f.tx[i] = sim.NewResource(k, fmt.Sprintf("tx%d", i), 1)
		f.rx[i] = sim.NewResource(k, fmt.Sprintf("rx%d", i), 1)
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Nodes returns the number of endpoints.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// wireTime is the serialization time for size bytes on one NIC.
func (f *Fabric) wireTime(size int64) time.Duration {
	return time.Duration(float64(size) / f.cfg.Bandwidth * 1e9)
}

// Transfer moves size bytes from node `from` to node `to`, charging the
// calling process the full transfer time including queueing on both NICs.
// A transfer within one node costs only a small local copy time.
func (f *Fabric) Transfer(p *sim.Proc, from, to int, size int64) {
	if from < 0 || from >= f.cfg.Nodes || to < 0 || to >= f.cfg.Nodes {
		panic(fmt.Sprintf("netsim: transfer %d->%d out of range", from, to))
	}
	if size < 0 {
		size = 0
	}
	f.messages++
	f.bytesMoved += size
	if from == to {
		// Loopback: memory copy, no NIC involvement.
		p.Sleep(time.Duration(float64(size) / (4 * f.cfg.Bandwidth) * 1e9))
		return
	}
	chunk := f.cfg.MaxPacket
	if chunk <= 0 || chunk > size {
		chunk = size
	}
	// Latency is paid once per message; serialization per chunk while
	// holding both NIC directions.
	p.Sleep(f.cfg.Latency)
	remaining := size
	for {
		n := chunk
		if n > remaining {
			n = remaining
		}
		f.tx[from].Acquire(p, 1)
		f.rx[to].Acquire(p, 1)
		p.Sleep(f.wireTime(n))
		f.rx[to].Release(1)
		f.tx[from].Release(1)
		remaining -= n
		if remaining <= 0 {
			break
		}
	}
}

// SetPlan installs (or, with nil, removes) a fault plan. Only
// TryTransfer consults the plan; Transfer always delivers, so
// infrastructure traffic can bypass injection.
func (f *Fabric) SetPlan(pl *Plan) { f.plan = pl }

// Plan returns the installed fault plan, nil when healthy.
func (f *Fabric) Plan() *Plan { return f.plan }

// TryTransfer moves size bytes from node `from` to node `to` under the
// installed fault plan. A dropped message still charges the base
// latency (it left the NIC before dying) and returns a *DropError; a
// duplicated message is charged and counted twice and reported via dup
// so the receiver-side protocol can model the double delivery; a
// delayed message pays the extra latency before the normal transfer.
// With no plan installed TryTransfer is exactly Transfer.
func (f *Fabric) TryTransfer(p *sim.Proc, from, to int, size int64) (dup bool, err error) {
	pl := f.plan
	if pl == nil {
		f.Transfer(p, from, to, size)
		return false, nil
	}
	delay, dup, drop := pl.verdict(f.k.Now().Duration(), from, to)
	if delay > 0 {
		p.Sleep(delay)
	}
	if drop {
		p.Sleep(f.cfg.Latency)
		f.messages++
		return false, &DropError{From: from, To: to}
	}
	f.Transfer(p, from, to, size)
	if dup {
		f.Transfer(p, from, to, size)
	}
	return dup, nil
}

// BytesMoved reports the cumulative payload bytes transferred.
func (f *Fabric) BytesMoved() int64 { return f.bytesMoved }

// Messages reports the cumulative number of Transfer calls.
func (f *Fabric) Messages() int64 { return f.messages }
