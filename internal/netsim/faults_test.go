package netsim

import (
	"errors"
	"testing"
	"time"

	"lsmio/internal/sim"
)

func TestPlanPartitionWindow(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(3))
	pl := NewPlan().Partition([]int{0}, []int{1}, 5*time.Millisecond, 20*time.Millisecond)
	f.SetPlan(pl)
	var errs []error
	k.Spawn("s", func(p *sim.Proc) {
		for _, at := range []time.Duration{0, 10 * time.Millisecond, 30 * time.Millisecond} {
			if at > p.Now().Duration() {
				p.Sleep(at - p.Now().Duration())
			}
			_, err := f.TryTransfer(p, 0, 1, 100)
			errs = append(errs, err)
		}
		// The partition is directionless and does not affect other pairs.
		p.Sleep(time.Millisecond)
		if _, err := f.TryTransfer(p, 0, 2, 100); err != nil {
			t.Errorf("0->2 during window: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("transfers outside the window failed: %v, %v", errs[0], errs[2])
	}
	var de *DropError
	if !errors.As(errs[1], &de) || de.From != 0 || de.To != 1 {
		t.Fatalf("mid-window transfer = %v, want DropError{0,1}", errs[1])
	}
	if !de.TransientFault() {
		t.Fatal("DropError must be a transient fault")
	}
	if pl.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", pl.Dropped())
	}
}

func TestPlanRuleNthTimes(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	// Drop the 2nd and 3rd matching transfers only.
	f.SetPlan(NewPlan().AddRule(Rule{From: -1, To: 1, Nth: 2, Times: 2, Action: FaultDrop}))
	var got []bool
	k.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			_, err := f.TryTransfer(p, 0, 1, 10)
			got = append(got, err != nil)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drop pattern = %v, want %v", got, want)
		}
	}
}

func TestPlanDuplicate(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	f.SetPlan(NewPlan().AddRule(Rule{From: 0, To: 1, Nth: 1, Times: 1, Action: FaultDup}))
	var dups []bool
	k.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			dup, err := f.TryTransfer(p, 0, 1, 100)
			if err != nil {
				t.Errorf("transfer %d: %v", i, err)
			}
			dups = append(dups, dup)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !dups[0] || dups[1] {
		t.Fatalf("dup pattern = %v, want [true false]", dups)
	}
	// The duplicate was charged as a second message.
	if f.Messages() != 3 || f.BytesMoved() != 300 {
		t.Fatalf("messages=%d bytes=%d, want 3/300", f.Messages(), f.BytesMoved())
	}
}

func TestPlanDelayAddsLatency(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	extra := 7 * time.Millisecond
	f.SetPlan(NewPlan().AddRule(Rule{From: -1, To: -1, Action: FaultDelay, Delay: extra}))
	var end sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		if _, err := f.TryTransfer(p, 0, 1, 0); err != nil {
			t.Errorf("transfer: %v", err)
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(time.Millisecond+extra) {
		t.Fatalf("end = %v, want %v", end, time.Millisecond+extra)
	}
}

func TestPlanFlapPeriodic(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	// Link down for the first 2ms of every 10ms period.
	f.SetPlan(NewPlan().FlapLink([]int{0}, []int{1}, 10*time.Millisecond, 2*time.Millisecond, 0))
	probe := func(p *sim.Proc, at time.Duration) error {
		if at > p.Now().Duration() {
			p.Sleep(at - p.Now().Duration())
		}
		_, err := f.TryTransfer(p, 0, 1, 0)
		return err
	}
	k.Spawn("s", func(p *sim.Proc) {
		if err := probe(p, time.Millisecond); err == nil {
			t.Error("1ms: link should be down")
		}
		if err := probe(p, 5*time.Millisecond); err != nil {
			t.Errorf("5ms: %v", err)
		}
		if err := probe(p, 11*time.Millisecond); err == nil {
			t.Error("11ms: link should be down again")
		}
		if err := probe(p, 15*time.Millisecond); err != nil {
			t.Errorf("15ms: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanHealAndNilPlan(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, testConfig(2))
	pl := NewPlan().Partition([]int{0}, []int{1}, 0, 0) // forever
	f.SetPlan(pl)
	k.Spawn("s", func(p *sim.Proc) {
		if _, err := f.TryTransfer(p, 0, 1, 0); err == nil {
			t.Error("partitioned transfer should drop")
		}
		pl.Heal()
		if _, err := f.TryTransfer(p, 0, 1, 0); err != nil {
			t.Errorf("healed transfer: %v", err)
		}
		f.SetPlan(nil)
		if dup, err := f.TryTransfer(p, 0, 1, 0); err != nil || dup {
			t.Errorf("nil-plan transfer: dup=%v err=%v", dup, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
