package faultfs

import (
	"errors"
	"testing"
	"time"

	"lsmio/internal/vfs"
)

func TestDelayOnlyRuleStallsWithoutError(t *testing.T) {
	f := New(vfs.NewMemFS())
	var slept []time.Duration
	f.SetSleeper(func(d time.Duration) { slept = append(slept, d) })
	f.AddRule(&Rule{Op: OpWrite, Path: "slow.dat", Nth: 2, Times: 3,
		Delay: 7 * time.Millisecond, DelayOnly: true})

	h, err := f.Create("slow.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := h.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 3 {
		t.Fatalf("injected %d stalls, want 3 (writes 2..4)", len(slept))
	}
	for _, d := range slept {
		if d != 7*time.Millisecond {
			t.Fatalf("stall = %v, want 7ms", d)
		}
	}
	if f.Delayed() != 3 {
		t.Fatalf("Delayed() = %d, want 3", f.Delayed())
	}
	if f.Injected() != 0 {
		t.Fatalf("Injected() = %d, want 0 (delay-only rules are not errors)", f.Injected())
	}
}

func TestDelayBeforeInjectedError(t *testing.T) {
	f := New(vfs.NewMemFS())
	var slept time.Duration
	f.SetSleeper(func(d time.Duration) { slept += d })
	f.AddRule(&Rule{Op: OpSync, Delay: 3 * time.Millisecond, Transient: true})

	h, err := f.Create("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("x"))
	err = h.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error = %v, want injected", err)
	}
	if slept != 3*time.Millisecond {
		t.Fatalf("slept %v before the failure, want 3ms", slept)
	}
	if !IsTransient(err) {
		t.Fatal("error lost its transient marker")
	}
}

func TestDelayRulesAccumulateAndOtherOpsUnaffected(t *testing.T) {
	f := New(vfs.NewMemFS())
	var slept time.Duration
	f.SetSleeper(func(d time.Duration) { slept += d })
	f.AddRule(&Rule{Op: OpRead, Times: -1, Delay: time.Millisecond, DelayOnly: true})
	f.AddRule(&Rule{Op: OpRead, Times: -1, Delay: 2 * time.Millisecond, DelayOnly: true})

	h, _ := f.Create("a.dat")
	h.Write([]byte("hello"))
	if slept != 0 {
		t.Fatalf("write slept %v, want 0 (rules are read-only)", slept)
	}
	buf := make([]byte, 5)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if slept != 3*time.Millisecond {
		t.Fatalf("read slept %v, want 3ms (both rules accumulate)", slept)
	}
	h.Close()
}
