// Package faultfs is a deterministic fault-injecting wrapper around any
// vfs.FS (MemFS, OSFS, or the simulated PFS client). It is the test
// substrate for the repository's crash-recovery guarantees:
//
//   - Scheduled error injection: fail the Nth Write/Sync/Rename/... whose
//     path matches a pattern, with transient or permanent errors (Rule).
//   - Torn writes: a failing write may persist only a prefix of its data
//     (Rule.KeepPrefix), modeling a partial page writeback.
//   - Crash simulation: Crash() discards every byte not covered by a
//     completed Sync (or Barrier), modeling loss of the page cache, and
//     kills all open handles.
//   - Crash-point enumeration: with recording enabled the wrapper keeps an
//     op journal and can materialize, for every durability boundary the
//     workload crossed, the exact filesystem image a crash at that boundary
//     would leave behind (journal.go) — crashmonkey-style.
//
// Fault model (see also README.md in this package): namespace operations
// (Create, Remove, Rename, MkdirAll) are atomic and immediately durable, in
// order, as on a journaled file system with ordered metadata. File *data*
// is volatile until the handle completes a Sync (or the filesystem-level
// Barrier, on backends that have one). Rename moves a file's durable bytes
// with its name. This is exactly the contract the LSM engine's
// WAL/SSTable/manifest protocol assumes of its underlying file system.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
	"sync"
	"time"

	"lsmio/internal/vfs"
)

// Op identifies a filesystem operation class for fault matching.
type Op int

// Operation classes. OpAny matches every class in a Rule.
const (
	OpAny Op = iota
	OpCreate
	OpOpen
	OpRemove
	OpRename
	OpMkdirAll
	OpList
	OpStat
	OpRead  // Read and ReadAt
	OpWrite // Write and WriteAt
	OpSync
	OpTruncate
	OpClose
	OpBarrier
)

var opNames = map[Op]string{
	OpAny: "any", OpCreate: "create", OpOpen: "open", OpRemove: "remove",
	OpRename: "rename", OpMkdirAll: "mkdirall", OpList: "list", OpStat: "stat",
	OpRead: "read", OpWrite: "write", OpSync: "sync", OpTruncate: "truncate",
	OpClose: "close", OpBarrier: "barrier",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Sentinel errors. Injected faults wrap ErrInjected; operations on handles
// opened before a Crash (and writes after a scheduled crash) wrap
// ErrCrashed.
var (
	ErrInjected = errors.New("faultfs: injected fault")
	ErrCrashed  = errors.New("faultfs: filesystem crashed")
)

// InjectedError is the concrete error produced by a firing Rule (unless the
// rule carries its own).
type InjectedError struct {
	Op        Op
	Path      string
	Transient bool
}

func (e *InjectedError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faultfs: injected %s %s fault on %q", kind, e.Op, e.Path)
}

func (e *InjectedError) Unwrap() error { return ErrInjected }

// TransientFault marks the error as retryable. Consumers (the PFS client's
// retry loop) classify via this method through errors.As, so they need not
// import this package.
func (e *InjectedError) TransientFault() bool { return e.Transient }

// IsTransient reports whether err (anywhere in its chain) marks itself as a
// transient, retryable fault.
func IsTransient(err error) bool {
	var t interface{ TransientFault() bool }
	return errors.As(err, &t) && t.TransientFault()
}

// Rule schedules fault injection. A rule fires on the Nth call matching
// (Op, Path), and keeps firing for Times consecutive matches.
type Rule struct {
	// Op restricts the rule to one operation class (OpAny: all).
	Op Op
	// Path matches the operation's path: a path.Match pattern, or, failing
	// that, a substring. Empty matches every path. Rename matches on the
	// old name.
	Path string
	// Nth is the 1-based index of the first matching call that fails
	// (0 is treated as 1).
	Nth int
	// Times is how many consecutive matching calls fail from Nth on
	// (0 is treated as 1; negative means forever).
	Times int
	// Transient marks injected errors as retryable (IsTransient).
	Transient bool
	// KeepPrefix, for OpWrite rules, persists the first KeepPrefix bytes
	// of the failing write before returning the error — a torn write.
	KeepPrefix int64
	// Err overrides the returned error (default: *InjectedError). The
	// returned error always wraps it.
	Err error
	// Delay stalls a firing call for this long before it proceeds. With
	// DelayOnly the call then continues normally (slow I/O, not an error)
	// — the deterministic substrate for health-tracker and hedging tests;
	// without DelayOnly the error is injected after the stall (a slow
	// failure). The stall uses the sleeper installed by FS.SetSleeper
	// (real time by default; a simulation passes its virtual-clock sleep).
	Delay     time.Duration
	DelayOnly bool

	seen  int
	fired int
}

func (r *Rule) matches(op Op, p string) bool {
	if r.Op != OpAny && r.Op != op {
		return false
	}
	if r.Path == "" {
		return true
	}
	if ok, err := path.Match(r.Path, p); err == nil && ok {
		return true
	}
	return strings.Contains(p, r.Path)
}

// fire advances the rule's counters for one matching call and reports
// whether it injects a fault this time.
func (r *Rule) fire() bool {
	r.seen++
	nth := r.Nth
	if nth <= 0 {
		nth = 1
	}
	times := r.Times
	if times == 0 {
		times = 1
	}
	if r.seen < nth {
		return false
	}
	if times > 0 && r.fired >= times {
		return false
	}
	r.fired++
	return true
}

func (r *Rule) err(op Op, p string) error {
	ie := &InjectedError{Op: op, Path: p, Transient: r.Transient}
	if r.Err != nil {
		return fmt.Errorf("%w: %w", r.Err, ie)
	}
	return ie
}

// FS wraps an inner vfs.FS with fault injection and crash tracking. It is
// safe for concurrent use, but never holds its own lock across inner-FS
// calls (the inner FS may cooperatively yield inside a simulation).
type FS struct {
	inner vfs.FS

	mu       sync.Mutex
	rules    []*Rule
	injected int
	delayed  int
	sleeper  func(time.Duration)
	gen      int // bumped by Crash(); stale handles die

	// durable holds the last synced image of every path touched through
	// the wrapper (the bytes a crash preserves). Presence in the map means
	// the file durably exists.
	durable map[string][]byte
	dirs    map[string]bool

	// Journal state (journal.go).
	recording  bool
	journal    []journalOp
	base       map[string][]byte
	baseDirs   []string
	boundaries int
}

// New wraps inner. Files already present in inner are treated as fully
// durable.
func New(inner vfs.FS) *FS {
	return &FS{
		inner:   inner,
		durable: make(map[string][]byte),
		dirs:    make(map[string]bool),
	}
}

// Inner returns the wrapped filesystem.
func (f *FS) Inner() vfs.FS { return f.inner }

// AddRule registers a fault-injection rule and returns it.
func (f *FS) AddRule(r *Rule) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
	return r
}

// ClearRules removes all fault-injection rules.
func (f *FS) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected returns how many faults have been injected so far.
func (f *FS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Boundaries returns the number of durability boundaries (Create, Remove,
// Rename, Sync, Barrier) crossed since New or the last StartRecording.
func (f *FS) Boundaries() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.boundaries
}

func cleanPath(name string) string {
	name = path.Clean(strings.TrimPrefix(name, "/"))
	if name == "" {
		name = "."
	}
	return name
}

// consult scans the rules for one (op, path) call under the lock,
// accumulating injected latency from delay-only rules and stopping at the
// first error rule. The caller applies the latency outside the lock.
func (f *FS) consult(op Op, p string) (delay time.Duration, keep int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if !r.matches(op, p) || !r.fire() {
			continue
		}
		delay += r.Delay
		if r.DelayOnly {
			f.delayed++
			continue
		}
		f.injected++
		return delay, r.KeepPrefix, r.err(op, p)
	}
	return delay, 0, nil
}

// sleep applies injected latency through the installed sleeper. It must
// be called without holding f.mu: a simulated sleeper yields to the
// discrete-event kernel, and even time.Sleep must not serialize the FS.
func (f *FS) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	s := f.sleeper
	f.mu.Unlock()
	if s == nil {
		s = time.Sleep
	}
	s(d)
}

// check consults the rules for one (op, path) call.
func (f *FS) check(op Op, p string) error {
	delay, _, err := f.consult(op, p)
	f.sleep(delay)
	return err
}

// checkWrite is check for write ops, also returning the matched rule's
// KeepPrefix (bytes to persist before failing).
func (f *FS) checkWrite(p string) (int64, error) {
	delay, keep, err := f.consult(OpWrite, p)
	f.sleep(delay)
	return keep, err
}

// SetSleeper installs how injected Rule.Delay latency is spent (default
// time.Sleep). Simulation-hosted tests pass their virtual-clock sleep so
// slowness is deterministic and free of real waiting.
func (f *FS) SetSleeper(s func(time.Duration)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sleeper = s
}

// Delayed returns how many delay-only stalls have been injected so far.
func (f *FS) Delayed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delayed
}

// snapshotInner reads a file's current bytes from the inner FS (used to
// establish the durable baseline of pre-existing files).
func (f *FS) snapshotInner(p string) []byte {
	h, err := f.inner.Open(p)
	if err != nil {
		return nil
	}
	defer h.Close()
	data, err := vfs.ReadAll(h)
	if err != nil {
		return nil
	}
	return data
}

var _ vfs.FS = (*FS)(nil)

// Create implements vfs.FS. Creation is a durability boundary: the file
// durably exists (empty) from this point on.
func (f *FS) Create(name string) (vfs.File, error) {
	name = cleanPath(name)
	if err := f.check(OpCreate, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.durable[name] = []byte{}
	f.noteLocked(journalOp{op: OpCreate, path: name}, true)
	gen := f.gen
	f.mu.Unlock()
	return &file{fs: f, inner: inner, path: name, gen: gen}, nil
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	name = cleanPath(name)
	if err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	tracked := false
	if _, ok := f.durable[name]; ok {
		tracked = true
	}
	gen := f.gen
	f.mu.Unlock()
	if !tracked {
		// Pre-existing file: what is on disk now is durable.
		data := f.snapshotInner(name)
		f.mu.Lock()
		if _, ok := f.durable[name]; !ok {
			f.durable[name] = data
		}
		f.mu.Unlock()
	}
	return &file{fs: f, inner: inner, path: name, gen: gen}, nil
}

// Remove implements vfs.FS. Removal is a durability boundary.
func (f *FS) Remove(name string) error {
	name = cleanPath(name)
	if err := f.check(OpRemove, name); err != nil {
		return err
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.durable, name)
	f.noteLocked(journalOp{op: OpRemove, path: name}, true)
	f.mu.Unlock()
	return nil
}

// Rename implements vfs.FS. Rename is atomic and a durability boundary; the
// file's durable bytes move with its name.
func (f *FS) Rename(oldName, newName string) error {
	oldName, newName = cleanPath(oldName), cleanPath(newName)
	if err := f.check(OpRename, oldName); err != nil {
		return err
	}
	f.mu.Lock()
	_, tracked := f.durable[oldName]
	f.mu.Unlock()
	var base []byte
	if !tracked {
		base = f.snapshotInner(oldName)
	}
	if err := f.inner.Rename(oldName, newName); err != nil {
		return err
	}
	f.mu.Lock()
	if d, ok := f.durable[oldName]; ok {
		base = d
	}
	delete(f.durable, oldName)
	f.durable[newName] = base
	f.noteLocked(journalOp{op: OpRename, path: oldName, to: newName}, true)
	f.mu.Unlock()
	return nil
}

// MkdirAll implements vfs.FS. Directory creation is durable immediately but
// is not enumerated as a crash point (it carries no data).
func (f *FS) MkdirAll(dir string) error {
	dir = cleanPath(dir)
	if err := f.check(OpMkdirAll, dir); err != nil {
		return err
	}
	if err := f.inner.MkdirAll(dir); err != nil {
		return err
	}
	f.mu.Lock()
	f.dirs[dir] = true
	f.noteLocked(journalOp{op: OpMkdirAll, path: dir}, false)
	f.mu.Unlock()
	return nil
}

// List implements vfs.FS.
func (f *FS) List(dir string) ([]string, error) {
	dir = cleanPath(dir)
	if err := f.check(OpList, dir); err != nil {
		return nil, err
	}
	return f.inner.List(dir)
}

// Stat implements vfs.FS.
func (f *FS) Stat(name string) (int64, error) {
	name = cleanPath(name)
	if err := f.check(OpStat, name); err != nil {
		return 0, err
	}
	return f.inner.Stat(name)
}

// Exists implements vfs.FS. Like the PFS client's Exists it is a pure
// probe: no faults are injected.
func (f *FS) Exists(name string) bool {
	return f.inner.Exists(cleanPath(name))
}

// Barrier implements the optional barrier hook (core.barrierFS) when the
// inner filesystem has one, and on success marks every tracked file's
// current content durable — a storage-level write barrier makes all
// previously issued writes stable.
func (f *FS) Barrier() error {
	if err := f.check(OpBarrier, ""); err != nil {
		return err
	}
	if b, ok := f.inner.(interface{ Barrier() error }); ok {
		if err := b.Barrier(); err != nil {
			return err
		}
	}
	f.mu.Lock()
	paths := make([]string, 0, len(f.durable))
	for p := range f.durable {
		paths = append(paths, p)
	}
	f.mu.Unlock()
	for _, p := range paths {
		data := f.snapshotInner(p)
		f.mu.Lock()
		if _, ok := f.durable[p]; ok {
			f.durable[p] = data
		}
		f.mu.Unlock()
	}
	f.mu.Lock()
	f.noteLocked(journalOp{op: OpBarrier}, true)
	f.mu.Unlock()
	return nil
}

// Crash simulates losing the node: every byte not covered by a completed
// Sync/Barrier is discarded from the inner filesystem, and every handle
// opened through the wrapper is dead (operations return ErrCrashed). The
// wrapper itself remains usable — reopening files afterwards models the
// post-reboot recovery session.
func (f *FS) Crash() error {
	f.mu.Lock()
	f.gen++
	restore := make(map[string][]byte, len(f.durable))
	for p, d := range f.durable {
		restore[p] = d
	}
	f.mu.Unlock()
	for p, data := range restore {
		h, err := f.inner.Create(p)
		if err != nil {
			return fmt.Errorf("faultfs: crash restore %s: %w", p, err)
		}
		if len(data) > 0 {
			if _, err := h.Write(data); err != nil {
				h.Close()
				return fmt.Errorf("faultfs: crash restore %s: %w", p, err)
			}
		}
		if err := h.Close(); err != nil {
			return fmt.Errorf("faultfs: crash restore %s: %w", p, err)
		}
	}
	return nil
}

// file wraps one open handle.
type file struct {
	fs    *FS
	inner vfs.File
	path  string
	gen   int
}

func (fl *file) Name() string { return fl.path }

// alive fails with ErrCrashed when the handle predates a Crash.
func (fl *file) alive() error {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if fl.gen != fl.fs.gen {
		return fmt.Errorf("%s: %w", fl.path, ErrCrashed)
	}
	return nil
}

func (fl *file) Read(p []byte) (int, error) {
	if err := fl.alive(); err != nil {
		return 0, err
	}
	if err := fl.fs.check(OpRead, fl.path); err != nil {
		return 0, err
	}
	return fl.inner.Read(p)
}

func (fl *file) ReadAt(p []byte, off int64) (int, error) {
	if err := fl.alive(); err != nil {
		return 0, err
	}
	if err := fl.fs.check(OpRead, fl.path); err != nil {
		return 0, err
	}
	return fl.inner.ReadAt(p, off)
}

func (fl *file) Write(p []byte) (int, error) {
	if err := fl.alive(); err != nil {
		return 0, err
	}
	off, err := fl.inner.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	return fl.write(p, off, func(q []byte) (int, error) { return fl.inner.Write(q) })
}

func (fl *file) WriteAt(p []byte, off int64) (int, error) {
	if err := fl.alive(); err != nil {
		return 0, err
	}
	return fl.write(p, off, func(q []byte) (int, error) { return fl.inner.WriteAt(q, off) })
}

// write applies injection (including torn writes) around one inner write.
func (fl *file) write(p []byte, off int64, inner func([]byte) (int, error)) (int, error) {
	keep, ferr := fl.fs.checkWrite(fl.path)
	if ferr != nil {
		if keep > int64(len(p)) {
			keep = int64(len(p))
		}
		n := 0
		if keep > 0 {
			n, _ = inner(p[:keep])
			fl.fs.noteWrite(fl.path, off, p[:n])
		}
		return n, ferr
	}
	n, err := inner(p)
	if n > 0 {
		fl.fs.noteWrite(fl.path, off, p[:n])
	}
	return n, err
}

func (f *FS) noteWrite(p string, off int64, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.recording {
		return
	}
	f.noteLocked(journalOp{op: OpWrite, path: p, off: off,
		data: append([]byte(nil), data...)}, false)
}

func (fl *file) Seek(offset int64, whence int) (int64, error) {
	if err := fl.alive(); err != nil {
		return 0, err
	}
	return fl.inner.Seek(offset, whence)
}

func (fl *file) Size() (int64, error) {
	if err := fl.alive(); err != nil {
		return 0, err
	}
	return fl.inner.Size()
}

// Sync implements vfs.File: on success the file's current content becomes
// its durable image — the only way (besides Barrier) file data survives a
// Crash.
func (fl *file) Sync() error {
	if err := fl.alive(); err != nil {
		return err
	}
	if err := fl.fs.check(OpSync, fl.path); err != nil {
		return err
	}
	if err := fl.inner.Sync(); err != nil {
		return err
	}
	data, err := vfs.ReadAll(fl.inner)
	if err != nil {
		return fmt.Errorf("faultfs: sync snapshot %s: %w", fl.path, err)
	}
	fl.fs.mu.Lock()
	fl.fs.durable[fl.path] = data
	fl.fs.noteLocked(journalOp{op: OpSync, path: fl.path}, true)
	fl.fs.mu.Unlock()
	return nil
}

func (fl *file) Truncate(size int64) error {
	if err := fl.alive(); err != nil {
		return err
	}
	if err := fl.fs.check(OpTruncate, fl.path); err != nil {
		return err
	}
	if err := fl.inner.Truncate(size); err != nil {
		return err
	}
	fl.fs.mu.Lock()
	if f := fl.fs; f.recording {
		f.noteLocked(journalOp{op: OpTruncate, path: fl.path, size: size}, false)
	}
	fl.fs.mu.Unlock()
	return nil
}

func (fl *file) Close() error {
	if err := fl.alive(); err != nil {
		return err
	}
	if err := fl.fs.check(OpClose, fl.path); err != nil {
		return err
	}
	return fl.inner.Close()
}
