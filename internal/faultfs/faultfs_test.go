package faultfs

import (
	"errors"
	"testing"

	"lsmio/internal/vfs"
)

func writeFile(t *testing.T, fs vfs.FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", name, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func readFile(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	data, err := vfs.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func TestRuleNthAndTimes(t *testing.T) {
	fs := New(vfs.NewMemFS())
	fs.AddRule(&Rule{Op: OpWrite, Path: "a/*.log", Nth: 2, Times: 2})

	f, err := fs.Create("a/x.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("1st write should pass: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd write: want ErrInjected, got %v", err)
	}
	if _, err := f.Write([]byte("three")); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd write: want ErrInjected, got %v", err)
	}
	if _, err := f.Write([]byte("four")); err != nil {
		t.Fatalf("4th write should pass: %v", err)
	}
	if got := fs.Injected(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}

	// Non-matching path is untouched.
	g, err := fs.Create("b/other.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("ok")); err != nil {
		t.Fatalf("non-matching write: %v", err)
	}
}

func TestTransientClassification(t *testing.T) {
	fs := New(vfs.NewMemFS())
	fs.AddRule(&Rule{Op: OpSync, Transient: true, Times: 1})
	f, _ := fs.Create("f")
	err := f.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatalf("want transient, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync should pass: %v", err)
	}
	// Permanent errors are not transient.
	fs.AddRule(&Rule{Op: OpSync, Times: 1})
	if err := f.Sync(); IsTransient(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want permanent injected error, got %v", err)
	}
}

func TestTornWrite(t *testing.T) {
	fs := New(vfs.NewMemFS())
	fs.AddRule(&Rule{Op: OpWrite, Path: "torn", KeepPrefix: 4, Times: 1})
	f, _ := fs.Create("torn")
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4 (torn prefix)", n)
	}
	f.Close()
	if got := readFile(t, fs, "torn"); string(got) != "abcd" {
		t.Fatalf("persisted %q, want %q", got, "abcd")
	}
}

func TestCrashDiscardsUnsynced(t *testing.T) {
	fs := New(vfs.NewMemFS())
	writeFile(t, fs, "synced", []byte("durable"), true)
	writeFile(t, fs, "unsynced", []byte("volatile"), false)

	// Partially synced: sync, then write more without sync.
	f, _ := fs.Create("partial")
	f.Write([]byte("keep-"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("lose"))

	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}

	// Old handle is dead.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: want ErrCrashed, got %v", err)
	}

	if got := readFile(t, fs, "synced"); string(got) != "durable" {
		t.Fatalf("synced = %q", got)
	}
	if got := readFile(t, fs, "unsynced"); len(got) != 0 {
		t.Fatalf("unsynced survived crash: %q", got)
	}
	if got := readFile(t, fs, "partial"); string(got) != "keep-" {
		t.Fatalf("partial = %q, want %q", got, "keep-")
	}
}

func TestRenameMovesDurableImage(t *testing.T) {
	fs := New(vfs.NewMemFS())
	writeFile(t, fs, "tmp", []byte("payload"), true)
	if err := fs.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("tmp") {
		t.Fatal("tmp survived rename+crash")
	}
	if got := readFile(t, fs, "final"); string(got) != "payload" {
		t.Fatalf("final = %q", got)
	}
}

func TestBarrierMakesAllDurable(t *testing.T) {
	fs := New(vfs.NewMemFS())
	writeFile(t, fs, "a", []byte("aa"), false)
	writeFile(t, fs, "b", []byte("bb"), false)
	if err := fs.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "a"); string(got) != "aa" {
		t.Fatalf("a = %q", got)
	}
	if got := readFile(t, fs, "b"); string(got) != "bb" {
		t.Fatalf("b = %q", got)
	}
}

func TestPreexistingFilesAreDurable(t *testing.T) {
	inner := vfs.NewMemFS()
	h, _ := inner.Create("seed")
	h.Write([]byte("old"))
	h.Close()

	fs := New(inner)
	f, err := fs.Open("seed")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "seed"); string(got) != "old" {
		t.Fatalf("seed = %q, want %q", got, "old")
	}
}

func TestCrashPointEnumeration(t *testing.T) {
	fs := New(vfs.NewMemFS())
	if err := fs.StartRecording(); err != nil {
		t.Fatal(err)
	}

	// Boundary 1: create a. Boundary 2: sync a ("v1").
	// Boundary 3: create a.tmp. Boundary 4: sync a.tmp ("v2").
	// Boundary 5: rename a.tmp -> a.
	a, _ := fs.Create("a")
	a.Write([]byte("v1"))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	tmp, _ := fs.Create("a.tmp")
	tmp.Write([]byte("v2"))
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	if err := fs.Rename("a.tmp", "a"); err != nil {
		t.Fatal(err)
	}
	fs.StopRecording()

	pts := fs.CrashPoints()
	if len(pts) != 5 {
		t.Fatalf("crash points = %d, want 5: %+v", len(pts), pts)
	}
	wantOps := []Op{OpCreate, OpSync, OpCreate, OpSync, OpRename}
	for i, p := range pts {
		if p.Op != wantOps[i] {
			t.Fatalf("point %d op = %v, want %v", i, p.Op, wantOps[i])
		}
	}

	read := func(m *vfs.MemFS, name string) (string, bool) {
		if !m.Exists(name) {
			return "", false
		}
		f, err := m.Open(name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		defer f.Close()
		d, err := vfs.ReadAll(f)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(d), true
	}

	type want struct {
		a, tmp string
		hasA   bool
		hasTmp bool
	}
	wants := []want{
		0: {},                                             // before anything
		1: {hasA: true, a: ""},                            // a created, empty durable
		2: {hasA: true, a: "v1"},                          // a synced
		3: {hasA: true, a: "v1", hasTmp: true},            // tmp created
		4: {hasA: true, a: "v1", hasTmp: true, tmp: "v2"}, // tmp synced
		5: {hasA: true, a: "v2"},                          // rename installed
	}
	for b, w := range wants {
		st, err := fs.StateAfter(b)
		if err != nil {
			t.Fatalf("StateAfter(%d): %v", b, err)
		}
		gotA, hasA := read(st, "a")
		gotTmp, hasTmp := read(st, "a.tmp")
		if hasA != w.hasA || hasTmp != w.hasTmp || gotA != w.a || gotTmp != w.tmp {
			t.Fatalf("boundary %d: a=(%q,%v) tmp=(%q,%v), want a=(%q,%v) tmp=(%q,%v)",
				b, gotA, hasA, gotTmp, hasTmp, w.a, w.hasA, w.tmp, w.hasTmp)
		}
	}
}

func TestRecordingBaseIncludesPriorState(t *testing.T) {
	inner := vfs.NewMemFS()
	inner.MkdirAll("d")
	h, _ := inner.Create("d/old")
	h.Write([]byte("base"))
	h.Close()

	fs := New(inner)
	if err := fs.StartRecording(); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "new", []byte("fresh"), true)
	fs.StopRecording()

	st, err := fs.StateAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.Open("d/old")
	if err != nil {
		t.Fatalf("base file missing from state: %v", err)
	}
	d, _ := vfs.ReadAll(f)
	f.Close()
	if string(d) != "base" {
		t.Fatalf("base content = %q", d)
	}
	if st.Exists("new") {
		t.Fatal("boundary-0 state should not contain post-recording file")
	}
}

func TestCustomRuleError(t *testing.T) {
	sentinel := errors.New("boom")
	fs := New(vfs.NewMemFS())
	fs.AddRule(&Rule{Op: OpCreate, Err: sentinel, Times: 1})
	_, err := fs.Create("x")
	if !errors.Is(err, sentinel) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want wrapped sentinel + ErrInjected, got %v", err)
	}
}
