package faultfs

import (
	"fmt"
	"sort"

	"lsmio/internal/vfs"
)

// Crash-point enumeration (crashmonkey-style). With recording enabled the
// wrapper journals every mutating operation together with the durability
// boundary it belongs to. StateAfter(b) then reconstructs, in a fresh
// MemFS, the exact durable image a crash immediately after boundary b
// would leave behind: all journaled operations up to and including the
// b-th boundary op are applied to a (current, durable) pair of file maps,
// and only the durable side is materialized.
//
// A "durability boundary" is an operation after which strictly more state
// is guaranteed on stable storage: Create, Remove, Rename (namespace ops,
// atomic + durable on a journaled FS), Sync (one file's data), and Barrier
// (all files' data). Plain writes and truncates are not boundaries — they
// only change the volatile image.

// journalOp is one recorded mutating operation.
type journalOp struct {
	op       Op
	path     string // primary path (old name for rename)
	to       string // rename target
	off      int64  // write offset
	data     []byte // write payload (post-injection, i.e. bytes that hit the inner FS)
	size     int64  // truncate size
	boundary int    // boundary counter *after* this op
}

// CrashPoint describes one enumerated durability boundary.
type CrashPoint struct {
	// Boundary is the 1-based boundary index (pass to StateAfter).
	Boundary int
	// Op is the operation that formed the boundary.
	Op Op
	// Path is the operation's primary path ("" for Barrier).
	Path string
}

// noteLocked records op into the journal (when recording) and advances the
// boundary counter when the op is a durability boundary. Callers hold f.mu.
func (f *FS) noteLocked(op journalOp, isBoundary bool) {
	if isBoundary {
		f.boundaries++
	}
	if !f.recording {
		return
	}
	op.boundary = f.boundaries
	f.journal = append(f.journal, op)
}

// StartRecording snapshots the wrapper's current durable state as the
// replay base, resets the boundary counter to zero, and begins journaling
// every subsequent mutating operation. Recording continues until
// StopRecording.
func (f *FS) StartRecording() error {
	base := make(map[string][]byte)
	var dirs []string
	if err := f.walkInner(".", base, &dirs); err != nil {
		return err
	}
	f.mu.Lock()
	// Durable images override raw inner content: bytes present in the
	// inner FS but never synced must not survive a simulated crash.
	for p, d := range f.durable {
		base[p] = append([]byte(nil), d...)
	}
	f.base = base
	f.baseDirs = dirs
	f.boundaries = 0
	f.journal = nil
	f.recording = true
	f.mu.Unlock()
	return nil
}

// StopRecording stops journaling. The journal is kept for enumeration.
func (f *FS) StopRecording() {
	f.mu.Lock()
	f.recording = false
	f.mu.Unlock()
}

// walkInner recursively snapshots the inner filesystem under dir into
// files (path → content) and dirs.
func (f *FS) walkInner(dir string, files map[string][]byte, dirs *[]string) error {
	names, err := f.inner.List(dir)
	if err != nil {
		// A missing root simply means an empty base.
		if dir == "." {
			return nil
		}
		return fmt.Errorf("faultfs: snapshot %s: %w", dir, err)
	}
	if dir != "." {
		*dirs = append(*dirs, dir)
	}
	for _, name := range names {
		p := name
		if dir != "." {
			p = dir + "/" + name
		}
		if _, err := f.inner.Stat(p); err == nil {
			files[p] = f.snapshotInner(p)
			continue
		}
		if err := f.walkInner(p, files, dirs); err != nil {
			return err
		}
	}
	return nil
}

// CrashPoints lists every durability boundary recorded since
// StartRecording, in order.
func (f *FS) CrashPoints() []CrashPoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	var pts []CrashPoint
	last := 0
	for _, op := range f.journal {
		if op.boundary > last {
			last = op.boundary
			pts = append(pts, CrashPoint{Boundary: op.boundary, Op: op.op, Path: op.path})
		}
	}
	return pts
}

// StateAfter materializes the durable filesystem image as of a crash
// immediately after boundary b (b = 0: before any recorded boundary) into
// a fresh MemFS. The recorded workload is not disturbed; StateAfter may be
// called repeatedly with different b.
func (f *FS) StateAfter(b int) (*vfs.MemFS, error) {
	f.mu.Lock()
	if f.base == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("faultfs: StateAfter without StartRecording")
	}
	cur := make(map[string][]byte, len(f.base))
	dur := make(map[string][]byte, len(f.base))
	for p, d := range f.base {
		cur[p] = append([]byte(nil), d...)
		dur[p] = append([]byte(nil), d...)
	}
	dirs := map[string]bool{}
	for _, d := range f.baseDirs {
		dirs[d] = true
	}
	journal := f.journal
	f.mu.Unlock()

	for _, op := range journal {
		if op.boundary > b && isBoundaryOp(op.op) {
			break
		}
		applyOp(cur, dur, dirs, op)
	}

	// Materialize the durable side.
	out := vfs.NewMemFS()
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	for _, d := range sorted {
		if err := out.MkdirAll(d); err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(dur))
	for p := range dur {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		h, err := out.Create(p)
		if err != nil {
			return nil, fmt.Errorf("faultfs: materialize %s: %w", p, err)
		}
		if len(dur[p]) > 0 {
			if _, err := h.Write(dur[p]); err != nil {
				h.Close()
				return nil, err
			}
		}
		if err := h.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func isBoundaryOp(op Op) bool {
	switch op {
	case OpCreate, OpRemove, OpRename, OpSync, OpBarrier:
		return true
	}
	return false
}

// applyOp replays one journal op onto the (current, durable) maps.
func applyOp(cur, dur map[string][]byte, dirs map[string]bool, op journalOp) {
	switch op.op {
	case OpCreate:
		cur[op.path] = []byte{}
		dur[op.path] = []byte{}
	case OpRemove:
		delete(cur, op.path)
		delete(dur, op.path)
	case OpRename:
		if d, ok := cur[op.path]; ok {
			cur[op.to] = d
		}
		if d, ok := dur[op.path]; ok {
			dur[op.to] = d
		}
		delete(cur, op.path)
		delete(dur, op.path)
	case OpMkdirAll:
		dirs[op.path] = true
	case OpWrite:
		buf := cur[op.path]
		end := op.off + int64(len(op.data))
		if int64(len(buf)) < end {
			nb := make([]byte, end)
			copy(nb, buf)
			buf = nb
		}
		copy(buf[op.off:], op.data)
		cur[op.path] = buf
	case OpTruncate:
		buf := cur[op.path]
		if int64(len(buf)) > op.size {
			buf = buf[:op.size]
		} else if int64(len(buf)) < op.size {
			nb := make([]byte, op.size)
			copy(nb, buf)
			buf = nb
		}
		cur[op.path] = buf
	case OpSync:
		if d, ok := cur[op.path]; ok {
			dur[op.path] = append([]byte(nil), d...)
		}
	case OpBarrier:
		for p, d := range cur {
			dur[p] = append([]byte(nil), d...)
		}
	}
}
