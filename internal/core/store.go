// Package core implements LSMIO, the paper's contribution: an I/O library
// that routes HPC checkpoint data through an LSM-tree so that writes reach
// the parallel file system as large sequential appends.
//
// The layering follows Figure 3 of the paper:
//
//	K/V API / FStream API / ADIOS2 plugin     (manager.go, fstream.go, plugin
//	        LSMIO Manager + MPI               adapter in package adios2lsmio)
//	            Local Store                    (this file; Table 1)
//	       LSM-tree (RocksDB role)             (internal/lsm)
//
// Two local-store backends mirror the paper's RocksDB and LevelDB
// discussion (§3.1.2): the rocks-style backend disables the write-ahead
// log outright; the level-style backend cannot (LevelDB has no such
// option), so it buffers writes in a WriteBatch and applies them on
// barriers, trading atomicity bookkeeping for fewer WAL hits.
package core

import (
	"errors"
	"fmt"
	"strings"

	"lsmio/internal/iosched"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/vfs"
)

// Backend selects the local-store implementation.
type Backend string

// Available backends.
const (
	// BackendRocks is the paper's choice: the engine runs with the WAL
	// disabled (durability comes from the explicit write barrier).
	BackendRocks Backend = "rocks"
	// BackendLevel emulates the LevelDB constraint: the WAL stays on and
	// writes are aggregated in a WriteBatch between barriers.
	BackendLevel Backend = "level"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("lsmio: key not found")

// ErrClosed reports an operation on a store whose connection or handle
// has been released with Close.
var ErrClosed = errors.New("lsmio: store closed")

// Store is the paper's Table 1 interface: the internal K/V surface over
// the LSM-tree that the Manager builds on.
type Store interface {
	// StartBatch begins write aggregation if the backend needs it.
	StartBatch() error
	// StopBatch ends aggregation and applies buffered writes.
	StopBatch() error
	// Get returns the value for key, always synchronously.
	Get(key string) ([]byte, error)
	// Put writes key; with sync it blocks until durable.
	Put(key string, value []byte, sync bool) error
	// Append extends key's existing value (creating it if absent).
	Append(key string, value []byte, sync bool) error
	// Del removes key.
	Del(key string) error
	// WriteBarrier flushes all buffered writes to disk and, when sync,
	// blocks until they are on stable storage.
	WriteBarrier(sync bool) error
	// Scan visits every live key with the given prefix in key order,
	// reading the tree sequentially — the batch-read path the paper's
	// §5.1 proposes to fix the synchronous point-lookup read penalty.
	// Returning false from fn stops the scan early.
	Scan(prefix string, fn func(key string, value []byte) bool) error
	// Close releases the store. Buffered writes are flushed first.
	Close() error
	// EngineStats exposes the underlying LSM engine counters.
	EngineStats() lsm.Stats
}

// StoreOptions configures a local store.
type StoreOptions struct {
	// Backend selects rocks- or level-style behaviour (default rocks).
	Backend Backend
	// FS is the filesystem holding the store directory.
	FS vfs.FS
	// Platform supplies scheduling/locking (GoPlatform outside the
	// simulator, SimPlatform inside).
	Platform lsm.Platform
	// WriteBufferSize is the memtable size (the paper matches ADIOS2's
	// 32 MB BufferChunkSize).
	WriteBufferSize int
	// BlockSize is the SSTable block size.
	BlockSize int
	// Async lets writes return before data reaches disk; the write
	// barrier establishes durability (the paper's asynchronous option).
	Async bool
	// UseMMap coalesces table writes into mmap-style large segments.
	UseMMap bool
	// EnableWAL, EnableCompression, EnableCache and EnableCompaction
	// re-enable engine features the paper turns off; all default false,
	// matching the paper's checkpoint configuration.
	EnableWAL         bool
	EnableCompression bool
	EnableCache       bool
	EnableCompaction  bool
	// Codec selects the block codec when compression is enabled
	// (default snappy).
	Codec lsm.CompressionCodec
	// Obs is the metrics/trace registry handed to the LSM engine (its
	// instruments live under the `lsm.` prefix there). Nil lets the
	// engine create a private registry.
	Obs *obs.Registry
	// IOSched is the shared bandwidth scheduler handed to the LSM
	// engine: WAL appends draw Foreground tokens and table builds draw
	// Flush/Compaction tokens from it. One instance is shared across
	// every store (and the burst tier and PFS scrubber) in a
	// deployment. Nil disables scheduling.
	IOSched *iosched.Scheduler
}

func (o StoreOptions) engineOptions() lsm.Options {
	eo := lsm.CheckpointOptions(o.FS)
	if o.Platform != nil {
		eo.Platform = o.Platform
	}
	if o.WriteBufferSize > 0 {
		eo.WriteBufferSize = o.WriteBufferSize
	}
	if o.BlockSize > 0 {
		eo.BlockSize = o.BlockSize
	}
	eo.AsyncFlush = o.Async
	eo.UseMMap = o.UseMMap
	eo.DisableWAL = !o.EnableWAL
	eo.DisableCompression = !o.EnableCompression
	eo.DisableCache = !o.EnableCache
	eo.DisableCompaction = !o.EnableCompaction
	if o.Codec != "" {
		eo.Compression = o.Codec
	}
	eo.Obs = o.Obs
	eo.IOSched = o.IOSched
	return eo
}

// OpenStore opens a local store in dir.
func OpenStore(dir string, opts StoreOptions) (Store, error) {
	if opts.FS == nil {
		return nil, fmt.Errorf("lsmio: StoreOptions.FS is required")
	}
	switch opts.Backend {
	case "", BackendRocks:
		eo := opts.engineOptions()
		db, err := lsm.Open(dir, eo)
		if err != nil {
			return nil, err
		}
		return &rocksStore{db: db, fs: opts.FS}, nil
	case BackendLevel:
		eo := opts.engineOptions()
		eo.DisableWAL = false // LevelDB cannot turn the WAL off
		db, err := lsm.Open(dir, eo)
		if err != nil {
			return nil, err
		}
		return &levelStore{
			db:        db,
			fs:        opts.FS,
			batch:     lsm.NewBatch(),
			batchMax:  eo.WriteBufferSize,
			snapshots: make(map[string][]byte),
		}, nil
	default:
		return nil, fmt.Errorf("lsmio: unknown backend %q", opts.Backend)
	}
}

// barrierFS is the optional hook a filesystem (the simulated PFS) exposes
// to let the write barrier wait for asynchronously completing device I/O.
type barrierFS interface {
	Barrier() error
}

func fsBarrier(fs vfs.FS) error {
	if b, ok := fs.(barrierFS); ok {
		return b.Barrier()
	}
	return nil
}

// rocksStore is the paper's configuration: no WAL, direct engine writes.
type rocksStore struct {
	db *lsm.DB
	fs vfs.FS
}

func (s *rocksStore) StartBatch() error { return nil } // engine buffers in the memtable
func (s *rocksStore) StopBatch() error  { return nil }

func (s *rocksStore) Get(key string) ([]byte, error) {
	v, err := s.db.Get([]byte(key))
	if errors.Is(err, lsm.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (s *rocksStore) Put(key string, value []byte, sync bool) error {
	if err := s.db.Put([]byte(key), value); err != nil {
		return err
	}
	if sync {
		return s.WriteBarrier(true)
	}
	return nil
}

func (s *rocksStore) Append(key string, value []byte, sync bool) error {
	old, err := s.Get(key)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	combined := make([]byte, 0, len(old)+len(value))
	combined = append(combined, old...)
	combined = append(combined, value...)
	return s.Put(key, combined, sync)
}

func (s *rocksStore) Del(key string) error { return s.db.Delete([]byte(key)) }

func (s *rocksStore) Scan(prefix string, fn func(key string, value []byte) bool) error {
	return scanDB(s.db, prefix, fn)
}

// scanDB streams keys with a prefix from a range-bounded engine iterator,
// so only tables overlapping the prefix are opened.
func scanDB(db *lsm.DB, prefix string, fn func(key string, value []byte) bool) error {
	var lower, upper []byte
	if prefix != "" {
		lower = []byte(prefix)
		upper = prefixSuccessor([]byte(prefix))
	}
	it, err := db.NewRangeIterator(lower, upper)
	if err != nil {
		return err
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		key := string(it.Key())
		if !strings.HasPrefix(key, prefix) {
			break
		}
		if !fn(key, append([]byte(nil), it.Value()...)) {
			break
		}
	}
	// A corrupt block mid-scan silently terminates iteration; Close is
	// where the engine reports it. Swallowing that error would make a
	// truncated scan look like a complete one.
	return it.Close()
}

// prefixSuccessor returns the smallest key greater than every key with
// the given prefix, or nil when no such key exists (all-0xff prefix).
func prefixSuccessor(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

func (s *rocksStore) WriteBarrier(sync bool) error {
	if err := s.db.Flush(); err != nil {
		return err
	}
	if sync {
		return fsBarrier(s.fs)
	}
	return nil
}

func (s *rocksStore) Close() error {
	if err := s.WriteBarrier(true); err != nil {
		return err
	}
	return s.db.Close()
}

func (s *rocksStore) EngineStats() lsm.Stats { return s.db.Stats() }

// levelStore emulates LevelDB: the WAL cannot be disabled, so writes are
// aggregated in a WriteBatch (which the WAL then sees as one record per
// barrier instead of one per put).
type levelStore struct {
	db       *lsm.DB
	fs       vfs.FS
	batching bool
	batch    *lsm.Batch
	batchMax int
	// snapshots lets Get/Append observe writes still sitting in the
	// unapplied batch (read-your-writes inside a batch window).
	snapshots map[string][]byte
	deleted   map[string]bool
}

func (s *levelStore) StartBatch() error {
	s.batching = true
	return nil
}

func (s *levelStore) StopBatch() error {
	s.batching = false
	return s.applyBatch()
}

func (s *levelStore) applyBatch() error {
	if s.batch.Count() == 0 {
		return nil
	}
	err := s.db.Apply(s.batch)
	s.batch = lsm.NewBatch()
	s.snapshots = make(map[string][]byte)
	s.deleted = nil
	return err
}

func (s *levelStore) Get(key string) ([]byte, error) {
	if s.deleted != nil && s.deleted[key] {
		return nil, ErrNotFound
	}
	if v, ok := s.snapshots[key]; ok {
		return append([]byte(nil), v...), nil
	}
	v, err := s.db.Get([]byte(key))
	if errors.Is(err, lsm.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (s *levelStore) Put(key string, value []byte, sync bool) error {
	s.batch.Put([]byte(key), value)
	s.snapshots[key] = append([]byte(nil), value...)
	if s.deleted != nil {
		delete(s.deleted, key)
	}
	if !s.batching || s.batch.Size() >= s.batchMax {
		if err := s.applyBatch(); err != nil {
			return err
		}
	}
	if sync {
		return s.WriteBarrier(true)
	}
	return nil
}

func (s *levelStore) Append(key string, value []byte, sync bool) error {
	old, err := s.Get(key)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	combined := make([]byte, 0, len(old)+len(value))
	combined = append(combined, old...)
	combined = append(combined, value...)
	return s.Put(key, combined, sync)
}

func (s *levelStore) Del(key string) error {
	s.batch.Delete([]byte(key))
	delete(s.snapshots, key)
	if s.deleted == nil {
		s.deleted = make(map[string]bool)
	}
	s.deleted[key] = true
	if !s.batching {
		return s.applyBatch()
	}
	return nil
}

func (s *levelStore) Scan(prefix string, fn func(key string, value []byte) bool) error {
	// Apply the pending batch first so the scan sees this store's own
	// buffered writes.
	if err := s.applyBatch(); err != nil {
		return err
	}
	return scanDB(s.db, prefix, fn)
}

func (s *levelStore) WriteBarrier(sync bool) error {
	if err := s.applyBatch(); err != nil {
		return err
	}
	if err := s.db.Flush(); err != nil {
		return err
	}
	if sync {
		return fsBarrier(s.fs)
	}
	return nil
}

func (s *levelStore) Close() error {
	if err := s.WriteBarrier(true); err != nil {
		return err
	}
	return s.db.Close()
}

func (s *levelStore) EngineStats() lsm.Stats { return s.db.Stats() }
