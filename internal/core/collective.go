package core

import (
	"errors"
	"fmt"
	"time"

	"lsmio/internal/lsm"
	"lsmio/internal/netsim"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// Collective I/O, the paper's §3.1.3/§5.1 extension: "a single LSM-Tree
// store could be created for all or a group of nodes participating in
// checkpointing". One rank per group (the leader) hosts the store; member
// ranks forward K/V operations over the interconnect. The leader runs a
// service process that applies operations in arrival order; synchronous
// operations (get, barrier) wait for a reply, asynchronous puts are fire
// and forget, mirroring the local async write path.

type kvOp int

const (
	opPut kvOp = iota
	opAppend
	opDel
	opGet
	opScan
	opBarrier
	opShutdown
)

type kvRequest struct {
	op    kvOp
	key   string
	value []byte
	reply *sim.Queue // nil for fire-and-forget
}

type kvPair struct {
	key   string
	value []byte
}

// kvReply is the wire reply. Error values cannot travel over a real
// interconnect, so the reply carries the resil error-class taxonomy
// instead: notFound flags the common miss sentinel (reconstructed as
// ErrNotFound client-side) and errClass/errMsg carry everything else,
// reconstructed as a resil.ClassError so resil.Classify on the member
// rank returns the same class the leader computed.
type kvReply struct {
	value    []byte
	pairs    []kvPair
	notFound bool
	errClass resil.Class
	errMsg   string
}

// encodeErr maps an error onto kvReply's wire fields.
func (rep *kvReply) encodeErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrNotFound) {
		rep.notFound = true
		return
	}
	rep.errClass = resil.Classify(err)
	rep.errMsg = err.Error()
}

// decodeErr reconstructs the typed error a kvReply carries, nil when
// the operation succeeded.
func (rep *kvReply) decodeErr() error {
	if rep.notFound {
		return ErrNotFound
	}
	if rep.errMsg == "" && rep.errClass == resil.ClassOK {
		return nil
	}
	return &resil.ClassError{C: rep.errClass, Msg: rep.errMsg}
}

// KVService hosts a group's shared store on the leader node.
type KVService struct {
	k       *sim.Kernel
	fabric  *netsim.Fabric
	node    int
	store   Store
	queue   *sim.Queue
	stopped bool
	served  int64
	conns   int
}

// NewKVService starts the leader-side service process over store. The
// caller owns the store's lifetime but must Stop the service before
// closing it (and before the simulation ends).
func NewKVService(k *sim.Kernel, fabric *netsim.Fabric, leaderNode int, store Store) *KVService {
	s := &KVService{
		k:      k,
		fabric: fabric,
		node:   leaderNode,
		store:  store,
		queue:  sim.NewQueue(k, fmt.Sprintf("kvsvc@%d", leaderNode)),
	}
	k.Spawn(fmt.Sprintf("kvservice-%d", leaderNode), s.serve).SetDaemon(true)
	return s
}

func (s *KVService) serve(p *sim.Proc) {
	// A small fixed service cost per operation models the leader's
	// request-handling CPU.
	const opCost = 3 * time.Microsecond
	for {
		req := s.queue.Recv(p).(kvRequest)
		if req.op == opShutdown {
			if req.reply != nil {
				req.reply.Send(kvReply{})
			}
			return
		}
		p.Sleep(opCost)
		s.served++
		var rep kvReply
		var err error
		switch req.op {
		case opPut:
			err = s.store.Put(req.key, req.value, false)
		case opAppend:
			err = s.store.Append(req.key, req.value, false)
		case opDel:
			err = s.store.Del(req.key)
		case opGet:
			rep.value, err = s.store.Get(req.key)
		case opScan:
			err = s.store.Scan(req.key, func(k string, v []byte) bool {
				rep.pairs = append(rep.pairs, kvPair{key: k, value: v})
				return true
			})
		case opBarrier:
			err = s.store.WriteBarrier(true)
		}
		rep.encodeErr(err)
		if req.reply != nil {
			req.reply.Send(rep)
		}
	}
}

// Served reports how many operations the leader has applied.
func (s *KVService) Served() int64 { return s.served }

// Stop shuts the service process down, blocking until it exits.
func (s *KVService) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	p := s.k.Current()
	if p == nil {
		panic("lsmio: KVService.Stop must be called from a simulation process")
	}
	reply := sim.NewQueue(s.k, "kvsvc-stop")
	s.queue.Send(kvRequest{op: opShutdown, reply: reply})
	reply.Recv(p)
}

// RemoteStore is the member-rank side of collective I/O: a Store that
// forwards every operation to a KVService over the fabric.
type RemoteStore struct {
	svc    *KVService
	node   int // this member's fabric endpoint
	closed bool
}

var _ Store = (*RemoteStore)(nil)

// Connect returns a Store forwarding to svc from memberNode. The
// connection counts against the service until Close releases it.
func (s *KVService) Connect(memberNode int) *RemoteStore {
	s.conns++
	return &RemoteStore{svc: s, node: memberNode}
}

// Conns reports how many member connections are currently open.
func (s *KVService) Conns() int { return s.conns }

func (r *RemoteStore) proc() *sim.Proc {
	p := r.svc.k.Current()
	if p == nil {
		panic("lsmio: RemoteStore used outside a simulation process")
	}
	return p
}

// send ships a request; when sync, it waits for and returns the reply.
func (r *RemoteStore) send(req kvRequest, payload int64, sync bool) (kvReply, error) {
	if r.closed {
		return kvReply{}, ErrClosed
	}
	p := r.proc()
	if sync {
		req.reply = sim.NewQueue(r.svc.k, "kv-reply")
	}
	r.svc.fabric.Transfer(p, r.node, r.svc.node, payload+64)
	r.svc.queue.Send(req)
	if !sync {
		return kvReply{}, nil
	}
	rep := req.reply.Recv(p).(kvReply)
	// Reply payload travels back.
	size := int64(len(rep.value)) + 32
	for _, pr := range rep.pairs {
		size += int64(len(pr.key) + len(pr.value) + 16)
	}
	r.svc.fabric.Transfer(p, r.svc.node, r.node, size)
	return rep, rep.decodeErr()
}

// StartBatch implements Store (batching happens at the leader).
func (r *RemoteStore) StartBatch() error {
	if r.closed {
		return ErrClosed
	}
	return nil
}

// StopBatch implements Store.
func (r *RemoteStore) StopBatch() error {
	if r.closed {
		return ErrClosed
	}
	return nil
}

// Get implements Store: synchronous round trip to the leader.
func (r *RemoteStore) Get(key string) ([]byte, error) {
	rep, err := r.send(kvRequest{op: opGet, key: key}, int64(len(key)), true)
	return rep.value, err
}

// Put implements Store: asynchronous unless sync is set. The value is
// copied before transmission (the wire serializes it; the caller may
// reuse its buffer immediately).
func (r *RemoteStore) Put(key string, value []byte, sync bool) error {
	_, err := r.send(kvRequest{op: opPut, key: key, value: append([]byte(nil), value...)},
		int64(len(key)+len(value)), sync)
	return err
}

// Append implements Store. The value is copied before transmission.
func (r *RemoteStore) Append(key string, value []byte, sync bool) error {
	_, err := r.send(kvRequest{op: opAppend, key: key, value: append([]byte(nil), value...)},
		int64(len(key)+len(value)), sync)
	return err
}

// Del implements Store.
func (r *RemoteStore) Del(key string) error {
	_, err := r.send(kvRequest{op: opDel, key: key}, int64(len(key)), false)
	return err
}

// Scan implements Store: the leader runs the sequential sweep and streams
// the matching pairs back in one bulk transfer.
func (r *RemoteStore) Scan(prefix string, fn func(key string, value []byte) bool) error {
	rep, err := r.send(kvRequest{op: opScan, key: prefix}, int64(len(prefix)), true)
	if err != nil {
		return err
	}
	for _, pr := range rep.pairs {
		if !fn(pr.key, pr.value) {
			break
		}
	}
	return nil
}

// WriteBarrier implements Store: waits until the leader has applied all of
// this member's prior operations and flushed (FIFO ordering of the service
// queue makes one round trip sufficient).
func (r *RemoteStore) WriteBarrier(bool) error {
	_, err := r.send(kvRequest{op: opBarrier}, 0, true)
	return err
}

// Close implements Store: it releases the member's connection to the
// leader (the leader owns the underlying store and keeps running).
// Every subsequent operation on the closed connection — including a
// second Close — returns ErrClosed instead of silently succeeding.
func (r *RemoteStore) Close() error {
	if r.closed {
		return ErrClosed
	}
	r.closed = true
	r.svc.conns--
	return nil
}

// EngineStats implements Store, reporting the leader's engine counters.
// A closed connection reports zeros.
func (r *RemoteStore) EngineStats() lsm.Stats {
	if r.closed {
		return lsm.Stats{}
	}
	return r.svc.store.EngineStats()
}
