package core

import (
	"errors"
	"fmt"
	"io"
)

// FStream is the paper's C++ IOStream-like API (Table 3): a user-space
// POSIX-flavoured file abstraction whose bytes live in the LSMIO store.
// Files are segmented into fixed-size chunks, each stored under its own
// key, plus a metadata key holding the file size; sequential writes
// therefore become sequential puts, which the LSM-tree turns into large
// sequential disk writes.
//
// Like iostreams, errors latch into a fail bit inspected with Fail/Good,
// and Flush/Close push buffered data down; the write barrier is on the
// owning FStreamSystem.
type FStream struct {
	sys  *FStreamSystem
	name string
	pos  int64
	size int64

	// One-chunk write-behind cache.
	curIdx   int64
	curData  []byte
	curDirty bool
	curValid bool

	failbit bool
	lastErr error
	closed  bool
}

// FStreamSystem owns the store behind a set of FStreams; it corresponds to
// the static initialize/cleanup/writeBarrier methods of Table 3.
type FStreamSystem struct {
	mgr       *Manager
	chunkSize int64
	ownsMgr   bool
}

// DefaultFStreamChunkSize is the per-key segment size.
const DefaultFStreamChunkSize = 1 << 20

// InitializeFStreams opens an FStream system over a new Manager in dir
// (Table 3's initialize()).
func InitializeFStreams(dir string, opts ManagerOptions) (*FStreamSystem, error) {
	mgr, err := NewManager(dir, opts)
	if err != nil {
		return nil, err
	}
	return &FStreamSystem{mgr: mgr, chunkSize: DefaultFStreamChunkSize, ownsMgr: true}, nil
}

// NewFStreamSystem wraps an existing Manager (shared with K/V users).
func NewFStreamSystem(mgr *Manager) *FStreamSystem {
	return &FStreamSystem{mgr: mgr, chunkSize: DefaultFStreamChunkSize}
}

// Cleanup closes the system and (when it owns it) the underlying Manager
// (Table 3's cleanup()).
func (s *FStreamSystem) Cleanup() error {
	if s.ownsMgr {
		return s.mgr.Close()
	}
	return nil
}

// WriteBarrier flushes every pending write to disk and blocks until done
// (Table 3's static writeBarrier()).
func (s *FStreamSystem) WriteBarrier() error { return s.mgr.WriteBarrier() }

// Manager exposes the underlying manager.
func (s *FStreamSystem) Manager() *Manager { return s.mgr }

func (s *FStreamSystem) metaKey(name string) string { return "f:" + name + ":meta" }
func (s *FStreamSystem) chunkKey(name string, idx int64) string {
	return fmt.Sprintf("f:%s:%012d", name, idx)
}

// OpenMode selects FStream open behaviour.
type OpenMode int

// Open modes, mirroring ios::in/out/trunc combinations.
const (
	ModeRead OpenMode = iota
	ModeWrite
	ModeReadWrite
)

// Open opens (or for write modes, creates) a named stream.
func (s *FStreamSystem) Open(name string, mode OpenMode) (*FStream, error) {
	f := &FStream{sys: s, name: name, curIdx: -1}
	sizeBytes, err := s.mgr.Get(s.metaKey(name))
	switch {
	case err == nil:
		if len(sizeBytes) == 8 {
			var sz int64
			for i := 0; i < 8; i++ {
				sz |= int64(sizeBytes[i]) << (8 * i)
			}
			f.size = sz
		}
		if mode == ModeWrite {
			f.size = 0 // truncate
		}
	case errors.Is(err, ErrNotFound):
		if mode == ModeRead {
			return nil, fmt.Errorf("lsmio: fstream %q: %w", name, err)
		}
	default:
		return nil, err
	}
	return f, nil
}

// Exists reports whether a named stream has been created.
func (s *FStreamSystem) Exists(name string) bool {
	_, err := s.mgr.Get(s.metaKey(name))
	return err == nil
}

func (f *FStream) setErr(err error) {
	if err != nil && f.lastErr == nil {
		f.lastErr = err
		f.failbit = true
	}
}

// Good reports that no error has latched (iostream good()).
func (f *FStream) Good() bool { return !f.failbit && !f.closed }

// Fail reports a latched error (iostream fail()).
func (f *FStream) Fail() bool { return f.failbit }

// Err returns the latched error, if any.
func (f *FStream) Err() error { return f.lastErr }

// ClearError resets the fail bit (iostream clear()).
func (f *FStream) ClearError() {
	f.failbit = false
	f.lastErr = nil
}

// TellP returns the stream position (iostream tellp()).
func (f *FStream) TellP() int64 { return f.pos }

// SeekP moves the stream position (iostream seekp()).
func (f *FStream) SeekP(offset int64, whence int) int64 {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = f.size
	default:
		f.setErr(fmt.Errorf("lsmio: fstream: bad whence %d", whence))
		return f.pos
	}
	np := base + offset
	if np < 0 {
		f.setErr(fmt.Errorf("lsmio: fstream: negative seek"))
		return f.pos
	}
	f.pos = np
	return f.pos
}

// Size returns the current stream length.
func (f *FStream) Size() int64 { return f.size }

// Name returns the stream name.
func (f *FStream) Name() string { return f.name }

// loadChunk makes chunk idx current, writing back any dirty predecessor.
func (f *FStream) loadChunk(idx int64) error {
	if f.curValid && f.curIdx == idx {
		return nil
	}
	if err := f.writeBackChunk(); err != nil {
		return err
	}
	data, err := f.sys.mgr.Get(f.sys.chunkKey(f.name, idx))
	if errors.Is(err, ErrNotFound) {
		data = nil
	} else if err != nil {
		return err
	}
	f.curIdx = idx
	f.curData = append(f.curData[:0], data...)
	f.curDirty = false
	f.curValid = true
	return nil
}

// writeBackChunk pushes the cached chunk into the store if dirty.
func (f *FStream) writeBackChunk() error {
	if !f.curValid || !f.curDirty {
		return nil
	}
	if err := f.sys.mgr.Put(f.sys.chunkKey(f.name, f.curIdx), f.curData); err != nil {
		return err
	}
	f.curDirty = false
	return nil
}

// Write appends len(p) bytes at the current position (iostream write()).
func (f *FStream) Write(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("lsmio: fstream: write on closed stream")
	}
	written := 0
	cs := f.sys.chunkSize
	for len(p) > 0 {
		idx := f.pos / cs
		within := f.pos % cs
		take := cs - within
		if take > int64(len(p)) {
			take = int64(len(p))
		}
		if err := f.loadChunk(idx); err != nil {
			f.setErr(err)
			return written, err
		}
		end := within + take
		if end > int64(len(f.curData)) {
			grown := make([]byte, end)
			copy(grown, f.curData)
			f.curData = grown
		}
		copy(f.curData[within:end], p[:take])
		f.curDirty = true
		f.pos += take
		if f.pos > f.size {
			f.size = f.pos
		}
		p = p[take:]
		written += int(take)
	}
	return written, nil
}

// Read fills p from the current position (iostream read()); it returns
// io.EOF at end of stream.
func (f *FStream) Read(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("lsmio: fstream: read on closed stream")
	}
	if f.pos >= f.size {
		return 0, io.EOF
	}
	n := 0
	cs := f.sys.chunkSize
	for n < len(p) && f.pos < f.size {
		idx := f.pos / cs
		within := f.pos % cs
		if err := f.loadChunk(idx); err != nil {
			f.setErr(err)
			return n, err
		}
		avail := int64(len(f.curData)) - within
		if lim := f.size - f.pos; avail > lim {
			avail = lim
		}
		if avail <= 0 {
			// Sparse hole: zero-fill to chunk edge or requested length.
			hole := cs - within
			if lim := f.size - f.pos; hole > lim {
				hole = lim
			}
			if hole > int64(len(p)-n) {
				hole = int64(len(p) - n)
			}
			for i := int64(0); i < hole; i++ {
				p[n+int(i)] = 0
			}
			f.pos += hole
			n += int(hole)
			continue
		}
		take := avail
		if take > int64(len(p)-n) {
			take = int64(len(p) - n)
		}
		copy(p[n:n+int(take)], f.curData[within:within+take])
		f.pos += take
		n += int(take)
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Truncate changes the stream length. Growing exposes a zero-filled
// hole; shrinking masks (but does not eagerly delete) stored chunks
// beyond the new size.
func (f *FStream) Truncate(size int64) error {
	if f.closed {
		return errors.New("lsmio: fstream: truncate on closed stream")
	}
	if size < 0 {
		return errors.New("lsmio: fstream: negative truncate")
	}
	if f.curValid {
		// Trim or invalidate the cached chunk if it straddles the cut.
		chunkStart := f.curIdx * f.sys.chunkSize
		switch {
		case chunkStart >= size:
			f.curValid = false
			f.curDirty = false
		case chunkStart+int64(len(f.curData)) > size:
			f.curData = f.curData[:size-chunkStart]
			f.curDirty = true
		}
	}
	if size < f.size {
		// Delete stored chunks beyond the cut so a later re-grow reads
		// zeros, not stale bytes. The chunk containing the cut is kept
		// (its tail is masked by size and zero-filled on re-grow via the
		// cached-chunk path).
		cs := f.sys.chunkSize
		firstDead := (size + cs - 1) / cs
		oldChunks := (f.size + cs - 1) / cs
		for idx := firstDead; idx < oldChunks; idx++ {
			if err := f.sys.mgr.Del(f.sys.chunkKey(f.name, idx)); err != nil {
				return err
			}
		}
		// Trim the boundary chunk in the store too, if it is not the
		// cached one.
		if bIdx := size / cs; size%cs != 0 && (!f.curValid || f.curIdx != bIdx) {
			if err := f.loadChunk(bIdx); err == nil {
				if within := size % cs; within < int64(len(f.curData)) {
					f.curData = f.curData[:within]
					f.curDirty = true
				}
			}
		}
	}
	f.size = size
	if f.pos > size {
		f.pos = size
	}
	return nil
}

// Flush writes buffered data and metadata into the store (iostream
// flush()); durability still requires the system write barrier.
func (f *FStream) Flush() error {
	if err := f.writeBackChunk(); err != nil {
		f.setErr(err)
		return err
	}
	var meta [8]byte
	for i := 0; i < 8; i++ {
		meta[i] = byte(f.size >> (8 * i))
	}
	if err := f.sys.mgr.Put(f.sys.metaKey(f.name), meta[:]); err != nil {
		f.setErr(err)
		return err
	}
	return nil
}

// Close flushes and closes the stream.
func (f *FStream) Close() error {
	if f.closed {
		return errors.New("lsmio: fstream: already closed")
	}
	err := f.Flush()
	f.closed = true
	return err
}
