package core

import (
	"lsmio/internal/obs"
)

// mgrMetrics holds the Manager's obs instrument handles under the
// `core.` prefix, resolved once at NewManager. The legacy Counters
// struct is a snapshot view over these (Manager.Counters). The latency
// histograms use the registry clock — virtual time inside the
// simulator, wall time outside — so quantiles are meaningful in both
// modes.
type mgrMetrics struct {
	puts     *obs.Counter
	gets     *obs.Counter
	appends  *obs.Counter
	dels     *obs.Counter
	barriers *obs.Counter
	bytesPut *obs.Counter
	bytesGot *obs.Counter

	barrierNanos *obs.Counter // cumulative WriteBarrier time
	remoteOps    *obs.Counter // operations forwarded to a collective leader

	putLatency     *obs.Histogram
	getLatency     *obs.Histogram
	barrierLatency *obs.Histogram
}

func newMgrMetrics(reg *obs.Registry) mgrMetrics {
	s := reg.Scope("core")
	return mgrMetrics{
		puts:     s.Counter("puts"),
		gets:     s.Counter("gets"),
		appends:  s.Counter("appends"),
		dels:     s.Counter("dels"),
		barriers: s.Counter("barriers"),
		bytesPut: s.Counter("bytes_put"),
		bytesGot: s.Counter("bytes_got"),

		barrierNanos: s.Counter("barrier_nanos"),
		remoteOps:    s.Counter("remote_ops"),

		putLatency:     s.Histogram("put_latency"),
		getLatency:     s.Histogram("get_latency"),
		barrierLatency: s.Histogram("barrier_latency"),
	}
}
