package core

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"lsmio/internal/vfs"
)

// StoreFS adapts an LSMIO store as a vfs.FS: every "file" is an FStream
// whose bytes live in the LSM-tree. This is the layering the paper cites
// from PLFS — a byte-oriented format (HDF5, say) runs unmodified on top
// of the log-structured store, so its small interleaved writes become
// sequential LSM appends underneath (cf. Mehta et al., "A Plugin for
// HDF5 using PLFS", the paper's reference [25]).
type StoreFS struct {
	sys *FStreamSystem
}

// NewStoreFS wraps a Manager as a filesystem.
func NewStoreFS(mgr *Manager) *StoreFS {
	return &StoreFS{sys: NewFStreamSystem(mgr)}
}

var _ vfs.FS = (*StoreFS)(nil)

func storePath(name string) string {
	name = path.Clean(strings.TrimPrefix(name, "/"))
	if name == "" {
		name = "."
	}
	return name
}

// Create implements vfs.FS.
func (s *StoreFS) Create(name string) (vfs.File, error) {
	f, err := s.sys.Open(storePath(name), ModeWrite)
	if err != nil {
		return nil, err
	}
	return &storeFile{f: f}, nil
}

// Open implements vfs.FS: unlike FStream's ReadWrite mode, opening a
// stream that was never created is an error (POSIX semantics).
func (s *StoreFS) Open(name string) (vfs.File, error) {
	name = storePath(name)
	if !s.sys.Exists(name) {
		return nil, fmt.Errorf("open %s: %w", name, vfs.ErrNotExist)
	}
	f, err := s.sys.Open(name, ModeReadWrite)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, fmt.Errorf("open %s: %w", name, vfs.ErrNotExist)
		}
		return nil, err
	}
	return &storeFile{f: f}, nil
}

// Remove implements vfs.FS: it deletes the stream's metadata and chunks.
func (s *StoreFS) Remove(name string) error {
	name = storePath(name)
	if !s.sys.Exists(name) {
		return fmt.Errorf("remove %s: %w", name, vfs.ErrNotExist)
	}
	mgr := s.sys.mgr
	// Collect first, then delete (Scan holds an iterator snapshot).
	var keys []string
	prefix := "f:" + name + ":"
	err := mgr.ReadBatch(prefix, func(key string, _ []byte) bool {
		keys = append(keys, key)
		return true
	})
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := mgr.Del(k); err != nil {
			return err
		}
	}
	return nil
}

// Rename implements vfs.FS by re-keying the stream's records.
func (s *StoreFS) Rename(oldName, newName string) error {
	oldName, newName = storePath(oldName), storePath(newName)
	if !s.sys.Exists(oldName) {
		return fmt.Errorf("rename %s: %w", oldName, vfs.ErrNotExist)
	}
	mgr := s.sys.mgr
	oldPrefix := "f:" + oldName + ":"
	newPrefix := "f:" + newName + ":"
	type kv struct {
		key string
		val []byte
	}
	var entries []kv
	err := mgr.ReadBatch(oldPrefix, func(key string, value []byte) bool {
		entries = append(entries, kv{key, value})
		return true
	})
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := mgr.Put(newPrefix+strings.TrimPrefix(e.key, oldPrefix), e.val); err != nil {
			return err
		}
	}
	for _, e := range entries {
		if err := mgr.Del(e.key); err != nil {
			return err
		}
	}
	return nil
}

// MkdirAll implements vfs.FS. Directories are implicit in key names.
func (s *StoreFS) MkdirAll(string) error { return nil }

// names lists all stream names (from their metadata keys).
func (s *StoreFS) names() ([]string, error) {
	var out []string
	err := s.sys.mgr.ReadBatch("f:", func(key string, _ []byte) bool {
		if strings.HasSuffix(key, ":meta") {
			out = append(out, strings.TrimSuffix(strings.TrimPrefix(key, "f:"), ":meta"))
		}
		return true
	})
	return out, err
}

// List implements vfs.FS.
func (s *StoreFS) List(dir string) ([]string, error) {
	dir = storePath(dir)
	all, err := s.names()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, n := range all {
		var rest string
		if dir == "." {
			rest = n
		} else if strings.HasPrefix(n, dir+"/") {
			rest = strings.TrimPrefix(n, dir+"/")
		} else {
			continue
		}
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Stat implements vfs.FS.
func (s *StoreFS) Stat(name string) (int64, error) {
	f, err := s.Open(name)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.Size()
}

// Exists implements vfs.FS.
func (s *StoreFS) Exists(name string) bool { return s.sys.Exists(storePath(name)) }

// Barrier flushes the underlying store (the write-barrier hook the LSMIO
// stores expose; adapters compose).
func (s *StoreFS) Barrier() error { return s.sys.WriteBarrier() }

// storeFile adapts FStream to vfs.File.
type storeFile struct {
	f *FStream
}

func (sf *storeFile) Name() string { return sf.f.Name() }

func (sf *storeFile) Read(p []byte) (int, error) { return sf.f.Read(p) }

func (sf *storeFile) Write(p []byte) (int, error) { return sf.f.Write(p) }

func (sf *storeFile) ReadAt(p []byte, off int64) (int, error) {
	save := sf.f.TellP()
	sf.f.SeekP(off, io.SeekStart)
	n, err := sf.f.Read(p)
	sf.f.SeekP(save, io.SeekStart)
	return n, err
}

func (sf *storeFile) WriteAt(p []byte, off int64) (int, error) {
	save := sf.f.TellP()
	sf.f.SeekP(off, io.SeekStart)
	n, err := sf.f.Write(p)
	sf.f.SeekP(save, io.SeekStart)
	return n, err
}

func (sf *storeFile) Seek(offset int64, whence int) (int64, error) {
	pos := sf.f.SeekP(offset, whence)
	if sf.f.Fail() {
		err := sf.f.Err()
		sf.f.ClearError()
		return pos, err
	}
	return pos, nil
}

func (sf *storeFile) Size() (int64, error) {
	// Include any buffered-but-unflushed growth.
	return sf.f.Size(), nil
}

func (sf *storeFile) Sync() error { return sf.f.Flush() }

func (sf *storeFile) Truncate(size int64) error { return sf.f.Truncate(size) }

func (sf *storeFile) Close() error { return sf.f.Close() }
