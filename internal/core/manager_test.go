package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"lsmio/internal/vfs"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager("mgr", ManagerOptions{
		Store: StoreOptions{FS: vfs.NewMemFS(), WriteBufferSize: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerKVRoundTrip(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	if err := m.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := m.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := m.Append("k", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get("k"); string(v) != "v2" {
		t.Fatalf("append: %q", v)
	}
	if err := m.Del("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("del: %v", err)
	}
}

func TestManagerTypedPuts(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	m.PutString("s", "hello")
	m.PutInt64("i", -42)
	m.PutFloat64("f", 3.25)
	if v, _ := m.Get("s"); string(v) != "hello" {
		t.Fatalf("string: %q", v)
	}
	if v, err := m.GetInt64("i"); err != nil || v != -42 {
		t.Fatalf("int64: %d %v", v, err)
	}
	if v, err := m.GetFloat64("f"); err != nil || v != 3.25 {
		t.Fatalf("float64: %v %v", v, err)
	}
	// Type confusion surfaces as an error, not garbage.
	if _, err := m.GetInt64("s"); err == nil {
		t.Fatal("GetInt64 on a string should error")
	}
}

func TestManagerCounters(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	m.Put("a", bytes.Repeat([]byte("x"), 100))
	m.Put("b", bytes.Repeat([]byte("x"), 50))
	m.Get("a")
	m.Append("a", []byte("y"))
	m.Del("b")
	m.WriteBarrier()
	c := m.Counters()
	if c.Puts != 2 || c.Gets != 1 || c.Appends != 1 || c.Dels != 1 || c.Barriers != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if c.BytesPut != 151 || c.BytesGot != 100 {
		t.Fatalf("byte counters: %+v", c)
	}
}

func TestManagerFactory(t *testing.T) {
	opts := ManagerOptions{Store: StoreOptions{FS: vfs.NewMemFS()}}
	m1, err := GetManager("factory-dir", opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := GetManager("factory-dir", opts)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("factory returned different instances for one dir")
	}
	if err := ReleaseManager("factory-dir"); err != nil {
		t.Fatal(err)
	}
	if err := ReleaseManager("factory-dir"); err != nil {
		t.Fatal("double release should be a no-op")
	}
}

func TestFStreamWriteReadSeek(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)

	f, err := sys.Open("checkpoint.dat", ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789"), 500_000) // 5 MB: multiple chunks
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if f.TellP() != int64(len(payload)) {
		t.Fatalf("tellp = %d", f.TellP())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteBarrier(); err != nil {
		t.Fatal(err)
	}

	g, err := sys.Open("checkpoint.dat", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", g.Size())
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(g, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through FStream")
	}
	// Seek into the middle.
	g.SeekP(1_000_003, io.SeekStart)
	small := make([]byte, 10)
	if _, err := g.Read(small); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, payload[1_000_003:1_000_013]) {
		t.Fatalf("seek read mismatch: %q", small)
	}
	if !g.Good() || g.Fail() {
		t.Fatal("stream state should be good")
	}
	g.Close()
}

func TestFStreamSeekEndAndOverwrite(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)
	f, _ := sys.Open("x", ModeWrite)
	f.Write([]byte("hello world"))
	f.SeekP(-5, io.SeekEnd)
	f.Write([]byte("WORLD"))
	f.SeekP(0, io.SeekStart)
	buf := make([]byte, 11)
	io.ReadFull(f, buf)
	if string(buf) != "hello WORLD" {
		t.Fatalf("got %q", buf)
	}
	f.Close()
}

func TestFStreamSparseHoleReadsZero(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)
	f, _ := sys.Open("sparse", ModeWrite)
	f.SeekP(3<<20, io.SeekStart) // skip 3 MB
	f.Write([]byte("tail"))
	f.Close()

	g, _ := sys.Open("sparse", ModeRead)
	g.SeekP(1<<20, io.SeekStart)
	buf := make([]byte, 16)
	if _, err := io.ReadFull(g, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("hole not zero: %v", buf)
		}
	}
	g.SeekP(3<<20, io.SeekStart)
	io.ReadFull(g, buf[:4])
	if string(buf[:4]) != "tail" {
		t.Fatalf("tail = %q", buf[:4])
	}
	g.Close()
}

func TestFStreamOpenMissingForRead(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)
	if _, err := sys.Open("absent", ModeRead); err == nil {
		t.Fatal("opening a missing stream for read should fail")
	}
	if sys.Exists("absent") {
		t.Fatal("absent stream should not exist")
	}
}

func TestFStreamTruncateOnWriteMode(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)
	f, _ := sys.Open("t", ModeWrite)
	f.Write([]byte("long original content"))
	f.Close()
	g, _ := sys.Open("t", ModeWrite) // truncates
	g.Write([]byte("new"))
	g.Close()
	h, _ := sys.Open("t", ModeRead)
	if h.Size() != 3 {
		t.Fatalf("size after truncate = %d", h.Size())
	}
	h.Close()
}

func TestFStreamFailBit(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)
	f, _ := sys.Open("fb", ModeWrite)
	f.SeekP(-10, io.SeekStart) // invalid
	if !f.Fail() || f.Good() {
		t.Fatal("invalid seek should set the fail bit")
	}
	f.ClearError()
	if f.Fail() || !f.Good() {
		t.Fatal("ClearError should reset state")
	}
	f.Close()
}

func TestInitializeCleanupFStreams(t *testing.T) {
	sys, err := InitializeFStreams("fsys", ManagerOptions{
		Store: StoreOptions{FS: vfs.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sys.Open("a", ModeWrite)
	f.Write([]byte("data"))
	f.Close()
	if err := sys.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerManyKeysThroughBarriers(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("r%d/k%04d", round, i)
			if err := m.Put(key, bytes.Repeat([]byte{byte(round)}, 512)); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.WriteBarrier(); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			v, err := m.Get(fmt.Sprintf("r%d/k%04d", round, i))
			if err != nil || len(v) != 512 || v[0] != byte(round) {
				t.Fatalf("round %d key %d: %v", round, i, err)
			}
		}
	}
}

func TestManagerReadBatch(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	for i := 0; i < 50; i++ {
		m.Put(fmt.Sprintf("batch/%04d", i), bytes.Repeat([]byte{byte(i)}, 64))
	}
	m.WriteBarrier()
	all, err := m.ReadBatchAll("batch/")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 50 {
		t.Fatalf("ReadBatchAll returned %d entries", len(all))
	}
	for i := 0; i < 50; i++ {
		v := all[fmt.Sprintf("batch/%04d", i)]
		if len(v) != 64 || v[0] != byte(i) {
			t.Fatalf("entry %d wrong", i)
		}
	}
	// Counters account the batch as gets.
	if c := m.Counters(); c.Gets < 50 {
		t.Fatalf("gets = %d", c.Gets)
	}
}
