package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestFStreamQuickMatchesModel drives an FStream with a long random
// schedule of writes, seeks, reads, flushes and reopens, comparing every
// observable against an in-memory reference model (a growable byte slice
// with a cursor).
func TestFStreamQuickMatchesModel(t *testing.T) {
	m := newTestManager(t)
	defer m.Close()
	sys := NewFStreamSystem(m)

	rng := rand.New(rand.NewSource(99))
	var model []byte
	var pos int64

	f, err := sys.Open("model", ModeWrite)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		var err error
		f, err = sys.Open("model", ModeReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		pos = 0
	}

	for step := 0; step < 1500; step++ {
		switch op := rng.Intn(100); {
		case op < 45: // write
			n := rng.Intn(5000) + 1
			data := make([]byte, n)
			rng.Read(data)
			if _, err := f.Write(data); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			end := pos + int64(n)
			if end > int64(len(model)) {
				grown := make([]byte, end)
				copy(grown, model)
				model = grown
			}
			copy(model[pos:end], data)
			pos = end
		case op < 65: // seek
			var target int64
			switch rng.Intn(3) {
			case 0:
				target = int64(rng.Intn(len(model) + 1))
				f.SeekP(target, io.SeekStart)
			case 1:
				delta := int64(rng.Intn(2000)) - 1000
				if pos+delta < 0 {
					delta = -pos
				}
				target = pos + delta
				f.SeekP(delta, io.SeekCurrent)
			default:
				target = int64(len(model))
				f.SeekP(0, io.SeekEnd)
			}
			pos = target
			if got := f.TellP(); got != pos {
				t.Fatalf("step %d: tellp %d, model %d", step, got, pos)
			}
		case op < 85: // read
			n := rng.Intn(4000) + 1
			buf := make([]byte, n)
			got, err := f.Read(buf)
			wantN := len(model) - int(pos)
			if wantN < 0 {
				wantN = 0
			}
			if wantN > n {
				wantN = n
			}
			if wantN == 0 {
				if err != io.EOF {
					t.Fatalf("step %d: read at EOF returned %d, %v", step, got, err)
				}
				continue
			}
			if err != nil && err != io.EOF {
				t.Fatalf("step %d read: %v", step, err)
			}
			if got != wantN {
				t.Fatalf("step %d: read %d bytes, model %d", step, got, wantN)
			}
			if !bytes.Equal(buf[:got], model[pos:pos+int64(got)]) {
				t.Fatalf("step %d: read content mismatch at %d", step, pos)
			}
			pos += int64(got)
		case op < 92: // flush
			if err := f.Flush(); err != nil {
				t.Fatalf("step %d flush: %v", step, err)
			}
		case op < 96 && len(model) > 0: // reopen (persistence)
			reopen()
		default: // size check
			f.Flush()
			if got := f.Size(); got != int64(len(model)) {
				t.Fatalf("step %d: size %d, model %d", step, got, len(model))
			}
		}
	}
	// Final full-content comparison after a barrier and reopen.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteBarrier(); err != nil {
		t.Fatal(err)
	}
	g, err := sys.Open("model", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	final := make([]byte, len(model))
	if len(model) > 0 {
		if _, err := io.ReadFull(g, final); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(final, model) {
		t.Fatal("final content diverged from model")
	}
	g.Close()
}
