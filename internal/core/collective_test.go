package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmio/internal/lsm"
	"lsmio/internal/netsim"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// TestCollectiveGroupSharedStore exercises the §5.1 collective mode: four
// ranks share one leader-hosted store; after the barrier, every rank's
// data is present and readable from any rank.
func TestCollectiveGroupSharedStore(t *testing.T) {
	const ranks = 4
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(ranks))

	var svc *KVService
	var leaderStore Store

	// Leader setup runs first, in its own process.
	k.Spawn("setup", func(p *sim.Proc) {
		var err error
		leaderStore, err = OpenStore("shared-db", StoreOptions{
			FS:       cluster.Client(0),
			Platform: lsm.SimPlatform(k),
			Async:    true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		svc = NewKVService(k, cluster.Fabric(), 0, leaderStore)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if svc == nil {
		t.Fatal("setup failed")
	}

	done := make([]bool, ranks)
	for r := 0; r < ranks; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			var st Store
			if r == 0 {
				st = leaderStore
			} else {
				st = svc.Connect(r)
			}
			mgr, err := NewManager("", ManagerOptions{Kernel: k, Remote: st})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("rank%d/key%02d", r, i)
				if err := mgr.Put(key, bytes.Repeat([]byte{byte(r)}, 256)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := mgr.WriteBarrier(); err != nil {
				t.Error(err)
				return
			}
			done[r] = true
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, ok := range done {
		if !ok {
			t.Fatalf("rank %d did not finish", r)
		}
	}

	// Cross-rank reads plus shutdown.
	k.Spawn("verify", func(p *sim.Proc) {
		member := svc.Connect(3)
		for r := 0; r < ranks; r++ {
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("rank%d/key%02d", r, i)
				v, err := member.Get(key)
				if err != nil || len(v) != 256 || v[0] != byte(r) {
					t.Errorf("key %s: %v", key, err)
					return
				}
			}
		}
		if svc.Served() == 0 {
			t.Error("service applied no operations")
		}
		svc.Stop()
		if err := leaderStore.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveBarrierOrdering verifies FIFO semantics: a member's
// barrier completes only after all its earlier puts are applied.
func TestCollectiveBarrierOrdering(t *testing.T) {
	k := sim.NewKernel()
	fabric := netsim.New(k, netsim.DefaultConfig(2))
	var put, served int64
	k.Spawn("main", func(p *sim.Proc) {
		store, err := OpenStore("db", StoreOptions{
			FS:       vfs.NewMemFS(),
			Platform: lsm.SimPlatform(k),
		})
		if err != nil {
			t.Error(err)
			return
		}
		svc := NewKVService(k, fabric, 0, store)
		member := svc.Connect(1)
		for i := 0; i < 50; i++ {
			member.Put(fmt.Sprintf("k%02d", i), []byte("v"), false)
			put++
		}
		member.WriteBarrier(false)
		served = svc.Served()
		// After the barrier, all 50 puts must already be applied.
		for i := 0; i < 50; i++ {
			if _, err := store.Get(fmt.Sprintf("k%02d", i)); err != nil {
				t.Errorf("k%02d missing after member barrier: %v", i, err)
			}
		}
		svc.Stop()
		store.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if served < put {
		t.Fatalf("barrier returned with %d/%d ops applied", served, put)
	}
}

// faultyStore wraps a Store and fails selected operations with a given
// error, for wire-taxonomy tests.
type faultyStore struct {
	Store
	putErr error
}

func (f *faultyStore) Put(key string, value []byte, sync bool) error {
	if f.putErr != nil {
		return f.putErr
	}
	return f.Store.Put(key, value, sync)
}

type transientErr struct{ msg string }

func (e transientErr) Error() string        { return e.msg }
func (e transientErr) TransientFault() bool { return true }

// TestCollectiveErrorClassRoundTrip is the wire-taxonomy regression: a
// classified error raised at the leader (here a transient quota/stall
// style fault) must come back over the fabric still carrying its resil
// class, not collapsed into a generic failure — and the ErrNotFound
// sentinel must survive the trip too.
func TestCollectiveErrorClassRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	fabric := netsim.New(k, netsim.DefaultConfig(2))
	k.Spawn("main", func(p *sim.Proc) {
		store, err := OpenStore("db", StoreOptions{
			FS:       vfs.NewMemFS(),
			Platform: lsm.SimPlatform(k),
		})
		if err != nil {
			t.Error(err)
			return
		}
		defer store.Close()
		faulty := &faultyStore{Store: store, putErr: transientErr{msg: "store stalled: admission quota exhausted"}}
		svc := NewKVService(k, fabric, 0, faulty)
		defer svc.Stop()
		member := svc.Connect(1)

		err = member.Put("k", []byte("v"), true)
		if err == nil {
			t.Error("expected the leader's put error to round-trip")
			return
		}
		if got := resil.Classify(err); got != resil.ClassTransient {
			t.Errorf("round-tripped error classified %v, want transient (err: %v)", got, err)
		}
		var ce *resil.ClassError
		if !errors.As(err, &ce) || ce.Msg == "" {
			t.Errorf("expected a resil.ClassError with the leader's message, got %T %v", err, err)
		}

		// The miss sentinel also survives the wire.
		if _, err := member.Get("absent"); !errors.Is(err, ErrNotFound) {
			t.Errorf("remote miss returned %v, want ErrNotFound", err)
		}

		// A fatal-class error stays fatal.
		faulty.putErr = errors.New("corrupt block")
		if err := member.Put("k2", nil, true); resil.Classify(err) != resil.ClassFatal {
			t.Errorf("fatal error came back as %v", resil.Classify(err))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteStoreClose verifies the connection lifecycle: Close releases
// the member's connection and every later call — including a second
// Close — reports ErrClosed instead of silently succeeding.
func TestRemoteStoreClose(t *testing.T) {
	k := sim.NewKernel()
	fabric := netsim.New(k, netsim.DefaultConfig(2))
	k.Spawn("main", func(p *sim.Proc) {
		store, err := OpenStore("db", StoreOptions{
			FS:       vfs.NewMemFS(),
			Platform: lsm.SimPlatform(k),
		})
		if err != nil {
			t.Error(err)
			return
		}
		defer store.Close()
		svc := NewKVService(k, fabric, 0, store)
		defer svc.Stop()

		member := svc.Connect(1)
		if got := svc.Conns(); got != 1 {
			t.Errorf("Conns() = %d after Connect, want 1", got)
		}
		if err := member.StartBatch(); err != nil {
			t.Errorf("StartBatch on live connection: %v", err)
		}
		if err := member.Put("k", []byte("v"), false); err != nil {
			t.Errorf("Put on live connection: %v", err)
		}
		if err := member.Close(); err != nil {
			t.Errorf("first Close: %v", err)
		}
		if got := svc.Conns(); got != 0 {
			t.Errorf("Conns() = %d after Close, want 0", got)
		}
		if err := member.Close(); !errors.Is(err, ErrClosed) {
			t.Errorf("second Close = %v, want ErrClosed", err)
		}
		if err := member.Put("k", []byte("v"), false); !errors.Is(err, ErrClosed) {
			t.Errorf("Put after Close = %v, want ErrClosed", err)
		}
		if _, err := member.Get("k"); !errors.Is(err, ErrClosed) {
			t.Errorf("Get after Close = %v, want ErrClosed", err)
		}
		if err := member.StartBatch(); !errors.Is(err, ErrClosed) {
			t.Errorf("StartBatch after Close = %v, want ErrClosed", err)
		}
		if err := member.StopBatch(); !errors.Is(err, ErrClosed) {
			t.Errorf("StopBatch after Close = %v, want ErrClosed", err)
		}
		if err := member.WriteBarrier(true); !errors.Is(err, ErrClosed) {
			t.Errorf("WriteBarrier after Close = %v, want ErrClosed", err)
		}
		if s := member.EngineStats(); s != (lsm.Stats{}) {
			t.Errorf("EngineStats after Close = %+v, want zero", s)
		}
		// A fresh connection still works: the service survived.
		again := svc.Connect(1)
		if _, err := again.Get("k"); err != nil {
			t.Errorf("Get on fresh connection: %v", err)
		}
		if err := again.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
