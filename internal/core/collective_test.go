package core

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/internal/lsm"
	"lsmio/internal/netsim"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// TestCollectiveGroupSharedStore exercises the §5.1 collective mode: four
// ranks share one leader-hosted store; after the barrier, every rank's
// data is present and readable from any rank.
func TestCollectiveGroupSharedStore(t *testing.T) {
	const ranks = 4
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(ranks))

	var svc *KVService
	var leaderStore Store

	// Leader setup runs first, in its own process.
	k.Spawn("setup", func(p *sim.Proc) {
		var err error
		leaderStore, err = OpenStore("shared-db", StoreOptions{
			FS:       cluster.Client(0),
			Platform: lsm.SimPlatform(k),
			Async:    true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		svc = NewKVService(k, cluster.Fabric(), 0, leaderStore)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if svc == nil {
		t.Fatal("setup failed")
	}

	done := make([]bool, ranks)
	for r := 0; r < ranks; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			var st Store
			if r == 0 {
				st = leaderStore
			} else {
				st = svc.Connect(r)
			}
			mgr, err := NewManager("", ManagerOptions{Kernel: k, Remote: st})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("rank%d/key%02d", r, i)
				if err := mgr.Put(key, bytes.Repeat([]byte{byte(r)}, 256)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := mgr.WriteBarrier(); err != nil {
				t.Error(err)
				return
			}
			done[r] = true
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, ok := range done {
		if !ok {
			t.Fatalf("rank %d did not finish", r)
		}
	}

	// Cross-rank reads plus shutdown.
	k.Spawn("verify", func(p *sim.Proc) {
		member := svc.Connect(3)
		for r := 0; r < ranks; r++ {
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("rank%d/key%02d", r, i)
				v, err := member.Get(key)
				if err != nil || len(v) != 256 || v[0] != byte(r) {
					t.Errorf("key %s: %v", key, err)
					return
				}
			}
		}
		if svc.Served() == 0 {
			t.Error("service applied no operations")
		}
		svc.Stop()
		if err := leaderStore.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveBarrierOrdering verifies FIFO semantics: a member's
// barrier completes only after all its earlier puts are applied.
func TestCollectiveBarrierOrdering(t *testing.T) {
	k := sim.NewKernel()
	fabric := netsim.New(k, netsim.DefaultConfig(2))
	var put, served int64
	k.Spawn("main", func(p *sim.Proc) {
		store, err := OpenStore("db", StoreOptions{
			FS:       vfs.NewMemFS(),
			Platform: lsm.SimPlatform(k),
		})
		if err != nil {
			t.Error(err)
			return
		}
		svc := NewKVService(k, fabric, 0, store)
		member := svc.Connect(1)
		for i := 0; i < 50; i++ {
			member.Put(fmt.Sprintf("k%02d", i), []byte("v"), false)
			put++
		}
		member.WriteBarrier(false)
		served = svc.Served()
		// After the barrier, all 50 puts must already be applied.
		for i := 0; i < 50; i++ {
			if _, err := store.Get(fmt.Sprintf("k%02d", i)); err != nil {
				t.Errorf("k%02d missing after member barrier: %v", i, err)
			}
		}
		svc.Stop()
		store.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if served < put {
		t.Fatalf("barrier returned with %d/%d ops applied", served, put)
	}
}
