package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lsmio/internal/hdf5sim"
	"lsmio/internal/vfs"
)

func newStoreFS(t *testing.T) *StoreFS {
	t.Helper()
	return NewStoreFS(newTestManager(t))
}

func TestStoreFSBasicFileOps(t *testing.T) {
	fs := newStoreFS(t)
	f, err := fs.Create("dir/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.WriteAt([]byte("HE"), 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := fs.Open("dir/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "HEllo" {
		t.Fatalf("got %q", data)
	}
	if size, _ := g.Size(); size != 5 {
		t.Fatalf("size = %d", size)
	}
	g.Close()

	if _, err := fs.Open("missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if size, err := fs.Stat("dir/a.bin"); err != nil || size != 5 {
		t.Fatalf("stat: %d %v", size, err)
	}
	if !fs.Exists("dir/a.bin") || fs.Exists("nope") {
		t.Fatal("exists wrong")
	}
}

func TestStoreFSRenameRemoveList(t *testing.T) {
	fs := newStoreFS(t)
	for _, name := range []string{"d/x", "d/y", "d/sub/z", "top"} {
		f, _ := fs.Create(name)
		f.Write([]byte(name))
		f.Close()
	}
	names, err := fs.List("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 { // x, y, sub
		t.Fatalf("list d = %v", names)
	}
	if err := fs.Rename("d/x", "d/renamed"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("d/x") || !fs.Exists("d/renamed") {
		t.Fatal("rename failed")
	}
	g, _ := fs.Open("d/renamed")
	data, _ := vfs.ReadAll(g)
	g.Close()
	if string(data) != "d/x" {
		t.Fatalf("renamed content %q", data)
	}
	if err := fs.Remove("d/renamed"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("d/renamed") {
		t.Fatal("remove failed")
	}
	if err := fs.Remove("never"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("remove missing: %v", err)
	}
}

func TestStoreFSTruncate(t *testing.T) {
	fs := newStoreFS(t)
	f, _ := fs.Create("t")
	f.Write(bytes.Repeat([]byte("x"), 3<<20)) // spans multiple chunks
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 100 {
		t.Fatalf("size = %d", size)
	}
	// Regrow: the hole must read zero, not stale chunk bytes.
	f.WriteAt([]byte("end"), 2<<20)
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 1<<20); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("stale bytes after truncate+regrow: %v", buf[:8])
		}
	}
	f.Close()
}

// TestHDF5OverLSMIO is the PLFS-style layering demo from the paper's
// reference [25]: the HDF5-like chunked format runs unmodified on top of
// the LSM-tree via StoreFS, and the data round-trips.
func TestHDF5OverLSMIO(t *testing.T) {
	fs := newStoreFS(t)
	spec := hdf5sim.DatasetSpec{Name: "data", TotalLen: 1 << 20, ChunkLen: 64 << 10, ElemSize: 1}
	h, err := hdf5sim.Create(fs, "nested.h5", spec)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hdf5-inside-an-lsm-tree!"), 1<<20/24+1)[:1<<20]
	if err := h.WriteHyperslab(0, payload, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Barrier(); err != nil {
		t.Fatal(err)
	}

	g, err := hdf5sim.Open(fs, "nested.h5")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := g.ReadHyperslab(0, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("HDF5-over-LSMIO round trip corrupted data")
	}
	g.Close()
}

func TestStoreFSSurvivesReopen(t *testing.T) {
	backing := vfs.NewMemFS()
	mgr, err := NewManager("fsstore", ManagerOptions{
		Store: StoreOptions{FS: backing, WriteBufferSize: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewStoreFS(mgr)
	f, _ := fs.Create("persist")
	f.Write([]byte("across reopen"))
	f.Close()
	fs.Barrier()
	mgr.Close()

	mgr2, err := NewManager("fsstore", ManagerOptions{
		Store: StoreOptions{FS: backing, WriteBufferSize: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	fs2 := NewStoreFS(mgr2)
	g, err := fs2.Open("persist")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadAll(g)
	g.Close()
	if string(data) != "across reopen" {
		t.Fatalf("got %q", data)
	}
}
