package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"lsmio/internal/lsm"
	"lsmio/internal/mpisim"
	"lsmio/internal/obs"
	"lsmio/internal/sim"
)

// CostProfile is the CPU cost model charged to simulation processes for
// LSMIO's client-side work (key encoding, memtable insertion, table
// building amortized per operation). Outside the simulator the charges are
// no-ops — real CPU time is really spent.
type CostProfile struct {
	PutFixed   time.Duration // per-put fixed cost
	PutPerByte float64       // ns per value byte on the put path
	GetFixed   time.Duration // per-get fixed cost
	GetPerByte float64       // ns per value byte on the get path
}

// DefaultCostProfile reflects measured LSM-engine overheads (skiplist
// insert ~2 µs; block/filter/index building ~0.35 ns/B end-to-end).
func DefaultCostProfile() CostProfile {
	return CostProfile{
		PutFixed:   2 * time.Microsecond,
		PutPerByte: 0.35,
		GetFixed:   3 * time.Microsecond,
		GetPerByte: 0.40,
	}
}

func (c CostProfile) putCost(n int) time.Duration {
	return c.PutFixed + time.Duration(c.PutPerByte*float64(n))
}

func (c CostProfile) getCost(n int) time.Duration {
	return c.GetFixed + time.Duration(c.GetPerByte*float64(n))
}

// Counters are LSMIO's performance counters (§3.1.4).
type Counters struct {
	Puts        int64
	Gets        int64
	Appends     int64
	Dels        int64
	Barriers    int64
	BytesPut    int64
	BytesGot    int64
	BarrierTime time.Duration
	RemoteOps   int64 // operations forwarded to a collective leader
}

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// Store configures the local store (ignored when Remote is set).
	Store StoreOptions
	// Kernel, when running inside the simulator, lets the manager charge
	// CPU costs to the calling process. Nil outside the simulator.
	Kernel *sim.Kernel
	// Cost is the client-side CPU cost model (zero value: defaults).
	Cost CostProfile
	// MPI attaches an MPI rank; WriteBarrier then also performs an MPI
	// barrier so all ranks' checkpoints complete together (§3.1.3).
	MPI *mpisim.Rank
	// Remote, when non-nil, replaces the local store with a connection to
	// a collective-I/O leader (§5.1 future work, implemented here).
	Remote Store
	// Obs is the metrics/trace registry the manager records into, under
	// the `core.` prefix. Nil creates one clocked on the kernel's virtual
	// time (wall time outside the simulator). The same registry is
	// injected into the local store's LSM engine, so one snapshot covers
	// `core.*` and `lsm.*` together.
	Obs *obs.Registry
}

// Manager is the paper's Table 2 component: the external K/V API over the
// local store, plus MPI integration, typed puts and performance counters.
type Manager struct {
	store  Store
	kern   *sim.Kernel
	cost   CostProfile
	mpi    *mpisim.Rank
	remote bool
	reg    *obs.Registry
	m      mgrMetrics
}

// NewManager opens a manager over a local store in dir (or over the
// remote store when opts.Remote is set).
func NewManager(dir string, opts ManagerOptions) (*Manager, error) {
	cost := opts.Cost
	if cost == (CostProfile{}) {
		cost = DefaultCostProfile()
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
		if k := opts.Kernel; k != nil {
			reg.SetClock(func() time.Duration { return k.Now().Duration() })
		}
	}
	m := &Manager{kern: opts.Kernel, cost: cost, mpi: opts.MPI, reg: reg, m: newMgrMetrics(reg)}
	if opts.Remote != nil {
		m.store = opts.Remote
		m.remote = true
		return m, nil
	}
	so := opts.Store
	if so.Obs == nil {
		so.Obs = reg
	}
	st, err := OpenStore(dir, so)
	if err != nil {
		return nil, err
	}
	m.store = st
	return m, nil
}

// Get returns the value for key (always synchronous, §3.1.4).
func (m *Manager) Get(key string) ([]byte, error) {
	start := m.reg.Now()
	v, err := m.store.Get(key)
	if err == nil {
		m.m.gets.Inc()
		m.m.bytesGot.Add(int64(len(v)))
		m.kern.Compute(m.cost.getCost(len(v)))
		m.m.getLatency.ObserveDuration(m.reg.Now() - start)
	}
	return v, err
}

// ReadBatch loads every key under prefix in one sequential sweep of the
// LSM-tree, in key order — the batch-read optimization the paper's §5.1
// proposes instead of random point lookups per key. The per-entry CPU
// cost is a fraction of a point get's (no per-key index descent).
func (m *Manager) ReadBatch(prefix string, fn func(key string, value []byte) bool) error {
	return m.store.Scan(prefix, func(key string, value []byte) bool {
		m.m.gets.Inc()
		m.m.bytesGot.Add(int64(len(value)))
		m.kern.Compute(time.Duration(m.cost.GetPerByte * float64(len(value)) / 2))
		return fn(key, value)
	})
}

// ReadBatchAll collects a prefix's entries into a map (convenience over
// ReadBatch for restart-style full loads).
func (m *Manager) ReadBatchAll(prefix string) (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := m.ReadBatch(prefix, func(key string, value []byte) bool {
		out[key] = value
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Put writes key asynchronously (durable at the next write barrier).
func (m *Manager) Put(key string, value []byte) error {
	return m.putInternal(key, value, false)
}

// PutSync writes key and blocks until it is durable.
func (m *Manager) PutSync(key string, value []byte) error {
	return m.putInternal(key, value, true)
}

func (m *Manager) putInternal(key string, value []byte, sync bool) error {
	start := m.reg.Now()
	m.kern.Compute(m.cost.putCost(len(value)))
	if err := m.store.Put(key, value, sync); err != nil {
		return err
	}
	m.m.puts.Inc()
	m.m.bytesPut.Add(int64(len(value)))
	if m.remote {
		m.m.remoteOps.Inc()
	}
	m.m.putLatency.ObserveDuration(m.reg.Now() - start)
	return nil
}

// Append extends key's value (creating it when absent).
func (m *Manager) Append(key string, value []byte) error {
	m.kern.Compute(m.cost.putCost(len(value)))
	if err := m.store.Append(key, value, false); err != nil {
		return err
	}
	m.m.appends.Inc()
	m.m.bytesPut.Add(int64(len(value)))
	return nil
}

// Del removes key.
func (m *Manager) Del(key string) error {
	if err := m.store.Del(key); err != nil {
		return err
	}
	m.m.dels.Inc()
	return nil
}

// Typed puts, the convenience layer the paper's Manager offers for
// different data types.

// PutString stores a string value.
func (m *Manager) PutString(key, value string) error { return m.Put(key, []byte(value)) }

// PutInt64 stores a little-endian int64.
func (m *Manager) PutInt64(key string, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return m.Put(key, b[:])
}

// PutFloat64 stores a little-endian IEEE-754 float64.
func (m *Manager) PutFloat64(key string, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return m.Put(key, b[:])
}

// GetInt64 reads a value stored by PutInt64.
func (m *Manager) GetInt64(key string) (int64, error) {
	b, err := m.Get(key)
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("lsmio: key %q holds %d bytes, not an int64", key, len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// GetFloat64 reads a value stored by PutFloat64.
func (m *Manager) GetFloat64(key string) (float64, error) {
	b, err := m.Get(key)
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("lsmio: key %q holds %d bytes, not a float64", key, len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// WriteBarrier flushes all buffered writes to stable storage. With MPI
// attached it then synchronizes all ranks, so when it returns every rank's
// checkpoint data is durable — the paper's implicit end-of-checkpoint
// barrier (§3.1.1).
func (m *Manager) WriteBarrier() error {
	start := m.reg.Now()
	if err := m.store.WriteBarrier(true); err != nil {
		return err
	}
	if m.mpi != nil {
		m.mpi.Barrier()
	}
	m.m.barriers.Inc()
	elapsed := m.reg.Now() - start
	m.m.barrierNanos.Add(int64(elapsed))
	m.m.barrierLatency.ObserveDuration(elapsed)
	return nil
}

// Counters returns a snapshot of the performance counters. It is a
// legacy view over the manager's `core.` instruments in the obs
// registry.
func (m *Manager) Counters() Counters {
	return Counters{
		Puts:        m.m.puts.Load(),
		Gets:        m.m.gets.Load(),
		Appends:     m.m.appends.Load(),
		Dels:        m.m.dels.Load(),
		Barriers:    m.m.barriers.Load(),
		BytesPut:    m.m.bytesPut.Load(),
		BytesGot:    m.m.bytesGot.Load(),
		BarrierTime: time.Duration(m.m.barrierNanos.Load()),
		RemoteOps:   m.m.remoteOps.Load(),
	}
}

// Obs returns the manager's metrics/trace registry. For a local store
// it also carries the engine's `lsm.` instruments, so one snapshot
// covers the whole stack.
func (m *Manager) Obs() *obs.Registry { return m.reg }

// ResetCounters zeroes every `core.` instrument (the engine's `lsm.`
// instruments and the trace ring are kept; use Obs().Reset() to clear
// everything).
func (m *Manager) ResetCounters() { m.reg.ResetPrefix("core.") }

// Kernel returns the simulation kernel the manager charges CPU costs
// to, nil outside the simulator. Layers above (e.g. the ckpt parallel
// restore pool) use it to run their workers as simulation processes.
func (m *Manager) Kernel() *sim.Kernel { return m.kern }

// EngineStats exposes the LSM engine's counters.
func (m *Manager) EngineStats() lsm.Stats { return m.store.EngineStats() }

// Store exposes the underlying local store (the paper's internal K/V API).
func (m *Manager) Store() Store { return m.store }

// Close flushes and releases the manager's store. Remote (collective)
// managers do not own the leader's store: a member's connection is
// released (subsequent use returns ErrClosed), while a leader-side
// manager handed the shared local store directly leaves it open for
// the service.
func (m *Manager) Close() error {
	if m.remote {
		if rs, ok := m.store.(*RemoteStore); ok {
			return rs.Close()
		}
		return nil
	}
	return m.store.Close()
}

// managerRegistry implements the paper's optional factory method: one
// shared Manager per store directory.
var managerRegistry = struct {
	sync.Mutex
	m map[string]*Manager
}{m: make(map[string]*Manager)}

// GetManager returns the registered Manager for dir, creating it with
// opts on first use (the factory method of Table 2).
func GetManager(dir string, opts ManagerOptions) (*Manager, error) {
	managerRegistry.Lock()
	defer managerRegistry.Unlock()
	if m, ok := managerRegistry.m[dir]; ok {
		return m, nil
	}
	m, err := NewManager(dir, opts)
	if err != nil {
		return nil, err
	}
	managerRegistry.m[dir] = m
	return m, nil
}

// ReleaseManager removes dir's Manager from the factory registry and
// closes it.
func ReleaseManager(dir string) error {
	managerRegistry.Lock()
	m, ok := managerRegistry.m[dir]
	delete(managerRegistry.m, dir)
	managerRegistry.Unlock()
	if !ok {
		return nil
	}
	return m.Close()
}
