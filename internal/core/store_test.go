package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmio/internal/vfs"
)

func openTestStore(t *testing.T, fs vfs.FS, backend Backend) Store {
	t.Helper()
	st, err := OpenStore("store", StoreOptions{
		Backend:         backend,
		FS:              fs,
		WriteBufferSize: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func backends() []Backend { return []Backend{BackendRocks, BackendLevel} }

func TestStorePutGetDel(t *testing.T) {
	for _, b := range backends() {
		t.Run(string(b), func(t *testing.T) {
			st := openTestStore(t, vfs.NewMemFS(), b)
			defer st.Close()
			if err := st.Put("alpha", []byte("1"), false); err != nil {
				t.Fatal(err)
			}
			v, err := st.Get("alpha")
			if err != nil || string(v) != "1" {
				t.Fatalf("get: %q %v", v, err)
			}
			if _, err := st.Get("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing: %v", err)
			}
			if err := st.Del("alpha"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get("alpha"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted: %v", err)
			}
		})
	}
}

func TestStoreAppend(t *testing.T) {
	for _, b := range backends() {
		t.Run(string(b), func(t *testing.T) {
			st := openTestStore(t, vfs.NewMemFS(), b)
			defer st.Close()
			st.Append("log", []byte("one,"), false)
			st.Append("log", []byte("two,"), false)
			st.Append("log", []byte("three"), false)
			v, err := st.Get("log")
			if err != nil || string(v) != "one,two,three" {
				t.Fatalf("append result: %q %v", v, err)
			}
		})
	}
}

func TestStoreBatchReadYourWrites(t *testing.T) {
	for _, b := range backends() {
		t.Run(string(b), func(t *testing.T) {
			st := openTestStore(t, vfs.NewMemFS(), b)
			defer st.Close()
			if err := st.StartBatch(); err != nil {
				t.Fatal(err)
			}
			st.Put("k", []byte("batched"), false)
			// The write must be visible to the writer even while batched.
			v, err := st.Get("k")
			if err != nil || string(v) != "batched" {
				t.Fatalf("read-your-writes: %q %v", v, err)
			}
			st.Del("k")
			if _, err := st.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("batched delete: %v", err)
			}
			st.Put("k2", []byte("kept"), false)
			if err := st.StopBatch(); err != nil {
				t.Fatal(err)
			}
			if v, err := st.Get("k2"); err != nil || string(v) != "kept" {
				t.Fatalf("after stopBatch: %q %v", v, err)
			}
		})
	}
}

func TestStoreBarrierDurability(t *testing.T) {
	for _, b := range backends() {
		t.Run(string(b), func(t *testing.T) {
			fs := vfs.NewMemFS()
			st := openTestStore(t, fs, b)
			payload := bytes.Repeat([]byte("d"), 4096)
			for i := 0; i < 64; i++ {
				if err := st.Put(fmt.Sprintf("key-%03d", i), payload, false); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.WriteBarrier(true); err != nil {
				t.Fatal(err)
			}
			// Simulate a crash: reopen without Close.
			st2 := openTestStore(t, fs, b)
			defer st2.Close()
			for i := 0; i < 64; i++ {
				v, err := st2.Get(fmt.Sprintf("key-%03d", i))
				if err != nil || !bytes.Equal(v, payload) {
					t.Fatalf("key-%03d after barrier+crash: %v", i, err)
				}
			}
		})
	}
}

func TestRocksBackendWritesNoWAL(t *testing.T) {
	st := openTestStore(t, vfs.NewMemFS(), BackendRocks)
	defer st.Close()
	st.Put("k", bytes.Repeat([]byte("v"), 1024), false)
	st.WriteBarrier(false)
	if s := st.EngineStats(); s.WALBytes != 0 {
		t.Fatalf("rocks backend wrote %d WAL bytes", s.WALBytes)
	}
}

func TestLevelBackendAlwaysWritesWAL(t *testing.T) {
	st := openTestStore(t, vfs.NewMemFS(), BackendLevel)
	defer st.Close()
	st.Put("k", bytes.Repeat([]byte("v"), 1024), false)
	st.WriteBarrier(false)
	if s := st.EngineStats(); s.WALBytes == 0 {
		t.Fatal("level backend must write the WAL (LevelDB cannot disable it)")
	}
}

func TestLevelBatchingAmortizesWAL(t *testing.T) {
	// One WAL record per barrier (batched) must produce fewer WAL bytes
	// than one per put: the paper's reason for using WriteBatch.
	walBytes := func(batched bool) int64 {
		st := openTestStore(t, vfs.NewMemFS(), BackendLevel)
		defer st.Close()
		if batched {
			st.StartBatch()
		}
		for i := 0; i < 100; i++ {
			st.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte("v"), 100), false)
		}
		if batched {
			st.StopBatch()
		}
		st.WriteBarrier(false)
		return st.EngineStats().WALBytes
	}
	unbatched, batched := walBytes(false), walBytes(true)
	if batched >= unbatched {
		t.Fatalf("batched WAL bytes (%d) should be < unbatched (%d)", batched, unbatched)
	}
}

func TestSyncPutIsDurable(t *testing.T) {
	fs := vfs.NewMemFS()
	st := openTestStore(t, fs, BackendRocks)
	if err := st.Put("sync-key", []byte("durable"), true); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, fs, BackendRocks)
	defer st2.Close()
	if v, err := st2.Get("sync-key"); err != nil || string(v) != "durable" {
		t.Fatalf("sync put not durable: %q %v", v, err)
	}
}

func TestOpenStoreValidation(t *testing.T) {
	if _, err := OpenStore("x", StoreOptions{}); err == nil {
		t.Fatal("missing FS should error")
	}
	if _, err := OpenStore("x", StoreOptions{FS: vfs.NewMemFS(), Backend: "bogus"}); err == nil {
		t.Fatal("unknown backend should error")
	}
}

func TestStoreLargeValuesAcrossBarriers(t *testing.T) {
	for _, b := range backends() {
		t.Run(string(b), func(t *testing.T) {
			st := openTestStore(t, vfs.NewMemFS(), b)
			defer st.Close()
			// Values larger than the write buffer force rotations mid-put.
			big := bytes.Repeat([]byte("B"), 256<<10)
			for i := 0; i < 8; i++ {
				if err := st.Put(fmt.Sprintf("big-%d", i), big, false); err != nil {
					t.Fatal(err)
				}
			}
			st.WriteBarrier(true)
			for i := 0; i < 8; i++ {
				v, err := st.Get(fmt.Sprintf("big-%d", i))
				if err != nil || !bytes.Equal(v, big) {
					t.Fatalf("big-%d: %v", i, err)
				}
			}
		})
	}
}

func TestStoreScan(t *testing.T) {
	for _, b := range backends() {
		t.Run(string(b), func(t *testing.T) {
			st := openTestStore(t, vfs.NewMemFS(), b)
			defer st.Close()
			for i := 0; i < 20; i++ {
				st.Put(fmt.Sprintf("scan/%03d", i), []byte(fmt.Sprintf("v%d", i)), false)
			}
			st.Put("other/key", []byte("x"), false)
			st.Del("scan/005")
			var keys []string
			err := st.Scan("scan/", func(k string, v []byte) bool {
				keys = append(keys, k)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 19 {
				t.Fatalf("scanned %d keys: %v", len(keys), keys)
			}
			for i := 1; i < len(keys); i++ {
				if keys[i] <= keys[i-1] {
					t.Fatalf("scan out of order at %d: %v", i, keys)
				}
			}
			for _, k := range keys {
				if k == "scan/005" || k == "other/key" {
					t.Fatalf("unexpected key %s", k)
				}
			}
			// Early stop.
			count := 0
			st.Scan("scan/", func(string, []byte) bool { count++; return count < 5 })
			if count != 5 {
				t.Fatalf("early stop visited %d", count)
			}
		})
	}
}

func TestLevelStoreScanSeesBatchedWrites(t *testing.T) {
	st := openTestStore(t, vfs.NewMemFS(), BackendLevel)
	defer st.Close()
	st.StartBatch()
	st.Put("b/1", []byte("x"), false)
	st.Put("b/2", []byte("y"), false)
	found := 0
	if err := st.Scan("b/", func(string, []byte) bool { found++; return true }); err != nil {
		t.Fatal(err)
	}
	if found != 2 {
		t.Fatalf("scan saw %d batched keys", found)
	}
	st.StopBatch()
}
