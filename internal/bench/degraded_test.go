package bench

import "testing"

func TestExtDegradedFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank degradation sweep skipped in -short mode")
	}
	fig, ok := FigureByID("ext-degraded")
	if !ok {
		t.Fatal("ext-degraded missing from catalogue")
	}
	scale := Scale{Nodes: []int{1, 4}, PerRankBytes: 2 << 20, BufferSize: 512 << 10}
	var lines int
	fr, err := RunFigure(fig, scale, func(string) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	// 4 mode points + 2 p99 points per node count, one progress line each.
	if want := 6 * len(scale.Nodes); len(fr.Points) != want || lines != want {
		t.Fatalf("points=%d progress=%d, want %d", len(fr.Points), lines, want)
	}
	healthy, err := fr.BW("healthy", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := fr.BW("dead-1", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The dead-1 runner itself validates restore + scrub; here we only
	// require the run to stay usable, not collapse.
	if dead < 0.3*healthy {
		t.Fatalf("dead-1 %.1f MB/s collapsed vs healthy %.1f MB/s", dead/1e6, healthy/1e6)
	}
	hedged, err := fr.BW("slow-1", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	unhedged, err := fr.BW("slow-1-nohedge", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hedged < unhedged {
		t.Fatalf("hedging made the slow-OST run slower: %.1f vs %.1f MB/s",
			hedged/1e6, unhedged/1e6)
	}
	for _, o := range fr.Evaluate() {
		if o.Err != nil {
			t.Fatalf("check %q errored: %v", o.Desc, o.Err)
		}
	}
}
