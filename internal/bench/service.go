package bench

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/svc"
)

// The ext-service experiment drives the multi-tenant sharded service
// (internal/svc) over the simulated cluster: N well-behaved tenants
// checkpoint on a compute/commit cadence through the fabric front while
// one noisy tenant floods asynchronous puts with no barrier discipline,
// with fair-share admission on (weighted per-tenant token buckets) and
// off. The scale's node counts become tenant counts. Series, all
// expressed as effective bandwidth so the ratio checks compare
// latencies inverted:
//
//	fair-aggregate    behaved tenants' committed bytes over their
//	                  makespan, admission on
//	nofair-aggregate  the same with admission disabled
//	solo-p99          step bytes over the p99 per-step commit latency of
//	                  a tenant running alone (one point, at 1 tenant)
//	victim-fair       step bytes over the behaved tenants' p99 per-step
//	                  commit latency beside the noisy tenant, admission on
//	victim-nofair     the same with admission disabled
const (
	svcShards = 4 // shard pool size (constant across tenant counts)
	svcSteps  = 3 // checkpoint steps per behaved tenant
	svcBlocks = 16
	// svcDutyFactor is compute time per step in units of the solo p99
	// commit latency; it keeps the behaved tenants' aggregate demand
	// below the shard pool's capacity so that any p99 inflation they see
	// is caused by the noisy neighbor, not self-saturation.
	svcDutyFactor = 12
)

// ExtService is the multi-tenant checkpoint-service extension
// experiment.
func ExtService() Figure {
	f := Figure{
		ID:        "ext-service",
		Title:     "EXTENSION: multi-tenant sharded service, fair-share admission on/off",
		Transfers: []int64{kb64},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "fair-aggregate"},
			{Name: "nofair-aggregate"},
			{Name: "solo-p99"},
			{Name: "victim-fair"},
			{Name: "victim-nofair"},
			{Name: "fault-aggregate"},
		},
		Checks: []Check{
			{
				Desc: "aggregate committed throughput at max tenants ≥3× a single tenant (fair-share on)",
				Ratio: func(fr *FigureResult) (float64, error) {
					hi, err := fr.BW("fair-aggregate", kb64, 4, fr.MaxNodes())
					if err != nil {
						return 0, err
					}
					lo, err := fr.BW("fair-aggregate", kb64, 4, minNodes(fr))
					if err != nil {
						return 0, err
					}
					if lo == 0 {
						return 0, fmt.Errorf("bench: zero single-tenant aggregate")
					}
					return hi / lo, nil
				},
				Min: 3,
			},
			{
				Desc:  "behaved-tenant p99 commit ≤2× solo under a noisy neighbor (fair-share on, max tenants)",
				Ratio: ratioVsSolo("victim-fair"),
				Min:   0.5,
			},
			{
				Desc:  "fair-share admission improves (or at worst matches) the victim p99 vs no admission",
				Ratio: ratioAtMaxNodes("victim-fair", kb64, "victim-nofair", kb64, 4),
				Min:   1.0,
			},
			{
				Desc: "noisy tenant saturates its quota (typed retryable rejections observed, fair run)",
				Ratio: func(fr *FigureResult) (float64, error) {
					snap, ok := fr.Metrics["fair"]
					if !ok {
						return 0, fmt.Errorf("bench: no fair-run metrics")
					}
					return float64(snap.Counters["svc.tenant.noisy.quota_rejects"]), nil
				},
				Min: 1,
			},
			{
				Desc: "behaved-tenant availability ≥99% through a single-shard crash-restart cycle",
				Ratio: func(fr *FigureResult) (float64, error) {
					snap, ok := fr.Metrics["fault"]
					if !ok {
						return 0, fmt.Errorf("bench: no fault-run metrics")
					}
					total := snap.Counters["svc.bench.sla_total"]
					if total == 0 {
						return 0, fmt.Errorf("bench: fault run issued no requests")
					}
					return float64(snap.Counters["svc.bench.sla_ok"]) / float64(total), nil
				},
				Min: 0.99,
			},
			{
				Desc: "the supervisor recovered the crashed shard (restart observed, MTTR recorded)",
				Ratio: func(fr *FigureResult) (float64, error) {
					snap, ok := fr.Metrics["fault"]
					if !ok {
						return 0, fmt.Errorf("bench: no fault-run metrics")
					}
					return float64(snap.Counters["svc.supervisor.restarts"]), nil
				},
				Min: 1,
			},
		},
	}
	f.Custom = runServiceFigure
	return f
}

// minNodes returns the smallest tenant count measured.
func minNodes(fr *FigureResult) int {
	min := 0
	for _, p := range fr.Points {
		if min == 0 || p.Nodes < min {
			min = p.Nodes
		}
	}
	return min
}

// ratioVsSolo compares a victim series at max tenants against the solo
// baseline point (inverted p99s, so ≥0.5 means p99 ≤ 2× solo).
func ratioVsSolo(series string) func(*FigureResult) (float64, error) {
	return func(fr *FigureResult) (float64, error) {
		num, err := fr.BW(series, kb64, 4, fr.MaxNodes())
		if err != nil {
			return 0, err
		}
		den, err := fr.BW("solo-p99", kb64, 4, 1)
		if err != nil {
			return 0, err
		}
		if den == 0 {
			return 0, fmt.Errorf("bench: zero solo baseline")
		}
		return num / den, nil
	}
}

// svcRunResult is one service run's measurements.
type svcRunResult struct {
	p99      time.Duration // behaved tenants' p99 per-step commit stall
	agg      float64       // behaved committed bytes per second of makespan
	snapshot obs.Snapshot
}

func runServiceFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	stepBytes := scale.PerRankBytes

	// Solo baseline: one behaved tenant, no noisy neighbor, no caps.
	solo, err := runServiceRun(scale, 1, false, svc.AdmissionConfig{}, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("ext-service solo: %w", err)
	}
	fr.addMetrics("solo", solo.snapshot)
	fr.Points = append(fr.Points, Point{
		Series: "solo-p99", Transfer: kb64, StripeCount: 4, Nodes: 1,
		BW: float64(stepBytes) / solo.p99.Seconds(),
	})
	if progress != nil {
		progress(fmt.Sprintf("%s %-16s       p99=%10v", f.ID, "solo", solo.p99.Round(time.Microsecond)))
	}

	// Calibrate the load shape off the solo probe: a low duty cycle
	// keeps the behaved tenants' aggregate demand under the pool's
	// capacity, and the advertised service capacity grants every tenant
	// (the noisy one included) a fair share of twice its sustained
	// demand — enough headroom for bursts, tight enough that the noisy
	// tenant's flood hits its quota.
	compute := svcDutyFactor * solo.p99
	demand := float64(stepBytes) / (compute + solo.p99).Seconds()

	for _, tenants := range scale.Nodes {
		capacity := 2 * demand * float64(tenants+1)
		// MaxWait sits below one block's token time at a tenant's share
		// (~0.4× the solo p99), so a tenant pushing past its share gets
		// typed QuotaError rejections to back off on, not just smoothing
		// delays.
		adm := svc.AdmissionConfig{
			CapacityBytesPerSec: capacity,
			MaxWait:             solo.p99 / 4,
		}
		fair, err := runServiceRun(scale, tenants, true, adm, compute, capacity)
		if err != nil {
			return nil, fmt.Errorf("ext-service fair n=%d: %w", tenants, err)
		}
		nofair, err := runServiceRun(scale, tenants, true, svc.AdmissionConfig{Disabled: true}, compute, capacity)
		if err != nil {
			return nil, fmt.Errorf("ext-service nofair n=%d: %w", tenants, err)
		}
		fr.addMetrics("fair", fair.snapshot)
		fr.addMetrics("nofair", nofair.snapshot)
		for _, m := range []struct {
			series string
			bw     float64
		}{
			{"fair-aggregate", fair.agg},
			{"nofair-aggregate", nofair.agg},
			{"victim-fair", float64(stepBytes) / fair.p99.Seconds()},
			{"victim-nofair", float64(stepBytes) / nofair.p99.Seconds()},
		} {
			fr.Points = append(fr.Points, Point{
				Series: m.series, Transfer: kb64, StripeCount: 4, Nodes: tenants, BW: m.bw,
			})
		}
		if progress != nil {
			progress(fmt.Sprintf("%s n=%-2d  fair agg=%9.1f MB/s p99=%10v   nofair agg=%9.1f MB/s p99=%10v",
				f.ID, tenants, fair.agg/1e6, fair.p99.Round(time.Microsecond),
				nofair.agg/1e6, nofair.p99.Round(time.Microsecond)))
		}
	}

	// Under-fault panel: rerun the max tenant count with fair admission
	// and the shard supervisor enabled, crash one shard as the first
	// commit wave lands, and measure per-request availability while the
	// supervisor restarts it.
	maxTenants := scale.Nodes[len(scale.Nodes)-1]
	adm := svc.AdmissionConfig{
		CapacityBytesPerSec: 2 * demand * float64(maxTenants+1),
		MaxWait:             solo.p99 / 4,
	}
	fault, err := runServiceFaultRun(scale, maxTenants, adm, compute)
	if err != nil {
		return nil, fmt.Errorf("ext-service fault n=%d: %w", maxTenants, err)
	}
	fr.addMetrics("fault", fault.snapshot)
	fr.Points = append(fr.Points, Point{
		Series: "fault-aggregate", Transfer: kb64, StripeCount: 4, Nodes: maxTenants, BW: fault.agg,
	})
	if progress != nil {
		total := fault.snapshot.Counters["svc.bench.sla_total"]
		ok := fault.snapshot.Counters["svc.bench.sla_ok"]
		avail := 0.0
		if total > 0 {
			avail = float64(ok) / float64(total)
		}
		progress(fmt.Sprintf("%s n=%-2d fault agg=%9.1f MB/s avail=%6.2f%% restarts=%d",
			f.ID, maxTenants, fault.agg/1e6, 100*avail,
			fault.snapshot.Counters["svc.supervisor.restarts"]))
	}
	return fr, nil
}

// runServiceRun executes one service configuration: `behaved` tenants
// on a compute/commit cadence (plus, when noisy is set, one tenant
// offering un-barriered puts at noisyRate bytes/s — the full advertised
// service capacity, several times its fair share — for as long as any
// behaved tenant is still running, retrying quota rejections after the
// advertised delay) over a svcShards-shard pool hosted on the
// simulated cluster.
func runServiceRun(scale Scale, behaved int, noisy bool, adm svc.AdmissionConfig, compute time.Duration, noisyRate float64) (svcRunResult, error) {
	k := sim.NewKernel()
	clients := behaved + 1 // the last client node hosts the noisy tenant
	cluster := pfs.NewCluster(k, pfs.VikingConfig(clients+svcShards))
	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })

	var s *svc.Service
	var front *svc.Front
	var setupErr error
	k.Spawn("svc-setup", func(p *sim.Proc) {
		s, setupErr = svc.New(svc.Options{
			Shards: svcShards,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager(fmt.Sprintf("svc/shard%03d", i), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.Client(clients + i),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
					Obs:    reg,
				})
			},
			Kernel:    k,
			Obs:       reg,
			Admission: adm,
		})
		if setupErr != nil {
			return
		}
		nodes := make([]int, svcShards)
		for i := range nodes {
			nodes[i] = clients + i
		}
		front = svc.NewFront(s, cluster.Fabric(), nodes)
		// Every tenant gets weight 1 and a burst allowance of one full
		// checkpoint step, so a behaved tenant's commit burst is admitted
		// without delay while a sustained flood runs into its share.
		cfg := svc.TenantConfig{Weight: 1, BurstBytes: float64(scale.PerRankBytes)}
		for t := 0; t < behaved; t++ {
			if _, err := s.RegisterTenant(fmt.Sprintf("tenant%02d", t), cfg); err != nil {
				setupErr = err
				return
			}
		}
		if noisy {
			if _, err := s.RegisterTenant("noisy", cfg); err != nil {
				setupErr = err
			}
		}
	})
	if err := k.Run(); err != nil {
		return svcRunResult{}, err
	}
	if setupErr != nil {
		return svcRunResult{}, setupErr
	}

	block := make([]byte, stepBlockSize(scale))
	stalls := make([]time.Duration, 0, behaved*svcSteps)
	errs := make([]error, behaved+1)
	var makespan time.Duration
	// remaining counts behaved tenants still running; the simulator is
	// cooperative, so plain shared variables are race-free.
	remaining := behaved
	for t := 0; t < behaved; t++ {
		t := t
		k.Spawn(fmt.Sprintf("svc-tenant%02d", t), func(p *sim.Proc) {
			defer func() { remaining-- }()
			c := front.Connect(fmt.Sprintf("tenant%02d", t), t)
			// Stagger starts across one compute period: real jobs do not
			// checkpoint in lockstep, and a synchronized barrier herd
			// would measure queueing the service cannot influence.
			if off := compute * time.Duration(t) / time.Duration(behaved); off > 0 {
				p.Sleep(off)
			}
			for step := 0; step < svcSteps; step++ {
				if compute > 0 {
					p.Sleep(compute)
				}
				start := p.Now()
				for b := 0; b < svcBlocks; b++ {
					if err := c.Put(fmt.Sprintf("step%03d/block%03d", step, b), block); err != nil {
						errs[t] = err
						return
					}
				}
				if err := c.Barrier(); err != nil {
					errs[t] = err
					return
				}
				stalls = append(stalls, p.Now().Sub(start))
			}
			if end := p.Now().Duration(); end > makespan {
				makespan = end
			}
		})
	}
	if noisy {
		// The noisy tenant paces itself to its offered rate so the
		// no-admission arm models a greedy-but-finite client rather than
		// an unbounded queue.
		gap := time.Duration(float64(len(block)) / noisyRate * float64(time.Second))
		k.Spawn("svc-noisy", func(p *sim.Proc) {
			c := front.Connect("noisy", behaved)
			for sent := int64(0); remaining > 0; {
				err := c.Put(fmt.Sprintf("junk%08d", sent), block)
				if err != nil {
					if qe, ok := err.(*svc.QuotaError); ok {
						p.Sleep(qe.RetryAfter)
						continue
					}
					errs[behaved] = err
					return
				}
				sent += int64(len(block))
				p.Sleep(gap)
			}
		})
	}
	if err := k.Run(); err != nil {
		return svcRunResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return svcRunResult{}, err
		}
	}
	if len(stalls) == 0 || makespan <= 0 {
		return svcRunResult{}, fmt.Errorf("bench: service run measured nothing")
	}
	sort.Slice(stalls, func(i, j int) bool { return stalls[i] < stalls[j] })
	p99 := stalls[(len(stalls)*99+99)/100-1]
	committed := float64(behaved) * float64(svcSteps) * float64(scale.PerRankBytes)
	return svcRunResult{
		p99:      p99,
		agg:      committed / makespan.Seconds(),
		snapshot: cluster.Obs().Snapshot().Merge(reg.Snapshot()),
	}, nil
}

// runServiceFaultRun executes the under-fault arm of the service
// figure: `behaved` tenants on the usual compute/commit cadence, fair
// admission on, no noisy neighbor, and the shard supervisor enabled
// with a tight restart backoff. A chaos proc crashes shard 0 in the
// middle of the first commit wave; tenants retry typed transient
// failures (ShardDownError while the supervisor restarts the shard,
// quota smoothing, fabric hiccups) and a request counts toward
// availability when it completes within one compute period of its
// first attempt — a latency SLO about 12x the solo p99, so only
// fault-induced stalls miss it. A barrier that reports asynchronous
// write loss makes the tenant replay the whole step, mirroring how a
// real checkpoint client must re-offer data the service never made
// durable.
func runServiceFaultRun(scale Scale, behaved int, adm svc.AdmissionConfig, compute time.Duration) (svcRunResult, error) {
	k := sim.NewKernel()
	clients := behaved + 1
	cluster := pfs.NewCluster(k, pfs.VikingConfig(clients+svcShards))
	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })

	var s *svc.Service
	var front *svc.Front
	var setupErr error
	k.Spawn("svc-setup", func(p *sim.Proc) {
		s, setupErr = svc.New(svc.Options{
			Shards: svcShards,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager(fmt.Sprintf("svc/shard%03d", i), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.Client(clients + i),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
					Obs:    reg,
				})
			},
			Kernel:     k,
			Obs:        reg,
			Admission:  adm,
			Supervisor: svc.SupervisorConfig{RestartBackoff: 500 * time.Microsecond},
		})
		if setupErr != nil {
			return
		}
		nodes := make([]int, svcShards)
		for i := range nodes {
			nodes[i] = clients + i
		}
		front = svc.NewFront(s, cluster.Fabric(), nodes)
		cfg := svc.TenantConfig{Weight: 1, BurstBytes: float64(scale.PerRankBytes)}
		for t := 0; t < behaved; t++ {
			if _, err := s.RegisterTenant(fmt.Sprintf("tenant%02d", t), cfg); err != nil {
				setupErr = err
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		return svcRunResult{}, err
	}
	if setupErr != nil {
		return svcRunResult{}, setupErr
	}

	if compute <= 0 {
		compute = time.Millisecond
	}
	slo := compute
	slaTotal := reg.Counter("svc.bench.sla_total")
	slaOK := reg.Counter("svc.bench.sla_ok")
	// slaOp issues one logical request: retry typed transient failures
	// with a short pause, count the request as available when it
	// succeeds within the SLO of its first attempt. Write-loss reports
	// are returned to the caller (the step must be replayed, not the
	// barrier); non-typed errors abort the run.
	slaOp := func(p *sim.Proc, op func() error) error {
		slaTotal.Inc()
		start := p.Now().Duration()
		for {
			err := op()
			elapsed := p.Now().Duration() - start
			if err == nil {
				if elapsed <= slo {
					slaOK.Inc()
				}
				return nil
			}
			var wl *svc.WriteLossError
			if errors.As(err, &wl) {
				return err
			}
			if resil.Classify(err) != resil.ClassTransient || elapsed > 2*time.Second {
				return err
			}
			p.Sleep(200 * time.Microsecond)
		}
	}

	block := make([]byte, stepBlockSize(scale))
	stalls := make([]time.Duration, 0, behaved*svcSteps)
	errs := make([]error, behaved+1)
	var makespan time.Duration
	for t := 0; t < behaved; t++ {
		t := t
		k.Spawn(fmt.Sprintf("svc-tenant%02d", t), func(p *sim.Proc) {
			c := front.Connect(fmt.Sprintf("tenant%02d", t), t)
			if off := compute * time.Duration(t) / time.Duration(behaved); off > 0 {
				p.Sleep(off)
			}
			for step := 0; step < svcSteps; step++ {
				p.Sleep(compute)
				start := p.Now()
			replay:
				for {
					for b := 0; b < svcBlocks; b++ {
						key := fmt.Sprintf("step%03d/block%03d", step, b)
						if err := slaOp(p, func() error { return c.Put(key, block) }); err != nil {
							errs[t] = err
							return
						}
					}
					err := slaOp(p, c.Barrier)
					var wl *svc.WriteLossError
					if errors.As(err, &wl) {
						continue replay
					}
					if err != nil {
						errs[t] = err
						return
					}
					break
				}
				stalls = append(stalls, p.Now().Sub(start))
			}
			if end := p.Now().Duration(); end > makespan {
				makespan = end
			}
		})
	}
	// The chaos proc crashes shard 0 when the staggered commit waves are
	// in full swing (tenant t commits around compute*(1+t/behaved), so
	// 1.5 compute periods lands mid-spread) and the supervisor must
	// recover it while requests are arriving.
	k.Spawn("svc-bench-chaos", func(p *sim.Proc) {
		p.Sleep(compute + compute/2)
		errs[behaved] = s.CrashShard(0)
	})
	if err := k.Run(); err != nil {
		return svcRunResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return svcRunResult{}, err
		}
	}
	if len(stalls) == 0 || makespan <= 0 {
		return svcRunResult{}, fmt.Errorf("bench: service fault run measured nothing")
	}
	sort.Slice(stalls, func(i, j int) bool { return stalls[i] < stalls[j] })
	committed := float64(behaved) * float64(svcSteps) * float64(scale.PerRankBytes)
	return svcRunResult{
		p99:      stalls[(len(stalls)*99+99)/100-1],
		agg:      committed / makespan.Seconds(),
		snapshot: cluster.Obs().Snapshot().Merge(reg.Snapshot()),
	}, nil
}

func stepBlockSize(scale Scale) int64 {
	b := scale.PerRankBytes / svcBlocks
	if b <= 0 {
		b = 1
	}
	return b
}
