package bench

import "testing"

func TestExtServiceFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant service sweep skipped in -short mode")
	}
	fig, ok := FigureByID("ext-service")
	if !ok {
		t.Fatal("ext-service missing from catalogue")
	}
	scale := Scale{Nodes: []int{1, 4}, PerRankBytes: 2 << 20, BufferSize: 512 << 10}
	fr, err := RunFigure(fig, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One solo point, four series per tenant count, one fault point.
	if want := 1 + 4*len(scale.Nodes) + 1; len(fr.Points) != want {
		t.Fatalf("points=%d, want %d", len(fr.Points), want)
	}
	agg1, err := fr.BW("fair-aggregate", kb64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg4, err := fr.BW("fair-aggregate", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The full ≥3× acceptance bar belongs to the 8-tenant run; at this
	// reduced scale aggregate throughput must still clearly scale.
	if agg4 < 2*agg1 {
		t.Fatalf("aggregate did not scale: %.1f MB/s at 4 tenants vs %.1f at 1", agg4/1e6, agg1/1e6)
	}
	// The throttled flood must produce typed retryable rejections.
	snap, ok := fr.Metrics["fair"]
	if !ok {
		t.Fatal("no fair-run metrics recorded")
	}
	if snap.Counters["svc.tenant.noisy.quota_rejects"] == 0 {
		t.Fatal("noisy tenant never hit its quota")
	}
	if snap.Counters["svc.tenant.noisy.bytes_in"] == 0 || snap.Counters["svc.tenant.tenant00.ops"] == 0 {
		t.Fatal("per-tenant counters missing from snapshot")
	}
	// The under-fault panel: the supervisor must have recovered the
	// crashed shard while the SLA accounting saw requests on both sides
	// of the crash.
	fsnap, ok := fr.Metrics["fault"]
	if !ok {
		t.Fatal("no fault-run metrics recorded")
	}
	if fsnap.Counters["svc.supervisor.restarts"] == 0 {
		t.Fatal("fault run: supervisor never restarted the crashed shard")
	}
	if fsnap.Counters["svc.bench.sla_total"] == 0 {
		t.Fatal("fault run: no SLA-accounted requests")
	}
	for _, o := range fr.Evaluate() {
		if o.Err != nil {
			t.Fatalf("check %q errored: %v", o.Desc, o.Err)
		}
	}
}
