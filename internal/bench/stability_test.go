package bench

import "testing"

// TestExtStabilityFigureRuns runs the sustained-load A/B at quick scale
// and asserts the full stability gate: the scheduler must cut windowed
// throughput variance and p999 drift, keep the mean-throughput cost
// within 5%, and improve the storm-phase commit p99. This is the same
// bar `make stability-smoke` enforces via the figure's shape checks.
func TestExtStabilityFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load stability sweep skipped in -short mode")
	}
	fig, ok := FigureByID("ext-stability")
	if !ok {
		t.Fatal("ext-stability missing from catalogue")
	}
	fr, err := RunFigure(fig, QuickScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fig.Series); len(fr.Points) != want {
		t.Fatalf("points=%d, want %d", len(fr.Points), want)
	}
	for _, key := range []string{"sched-on", "sched-off"} {
		if _, ok := fr.Metrics[key]; !ok {
			t.Fatalf("figure metrics missing %q snapshot", key)
		}
	}
	if _, ok := fr.Metrics["sched-on"].Counters["iosched.foreground.grants"]; !ok {
		t.Fatal("sched-on metrics carry no iosched instruments")
	}
	for _, o := range fr.Evaluate() {
		if o.Err != nil {
			t.Fatalf("check %q errored: %v", o.Desc, o.Err)
		}
		if !o.Passed {
			t.Errorf("check %q failed: got %.3f, want [%.2f, %.2f]", o.Desc, o.Got, o.Min, o.Max)
		}
	}
}
