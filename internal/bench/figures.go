package bench

import (
	"fmt"

	"lsmio/internal/ior"
	"lsmio/internal/pfs"
)

// The figure catalogue: one Figure per evaluation figure in the paper,
// with the series the paper plots and shape checks from its text.

const (
	kb64 = 64 << 10
	mb1  = 1 << 20
)

// ratioAtMaxNodes builds a Check.Ratio comparing two series at the
// largest node count.
func ratioAtMaxNodes(numSeries string, numXfer int64, denSeries string, denXfer int64, stripe int) func(*FigureResult) (float64, error) {
	return func(fr *FigureResult) (float64, error) {
		n := fr.MaxNodes()
		num, err := fr.BW(numSeries, numXfer, stripe, n)
		if err != nil {
			return 0, err
		}
		den, err := fr.BW(denSeries, denXfer, stripe, n)
		if err != nil {
			return 0, err
		}
		if den == 0 {
			return 0, fmt.Errorf("bench: zero denominator for %s", denSeries)
		}
		return num / den, nil
	}
}

// Fig5 compares the IOR baseline to LSMIO (stripe count 4, 64K and 1M).
func Fig5() Figure {
	return Figure{
		ID:        "fig5",
		Title:     "IOR baseline vs LSMIO write bandwidth",
		Transfers: []int64{kb64, mb1},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "ior", Make: plain(ior.APIPosix)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
		Checks: []Check{
			{
				Desc:  "LSMIO over IOR baseline at max nodes (64K)",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "ior", kb64, 4),
				Min:   8, Paper: 23.1,
			},
			{
				Desc: "IOR collapse past the stripe count (peak over max-nodes, 64K)",
				Ratio: func(fr *FigureResult) (float64, error) {
					peak := fr.PeakBW("ior", kb64, 4)
					atMax, err := fr.BW("ior", kb64, 4, fr.MaxNodes())
					if err != nil {
						return 0, err
					}
					return peak / atMax, nil
				},
				Min: 3, Paper: 6.2,
			},
			{
				Desc:  "IOR 1M over 64K at max nodes",
				Ratio: ratioAtMaxNodes("ior", mb1, "ior", kb64, 4),
				Min:   2, Paper: 4.9,
			},
			{
				Desc: "LSMIO keeps scaling: max-nodes over single-node (64K)",
				Ratio: func(fr *FigureResult) (float64, error) {
					one, err := fr.BW("lsmio", kb64, 4, fr.Points[0].Nodes)
					if err != nil {
						return 0, err
					}
					atMax, err := fr.BW("lsmio", kb64, 4, fr.MaxNodes())
					if err != nil {
						return 0, err
					}
					return atMax / one, nil
				},
				Min: 2, Paper: 0,
			},
		},
	}
}

// Fig6 compares HDF5 and ADIOS2 to LSMIO.
func Fig6() Figure {
	return Figure{
		ID:        "fig6",
		Title:     "HDF5 and ADIOS2 vs LSMIO write bandwidth",
		Transfers: []int64{kb64, mb1},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "hdf5", Make: plain(ior.APIHDF5)},
			{Name: "adios2", Make: plain(ior.APIADIOS2)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
		Checks: []Check{
			{
				Desc:  "LSMIO over ADIOS2 at max nodes (64K)",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "adios2", kb64, 4),
				Min:   1.3, Max: 8, Paper: 2.4,
			},
			{
				Desc:  "LSMIO over HDF5 at max nodes (64K)",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "hdf5", kb64, 4),
				Min:   20, Paper: 76.7,
			},
			{
				Desc:  "ADIOS2 over HDF5 at max nodes (64K)",
				Ratio: ratioAtMaxNodes("adios2", kb64, "hdf5", kb64, 4),
				Min:   8, Paper: 35.3,
			},
		},
	}
}

// Fig7 compares ADIOS2, the LSMIO plugin and LSMIO directly.
func Fig7() Figure {
	return Figure{
		ID:        "fig7",
		Title:     "ADIOS2 vs LSMIO plugin vs LSMIO baseline write bandwidth",
		Transfers: []int64{kb64, mb1},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "adios2", Make: plain(ior.APIADIOS2)},
			{Name: "lsmio-plugin", Make: plain(ior.APILSMIOPlugin)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
		Checks: []Check{
			{
				Desc:  "plugin over ADIOS2 at max nodes (64K)",
				Ratio: ratioAtMaxNodes("lsmio-plugin", kb64, "adios2", kb64, 4),
				Min:   1.05, Max: 4, Paper: 1.5,
			},
			{
				Desc:  "LSMIO over plugin at max nodes (64K)",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "lsmio-plugin", kb64, 4),
				Min:   1.05, Max: 4, Paper: 1.5,
			},
		},
	}
}

// Fig8 repeats Fig7's trio at stripe counts 4 and 16, 64K.
func Fig8() Figure {
	f := Figure{
		ID:           "fig8",
		Title:        "ADIOS2 vs LSMIO plugin vs LSMIO, stripe counts 4 and 16",
		Transfers:    []int64{kb64},
		StripeCounts: []int{4, 16},
		Phase:        PhaseWrite,
		Series: []Series{
			{Name: "adios2", Make: plain(ior.APIADIOS2)},
			{Name: "lsmio-plugin", Make: plain(ior.APILSMIOPlugin)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
	}
	f.Checks = []Check{
		{
			Desc:  "ordering holds at stripe count 16: LSMIO over plugin",
			Ratio: ratioAtMaxNodes("lsmio", kb64, "lsmio-plugin", kb64, 16),
			Min:   1.0, Max: 5, Paper: 1.5,
		},
		{
			Desc:  "ordering holds at stripe count 16: plugin over ADIOS2",
			Ratio: ratioAtMaxNodes("lsmio-plugin", kb64, "adios2", kb64, 16),
			Min:   1.0, Max: 5, Paper: 1.5,
		},
	}
	return f
}

// Fig9 brings in collective I/O for the IOR baseline and HDF5.
func Fig9() Figure {
	return Figure{
		ID:        "fig9",
		Title:     "IOR and HDF5 with collective I/O vs LSMIO write bandwidth",
		Transfers: []int64{kb64},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "ior", Make: plain(ior.APIPosix)},
			{Name: "ior-col", Make: collective(ior.APIPosix)},
			{Name: "hdf5", Make: plain(ior.APIHDF5)},
			{Name: "hdf5-col", Make: collective(ior.APIHDF5)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
		Checks: []Check{
			{
				Desc:  "collective IOR over IOR baseline at max nodes",
				Ratio: ratioAtMaxNodes("ior-col", kb64, "ior", kb64, 4),
				Min:   3, Paper: 12.1,
			},
			{
				Desc:  "LSMIO over collective IOR at max nodes",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "ior-col", kb64, 4),
				Min:   1.2, Max: 12, Paper: 2.2,
			},
			{
				Desc: "collective HDF5 helps at low node counts",
				Ratio: func(fr *FigureResult) (float64, error) {
					n := fr.Points[0].Nodes // smallest swept count
					col, err := fr.BW("hdf5-col", kb64, 4, n)
					if err != nil {
						return 0, err
					}
					base, err := fr.BW("hdf5", kb64, 4, n)
					if err != nil {
						return 0, err
					}
					return col / base, nil
				},
				Min: 0.9, Paper: 2.0,
			},
		},
	}
}

// Fig10 is the read benchmark.
func Fig10() Figure {
	return Figure{
		ID:        "fig10",
		Title:     "Read bandwidth: IOR ± collective, HDF5, ADIOS2, LSMIO, plugin",
		Transfers: []int64{kb64},
		Phase:     PhaseRead,
		Series: []Series{
			{Name: "ior", Make: plain(ior.APIPosix)},
			{Name: "ior-col", Make: collective(ior.APIPosix)},
			{Name: "hdf5", Make: plain(ior.APIHDF5)},
			{Name: "adios2", Make: plain(ior.APIADIOS2)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
			{Name: "lsmio-plugin", Make: plain(ior.APILSMIOPlugin)},
		},
		Checks: []Check{
			{
				Desc:  "ADIOS2 reads fastest: ADIOS2 over LSMIO at max nodes",
				Ratio: ratioAtMaxNodes("adios2", kb64, "lsmio", kb64, 4),
				Min:   1.0, Max: 3, Paper: 1.3, // paper: LSMIO within 23.3% of ADIOS2 on average
			},
			{
				Desc:  "LSMIO over IOR baseline read at max nodes",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "ior", kb64, 4),
				Min:   2, Paper: 5.5,
			},
			{
				Desc:  "IOR over HDF5 read at max nodes",
				Ratio: ratioAtMaxNodes("ior", kb64, "hdf5", kb64, 4),
				Min:   10, Paper: 125.2,
			},
			{
				Desc:  "collective I/O hurts IOR reads: baseline over collective",
				Ratio: ratioAtMaxNodes("ior", kb64, "ior-col", kb64, 4),
				Min:   3, Paper: 18.6,
			},
			{
				Desc:  "LSMIO over HDF5 read at max nodes",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "hdf5", kb64, 4),
				Min:   50, Paper: 687.2,
			},
		},
	}
}

// ExtNVMe is an extension experiment beyond the paper (its §5.1 future
// work asks how differently constructed file systems change the picture):
// the Fig5 comparison re-run on an NVMe-tier Lustre. Prediction encoded
// in the checks: the IOR N-to-1 collapse persists (extent-lock migration
// is a file-system property, not a media property), so LSMIO keeps a
// solid advantage, but the seek-free flash narrows its margin.
func ExtNVMe() Figure {
	return Figure{
		ID:        "ext-nvme",
		Title:     "EXTENSION: IOR baseline vs LSMIO on an NVMe-tier file system",
		Transfers: []int64{kb64},
		Phase:     PhaseWrite,
		Cluster:   pfs.NVMeConfig,
		Series: []Series{
			{Name: "ior", Make: plain(ior.APIPosix)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
		Checks: []Check{
			{
				Desc:  "lock-driven IOR collapse persists on flash: LSMIO over IOR at max nodes",
				Ratio: ratioAtMaxNodes("lsmio", kb64, "ior", kb64, 4),
				Min:   2, Paper: 0,
			},
			{
				Desc: "IOR still drops past the stripe count on flash",
				Ratio: func(fr *FigureResult) (float64, error) {
					peak := fr.PeakBW("ior", kb64, 4)
					atMax, err := fr.BW("ior", kb64, 4, fr.MaxNodes())
					if err != nil {
						return 0, err
					}
					return peak / atMax, nil
				},
				Min: 1.5, Paper: 0,
			},
		},
	}
}

// Figures returns the full catalogue in paper order, plus extensions.
func Figures() []Figure {
	return []Figure{Fig5(), Fig6(), Fig7(), Fig8(), Fig9(), Fig10(), ExtNVMe(), ExtBurst(), ExtDegraded(), ExtCompaction(), ExtRestore(), ExtService(), ExtPipeline(), ExtStability()}
}

// FigureByID finds one figure ("fig5" ... "fig10").
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}
