package bench

import (
	"bytes"
	"fmt"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// The ext-restore experiment measures the READ side of checkpointing:
// every rank restores its newest step through the self-healing restore
// pipeline, and the figure plots effective restore bandwidth vs nodes
// under four regimes:
//
//	serial     healthy PFS, one reader per rank (the pre-pipeline path)
//	parallel-4 healthy PFS, four shard-parallel readers per rank
//	dead-1     one OST fail-stopped before the restore; parity
//	           reconstruction serves degraded reads, four readers
//	delta-4    four readers with half of each rank's variables already
//	           present in a local snapshot (incremental restore)
//
// Each rank's manager records into the cluster's shared obs registry,
// so the per-regime metrics snapshots embed the ckpt restore latency
// histogram (p50/p99) next to the pfs counters.
const (
	restoreSteps  = 2 // committed steps per rank; restore reads the newest
	restoreVars   = 8 // variables per step (the unit of read parallelism)
	restoreVictim = 0 // the OST that dies in dead-1
)

// ExtRestore is the parallel verified-restore extension experiment.
func ExtRestore() Figure {
	f := Figure{
		ID:        "ext-restore",
		Title:     "EXTENSION: restore bandwidth, healthy vs one OST dead (parallel verified reads)",
		Transfers: []int64{kb64},
		Phase:     PhaseRead,
		Series: []Series{
			{Name: "serial"},
			{Name: "parallel-4"},
			{Name: "dead-1"},
			{Name: "delta-4"},
		},
		Checks: []Check{
			{
				// Measured at the smallest node count: with many ranks
				// restoring at once, cross-rank concurrency already
				// saturates the OSTs and per-rank reader parallelism is
				// (correctly) marginal; uncontended is where the worker
				// pool itself is visible.
				Desc: "parallel restore beats serial at 4 readers (min nodes)",
				Ratio: func(fr *FigureResult) (float64, error) {
					n := fr.Points[0].Nodes
					num, err := fr.BW("parallel-4", kb64, 4, n)
					if err != nil {
						return 0, err
					}
					den, err := fr.BW("serial", kb64, 4, n)
					if err != nil {
						return 0, err
					}
					if den == 0 {
						return 0, fmt.Errorf("bench: zero serial restore bandwidth")
					}
					return num / den, nil
				},
				Min: 1.3, Paper: 0,
			},
			{
				Desc:  "parity keeps restores flowing with one OST dead: dead-1 over parallel-4 at max nodes",
				Ratio: ratioAtMaxNodes("dead-1", kb64, "parallel-4", kb64, 4),
				Min:   0.4, Paper: 0,
			},
			{
				Desc:  "delta restore at least matches a full parallel restore (max nodes)",
				Ratio: ratioAtMaxNodes("delta-4", kb64, "parallel-4", kb64, 4),
				Min:   1.0, Paper: 0,
			},
		},
	}
	f.Custom = runRestoreFigure
	return f
}

// restoreMode is one regime of the sweep.
type restoreMode struct {
	name     string
	parallel int
	dead     bool // fail-stop the victim between write and restore
	delta    bool // prime half the variables in a local snapshot
}

func runRestoreFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	modes := []restoreMode{
		{name: "serial", parallel: 1},
		{name: "parallel-4", parallel: 4},
		{name: "dead-1", parallel: 4, dead: true},
		{name: "delta-4", parallel: 4, delta: true},
	}
	for _, nodes := range scale.Nodes {
		for _, m := range modes {
			elapsed, snap, err := runRestoreMode(nodes, scale, m)
			if err != nil {
				return nil, fmt.Errorf("ext-restore %s n=%d: %w", m.name, nodes, err)
			}
			fr.addMetrics(m.name, snap)
			if elapsed <= 0 {
				return nil, fmt.Errorf("ext-restore %s n=%d: zero restore time", m.name, nodes)
			}
			bytes := float64(int64(nodes) * scale.PerRankBytes)
			fr.Points = append(fr.Points, Point{
				Series:      m.name,
				Transfer:    kb64,
				StripeCount: 4,
				Nodes:       nodes,
				BW:          bytes / elapsed.Seconds(),
			})
			if progress != nil {
				progress(fmt.Sprintf("%s %-11s n=%-2d  %10v  (%9.1f MB/s effective)",
					f.ID, m.name, nodes, elapsed.Round(time.Microsecond), bytes/elapsed.Seconds()/1e6))
			}
		}
	}
	return fr, nil
}

// runRestoreMode writes restoreSteps checkpoints per rank, optionally
// kills an OST, then restores every rank's newest step through the
// pipeline and returns the restore phase's virtual elapsed time plus a
// metrics snapshot (pfs + ckpt restore latency quantiles).
func runRestoreMode(nodes int, scale Scale, m restoreMode) (time.Duration, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, degradedClusterConfig(nodes))
	cluster.EnableResilience(pfs.Resilience{Hedge: true, Parity: true})

	errs := make([]error, nodes)
	mgrs := make([]*core.Manager, nodes)
	stores := make([]*ckpt.Store, nodes)
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("res-write%02d", r), func(p *sim.Proc) {
			errs[r] = func() error {
				mgr, err := core.NewManager(fmt.Sprintf("res/rank%03d", r), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.ResilientClient(r),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
					Obs:    cluster.Obs(),
				})
				if err != nil {
					return err
				}
				mgrs[r] = mgr
				stores[r] = ckpt.New(mgr, ckpt.Options{})
				for step := int64(1); step <= restoreSteps; step++ {
					w, err := stores[r].Begin(step)
					if err != nil {
						return err
					}
					for v := 0; v < restoreVars; v++ {
						name := fmt.Sprintf("var%02d", v)
						if err := w.Write(name, degradedPayload(step, v, scale.PerRankBytes/restoreVars)); err != nil {
							return err
						}
					}
					if err := w.Commit(); err != nil {
						return err
					}
				}
				return nil
			}()
		})
	}
	if err := k.Run(); err != nil {
		return 0, obs.Snapshot{}, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, obs.Snapshot{}, err
		}
	}

	if m.dead {
		cluster.SetOSTHealth(restoreVictim, pfs.OSTDead, 0)
	}

	// Restore phase: measured from here to the last rank's completion.
	base := k.Now().Duration()
	var latest time.Duration
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("res-restore%02d", r), func(p *sim.Proc) {
			errs[r] = func() error {
				opts := ckpt.RestoreOptions{Parallel: m.parallel}
				if m.delta {
					opts.Local = make(map[string][]byte, restoreVars/2)
					for v := 0; v < restoreVars/2; v++ {
						opts.Local[fmt.Sprintf("var%02d", v)] =
							degradedPayload(restoreSteps, v, scale.PerRankBytes/restoreVars)
					}
				}
				step, state, rep, err := stores[r].Restore(opts)
				if err != nil {
					return fmt.Errorf("rank %d restore: %w", r, err)
				}
				if step != restoreSteps {
					return fmt.Errorf("rank %d restored step %d, want %d", r, step, restoreSteps)
				}
				for v := 0; v < restoreVars; v++ {
					name := fmt.Sprintf("var%02d", v)
					want := degradedPayload(step, v, scale.PerRankBytes/restoreVars)
					if !bytes.Equal(state[name], want) {
						return fmt.Errorf("rank %d %s corrupted after restore", r, name)
					}
				}
				if m.delta && rep.DeltaVars != restoreVars/2 {
					return fmt.Errorf("rank %d delta reuse: %d vars, want %d", r, rep.DeltaVars, restoreVars/2)
				}
				if end := p.Now().Duration(); end > latest {
					latest = end
				}
				return nil
			}()
		})
	}
	if err := k.Run(); err != nil {
		return 0, obs.Snapshot{}, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, obs.Snapshot{}, err
		}
	}
	snap := cluster.Obs().Snapshot()

	var cErr error
	k.Spawn("res-close", func(p *sim.Proc) {
		for _, mgr := range mgrs {
			if mgr == nil {
				continue
			}
			if err := mgr.Close(); err != nil && cErr == nil {
				cErr = err
			}
		}
	})
	if err := k.Run(); err != nil {
		return 0, obs.Snapshot{}, err
	}
	if cErr != nil {
		return 0, obs.Snapshot{}, cErr
	}
	return latest - base, snap, nil
}
