package bench

import (
	"strings"
	"testing"

	"lsmio/internal/ior"
)

func tinyScale() Scale {
	return Scale{Nodes: []int{1, 2}, PerRankBytes: 256 << 10, BufferSize: 128 << 10}
}

func TestFigureCatalogueComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ext-nvme", "ext-burst", "ext-degraded", "ext-compaction", "ext-restore", "ext-service", "ext-pipeline", "ext-stability"}
	figs := Figures()
	if len(figs) != len(want) {
		t.Fatalf("%d figures, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Fatalf("figure %d = %s, want %s", i, figs[i].ID, id)
		}
		if len(figs[i].Series) == 0 || len(figs[i].Transfers) == 0 {
			t.Fatalf("figure %s has no series/transfers", id)
		}
	}
	if _, ok := FigureByID("fig9"); !ok {
		t.Fatal("FigureByID failed")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Fatal("FigureByID matched garbage")
	}
}

func TestRunFigureProducesAllPoints(t *testing.T) {
	fig := Figure{
		ID:        "test",
		Title:     "smoke",
		Transfers: []int64{64 << 10},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "ior", Make: plain(ior.APIPosix)},
			{Name: "lsmio", Make: plain(ior.APILSMIO)},
		},
	}
	var progressLines int
	fr, err := RunFigure(fig, tinyScale(), func(string) { progressLines++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) != 4 { // 2 series x 2 node counts
		t.Fatalf("points = %d", len(fr.Points))
	}
	if progressLines != 4 {
		t.Fatalf("progress lines = %d", progressLines)
	}
	for _, p := range fr.Points {
		if p.BW <= 0 {
			t.Fatalf("point %+v has no bandwidth", p)
		}
	}
	if bw, err := fr.BW("ior", 64<<10, 4, 2); err != nil || bw <= 0 {
		t.Fatalf("BW lookup: %v %v", bw, err)
	}
	if _, err := fr.BW("bogus", 0, 0, 2); err == nil {
		t.Fatal("BW lookup of missing series should error")
	}
	if fr.MaxNodes() != 2 {
		t.Fatalf("MaxNodes = %d", fr.MaxNodes())
	}
	if fr.PeakBW("lsmio", 0, 0) <= 0 {
		t.Fatal("PeakBW = 0")
	}
}

func TestTableAndCSVRender(t *testing.T) {
	fig := Figure{
		ID:        "render",
		Title:     "render test",
		Transfers: []int64{64 << 10},
		Phase:     PhaseWrite,
		Series:    []Series{{Name: "ior", Make: plain(ior.APIPosix)}},
	}
	fr, err := RunFigure(fig, tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	table := fr.Table()
	if !strings.Contains(table, "render test") || !strings.Contains(table, "ior") {
		t.Fatalf("table:\n%s", table)
	}
	csv := fr.CSV()
	if !strings.Contains(csv, "figure,series,") || strings.Count(csv, "\n") != 3 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestChecksEvaluate(t *testing.T) {
	fig := Figure{
		ID:        "checks",
		Title:     "check eval",
		Transfers: []int64{64 << 10},
		Phase:     PhaseWrite,
		Series:    []Series{{Name: "ior", Make: plain(ior.APIPosix)}},
		Checks: []Check{
			{
				Desc:  "trivially true",
				Ratio: ratioAtMaxNodes("ior", 64<<10, "ior", 64<<10, 4),
				Min:   0.99, Max: 1.01, Paper: 1,
			},
			{
				Desc:  "missing series errors",
				Ratio: ratioAtMaxNodes("ghost", 64<<10, "ior", 64<<10, 4),
				Min:   1,
			},
		},
	}
	fr, err := RunFigure(fig, tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := fr.Evaluate()
	if len(out) != 2 {
		t.Fatalf("outcomes = %d", len(out))
	}
	if !out[0].Passed || out[0].Err != nil {
		t.Fatalf("check 0: %+v", out[0])
	}
	if out[1].Err == nil {
		t.Fatal("check 1 should error")
	}
}

func TestScalesAreSane(t *testing.T) {
	p := PaperScale()
	if p.Nodes[len(p.Nodes)-1] != 48 {
		t.Fatalf("paper scale max nodes = %d", p.Nodes[len(p.Nodes)-1])
	}
	q := QuickScale()
	if q.PerRankBytes >= p.PerRankBytes {
		t.Fatal("quick scale should be smaller than paper scale")
	}
	if p.PerRankBytes%(1<<20) != 0 {
		t.Fatal("per-rank bytes must be transfer-aligned")
	}
}
