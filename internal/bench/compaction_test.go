package bench

import "testing"

func TestExtCompactionFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction pipeline sweep skipped in -short mode")
	}
	fig, ok := FigureByID("ext-compaction")
	if !ok {
		t.Fatal("ext-compaction missing from catalogue")
	}
	scale := Scale{Nodes: []int{1, 4}, PerRankBytes: 2 << 20, BufferSize: 512 << 10}
	var lines int
	fr, err := RunFigure(fig, scale, func(string) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 3; len(fr.Points) != want || lines != want {
		t.Fatalf("points=%d progress=%d, want %d", len(fr.Points), lines, want)
	}
	four, err := fr.BW("lsm-jobs", compValueSize, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	one, err := fr.BW("lsm-jobs", compValueSize, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The full ≥1.3× acceptance bar belongs to the paper-scale run; at
	// this reduced scale the parallel pool must still come out ahead.
	if four < 1.05*one {
		t.Fatalf("4-job throughput %.1f MB/s not ahead of single-job %.1f MB/s",
			four/1e6, one/1e6)
	}
	smooth, err := fr.BW("put-p99-smooth", compValueSize, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := fr.BW("put-p99-hard", compValueSize, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if smooth < hard {
		t.Fatalf("smoothing worsened p99: smooth %.1f vs hard %.1f MB/s effective",
			smooth/1e6, hard/1e6)
	}
	for _, o := range fr.Evaluate() {
		if o.Err != nil {
			t.Fatalf("check %q errored: %v", o.Desc, o.Err)
		}
	}
}
