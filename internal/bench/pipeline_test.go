package bench

import "testing"

func TestExtPipelineFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep skipped in -short mode")
	}
	fig, ok := FigureByID("ext-pipeline")
	if !ok {
		t.Fatal("ext-pipeline missing from catalogue")
	}
	scale := Scale{Nodes: []int{1, 4}, PerRankBytes: 1 << 20, BufferSize: 256 << 10}
	var lines int
	fr, err := RunFigure(fig, scale, func(string) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	// 1 flush-serial + 3 flush-piped + 1 io-busy + 2 compact + 2 wal +
	// 1 wal-group-size.
	if want := 10; len(fr.Points) != want || lines != want {
		t.Fatalf("points=%d progress=%d, want %d", len(fr.Points), lines, want)
	}
	piped, err := fr.BW("flush-piped", pipeValueSize, 4, pipeEncodeWorkers)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := fr.BW("flush-serial", pipeValueSize, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The full ≥1.3× acceptance bar belongs to the quick/paper-scale run
	// (make pipeline-smoke); at test scale just require a real speedup.
	if piped <= serial {
		t.Fatalf("piped flush (%.1f MB/s) not faster than serial (%.1f MB/s)", piped/1e6, serial/1e6)
	}
	cohort, err := fr.BW("wal-group-size", pipeValueSize, 4, pipeWALWriters)
	if err != nil {
		t.Fatal(err)
	}
	if cohort < 2 {
		t.Fatalf("mean WAL cohort %.2f, want >= 2", cohort)
	}
	for _, key := range []string{"flush-serial", "wal-grouped"} {
		snap, ok := fr.Metrics[key]
		if !ok || snap.Empty() {
			t.Fatalf("figure JSON would miss the %s registry snapshot", key)
		}
	}
}
