package bench

import (
	"fmt"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/burst"
	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// The ext-burst experiment drives the ckpt layer directly instead of
// IOR: every rank checkpoints through a direct PFS-backed store
// (synchronous commit) and through a burst-buffer staging tier with a
// background drain, under an identical compute/checkpoint cadence. Four
// series result, all expressed as effective bandwidth (bytes moved per
// second of the series' latency metric) so the harness's ratio checks
// compare latencies inverted:
//
//	sync          per-rank time blocked in synchronous Commit
//	sync-total    end-to-end time of the synchronous run
//	burst-staged  per-rank time blocked in staged Commit
//	burst-durable end-to-end time until the tier reports durable
const (
	burstSteps = 2 // checkpoint steps per rank
	burstVars  = 8 // variables per step
)

// ExtBurst is the burst-buffer staging extension experiment.
func ExtBurst() Figure {
	f := Figure{
		ID:        "ext-burst",
		Title:     "EXTENSION: synchronous commit vs burst-buffer staging with async drain",
		Transfers: []int64{kb64},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "sync"},
			{Name: "sync-total"},
			{Name: "burst-staged"},
			{Name: "burst-durable"},
		},
		Checks: []Check{
			{
				Desc:  "staged commit stall ≥5× lower than synchronous commit at max nodes",
				Ratio: ratioAtMaxNodes("burst-staged", kb64, "sync", kb64, 4),
				Min:   5, Paper: 0,
			},
			{
				Desc:  "time-to-durable within ~1.2× of the synchronous total at max nodes",
				Ratio: ratioAtMaxNodes("burst-durable", kb64, "sync-total", kb64, 4),
				Min:   1.0 / 1.2, Paper: 0,
			},
		},
	}
	f.Custom = runBurstFigure
	return f
}

func runBurstFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	for _, nodes := range scale.Nodes {
		// Calibrate the compute phase per node count: 1.2× the probe's
		// per-step synchronous stall, so compute roughly covers a
		// step's drain and the overlap claim is actually exercised.
		probeStall, _, _, err := runBurstSync(nodes, scale, 0)
		if err != nil {
			return nil, fmt.Errorf("ext-burst probe n=%d: %w", nodes, err)
		}
		compute := time.Duration(1.2 * float64(probeStall) / burstSteps)

		syncStall, syncTotal, syncSnap, err := runBurstSync(nodes, scale, compute)
		if err != nil {
			return nil, fmt.Errorf("ext-burst sync n=%d: %w", nodes, err)
		}
		stagedStall, durableTotal, stagedSnap, err := runBurstStaged(nodes, scale, compute)
		if err != nil {
			return nil, fmt.Errorf("ext-burst staged n=%d: %w", nodes, err)
		}
		fr.addMetrics("sync", syncSnap)
		fr.addMetrics("burst", stagedSnap)

		bytes := float64(int64(nodes) * scale.PerRankBytes * burstSteps)
		for _, m := range []struct {
			series string
			d      time.Duration
		}{
			{"sync", syncStall},
			{"sync-total", syncTotal},
			{"burst-staged", stagedStall},
			{"burst-durable", durableTotal},
		} {
			if m.d <= 0 {
				return nil, fmt.Errorf("ext-burst %s n=%d: zero latency", m.series, nodes)
			}
			fr.Points = append(fr.Points, Point{
				Series:      m.series,
				Transfer:    kb64,
				StripeCount: 4,
				Nodes:       nodes,
				BW:          bytes / m.d.Seconds(),
			})
			if progress != nil {
				progress(fmt.Sprintf("%s %-13s n=%-2d  %10v  (%9.1f MB/s effective)",
					f.ID, m.series, nodes, m.d.Round(time.Microsecond), bytes/m.d.Seconds()/1e6))
			}
		}
	}
	return fr, nil
}

// writeBurstStep writes one checkpoint step's variables through any
// two-phase writer and commits it, returning the time the caller was
// blocked (write + commit, excluding compute).
func writeBurstStep(p *sim.Proc, tp ckpt.TwoPhase, step int64, perRank int64) (time.Duration, error) {
	payload := make([]byte, perRank/burstVars)
	start := p.Now()
	w, err := tp.Begin(step)
	if err != nil {
		return 0, err
	}
	for v := 0; v < burstVars; v++ {
		if err := w.Write(fmt.Sprintf("var%02d", v), payload); err != nil {
			return 0, err
		}
	}
	if err := w.Commit(); err != nil {
		return 0, err
	}
	return p.Now().Sub(start), nil
}

// runBurstSync runs the synchronous baseline: every rank checkpoints
// straight into a PFS-backed store. Returns the worst rank's summed
// commit stall, the end-to-end completion time and the cluster's
// registry snapshot.
func runBurstSync(nodes int, scale Scale, compute time.Duration) (time.Duration, time.Duration, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(nodes))
	stalls := make([]time.Duration, nodes)
	errs := make([]error, nodes)
	var total time.Duration
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("sync-rank%02d", r), func(p *sim.Proc) {
			errs[r] = func() error {
				mgr, err := core.NewManager(fmt.Sprintf("sync/rank%03d", r), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.Client(r),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
				})
				if err != nil {
					return err
				}
				tp := ckpt.Direct{Store: ckpt.New(mgr, ckpt.Options{})}
				for step := int64(1); step <= burstSteps; step++ {
					if compute > 0 {
						p.Sleep(compute)
					}
					stall, err := writeBurstStep(p, tp, step, scale.PerRankBytes)
					if err != nil {
						return err
					}
					stalls[r] += stall
				}
				if end := p.Now().Duration(); end > total {
					total = end
				}
				return mgr.Close()
			}()
		})
	}
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, obs.Snapshot{}, err
		}
	}
	return maxDuration(stalls), total, cluster.Obs().Snapshot(), nil
}

// runBurstStaged runs the staging tier: every rank checkpoints into an
// in-memory staging store, and a background worker drains to the same
// PFS-backed store the sync run used. Returns the worst rank's summed
// staged-commit stall, the time the last rank reached durable and the
// run's registry snapshot (the cluster's `pfs.*` instruments merged
// with the ranks' shared `burst.*` tier instruments).
func runBurstStaged(nodes int, scale Scale, compute time.Duration) (time.Duration, time.Duration, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(nodes))
	// One registry shared by every rank's tier, so the drain counters and
	// lag histogram aggregate across the whole run.
	tierReg := obs.NewRegistry()
	tierReg.SetClock(func() time.Duration { return k.Now().Duration() })
	stalls := make([]time.Duration, nodes)
	errs := make([]error, nodes)
	var durable time.Duration
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("burst-rank%02d", r), func(p *sim.Proc) {
			errs[r] = func() error {
				smgr, err := core.NewManager(fmt.Sprintf("stage/rank%03d", r), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              vfs.NewMemFS(),
						Platform:        lsm.SimPlatform(k),
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
				})
				if err != nil {
					return err
				}
				dmgr, err := core.NewManager(fmt.Sprintf("burst/rank%03d", r), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.Client(r),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
				})
				if err != nil {
					return err
				}
				tier := burst.New(
					ckpt.New(smgr, ckpt.Options{}),
					ckpt.New(dmgr, ckpt.Options{}),
					burst.Options{StagingBudget: 4 * scale.PerRankBytes, Kernel: k, Obs: tierReg},
				)
				tier.StartWorker()
				tp := tier.TwoPhase()
				for step := int64(1); step <= burstSteps; step++ {
					if compute > 0 {
						p.Sleep(compute)
					}
					stall, err := writeBurstStep(p, tp, step, scale.PerRankBytes)
					if err != nil {
						return err
					}
					stalls[r] += stall
				}
				if err := tier.Sync(); err != nil {
					return err
				}
				if end := p.Now().Duration(); end > durable {
					durable = end
				}
				if err := tier.Close(); err != nil {
					return err
				}
				if err := smgr.Close(); err != nil {
					return err
				}
				return dmgr.Close()
			}()
		})
	}
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, obs.Snapshot{}, err
		}
	}
	return maxDuration(stalls), durable, cluster.Obs().Snapshot().Merge(tierReg.Snapshot()), nil
}

func maxDuration(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}
