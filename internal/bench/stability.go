package bench

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	"lsmio/internal/iosched"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// The ext-stability experiment is the sustained-load A/B for the shared
// I/O bandwidth scheduler (internal/iosched): one foreground committer
// checkpoints continuously on the simulated cluster through three
// workload phases — steady cadence, bursty cadence, and a compaction
// storm (an overwrite-heavy bulk writer plus concurrent scrub repair
// traffic on the same OSTs) — once with the scheduler attached and once
// without, over the same virtual-time span. Periodic obs.Window deltas
// over the run's registry yield per-window throughput and latency
// quantiles, from which the figure reports:
//
//	thru-{on,off}      mean foreground throughput (bytes/s)
//	cov-{on,off}       coefficient of variation of windowed throughput
//	drift-{on,off}     windowed p999 drift (max window p999 / median)
//	stalls-{on,off}    stall episodes (runs of windows below half the
//	                   median windowed throughput)
//	storm-p99-{on,off} storm-phase commit p99, inverted to effective
//	                   bandwidth (value bytes / p99) so ratio checks
//	                   compare latencies the right way up
//
// The checks encode the PR's stability gate: scheduler-on must have
// strictly lower windowed-throughput CoV and p999 drift than
// scheduler-off, cost at most 5% of mean throughput, and improve the
// foreground commit p99 under the compaction storm.
//
// Dimensionless series (cov, drift, stalls) store their value directly
// in the point's BW field — the Nodes axis is a single configuration,
// as in the other custom extension figures.
const (
	stabValueSize = 16 << 10
	stabStripe    = 2
)

// ExtStability is the sustained-load scheduler-stability extension figure.
func ExtStability() Figure {
	f := Figure{
		ID:        "ext-stability",
		Title:     "EXTENSION: sustained-load stability with the shared I/O scheduler",
		Transfers:    []int64{stabValueSize},
		StripeCounts: []int{stabStripe},
		Phase:        PhaseWrite,
		Series: []Series{
			{Name: "thru-on"}, {Name: "thru-off"},
			{Name: "cov-on"}, {Name: "cov-off"},
			{Name: "drift-on"}, {Name: "drift-off"},
			{Name: "stalls-on"}, {Name: "stalls-off"},
			{Name: "storm-p99-on"}, {Name: "storm-p99-off"},
		},
		Checks: []Check{
			{
				Desc:  "windowed throughput CoV strictly lower with the scheduler",
				Ratio: ratioAtMaxNodes("cov-off", stabValueSize, "cov-on", stabValueSize, stabStripe),
				Min:   1.05, Paper: 0,
			},
			{
				Desc:  "windowed p999 drift strictly lower with the scheduler",
				Ratio: ratioAtMaxNodes("drift-off", stabValueSize, "drift-on", stabValueSize, stabStripe),
				Min:   1.02, Paper: 0,
			},
			{
				Desc:  "scheduler costs at most 5% of mean foreground throughput",
				Ratio: ratioAtMaxNodes("thru-on", stabValueSize, "thru-off", stabValueSize, stabStripe),
				Min:   0.95, Paper: 0,
			},
			{
				Desc:  "storm-phase commit p99 improves with the scheduler",
				Ratio: ratioAtMaxNodes("storm-p99-on", stabValueSize, "storm-p99-off", stabValueSize, stabStripe),
				Min:   1.02, Paper: 0,
			},
		},
	}
	f.Custom = runStabilityFigure
	return f
}

// stabStats is one arm's reduced measurement.
type stabStats struct {
	meanBW   float64       // foreground bytes/s over the whole run
	cov      float64       // CoV of windowed throughput
	drift    float64       // max windowed p999 over median windowed p999
	stalls   int           // stall episodes
	stormP99 time.Duration // storm-phase commit p99
	snap     obs.Snapshot  // registry snapshot (engine + iosched + pfs)
}

func runStabilityFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	on, err := runStabilityWorkload(scale, true)
	if err != nil {
		return nil, fmt.Errorf("ext-stability sched-on: %w", err)
	}
	off, err := runStabilityWorkload(scale, false)
	if err != nil {
		return nil, fmt.Errorf("ext-stability sched-off: %w", err)
	}
	fr.addMetrics("sched-on", on.snap)
	fr.addMetrics("sched-off", off.snap)
	for _, m := range []struct {
		series string
		value  float64
	}{
		{"thru-on", on.meanBW}, {"thru-off", off.meanBW},
		{"cov-on", on.cov}, {"cov-off", off.cov},
		{"drift-on", on.drift}, {"drift-off", off.drift},
		{"stalls-on", float64(on.stalls)}, {"stalls-off", float64(off.stalls)},
		{"storm-p99-on", stabValueSize / on.stormP99.Seconds()},
		{"storm-p99-off", stabValueSize / off.stormP99.Seconds()},
	} {
		fr.Points = append(fr.Points, Point{
			Series:      m.series,
			Transfer:    stabValueSize,
			StripeCount: stabStripe,
			Nodes:       1,
			BW:          m.value,
		})
		if progress != nil {
			progress(fmt.Sprintf("%s %-14s %14.3f", f.ID, m.series, m.value))
		}
	}
	if progress != nil {
		progress(fmt.Sprintf("%s storm p99: on=%v off=%v  stalls: on=%d off=%d",
			f.ID, on.stormP99.Round(time.Microsecond), off.stormP99.Round(time.Microsecond),
			on.stalls, off.stalls))
	}
	return fr, nil
}

// stabDurations maps the sweep scale to the run's virtual-time span:
// quick scale runs three 10-second phases (the smoke gate), paper scale
// a full hour of virtual time (three 20-minute phases) with coarser
// windows — the sustained-load mode the figure is named for.
func stabDurations(scale Scale) (phaseDur, winDur time.Duration) {
	if scale.PerRankBytes >= 32<<20 {
		return 20 * time.Minute, 5 * time.Second
	}
	return 10 * time.Second, 500 * time.Millisecond
}

// runStabilityWorkload drives one arm: foreground committer (client 0),
// compaction-storm bulk writer (client 1, final phase only) and two
// scrub sweepers (final phase only), all against one simulated cluster,
// with every I/O consumer drawing from the same scheduler when withSched
// is set. A windower process advances an obs.Window every winDur and the
// per-window deltas become the stability statistics.
func runStabilityWorkload(scale Scale, withSched bool) (stabStats, error) {
	cfg := pfs.Config{
		ComputeNodes:       3,
		NumOSTs:            4,
		NumOSSs:            1,
		DefaultStripeCount: stabStripe,
		DefaultStripeSize:  64 << 10,
		OSTSeqWriteBW:      20e6, // slow OSTs: contention must be visible
	}
	phaseDur, winDur := stabDurations(scale)
	end := 3 * phaseDur
	stormStart := 2 * phaseDur

	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, cfg)
	cluster.EnableResilience(pfs.Resilience{Parity: true})

	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })
	commitBytes := reg.Counter("stab.commit.bytes")
	commitLat := reg.Histogram("stab.commit.lat")

	var sched *iosched.Scheduler
	if withSched {
		// Budget slightly under the device aggregate (4 OSTs × 20 MB/s),
		// so queueing happens at the scheduler — where class priorities
		// apply — instead of at the OSTs, where they cannot.
		sched = iosched.New(iosched.Config{BytesPerSec: 0.75 * 4 * cfg.OSTSeqWriteBW, Kernel: k, Obs: reg})
		cluster.SetIOScheduler(sched)
	}

	// Setup phase: the parity files the storm-phase scrubbers sweep are
	// laid down before measurement starts.
	const scrubbers = 2
	var prepErr error
	k.Spawn("stab-prep", func(p *sim.Proc) {
		rfs := cluster.ResilientClient(2)
		for s := 0; s < scrubbers; s++ {
			prepErr = func() error {
				f, err := rfs.CreateStriped(fmt.Sprintf("scrub%d/par.dat", s), stabStripe, 64<<10)
				if err != nil {
					return err
				}
				if _, err := f.Write(bytes.Repeat([]byte{0x5a}, 2<<20)); err != nil {
					return err
				}
				if err := f.Sync(); err != nil {
					return err
				}
				return f.Close()
			}()
			if prepErr != nil {
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		return stabStats{}, err
	}
	if prepErr != nil {
		return stabStats{}, prepErr
	}

	lsmOpts := func(client int, buf int) lsm.Options {
		opts := lsm.DefaultOptions(cluster.Client(client))
		opts.Platform = lsm.SimPlatform(k)
		opts.AsyncFlush = true
		opts.MaxBackgroundJobs = 2
		opts.MaxImmutableMemtables = 4
		opts.WriteBufferSize = buf
		opts.L0CompactionTrigger = 4
		opts.BaseLevelSize = int64(4 * buf)
		opts.LevelSizeMultiplier = 4
		opts.BitsPerKey = 0
		opts.DisableCompression = true
		opts.Obs = reg
		opts.IOSched = sched
		return opts
	}

	// Foreground committer: one value per step, cadence per phase.
	var commitErr error
	k.Spawn("stab-committer", func(p *sim.Proc) {
		commitErr = func() error {
			db, err := lsm.Open("fg", lsmOpts(0, 32*stabValueSize))
			if err != nil {
				return err
			}
			payload := make([]byte, stabValueSize-24)
			for i := 0; p.Now().Duration() < end; i++ {
				start := p.Now()
				if err := db.Put([]byte(fmt.Sprintf("step%010d", i)), payload); err != nil {
					return err
				}
				commitLat.ObserveDuration(p.Now().Sub(start))
				commitBytes.Add(stabValueSize)
				now := p.Now().Duration()
				switch {
				case now >= phaseDur && now < stormStart && i%8 == 7:
					// Bursty phase: eight back-to-back commits, then idle.
					p.Sleep(32 * time.Millisecond)
				case now >= phaseDur && now < stormStart:
					p.Sleep(500 * time.Microsecond)
				default:
					// Steady cadence (also used under the storm, so the
					// storm-phase latency shift is workload-for-workload).
					p.Sleep(4 * time.Millisecond)
				}
			}
			if err := db.Flush(); err != nil {
				return err
			}
			if err := db.WaitBackground(); err != nil {
				return err
			}
			return db.Close()
		}()
	})

	// Compaction storm: an overwrite-heavy bulk writer with a tiny
	// memtable, switched on for the final phase only.
	var stormErr error
	k.Spawn("stab-storm", func(p *sim.Proc) {
		stormErr = func() error {
			p.Sleep(stormStart)
			db, err := lsm.Open("bulk", lsmOpts(1, 8*stabValueSize))
			if err != nil {
				return err
			}
			payload := make([]byte, stabValueSize-24)
			const keyspace = 256 // every key overwritten many times: compaction debt
			for i := 0; p.Now().Duration() < end; i++ {
				if err := db.Put([]byte(fmt.Sprintf("bulk%04d", i%keyspace)), payload); err != nil {
					return err
				}
				p.Sleep(200 * time.Microsecond)
			}
			if err := db.WaitBackground(); err != nil {
				return err
			}
			return db.Close()
		}()
	})

	// Scrub repair sweeps beside the storm, drawing from the lowest class.
	scrubErrs := make([]error, scrubbers)
	for s := 0; s < scrubbers; s++ {
		s := s
		k.Spawn(fmt.Sprintf("stab-scrub%d", s), func(p *sim.Proc) {
			p.Sleep(stormStart)
			rfs := cluster.ResilientClient(2)
			for p.Now().Duration() < end {
				if _, err := rfs.Scrub(fmt.Sprintf("scrub%d", s)); err != nil {
					scrubErrs[s] = err
					return
				}
			}
		})
	}

	// Windower: periodic delta snapshots — the satellite's windowed views
	// in action. Each window's committer bytes and latency histogram feed
	// the CoV / drift / stall statistics below.
	type window struct {
		endT  time.Duration
		delta obs.Snapshot
	}
	var wins []window
	k.Spawn("stab-windows", func(p *sim.Proc) {
		w := obs.NewWindow(reg)
		for p.Now().Duration() < end {
			p.Sleep(winDur)
			wins = append(wins, window{endT: p.Now().Duration(), delta: w.Advance()})
		}
	})

	if err := k.Run(); err != nil {
		return stabStats{}, err
	}
	if commitErr != nil {
		return stabStats{}, commitErr
	}
	if stormErr != nil {
		return stabStats{}, stormErr
	}
	for _, err := range scrubErrs {
		if err != nil {
			return stabStats{}, err
		}
	}
	if len(wins) < 6 {
		return stabStats{}, fmt.Errorf("ext-stability: only %d windows measured", len(wins))
	}

	// Reduce the windows to the arm's statistics.
	var st stabStats
	perWin := make([]float64, len(wins))
	var total float64
	for i, w := range wins {
		perWin[i] = float64(w.delta.Counters["stab.commit.bytes"])
		total += perWin[i]
	}
	st.meanBW = total / end.Seconds()
	mean := total / float64(len(perWin))
	var variance float64
	for _, v := range perWin {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(perWin))
	if mean > 0 {
		st.cov = math.Sqrt(variance) / mean
	}

	// Stall episodes: contiguous runs of windows below half the median
	// windowed throughput.
	sorted := append([]float64(nil), perWin...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	inStall := false
	for _, v := range perWin {
		if v < median/2 {
			if !inStall {
				st.stalls++
			}
			inStall = true
		} else {
			inStall = false
		}
	}

	// p999 drift: max windowed p999 over the median, across windows with
	// enough samples for the quantile to mean anything.
	var p999s []float64
	var stormSnap obs.Snapshot
	stormMerged := false
	for _, w := range wins {
		if h, ok := w.delta.Hists["stab.commit.lat"]; ok && h.Count >= 8 {
			p999s = append(p999s, float64(h.Quantile(0.999)))
		}
		if w.endT > stormStart {
			if !stormMerged {
				stormSnap, stormMerged = w.delta, true
			} else {
				stormSnap = stormSnap.Merge(w.delta)
			}
		}
	}
	if len(p999s) < 4 {
		return stabStats{}, fmt.Errorf("ext-stability: only %d windows carried latency samples", len(p999s))
	}
	sort.Float64s(p999s)
	if med := p999s[len(p999s)/2]; med > 0 {
		st.drift = p999s[len(p999s)-1] / med
	}

	if !stormMerged {
		return stabStats{}, fmt.Errorf("ext-stability: no storm-phase windows measured")
	}
	stormHist, ok := stormSnap.Hists["stab.commit.lat"]
	if !ok || stormHist.Count == 0 {
		return stabStats{}, fmt.Errorf("ext-stability: no storm-phase commits measured")
	}
	st.stormP99 = time.Duration(stormHist.Quantile(0.99))
	if st.stormP99 <= 0 {
		return stabStats{}, fmt.Errorf("ext-stability: zero storm-phase p99")
	}

	st.snap = reg.Snapshot().Merge(cluster.Obs().Snapshot())
	return st, nil
}
