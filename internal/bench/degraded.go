package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// The ext-degraded experiment measures the checkpoint write path when
// the PFS itself degrades — the failure modes the resilience layer
// (parity striping, hedged writes, the per-OST breaker) exists for.
// Every rank checkpoints through a parity-striped resilient client
// under four regimes:
//
//	healthy        all OSTs healthy (hedging armed but idle)
//	dead-1         one OST fail-stops mid-run; parity absorbs it and
//	               the run validates RestoreLatest + a scrub rebuild
//	slow-1         one OST serves 10× slow; hedged writes redirect
//	slow-1-nohedge the same straggler with hedging disabled
//
// All series are effective bandwidths (bytes moved per second of the
// metric) so the harness's ratio checks compare latencies inverted:
// the four above invert end-to-end completion time, and the two
// `-p99` series invert the p99 per-step commit stall.
const (
	degradedSteps    = 4  // checkpoint steps per rank
	degradedVars     = 4  // variables per step
	degradedVictim   = 0  // the OST that dies or slows
	degradedSlowdown = 10 // service-time multiplier for the slow OST
)

// ExtDegraded is the degraded-mode striping extension experiment.
func ExtDegraded() Figure {
	f := Figure{
		ID:        "ext-degraded",
		Title:     "EXTENSION: checkpoint writes under dead and slow OSTs (parity + hedging)",
		Transfers: []int64{kb64},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "healthy"},
			{Name: "dead-1"},
			{Name: "slow-1"},
			{Name: "slow-1-nohedge"},
			{Name: "healthy-p99"},
			{Name: "slow-1-p99"},
		},
		Checks: []Check{
			{
				Desc:  "parity keeps commits flowing with one OST dead: dead-1 over healthy at max nodes",
				Ratio: ratioAtMaxNodes("dead-1", kb64, "healthy", kb64, 4),
				Min:   0.4, Paper: 0,
			},
			{
				Desc:  "hedged writes beat unhedged under one 10x-slow OST at max nodes",
				Ratio: ratioAtMaxNodes("slow-1", kb64, "slow-1-nohedge", kb64, 4),
				Min:   1.15, Paper: 0,
			},
			{
				Desc:  "hedging keeps p99 commit within 2x of healthy under one slow OST",
				Ratio: ratioAtMaxNodes("slow-1-p99", kb64, "healthy-p99", kb64, 4),
				Min:   0.5, Paper: 0,
			},
		},
	}
	f.Custom = runDegradedFigure
	return f
}

// degradedMode is one health regime of the sweep.
type degradedMode struct {
	name  string
	dead  bool // fail-stop the victim mid-run, then validate recovery
	slow  bool // degrade the victim before the run starts
	hedge bool
}

func runDegradedFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	modes := []degradedMode{
		{name: "healthy", hedge: true},
		{name: "dead-1", dead: true, hedge: true},
		{name: "slow-1", slow: true, hedge: true},
		{name: "slow-1-nohedge", slow: true},
	}
	for _, nodes := range scale.Nodes {
		for _, m := range modes {
			total, p99, snap, err := runDegradedMode(nodes, scale, m)
			if err != nil {
				return nil, fmt.Errorf("ext-degraded %s n=%d: %w", m.name, nodes, err)
			}
			fr.addMetrics(m.name, snap)
			if total <= 0 || p99 <= 0 {
				return nil, fmt.Errorf("ext-degraded %s n=%d: zero latency", m.name, nodes)
			}
			bytes := float64(int64(nodes) * scale.PerRankBytes * degradedSteps)
			fr.Points = append(fr.Points, Point{
				Series:      m.name,
				Transfer:    kb64,
				StripeCount: 4,
				Nodes:       nodes,
				BW:          bytes / total.Seconds(),
			})
			if progress != nil {
				progress(fmt.Sprintf("%s %-14s n=%-2d  %10v  (%9.1f MB/s effective)",
					f.ID, m.name, nodes, total.Round(time.Microsecond), bytes/total.Seconds()/1e6))
			}
			if m.name == "healthy" || m.name == "slow-1" {
				fr.Points = append(fr.Points, Point{
					Series:      m.name + "-p99",
					Transfer:    kb64,
					StripeCount: 4,
					Nodes:       nodes,
					BW:          float64(scale.PerRankBytes) / p99.Seconds(),
				})
				if progress != nil {
					progress(fmt.Sprintf("%s %-14s n=%-2d  %10v  (p99 commit)",
						f.ID, m.name+"-p99", nodes, p99.Round(time.Microsecond)))
				}
			}
		}
	}
	return fr, nil
}

// degradedClusterConfig shrinks the Viking cluster so one OST is a
// meaningful fraction of capacity, and tightens the write-back window
// so service-time differences (the thing hedging attacks) dominate
// commit latency instead of being absorbed by dirty-lag slack.
func degradedClusterConfig(nodes int) pfs.Config {
	cfg := pfs.VikingConfig(nodes)
	cfg.NumOSTs = 10
	cfg.MaxDirtyLag = 4 * time.Millisecond
	return cfg
}

// runDegradedMode runs one regime at one node count and returns the
// end-to-end completion time and the p99 per-step commit stall across
// all ranks. In dead mode it also validates the recovery story:
// RestoreLatest on every rank's store (degraded reads), a scrub that
// rebuilds the lost stripes onto spares, and a clean re-read after.
func runDegradedMode(nodes int, scale Scale, m degradedMode) (time.Duration, time.Duration, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, degradedClusterConfig(nodes))
	cluster.EnableResilience(pfs.Resilience{
		Hedge:  m.hedge,
		Parity: true,
		// The slow regimes compare hedging against no mitigation at all,
		// so the breaker's slow-trip (which would re-stripe around the
		// straggler in both runs) is disabled; error tripping stays.
		Tracker: resil.Options{SlowStrikes: 1 << 30},
	})
	if m.slow {
		cluster.SetOSTHealth(degradedVictim, pfs.OSTDegraded, degradedSlowdown)
	}

	errs := make([]error, nodes)
	mgrs := make([]*core.Manager, nodes)
	stores := make([]*ckpt.Store, nodes)
	var commits []time.Duration
	var total time.Duration
	for r := 0; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("deg-rank%02d", r), func(p *sim.Proc) {
			errs[r] = func() error {
				mgr, err := core.NewManager(fmt.Sprintf("deg/rank%03d", r), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.ResilientClient(r),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: scale.BufferSize,
					},
					Kernel: k,
				})
				if err != nil {
					return err
				}
				mgrs[r] = mgr
				stores[r] = ckpt.New(mgr, ckpt.Options{})
				tp := ckpt.Direct{Store: stores[r]}
				for step := int64(1); step <= degradedSteps; step++ {
					start := p.Now()
					if err := writeDegradedStep(tp, step, scale.PerRankBytes); err != nil {
						return fmt.Errorf("rank %d step %d: %w", r, step, err)
					}
					commits = append(commits, p.Now().Sub(start))
					if m.dead && r == 0 && step == degradedSteps/2 {
						cluster.SetOSTHealth(degradedVictim, pfs.OSTDead, 0)
					}
				}
				if end := p.Now().Duration(); end > total {
					total = end
				}
				return nil
			}()
		})
	}
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, obs.Snapshot{}, err
		}
	}
	// Snapshot the measured window before validation/teardown I/O runs.
	snap := cluster.Obs().Snapshot()

	// Validation and teardown run in a second simulation pass so they
	// never pollute the measured window.
	var vErr error
	k.Spawn("deg-validate", func(p *sim.Proc) {
		vErr = func() error {
			if m.dead {
				if err := validateDegradedRecovery(cluster, stores, scale); err != nil {
					return err
				}
			}
			for _, mgr := range mgrs {
				if mgr == nil {
					continue
				}
				if err := mgr.Close(); err != nil {
					return err
				}
			}
			return nil
		}()
	})
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	if vErr != nil {
		return 0, 0, obs.Snapshot{}, vErr
	}
	return total, quantileDuration(commits, 0.99), snap, nil
}

// validateDegradedRecovery proves the dead-OST run is not just fast but
// correct: every rank restores its last step through degraded reads, a
// scrub rebuilds all lost stripes onto spares with nothing
// unrecoverable, and the rebuilt files read back clean.
func validateDegradedRecovery(cluster *pfs.Cluster, stores []*ckpt.Store, scale Scale) error {
	for r, store := range stores {
		if err := checkDegradedRestore(store, r, scale); err != nil {
			return err
		}
	}
	rep, err := cluster.ResilientClient(0).Scrub("deg")
	if err != nil {
		return fmt.Errorf("scrub: %w", err)
	}
	if rep.Unrecoverable != 0 {
		return fmt.Errorf("scrub left %d units unrecoverable (report %+v)", rep.Unrecoverable, rep)
	}
	if rep.Repaired == 0 {
		return fmt.Errorf("dead OST left nothing to rebuild — victim held no data (report %+v)", rep)
	}
	// After the rebuild the stores must still restore, now off spares.
	return checkDegradedRestore(stores[0], 0, scale)
}

func checkDegradedRestore(store *ckpt.Store, rank int, scale Scale) error {
	step, state, err := store.RestoreLatest()
	if err != nil {
		return fmt.Errorf("rank %d restore: %w", rank, err)
	}
	if step != degradedSteps {
		return fmt.Errorf("rank %d restored step %d, want %d", rank, step, degradedSteps)
	}
	for v := 0; v < degradedVars; v++ {
		name := fmt.Sprintf("var%02d", v)
		want := degradedPayload(step, v, scale.PerRankBytes/degradedVars)
		if !bytes.Equal(state[name], want) {
			return fmt.Errorf("rank %d step %d %s corrupted after degradation", rank, step, name)
		}
	}
	return nil
}

// writeDegradedStep commits one checkpoint step of patterned payloads
// (so restore validation detects corruption, not just presence).
func writeDegradedStep(tp ckpt.TwoPhase, step int64, perRank int64) error {
	w, err := tp.Begin(step)
	if err != nil {
		return err
	}
	for v := 0; v < degradedVars; v++ {
		if err := w.Write(fmt.Sprintf("var%02d", v), degradedPayload(step, v, perRank/degradedVars)); err != nil {
			return err
		}
	}
	return w.Commit()
}

func degradedPayload(step int64, v int, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(i) + step*31 + int64(v)*7)
	}
	return b
}

func quantileDuration(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1)+0.5)]
}
