package bench

import (
	"fmt"
	"time"

	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// The ext-pipeline experiment measures the two write-path overlaps added
// on top of the serial engine: the table-build pipeline (N encoder
// workers compress/checksum blocks while one writer task owns the file)
// and WAL group commit (one coalesced append+fsync per writer cohort).
// Series, all stripe-4 on the simulated PFS:
//
//	flush-serial    one memtable flush, serial block building (Nodes=1)
//	flush-piped     the same flush with 1, 2 and 4 encoder workers
//	                (Nodes axis = EncodeWorkers)
//	compact-serial  overwrite workload + full background drain at 4
//	                background jobs, serial table writers (Nodes=4)
//	compact-piped   the same with 4 encoder workers per table (Nodes=4)
//	wal-solo        8 concurrent Sync writers, one fsync per write
//	wal-grouped     8 concurrent Sync writers through group commit
//	wal-group-size  mean cohort size (writes per fsync) of that run —
//	                the point's BW field carries the plain ratio
//	io-busy         fraction of the piped flush's wall time the writer
//	                stage spent busy (BW field carries the fraction)
//
// The modeled encode cost (pipeEncodeCostPerMB on the virtual Compute
// clock) is what makes the compute stage visible on the simulator; the
// real platform pays real compression CPU instead.
const (
	pipeValueSize       = 4 << 10
	pipeWALValueSize    = 1 << 10
	pipeWALWriters      = 8
	pipeEncodeWorkers   = 4
	pipeEncodeCostPerMB = 6 * time.Millisecond
)

// ExtPipeline is the pipelined-table-build / WAL-group-commit extension
// experiment.
func ExtPipeline() Figure {
	f := Figure{
		ID:        "ext-pipeline",
		Title:     "EXTENSION: pipelined table builds and WAL group commit",
		Transfers: []int64{pipeValueSize},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "flush-serial"},
			{Name: "flush-piped"},
			{Name: "compact-serial"},
			{Name: "compact-piped"},
			{Name: "wal-solo"},
			{Name: "wal-grouped"},
			{Name: "wal-group-size"},
			{Name: "io-busy"},
		},
		Checks: []Check{
			{
				Desc: "4 encode workers ≥1.3× serial flush throughput",
				Ratio: func(fr *FigureResult) (float64, error) {
					piped, err := fr.BW("flush-piped", pipeValueSize, 4, pipeEncodeWorkers)
					if err != nil {
						return 0, err
					}
					serial, err := fr.BW("flush-serial", pipeValueSize, 4, 1)
					if err != nil {
						return 0, err
					}
					if serial == 0 {
						return 0, fmt.Errorf("bench: zero serial flush throughput")
					}
					return piped / serial, nil
				},
				Min: 1.3, Paper: 0,
			},
			{
				Desc: "piped compaction ≥1.15× serial at 4 background jobs",
				Ratio: func(fr *FigureResult) (float64, error) {
					piped, err := fr.BW("compact-piped", pipeValueSize, 4, 4)
					if err != nil {
						return 0, err
					}
					serial, err := fr.BW("compact-serial", pipeValueSize, 4, 4)
					if err != nil {
						return 0, err
					}
					if serial == 0 {
						return 0, fmt.Errorf("bench: zero serial compaction throughput")
					}
					return piped / serial, nil
				},
				Min: 1.15, Paper: 0,
			},
			{
				Desc: "group commit ≥1.5× per-write fsync throughput (8 sync writers)",
				Ratio: func(fr *FigureResult) (float64, error) {
					grouped, err := fr.BW("wal-grouped", pipeValueSize, 4, pipeWALWriters)
					if err != nil {
						return 0, err
					}
					solo, err := fr.BW("wal-solo", pipeValueSize, 4, pipeWALWriters)
					if err != nil {
						return 0, err
					}
					if solo == 0 {
						return 0, fmt.Errorf("bench: zero solo-sync throughput")
					}
					return grouped / solo, nil
				},
				Min: 1.5, Paper: 0,
			},
			{
				Desc: "mean WAL cohort ≥2 writes per fsync",
				Ratio: func(fr *FigureResult) (float64, error) {
					return fr.BW("wal-group-size", pipeValueSize, 4, pipeWALWriters)
				},
				Min: 2, Paper: 0,
			},
			{
				Desc: "I/O stage busy ≥60% of the piped flush wall time",
				Ratio: func(fr *FigureResult) (float64, error) {
					return fr.BW("io-busy", pipeValueSize, 4, pipeEncodeWorkers)
				},
				Min: 0.6, Paper: 0,
			},
		},
	}
	f.Custom = runPipelineFigure
	return f
}

func runPipelineFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	emit := func(series string, nodes int, bw float64, note string) {
		fr.Points = append(fr.Points, Point{
			Series:      series,
			Transfer:    pipeValueSize,
			StripeCount: 4,
			Nodes:       nodes,
			BW:          bw,
		})
		if progress != nil {
			progress(fmt.Sprintf("%s %-14s nodes=%d  %s", f.ID, series, nodes, note))
		}
	}
	mbs := func(bytes int64, d time.Duration) float64 { return float64(bytes) / d.Seconds() }

	// Flush: serial baseline, then the encoder-worker sweep.
	flushBytes := scale.PerRankBytes
	serialDur, _, snap, err := runPipelineFlush(scale, 0)
	if err != nil {
		return nil, fmt.Errorf("ext-pipeline flush serial: %w", err)
	}
	fr.addMetrics("flush-serial", snap)
	emit("flush-serial", 1, mbs(flushBytes, serialDur),
		fmt.Sprintf("%10v  (%9.1f MB/s)", serialDur.Round(time.Microsecond), mbs(flushBytes, serialDur)/1e6))
	for _, workers := range []int{1, 2, pipeEncodeWorkers} {
		dur, ioBusy, snap, err := runPipelineFlush(scale, workers)
		if err != nil {
			return nil, fmt.Errorf("ext-pipeline flush workers=%d: %w", workers, err)
		}
		fr.addMetrics(fmt.Sprintf("flush-piped-%d", workers), snap)
		emit("flush-piped", workers, mbs(flushBytes, dur),
			fmt.Sprintf("%10v  (%9.1f MB/s)", dur.Round(time.Microsecond), mbs(flushBytes, dur)/1e6))
		if workers == pipeEncodeWorkers {
			emit("io-busy", workers, ioBusy, fmt.Sprintf("write stage busy %4.1f%% of flush", 100*ioBusy))
		}
	}

	// Compaction: serial vs piped table writers under a 4-job pool.
	compactBytes := 4 * scale.PerRankBytes
	for _, c := range []struct {
		series  string
		workers int
	}{
		{"compact-serial", 0},
		{"compact-piped", pipeEncodeWorkers},
	} {
		dur, snap, err := runPipelineCompaction(scale, c.workers)
		if err != nil {
			return nil, fmt.Errorf("ext-pipeline %s: %w", c.series, err)
		}
		fr.addMetrics(c.series, snap)
		emit(c.series, 4, mbs(compactBytes, dur),
			fmt.Sprintf("%10v  (%9.1f MB/s)", dur.Round(time.Microsecond), mbs(compactBytes, dur)/1e6))
	}

	// WAL: 8 concurrent Sync writers, per-write fsync vs group commit.
	walBytes := scale.PerRankBytes
	soloDur, _, snap, err := runPipelineWAL(scale, false)
	if err != nil {
		return nil, fmt.Errorf("ext-pipeline wal solo: %w", err)
	}
	fr.addMetrics("wal-solo", snap)
	emit("wal-solo", pipeWALWriters, mbs(walBytes, soloDur),
		fmt.Sprintf("%10v  (%9.1f MB/s)", soloDur.Round(time.Microsecond), mbs(walBytes, soloDur)/1e6))
	groupDur, meanCohort, snap, err := runPipelineWAL(scale, true)
	if err != nil {
		return nil, fmt.Errorf("ext-pipeline wal grouped: %w", err)
	}
	fr.addMetrics("wal-grouped", snap)
	emit("wal-grouped", pipeWALWriters, mbs(walBytes, groupDur),
		fmt.Sprintf("%10v  (%9.1f MB/s)", groupDur.Round(time.Microsecond), mbs(walBytes, groupDur)/1e6))
	emit("wal-group-size", pipeWALWriters, meanCohort,
		fmt.Sprintf("%5.1f writes per fsync", meanCohort))

	return fr, nil
}

// pipelineFill writes a deterministic incompressible payload (xorshift),
// so block encoding pays its full modeled cost and the device sees the
// raw bytes.
func pipelineFill(p []byte, seed uint64) {
	x := seed*2862933555777941757 + 3037000493
	for i := range p {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
}

// runPipelineFlush builds one memtable of scale.PerRankBytes and measures
// a single flush on the simulated cluster, returning the flush's virtual
// duration and the fraction of it the pipeline's writer stage was busy.
func runPipelineFlush(scale Scale, workers int) (time.Duration, float64, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(1))
	totalPuts := int(scale.PerRankBytes / pipeValueSize)

	var dur time.Duration
	var ioBusy float64
	var snap obs.Snapshot
	var runErr error
	k.Spawn("pipe-flush", func(p *sim.Proc) {
		runErr = func() error {
			opts := lsm.DefaultOptions(cluster.Client(0))
			opts.Platform = lsm.SimPlatform(k)
			opts.DisableWAL = true
			opts.DisableCompaction = true
			opts.WriteBufferSize = int(2 * scale.PerRankBytes)
			opts.BlockSize = 64 << 10
			opts.BitsPerKey = 10
			opts.EncodeWorkers = workers
			opts.EncodeCostPerMB = pipeEncodeCostPerMB
			db, err := lsm.Open("lsmdb", opts)
			if err != nil {
				return err
			}
			payload := make([]byte, pipeValueSize-24)
			for i := 0; i < totalPuts; i++ {
				pipelineFill(payload, uint64(i)+1)
				if err := db.Put([]byte(fmt.Sprintf("key%08d", i)), payload); err != nil {
					return err
				}
			}
			start := p.Now()
			if err := db.Flush(); err != nil {
				return err
			}
			dur = p.Now().Sub(start)
			snap = db.Obs().Snapshot()
			if dur > 0 {
				ioBusy = float64(snap.Counters["lsm.pipeline.write.busy_micros"]) /
					float64(dur/time.Microsecond)
			}
			return db.Close()
		}()
	})
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	return dur, ioBusy, snap, runErr
}

// runPipelineCompaction drives the overwrite workload from the
// ext-compaction experiment at 4 background jobs and measures the whole
// run (writes + background drain), with serial or piped table writers.
func runPipelineCompaction(scale Scale, workers int) (time.Duration, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(1))
	buf := 64 * pipeValueSize
	totalPuts := int(4 * scale.PerRankBytes / pipeValueSize)
	keyspace := totalPuts / 2

	var total time.Duration
	var snap obs.Snapshot
	var runErr error
	k.Spawn("pipe-compact", func(p *sim.Proc) {
		runErr = func() error {
			opts := lsm.DefaultOptions(cluster.Client(0))
			opts.Platform = lsm.SimPlatform(k)
			opts.AsyncFlush = true
			opts.MaxBackgroundJobs = 4
			opts.MaxImmutableMemtables = 4
			opts.WriteBufferSize = buf
			opts.L0CompactionTrigger = 4
			opts.BaseLevelSize = int64(4 * buf)
			opts.LevelSizeMultiplier = 4
			opts.BitsPerKey = 0
			opts.DisableCompression = true
			opts.L0SlowdownTrigger = 6
			opts.SlowdownDelay = 2 * time.Millisecond
			opts.SoftPendingCompactionBytes = int64(16 * buf)
			opts.L0StopTrigger = 12
			opts.EncodeWorkers = workers
			opts.EncodeCostPerMB = pipeEncodeCostPerMB
			db, err := lsm.Open("lsmdb", opts)
			if err != nil {
				return err
			}
			payload := make([]byte, pipeValueSize-24)
			pipelineFill(payload, 42)
			for i := 0; i < totalPuts; i++ {
				key := fmt.Sprintf("key%08d", i%keyspace)
				if err := db.Put([]byte(key), payload); err != nil {
					return err
				}
			}
			if err := db.Flush(); err != nil {
				return err
			}
			if err := db.WaitBackground(); err != nil {
				return err
			}
			total = p.Now().Duration()
			snap = db.Obs().Snapshot()
			return db.Close()
		}()
	})
	if err := k.Run(); err != nil {
		return 0, obs.Snapshot{}, err
	}
	return total, snap, runErr
}

// runPipelineWAL runs 8 concurrent Sync writers against one store and
// measures the virtual time until the last write is acknowledged,
// returning also the mean cohort size (writes per fsync).
func runPipelineWAL(scale Scale, grouped bool) (time.Duration, float64, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(1))
	totalPuts := int(scale.PerRankBytes / pipeWALValueSize)
	perWriter := totalPuts / pipeWALWriters

	var total time.Duration
	var meanCohort float64
	var snap obs.Snapshot
	var runErr error
	k.Spawn("wal-setup", func(p *sim.Proc) {
		opts := lsm.DefaultOptions(cluster.Client(0))
		opts.Platform = lsm.SimPlatform(k)
		opts.Sync = true
		opts.DisableWALGroupCommit = !grouped
		opts.DisableCompaction = true
		opts.DisableCompression = true
		opts.BitsPerKey = 0
		opts.WriteBufferSize = int(4 * scale.PerRankBytes)
		db, err := lsm.Open("lsmdb", opts)
		if err != nil {
			runErr = err
			return
		}
		finished := 0
		for w := 0; w < pipeWALWriters; w++ {
			w := w
			k.Spawn(fmt.Sprintf("wal-writer%d", w), func(p *sim.Proc) {
				payload := make([]byte, pipeWALValueSize-32)
				pipelineFill(payload, uint64(w)+7)
				for i := 0; i < perWriter; i++ {
					key := fmt.Sprintf("w%02dk%06d", w, i)
					if err := db.Put([]byte(key), payload); err != nil {
						if runErr == nil {
							runErr = fmt.Errorf("writer %d: %w", w, err)
						}
						break
					}
				}
				finished++
				if finished == pipeWALWriters {
					total = p.Now().Duration()
					stats := db.Stats()
					if stats.WALSyncs > 0 {
						meanCohort = float64(stats.Puts) / float64(stats.WALSyncs)
					}
					snap = db.Obs().Snapshot()
					if err := db.Close(); err != nil && runErr == nil {
						runErr = err
					}
				}
			})
		}
	})
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	return total, meanCohort, snap, runErr
}
