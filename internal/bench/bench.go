// Package bench is the experiment harness that regenerates every figure
// in the paper's evaluation (Figures 5–10) plus Figure 1's growth data:
// for each figure it sweeps node counts over the simulated Viking cluster,
// runs the IOR workload with the right API/collective/stripe settings per
// series, and reports the aggregate bandwidths the paper plots. Shape
// checks encode the paper's stated ratios with tolerance bands; the
// harness evaluates them and EXPERIMENTS.md records the outcome.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"lsmio/internal/ior"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// Scale sets the sweep's node counts and per-rank data volume. The paper
// runs up to 48 nodes; the default scale reproduces that, while tests use
// a reduced scale.
type Scale struct {
	Nodes        []int
	PerRankBytes int64
	// BufferSize is the LSMIO memtable / ADIOS2 BufferChunkSize. The
	// paper uses 32 MB against multi-GB per-rank volumes; scaled runs
	// keep the buffer:volume ratio comparable.
	BufferSize int
}

// PaperScale mirrors the paper's sweep (1→48 nodes, stripe count 4).
func PaperScale() Scale {
	return Scale{
		Nodes:        []int{1, 2, 4, 8, 16, 32, 48},
		PerRankBytes: 32 << 20,
		BufferSize:   8 << 20,
	}
}

// QuickScale is a fast sweep for tests.
func QuickScale() Scale {
	return Scale{
		Nodes:        []int{1, 4, 8},
		PerRankBytes: 4 << 20,
		BufferSize:   1 << 20,
	}
}

// Phase selects which bandwidth a figure plots.
type Phase int

// Phases.
const (
	PhaseWrite Phase = iota
	PhaseRead
)

// Series is one line in a figure.
type Series struct {
	Name string
	// Make builds the IOR parameters for a transfer size and stripe count.
	Make func(transfer int64, stripeCount int, scale Scale) ior.Params
}

// Figure is one reproducible experiment.
type Figure struct {
	ID           string
	Title        string
	Transfers    []int64
	StripeCounts []int
	Phase        Phase
	Series       []Series
	Checks       []Check
	// Cluster overrides the storage-system configuration (default:
	// pfs.VikingConfig). Extension experiments use it to ask what-if
	// questions about differently built file systems (§5.1).
	Cluster func(nodes int) pfs.Config
	// Custom, when set, replaces the standard IOR sweep with a bespoke
	// runner. The burst-staging experiment uses it to drive the ckpt
	// layer directly (its series are stall/latency figures, not IOR
	// bandwidths). Series.Make may be nil on such figures.
	Custom func(f Figure, scale Scale, progress func(string)) (*FigureResult, error)
}

// Point is one measured bandwidth.
type Point struct {
	Series      string
	Transfer    int64
	StripeCount int
	Nodes       int
	BW          float64 // bytes/second (write or read per the figure's phase)
	Result      ior.Result
}

// FigureResult holds a figure's sweep output.
type FigureResult struct {
	Figure Figure
	Points []Point
	// Metrics are per-series (or per-regime, for custom figures) obs
	// registry snapshots, merged across the sweep's runs. They carry the
	// per-op latency histograms (p50/p99/p999 in the JSON rendering)
	// alongside the figure's bandwidth points.
	Metrics map[string]obs.Snapshot
}

// addMetrics merges a run's registry snapshot into the figure's metrics
// under key (counters add, histograms merge bucket-wise).
func (fr *FigureResult) addMetrics(key string, snap obs.Snapshot) {
	if fr.Metrics == nil {
		fr.Metrics = make(map[string]obs.Snapshot)
	}
	if prev, ok := fr.Metrics[key]; ok {
		snap = prev.Merge(snap)
	}
	fr.Metrics[key] = snap
}

// Check is a shape assertion from the paper's text, with a tolerance band.
type Check struct {
	Desc string
	// Ratio extracts the measured ratio from the results.
	Ratio func(fr *FigureResult) (float64, error)
	// Min and Max bound the acceptable band (Max 0 = unbounded above).
	Min, Max float64
	// Paper is the value the paper reports, for the report.
	Paper float64
}

// seriesParams fills the common fields every series shares.
func seriesParams(api ior.API, transfer int64, stripeCount int, scale Scale) ior.Params {
	p := ior.DefaultParams(api, transfer, int(scale.PerRankBytes/transfer))
	p.StripeCount = stripeCount
	p.StripeSize = transfer
	p.WriteBufferSize = scale.BufferSize
	return p
}

func plain(api ior.API) func(int64, int, Scale) ior.Params {
	return func(t int64, sc int, s Scale) ior.Params {
		return seriesParams(api, t, sc, s)
	}
}

func collective(api ior.API) func(int64, int, Scale) ior.Params {
	return func(t int64, sc int, s Scale) ior.Params {
		p := seriesParams(api, t, sc, s)
		p.Collective = true
		return p
	}
}

// RunFigure sweeps one figure at the given scale. progress (optional)
// receives one line per completed point.
func RunFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	if f.Custom != nil {
		return f.Custom(f, scale, progress)
	}
	fr := &FigureResult{Figure: f}
	stripes := f.StripeCounts
	if len(stripes) == 0 {
		stripes = []int{4}
	}
	for _, stripeCount := range stripes {
		for _, transfer := range f.Transfers {
			for _, s := range f.Series {
				for _, nodes := range scale.Nodes {
					p := s.Make(transfer, stripeCount, scale)
					if f.Phase == PhaseRead {
						p.DoRead = true
					}
					cfg := pfs.VikingConfig(nodes)
					if f.Cluster != nil {
						cfg = f.Cluster(nodes)
					}
					// The figure's stripe settings also become the
					// directory default, so APIs that create files
					// without an explicit layout (LSMIO stores, BP5
					// subfiles) inherit them — as `lfs setstripe` on the
					// test directory would arrange.
					cfg.DefaultStripeCount = stripeCount
					cfg.DefaultStripeSize = transfer
					cluster := pfs.NewCluster(sim.NewKernel(), cfg)
					res, err := ior.Run(cluster, nodes, p)
					if err != nil {
						return nil, fmt.Errorf("%s/%s t=%d sc=%d n=%d: %w",
							f.ID, s.Name, transfer, stripeCount, nodes, err)
					}
					bw := res.WriteBW
					if f.Phase == PhaseRead {
						bw = res.ReadBW
					}
					fr.addMetrics(s.Name, cluster.Obs().Snapshot())
					fr.Points = append(fr.Points, Point{
						Series:      s.Name,
						Transfer:    transfer,
						StripeCount: stripeCount,
						Nodes:       nodes,
						BW:          bw,
						Result:      res,
					})
					if progress != nil {
						progress(fmt.Sprintf("%s %-12s xfer=%-8s stripes=%-2d n=%-2d  %9.1f MB/s",
							f.ID, s.Name, sizeLabel(transfer), stripeCount, nodes, bw/1e6))
					}
				}
			}
		}
	}
	return fr, nil
}

// BW looks up a point's bandwidth; zero transfer/stripe match any.
func (fr *FigureResult) BW(series string, transfer int64, stripeCount, nodes int) (float64, error) {
	for _, p := range fr.Points {
		if p.Series != series || p.Nodes != nodes {
			continue
		}
		if transfer != 0 && p.Transfer != transfer {
			continue
		}
		if stripeCount != 0 && p.StripeCount != stripeCount {
			continue
		}
		return p.BW, nil
	}
	return 0, fmt.Errorf("bench: no point %s/%d/%d/n%d in %s", series, transfer, stripeCount, nodes, fr.Figure.ID)
}

// MaxNodes returns the largest node count measured.
func (fr *FigureResult) MaxNodes() int {
	max := 0
	for _, p := range fr.Points {
		if p.Nodes > max {
			max = p.Nodes
		}
	}
	return max
}

// PeakBW returns a series' best bandwidth across node counts.
func (fr *FigureResult) PeakBW(series string, transfer int64, stripeCount int) float64 {
	best := 0.0
	for _, p := range fr.Points {
		if p.Series != series {
			continue
		}
		if transfer != 0 && p.Transfer != transfer {
			continue
		}
		if stripeCount != 0 && p.StripeCount != stripeCount {
			continue
		}
		if p.BW > best {
			best = p.BW
		}
	}
	return best
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprint(n)
	}
}

// Table renders the figure as aligned text, one block per
// (transfer, stripe count) with series as columns.
func (fr *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", fr.Figure.ID, fr.Figure.Title)
	stripes := fr.Figure.StripeCounts
	if len(stripes) == 0 {
		stripes = []int{4}
	}
	for _, sc := range stripes {
		for _, transfer := range fr.Figure.Transfers {
			fmt.Fprintf(&b, "\n[transfer %s, stripe count %d] bandwidth in MB/s\n",
				sizeLabel(transfer), sc)
			fmt.Fprintf(&b, "%6s", "nodes")
			for _, s := range fr.Figure.Series {
				fmt.Fprintf(&b, " %14s", s.Name)
			}
			b.WriteByte('\n')
			nodes := []int{}
			seen := map[int]bool{}
			for _, p := range fr.Points {
				if !seen[p.Nodes] {
					seen[p.Nodes] = true
					nodes = append(nodes, p.Nodes)
				}
			}
			for _, n := range nodes {
				fmt.Fprintf(&b, "%6d", n)
				for _, s := range fr.Figure.Series {
					bw, err := fr.BW(s.Name, transfer, sc, n)
					if err != nil {
						fmt.Fprintf(&b, " %14s", "-")
						continue
					}
					fmt.Fprintf(&b, " %14.1f", bw/1e6)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// CSV renders all points as comma-separated rows.
func (fr *FigureResult) CSV() string {
	var b strings.Builder
	b.WriteString("figure,series,transfer,stripe_count,nodes,bandwidth_bytes_per_sec\n")
	for _, p := range fr.Points {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.0f\n",
			fr.Figure.ID, p.Series, p.Transfer, p.StripeCount, p.Nodes, p.BW)
	}
	return b.String()
}

// JSON renders the figure's series and evaluated checks as an indented
// machine-readable document (the BENCH_*.json format), so the perf
// trajectory can be diffed across revisions.
func (fr *FigureResult) JSON() ([]byte, error) {
	type jsonPoint struct {
		Series      string  `json:"series"`
		Transfer    int64   `json:"transfer"`
		StripeCount int     `json:"stripe_count"`
		Nodes       int     `json:"nodes"`
		BW          float64 `json:"bandwidth_bytes_per_sec"`
	}
	type jsonCheck struct {
		Desc   string  `json:"desc"`
		Got    float64 `json:"got"`
		Min    float64 `json:"min"`
		Max    float64 `json:"max,omitempty"`
		Paper  float64 `json:"paper,omitempty"`
		Passed bool    `json:"passed"`
		Error  string  `json:"error,omitempty"`
	}
	doc := struct {
		Figure  string         `json:"figure"`
		Title   string         `json:"title"`
		Points  []jsonPoint    `json:"points"`
		Checks  []jsonCheck    `json:"checks,omitempty"`
		Metrics map[string]any `json:"metrics,omitempty"`
	}{Figure: fr.Figure.ID, Title: fr.Figure.Title}
	if len(fr.Metrics) > 0 {
		doc.Metrics = make(map[string]any, len(fr.Metrics))
		for key, snap := range fr.Metrics {
			doc.Metrics[key] = snap.Tree()
		}
	}
	for _, p := range fr.Points {
		doc.Points = append(doc.Points, jsonPoint{
			Series:      p.Series,
			Transfer:    p.Transfer,
			StripeCount: p.StripeCount,
			Nodes:       p.Nodes,
			BW:          p.BW,
		})
	}
	for _, o := range fr.Evaluate() {
		jc := jsonCheck{
			Desc: o.Desc, Got: o.Got, Min: o.Min, Max: o.Max,
			Paper: o.Paper, Passed: o.Passed,
		}
		if o.Err != nil {
			jc.Error = o.Err.Error()
		}
		doc.Checks = append(doc.Checks, jc)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// CheckOutcome is one evaluated shape check.
type CheckOutcome struct {
	Desc   string
	Got    float64
	Min    float64
	Max    float64
	Paper  float64
	Passed bool
	Err    error
}

// Evaluate runs the figure's checks.
func (fr *FigureResult) Evaluate() []CheckOutcome {
	out := make([]CheckOutcome, 0, len(fr.Figure.Checks))
	for _, c := range fr.Figure.Checks {
		o := CheckOutcome{Desc: c.Desc, Min: c.Min, Max: c.Max, Paper: c.Paper}
		got, err := c.Ratio(fr)
		if err != nil {
			o.Err = err
		} else {
			o.Got = got
			o.Passed = got >= c.Min && (c.Max == 0 || got <= c.Max)
		}
		out = append(out, o)
	}
	return out
}
