package bench

import (
	"fmt"
	"sort"
	"time"

	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// The ext-compaction experiment measures the parallel background
// pipeline: one writer sustains a compaction-heavy overwrite workload on
// a PFS-backed LSM store while the background pool runs with 1, 2 and 4
// workers. Three series result, all on the "Nodes" axis reinterpreted as
// MaxBackgroundJobs:
//
//	lsm-jobs       sustained write throughput (workload bytes over the
//	               virtual time until all background work has drained)
//	put-p99-smooth p99 Put latency with write-stall smoothing on,
//	               expressed as effective bandwidth (value bytes / p99)
//	put-p99-hard   p99 Put latency with the soft tier disabled, so
//	               writers run full speed into the hard stall
//
// Latencies are inverted into effective bandwidths so the harness's
// ratio checks compare them the right way up: smooth/hard ≥ 2 encodes
// "the smoothed p99 is at most half the hard-stall p99".
const compValueSize = 4 << 10

// ExtCompaction is the parallel-compaction extension experiment.
func ExtCompaction() Figure {
	f := Figure{
		ID:        "ext-compaction",
		Title:     "EXTENSION: parallel compaction pipeline and write-stall smoothing",
		Transfers: []int64{compValueSize},
		Phase:     PhaseWrite,
		Series: []Series{
			{Name: "lsm-jobs"},
			{Name: "put-p99-smooth"},
			{Name: "put-p99-hard"},
		},
		Checks: []Check{
			{
				Desc: "4 background jobs ≥1.3× single-job write throughput",
				Ratio: func(fr *FigureResult) (float64, error) {
					four, err := fr.BW("lsm-jobs", compValueSize, 4, fr.MaxNodes())
					if err != nil {
						return 0, err
					}
					one, err := fr.BW("lsm-jobs", compValueSize, 4, 1)
					if err != nil {
						return 0, err
					}
					if one == 0 {
						return 0, fmt.Errorf("bench: zero single-job throughput")
					}
					return four / one, nil
				},
				Min: 1.3, Paper: 0,
			},
			{
				Desc:  "smoothed p99 put latency ≤0.5× the hard-stall p99 at 4 jobs",
				Ratio: ratioAtMaxNodes("put-p99-smooth", compValueSize, "put-p99-hard", compValueSize, 4),
				Min:   2, Paper: 0,
			},
		},
	}
	f.Custom = runCompactionFigure
	return f
}

func runCompactionFigure(f Figure, scale Scale, progress func(string)) (*FigureResult, error) {
	fr := &FigureResult{Figure: f}
	totalBytes := 4 * scale.PerRankBytes
	for _, jobs := range []int{1, 2, 4} {
		smoothTotal, smoothP99, smoothSnap, err := runCompactionWorkload(scale, jobs, true)
		if err != nil {
			return nil, fmt.Errorf("ext-compaction jobs=%d smooth: %w", jobs, err)
		}
		_, hardP99, hardSnap, err := runCompactionWorkload(scale, jobs, false)
		if err != nil {
			return nil, fmt.Errorf("ext-compaction jobs=%d hard: %w", jobs, err)
		}
		fr.addMetrics(fmt.Sprintf("jobs-%d-smooth", jobs), smoothSnap)
		fr.addMetrics(fmt.Sprintf("jobs-%d-hard", jobs), hardSnap)
		for _, m := range []struct {
			series string
			bytes  float64
			d      time.Duration
		}{
			{"lsm-jobs", float64(totalBytes), smoothTotal},
			{"put-p99-smooth", compValueSize, smoothP99},
			{"put-p99-hard", compValueSize, hardP99},
		} {
			if m.d <= 0 {
				return nil, fmt.Errorf("ext-compaction %s jobs=%d: zero latency", m.series, jobs)
			}
			fr.Points = append(fr.Points, Point{
				Series:      m.series,
				Transfer:    compValueSize,
				StripeCount: 4,
				Nodes:       jobs,
				BW:          m.bytes / m.d.Seconds(),
			})
			if progress != nil {
				progress(fmt.Sprintf("%s %-14s jobs=%d  %10v  (%9.1f MB/s effective)",
					f.ID, m.series, jobs, m.d.Round(time.Microsecond), m.bytes/m.d.Seconds()/1e6))
			}
		}
	}
	return fr, nil
}

// runCompactionWorkload drives one overwrite-heavy workload on the
// simulated cluster and returns the end-to-end virtual time (including
// the final background drain), the p99 Put latency and the engine's
// registry snapshot (flush/compaction/stall instruments).
func runCompactionWorkload(scale Scale, jobs int, smooth bool) (time.Duration, time.Duration, obs.Snapshot, error) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(1))
	// A fixed 64 puts per memtable keeps the stall frequency (one
	// rotation every 64 writes) scale-invariant, so the p99 latency sees
	// the admission-control behaviour at every scale.
	buf := 64 * compValueSize
	totalPuts := int(4 * scale.PerRankBytes / compValueSize)
	keyspace := totalPuts / 2 // every key overwritten ~twice: compaction debt

	var total, p99 time.Duration
	var snap obs.Snapshot
	var runErr error
	k.Spawn("lsm-writer", func(p *sim.Proc) {
		runErr = func() error {
			opts := lsm.DefaultOptions(cluster.Client(0))
			opts.Platform = lsm.SimPlatform(k)
			opts.AsyncFlush = true
			opts.MaxBackgroundJobs = jobs
			opts.MaxImmutableMemtables = 4
			opts.WriteBufferSize = buf
			opts.L0CompactionTrigger = 4
			opts.BaseLevelSize = int64(4 * buf)
			opts.LevelSizeMultiplier = 4
			opts.BitsPerKey = 0
			opts.DisableCompression = true
			opts.L0StopTrigger = 12
			if smooth {
				opts.L0SlowdownTrigger = 6
				opts.SlowdownDelay = 2 * time.Millisecond
				opts.SoftPendingCompactionBytes = int64(16 * buf)
			} else {
				opts.L0SlowdownTrigger = -1
				opts.SlowdownDelay = -1
				opts.SoftPendingCompactionBytes = -1
			}
			db, err := lsm.Open("lsmdb", opts)
			if err != nil {
				return err
			}
			payload := make([]byte, compValueSize-24)
			lats := make([]time.Duration, 0, totalPuts)
			for i := 0; i < totalPuts; i++ {
				key := fmt.Sprintf("key%08d", i%keyspace)
				start := p.Now()
				if err := db.Put([]byte(key), payload); err != nil {
					return err
				}
				lats = append(lats, p.Now().Sub(start))
			}
			if err := db.Flush(); err != nil {
				return err
			}
			if err := db.WaitBackground(); err != nil {
				return err
			}
			total = p.Now().Duration()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p99 = lats[(len(lats)*99)/100]
			snap = db.Obs().Snapshot()
			return db.Close()
		}()
	})
	if err := k.Run(); err != nil {
		return 0, 0, obs.Snapshot{}, err
	}
	return total, p99, snap, runErr
}
