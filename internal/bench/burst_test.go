package bench

import "testing"

func TestExtBurstFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank simulation sweep skipped in -short mode")
	}
	fig, ok := FigureByID("ext-burst")
	if !ok {
		t.Fatal("ext-burst missing from catalogue")
	}
	scale := Scale{Nodes: []int{1, 4}, PerRankBytes: 2 << 20, BufferSize: 512 << 10}
	var lines int
	fr, err := RunFigure(fig, scale, func(string) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * len(scale.Nodes); len(fr.Points) != want || lines != want {
		t.Fatalf("points=%d progress=%d, want %d", len(fr.Points), lines, want)
	}
	staged, err := fr.BW("burst-staged", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := fr.BW("sync", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The full ≥5× acceptance bar belongs to the paper-scale run; at
	// this reduced scale the staged commit must still clearly beat the
	// synchronous one.
	if staged < 1.5*sync {
		t.Fatalf("staged effective BW %.1f not ahead of sync %.1f", staged/1e6, sync/1e6)
	}
	durable, err := fr.BW("burst-durable", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	syncTotal, err := fr.BW("sync-total", kb64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if durable < syncTotal/1.5 {
		t.Fatalf("time-to-durable blew up: durable %.1f vs sync-total %.1f MB/s",
			durable/1e6, syncTotal/1e6)
	}
	for _, o := range fr.Evaluate() {
		if o.Err != nil {
			t.Fatalf("check %q errored: %v", o.Desc, o.Err)
		}
	}
}
