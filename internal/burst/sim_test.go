package burst

import (
	"testing"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// slowPFSConfig is a deliberately slow one-node parallel file system,
// so the gap between staging (memory) and durable (PFS) is visible in
// virtual time.
func slowPFSConfig() pfs.Config {
	return pfs.Config{
		ComputeNodes:       1,
		NumOSTs:            2,
		NumOSSs:            1,
		DefaultStripeCount: 1,
		OSTSeqWriteBW:      10e6, // 10 MB/s per OST
		OSTSeqReadBW:       10e6,
	}
}

// simTier builds, inside simulation process p, a tier whose staging
// store lives on an in-memory FS and whose durable store lives on the
// given PFS client. Returns the tier and the two managers.
func simTier(t *testing.T, k *sim.Kernel, fs vfs.FS, opts Options) (*Tier, *core.Manager, *core.Manager) {
	t.Helper()
	smgr, err := core.NewManager("stage", core.ManagerOptions{
		Store:  core.StoreOptions{FS: vfs.NewMemFS(), Platform: lsm.SimPlatform(k)},
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	dmgr, err := core.NewManager("app", core.ManagerOptions{
		Store:  core.StoreOptions{FS: fs, Platform: lsm.SimPlatform(k), Async: true},
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.Kernel = k
	tier := New(ckpt.New(smgr, ckpt.Options{}), ckpt.New(dmgr, ckpt.Options{}), opts)
	return tier, smgr, dmgr
}

// TestSimWorkerHidesDrainLatency proves the stall-hiding claim in
// virtual time: with the worker draining in the background, Commit
// returns at staging speed while durability arrives at PFS speed.
func TestSimWorkerHidesDrainLatency(t *testing.T) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, slowPFSConfig())
	var stagedStall, durableAt time.Duration
	k.Spawn("app", func(p *sim.Proc) {
		tier, smgr, dmgr := simTier(t, k, cluster.Client(0), Options{})
		tier.StartWorker()
		payload := make([]byte, 1<<20)
		for step := int64(1); step <= 3; step++ {
			c, err := tier.Begin(step)
			if err != nil {
				t.Errorf("begin: %v", err)
				return
			}
			if err := c.Write("state", payload); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			start := p.Now()
			if err := c.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			stagedStall += p.Now().Sub(start)
			p.Sleep(50 * time.Millisecond) // compute phase; drain overlaps
		}
		if err := tier.Sync(); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		durableAt = p.Now().Duration()
		if err := tier.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if c := tier.Counters(); c.DrainedSteps != 3 || c.MaxDrainLag == 0 {
			t.Errorf("counters: %+v", c)
		}
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 3 MB through a ~10 MB/s durable tier costs ≥ ~300 ms of virtual
	// time; the staged stalls must be far below that.
	if durableAt < 200*time.Millisecond {
		t.Fatalf("durable completion at %v; PFS model suspiciously fast", durableAt)
	}
	if stagedStall*5 > durableAt {
		t.Fatalf("staged stall %v not hidden vs time-to-durable %v", stagedStall, durableAt)
	}
}

// TestSimDrainRateLimit checks the drain scheduler's pacing: with a
// rate limit, draining N bytes takes at least N/rate of virtual time
// and the throttle counter records the idle gap.
func TestSimDrainRateLimit(t *testing.T) {
	k := sim.NewKernel()
	var end time.Duration
	var counters Counters
	k.Spawn("app", func(p *sim.Proc) {
		// Both tiers in memory: the only time cost is the pacing.
		tier, smgr, dmgr := simTier(t, k, vfs.NewMemFS(), Options{DrainRate: 1e6})
		// Durable MemFS manager still needs no PFS; overwrite not needed.
		tier.StartWorker()
		for step := int64(1); step <= 2; step++ {
			c, _ := tier.Begin(step)
			if err := c.Write("v", make([]byte, 1<<20)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if err := c.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
		if err := tier.Sync(); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		end = p.Now().Duration()
		counters = tier.Counters()
		tier.Close()
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 MiB at 1 MB/s ≥ 2.09 s of virtual time.
	if want := 2 * time.Second; end < want {
		t.Fatalf("rate-limited drain finished at %v, want ≥ %v", end, want)
	}
	if counters.ThrottleTime == 0 {
		t.Fatal("throttle time not accounted")
	}
}

// TestSimBudgetBackpressureBlocks checks flow control with a worker:
// a full staging budget parks the committing process until the drain
// frees space, and the wait is recorded as stall time.
func TestSimBudgetBackpressureBlocks(t *testing.T) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, slowPFSConfig())
	var counters Counters
	k.Spawn("app", func(p *sim.Proc) {
		// Budget below two steps: step N+1 must wait for step N's drain.
		tier, smgr, dmgr := simTier(t, k, cluster.Client(0), Options{StagingBudget: 3 << 20})
		tier.StartWorker()
		for step := int64(1); step <= 3; step++ {
			c, _ := tier.Begin(step)
			if err := c.Write("state", make([]byte, 2<<20)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if err := c.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
		if err := tier.Sync(); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		counters = tier.Counters()
		tier.Close()
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if counters.StallTime == 0 {
		t.Fatal("full staging budget never stalled a commit")
	}
	if counters.HighWater > 3<<20 {
		t.Fatalf("high-water %d exceeded budget", counters.HighWater)
	}
	if counters.DrainedSteps != 3 {
		t.Fatalf("counters: %+v", counters)
	}
}

// TestDrainRetryAccounting injects transient OST faults during a drain
// and checks the pfs retry counters surface them — and that ResetStats
// opens a clean accounting window.
func TestDrainRetryAccounting(t *testing.T) {
	cfg := slowPFSConfig()
	cfg.RetryMax = 3
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 8 * time.Millisecond
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, cfg)
	k.Spawn("app", func(p *sim.Proc) {
		tier, smgr, dmgr := simTier(t, k, cluster.Client(0), Options{})
		c, err := tier.Begin(1)
		if err != nil {
			t.Errorf("begin: %v", err)
			return
		}
		if err := c.Write("state", make([]byte, 256<<10)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := c.Commit(); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		// Staging took no PFS traffic; the drain is the first PFS load.
		// Isolate its accounting window, then fault its first two write
		// RPC attempts.
		cluster.ResetStats()
		if st := cluster.Stats(); st.Retries != 0 || st.FaultsInjected != 0 || st.WriteOps != 0 {
			t.Errorf("ResetStats left residue: %+v", st)
			return
		}
		fails := 2
		cluster.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if write && fails > 0 {
				fails--
				return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: true}
			}
			return nil
		})
		if err := tier.WaitDurable(1); err != nil {
			t.Errorf("drain under transient faults failed: %v", err)
			return
		}
		st := cluster.Stats()
		if st.Retries != 2 || st.FaultsInjected != 2 {
			t.Errorf("drain retry accounting: Retries=%d FaultsInjected=%d, want 2/2",
				st.Retries, st.FaultsInjected)
		}
		if st.BytesWritten == 0 {
			t.Error("drain wrote no bytes to the PFS")
		}
		cluster.InjectFaults(nil)
		cluster.ResetStats()
		if st := cluster.Stats(); st.Retries != 0 || st.FaultsInjected != 0 {
			t.Errorf("second ResetStats left residue: %+v", st)
		}
		tier.Close()
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSimWorkerSurvivesEmptyQueueShutdown: closing a tier whose worker
// is parked on an empty queue must not deadlock the kernel (the worker
// is a daemon process).
func TestSimWorkerSurvivesEmptyQueueShutdown(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("app", func(p *sim.Proc) {
		tier, smgr, dmgr := simTier(t, k, vfs.NewMemFS(), Options{})
		tier.StartWorker()
		p.Sleep(time.Millisecond)
		if err := tier.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := tier.Sync(); err != nil {
			t.Errorf("sync after close: %v", err)
		}
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
