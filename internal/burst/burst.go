// Package burst is a write-back burst-buffer staging tier for
// checkpoints (the paper's §5.1 "faster tier in front of LSMIO" future
// work). Checkpoint writes land in a bounded staging store — an
// in-memory filesystem or an NVMe-tier pfs.ClientFS — and Commit
// returns as soon as the step is staged-consistent there. Background
// drain workers then copy completed steps into the PFS-backed durable
// store, preserving the ckpt commit contract on the slow tier: the
// drained data's write barrier always precedes the durable manifest
// install, so a crash mid-drain recovers to either the staged or the
// durable image, never a mix.
//
//	tier := burst.New(stagingStore, durableStore, burst.Options{
//		StagingBudget: 4 << 30,
//		Kernel:        k, // nil outside the simulator
//	})
//	tier.StartWorker()
//	c, _ := tier.Begin(step)
//	c.Write("temperature", data)
//	c.Commit()            // returns at staged-consistent
//	...compute phase...
//	tier.WaitDurable(step) // returns at durable-on-PFS
//
// Flow control: when the bytes staged but not yet drained exceed
// Options.StagingBudget, Commit blocks until the drain catches up
// (backpressure). A drain rate limit keeps background draining from
// monopolizing the PFS against the next compute phase's own I/O.
//
// The tier runs in two concurrency modes. Inside the simulator
// (Options.Kernel set) the drain worker is a daemon simulation process
// and all interleaving is cooperative, so the in-memory state needs no
// locking. Outside it the worker is a goroutine and a mutex/cond pair
// guards the same state.
package burst

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/iosched"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// Options configures a staging tier.
type Options struct {
	// StagingBudget bounds the bytes committed to the staging tier but
	// not yet drained; Commit blocks while a new step would exceed it.
	// Zero means unbounded (no backpressure).
	StagingBudget int64
	// DrainRate paces the background drain in bytes per second of
	// wall-clock (or virtual) time, so draining does not contend with
	// the application's next I/O phase. Zero means drain flat-out.
	// Ignored when IOSched is enabled.
	DrainRate float64
	// IOSched, when set and enabled, supersedes DrainRate: the drain
	// worker buys Drain-class tokens from the shared bandwidth
	// scheduler for each step's bytes, so drain pacing is arbitrated
	// globally against the LSM engine's flush/compaction I/O and the
	// PFS scrubber instead of by a private sleep loop.
	IOSched *iosched.Scheduler
	// Kernel must be set when the tier runs inside the simulator; the
	// drain worker is then a simulation process and all waits park the
	// calling process. Nil outside the simulator (goroutine worker).
	Kernel *sim.Kernel
	// DrainPolicy is the shared resil retry/timeout discipline applied
	// to each step's drain: transient failures (e.g. a PFS retry budget
	// exhausted on a flaky target) are retried with deterministic
	// backoff, and Policy.Timeout bounds one step's whole drain —
	// attempts plus backoffs — on the tier's clock, failing the step
	// with an error wrapping context.DeadlineExceeded on expiry. The
	// zero value keeps the historical behavior: one attempt, no
	// deadline.
	DrainPolicy resil.Policy
	// DrainCtx, when set, cancels draining cooperatively: the context
	// is checked between drain attempts (an attempt in flight is never
	// interrupted) and a canceled context fails the step with the
	// context error, classified ClassCanceled and never retried. Nil
	// means no cancellation.
	DrainCtx context.Context
	// Obs is the metrics/trace registry the tier records into, under the
	// `burst.` prefix. Nil creates a private registry clocked by the
	// tier's own monotonic clock; callers that manage several subsystems
	// inject a shared one so a single snapshot covers the whole stack.
	Obs *obs.Registry
}

// Counters are the tier's cumulative performance counters.
type Counters struct {
	StagedSteps  int64 // steps acknowledged staged-consistent
	StagedBytes  int64 // payload bytes of those steps
	DrainedSteps int64 // steps copied to the durable store
	DrainedBytes int64
	DrainErrors  int64 // failed drain attempts (step left staged)
	// DrainErrors broken down by failure class: DrainTransient counts
	// attempts whose error marked itself retryable (TransientFault) —
	// the PFS retry budget was exhausted on a flaky target — while
	// DrainTargetDown counts attempts refused by a down storage target
	// (TargetDown, e.g. a dead OST behind a breakered route). The
	// distinction tells operators whether to wait or to re-stripe.
	DrainTransient  int64
	DrainTargetDown int64
	// DrainCanceled counts drains failed by DrainCtx cancellation or a
	// DrainPolicy.Timeout deadline; DrainRetries counts policy-level
	// retry decisions (whole drainStep re-runs, not pfs RPC retries).
	DrainCanceled int64
	DrainRetries  int64
	PendingSteps  int64 // staged, not yet drained
	PendingBytes int64
	HighWater    int64         // max PendingBytes ever observed
	StallTime    time.Duration // Commit time blocked on the staging budget
	ThrottleTime time.Duration // drain time spent pacing to DrainRate
	DrainLag     time.Duration // staged→durable latency of the last drain
	MaxDrainLag  time.Duration
}

// stagedStep is one committed step queued for draining.
type stagedStep struct {
	step     int64
	bytes    int64
	stagedAt time.Duration
}

// Tier is a write-back staging tier between an application and a
// durable checkpoint store.
type Tier struct {
	staging *ckpt.Store
	durable *ckpt.Store
	opts    Options
	k       *sim.Kernel

	// go-mode synchronization (unused under the simulator, where the
	// cooperative kernel serializes all state access).
	mu    sync.Mutex
	cond  *sync.Cond
	wgw   sync.WaitGroup
	epoch time.Time

	// sim-mode wait channel.
	sig *sim.Signal

	// Shared state; guarded by mu in go mode, by cooperative
	// scheduling in sim mode.
	queue    []stagedStep
	pending  map[int64]bool // staged or draining, not yet finished
	failed   map[int64]error
	lastErr  error // sticky first drain error; disables backpressure
	inFlight int   // steps popped from queue, drain not yet finished
	workerOn bool
	closed   bool

	// pendingBytes is the authoritative backpressure accounting (it
	// drives admission control and must survive a counter reset); the
	// burst.pending.bytes gauge mirrors it for observability.
	pendingBytes int64

	reg *obs.Registry
	m   tierMetrics
}

// New builds a staging tier draining from staging into durable. The
// two stores must be distinct; durable retention (ckpt.Options.Keep)
// applies on the durable store as steps arrive there.
func New(staging, durable *ckpt.Store, opts Options) *Tier {
	t := &Tier{
		staging: staging,
		durable: durable,
		opts:    opts,
		k:       opts.Kernel,
		pending: make(map[int64]bool),
		failed:  make(map[int64]error),
		epoch:   time.Now(),
	}
	if t.k != nil {
		t.sig = sim.NewSignal(t.k)
	} else {
		t.cond = sync.NewCond(&t.mu)
	}
	t.reg = opts.Obs
	if t.reg == nil {
		t.reg = obs.NewRegistry()
		t.reg.SetClock(t.now)
	}
	t.m = newTierMetrics(t.reg)
	return t
}

// lock/unlock guard the tier's in-memory state. Under the simulator
// they are no-ops: the cooperative kernel runs one process at a time,
// and the critical sections below never park. Never call a manager or
// store inside the critical section — store I/O parks the process.
func (t *Tier) lock() {
	if t.k == nil {
		t.mu.Lock()
	}
}

func (t *Tier) unlock() {
	if t.k == nil {
		t.mu.Unlock()
	}
}

// wait parks the caller until the next wake; the lock is released
// while parked, per sync.Cond semantics. Callers re-check their
// condition in a loop.
func (t *Tier) wait() {
	if t.k == nil {
		t.cond.Wait()
		return
	}
	t.sig.Wait(t.k.Current())
}

func (t *Tier) wake() {
	if t.k == nil {
		t.cond.Broadcast()
		return
	}
	t.sig.Broadcast()
}

// now is the tier's monotonic clock: virtual time inside the
// simulator, wall time outside.
func (t *Tier) now() time.Duration {
	if t.k != nil {
		return t.k.Now().Duration()
	}
	return time.Since(t.epoch)
}

// Counters returns a snapshot of the tier's counters. It is a legacy
// view over the tier's `burst.` instruments in the obs registry.
func (t *Tier) Counters() Counters {
	t.lock()
	defer t.unlock()
	return Counters{
		StagedSteps:     t.m.stagedSteps.Load(),
		StagedBytes:     t.m.stagedBytes.Load(),
		DrainedSteps:    t.m.drainedSteps.Load(),
		DrainedBytes:    t.m.drainedBytes.Load(),
		DrainErrors:     t.m.drainErrors.Load(),
		DrainTransient:  t.m.drainTransient.Load(),
		DrainTargetDown: t.m.drainTargetDown.Load(),
		DrainCanceled:   t.m.drainCanceled.Load(),
		DrainRetries:    t.m.drainRetries.Load(),
		PendingSteps:    int64(len(t.queue) + t.inFlight),
		PendingBytes:    t.pendingBytes,
		HighWater:       t.m.highWater.Load(),
		StallTime:       time.Duration(t.m.stallNanos.Load()),
		ThrottleTime:    time.Duration(t.m.throttleNanos.Load()),
		DrainLag:        time.Duration(t.m.lagNanos.Load()),
		MaxDrainLag:     time.Duration(t.m.maxLagNanos.Load()),
	}
}

// Obs returns the tier's metrics/trace registry (the injected one when
// Options.Obs was set, a private one otherwise).
func (t *Tier) Obs() *obs.Registry { return t.reg }

// ResetCounters zeroes every `burst.` instrument (the trace ring is
// kept). The authoritative backpressure accounting is unaffected; the
// pending.bytes gauge is immediately restored from it so the snapshot
// view stays coherent.
func (t *Tier) ResetCounters() {
	t.lock()
	defer t.unlock()
	t.reg.ResetPrefix("burst.")
	t.m.pendingBytes.Set(t.pendingBytes)
	t.m.highWater.SetMax(t.pendingBytes)
}

// Checkpoint is an in-progress staged checkpoint; Commit acknowledges
// it staged-consistent and queues it for draining.
type Checkpoint struct {
	t     *Tier
	inner *ckpt.Checkpoint
	step  int64
	bytes int64
}

// Begin starts checkpoint `step` in the staging tier. Steps must be
// unique across the tier's lifetime, including steps already drained.
func (t *Tier) Begin(step int64) (*Checkpoint, error) {
	if _, err := t.durable.Manifest(step); err == nil {
		return nil, fmt.Errorf("burst: step %d already durable", step)
	}
	inner, err := t.staging.Begin(step)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{t: t, inner: inner, step: step}, nil
}

// Write stores one named variable in the staged checkpoint.
func (c *Checkpoint) Write(name string, data []byte) error {
	if err := c.inner.Write(name, data); err != nil {
		return err
	}
	c.bytes += int64(len(data))
	return nil
}

// Abort discards the uncommitted staged checkpoint.
func (c *Checkpoint) Abort() error { return c.inner.Abort() }

// Commit blocks while the staging budget is exhausted (backpressure),
// then makes the step staged-consistent (barrier + manifest on the
// staging store) and queues it for draining. When Commit returns the
// step survives a staging-tier-preserving restart, but is not yet
// durable on the PFS — use WaitDurable or Sync for that.
func (c *Checkpoint) Commit() error {
	t := c.t
	t.admit(c.bytes)
	if err := c.inner.Commit(); err != nil {
		return err
	}
	t.lock()
	t.queue = append(t.queue, stagedStep{step: c.step, bytes: c.bytes, stagedAt: t.now()})
	t.pending[c.step] = true
	t.m.stagedSteps.Inc()
	t.m.stagedBytes.Add(c.bytes)
	t.pendingBytes += c.bytes
	t.m.pendingBytes.Set(t.pendingBytes)
	t.m.highWater.SetMax(t.pendingBytes)
	t.unlock()
	t.m.trace.Emitf("burst.stage", "step=%d bytes=%d", c.step, c.bytes)
	t.wake()
	return nil
}

// admit blocks until `bytes` fits inside the staging budget. A step
// larger than the whole budget is admitted once the tier is empty
// (otherwise it could never commit), and a sticky drain error disables
// blocking so a broken drain surfaces at Sync instead of deadlocking
// the application.
func (t *Tier) admit(bytes int64) {
	if t.opts.StagingBudget <= 0 {
		return
	}
	start := t.now()
	t.lock()
	for t.pendingBytes > 0 && t.pendingBytes+bytes > t.opts.StagingBudget &&
		t.lastErr == nil && !t.closed {
		if !t.workerOn {
			// No background worker: reclaim budget by draining the
			// oldest step inline on the caller.
			t.unlock()
			t.DrainPending(1)
			t.lock()
			continue
		}
		t.wait()
	}
	t.m.stallNanos.Add(int64(t.now() - start))
	t.unlock()
}
