package burst

import (
	"context"
	"errors"
	"testing"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// pfsStagingTier builds a tier whose STAGING store lives on the given
// PFS client (so staged reads can be faulted) and whose durable store
// is an in-memory FS. The inverse of simTier, for drain-policy tests:
// staging read failures do not poison the durable engine, so a
// drain-level retry can actually succeed.
func pfsStagingTier(t *testing.T, k *sim.Kernel, fs vfs.FS, opts Options) (*Tier, *core.Manager, *core.Manager) {
	t.Helper()
	smgr, err := core.NewManager("stage", core.ManagerOptions{
		Store:  core.StoreOptions{FS: fs, Platform: lsm.SimPlatform(k)},
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	dmgr, err := core.NewManager("app", core.ManagerOptions{
		Store:  core.StoreOptions{FS: vfs.NewMemFS(), Platform: lsm.SimPlatform(k)},
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.Kernel = k
	tier := New(ckpt.New(smgr, ckpt.Options{}), ckpt.New(dmgr, ckpt.Options{}), opts)
	return tier, smgr, dmgr
}

// TestDrainPolicyRetriesTransientReadFaults: a staged read whose pfs
// retry budget is exhausted surfaces a transient-marked error; the
// drain policy must re-run the whole (idempotent) drainStep and
// succeed once the fault clears.
func TestDrainPolicyRetriesTransientReadFaults(t *testing.T) {
	cfg := slowPFSConfig()
	cfg.RetryMax = 1
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 4 * time.Millisecond
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, cfg)
	k.Spawn("app", func(p *sim.Proc) {
		tier, smgr, dmgr := pfsStagingTier(t, k, cluster.Client(0), Options{
			DrainPolicy: resil.Policy{MaxRetries: 2, BaseDelay: time.Millisecond},
		})
		c, err := tier.Begin(1)
		if err != nil {
			t.Errorf("begin: %v", err)
			return
		}
		if err := c.Write("state", make([]byte, 256<<10)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := c.Commit(); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		// Fail every read RPC until the pfs-level budget (RetryMax=1,
		// so 2 attempts) is gone at least once, forcing one whole
		// drainStep attempt to fail before the fault clears.
		fails := 2
		cluster.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if !write && fails > 0 {
				fails--
				return &faultfs.InjectedError{Op: faultfs.OpRead, Transient: true}
			}
			return nil
		})
		if err := tier.WaitDurable(1); err != nil {
			t.Errorf("drain with policy retry failed: %v", err)
			return
		}
		cnt := tier.Counters()
		if cnt.DrainRetries == 0 || cnt.DrainedSteps != 1 || cnt.DrainErrors != 0 {
			t.Errorf("counters: %+v", cnt)
		}
		if _, err := tier.durable.Manifest(1); err != nil {
			t.Errorf("step not durable after retried drain: %v", err)
		}
		cluster.InjectFaults(nil)
		tier.Close()
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainPolicyTimeoutFailsStep: with every staged read failing
// transiently forever, DrainPolicy.Timeout must bound the drain in
// virtual time and fail the step with a deadline error (classified
// canceled, never counted transient), leaving the staged copy intact.
func TestDrainPolicyTimeoutFailsStep(t *testing.T) {
	cfg := slowPFSConfig()
	cfg.RetryMax = 1
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 4 * time.Millisecond
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, cfg)
	k.Spawn("app", func(p *sim.Proc) {
		tier, smgr, dmgr := pfsStagingTier(t, k, cluster.Client(0), Options{
			DrainPolicy: resil.Policy{
				MaxRetries: 100,
				BaseDelay:  time.Millisecond,
				Timeout:    10 * time.Millisecond,
			},
		})
		c, _ := tier.Begin(1)
		if err := c.Write("state", make([]byte, 64<<10)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := c.Commit(); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		cluster.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if !write {
				return &faultfs.InjectedError{Op: faultfs.OpRead, Transient: true}
			}
			return nil
		})
		start := p.Now()
		err := tier.WaitDurable(1)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("want deadline error, got %v", err)
			return
		}
		// The whole drain — attempts plus backoffs — stayed near the
		// 10ms budget instead of burning the full 100-retry schedule.
		if elapsed := p.Now().Sub(start); elapsed > 100*time.Millisecond {
			t.Errorf("timed-out drain took %v of virtual time", elapsed)
		}
		cnt := tier.Counters()
		if cnt.DrainErrors != 1 || cnt.DrainCanceled != 1 || cnt.DrainTransient != 0 {
			t.Errorf("counters: %+v", cnt)
		}
		// Failed step stays staged for a later re-queue (Recover).
		cluster.InjectFaults(nil)
		if _, err := tier.staging.Manifest(1); err != nil {
			t.Errorf("staged copy lost after timed-out drain: %v", err)
		}
		smgr.Close()
		dmgr.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainCtxCancellation: a canceled DrainCtx fails queued drains
// immediately with the context error — no attempt started, classified
// canceled — and surfaces through Sync's sticky error.
func TestDrainCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tier, staging, _, closeFn := newMemTier(t, 0, Options{DrainCtx: ctx})
	defer closeFn()
	commitStep(t, tier, 1, 4<<10)
	n, err := tier.DrainPending(1)
	if n != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("DrainPending = %d, %v; want 1 canceled attempt", n, err)
	}
	if err := tier.Sync(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sync sticky error = %v", err)
	}
	cnt := tier.Counters()
	if cnt.DrainCanceled != 1 || cnt.DrainedSteps != 0 {
		t.Fatalf("counters: %+v", cnt)
	}
	if _, err := staging.Manifest(1); err != nil {
		t.Fatalf("staged copy lost after canceled drain: %v", err)
	}
}

// TestTierRestoreRoutesThroughPipeline: Tier.Restore gives each tier
// the full self-healing pipeline — a corrupt staged-only step is
// quarantined on the staging store and the restore falls back to the
// durable tier, never mixing the two.
func TestTierRestoreRoutesThroughPipeline(t *testing.T) {
	tier, staging, _, closeFn := newMemTier(t, 0, Options{})
	defer closeFn()
	want := commitStep(t, tier, 1, 4<<10)
	if err := tier.WaitDurable(1); err != nil {
		t.Fatal(err)
	}
	commitStep(t, tier, 2, 4<<10) // staged only, not drained
	// Damage the staged copy of step 2.
	if err := staging.Manager().Put("ckpt/data/0000000000000002/temperature", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	step, vars, rep, err := tier.Restore(ckpt.RestoreOptions{Parallel: 2})
	if err != nil || step != 1 {
		t.Fatalf("restore: step=%d err=%v", step, err)
	}
	for name, data := range want {
		if string(vars[name]) != string(data) {
			t.Fatalf("variable %s differs after cross-tier fallback", name)
		}
	}
	if rep == nil || rep.Parallel != 2 {
		t.Fatalf("report: %+v", rep)
	}
	q, err := staging.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[2] == "" {
		t.Fatalf("staging quarantine = %v, want exactly step 2", q)
	}
}
