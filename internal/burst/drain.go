package burst

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/iosched"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// tierClock adapts the tier's monotonic clock (virtual time inside the
// simulator, wall time outside) to the resil.Clock the drain policy
// runs on. Sleep charges backoff to the draining process.
type tierClock struct{ t *Tier }

func (c tierClock) Now() time.Duration { return c.t.now() }

func (c tierClock) Sleep(d time.Duration) {
	if c.t.k != nil {
		c.t.k.Current().Sleep(d)
		return
	}
	time.Sleep(d)
}

// StartWorker launches the background drain worker: a daemon
// simulation process under the simulator, a goroutine outside it. At
// most one worker runs per tier; extra calls are no-ops.
func (t *Tier) StartWorker() {
	t.lock()
	if t.workerOn || t.closed {
		t.unlock()
		return
	}
	t.workerOn = true
	t.unlock()
	if t.k != nil {
		t.k.Spawn("burst-drain", func(p *sim.Proc) {
			t.runWorker(p.Sleep)
		}).SetDaemon(true)
		return
	}
	t.wgw.Add(1)
	go func() {
		defer t.wgw.Done()
		t.runWorker(time.Sleep)
	}()
}

// runWorker drains queued steps oldest-first until the tier closes,
// pacing itself to Options.DrainRate between steps.
func (t *Tier) runWorker(sleep func(time.Duration)) {
	for {
		t.lock()
		for len(t.queue) == 0 && !t.closed {
			t.wait()
		}
		if len(t.queue) == 0 && t.closed {
			t.unlock()
			return
		}
		item := t.queue[0]
		t.queue = t.queue[1:]
		t.inFlight++
		t.unlock()

		if t.opts.IOSched.Enabled() {
			// The shared bandwidth scheduler replaces the private
			// DrainRate pacing: the step buys Drain-class tokens before
			// its I/O is issued, so drain bandwidth is arbitrated against
			// flush, compaction and scrub instead of by a local sleep.
			// The wait still feeds the legacy throttle counter, which is
			// now a snapshot view of iosched.drain.wait_nanos.
			if w := t.opts.IOSched.Acquire(iosched.Drain, item.bytes); w > 0 {
				t.m.throttleNanos.Add(int64(w))
			}
			t.finish(item, t.drain(item))
			continue
		}
		start := t.now()
		err := t.drain(item)
		if err == nil && t.opts.DrainRate > 0 {
			// Rate limit: stretch this step's drain to at least
			// bytes/DrainRate so the PFS keeps headroom for the
			// application's own I/O.
			target := time.Duration(float64(item.bytes) / t.opts.DrainRate * float64(time.Second))
			if pause := target - (t.now() - start); pause > 0 {
				sleep(pause)
				t.m.throttleNanos.Add(int64(pause))
			}
		}
		t.finish(item, err)
	}
}

// drain runs one step's drainStep under Options.DrainPolicy: transient
// failures retry with deterministic per-step backoff seeds, while
// DrainCtx cancellation and the policy deadline fail the step with an
// error classified ClassCanceled. drainStep is idempotent, so a retry
// after a partial durable write re-verifies and resumes cleanly.
func (t *Tier) drain(item stagedStep) error {
	p := t.opts.DrainPolicy
	p.OnRetry = func(attempt int, err error) {
		t.m.drainRetries.Inc()
		t.m.trace.Emitf("burst.drain.retry", "step=%d attempt=%d err=%v", item.step, attempt+1, err)
	}
	seed := uint64(item.step+1) * 0x9e3779b97f4a7c15
	return p.Do(t.opts.DrainCtx, tierClock{t}, seed, func(int) error {
		return t.drainStep(item)
	})
}

// drainStep copies one staged step into the durable store and drops
// the staged copy. The copy goes through the normal ckpt commit path,
// so the durable data barrier precedes the durable manifest — the §6
// contract holds on the slow tier exactly as for a direct commit. The
// step is idempotent: if a previous attempt (or a pre-crash run)
// already installed the step durably, only the staged copy is dropped.
func (t *Tier) drainStep(item stagedStep) error {
	vars, err := t.staging.ReadAll(item.step) // checksum-verified
	if err != nil {
		return err
	}
	if _, err := t.durable.Manifest(item.step); err == nil {
		return t.staging.Drop(item.step)
	}
	w, err := t.durable.Begin(item.step)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := w.Write(name, vars[name]); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Commit(); err != nil {
		return err
	}
	return t.staging.Drop(item.step)
}

// finish records a drain attempt's outcome and releases the step's
// budget. A failed step stays in the staging store for inspection but
// leaves the queue; the first failure is sticky in lastErr (surfaced
// by Sync) and disables backpressure blocking.
func (t *Tier) finish(item stagedStep, err error) {
	t.lock()
	t.inFlight--
	delete(t.pending, item.step)
	t.pendingBytes -= item.bytes
	t.m.pendingBytes.Set(t.pendingBytes)
	if err != nil {
		t.failed[item.step] = err
		if t.lastErr == nil {
			t.lastErr = err
		}
		t.m.drainErrors.Inc()
		// Classify on the shared resil taxonomy so operators can tell a
		// flaky target (wait and retry) from a dead one (re-stripe) from
		// a canceled or timed-out drain (deliberate; re-queue later).
		switch resil.Classify(err) {
		case resil.ClassTargetDown:
			t.m.drainTargetDown.Inc()
		case resil.ClassTransient:
			t.m.drainTransient.Inc()
		case resil.ClassCanceled:
			t.m.drainCanceled.Inc()
		}
	} else {
		t.m.drainedSteps.Inc()
		t.m.drainedBytes.Add(item.bytes)
		lag := t.now() - item.stagedAt
		t.m.lagNanos.Set(int64(lag))
		t.m.maxLagNanos.SetMax(int64(lag))
		t.m.lagHist.ObserveDuration(lag)
	}
	t.unlock()
	if err != nil {
		t.m.trace.Emitf("burst.drain.error", "step=%d bytes=%d err=%v", item.step, item.bytes, err)
	} else {
		t.m.trace.EmitSpan("burst.drain",
			fmt.Sprintf("step=%d bytes=%d", item.step, item.bytes), item.stagedAt)
	}
	t.wake()
}

// DrainPending drains up to max queued steps inline on the caller
// (all of them when max < 0), returning the number drained and the
// first error. It is the deterministic no-worker drain path; with a
// worker running it simply competes for queued steps.
func (t *Tier) DrainPending(max int) (int, error) {
	n := 0
	var firstErr error
	for max < 0 || n < max {
		t.lock()
		if len(t.queue) == 0 {
			t.unlock()
			break
		}
		item := t.queue[0]
		t.queue = t.queue[1:]
		t.inFlight++
		t.unlock()
		err := t.drain(item)
		t.finish(item, err)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		n++
	}
	return n, firstErr
}

// WaitDurable blocks until the given committed step has drained to the
// durable store, returning its drain error if the drain failed. With
// no worker running the caller drains inline. Steps never staged (or
// drained long ago) return immediately.
func (t *Tier) WaitDurable(step int64) error {
	t.lock()
	for t.pending[step] {
		if !t.workerOn {
			t.unlock()
			t.DrainPending(1)
			t.lock()
			continue
		}
		t.wait()
	}
	err := t.failed[step]
	t.unlock()
	return err
}

// Sync blocks until every committed step has drained, returning the
// sticky first drain error, if any.
func (t *Tier) Sync() error {
	t.lock()
	for len(t.queue) > 0 || t.inFlight > 0 {
		if !t.workerOn && len(t.queue) > 0 {
			t.unlock()
			t.DrainPending(-1)
			t.lock()
			continue
		}
		t.wait()
	}
	err := t.lastErr
	t.unlock()
	return err
}

// Close drains everything still queued, stops the worker and returns
// the sticky drain error. The underlying stores' managers remain open
// (the tier does not own them).
func (t *Tier) Close() error {
	err := t.Sync()
	t.lock()
	t.closed = true
	t.unlock()
	t.wake()
	if t.k == nil {
		t.wgw.Wait()
	}
	return err
}

// Recover rebuilds the drain queue after a restart. Staged steps that
// already made it to the durable store are dropped from staging;
// staged steps that verify clean are re-queued for draining; corrupt
// or incomplete staged steps (a crash mid-stage) are quarantined so
// RestoreLatest falls back past them.
func (t *Tier) Recover() error {
	steps, err := t.staging.Steps()
	if err != nil {
		return err
	}
	requeued := false
	for _, step := range steps {
		if _, err := t.durable.Manifest(step); err == nil {
			if err := t.staging.Drop(step); err != nil {
				return err
			}
			continue
		}
		if verr := t.staging.Verify(step); verr != nil {
			if errors.Is(verr, ckpt.ErrCorrupt) || errors.Is(verr, ckpt.ErrIncomplete) {
				if qerr := t.staging.Quarantine(step, verr.Error()); qerr != nil {
					return qerr
				}
				t.m.trace.Emitf("burst.recover.quarantine", "step=%d err=%v", step, verr)
				continue
			}
			return verr
		}
		size, err := t.staging.Size(step)
		if err != nil {
			return err
		}
		t.lock()
		if !t.pending[step] {
			t.queue = append(t.queue, stagedStep{step: step, bytes: size, stagedAt: t.now()})
			t.pending[step] = true
			t.pendingBytes += size
			t.m.pendingBytes.Set(t.pendingBytes)
			t.m.highWater.SetMax(t.pendingBytes)
			requeued = true
			t.unlock()
			t.m.trace.Emitf("burst.recover.requeue", "step=%d bytes=%d", step, size)
			continue
		}
		t.unlock()
	}
	if requeued {
		t.wake()
	}
	return nil
}

// Restore routes a restore through the self-healing ckpt pipeline on
// both tiers and returns the newest usable checkpoint — the staged
// image when it is newer than anything durable, the durable image
// otherwise. Each tier independently gets the full pipeline (parallel
// verified reads, quarantine-and-fallback, optional journal and delta
// snapshot from opts), but the restored image always comes wholly from
// one tier, never a mix of a partially-drained step. The returned
// report is the winning tier's.
func (t *Tier) Restore(opts ckpt.RestoreOptions) (int64, map[string][]byte, *ckpt.RestoreReport, error) {
	sStep, sVars, sRep, sErr := t.staging.Restore(opts)
	if sErr != nil && !errors.Is(sErr, ckpt.ErrNoCheckpoint) {
		return 0, nil, sRep, sErr
	}
	dStep, dVars, dRep, dErr := t.durable.Restore(opts)
	if dErr != nil && !errors.Is(dErr, ckpt.ErrNoCheckpoint) {
		return 0, nil, dRep, dErr
	}
	switch {
	case sErr == nil && (dErr != nil || sStep >= dStep):
		return sStep, sVars, sRep, nil
	case dErr == nil:
		return dStep, dVars, dRep, nil
	default:
		return 0, nil, nil, ckpt.ErrNoCheckpoint
	}
}

// RestoreLatest restores the newest usable checkpoint across both
// tiers with default pipeline options (serial, no journal, no delta
// snapshot).
func (t *Tier) RestoreLatest() (int64, map[string][]byte, error) {
	step, vars, _, err := t.Restore(ckpt.RestoreOptions{})
	return step, vars, err
}

// twoPhase adapts the tier to the ckpt.TwoPhase interface.
type twoPhase struct{ t *Tier }

// TwoPhase exposes the tier through the ckpt two-phase durability API.
func (t *Tier) TwoPhase() ckpt.TwoPhase { return twoPhase{t} }

func (a twoPhase) Begin(step int64) (ckpt.Writer, error) { return a.t.Begin(step) }
func (a twoPhase) WaitDurable(step int64) error          { return a.t.WaitDurable(step) }
func (a twoPhase) Sync() error                           { return a.t.Sync() }
func (a twoPhase) RestoreLatest() (int64, map[string][]byte, error) {
	return a.t.RestoreLatest()
}
