package burst

import (
	"lsmio/internal/obs"
)

// tierMetrics holds the tier's obs instrument handles under the `burst.`
// prefix, resolved once at New. The legacy Counters struct is a snapshot
// view over these (Tier.Counters). Durations are recorded as nanosecond
// counters/gauges so the legacy view round-trips exactly.
type tierMetrics struct {
	stagedSteps  *obs.Counter
	stagedBytes  *obs.Counter
	drainedSteps *obs.Counter
	drainedBytes *obs.Counter

	drainErrors     *obs.Counter
	drainTransient  *obs.Counter
	drainTargetDown *obs.Counter
	drainCanceled   *obs.Counter
	drainRetries    *obs.Counter

	// pendingBytes mirrors the tier's internal backpressure accounting
	// (the authoritative field also drives admission control); highWater
	// is its maximum ever observed.
	pendingBytes *obs.Gauge
	highWater    *obs.Gauge

	stallNanos    *obs.Counter // Commit time blocked on the staging budget
	// throttleNanos is drain time spent pacing — to DrainRate in legacy
	// mode, or waiting for Drain-class tokens when Options.IOSched is
	// enabled (a snapshot view of iosched.drain.wait_nanos, kept so
	// existing consumers of burst.drain.throttle_nanos see one number).
	throttleNanos *obs.Counter

	lagNanos    *obs.Gauge // staged→durable latency of the last drain
	maxLagNanos *obs.Gauge
	lagHist     *obs.Histogram // per-step drain lag distribution

	trace *obs.Trace
}

func newTierMetrics(reg *obs.Registry) tierMetrics {
	s := reg.Scope("burst")
	return tierMetrics{
		stagedSteps:  s.Counter("staged.steps"),
		stagedBytes:  s.Counter("staged.bytes"),
		drainedSteps: s.Counter("drained.steps"),
		drainedBytes: s.Counter("drained.bytes"),

		drainErrors:     s.Counter("drain.errors"),
		drainTransient:  s.Counter("drain.transient"),
		drainTargetDown: s.Counter("drain.target_down"),
		drainCanceled:   s.Counter("drain.canceled"),
		drainRetries:    s.Counter("drain.retries"),

		pendingBytes: s.Gauge("pending.bytes"),
		highWater:    s.Gauge("pending.high_water"),

		stallNanos:    s.Counter("commit.stall_nanos"),
		throttleNanos: s.Counter("drain.throttle_nanos"),

		lagNanos:    s.Gauge("drain.lag_nanos"),
		maxLagNanos: s.Gauge("drain.max_lag_nanos"),
		lagHist:     s.Histogram("drain.lag"),

		trace: s.Trace(),
	}
}
