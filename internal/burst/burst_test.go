package burst

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/vfs"
)

// newMemTier builds a tier over two independent in-memory managers,
// returning the tier, the two checkpoint stores and a closer.
func newMemTier(t *testing.T, keep int, opts Options) (*Tier, *ckpt.Store, *ckpt.Store, func()) {
	t.Helper()
	smgr, err := core.NewManager("stage", core.ManagerOptions{
		Store: core.StoreOptions{FS: vfs.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	dmgr, err := core.NewManager("app", core.ManagerOptions{
		Store: core.StoreOptions{FS: vfs.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	staging := ckpt.New(smgr, ckpt.Options{})
	durable := ckpt.New(dmgr, ckpt.Options{Keep: keep})
	tier := New(staging, durable, opts)
	return tier, staging, durable, func() {
		smgr.Close()
		dmgr.Close()
	}
}

func stepVars(step int64, size int) map[string][]byte {
	return map[string][]byte{
		"temperature": bytes.Repeat([]byte{byte(step)}, size),
		"pressure":    []byte(fmt.Sprintf("p-%d-%s", step, bytes.Repeat([]byte("x"), size/2))),
	}
}

func commitStep(t *testing.T, tier *Tier, step int64, size int) map[string][]byte {
	t.Helper()
	vars := stepVars(step, size)
	c, err := tier.Begin(step)
	if err != nil {
		t.Fatalf("begin %d: %v", step, err)
	}
	for name, data := range vars {
		if err := c.Write(name, data); err != nil {
			t.Fatalf("write %d/%s: %v", step, name, err)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("commit %d: %v", step, err)
	}
	return vars
}

func TestInlineStageDrain(t *testing.T) {
	tier, staging, durable, done := newMemTier(t, 0, Options{})
	defer done()

	want := map[int64]map[string][]byte{}
	for step := int64(1); step <= 3; step++ {
		want[step] = commitStep(t, tier, step, 512)
	}
	c := tier.Counters()
	if c.StagedSteps != 3 || c.PendingSteps != 3 {
		t.Fatalf("after staging: %+v", c)
	}
	if c.StagedBytes == 0 || c.PendingBytes != c.StagedBytes || c.HighWater != c.PendingBytes {
		t.Fatalf("byte accounting off: %+v", c)
	}
	// Nothing may be durable before a drain.
	if _, err := durable.Latest(); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("durable store has checkpoints before drain: %v", err)
	}

	if err := tier.Sync(); err != nil { // no worker: drains inline
		t.Fatalf("sync: %v", err)
	}
	for step, vars := range want {
		got, err := durable.ReadAll(step)
		if err != nil {
			t.Fatalf("durable read %d: %v", step, err)
		}
		for name, data := range vars {
			if !bytes.Equal(got[name], data) {
				t.Fatalf("step %d var %q mismatch after drain", step, name)
			}
		}
	}
	if steps, _ := staging.Steps(); len(steps) != 0 {
		t.Fatalf("staging not emptied after drain: %v", steps)
	}
	c = tier.Counters()
	if c.DrainedSteps != 3 || c.PendingSteps != 0 || c.PendingBytes != 0 {
		t.Fatalf("after drain: %+v", c)
	}
	if c.DrainedBytes != c.StagedBytes {
		t.Fatalf("drained %d bytes, staged %d", c.DrainedBytes, c.StagedBytes)
	}
}

func TestBudgetBackpressureInlineReclaim(t *testing.T) {
	// Budget fits one ~1.5 KB step but not two; with no worker the
	// committing caller must reclaim by draining inline, never block.
	tier, _, durable, done := newMemTier(t, 0, Options{StagingBudget: 2 << 10})
	defer done()

	for step := int64(1); step <= 4; step++ {
		commitStep(t, tier, step, 1024)
	}
	c := tier.Counters()
	if c.HighWater > tier.opts.StagingBudget {
		t.Fatalf("high-water %d exceeded budget %d", c.HighWater, tier.opts.StagingBudget)
	}
	if c.DrainedSteps == 0 {
		t.Fatal("backpressure never triggered an inline drain")
	}
	if err := tier.Sync(); err != nil {
		t.Fatal(err)
	}
	steps, err := durable.Steps()
	if err != nil || len(steps) != 4 {
		t.Fatalf("durable steps %v, %v", steps, err)
	}
}

// TestWorkerDrainsConcurrently runs the goroutine worker under load —
// with the race detector on, this is the tier's concurrency proof.
// Durable retention (Keep=2) applies as steps arrive.
func TestWorkerDrainsConcurrently(t *testing.T) {
	tier, staging, durable, done := newMemTier(t, 2, Options{StagingBudget: 8 << 10})
	defer done()
	tier.StartWorker()

	const steps = 8
	for step := int64(1); step <= steps; step++ {
		commitStep(t, tier, step, 700)
	}
	if err := tier.WaitDurable(steps); err != nil {
		t.Fatalf("wait durable: %v", err)
	}
	if err := tier.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err := durable.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != steps-1 || got[1] != steps {
		t.Fatalf("durable retention kept %v, want [%d %d]", got, steps-1, steps)
	}
	if s, _ := staging.Steps(); len(s) != 0 {
		t.Fatalf("staging not drained: %v", s)
	}
	c := tier.Counters()
	if c.DrainedSteps != steps || c.PendingSteps != 0 {
		t.Fatalf("counters after close: %+v", c)
	}
}

// TestPruneNeverDropsNewestDurable interleaves staged-but-undrained
// steps with drains under Keep=1 retention: after every drain the
// newest durable checkpoint must be restorable — an in-flight staged
// step must never cause retention to drop it.
func TestPruneNeverDropsNewestDurable(t *testing.T) {
	tier, _, durable, done := newMemTier(t, 1, Options{})
	defer done()

	var lastDurable int64
	for step := int64(1); step <= 6; step++ {
		commitStep(t, tier, step, 400)
		// The previous drained step must still be restorable while the
		// newer step sits staged (prune ran on the durable store during
		// the last drain's commit).
		if lastDurable != 0 {
			got, _, err := durable.RestoreLatest()
			if err != nil || got != lastDurable {
				t.Fatalf("with step %d in flight: durable RestoreLatest = %d, %v; want %d",
					step, got, err, lastDurable)
			}
		}
		if n, err := tier.DrainPending(1); n != 1 || err != nil {
			t.Fatalf("drain step %d: n=%d err=%v", step, n, err)
		}
		got, vars, err := durable.RestoreLatest()
		if err != nil || got != step {
			t.Fatalf("after draining %d: RestoreLatest = %d, %v", step, got, err)
		}
		if len(vars) == 0 {
			t.Fatalf("step %d restored empty", step)
		}
		lastDurable = step
		if steps, _ := durable.Steps(); len(steps) != 1 {
			t.Fatalf("Keep=1 retention kept %v", steps)
		}
	}
}

func TestDrainFailureIsStickyAndStepStaysStaged(t *testing.T) {
	tier, staging, durable, done := newMemTier(t, 0, Options{})
	defer done()

	commitStep(t, tier, 1, 300)
	// Sabotage the staged copy so the drain's checksum verification
	// fails: overwrite a data key behind the store's back.
	if err := staging.Verify(1); err != nil {
		t.Fatal(err)
	}
	smgr := stagingManager(tier)
	if err := smgr.Put("ckpt/data/0000000000000001/temperature", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.DrainPending(-1); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("drain error = %v, want ErrCorrupt", err)
	}
	if err := tier.Sync(); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("sync sticky error = %v, want ErrCorrupt", err)
	}
	if err := tier.WaitDurable(1); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("WaitDurable error = %v, want ErrCorrupt", err)
	}
	// The failed step stays in the staging store for inspection.
	if steps, _ := staging.Steps(); len(steps) != 1 {
		t.Fatalf("failed step dropped from staging: %v", steps)
	}
	if _, err := durable.Latest(); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatal("corrupt step leaked into the durable store")
	}
	if c := tier.Counters(); c.DrainErrors != 1 || c.DrainedSteps != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// stagingManager digs the staging manager back out for sabotage; the
// tier does not expose it, so the test reaches through the store it
// built in newMemTier. Kept here to confine the cheat to one place.
func stagingManager(tier *Tier) *core.Manager { return tier.staging.Manager() }

func TestRecoverRequeuesVerifiedAndQuarantinesCorrupt(t *testing.T) {
	tier, staging, durable, done := newMemTier(t, 0, Options{})
	defer done()

	// Step 1 drains fully; steps 2 and 3 stay staged; step 3's staged
	// payload is then corrupted (a crash mid-stage would look alike).
	commitStep(t, tier, 1, 300)
	if _, err := tier.DrainPending(1); err != nil {
		t.Fatal(err)
	}
	want2 := commitStep(t, tier, 2, 300)
	commitStep(t, tier, 3, 300)
	if err := stagingManager(tier).Put("ckpt/data/0000000000000003/temperature", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash-restart: a fresh tier over the same stores, plus
	// a stale staged copy of the already-durable step 1 (as if the
	// crash hit after the durable install but before the staged drop).
	c1, err := staging.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Write("temperature", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}

	tier2 := New(staging, durable, Options{})
	if err := tier2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// Stale copy of durable step 1 dropped, step 2 requeued, step 3
	// quarantined.
	if steps, _ := staging.Steps(); len(steps) != 2 {
		t.Fatalf("staging after recover: %v", steps)
	}
	if q, _ := staging.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined = %v, want step 3 only", q)
	} else if _, ok := q[3]; !ok {
		t.Fatalf("quarantined = %v, want step 3", q)
	}
	if c := tier2.Counters(); c.PendingSteps != 1 {
		t.Fatalf("recover queued %d steps, want 1 (step 2)", c.PendingSteps)
	}
	// RestoreLatest must skip the quarantined staged step 3 and prefer
	// the verified staged step 2 over durable step 1.
	step, vars, err := tier2.RestoreLatest()
	if err != nil || step != 2 {
		t.Fatalf("RestoreLatest = %d, %v; want 2", step, err)
	}
	if !bytes.Equal(vars["temperature"], want2["temperature"]) {
		t.Fatal("restored staged image corrupted")
	}
	if err := tier2.Sync(); err != nil {
		t.Fatalf("sync after recover: %v", err)
	}
	if _, err := durable.ReadAll(2); err != nil {
		t.Fatalf("step 2 not durable after recovered drain: %v", err)
	}
}

func TestRestoreLatestPrefersNewestTier(t *testing.T) {
	tier, _, _, done := newMemTier(t, 0, Options{})
	defer done()

	want1 := commitStep(t, tier, 1, 200)
	if _, err := tier.DrainPending(-1); err != nil {
		t.Fatal(err)
	}
	// Durable only: restores step 1.
	step, vars, err := tier.RestoreLatest()
	if err != nil || step != 1 {
		t.Fatalf("RestoreLatest = %d, %v", step, err)
	}
	if !bytes.Equal(vars["pressure"], want1["pressure"]) {
		t.Fatal("durable image mismatch")
	}
	// Newer staged step wins without mixing tiers.
	want2 := commitStep(t, tier, 2, 200)
	step, vars, err = tier.RestoreLatest()
	if err != nil || step != 2 {
		t.Fatalf("RestoreLatest = %d, %v", step, err)
	}
	for name, data := range want2 {
		if !bytes.Equal(vars[name], data) {
			t.Fatalf("staged image var %q mismatch", name)
		}
	}
}

func TestTwoPhaseInterface(t *testing.T) {
	tier, _, durable, done := newMemTier(t, 0, Options{})
	defer done()

	// The same driver runs over the tier and over a direct store.
	drive := func(tp ckpt.TwoPhase, step int64) {
		t.Helper()
		w, err := tp.Begin(step)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write("v", []byte{byte(step)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tp.WaitDurable(step); err != nil {
			t.Fatal(err)
		}
		if err := tp.Sync(); err != nil {
			t.Fatal(err)
		}
		got, _, err := tp.RestoreLatest()
		if err != nil || got != step {
			t.Fatalf("RestoreLatest = %d, %v; want %d", got, err, step)
		}
	}
	drive(tier.TwoPhase(), 1)
	drive(ckpt.Direct{Store: durable}, 2)
}

func TestBeginDuplicateOfDurableStepFails(t *testing.T) {
	tier, _, _, done := newMemTier(t, 0, Options{})
	defer done()
	commitStep(t, tier, 1, 100)
	if err := tier.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Begin(1); err == nil {
		t.Fatal("Begin of an already-durable step succeeded")
	}
	if _, err := tier.Begin(2); err != nil {
		t.Fatalf("fresh step refused: %v", err)
	}
}

func TestCountersSnapshotIsolated(t *testing.T) {
	tier, _, _, done := newMemTier(t, 0, Options{})
	defer done()
	commitStep(t, tier, 1, 100)
	before := tier.Counters()
	before.StagedSteps = 99 // mutating the snapshot must not leak back
	if tier.Counters().StagedSteps != 1 {
		t.Fatal("Counters returned shared state")
	}
	if before.StallTime != 0 {
		t.Fatalf("unbudgeted tier recorded stall time %v", before.StallTime)
	}
}
