// Package histdata holds the historical Top500 #1-system data behind the
// paper's Figure 1: headline compute performance versus parallel-file-
// system bandwidth from the start of the PetaFLOP era (Roadrunner, 2008)
// to the ExaFLOP era (Frontier, 2022/23), and the derived growth and
// doubling-time numbers quoted in the paper's introduction.
package histdata

import (
	"fmt"
	"math"
	"strings"
)

// System is one year's #1 machine with its storage bandwidth.
type System struct {
	Year     int
	Name     string
	PFlops   float64 // Rmax, PFLOP/s
	IOGBs    float64 // headline PFS bandwidth, GB/s (primary tier)
	IOGBsHDD float64 // HDD tier where distinct (0 = same as IOGBs)
}

// Figure1 is the series the paper plots. Sources: Top500 lists and the
// storage-system references cited in the paper's introduction (Roadrunner
// 216 GB/s; Frontier 10 TB/s SSD tier, 5.5 TB/s HDD tier).
func Figure1() []System {
	return []System{
		{2008, "Roadrunner", 1.026, 216, 0},
		{2009, "Jaguar", 1.759, 240, 0},
		{2010, "Tianhe-1A", 2.566, 280, 0},
		{2011, "K computer", 10.51, 965, 0},
		{2012, "Titan", 17.59, 1000, 0},
		{2013, "Tianhe-2", 33.86, 1000, 0},
		{2016, "Sunway TaihuLight", 93.01, 288, 0},
		{2018, "Summit", 143.5, 2500, 0},
		{2020, "Fugaku", 442.0, 1500, 0},
		{2022, "Frontier", 1102.0, 10000, 5500},
		{2023, "Frontier", 1194.0, 10000, 5500},
	}
}

// Growth summarizes the paper's headline factors between the first and
// last entries.
type Growth struct {
	ComputeFactor     float64 // paper: ~1074.1x
	IOFactorSSD       float64 // paper: ~46.3x
	IOFactorHDD       float64 // paper: ~25.5x
	ComputeDoublingMo float64 // paper: ~18 months
	IODoublingMo      float64 // paper: ~36 months
}

// ComputeGrowth derives the growth factors and doubling times from the
// series.
func ComputeGrowth(series []System) Growth {
	first, last := series[0], series[len(series)-1]
	years := float64(last.Year - first.Year)
	g := Growth{
		ComputeFactor: last.PFlops / first.PFlops,
		IOFactorSSD:   last.IOGBs / first.IOGBs,
	}
	hdd := last.IOGBsHDD
	if hdd == 0 {
		hdd = last.IOGBs
	}
	g.IOFactorHDD = hdd / first.IOGBs
	g.ComputeDoublingMo = years * 12 * math.Ln2 / math.Log(g.ComputeFactor)
	g.IODoublingMo = years * 12 * math.Ln2 / math.Log(g.IOFactorSSD)
	return g
}

// Table renders the figure's data as aligned text.
func Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-18s %12s %14s\n", "Year", "System", "PFLOP/s", "PFS GB/s")
	for _, s := range Figure1() {
		io := fmt.Sprintf("%.0f", s.IOGBs)
		if s.IOGBsHDD > 0 {
			io = fmt.Sprintf("%.0f/%.0f", s.IOGBs, s.IOGBsHDD)
		}
		fmt.Fprintf(&b, "%-6d %-18s %12.3f %14s\n", s.Year, s.Name, s.PFlops, io)
	}
	g := ComputeGrowth(Figure1())
	fmt.Fprintf(&b, "\ncompute growth %.1fx (doubling ~%.0f months); ", g.ComputeFactor, g.ComputeDoublingMo)
	fmt.Fprintf(&b, "I/O growth %.1fx SSD / %.1fx HDD (doubling ~%.0f months)\n",
		g.IOFactorSSD, g.IOFactorHDD, g.IODoublingMo)
	return b.String()
}
