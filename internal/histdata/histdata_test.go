package histdata

import (
	"strings"
	"testing"
)

func TestFigure1Anchors(t *testing.T) {
	series := Figure1()
	first := series[0]
	if first.Year != 2008 || first.Name != "Roadrunner" || first.IOGBs != 216 {
		t.Fatalf("first entry: %+v", first)
	}
	var frontier2022 *System
	for i := range series {
		if series[i].Year == 2022 {
			frontier2022 = &series[i]
		}
	}
	if frontier2022 == nil || frontier2022.IOGBs != 10000 || frontier2022.IOGBsHDD != 5500 {
		t.Fatalf("2022 entry: %+v", frontier2022)
	}
}

func TestGrowthMatchesPaperHeadlines(t *testing.T) {
	// The paper quotes ~1074.1x compute, ~46.3x SSD I/O, ~25.5x HDD I/O
	// between Roadrunner (2008) and Frontier (2022).
	series := Figure1()
	upto2022 := series[:0:0]
	for _, s := range series {
		if s.Year <= 2022 {
			upto2022 = append(upto2022, s)
		}
	}
	g := ComputeGrowth(upto2022)
	if g.ComputeFactor < 1050 || g.ComputeFactor > 1100 {
		t.Fatalf("compute factor = %.1f, paper says ~1074.1", g.ComputeFactor)
	}
	if g.IOFactorSSD < 45 || g.IOFactorSSD > 48 {
		t.Fatalf("SSD I/O factor = %.1f, paper says ~46.3", g.IOFactorSSD)
	}
	if g.IOFactorHDD < 24 || g.IOFactorHDD > 27 {
		t.Fatalf("HDD I/O factor = %.1f, paper says ~25.5", g.IOFactorHDD)
	}
	// Doubling times: compute ~18 months, I/O ~36 months.
	if g.ComputeDoublingMo < 14 || g.ComputeDoublingMo > 22 {
		t.Fatalf("compute doubling = %.1f months, paper says ~18", g.ComputeDoublingMo)
	}
	if g.IODoublingMo < 28 || g.IODoublingMo > 44 {
		t.Fatalf("I/O doubling = %.1f months, paper says ~36", g.IODoublingMo)
	}
}

func TestMonotoneYears(t *testing.T) {
	series := Figure1()
	for i := 1; i < len(series); i++ {
		if series[i].Year <= series[i-1].Year {
			t.Fatalf("years not increasing at %d", i)
		}
		if series[i].PFlops < series[i-1].PFlops {
			t.Fatalf("#1 system compute regressed at %d", i)
		}
	}
}

func TestTableRenders(t *testing.T) {
	tbl := Table()
	for _, want := range []string{"Roadrunner", "Frontier", "compute growth", "I/O growth"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}
