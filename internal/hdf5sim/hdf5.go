// Package hdf5sim reimplements the slice of HDF5 behaviour that matters
// to the LSMIO paper's comparison: a single shared, self-describing file
// whose chunked datasets interleave small metadata structures (superblock,
// object headers, chunk B-tree nodes) near the head of the file with bulk
// chunk data behind them.
//
// The metadata traffic is the point. Every chunk write updates a B-tree
// node and the object header — small writes at low file offsets — before
// writing the chunk itself. On a striped parallel file system those
// head-of-file updates land on the same few OSTs from every rank,
// thrashing extent locks and disk heads, which is precisely why HDF5
// trails both the IOR baseline and LSMIO in the paper's figures.
//
// The format is simplified but real: the superblock, object header, B-tree
// nodes and chunk extents are actually written and read back; readers
// consult the on-disk B-tree to find chunks. Chunk placement is
// deterministic (chunk i's extent is computable from i), which stands in
// for HDF5's allocator coordination under MPI-IO without needing shared
// allocator state across ranks.
package hdf5sim

import (
	"encoding/binary"
	"fmt"
	"io"

	"lsmio/internal/vfs"
)

// Format constants. Offsets are deterministic functions of the dataset
// geometry, standing in for the real allocator.
const (
	signature     = "\x89HDF5sim\r\n"
	superblockLen = 96
	headerOff     = 128 // object header block
	headerLen     = 256
	btreeOff      = 1024 // first B-tree node
	btreeNodeLen  = 512
	btreeFanout   = 16 // chunk entries per node
	entryLen      = 24 // chunkIdx(8) offset(8) length(8)
)

// DatasetSpec fixes a 1-D chunked dataset's geometry at create time.
type DatasetSpec struct {
	Name     string
	TotalLen int64 // dataset length in bytes
	ChunkLen int64 // chunk size in bytes
	ElemSize int
}

func (s DatasetSpec) numChunks() int64 {
	return (s.TotalLen + s.ChunkLen - 1) / s.ChunkLen
}

// dataStart returns where bulk chunk data begins: after the B-tree region.
func (s DatasetSpec) dataStart() int64 {
	nodes := (s.numChunks() + btreeFanout - 1) / btreeFanout
	return btreeOff + nodes*btreeNodeLen
}

// ChunkExtent returns the file-space extent of a chunk; collective
// drivers use it to translate dataset offsets to file offsets.
func (s DatasetSpec) ChunkExtent(chunkIdx int64) (off, length int64) {
	return s.chunkExtent(chunkIdx)
}

func (s DatasetSpec) chunkExtent(chunkIdx int64) (off, length int64) {
	length = s.ChunkLen
	if rem := s.TotalLen - chunkIdx*s.ChunkLen; rem < length {
		length = rem
	}
	return s.dataStart() + chunkIdx*s.ChunkLen, length
}

func (s DatasetSpec) btreeNodeOffset(chunkIdx int64) int64 {
	return btreeOff + (chunkIdx/btreeFanout)*btreeNodeLen
}

// DataSink receives bulk chunk data. The default sink writes straight to
// the file; the IOR harness substitutes a two-phase (collective) sink.
// Metadata always goes directly to the file, as in HDF5 under MPI-IO.
type DataSink interface {
	WriteAt(data []byte, off int64) error
}

// DataSource supplies bulk chunk data for reads.
type DataSource interface {
	ReadAt(data []byte, off int64) error
}

type fileSink struct{ f vfs.File }

func (s fileSink) WriteAt(data []byte, off int64) error {
	_, err := s.f.WriteAt(data, off)
	return err
}

func (s fileSink) ReadAt(data []byte, off int64) error {
	_, err := s.f.ReadAt(data, off)
	if err == io.EOF {
		err = nil
	}
	return err
}

// MetadataPolicy controls how metadata updates (object header, B-tree
// nodes) reach the file. The default performs them directly from the
// calling rank; a collective policy (HDF5's collective metadata writes
// under MPI-IO) synchronizes all ranks per operation and writes from one.
type MetadataPolicy interface {
	// Do invokes write according to the policy (possibly on a subset of
	// ranks after coordination).
	Do(write func() error) error
}

type directMetadata struct{}

func (directMetadata) Do(write func() error) error { return write() }

// File is one rank's handle on a (possibly shared) HDF5-like file.
type File struct {
	fs            vfs.FS
	f             vfs.File
	spec          DatasetSpec
	write         bool
	mdPol         MetadataPolicy
	chunksWritten int64
}

// SetMetadataPolicy installs a metadata-write policy (nil restores the
// direct default).
func (h *File) SetMetadataPolicy(p MetadataPolicy) {
	if p == nil {
		p = directMetadata{}
	}
	h.mdPol = p
}

// Create creates the file, writes the superblock, object header and empty
// B-tree, and returns a handle. Under N-to-1 usage exactly one rank calls
// Create; the others Open after a barrier.
func Create(fsys vfs.FS, path string, spec DatasetSpec) (*File, error) {
	if spec.ChunkLen <= 0 || spec.TotalLen <= 0 {
		return nil, fmt.Errorf("hdf5sim: bad dataset spec %+v", spec)
	}
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	h := &File{fs: fsys, f: f, spec: spec, write: true, mdPol: directMetadata{}}
	// Superblock.
	sb := make([]byte, superblockLen)
	copy(sb, signature)
	binary.LittleEndian.PutUint64(sb[16:], uint64(spec.TotalLen))
	binary.LittleEndian.PutUint64(sb[24:], uint64(spec.ChunkLen))
	binary.LittleEndian.PutUint64(sb[32:], uint64(spec.ElemSize))
	if _, err := f.WriteAt(sb, 0); err != nil {
		f.Close()
		return nil, err
	}
	// Object header for the single dataset.
	hdr := make([]byte, headerLen)
	copy(hdr, spec.Name)
	if _, err := f.WriteAt(hdr, headerOff); err != nil {
		f.Close()
		return nil, err
	}
	return h, nil
}

// Open opens an existing file and reads its dataset geometry from the
// superblock.
func Open(fsys vfs.FS, path string) (*File, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	sb := make([]byte, superblockLen)
	if _, err := f.ReadAt(sb, 0); err != nil && err != io.EOF {
		f.Close()
		return nil, err
	}
	if string(sb[:len(signature)]) != signature {
		f.Close()
		return nil, fmt.Errorf("hdf5sim: %s: bad signature", path)
	}
	spec := DatasetSpec{
		TotalLen: int64(binary.LittleEndian.Uint64(sb[16:])),
		ChunkLen: int64(binary.LittleEndian.Uint64(sb[24:])),
		ElemSize: int(binary.LittleEndian.Uint64(sb[32:])),
	}
	return &File{fs: fsys, f: f, spec: spec, write: true, mdPol: directMetadata{}}, nil
}

// OpenShared opens the shared file from a non-creating rank.
func OpenShared(fsys vfs.FS, path string) (*File, error) { return Open(fsys, path) }

// Spec returns the dataset geometry.
func (h *File) Spec() DatasetSpec { return h.spec }

// WriteHyperslab writes [start, start+len(data)) of the dataset. The range
// must be chunk-aligned (how IOR drives HDF5 with transfer == chunk).
// Each chunk costs, in order: an object-header touch, a B-tree node
// update, then the chunk data through the sink.
func (h *File) WriteHyperslab(start int64, data []byte, sink DataSink) error {
	if sink == nil {
		sink = fileSink{h.f}
	}
	if start%h.spec.ChunkLen != 0 {
		return fmt.Errorf("hdf5sim: write at %d not chunk-aligned", start)
	}
	for len(data) > 0 {
		chunkIdx := start / h.spec.ChunkLen
		_, chunkLen := h.spec.chunkExtent(chunkIdx)
		n := chunkLen
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		if err := h.writeChunk(chunkIdx, data[:n], sink); err != nil {
			return err
		}
		data = data[n:]
		start += n
	}
	return nil
}

func (h *File) writeChunk(chunkIdx int64, data []byte, sink DataSink) error {
	off, _ := h.spec.chunkExtent(chunkIdx)
	// 1. Object header touch (mtime, dimension bookkeeping). The metadata
	// cache coalesces these; they write through every btreeFanout chunk
	// writes on this handle (a rank-uniform schedule, so collective
	// metadata policies stay aligned across ranks).
	h.chunksWritten++
	if h.chunksWritten%btreeFanout == 1 {
		err := h.mdPol.Do(func() error {
			var stamp [16]byte
			binary.LittleEndian.PutUint64(stamp[:8], uint64(chunkIdx))
			_, err := h.f.WriteAt(stamp[:], headerOff+32)
			return err
		})
		if err != nil {
			return err
		}
	}
	// 2. B-tree entry for the chunk.
	err := h.mdPol.Do(func() error {
		nodeOff := h.spec.btreeNodeOffset(chunkIdx)
		slot := (chunkIdx % btreeFanout) * entryLen
		var entry [entryLen]byte
		binary.LittleEndian.PutUint64(entry[0:], uint64(chunkIdx)+1) // +1: 0 means empty
		binary.LittleEndian.PutUint64(entry[8:], uint64(off))
		binary.LittleEndian.PutUint64(entry[16:], uint64(len(data)))
		_, err := h.f.WriteAt(entry[:], nodeOff+slot)
		return err
	})
	if err != nil {
		return err
	}
	// 3. The chunk data itself.
	return sink.WriteAt(data, off)
}

// ReadHyperslab reads [start, start+len(dst)) of the dataset. Each chunk
// costs a B-tree lookup (a real read of the node) before the data read.
func (h *File) ReadHyperslab(start int64, dst []byte, src DataSource) error {
	if src == nil {
		src = fileSink{h.f}
	}
	if start%h.spec.ChunkLen != 0 {
		return fmt.Errorf("hdf5sim: read at %d not chunk-aligned", start)
	}
	for len(dst) > 0 {
		chunkIdx := start / h.spec.ChunkLen
		off, length, err := h.lookupChunk(chunkIdx)
		if err != nil {
			return err
		}
		n := length
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if err := src.ReadAt(dst[:n], off); err != nil {
			return err
		}
		dst = dst[n:]
		start += n
	}
	return nil
}

// lookupChunk consults the on-disk B-tree node for a chunk's extent.
func (h *File) lookupChunk(chunkIdx int64) (off, length int64, err error) {
	nodeOff := h.spec.btreeNodeOffset(chunkIdx)
	node := make([]byte, btreeNodeLen)
	if _, err := h.f.ReadAt(node, nodeOff); err != nil && err != io.EOF {
		return 0, 0, err
	}
	slot := (chunkIdx % btreeFanout) * entryLen
	stored := binary.LittleEndian.Uint64(node[slot:])
	if stored != uint64(chunkIdx)+1 {
		return 0, 0, fmt.Errorf("hdf5sim: chunk %d not present", chunkIdx)
	}
	off = int64(binary.LittleEndian.Uint64(node[slot+8:]))
	length = int64(binary.LittleEndian.Uint64(node[slot+16:]))
	return off, length, nil
}

// RawWriteAt writes bulk bytes at a file offset, bypassing the dataset
// layer. Collective (two-phase) drivers use it on the aggregator side.
func (h *File) RawWriteAt(data []byte, off int64) error {
	_, err := h.f.WriteAt(data, off)
	return err
}

// RawReadAt reads bulk bytes at a file offset, bypassing the dataset
// layer.
func (h *File) RawReadAt(data []byte, off int64) error {
	_, err := h.f.ReadAt(data, off)
	if err == io.EOF {
		err = nil
	}
	return err
}

// Sync flushes outstanding writes (H5Fflush).
func (h *File) Sync() error { return h.f.Sync() }

// Close finalizes the file; a writer refreshes the superblock stamp first
// (HDF5 rewrites the superblock on close).
func (h *File) Close() error {
	if h.write {
		var stamp [8]byte
		binary.LittleEndian.PutUint64(stamp[:], uint64(h.spec.TotalLen))
		if _, err := h.f.WriteAt(stamp[:], superblockLen-8); err != nil {
			h.f.Close()
			return err
		}
	}
	return h.f.Close()
}
