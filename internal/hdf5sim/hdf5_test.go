package hdf5sim

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/internal/vfs"
)

func spec(total, chunk int64) DatasetSpec {
	return DatasetSpec{Name: "data", TotalLen: total, ChunkLen: chunk, ElemSize: 1}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	h, err := Create(fs, "f.h5", spec(1<<20, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 1<<16) // 1 MB
	if err := h.WriteHyperslab(0, payload, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := Open(fs, "f.h5")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := g.ReadHyperslab(0, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through HDF5-like file")
	}
	if g.Spec().ChunkLen != 64<<10 || g.Spec().TotalLen != 1<<20 {
		t.Fatalf("spec lost on reopen: %+v", g.Spec())
	}
	g.Close()
}

func TestPartialAndStridedWrites(t *testing.T) {
	fs := vfs.NewMemFS()
	s := spec(8*64<<10, 64<<10)
	h, _ := Create(fs, "f.h5", s)
	// Write chunks 3 and 5 only (a rank's hyperslab in a shared file).
	c3 := bytes.Repeat([]byte{3}, 64<<10)
	c5 := bytes.Repeat([]byte{5}, 64<<10)
	if err := h.WriteHyperslab(3*64<<10, c3, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteHyperslab(5*64<<10, c5, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64<<10)
	if err := h.ReadHyperslab(5*64<<10, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, c5) {
		t.Fatal("chunk 5 mismatch")
	}
	// An unwritten chunk is reported missing, not silently zero.
	if err := h.ReadHyperslab(4*64<<10, got, nil); err == nil {
		t.Fatal("reading an unwritten chunk should error")
	}
	h.Close()
}

func TestUnalignedAccessRejected(t *testing.T) {
	fs := vfs.NewMemFS()
	h, _ := Create(fs, "f.h5", spec(1<<20, 64<<10))
	defer h.Close()
	if err := h.WriteHyperslab(100, make([]byte, 64<<10), nil); err == nil {
		t.Fatal("unaligned write should error")
	}
	if err := h.ReadHyperslab(100, make([]byte, 64<<10), nil); err == nil {
		t.Fatal("unaligned read should error")
	}
}

func TestBadSignatureRejected(t *testing.T) {
	fs := vfs.NewMemFS()
	f, _ := fs.Create("junk.h5")
	f.Write(bytes.Repeat([]byte("x"), 200))
	f.Close()
	if _, err := Open(fs, "junk.h5"); err == nil {
		t.Fatal("junk file should be rejected")
	}
	if _, err := Create(fs, "bad", DatasetSpec{}); err == nil {
		t.Fatal("empty spec should be rejected")
	}
}

func TestDeterministicLayoutIsDisjoint(t *testing.T) {
	s := spec(256*64<<10, 64<<10)
	seen := map[int64]bool{}
	for i := int64(0); i < s.numChunks(); i++ {
		off, length := s.chunkExtent(i)
		if off < s.dataStart() {
			t.Fatalf("chunk %d extent overlaps metadata region", i)
		}
		if length != 64<<10 {
			t.Fatalf("chunk %d length %d", i, length)
		}
		if seen[off] {
			t.Fatalf("chunk %d offset collides", i)
		}
		seen[off] = true
	}
	// B-tree nodes stay inside the metadata region.
	for i := int64(0); i < s.numChunks(); i++ {
		if o := s.btreeNodeOffset(i); o < btreeOff || o >= s.dataStart() {
			t.Fatalf("btree node for chunk %d at %d escapes metadata region", i, o)
		}
	}
}

type recordingSink struct {
	writes []string
	inner  DataSink
}

func (r *recordingSink) WriteAt(data []byte, off int64) error {
	r.writes = append(r.writes, fmt.Sprintf("%d+%d", off, len(data)))
	return r.inner.WriteAt(data, off)
}

func TestCustomSinkReceivesOnlyChunkData(t *testing.T) {
	fs := vfs.NewMemFS()
	h, _ := Create(fs, "f.h5", spec(4*64<<10, 64<<10))
	defer h.Close()
	f2, _ := fs.Open("f.h5")
	rec := &recordingSink{inner: fileSink{f2}}
	if err := h.WriteHyperslab(0, make([]byte, 2*64<<10), rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 2 {
		t.Fatalf("sink saw %v", rec.writes)
	}
}

func TestSharedFileTwoWriters(t *testing.T) {
	fs := vfs.NewMemFS()
	s := spec(4*64<<10, 64<<10)
	h, _ := Create(fs, "shared.h5", s)
	h.Close()
	// Two "ranks" open and write disjoint chunks.
	r0, _ := OpenShared(fs, "shared.h5")
	r1, _ := OpenShared(fs, "shared.h5")
	r0.WriteHyperslab(0, bytes.Repeat([]byte{1}, 2*64<<10), nil)
	r1.WriteHyperslab(2*64<<10, bytes.Repeat([]byte{2}, 2*64<<10), nil)
	r0.Close()
	r1.Close()

	g, _ := Open(fs, "shared.h5")
	defer g.Close()
	all := make([]byte, 4*64<<10)
	if err := g.ReadHyperslab(0, all, nil); err != nil {
		t.Fatal(err)
	}
	if all[0] != 1 || all[3*64<<10] != 2 {
		t.Fatal("shared writes lost")
	}
}

type countingPolicy struct{ calls int }

func (p *countingPolicy) Do(write func() error) error {
	p.calls++
	return write()
}

func TestMetadataPolicyHook(t *testing.T) {
	fs := vfs.NewMemFS()
	h, _ := Create(fs, "p.h5", spec(32*64<<10, 64<<10))
	defer h.Close()
	pol := &countingPolicy{}
	h.SetMetadataPolicy(pol)
	// 32 chunks: 32 B-tree updates + header stamps on a btreeFanout
	// schedule (write-through once per 16 chunks).
	if err := h.WriteHyperslab(0, make([]byte, 32*64<<10), nil); err != nil {
		t.Fatal(err)
	}
	want := 32 + 2 // btree per chunk + 2 header write-throughs
	if pol.calls != want {
		t.Fatalf("policy calls = %d, want %d", pol.calls, want)
	}
	// Nil restores the direct default without panicking.
	h.SetMetadataPolicy(nil)
	if err := h.WriteHyperslab(0, make([]byte, 64<<10), nil); err != nil {
		t.Fatal(err)
	}
}
