package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Encode(nil, src)
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("decode(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(dec))
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abcabcabcabc"),
		[]byte(strings.Repeat("lsmio ", 1000)),
		bytes.Repeat([]byte{0}, 100000),
		[]byte("short no-match text!"),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	src := bytes.Repeat([]byte("checkpoint data block "), 5000)
	enc := roundTrip(t, src)
	if len(enc) > len(src)/10 {
		t.Fatalf("repetitive data: %d -> %d (poor ratio)", len(src), len(enc))
	}
}

func TestIncompressibleDataNearPassthrough(t *testing.T) {
	src := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(src)
	enc := roundTrip(t, src)
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Fatalf("encoded %d exceeds MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
	}
	if len(enc) > len(src)+len(src)/8 {
		t.Fatalf("incompressible blow-up: %d -> %d", len(src), len(enc))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	fn := func(src []byte) bool {
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStructuredRoundTrip(t *testing.T) {
	// Structured inputs exercise the match path harder than random bytes.
	rng := rand.New(rand.NewSource(77))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < 300; i++ {
		var b strings.Builder
		n := rng.Intn(5000)
		for b.Len() < n {
			b.WriteString(words[rng.Intn(len(words))])
			if rng.Intn(4) == 0 {
				b.WriteByte(byte(rng.Intn(256)))
			}
		}
		roundTrip(t, []byte(b.String()))
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	fn := func(src []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", src, r)
			}
		}()
		_, _ = Decode(nil, src)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	src := []byte(strings.Repeat("truncation test data ", 200))
	enc := Encode(nil, src)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := Decode(nil, enc[:cut]); err == nil && cut < len(enc) {
			// Only the full stream may decode cleanly... a prefix could
			// coincidentally be valid only if it decodes to exactly the
			// header length, which the length check rejects.
			t.Fatalf("truncated stream at %d decoded without error", cut)
		}
	}
}

func TestDecodeBadOffsets(t *testing.T) {
	// Hand-built: header says 4 bytes, a copy references data before the
	// start.
	bad := []byte{4, tagCopy1 | 0<<2, 0xFF} // length 4, offset 255 with empty history
	if _, err := Decode(nil, bad); err == nil {
		t.Fatal("copy before start of output should fail")
	}
	// Literal longer than remaining input.
	bad2 := []byte{10, 9 << 2, 'a', 'b'} // claims 10-byte literal, 2 present
	if _, err := Decode(nil, bad2); err == nil {
		t.Fatal("overlong literal should fail")
	}
}

func TestDecodedLen(t *testing.T) {
	enc := Encode(nil, make([]byte, 12345))
	n, err := DecodedLen(enc)
	if err != nil || n != 12345 {
		t.Fatalf("DecodedLen = %d, %v", n, err)
	}
	if _, err := DecodedLen(nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestOverlappingCopy(t *testing.T) {
	// "ababab..." style output requires overlapping copy semantics.
	src := append([]byte("ab"), bytes.Repeat([]byte("ab"), 500)...)
	roundTrip(t, src)
	// RLE-like single-byte period.
	roundTrip(t, bytes.Repeat([]byte{'x'}, 3000))
}

func TestAppendToExistingDst(t *testing.T) {
	prefix := []byte("existing-")
	src := []byte(strings.Repeat("payload ", 100))
	enc := Encode([]byte("E:"), src)
	if !bytes.HasPrefix(enc, []byte("E:")) {
		t.Fatal("Encode must append to dst")
	}
	dec, err := Decode(prefix, enc[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(dec, prefix) || !bytes.Equal(dec[len(prefix):], src) {
		t.Fatal("Decode must append to dst")
	}
}

func BenchmarkEncode(b *testing.B) {
	src := bytes.Repeat([]byte("checkpoint field data 3.14159 "), 10000)
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Encode(dst[:0], src)
	}
}

func BenchmarkDecode(b *testing.B) {
	src := bytes.Repeat([]byte("checkpoint field data 3.14159 "), 10000)
	enc := Encode(nil, src)
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = Decode(dst[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
