// Package snappy implements the Snappy block format (the compression
// RocksDB uses by default) from scratch: an LZ77-family byte-oriented
// codec favouring speed over ratio. The encoder uses the reference
// implementation's hash-table strategy; the decoder accepts any valid
// Snappy block stream.
//
// Format (https://github.com/google/snappy/blob/main/format_description.txt):
//
//	block  := uvarint(uncompressedLen) element*
//	element:= literal | copy
//	tag & 3: 0 literal, 1 copy with 1-byte offset, 2 copy with 2-byte
//	         offset, 3 copy with 4-byte offset
package snappy

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by Decode.
var (
	ErrCorrupt  = errors.New("snappy: corrupt input")
	ErrTooLarge = errors.New("snappy: decoded block is too large")
)

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	maxBlockDecodedLen = 1 << 30
)

// MaxEncodedLen returns the worst-case encoded size for srcLen input
// bytes.
func MaxEncodedLen(srcLen int) int {
	// varint + literals with headers every <=60 bytes is bounded by
	// the reference formula.
	return 32 + srcLen + srcLen/6
}

// Encode compresses src, appending to dst (which may be nil).
func Encode(dst, src []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	dst = append(dst, hdr[:n]...)
	if len(src) == 0 {
		return dst
	}
	if len(src) < 16 {
		// Too short to find profitable matches.
		return emitLiteral(dst, src)
	}

	// Hash table of candidate positions for 4-byte sequences.
	const tableBits = 14
	var table [1 << tableBits]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(u uint32) uint32 {
		return (u * 0x1e35a7bd) >> (32 - tableBits)
	}
	load32 := func(i int) uint32 {
		return binary.LittleEndian.Uint32(src[i:])
	}

	var litStart int
	s := 0
	limit := len(src) - 4
	for s <= limit {
		h := hash(load32(s))
		candidate := table[h]
		table[h] = int32(s)
		if candidate >= 0 && s-int(candidate) <= 65535 && load32(int(candidate)) == load32(s) {
			// Emit pending literals, then extend the match.
			dst = emitLiteral(dst, src[litStart:s])
			base := s
			matched := 4
			s += 4
			c := int(candidate) + 4
			for s < len(src) && c < len(src) && src[s] == src[c] {
				s++
				c++
				matched++
			}
			dst = emitCopy(dst, base-int(candidate), matched)
			litStart = s
			continue
		}
		s++
	}
	return emitLiteral(dst, src[litStart:])
}

// emitLiteral appends a literal element for lit.
func emitLiteral(dst, lit []byte) []byte {
	for len(lit) > 0 {
		chunk := lit
		// One literal element can carry up to 2^32 bytes, but keep the
		// 1-4 extra-byte encodings exercised with a generous cap.
		if len(chunk) > 1<<24 {
			chunk = chunk[:1<<24]
		}
		n := len(chunk) - 1
		switch {
		case n < 60:
			dst = append(dst, byte(n)<<2|tagLiteral)
		case n < 1<<8:
			dst = append(dst, 60<<2|tagLiteral, byte(n))
		case n < 1<<16:
			dst = append(dst, 61<<2|tagLiteral, byte(n), byte(n>>8))
		default:
			dst = append(dst, 62<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16))
		}
		dst = append(dst, chunk...)
		lit = lit[len(chunk):]
	}
	return dst
}

// emitCopy appends copy elements for a match of the given length at the
// given backward offset.
func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches are split into <=64-byte copies (copy2 form handles
	// any offset up to 65535; the encoder never produces larger offsets).
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// Leave >=4 for the final copy.
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 12 || offset >= 2048 || length < 4 {
		dst = append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
		return dst
	}
	// copy1: 4 <= length < 12, offset < 2048.
	dst = append(dst,
		byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1,
		byte(offset))
	return dst
}

// DecodedLen returns the uncompressed length recorded in a block.
func DecodedLen(src []byte) (int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	if v > maxBlockDecodedLen {
		return 0, ErrTooLarge
	}
	return int(v), nil
}

// Decode decompresses src, appending to dst (which may be nil).
func Decode(dst, src []byte) ([]byte, error) {
	decodedLen, err := DecodedLen(src)
	if err != nil {
		return nil, err
	}
	_, n := binary.Uvarint(src)
	src = src[n:]

	out := dst
	base := len(out)
	for len(src) > 0 {
		tag := src[0]
		switch tag & 3 {
		case tagLiteral:
			n := int(tag >> 2)
			src = src[1:]
			switch {
			case n < 60:
				n++
			case n == 60:
				if len(src) < 1 {
					return nil, ErrCorrupt
				}
				n = int(src[0]) + 1
				src = src[1:]
			case n == 61:
				if len(src) < 2 {
					return nil, ErrCorrupt
				}
				n = int(src[0]) | int(src[1])<<8
				n++
				src = src[2:]
			case n == 62:
				if len(src) < 3 {
					return nil, ErrCorrupt
				}
				n = int(src[0]) | int(src[1])<<8 | int(src[2])<<16
				n++
				src = src[3:]
			default: // 63
				if len(src) < 4 {
					return nil, ErrCorrupt
				}
				n = int(binary.LittleEndian.Uint32(src))
				n++
				src = src[4:]
			}
			if n < 0 || n > len(src) {
				return nil, ErrCorrupt
			}
			out = append(out, src[:n]...)
			src = src[n:]
		case tagCopy1:
			if len(src) < 2 {
				return nil, ErrCorrupt
			}
			length := 4 + int(tag>>2)&0x7
			offset := int(tag&0xe0)<<3 | int(src[1])
			src = src[2:]
			var err error
			out, err = copyBack(out, base, offset, length)
			if err != nil {
				return nil, err
			}
		case tagCopy2:
			if len(src) < 3 {
				return nil, ErrCorrupt
			}
			length := 1 + int(tag>>2)
			offset := int(src[1]) | int(src[2])<<8
			src = src[3:]
			var err error
			out, err = copyBack(out, base, offset, length)
			if err != nil {
				return nil, err
			}
		case tagCopy4:
			if len(src) < 5 {
				return nil, ErrCorrupt
			}
			length := 1 + int(tag>>2)
			offset := int(binary.LittleEndian.Uint32(src[1:]))
			src = src[5:]
			var err error
			out, err = copyBack(out, base, offset, length)
			if err != nil {
				return nil, err
			}
		}
		if len(out)-base > decodedLen {
			return nil, ErrCorrupt
		}
	}
	if len(out)-base != decodedLen {
		return nil, fmt.Errorf("%w: decoded %d bytes, header says %d",
			ErrCorrupt, len(out)-base, decodedLen)
	}
	return out, nil
}

// copyBack appends length bytes starting offset bytes before the end of
// out (overlapping copies are byte-at-a-time, per the format).
func copyBack(out []byte, base, offset, length int) ([]byte, error) {
	if offset <= 0 || length <= 0 || offset > len(out)-base {
		return nil, ErrCorrupt
	}
	pos := len(out) - offset
	for i := 0; i < length; i++ {
		out = append(out, out[pos+i])
	}
	return out, nil
}
