package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"lsmio/internal/faultfs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// Tests for the parallel compaction/flush pipeline: concurrent background
// workers under -race, subcompaction sharding, single-job equivalence,
// write-stall smoothing, and the compaction error paths.

// smallTreeOpts shapes a DB that compacts eagerly so short workloads
// exercise multi-level background work.
func smallTreeOpts(o *Options) {
	o.WriteBufferSize = 8 << 10
	o.L0CompactionTrigger = 2
	o.BaseLevelSize = 16 << 10
	o.LevelSizeMultiplier = 2
	o.DisableCompression = true
	o.BitsPerKey = 0
}

// TestParallelCompactionStress drives parallel writers against
// simultaneous background flushing and a multi-job compaction pool, then
// verifies every acknowledged write. Run under -race (make check) this is
// the data-race gate for the scheduler.
func TestParallelCompactionStress(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		smallTreeOpts(o)
		o.AsyncFlush = true
		o.MaxBackgroundJobs = 4
		o.SlowdownDelay = 50 * time.Microsecond
	})
	defer db.Close()

	const writers = 8
	const perWriter = 400
	payload := bytes.Repeat([]byte("p"), 120)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-%05d", w, i)
				v := append(append([]byte(nil), payload...), byte(rng.Intn(256)))
				if err := db.Put([]byte(k), v); err != nil {
					errs[w] = fmt.Errorf("put %s: %w", k, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitBackground(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Compactions == 0 {
		t.Fatal("stress workload never compacted; tree shaping too weak")
	}
	// Every last-written value must be readable after the dust settles.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 37 {
			k := fmt.Sprintf("w%02d-%05d", w, i)
			if _, err := db.Get([]byte(k)); err != nil {
				t.Fatalf("get %s after settle: %v", k, err)
			}
		}
	}
	if err := db.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

// TestSubcompactionsShardWideMerges proves a wide L0→L1 merge is split
// into key-range shards when the job pool allows, and that the stitched
// result is byte-equal to the single-job merge of the same workload.
func TestSubcompactionsShardWideMerges(t *testing.T) {
	run := func(jobs int) (map[string]string, Stats) {
		db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
			smallTreeOpts(o)
			o.MaxBackgroundJobs = jobs
			o.DisableCompaction = true // build L0 manually, compact once
		})
		defer db.Close()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 900; i++ {
			k := fmt.Sprintf("sc%05d", rng.Intn(400))
			v := fmt.Sprintf("val-%06d", i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			if i%120 == 119 {
				if err := db.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		it, err := db.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			out[string(it.Key())] = string(it.Value())
		}
		return out, db.Stats()
	}

	single, s1 := run(1)
	multi, s4 := run(4)
	if s1.Subcompactions != 0 {
		t.Fatalf("single-job mode ran %d subcompactions; must be the serial path", s1.Subcompactions)
	}
	if s4.Subcompactions == 0 {
		t.Fatal("4-job CompactAll of a wide L0 never sharded the merge")
	}
	if len(single) != len(multi) {
		t.Fatalf("key count diverged: %d single vs %d multi", len(single), len(multi))
	}
	for k, v := range single {
		if multi[k] != v {
			t.Fatalf("key %s: single %q, multi %q", k, v, multi[k])
		}
	}
}

// TestConcurrentCompactionsDisjoint checks the scheduler actually runs
// multiple compactions and that claims stay disjoint (no version
// corruption — the apply would fail or checksums would break otherwise).
func TestConcurrentCompactionsDisjoint(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		smallTreeOpts(o)
		o.AsyncFlush = true
		o.MaxBackgroundJobs = 4
	})
	defer db.Close()
	payload := bytes.Repeat([]byte("d"), 200)
	for i := 0; i < 4000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("cc%05d", i%1300)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitBackground(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1300; i += 13 {
		if _, err := db.Get([]byte(fmt.Sprintf("cc%05d", i))); err != nil {
			t.Fatalf("cc%05d: %v", i, err)
		}
	}
	if err := db.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

// delayFS injects a fixed virtual-time cost into every SSTable write when
// used under the simulation kernel, so background flushes take long enough
// for writers to pile into the stall tiers deterministically. WAL writes
// are left fast so the foreground outruns the background.
type delayFS struct {
	vfs.FS
	k *sim.Kernel
	d time.Duration
}

type delayFile struct {
	vfs.File
	fs *delayFS
}

func (d *delayFS) charge() {
	if p := d.k.Current(); p != nil {
		p.Sleep(d.d)
	}
}

func (d *delayFS) Create(name string) (vfs.File, error) {
	f, err := d.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".sst") {
		return &delayFile{File: f, fs: d}, nil
	}
	return f, nil
}

func (f *delayFile) Write(p []byte) (int, error) {
	f.fs.charge()
	return f.File.Write(p)
}

// TestStallEpisodeAccounting pins down the StallWaits fix on the
// deterministic simulator: one stall episode is counted once — not once
// per condvar Broadcast — and its duration lands in StallMicros. Every
// episode ends because at least one flush completed, so episodes can
// never outnumber flushes; the pre-fix per-wakeup counting (flush + +
// compaction signals all broadcast) violates this on the same workload.
func TestStallEpisodeAccounting(t *testing.T) {
	k := sim.NewKernel()
	var got Stats
	k.Spawn("writer", func(p *sim.Proc) {
		opts := DefaultOptions(&delayFS{FS: vfs.NewMemFS(), k: k, d: 2 * time.Millisecond})
		opts.Platform = SimPlatform(k)
		smallTreeOpts(&opts)
		opts.AsyncFlush = true
		opts.MaxImmutableMemtables = 1
		opts.MaxBackgroundJobs = 2
		opts.SlowdownDelay = -1 // isolate the hard-stall tier
		db, err := Open("db", opts)
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte("s"), 256)
		for i := 0; i < 600; i++ {
			if err := db.Put([]byte(fmt.Sprintf("st%05d", i)), payload); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		if err := db.Flush(); err != nil {
			t.Error(err)
			return
		}
		got = db.Stats()
		if err := db.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got.StallWaits == 0 {
		t.Fatal("expected write stalls with a 1-deep immutable queue and slow flushes")
	}
	if got.StallWaits > got.Flushes {
		t.Fatalf("StallWaits %d > Flushes %d: episodes are being multi-counted per wakeup",
			got.StallWaits, got.Flushes)
	}
	if got.StallMicros == 0 {
		t.Fatal("stall episodes recorded but no stall duration")
	}
}

// TestSlowdownSmoothing checks the soft tier engages ahead of the hard
// stall and meters its delays.
func TestSlowdownSmoothing(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		smallTreeOpts(o)
		// Synchronous flush and a high compaction trigger make the L0
		// count grow deterministically past the slowdown threshold.
		o.L0CompactionTrigger = 100
		o.L0SlowdownTrigger = 2
		o.L0StopTrigger = 50
		o.SlowdownDelay = 100 * time.Microsecond
	})
	defer db.Close()
	payload := bytes.Repeat([]byte("x"), 400)
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("sd%04d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.SlowdownWaits == 0 {
		t.Fatal("soft slowdown tier never engaged with L0SlowdownTrigger=1")
	}
	if s.SlowdownMicros == 0 {
		t.Fatal("slowdown waits recorded but no slowdown duration")
	}
}

// TestSlowdownDisabledForPaperConfig: the checkpoint configuration
// disables compaction, so neither admission-control tier may ever fire —
// the paper-reproduction write path is byte-identical.
func TestSlowdownDisabledForPaperConfig(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := CheckpointOptions(fs)
	opts.WriteBufferSize = 8 << 10
	opts.MaxImmutableMemtables = 1
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	payload := bytes.Repeat([]byte("c"), 512)
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("pc%04d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.SlowdownWaits != 0 || s.SlowdownMicros != 0 {
		t.Fatalf("slowdown tier fired (%d waits) with compaction disabled", s.SlowdownWaits)
	}
	if s.Subcompactions != 0 {
		t.Fatalf("subcompactions ran (%d) with compaction disabled", s.Subcompactions)
	}
}

// TestCompactionCleansPartialOutputsOnError: a mid-merge write failure
// must not leak the open output handle or leave partial SSTables on disk,
// and the close/getTable error paths must release their iterators. After
// the failed compaction, the directory may hold only live tables.
func TestCompactionCleansPartialOutputsOnError(t *testing.T) {
	for _, rule := range []faultfs.Rule{
		// Fail an SSTable write partway through the merge output.
		{Op: faultfs.OpWrite, Path: ".sst", Nth: 3},
		// Fail the creation of a merge output file.
		{Op: faultfs.OpCreate, Path: ".sst", Nth: 1},
	} {
		rule := rule
		t.Run(rule.Op.String(), func(t *testing.T) {
			ffs := faultfs.New(vfs.NewMemFS())
			opts := DefaultOptions(ffs)
			smallTreeOpts(&opts)
			opts.DisableCompaction = true // drive the failing compaction manually
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("e"), 300)
			for i := 0; i < 300; i++ {
				if err := db.Put([]byte(fmt.Sprintf("ep%04d", i%120)), payload); err != nil {
					t.Fatal(err)
				}
				if i%60 == 59 {
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}

			live := map[string]bool{}
			names, _ := ffs.List("db")
			for _, n := range names {
				live[n] = true
			}
			ffs.AddRule(&rule)
			if err := db.CompactAll(); err == nil {
				t.Fatal("compaction with injected table fault should fail")
			}
			ffs.ClearRules()

			// No new .sst may remain: the partial/orphan outputs of the
			// failed merge must have been closed and deleted.
			names, err = ffs.List("db")
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range names {
				if len(n) > 4 && n[len(n)-4:] == ".sst" && !live[n] {
					t.Fatalf("failed compaction leaked output table %s", n)
				}
			}
			db.Close()

			// The tree is untouched: reopen and read everything back.
			opts.FS = ffs
			opts.Platform = nil
			db2, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			for i := 0; i < 120; i++ {
				if _, err := db2.Get([]byte(fmt.Sprintf("ep%04d", i))); err != nil {
					t.Fatalf("ep%04d after failed compaction: %v", i, err)
				}
			}
		})
	}
}
