package lsm

import (
	"lsmio/internal/obs"
)

// dbMetrics holds the engine's obs instrument handles, resolved once at
// Open so the hot paths never touch the registry map. All instruments
// live under the `lsm.` prefix; the legacy Stats struct is a thin
// snapshot view over them (see DB.Stats).
type dbMetrics struct {
	puts    *obs.Counter
	deletes *obs.Counter
	gets    *obs.Counter

	flushes      *obs.Counter
	bytesFlushed *obs.Counter
	flushDur     *obs.Histogram

	compactions    *obs.Counter
	bytesCompacted *obs.Counter
	subcompactions *obs.Counter
	compactionDur  *obs.Histogram

	walBytes *obs.Counter

	stallWaits *obs.Counter
	stallUS    *obs.Counter
	stallDur   *obs.Histogram

	slowdownWaits *obs.Counter
	slowdownUS    *obs.Counter
	slowdownDur   *obs.Histogram

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	trace *obs.Trace
}

func newDBMetrics(reg *obs.Registry) dbMetrics {
	s := reg.Scope("lsm")
	return dbMetrics{
		puts:    s.Counter("puts"),
		deletes: s.Counter("deletes"),
		gets:    s.Counter("gets"),

		flushes:      s.Counter("flush.count"),
		bytesFlushed: s.Counter("flush.bytes"),
		flushDur:     s.Histogram("flush.duration"),

		compactions:    s.Counter("compaction.count"),
		bytesCompacted: s.Counter("compaction.bytes_written"),
		subcompactions: s.Counter("compaction.subcompactions"),
		compactionDur:  s.Histogram("compaction.duration"),

		walBytes: s.Counter("wal.bytes"),

		stallWaits: s.Counter("stall.episodes"),
		stallUS:    s.Counter("stall.micros"),
		stallDur:   s.Histogram("stall.duration"),

		slowdownWaits: s.Counter("slowdown.count"),
		slowdownUS:    s.Counter("slowdown.micros"),
		slowdownDur:   s.Histogram("slowdown.duration"),

		cacheHits:   s.Counter("cache.hits"),
		cacheMisses: s.Counter("cache.misses"),

		trace: s.Trace(),
	}
}
