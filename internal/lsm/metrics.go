package lsm

import (
	"lsmio/internal/obs"
)

// dbMetrics holds the engine's obs instrument handles, resolved once at
// Open so the hot paths never touch the registry map. All instruments
// live under the `lsm.` prefix; the legacy Stats struct is a thin
// snapshot view over them (see DB.Stats).
type dbMetrics struct {
	puts    *obs.Counter
	deletes *obs.Counter
	gets    *obs.Counter

	flushes      *obs.Counter
	bytesFlushed *obs.Counter
	flushDur     *obs.Histogram

	compactions    *obs.Counter
	bytesCompacted *obs.Counter
	subcompactions *obs.Counter
	compactionDur  *obs.Histogram

	walBytes *obs.Counter
	// Group-commit telemetry: syncs counts physical WAL fsyncs,
	// groupCommits counts leader rounds, and groupSize is the cohort size
	// distribution (writes coalesced per leader append).
	walSyncs        *obs.Counter
	walGroupCommits *obs.Counter
	walGroupSize    *obs.Histogram

	// Table-build pipeline stage occupancy. Queue depth is sampled at
	// every job submit; the busy counters accumulate microseconds each
	// stage spent doing work (vs waiting), which is how the ext-pipeline
	// figure proves the I/O stage stays saturated.
	pipeBlocks       *obs.Counter
	pipeQueueDepth   *obs.Histogram
	pipeEncodeBusyUS *obs.Counter
	pipeEncodeDur    *obs.Histogram
	pipeWriteBusyUS  *obs.Counter
	pipeWriteDur     *obs.Histogram

	stallWaits *obs.Counter
	stallUS    *obs.Counter
	stallDur   *obs.Histogram

	slowdownWaits *obs.Counter
	slowdownUS    *obs.Counter
	slowdownDur   *obs.Histogram

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	trace *obs.Trace
}

// discardMetrics backs standalone tableWriters (repair, direct test
// construction) that have no engine registry: observations land in a
// private registry nobody snapshots.
var discardMetrics = newDBMetrics(obs.NewRegistry())

func newDBMetrics(reg *obs.Registry) dbMetrics {
	s := reg.Scope("lsm")
	return dbMetrics{
		puts:    s.Counter("puts"),
		deletes: s.Counter("deletes"),
		gets:    s.Counter("gets"),

		flushes:      s.Counter("flush.count"),
		bytesFlushed: s.Counter("flush.bytes"),
		flushDur:     s.Histogram("flush.duration"),

		compactions:    s.Counter("compaction.count"),
		bytesCompacted: s.Counter("compaction.bytes_written"),
		subcompactions: s.Counter("compaction.subcompactions"),
		compactionDur:  s.Histogram("compaction.duration"),

		walBytes:        s.Counter("wal.bytes"),
		walSyncs:        s.Counter("wal.syncs"),
		walGroupCommits: s.Counter("wal.group_commits"),
		walGroupSize:    s.Histogram("wal.group_size"),

		pipeBlocks:       s.Counter("pipeline.blocks"),
		pipeQueueDepth:   s.Histogram("pipeline.queue_depth"),
		pipeEncodeBusyUS: s.Counter("pipeline.encode.busy_micros"),
		pipeEncodeDur:    s.Histogram("pipeline.encode.duration"),
		pipeWriteBusyUS:  s.Counter("pipeline.write.busy_micros"),
		pipeWriteDur:     s.Histogram("pipeline.write.duration"),

		stallWaits: s.Counter("stall.episodes"),
		stallUS:    s.Counter("stall.micros"),
		stallDur:   s.Histogram("stall.duration"),

		slowdownWaits: s.Counter("slowdown.count"),
		slowdownUS:    s.Counter("slowdown.micros"),
		slowdownDur:   s.Histogram("slowdown.duration"),

		cacheHits:   s.Counter("cache.hits"),
		cacheMisses: s.Counter("cache.misses"),

		trace: s.Trace(),
	}
}
