package lsm

import (
	"encoding/binary"
	"fmt"
)

// Batch collects writes to be applied atomically. Its wire encoding (also
// the WAL record payload) is:
//
//	seq(8) count(4) { kind(1) varint(keyLen) key varint(valueLen)? value? }*
//
// Batches are how the paper's "LevelDB-style" LSMIO local store implements
// buffering and aggregation when the write-ahead log cannot be disabled
// (§3.1.2): entries accumulate in the batch and hit the engine only on a
// barrier.
type Batch struct {
	data  []byte
	count uint32
}

const batchHeaderLen = 12

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{data: make([]byte, batchHeaderLen)}
}

// Put queues a key/value write.
func (b *Batch) Put(key, value []byte) {
	b.init()
	b.data = append(b.data, byte(kindValue))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
	b.data = binary.AppendUvarint(b.data, uint64(len(value)))
	b.data = append(b.data, value...)
	b.count++
}

// Delete queues a deletion.
func (b *Batch) Delete(key []byte) {
	b.init()
	b.data = append(b.data, byte(kindDelete))
	b.data = binary.AppendUvarint(b.data, uint64(len(key)))
	b.data = append(b.data, key...)
	b.count++
}

func (b *Batch) init() {
	if len(b.data) < batchHeaderLen {
		b.data = make([]byte, batchHeaderLen)
	}
}

// Count returns the number of queued operations.
func (b *Batch) Count() int { return int(b.count) }

// Size returns the encoded size in bytes.
func (b *Batch) Size() int {
	b.init()
	return len(b.data)
}

// Reset empties the batch for reuse.
func (b *Batch) Reset() {
	b.data = b.data[:batchHeaderLen]
	for i := range b.data {
		b.data[i] = 0
	}
	b.count = 0
}

// setSeq stamps the starting sequence number before application/logging.
func (b *Batch) setSeq(seq seqNum) {
	binary.LittleEndian.PutUint64(b.data[:8], uint64(seq))
	binary.LittleEndian.PutUint32(b.data[8:12], b.count)
}

func (b *Batch) seq() seqNum { return seqNum(binary.LittleEndian.Uint64(b.data[:8])) }

// forEach decodes the batch, calling fn for every operation with the
// operation's own sequence number.
func (b *Batch) forEach(fn func(seq seqNum, kind keyKind, key, value []byte) error) error {
	if len(b.data) < batchHeaderLen {
		return fmt.Errorf("lsm: batch too short")
	}
	seq := b.seq()
	count := binary.LittleEndian.Uint32(b.data[8:12])
	p := b.data[batchHeaderLen:]
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return fmt.Errorf("lsm: batch truncated at op %d", i)
		}
		kind := keyKind(p[0])
		p = p[1:]
		keyLen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < keyLen {
			return fmt.Errorf("lsm: batch: bad key at op %d", i)
		}
		key := p[n : n+int(keyLen)]
		p = p[n+int(keyLen):]
		var value []byte
		if kind == kindValue {
			valLen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)-n) < valLen {
				return fmt.Errorf("lsm: batch: bad value at op %d", i)
			}
			value = p[n : n+int(valLen)]
			p = p[n+int(valLen):]
		}
		if err := fn(seq+seqNum(i), kind, key, value); err != nil {
			return err
		}
	}
	return nil
}

// decodeBatch wraps raw WAL payload bytes as a batch for replay.
func decodeBatch(payload []byte) (*Batch, error) {
	if len(payload) < batchHeaderLen {
		return nil, fmt.Errorf("lsm: batch payload too short")
	}
	return &Batch{
		data:  payload,
		count: binary.LittleEndian.Uint32(payload[8:12]),
	}, nil
}
