package lsm

import (
	"fmt"
	"strings"
)

// Snapshot is a consistent read-only view of the database as of its
// creation: reads through it ignore all later writes. A snapshot pins a
// sequence number; flushes and compactions retain entry versions that
// live snapshots can still see. Snapshots must be Released.
type Snapshot struct {
	db       *DB
	seq      seqNum
	released bool
}

// NewSnapshot captures the current state.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	db.plat.Lock()
	defer db.plat.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{db: db, seq: db.vs.lastSeq}
	db.snapshots = append(db.snapshots, s)
	return s, nil
}

// smallestSnapshotLocked returns the oldest sequence any live snapshot
// needs (or the current sequence when none exist). Compactions may only
// drop entry versions older than this.
func (db *DB) smallestSnapshotLocked() seqNum {
	smallest := db.vs.lastSeq
	for _, s := range db.snapshots {
		if s.seq < smallest {
			smallest = s.seq
		}
	}
	return smallest
}

// Get returns the newest value for key visible at the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.released {
		return nil, fmt.Errorf("lsm: snapshot already released")
	}
	return s.db.getAtSeq(key, s.seq)
}

// NewIterator returns an iterator over the database as of the snapshot.
func (s *Snapshot) NewIterator() (*Iterator, error) {
	return s.NewRangeIterator(nil, nil)
}

// NewRangeIterator returns a bounded iterator over the snapshot's view.
func (s *Snapshot) NewRangeIterator(start, limit []byte) (*Iterator, error) {
	if s.released {
		return nil, fmt.Errorf("lsm: snapshot already released")
	}
	it, err := s.db.NewRangeIterator(start, limit)
	if err != nil {
		return nil, err
	}
	it.seq = s.seq
	return it, nil
}

// Seq exposes the snapshot's sequence number (diagnostics).
func (s *Snapshot) Seq() uint64 { return uint64(s.seq) }

// Release unpins the snapshot; it must not be used afterwards.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	db := s.db
	db.plat.Lock()
	for i, snap := range db.snapshots {
		if snap == s {
			db.snapshots = append(db.snapshots[:i], db.snapshots[i+1:]...)
			break
		}
	}
	db.plat.Unlock()
}

// VerifyChecksums reads every block of every live table, validating CRCs
// and structure, and replays iterator order; it returns the first
// corruption found. The lsmioctl `verify` command exposes it.
func (db *DB) VerifyChecksums() error {
	db.plat.Lock()
	if db.closed {
		db.plat.Unlock()
		return ErrClosed
	}
	ver := db.refCurrentLocked()
	db.plat.Unlock()
	defer func() {
		db.plat.Lock()
		db.unrefVersion(ver)
		db.plat.Unlock()
	}()
	for level, files := range ver.levels {
		for _, fm := range files {
			t, err := db.getTable(fm.num)
			if err != nil {
				return fmt.Errorf("lsm: L%d table %06d: %w", level, fm.num, err)
			}
			it := t.iterator()
			var prev internalKey
			count := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				ik := it.IKey()
				if prev.valid() && compareIKeys(prev, ik) >= 0 {
					return fmt.Errorf("lsm: L%d table %06d: keys out of order", level, fm.num)
				}
				prev = append(prev[:0], ik...)
				count++
			}
			if err := it.Close(); err != nil {
				return fmt.Errorf("lsm: L%d table %06d: %w", level, fm.num, err)
			}
			if count == 0 {
				return fmt.Errorf("lsm: L%d table %06d: empty table", level, fm.num)
			}
		}
	}
	return nil
}

// Property names understood by GetProperty.
const (
	PropNumFilesAtLevelPrefix = "lsmio.num-files-at-level" // + N
	PropLevelBytesPrefix      = "lsmio.level-bytes"        // + N
	PropMemtableSize          = "lsmio.memtable-size"
	PropImmutableCount        = "lsmio.immutable-memtables"
	PropLastSeq               = "lsmio.last-sequence"
	PropTableFiles            = "lsmio.table-files"
)

// GetProperty returns engine internals by name, mirroring RocksDB's
// GetProperty surface.
func (db *DB) GetProperty(name string) (string, bool) {
	db.plat.Lock()
	defer db.plat.Unlock()
	if db.closed {
		return "", false
	}
	switch {
	case strings.HasPrefix(name, PropNumFilesAtLevelPrefix):
		var l int
		if _, err := fmt.Sscan(strings.TrimPrefix(name, PropNumFilesAtLevelPrefix), &l); err != nil || l < 0 || l >= numLevels {
			return "", false
		}
		return fmt.Sprint(len(db.vs.current.levels[l])), true
	case strings.HasPrefix(name, PropLevelBytesPrefix):
		var l int
		if _, err := fmt.Sscan(strings.TrimPrefix(name, PropLevelBytesPrefix), &l); err != nil || l < 0 || l >= numLevels {
			return "", false
		}
		return fmt.Sprint(db.vs.current.levelBytes(l)), true
	case name == PropMemtableSize:
		return fmt.Sprint(db.mem.approximateSize()), true
	case name == PropImmutableCount:
		return fmt.Sprint(len(db.imm)), true
	case name == PropLastSeq:
		return fmt.Sprint(uint64(db.vs.lastSeq)), true
	case name == PropTableFiles:
		return fmt.Sprint(db.vs.current.numFiles()), true
	default:
		return "", false
	}
}

// ApproximateSize estimates the on-disk bytes holding keys in
// [start, end) (nil end = unbounded), by summing overlapping table sizes.
func (db *DB) ApproximateSize(start, end []byte) int64 {
	db.plat.Lock()
	defer db.plat.Unlock()
	if db.closed {
		return 0
	}
	var hi []byte
	if end != nil {
		hi = end
	}
	var total int64
	for _, files := range db.vs.current.levels {
		for _, f := range files {
			if f.overlaps(start, hi) {
				total += f.size
			}
		}
	}
	return total
}
