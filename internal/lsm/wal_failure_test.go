package lsm

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lsmio/internal/faultfs"
	"lsmio/internal/vfs"
)

// replayWAL reads every intact record from a log file.
func replayWAL(t *testing.T, fs vfs.FS, name string) [][]byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	r, err := newWALReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for {
		rec, err := r.next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("wal read: %v", err)
		}
		recs = append(recs, append([]byte(nil), rec...))
	}
}

// TestWALPadRetrySurvivesTornPadWrite is the regression test for the
// stale-blockOff bug: a transient failure of the block-tail pad write
// used to leave blockOff pointing before the pad, so a retried append
// padded a second time and emitted the next record header mid-block.
// The reader — which skips exactly one pad per block — then misparses
// that header and silently truncates replay. After the fix the writer
// resynchronizes its position model from the file on any write error,
// and a retried append lands where the reader expects it.
func TestWALPadRetrySurvivesTornPadWrite(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	f, err := ffs.Create("w.log")
	if err != nil {
		t.Fatal(err)
	}
	w := newWALWriter(f)

	// Record A fills the first block to within 6 bytes of its end
	// (7-byte header + 32755-byte payload = 32762), so the next append
	// must pad before emitting.
	recA := bytes.Repeat([]byte("A"), walBlockSize-walHeaderSize-6)
	if err := w.addRecord(recA); err != nil {
		t.Fatal(err)
	}

	// The next write to the file is the 6-byte pad: tear it after 3
	// bytes, once.
	ffs.AddRule(&faultfs.Rule{
		Op:         faultfs.OpWrite,
		Path:       "w.log",
		Nth:        1,
		KeepPrefix: 3,
		Transient:  true,
	})

	recB := []byte("record-B-after-failed-pad")
	if err := w.addRecord(recB); err == nil {
		t.Fatal("expected the torn pad write to fail the append")
	}
	ffs.ClearRules()

	// Retry the append, then write one more record behind it.
	if err := w.addRecord(recB); err != nil {
		t.Fatalf("retried append: %v", err)
	}
	recC := []byte("record-C")
	if err := w.addRecord(recC); err != nil {
		t.Fatal(err)
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}

	got := replayWAL(t, ffs, "w.log")
	want := [][]byte{recA, recB, recC}
	if len(got) != len(want) {
		t.Fatalf("replay returned %d records, want %d: retried append after a torn pad is invisible to the reader", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: got %d bytes, want %d", i, len(got[i]), len(want[i]))
		}
	}
}

// TestWALSyncFailurePoisonsDB is the regression test for the failed-write
// resurrection bug: a Put whose WAL fsync failed used to leave the
// database writable with lastSeq already advanced, so a later successful
// write's fsync would make the failed record durable and replay would
// resurrect a write its caller was told failed. The fixed engine poisons
// itself on any WAL append/sync error and rolls the suspect tail back.
func TestWALSyncFailurePoisonsDB(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	db := openTestDB(t, ffs, func(o *Options) { o.Sync = true })

	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	ffs.AddRule(&faultfs.Rule{Op: faultfs.OpSync, Path: ".log", Nth: 1})
	if err := db.Put([]byte("k2"), []byte("v2")); err == nil {
		t.Fatal("expected Put to fail when the WAL fsync fails")
	} else if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("unexpected error: %v", err)
	}
	ffs.ClearRules()

	// The engine must now refuse writes: accepting k3 (and syncing it)
	// would make k2's already-buffered record durable too.
	if err := db.Put([]byte("k3"), []byte("v3")); err == nil {
		t.Fatal("database accepted a write after a WAL sync failure; a later sync can resurrect the failed write")
	}

	// Crash (drop everything unsynced) and recover: only k1 survives.
	ffs.Crash()
	db2, err := Open("db", DefaultOptions(ffs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k1")); err != nil || string(v) != "v1" {
		t.Fatalf("k1 (acked before the fault) lost: %q, %v", v, err)
	}
	for _, k := range []string{"k2", "k3"} {
		if v, err := db2.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s resurrected after its write failed: %q, %v", k, v, err)
		}
	}
}

// TestWALSyncFailureRollsBackRecord covers the non-crash flavor of the
// same bug: after a failed fsync the record is typically complete in the
// OS buffer, so a plain reopen (no crash, nothing discarded) would replay
// it unless the engine truncates the suspect tail. The fixed commit path
// rolls the log back to its pre-append offset on failure.
func TestWALSyncFailureRollsBackRecord(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	db := openTestDB(t, ffs, func(o *Options) { o.Sync = true })

	if err := db.Put([]byte("ok"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	ffs.AddRule(&faultfs.Rule{Op: faultfs.OpSync, Path: ".log", Nth: 1})
	if err := db.Put([]byte("doomed"), []byte("2")); err == nil {
		t.Fatal("expected Put to fail when the WAL fsync fails")
	}
	ffs.ClearRules()

	// No crash: reopen sees every byte ever written, including any
	// un-truncated tail.
	db2, err := Open("db", DefaultOptions(ffs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("ok")); err != nil || string(v) != "1" {
		t.Fatalf("acked key lost: %q, %v", v, err)
	}
	if v, err := db2.Get([]byte("doomed")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed write resurrected by crash-free replay: %q, %v", v, err)
	}
}

// TestWALAppendFailurePoisonsDB is the torn-append variant: the record
// write itself fails partway. The tail is unparseable garbage, the DB
// must poison itself, and recovery must surface only acked writes.
func TestWALAppendFailurePoisonsDB(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	db := openTestDB(t, ffs, func(o *Options) { o.Sync = true })

	if err := db.Put([]byte("base"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Tear the next .log append after 10 bytes (mid-header/payload).
	ffs.AddRule(&faultfs.Rule{Op: faultfs.OpWrite, Path: ".log", Nth: 1, KeepPrefix: 10})
	if err := db.Put([]byte("torn"), []byte("v")); err == nil {
		t.Fatal("expected Put to fail on a torn WAL append")
	}
	ffs.ClearRules()
	if err := db.Put([]byte("after"), []byte("v")); err == nil {
		t.Fatal("database accepted a write after a WAL append failure")
	}

	db2, err := Open("db", DefaultOptions(ffs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("base")); err != nil {
		t.Fatalf("acked key lost: %v", err)
	}
	for _, k := range []string{"torn", "after"} {
		if _, err := db2.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s visible after its write failed: %v", k, err)
		}
	}
}
