package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"lsmio/internal/iosched"
	"lsmio/internal/obs"
	"lsmio/internal/vfs"
)

// Errors returned by DB methods.
var (
	// ErrNotFound reports that a key has no live value.
	ErrNotFound = errors.New("lsm: key not found")
	// ErrClosed reports use of a closed database.
	ErrClosed = errors.New("lsm: database is closed")
	// ErrCorruption marks read failures caused by damaged on-disk data
	// (block checksum mismatch, undecompressable block). Callers above
	// the engine use it to tell data damage apart from I/O failures —
	// e.g. the checkpoint scrubber quarantines the affected step and
	// keeps going rather than aborting the whole pass.
	ErrCorruption = errors.New("corruption")
)

// Stats are cumulative engine counters, used by the benchmarks and the
// LSMIO performance counters. Since the obs refactor this struct is a
// thin snapshot view over the engine's `lsm.*` instruments in its obs
// registry (DB.Obs); it exists for API compatibility, and the registry
// is the single source of truth.
type Stats struct {
	Puts           int64
	Deletes        int64
	Gets           int64
	Flushes        int64
	Compactions    int64
	BytesFlushed   int64
	BytesCompacted int64
	WALBytes       int64
	// WALSyncs counts physical log fsyncs; WALGroupCommits counts
	// group-commit leader rounds. With Options.Sync set, syncs well below
	// the write count is the group-commit amortization at work.
	WALSyncs        int64
	WALGroupCommits int64
	// StallWaits counts hard write-stall EPISODES: contiguous periods a
	// writer spent blocked on the flush backlog or the L0 stop trigger.
	// (It used to count condvar wakeups, which inflated one episode by
	// the number of Broadcast deliveries.)
	StallWaits int64
	// StallMicros is the cumulative duration of those episodes, in
	// microseconds (virtual time on the simulated platform).
	StallMicros int64
	// SlowdownWaits counts writes delayed by the soft admission-control
	// tier (L0SlowdownTrigger / SoftPendingCompactionBytes), and
	// SlowdownMicros their cumulative delay in microseconds.
	SlowdownWaits  int64
	SlowdownMicros int64
	// Subcompactions counts key-range shards executed by split merges
	// (0 unless MaxBackgroundJobs > 1).
	Subcompactions int64
	CacheHits      int64
	CacheMisses    int64
}

// DB is a log-structured merge-tree database over a vfs.FS directory.
//
// Concurrency: DB methods may be called from multiple goroutines (or
// simulation processes); internal state is guarded by the Platform lock
// following LevelDB's protocol (the lock is released around file I/O on
// the read path and during table builds).
type DB struct {
	opts Options
	fs   vfs.FS
	dir  string
	plat Platform

	// State below is guarded by plat.Lock.
	mem     *memtable
	imm     []*memtable // oldest first
	wal     *walWriter
	walFile vfs.File
	walNum  uint64
	vs      *versionSet
	tables  map[uint64]*tableReader
	cache   *blockCache
	pinned  map[*version]bool // versions referenced by readers
	// pendingOutputs holds file numbers of tables being written by a flush
	// or compaction that no version references yet; the obsolete-file
	// sweeper must not delete them.
	pendingOutputs map[uint64]bool
	flushing       bool
	// compactionsInFlight is the number of running background compaction
	// workers (bounded by Options.MaxBackgroundJobs); their input
	// reservations live in vs.claims. manualCompaction marks an exclusive
	// CompactAll in progress, which background workers yield to.
	compactionsInFlight int
	manualCompaction    bool
	closed              bool
	bgErr               error
	// writeQ is the group-commit writer queue: Apply callers enqueue and
	// the head ("leader") commits a whole cohort with one coalesced WAL
	// append + sync, releasing the lock for the I/O. logging marks a
	// leader's WAL I/O in flight; memtable/WAL rotation and Close fence
	// on it.
	writeQ  []*pendingWrite
	logging bool
	// reg is the obs registry backing every engine counter; m caches the
	// instrument handles so hot paths never hash instrument names.
	reg *obs.Registry
	m   dbMetrics
	// snapshots are the live Snapshot handles; compaction keeps entry
	// versions the oldest of them can still observe.
	snapshots []*Snapshot
}

// Open opens (creating if necessary) a database in dir.
func Open(dir string, opts Options) (*DB, error) {
	o := opts.withDefaults()
	if o.FS == nil {
		return nil, fmt.Errorf("lsm: Options.FS is required")
	}
	db := &DB{
		opts:           o,
		fs:             o.FS,
		dir:            strings.TrimSuffix(dir, "/"),
		plat:           o.Platform,
		mem:            newMemtable(),
		tables:         make(map[uint64]*tableReader),
		pinned:         make(map[*version]bool),
		pendingOutputs: make(map[uint64]bool),
		vs:             newVersionSet(o.FS, strings.TrimSuffix(dir, "/")),
		reg:            o.Obs,
	}
	if db.reg == nil {
		db.reg = obs.NewRegistry()
		db.reg.SetClock(db.plat.Now)
	}
	db.m = newDBMetrics(db.reg)
	if !o.DisableCache {
		db.cache = newBlockCache(int64(o.CacheSize), db.m.cacheHits, db.m.cacheMisses)
	}
	if db.fs.Exists(currentFileName(db.dir)) {
		if err := db.recover(); err != nil {
			return nil, err
		}
	} else {
		// Refuse to silently re-initialize a directory that clearly held a
		// database (tables or manifests present but CURRENT missing):
		// that is metadata damage, and Repair can rebuild it.
		if names, err := db.fs.List(db.dir); err == nil {
			for _, name := range names {
				if strings.HasSuffix(name, ".sst") || strings.HasPrefix(name, "MANIFEST-") {
					return nil, fmt.Errorf("lsm: %s contains database files but no CURRENT; run Repair", db.dir)
				}
			}
		}
		if err := db.vs.createNew(); err != nil {
			return nil, err
		}
	}
	if err := db.newWAL(); err != nil {
		return nil, err
	}
	return db, nil
}

// recover replays the manifest and any WAL files newer than the recorded
// log number.
func (db *DB) recover() error {
	minLog, err := db.vs.recover()
	if err != nil {
		return fmt.Errorf("lsm: recover manifest in %s: %w", db.dir, err)
	}
	names, err := db.fs.List(db.dir)
	if err != nil {
		return err
	}
	var logs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".log") {
			numStr := strings.TrimSuffix(name, ".log")
			num, err := strconv.ParseUint(numStr, 10, 64)
			if err != nil {
				continue
			}
			if num >= minLog {
				logs = append(logs, num)
			}
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	for _, num := range logs {
		if err := db.replayLog(num); err != nil {
			return fmt.Errorf("lsm: replay %s: %w", logFileName(db.dir, num), err)
		}
	}
	// Flush whatever the replay produced so old logs can be dropped.
	if !db.mem.empty() {
		meta, err := db.buildTable(db.mem, db.vs.newFileNum())
		if err != nil {
			return err
		}
		next := db.vs.nextFileNum
		edit := &versionEdit{
			Added:       []addedFile{addedFileFromMeta(0, meta)},
			NextFileNum: &next,
		}
		if _, err := db.vs.apply(edit); err != nil {
			return err
		}
		if err := db.vs.logEdit(edit); err != nil {
			return err
		}
		db.mem = newMemtable()
	}
	return nil
}

func (db *DB) replayLog(num uint64) error {
	f, err := db.fs.Open(logFileName(db.dir, num))
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return nil
		}
		return err
	}
	defer f.Close()
	r, err := newWALReader(f)
	if err != nil {
		return err
	}
	for {
		rec, err := r.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		b, err := decodeBatch(rec)
		if err != nil {
			return err
		}
		maxApplied := db.vs.lastSeq
		err = b.forEach(func(seq seqNum, kind keyKind, key, value []byte) error {
			db.mem.add(seq, kind, key, append([]byte(nil), value...))
			if seq > maxApplied {
				maxApplied = seq
			}
			return nil
		})
		if err != nil {
			return err
		}
		db.vs.lastSeq = maxApplied
	}
}

// newWAL rotates to a fresh log file (no-op when the WAL is disabled).
func (db *DB) newWAL() error {
	if db.opts.DisableWAL {
		return nil
	}
	num := db.vs.newFileNum()
	f, err := db.fs.Create(logFileName(db.dir, num))
	if err != nil {
		return err
	}
	if db.walFile != nil {
		db.walFile.Close()
	}
	db.wal = newWALWriter(f)
	db.walFile = f
	db.walNum = num
	return nil
}

// Put writes a key/value pair.
func (db *DB) Put(key, value []byte) error {
	b := NewBatch()
	b.Put(key, value)
	return db.Apply(b)
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	b := NewBatch()
	b.Delete(key)
	return db.Apply(b)
}

// pendingWrite is one Apply call queued on the group-commit writer queue.
type pendingWrite struct {
	b    *Batch
	done bool
	err  error
}

// Apply atomically applies a batch of writes.
//
// Writes go through a LevelDB-style writer queue: each caller enqueues
// its batch and waits until either a leader has committed it (a cohort
// fan-out) or it has reached the head of the queue, at which point it
// leads a cohort of its own — one coalesced WAL append and (with
// Options.Sync) one fsync covering every batch in the cohort, performed
// with the DB lock released so concurrent readers and background work
// keep moving.
func (db *DB) Apply(b *Batch) error {
	if b.Count() == 0 {
		return nil
	}
	db.plat.Lock()
	defer db.plat.Unlock()
	if db.closed {
		return ErrClosed
	}
	w := &pendingWrite{b: b}
	db.writeQ = append(db.writeQ, w)
	for !w.done && db.writeQ[0] != w {
		db.plat.WaitCond()
	}
	if !w.done {
		db.commitCohortLocked()
	}
	return w.err
}

// commitCohortLocked runs one group-commit round with the queue head as
// leader. Called with the lock held by the head writer.
func (db *DB) commitCohortLocked() {
	if err := db.makeRoomForWrite(); err != nil {
		db.finishCohortLocked(db.writeQ[:1], err)
		return
	}
	// Build the cohort: the leader plus writers queued behind it, up to
	// the group byte cap. makeRoomForWrite may have released the lock
	// (slowdown, stall, inline flush), so the queue can be longer now
	// than when this leader was elected — that is the point: the longer
	// the WAL I/O ahead of us took, the more writes one sync amortizes.
	cohort := db.writeQ[:1]
	if !db.opts.DisableWALGroupCommit {
		groupBytes := cohort[0].b.Size()
		for _, f := range db.writeQ[len(cohort):] {
			if groupBytes+f.b.Size() > db.opts.MaxWriteGroupBytes {
				break
			}
			groupBytes += f.b.Size()
			cohort = db.writeQ[:len(cohort)+1]
		}
	}
	// Stamp contiguous sequence numbers WITHOUT publishing vs.lastSeq:
	// readers must not observe sequences whose entries are not in the
	// memtable yet, and a failed WAL write must leave no sequence gap
	// for later successful writes to sit above.
	seq := db.vs.lastSeq + 1
	total := 0
	for _, pw := range cohort {
		pw.b.setSeq(seq + seqNum(total))
		total += pw.b.Count()
	}
	if !db.opts.DisableWAL {
		rec := encodeGroupRecord(cohort)
		wal := db.wal
		startOff := wal.tell()
		db.logging = true
		db.plat.Unlock()
		// Commit I/O is the scheduler's top class: the cohort's writers
		// are blocked on this append, so it outbids every background
		// consumer but is still accounted, which is what lets the
		// scheduler squeeze compaction when commits are active.
		db.opts.IOSched.Acquire(iosched.Foreground, int64(len(rec)))
		werr := wal.addRecord(rec)
		if werr == nil && db.opts.Sync {
			db.m.walSyncs.Inc()
			werr = wal.sync()
		}
		db.plat.Lock()
		db.logging = false
		db.plat.Signal()
		if werr != nil {
			// Poison the DB: the record may be fully buffered even though
			// the caller saw an error (fsync failed after a complete
			// append), so accepting further writes would let a later sync
			// make the failed cohort durable — WAL replay would then
			// resurrect writes their callers were told failed. Best
			// effort, the suspect tail is also truncated away; lastSeq
			// was never advanced, so there is no sequence gap either.
			db.wal.rollback(startOff)
			db.bgErr = fmt.Errorf("lsm: wal append: %w", werr)
			db.finishCohortLocked(cohort, werr)
			return
		}
		db.m.walBytes.Add(int64(len(rec)))
		db.m.walGroupCommits.Inc()
		db.m.walGroupSize.Observe(int64(len(cohort)))
	}
	var applyErr error
	for _, pw := range cohort {
		err := pw.b.forEach(func(seq seqNum, kind keyKind, key, value []byte) error {
			db.mem.add(seq, kind, key, append([]byte(nil), value...))
			switch kind {
			case kindValue:
				db.m.puts.Inc()
			case kindDelete:
				db.m.deletes.Inc()
			}
			return nil
		})
		if err != nil && applyErr == nil {
			applyErr = err
		}
	}
	if applyErr != nil {
		// A batch failed to decode after its record was logged: the
		// engine cannot tell which entries took effect, so stop the
		// world rather than guess. lastSeq stays unpublished — the
		// partial inserts sit above it and remain invisible.
		db.bgErr = applyErr
		db.finishCohortLocked(cohort, applyErr)
		return
	}
	db.vs.lastSeq += seqNum(total)
	db.finishCohortLocked(cohort, nil)
}

// finishCohortLocked pops the cohort off the writer queue and fans the
// outcome out to every member; the new queue head (if any) is woken to
// lead the next cohort.
func (db *DB) finishCohortLocked(cohort []*pendingWrite, err error) {
	for _, pw := range cohort {
		pw.done = true
		pw.err = err
	}
	db.writeQ = db.writeQ[len(cohort):]
	db.plat.Signal()
}

// encodeGroupRecord coalesces a cohort's batches into one WAL record:
// the first batch's header rewritten to span the whole cohort (starting
// sequence + total count — the batches were stamped contiguously),
// followed by every batch's entry bytes. A cohort of one logs its batch
// verbatim, byte-identical to the pre-group-commit format.
func encodeGroupRecord(cohort []*pendingWrite) []byte {
	if len(cohort) == 1 {
		return cohort[0].b.data
	}
	total := 0
	size := batchHeaderLen
	for _, pw := range cohort {
		total += pw.b.Count()
		size += len(pw.b.data) - batchHeaderLen
	}
	rec := make([]byte, 0, size)
	rec = append(rec, cohort[0].b.data[:batchHeaderLen]...)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(total))
	for _, pw := range cohort {
		rec = append(rec, pw.b.data[batchHeaderLen:]...)
	}
	return rec
}

// makeRoomForWrite rotates a full memtable, admission-controlling the
// writer against the background backlog. Two tiers: a soft slowdown (one
// bounded delay per write once L0 or the compaction debt crosses its soft
// threshold) smooths the approach, and the hard stall (flush backlog at
// its limit, or L0 at the stop trigger) blocks until background work
// drains. Stall episodes are counted once and their duration metered.
// Called with the lock held.
func (db *DB) makeRoomForWrite() error {
	allowDelay := !db.opts.DisableCompaction && db.opts.SlowdownDelay > 0
	var stallStart time.Duration
	stalled := false
	endStall := func() {
		if stalled {
			d := db.plat.Now() - stallStart
			db.m.stallUS.Add(int64(d / time.Microsecond))
			db.m.stallDur.ObserveDuration(d)
			db.m.trace.EmitSpan("lsm.stall", "hard write stall", stallStart)
			stalled = false
		}
	}
	for {
		if db.bgErr != nil {
			endStall()
			return db.bgErr
		}
		if allowDelay && db.writerShouldSlowdownLocked() {
			// Soft tier: pay one small delay (without the lock, so the
			// background workers and other writers keep moving) instead
			// of running full speed into the hard stall. At most once per
			// write, LevelDB-style, so a single writer is throttled, not
			// parked.
			allowDelay = false
			db.m.slowdownWaits.Inc()
			start := db.plat.Now()
			db.plat.Unlock()
			db.plat.Sleep(db.opts.SlowdownDelay)
			db.plat.Lock()
			d := db.plat.Now() - start
			db.m.slowdownUS.Add(int64(d / time.Microsecond))
			db.m.slowdownDur.ObserveDuration(d)
			continue
		}
		if db.mem.approximateSize() < int64(db.opts.WriteBufferSize) {
			endStall()
			return nil
		}
		if len(db.imm) >= db.opts.MaxImmutableMemtables || db.writerMustStopLocked() {
			// Hard stall: wait for the background work to drain. Ensure
			// the draining side is actually running before parking.
			if db.opts.AsyncFlush {
				db.maybeScheduleFlush()
			}
			db.maybeScheduleCompaction()
			if !stalled {
				stalled = true
				db.m.stallWaits.Inc()
				stallStart = db.plat.Now()
			}
			db.plat.WaitCond()
			continue
		}
		endStall()
		if err := db.rotateMemtable(); err != nil {
			return err
		}
		if db.opts.AsyncFlush {
			db.maybeScheduleFlush()
		} else {
			if err := db.flushAllLocked(); err != nil {
				return err
			}
		}
	}
}

// writerShouldSlowdownLocked reports whether the soft admission-control
// tier is engaged: the flush backlog one memtable short of its hard
// limit, L0 close to its stop trigger, or the estimated compaction debt
// above the soft threshold.
func (db *DB) writerShouldSlowdownLocked() bool {
	if db.opts.MaxImmutableMemtables > 1 &&
		len(db.imm) >= db.opts.MaxImmutableMemtables-1 {
		return true
	}
	if db.opts.L0SlowdownTrigger > 0 &&
		len(db.vs.current.levels[0]) >= db.opts.L0SlowdownTrigger {
		return true
	}
	if db.opts.SoftPendingCompactionBytes > 0 &&
		db.compactionDebtLocked() >= db.opts.SoftPendingCompactionBytes {
		return true
	}
	return false
}

// writerMustStopLocked reports whether L0 has reached the hard stop
// trigger (only meaningful while compaction can drain it).
func (db *DB) writerMustStopLocked() bool {
	return !db.opts.DisableCompaction && db.opts.L0StopTrigger > 0 &&
		len(db.vs.current.levels[0]) >= db.opts.L0StopTrigger
}

// rotateMemtable moves the active memtable to the immutable queue and
// starts a fresh WAL. Called with the lock held.
func (db *DB) rotateMemtable() error {
	// A group-commit leader may be appending to the current WAL with the
	// lock released. Rotating underneath it would split the cohort: its
	// record would sit in the old log while its memtable inserts (which
	// happen after the leader relocks) land in the new memtable — a
	// flush of that memtable then advances the manifest's log number
	// past the record, and a crash would silently lose acked writes.
	for db.logging {
		db.plat.WaitCond()
	}
	db.imm = append(db.imm, db.mem)
	db.mem = newMemtable()
	return db.newWAL()
}

// maybeScheduleFlush starts the background flusher if it is not running
// and there is something to flush. The emptiness check matters: a no-op
// flusher still broadcasts on completion, and a waiter that reschedules
// on every wakeup (WaitBackground) would livelock with it. Called with
// the lock held.
func (db *DB) maybeScheduleFlush() {
	if db.flushing || db.closed || len(db.imm) == 0 {
		return
	}
	db.flushing = true
	db.plat.Go("lsm-flush", db.backgroundFlush)
}

func (db *DB) backgroundFlush() {
	db.plat.Lock()
	for len(db.imm) > 0 && db.bgErr == nil {
		if err := db.flushOneLocked(); err != nil {
			db.bgErr = err
			break
		}
	}
	db.flushing = false
	db.plat.Signal()
	db.maybeScheduleCompaction()
	db.plat.Unlock()
}

// flushAllLocked flushes every immutable memtable inline. It claims the
// flushing flag so concurrent writers cannot flush the same memtable twice.
func (db *DB) flushAllLocked() error {
	for db.flushing {
		db.plat.WaitCond()
	}
	db.flushing = true
	var err error
	for len(db.imm) > 0 {
		if err = db.flushOneLocked(); err != nil {
			break
		}
	}
	db.flushing = false
	db.plat.Signal()
	if err != nil {
		return err
	}
	db.maybeScheduleCompaction()
	return nil
}

// flushOneLocked writes the oldest immutable memtable as an L0 table.
// The lock is released around the table build.
func (db *DB) flushOneLocked() error {
	m := db.imm[0]
	num := db.vs.newFileNum()
	db.pendingOutputs[num] = true
	flushStart := db.plat.Now()
	db.plat.Unlock()
	meta, err := db.buildTable(m, num)
	db.plat.Lock()
	defer delete(db.pendingOutputs, num)
	if err != nil {
		return err
	}
	// Everything in m is durable; logs older than the current WAL can go.
	logNum := db.walNum
	next := db.vs.nextFileNum
	last := uint64(db.vs.lastSeq)
	edit := &versionEdit{
		Added:       []addedFile{addedFileFromMeta(0, meta)},
		LogNum:      &logNum,
		NextFileNum: &next,
		LastSeq:     &last,
	}
	if _, err := db.vs.apply(edit); err != nil {
		return err
	}
	if err := db.vs.logEdit(edit); err != nil {
		return err
	}
	db.imm = db.imm[1:]
	db.m.flushes.Inc()
	db.m.bytesFlushed.Add(meta.size)
	db.m.flushDur.ObserveDuration(db.plat.Now() - flushStart)
	db.m.trace.EmitSpan("lsm.flush", fmt.Sprintf("table=%d bytes=%d", num, meta.size), flushStart)
	db.deleteObsoleteLocked()
	db.plat.Signal()
	return nil
}

// buildTable writes a memtable out as an SSTable with the pre-allocated
// file number. Called without the lock.
func (db *DB) buildTable(m *memtable, num uint64) (tableMeta, error) {
	f, err := db.fs.Create(tableFileName(db.dir, num))
	if err != nil {
		return tableMeta{}, err
	}
	w := newTableWriter(f, &db.opts, num, &db.m)
	it := m.iterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		w.add(it.IKey(), it.Value())
	}
	meta, err := w.finish()
	if err != nil {
		f.Close()
		db.fs.Remove(tableFileName(db.dir, num))
		return tableMeta{}, err
	}
	if err := f.Close(); err != nil {
		db.fs.Remove(tableFileName(db.dir, num))
		return tableMeta{}, err
	}
	return meta, nil
}

// Get returns the newest value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	return db.getAtSeq(key, maxSeq)
}

// getAtSeq returns the newest value for key visible at snapshot seq
// (maxSeq = latest).
func (db *DB) getAtSeq(key []byte, seq seqNum) ([]byte, error) {
	db.plat.Lock()
	if db.closed {
		db.plat.Unlock()
		return nil, ErrClosed
	}
	db.m.gets.Inc()
	if seq > db.vs.lastSeq {
		seq = db.vs.lastSeq
	}
	mem := db.mem
	imms := append([]*memtable(nil), db.imm...)
	ver := db.refCurrentLocked()
	db.plat.Unlock()

	defer func() {
		db.plat.Lock()
		db.unrefVersion(ver)
		db.plat.Unlock()
	}()

	if v, found, deleted := mem.get(key, seq); found {
		if deleted {
			return nil, ErrNotFound
		}
		return v, nil
	}
	for i := len(imms) - 1; i >= 0; i-- {
		if v, found, deleted := imms[i].get(key, seq); found {
			if deleted {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	for _, fm := range ver.filesForKey(key) {
		t, err := db.getTable(fm.num)
		if err != nil {
			return nil, err
		}
		v, found, deleted, err := t.get(key, seq)
		if err != nil {
			return nil, err
		}
		if found {
			if deleted {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key has a live value.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// refCurrentLocked pins the current version for a reader.
func (db *DB) refCurrentLocked() *version {
	v := db.vs.current
	v.refs++
	db.pinned[v] = true
	return v
}

// unrefVersion releases a reader's pin. Called with the lock held.
func (db *DB) unrefVersion(v *version) {
	v.refs--
	if v.refs <= 0 {
		delete(db.pinned, v)
		db.deleteObsoleteLocked()
	}
}

// getTable returns (opening if needed) the reader for a table file.
func (db *DB) getTable(num uint64) (*tableReader, error) {
	db.plat.Lock()
	if t, ok := db.tables[num]; ok {
		db.plat.Unlock()
		return t, nil
	}
	db.plat.Unlock()
	f, err := db.fs.Open(tableFileName(db.dir, num))
	if err != nil {
		return nil, err
	}
	t, err := openTable(f, &db.opts, num, db.cache)
	if err != nil {
		f.Close()
		return nil, err
	}
	db.plat.Lock()
	if existing, ok := db.tables[num]; ok {
		db.plat.Unlock()
		t.close()
		return existing, nil
	}
	db.tables[num] = t
	db.plat.Unlock()
	return t, nil
}

// deleteObsoleteLocked removes table files no longer referenced by the
// current version or any pinned version, and WAL files older than the
// current log. Called with the lock held.
func (db *DB) deleteObsoleteLocked() {
	live := db.vs.liveFileNums()
	for num := range db.pendingOutputs {
		live[num] = true
	}
	for v := range db.pinned {
		for _, lvl := range v.levels {
			for _, f := range lvl {
				live[f.num] = true
			}
		}
	}
	names, err := db.fs.List(db.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".sst"):
			num, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
			if err != nil || live[num] {
				continue
			}
			if t, ok := db.tables[num]; ok {
				t.close()
				delete(db.tables, num)
			}
			if db.cache != nil {
				db.cache.evictFile(num)
			}
			db.fs.Remove(db.dir + "/" + name)
		case strings.HasSuffix(name, ".log"):
			num, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
			if err != nil || num >= db.vs.logNum || num == db.walNum {
				continue
			}
			db.fs.Remove(db.dir + "/" + name)
		}
	}
}

// Flush forces all buffered writes to SSTables, blocking until every
// memtable is on disk. It is the engine half of LSMIO's write barrier.
func (db *DB) Flush() error {
	db.plat.Lock()
	defer db.plat.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.mem.empty() {
		if err := db.rotateMemtable(); err != nil {
			return err
		}
	}
	if db.opts.AsyncFlush {
		db.maybeScheduleFlush()
		for len(db.imm) > 0 && db.bgErr == nil {
			db.plat.WaitCond()
		}
		return db.bgErr
	}
	return db.flushAllLocked()
}

// CompactAll flushes and then fully compacts the database into a single
// level, waiting for completion. Used by tests and the ablation benches.
// It runs exclusively: background workers are fenced off (and drained)
// first, so the manual walk owns every level.
func (db *DB) CompactAll() error {
	if err := db.Flush(); err != nil {
		return err
	}
	db.plat.Lock()
	defer db.plat.Unlock()
	for db.manualCompaction {
		db.plat.WaitCond()
	}
	db.manualCompaction = true
	for db.compactionsInFlight > 0 {
		db.plat.WaitCond()
	}
	err := db.compactEverythingLocked()
	db.manualCompaction = false
	db.plat.Signal()
	db.maybeScheduleCompaction()
	return err
}

// WaitBackground blocks until all background work has settled: no flush
// or compaction is running and nothing more is schedulable. It returns
// the background error, if any. Benchmarks use it to charge the full
// drain to the measured interval.
func (db *DB) WaitBackground() error {
	db.plat.Lock()
	defer db.plat.Unlock()
	for db.bgErr == nil && !db.closed &&
		(db.flushing || db.compactionsInFlight > 0 || db.manualCompaction ||
			len(db.imm) > 0 || db.needsCompactionLocked()) {
		if db.opts.AsyncFlush {
			db.maybeScheduleFlush()
		}
		db.maybeScheduleCompaction()
		db.plat.WaitCond()
	}
	return db.bgErr
}

// NewIterator returns an iterator over a consistent snapshot of the DB.
func (db *DB) NewIterator() (*Iterator, error) {
	return db.NewRangeIterator(nil, nil)
}

// NewRangeIterator returns an iterator restricted to user keys in
// [start, limit) (nil = unbounded). Tables whose key ranges fall outside
// the bounds are never opened, so a narrow scan of a large database
// touches only the relevant files.
func (db *DB) NewRangeIterator(start, limit []byte) (*Iterator, error) {
	db.plat.Lock()
	if db.closed {
		db.plat.Unlock()
		return nil, ErrClosed
	}
	seq := db.vs.lastSeq
	children := []internalIterator{db.mem.iterator()}
	for i := len(db.imm) - 1; i >= 0; i-- {
		children = append(children, db.imm[i].iterator())
	}
	ver := db.refCurrentLocked()
	var hi []byte
	if limit != nil {
		hi = limit // inclusive test below errs toward inclusion; fine
	}
	var fileNums []uint64
	for _, lvl := range ver.levels {
		for _, f := range lvl {
			if f.overlaps(start, hi) {
				fileNums = append(fileNums, f.num)
			}
		}
	}
	db.plat.Unlock()

	for _, num := range fileNums {
		t, err := db.getTable(num)
		if err != nil {
			db.plat.Lock()
			db.unrefVersion(ver)
			db.plat.Unlock()
			return nil, err
		}
		children = append(children, t.iterator())
	}
	return &Iterator{
		merge: newMergingIterator(children),
		seq:   seq,
		db:    db,
		ver:   ver,
		lower: append([]byte(nil), start...),
		upper: append([]byte(nil), limit...),
	}, nil
}

// Stats returns a snapshot of the engine counters — a legacy view
// assembled from the `lsm.*` instruments in the obs registry.
func (db *DB) Stats() Stats {
	m := &db.m
	return Stats{
		Puts:            m.puts.Load(),
		Deletes:         m.deletes.Load(),
		Gets:            m.gets.Load(),
		Flushes:         m.flushes.Load(),
		Compactions:     m.compactions.Load(),
		BytesFlushed:    m.bytesFlushed.Load(),
		BytesCompacted:  m.bytesCompacted.Load(),
		WALBytes:        m.walBytes.Load(),
		WALSyncs:        m.walSyncs.Load(),
		WALGroupCommits: m.walGroupCommits.Load(),
		StallWaits:      m.stallWaits.Load(),
		StallMicros:     m.stallUS.Load(),
		SlowdownWaits:   m.slowdownWaits.Load(),
		SlowdownMicros:  m.slowdownUS.Load(),
		Subcompactions:  m.subcompactions.Load(),
		CacheHits:       m.cacheHits.Load(),
		CacheMisses:     m.cacheMisses.Load(),
	}
}

// Obs returns the registry backing the engine's instruments. When
// Options.Obs injected a shared registry (the Manager does this), the
// same registry also carries the caller's other subsystems.
func (db *DB) Obs() *obs.Registry { return db.reg }

// ResetStats zeroes every `lsm.*` instrument, starting a fresh
// measurement window mid-run. Other subsystems sharing the registry are
// untouched.
func (db *DB) ResetStats() { db.reg.ResetPrefix("lsm.") }

// NumTableFiles reports the number of live SSTables per level.
func (db *DB) NumTableFiles() [numLevels]int {
	db.plat.Lock()
	defer db.plat.Unlock()
	var out [numLevels]int
	for l, files := range db.vs.current.levels {
		out[l] = len(files)
	}
	return out
}

// Close waits for background work and releases all files. With the WAL
// disabled, unflushed writes are lost unless Flush was called first — the
// contract the paper's checkpoint barrier satisfies.
func (db *DB) Close() error {
	db.plat.Lock()
	if db.closed {
		db.plat.Unlock()
		return ErrClosed
	}
	for db.flushing || db.compactionsInFlight > 0 || db.manualCompaction ||
		db.logging || len(db.writeQ) > 0 {
		db.plat.WaitCond()
	}
	db.closed = true
	for _, t := range db.tables {
		t.close()
	}
	db.tables = nil
	var err error
	if db.walFile != nil {
		err = db.walFile.Close()
	}
	if e := db.vs.close(); err == nil {
		err = e
	}
	db.plat.Unlock()
	return err
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }
