package lsm

import (
	"container/list"
	"sync"

	"lsmio/internal/obs"
)

// blockCacheShards is the production shard count. Restore reads fan out
// over a bounded worker pool (ckpt parallel restore), so the cache is
// sharded by (fileNum, offset) hash — each shard owns its own mutex and
// LRU list, keeping concurrent readers off one global lock.
const blockCacheShards = 16

// blockCache is a size-bounded sharded LRU over decoded blocks, shared
// by all the tables of one DB. The paper's configuration disables it for
// checkpoint data; the default configuration enables it, and the
// ablation benchmarks compare the two. Hit/miss counts go straight to
// the DB's obs counters (atomic, shared across shards).
type blockCache struct {
	shards       []cacheShard
	hits, misses *obs.Counter
}

// cacheShard is one independently-locked LRU holding its slice of the
// total capacity. Eviction is per-shard: an approximation of global LRU
// that trades exact recency order for lock independence.
type cacheShard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recent
	items    map[cacheKey]*list.Element
}

type cacheKey struct {
	fileNum uint64
	offset  int64
}

type cacheEntry struct {
	key   cacheKey
	block *block
	size  int64
}

func newBlockCache(capacity int64, hits, misses *obs.Counter) *blockCache {
	return newBlockCacheShards(capacity, blockCacheShards, hits, misses)
}

// newBlockCacheShards builds a cache with an explicit shard count
// (tests use one shard for deterministic LRU order).
func newBlockCacheShards(capacity int64, n int, hits, misses *obs.Counter) *blockCache {
	if n < 1 {
		n = 1
	}
	per := capacity / int64(n)
	if per < 1 {
		per = 1
	}
	c := &blockCache{
		shards: make([]cacheShard, n),
		hits:   hits,
		misses: misses,
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: per,
			order:    list.New(),
			items:    make(map[cacheKey]*list.Element),
		}
	}
	return c
}

// shard maps a block key onto its shard by a mixed hash of file number
// and block offset.
func (c *blockCache) shard(fileNum uint64, offset int64) *cacheShard {
	h := (fileNum+1)*0x9e3779b97f4a7c15 + uint64(offset)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return &c.shards[h%uint64(len(c.shards))]
}

func (c *blockCache) get(fileNum uint64, offset int64) (*block, bool) {
	s := c.shard(fileNum, offset)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[cacheKey{fileNum, offset}]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

func (c *blockCache) put(fileNum uint64, offset int64, b *block, size int64) {
	s := c.shard(fileNum, offset)
	s.mu.Lock()
	defer s.mu.Unlock()
	key := cacheKey{fileNum, offset}
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		return
	}
	el := s.order.PushFront(&cacheEntry{key: key, block: b, size: size})
	s.items[key] = el
	s.used += size
	for s.used > s.capacity && s.order.Len() > 1 {
		oldest := s.order.Back()
		ent := oldest.Value.(*cacheEntry)
		s.order.Remove(oldest)
		delete(s.items, ent.key)
		s.used -= ent.size
	}
}

// evictFile drops all cached blocks of a deleted table from every shard.
func (c *blockCache) evictFile(fileNum uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; {
			next := el.Next()
			ent := el.Value.(*cacheEntry)
			if ent.key.fileNum == fileNum {
				s.order.Remove(el)
				delete(s.items, ent.key)
				s.used -= ent.size
			}
			el = next
		}
		s.mu.Unlock()
	}
}
