package lsm

import (
	"container/list"
	"sync"

	"lsmio/internal/obs"
)

// blockCache is a size-bounded LRU over decoded blocks, shared by all the
// tables of one DB. The paper's configuration disables it for checkpoint
// data; the default configuration enables it, and the ablation benchmarks
// compare the two. Hit/miss counts go straight to the DB's obs counters.
type blockCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recent
	items    map[cacheKey]*list.Element

	hits, misses *obs.Counter
}

type cacheKey struct {
	fileNum uint64
	offset  int64
}

type cacheEntry struct {
	key   cacheKey
	block *block
	size  int64
}

func newBlockCache(capacity int64, hits, misses *obs.Counter) *blockCache {
	return &blockCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[cacheKey]*list.Element),
		hits:     hits,
		misses:   misses,
	}
}

func (c *blockCache) get(fileNum uint64, offset int64) (*block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{fileNum, offset}]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

func (c *blockCache) put(fileNum uint64, offset int64, b *block, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{fileNum, offset}
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, block: b, size: size})
	c.items[key] = el
	c.used += size
	for c.used > c.capacity && c.order.Len() > 1 {
		oldest := c.order.Back()
		ent := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.items, ent.key)
		c.used -= ent.size
	}
}

// evictFile drops all cached blocks of a deleted table.
func (c *blockCache) evictFile(fileNum uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.fileNum == fileNum {
			c.order.Remove(el)
			delete(c.items, ent.key)
			c.used -= ent.size
		}
		el = next
	}
}

