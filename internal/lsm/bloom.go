package lsm

// Bloom filter, the LevelDB construction: k probes derived from a single
// 32-bit hash by delta rotation (Kirsch–Mitzenmacher double hashing).

// bloomHash is LevelDB's murmur-flavoured byte hash.
func bloomHash(b []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(b))*m
	for ; len(b) >= 4; b = b[4:] {
		h += uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		h *= m
		h ^= h >> 16
	}
	switch len(b) {
	case 3:
		h += uint32(b[2]) << 16
		fallthrough
	case 2:
		h += uint32(b[1]) << 8
		fallthrough
	case 1:
		h += uint32(b[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// buildBloom creates a filter over the given keys with bitsPerKey bits per
// key. The last byte stores the probe count.
func buildBloom(keys [][]byte, bitsPerKey int) []byte {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := uint8(float64(bitsPerKey) * 69 / 100) // bitsPerKey * ln(2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(keys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	filter := make([]byte, nBytes+1)
	filter[nBytes] = k
	for _, key := range keys {
		h := bloomHash(key)
		delta := h>>17 | h<<15
		for j := uint8(0); j < k; j++ {
			pos := h % uint32(bits)
			filter[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return filter
}

// bloomMayContain reports whether key may be in the set the filter was
// built over. False means definitely absent.
func bloomMayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true // degenerate filter: treat as match-all
	}
	nBytes := len(filter) - 1
	bits := uint32(nBytes * 8)
	k := filter[nBytes]
	if k > 30 {
		return true // reserved for future encodings
	}
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for j := uint8(0); j < k; j++ {
		pos := h % bits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
