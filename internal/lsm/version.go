package lsm

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"lsmio/internal/vfs"
)

const numLevels = 7

// fileMeta describes one live table file.
type fileMeta struct {
	num      uint64
	size     int64
	smallest internalKey
	largest  internalKey
}

// overlaps reports whether the file's key range intersects [lo, hi]
// (user-key bounds; nil means unbounded).
func (f *fileMeta) overlaps(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(f.smallest.userKey(), hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(f.largest.userKey(), lo) < 0 {
		return false
	}
	return true
}

// version is an immutable snapshot of the table-file tree. Level 0 files
// may overlap and are ordered newest first; deeper levels are sorted by
// smallest key and disjoint.
type version struct {
	levels [numLevels][]*fileMeta
	refs   int
}

func (v *version) clone() *version {
	nv := &version{}
	for l := range v.levels {
		nv.levels[l] = append([]*fileMeta(nil), v.levels[l]...)
	}
	return nv
}

// numFiles returns the total number of table files.
func (v *version) numFiles() int {
	n := 0
	for _, lvl := range v.levels {
		n += len(lvl)
	}
	return n
}

// levelBytes returns the cumulative file size of a level.
func (v *version) levelBytes(level int) int64 {
	var n int64
	for _, f := range v.levels[level] {
		n += f.size
	}
	return n
}

// filesForKey returns the tables possibly containing userKey, newest first.
func (v *version) filesForKey(userKey []byte) []*fileMeta {
	var out []*fileMeta
	for _, f := range v.levels[0] {
		if f.overlaps(userKey, userKey) {
			out = append(out, f)
		}
	}
	for l := 1; l < numLevels; l++ {
		files := v.levels[l]
		i := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(files[i].largest.userKey(), userKey) >= 0
		})
		if i < len(files) && files[i].overlaps(userKey, userKey) {
			out = append(out, files[i])
		}
	}
	return out
}

// overlapping returns all files on a level intersecting [lo, hi].
func (v *version) overlapping(level int, lo, hi []byte) []*fileMeta {
	var out []*fileMeta
	for _, f := range v.levels[level] {
		if f.overlaps(lo, hi) {
			out = append(out, f)
		}
	}
	return out
}

// versionEdit is one manifest record: the delta between two versions.
// It is stored as JSON inside WAL-framed manifest records.
type versionEdit struct {
	Comparator  string        `json:"comparator,omitempty"`
	LogNum      *uint64       `json:"log_num,omitempty"`
	NextFileNum *uint64       `json:"next_file_num,omitempty"`
	LastSeq     *uint64       `json:"last_seq,omitempty"`
	Added       []addedFile   `json:"added,omitempty"`
	Deleted     []deletedFile `json:"deleted,omitempty"`
}

type addedFile struct {
	Level    int    `json:"level"`
	Num      uint64 `json:"num"`
	Size     int64  `json:"size"`
	Smallest string `json:"smallest"` // hex internal key
	Largest  string `json:"largest"`
}

type deletedFile struct {
	Level int    `json:"level"`
	Num   uint64 `json:"num"`
}

// versionSet owns the current version, the manifest, and the file-number
// and sequence counters. All mutation happens with the DB lock held.
type versionSet struct {
	fs           vfs.FS
	dir          string
	current      *version
	manifest     *walWriter
	manifestFile vfs.File

	nextFileNum uint64
	logNum      uint64 // WAL file in use; older logs are obsolete
	lastSeq     seqNum

	// compactPointer remembers where the last size compaction stopped on
	// each level, for round-robin file selection.
	compactPointer [numLevels]internalKey

	// claims tracks the in-progress input sets of running compactions, so
	// the scheduler can admit only disjoint work (LevelDB keeps the
	// analogous state in Compaction/compact_pointer_; with one background
	// job the set never holds more than one entry).
	claims []*compactionClaim
}

// compactionClaim is one running compaction's reservation: the table
// files it consumes and the user-key span of its inputs+overlaps on the
// (input, output) level pair. While claimed, no other compaction may use
// any of the files, or overlap the span on either affected level — file
// disjointness keeps version edits exact, span disjointness keeps output
// key ranges on the shared output level non-overlapping.
type compactionClaim struct {
	level  int // input level; outputs land on level+1
	files  map[uint64]bool
	lo, hi []byte // inclusive user-key span of all claimed files
}

// touchesLevel reports whether the claim reads or writes the level.
func (c *compactionClaim) touchesLevel(level int) bool {
	return c.level == level || c.level+1 == level
}

// claimCompaction reserves files for a compaction at level. Caller must
// hold the DB lock and have verified admissibility first.
func (vs *versionSet) claimCompaction(level int, files []*fileMeta) *compactionClaim {
	lo, hi := keyRange(files)
	c := &compactionClaim{
		level: level,
		files: make(map[uint64]bool, len(files)),
		lo:    append([]byte(nil), lo...),
		hi:    append([]byte(nil), hi...),
	}
	for _, f := range files {
		c.files[f.num] = true
	}
	vs.claims = append(vs.claims, c)
	return c
}

// releaseCompaction drops a reservation (on completion or failure).
func (vs *versionSet) releaseCompaction(c *compactionClaim) {
	for i, o := range vs.claims {
		if o == c {
			vs.claims = append(vs.claims[:i], vs.claims[i+1:]...)
			return
		}
	}
}

// fileClaimed reports whether any running compaction uses table num.
func (vs *versionSet) fileClaimed(num uint64) bool {
	for _, c := range vs.claims {
		if c.files[num] {
			return true
		}
	}
	return false
}

// rangeClaimed reports whether [lo, hi] intersects the span of a running
// compaction that touches level.
func (vs *versionSet) rangeClaimed(level int, lo, hi []byte) bool {
	for _, c := range vs.claims {
		if !c.touchesLevel(level) {
			continue
		}
		if hi != nil && c.lo != nil && bytes.Compare(hi, c.lo) < 0 {
			continue
		}
		if lo != nil && c.hi != nil && bytes.Compare(lo, c.hi) > 0 {
			continue
		}
		return true
	}
	return false
}

func fileName(dir, suffix string, num uint64) string {
	return fmt.Sprintf("%s/%06d.%s", dir, num, suffix)
}

func tableFileName(dir string, num uint64) string { return fileName(dir, "sst", num) }
func logFileName(dir string, num uint64) string   { return fileName(dir, "log", num) }
func manifestFileName(dir string, num uint64) string {
	return fmt.Sprintf("%s/MANIFEST-%06d", dir, num)
}
func currentFileName(dir string) string { return dir + "/CURRENT" }

func newVersionSet(fs vfs.FS, dir string) *versionSet {
	return &versionSet{
		fs:          fs,
		dir:         dir,
		current:     &version{refs: 1},
		nextFileNum: 2, // 1 is reserved for the first manifest
	}
}

// newFileNum allocates a fresh file number.
func (vs *versionSet) newFileNum() uint64 {
	n := vs.nextFileNum
	vs.nextFileNum++
	return n
}

// apply produces the version after edit and makes it current. The caller
// then persists the edit with logEdit.
func (vs *versionSet) apply(edit *versionEdit) (*version, error) {
	nv := vs.current.clone()
	for _, d := range edit.Deleted {
		files := nv.levels[d.Level]
		kept := files[:0]
		for _, f := range files {
			if f.num != d.Num {
				kept = append(kept, f)
			}
		}
		nv.levels[d.Level] = kept
	}
	for _, a := range edit.Added {
		sm, err := hex.DecodeString(a.Smallest)
		if err != nil {
			return nil, fmt.Errorf("lsm: manifest: bad smallest key: %w", err)
		}
		lg, err := hex.DecodeString(a.Largest)
		if err != nil {
			return nil, fmt.Errorf("lsm: manifest: bad largest key: %w", err)
		}
		fm := &fileMeta{num: a.Num, size: a.Size, smallest: sm, largest: lg}
		if a.Level == 0 {
			// Newest first: new files prepend.
			nv.levels[0] = append([]*fileMeta{fm}, nv.levels[0]...)
		} else {
			files := append(nv.levels[a.Level], fm)
			sort.Slice(files, func(i, j int) bool {
				return compareIKeys(files[i].smallest, files[j].smallest) < 0
			})
			nv.levels[a.Level] = files
		}
	}
	if edit.LogNum != nil {
		vs.logNum = *edit.LogNum
	}
	if edit.NextFileNum != nil && *edit.NextFileNum > vs.nextFileNum {
		vs.nextFileNum = *edit.NextFileNum
	}
	if edit.LastSeq != nil && seqNum(*edit.LastSeq) > vs.lastSeq {
		vs.lastSeq = seqNum(*edit.LastSeq)
	}
	vs.current = nv
	nv.refs = 1 // the set's own reference
	return nv, nil
}

// logEdit persists an edit to the manifest.
func (vs *versionSet) logEdit(edit *versionEdit) error {
	data, err := json.Marshal(edit)
	if err != nil {
		return err
	}
	if err := vs.manifest.addRecord(data); err != nil {
		return err
	}
	return vs.manifest.sync()
}

// createNew initializes a brand-new database directory.
func (vs *versionSet) createNew() error {
	if err := vs.fs.MkdirAll(vs.dir); err != nil {
		return err
	}
	manifestNum := uint64(1)
	f, err := vs.fs.Create(manifestFileName(vs.dir, manifestNum))
	if err != nil {
		return err
	}
	vs.manifestFile = f
	vs.manifest = newWALWriter(f)
	next := vs.nextFileNum
	edit := &versionEdit{
		Comparator:  "lsmio.bytewise",
		NextFileNum: &next,
	}
	if err := vs.logEdit(edit); err != nil {
		return err
	}
	return vs.setCurrent(manifestNum)
}

// setCurrent atomically points CURRENT at a manifest.
func (vs *versionSet) setCurrent(manifestNum uint64) error {
	tmp := vs.dir + "/CURRENT.tmp"
	f, err := vs.fs.Create(tmp)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("MANIFEST-%06d\n", manifestNum)
	if _, err := f.Write([]byte(name)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return vs.fs.Rename(tmp, currentFileName(vs.dir))
}

// recover loads the version state from CURRENT + manifest. It returns the
// WAL number in effect so the DB can replay newer logs.
func (vs *versionSet) recover() (logNum uint64, err error) {
	cf, err := vs.fs.Open(currentFileName(vs.dir))
	if err != nil {
		return 0, err
	}
	nameBytes, err := vfs.ReadAll(cf)
	cf.Close()
	if err != nil {
		return 0, err
	}
	manifestName := strings.TrimSpace(string(nameBytes))
	if manifestName == "" {
		return 0, fmt.Errorf("lsm: CURRENT is empty")
	}
	mf, err := vs.fs.Open(vs.dir + "/" + manifestName)
	if err != nil {
		return 0, err
	}
	reader, err := newWALReader(mf)
	if err != nil {
		mf.Close()
		return 0, err
	}
	for {
		rec, err := reader.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			mf.Close()
			return 0, err
		}
		var edit versionEdit
		if err := json.Unmarshal(rec, &edit); err != nil {
			mf.Close()
			return 0, fmt.Errorf("lsm: manifest: %w", err)
		}
		if _, err := vs.apply(&edit); err != nil {
			mf.Close()
			return 0, err
		}
	}
	if err := mf.Close(); err != nil {
		return 0, err
	}
	// Continue appending to a fresh manifest that snapshots current state,
	// so old manifests never grow unboundedly across reopens.
	manifestNum := vs.newFileNum()
	f, err := vs.fs.Create(manifestFileName(vs.dir, manifestNum))
	if err != nil {
		return 0, err
	}
	vs.manifestFile = f
	vs.manifest = newWALWriter(f)
	snap := vs.snapshotEdit()
	if err := vs.logEdit(snap); err != nil {
		return 0, err
	}
	if err := vs.setCurrent(manifestNum); err != nil {
		return 0, err
	}
	return vs.logNum, nil
}

// snapshotEdit encodes the entire current state as a single edit.
func (vs *versionSet) snapshotEdit() *versionEdit {
	next := vs.nextFileNum
	last := uint64(vs.lastSeq)
	log := vs.logNum
	edit := &versionEdit{
		Comparator:  "lsmio.bytewise",
		NextFileNum: &next,
		LastSeq:     &last,
		LogNum:      &log,
	}
	for l := 0; l < numLevels; l++ {
		// Preserve L0's newest-first order by appending in reverse so that
		// replay (which prepends) reconstructs it.
		files := vs.current.levels[l]
		for i := len(files) - 1; i >= 0; i-- {
			f := files[i]
			edit.Added = append(edit.Added, addedFile{
				Level:    l,
				Num:      f.num,
				Size:     f.size,
				Smallest: hex.EncodeToString(f.smallest),
				Largest:  hex.EncodeToString(f.largest),
			})
		}
	}
	return edit
}

// addedFileFromMeta is a helper for building edits.
func addedFileFromMeta(level int, m tableMeta) addedFile {
	return addedFile{
		Level:    level,
		Num:      m.fileNum,
		Size:     m.size,
		Smallest: hex.EncodeToString(m.smallest),
		Largest:  hex.EncodeToString(m.largest),
	}
}

// liveFileNums returns the set of table files referenced by the current
// version.
func (vs *versionSet) liveFileNums() map[uint64]bool {
	live := make(map[uint64]bool)
	for _, lvl := range vs.current.levels {
		for _, f := range lvl {
			live[f.num] = true
		}
	}
	return live
}

// close releases the manifest file.
func (vs *versionSet) close() error {
	if vs.manifestFile != nil {
		return vs.manifestFile.Close()
	}
	return nil
}
