package lsm

import (
	"fmt"
	"sync"
	"time"

	"lsmio/internal/sim"
)

// Platform abstracts the concurrency substrate so the same engine code runs
// on real goroutines (production) and on cooperative simulation processes
// (the benchmark cluster). It provides a database-wide lock, one condition
// variable, and a way to start background work (flushes, compactions).
//
// The locking protocol is LevelDB's: the engine holds the lock while
// mutating in-memory state and always releases it around file I/O.
type Platform interface {
	// Go starts fn as a background task.
	Go(name string, fn func())
	// Lock and Unlock guard the engine's shared state.
	Lock()
	Unlock()
	// WaitCond atomically releases the lock, blocks until Signal, and
	// reacquires the lock (sync.Cond.Wait semantics).
	WaitCond()
	// Signal wakes all WaitCond callers. May be called with or without
	// the lock held.
	Signal()
	// Compute charges d of CPU time to the caller. On the real platform
	// this is a no-op (real CPU time is really spent); on the simulated
	// platform it advances the calling process's virtual clock.
	Compute(d time.Duration)
	// Now returns a monotonic reading of the platform clock (wall time on
	// the real platform, virtual time on the simulator). The engine uses
	// it to meter write-stall and slowdown durations.
	Now() time.Duration
	// Sleep blocks the caller for d without consuming CPU. Must be called
	// WITHOUT the engine lock held; the write path uses it for slowdown
	// rate-limiting ahead of the hard stall.
	Sleep(d time.Duration)
	// NewCond returns a fresh lock + condition pair independent of the
	// database-wide lock. The table-build pipeline uses one per output
	// table so encoder/writer handoff never contends with (or deadlocks
	// against) the engine lock.
	NewCond() Cond
}

// Cond is an auxiliary mutual-exclusion lock with an attached condition
// variable (sync.Cond semantics: Wait atomically releases the lock,
// blocks until Broadcast, and reacquires it). Instances are independent
// of the Platform's engine lock; the pipeline's ordering rule is that a
// task never acquires the engine lock while holding a Cond.
type Cond interface {
	Lock()
	Unlock()
	Wait()
	Broadcast()
}

// goPlatform is the production Platform: goroutines and sync primitives.
type goPlatform struct {
	mu    sync.Mutex
	cond  *sync.Cond
	start time.Time
}

// GoPlatform returns a Platform backed by real goroutines. Each call
// returns an independent instance (one per DB).
func GoPlatform() Platform {
	p := &goPlatform{start: time.Now()}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *goPlatform) Go(name string, fn func()) { go fn() }
func (p *goPlatform) Lock()                     { p.mu.Lock() }
func (p *goPlatform) Unlock()                   { p.mu.Unlock() }
func (p *goPlatform) WaitCond()                 { p.cond.Wait() }
func (p *goPlatform) Signal()                   { p.cond.Broadcast() }
func (p *goPlatform) Compute(time.Duration)     {}
func (p *goPlatform) Now() time.Duration        { return time.Since(p.start) }
func (p *goPlatform) Sleep(d time.Duration)     { time.Sleep(d) }

func (p *goPlatform) NewCond() Cond {
	c := &goCond{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// goCond is the production Cond: a plain mutex + condition variable.
type goCond struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func (c *goCond) Lock()      { c.mu.Lock() }
func (c *goCond) Unlock()    { c.mu.Unlock() }
func (c *goCond) Wait()      { c.cond.Wait() }
func (c *goCond) Broadcast() { c.cond.Broadcast() }

// simPlatform runs the engine inside a discrete-event simulation: background
// tasks are simulation processes, the lock is a cooperative mutex, and
// Compute advances virtual time.
type simPlatform struct {
	k      *sim.Kernel
	locked bool
	lockW  *sim.Signal // waiters for the lock
	cond   *sim.Signal // the engine condition variable
	spawns int         // uniquifies worker names for deterministic traces
}

// SimPlatform returns a Platform running on kernel k. All engine calls must
// come from simulation processes of k.
func SimPlatform(k *sim.Kernel) Platform {
	return &simPlatform{k: k, lockW: sim.NewSignal(k), cond: sim.NewSignal(k)}
}

func (p *simPlatform) cur() *sim.Proc {
	c := p.k.Current()
	if c == nil {
		panic("lsm: sim platform used outside a simulation process")
	}
	return c
}

// Go spawns a background worker as a simulation process. With multiple
// background jobs the same logical task name can be live several times
// over, so each spawn gets a unique suffix: the kernel's (time, sequence)
// event order — and with it the whole trajectory — stays deterministic
// and the deadlock diagnostics stay readable.
func (p *simPlatform) Go(name string, fn func()) {
	p.spawns++
	p.k.Spawn(fmt.Sprintf("%s#%d", name, p.spawns), func(*sim.Proc) { fn() })
}

func (p *simPlatform) Lock() {
	c := p.cur()
	for p.locked {
		p.lockW.Wait(c)
	}
	p.locked = true
}

func (p *simPlatform) Unlock() {
	if !p.locked {
		panic("lsm: unlock of unlocked sim platform")
	}
	p.locked = false
	p.lockW.Broadcast()
}

func (p *simPlatform) WaitCond() {
	c := p.cur()
	p.Unlock()
	p.cond.Wait(c)
	p.Lock()
}

func (p *simPlatform) Signal() { p.cond.Broadcast() }

func (p *simPlatform) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	p.cur().Sleep(d)
}

func (p *simPlatform) NewCond() Cond {
	return &simCond{p: p, lockW: sim.NewSignal(p.k), cond: sim.NewSignal(p.k)}
}

// simCond mirrors the simPlatform's cooperative mutex + signal pair for
// an independent lock domain. All methods must be called from simulation
// processes of the same kernel.
type simCond struct {
	p      *simPlatform
	locked bool
	lockW  *sim.Signal
	cond   *sim.Signal
}

func (c *simCond) Lock() {
	cur := c.p.cur()
	for c.locked {
		c.lockW.Wait(cur)
	}
	c.locked = true
}

func (c *simCond) Unlock() {
	if !c.locked {
		panic("lsm: unlock of unlocked sim cond")
	}
	c.locked = false
	c.lockW.Broadcast()
}

func (c *simCond) Wait() {
	cur := c.p.cur()
	if !c.locked {
		panic("lsm: wait on unlocked sim cond")
	}
	c.locked = false
	c.lockW.Broadcast()
	c.cond.Wait(cur)
	for c.locked {
		c.lockW.Wait(cur)
	}
	c.locked = true
}

func (c *simCond) Broadcast() { c.cond.Broadcast() }

func (p *simPlatform) Now() time.Duration { return p.k.Now().Duration() }

func (p *simPlatform) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	p.cur().Sleep(d)
}
