package lsm

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lsmio/internal/vfs"
)

// Repair rebuilds a database whose manifest or CURRENT file was lost or
// corrupted, from the surviving table and log files — the recovery path a
// checkpoint store needs after partial damage to its metadata.
//
// Every readable .sst file is scanned (checksums verified) and re-added
// at level 0, ordered so that higher file numbers (newer data) shadow
// lower ones; salvageable WAL records are replayed into a fresh table.
// Unreadable files are skipped and reported in the summary. On success a
// new MANIFEST and CURRENT are written and the database opens normally.
func Repair(dir string, opts Options) (RepairSummary, error) {
	o := opts.withDefaults()
	if o.FS == nil {
		return RepairSummary{}, fmt.Errorf("lsm: Options.FS is required")
	}
	fs := o.FS
	dir = strings.TrimSuffix(dir, "/")
	var sum RepairSummary

	names, err := fs.List(dir)
	if err != nil {
		return sum, fmt.Errorf("lsm: repair: %w", err)
	}

	// Drop old metadata: it is what we are rebuilding.
	for _, name := range names {
		if name == "CURRENT" || strings.HasPrefix(name, "MANIFEST-") {
			fs.Remove(dir + "/" + name)
		}
	}

	type salvaged struct {
		meta   tableMeta
		maxSeq seqNum
	}
	var tables []salvaged
	var logs []uint64
	maxFileNum := uint64(1)

	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".sst"):
			num, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
			if err != nil {
				continue
			}
			if num > maxFileNum {
				maxFileNum = num
			}
			meta, tableMaxSeq, err := inspectTable(fs, dir, num, &o)
			if err != nil {
				sum.TablesSkipped++
				sum.Problems = append(sum.Problems, fmt.Sprintf("%s: %v", name, err))
				continue
			}
			sum.TablesRecovered++
			sum.EntriesRecovered += meta.entries
			tables = append(tables, salvaged{meta: meta, maxSeq: tableMaxSeq})
		case strings.HasSuffix(name, ".log"):
			num, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
			if err != nil {
				continue
			}
			if num > maxFileNum {
				maxFileNum = num
			}
			logs = append(logs, num)
		}
	}

	// Replay salvageable WAL records into a memtable, newest log last.
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	mem := newMemtable()
	maxSeqSeen := seqNum(0)
	for _, num := range logs {
		entries, lastSeq := salvageLog(fs, dir, num)
		sum.LogRecordsRecovered += entries
		if lastSeq > maxSeqSeen {
			maxSeqSeen = lastSeq
		}
		_ = salvageLogInto(fs, dir, num, mem)
	}

	// The database's sequence must exceed every recovered entry's, so
	// reads see the newest versions (tombstones included) and new writes
	// shadow everything salvaged.
	for _, t := range tables {
		if t.maxSeq > maxSeqSeen {
			maxSeqSeen = t.maxSeq
		}
	}

	vs := newVersionSet(fs, dir)
	vs.nextFileNum = maxFileNum + 1

	// The WAL salvage becomes one more L0 table (the newest).
	if !mem.empty() {
		num := vs.newFileNum()
		f, err := fs.Create(tableFileName(dir, num))
		if err != nil {
			return sum, err
		}
		w := newTableWriter(f, &o, num, nil)
		it := mem.iterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			w.add(it.IKey(), it.Value())
		}
		meta, err := w.finish()
		if err != nil {
			f.Close()
			return sum, err
		}
		f.Close()
		tables = append(tables, salvaged{meta: meta})
		sum.TablesRecovered++
	}

	// Rebuild the manifest: tables at L0, higher file numbers first
	// (newer data shadows older under L0's newest-first semantics).
	sort.Slice(tables, func(i, j int) bool {
		return tables[i].meta.fileNum < tables[j].meta.fileNum
	})
	if err := vs.createNew(); err != nil {
		return sum, err
	}
	next := vs.nextFileNum
	last := uint64(maxSeqSeen)
	logNum := vs.logNum
	edit := &versionEdit{NextFileNum: &next, LastSeq: &last, LogNum: &logNum}
	for _, t := range tables {
		edit.Added = append(edit.Added, addedFileFromMeta(0, t.meta))
	}
	if _, err := vs.apply(edit); err != nil {
		return sum, err
	}
	if err := vs.logEdit(edit); err != nil {
		return sum, err
	}
	if err := vs.close(); err != nil {
		return sum, err
	}
	// Old logs are now fully represented by tables.
	for _, num := range logs {
		fs.Remove(logFileName(dir, num))
	}
	return sum, nil
}

// RepairSummary reports what Repair salvaged.
type RepairSummary struct {
	TablesRecovered     int
	TablesSkipped       int
	EntriesRecovered    int
	LogRecordsRecovered int
	Problems            []string
}

// inspectTable fully scans one table, verifying checksums, and returns
// its metadata plus the highest sequence number it holds.
func inspectTable(fs vfs.FS, dir string, num uint64, opts *Options) (tableMeta, seqNum, error) {
	f, err := fs.Open(tableFileName(dir, num))
	if err != nil {
		return tableMeta{}, 0, err
	}
	defer f.Close()
	t, err := openTable(f, opts, num, nil)
	if err != nil {
		return tableMeta{}, 0, err
	}
	meta := tableMeta{fileNum: num}
	meta.size, _ = f.Size()
	var tableMaxSeq seqNum
	it := t.iterator()
	var prev internalKey
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := it.IKey()
		if prev.valid() && compareIKeys(prev, ik) >= 0 {
			return tableMeta{}, 0, fmt.Errorf("keys out of order")
		}
		if !meta.smallest.valid() {
			meta.smallest = append(internalKey(nil), ik...)
		}
		meta.largest = append(meta.largest[:0], ik...)
		prev = append(prev[:0], ik...)
		if ik.seq() > tableMaxSeq {
			tableMaxSeq = ik.seq()
		}
		meta.entries++
	}
	if err := it.Close(); err != nil {
		return tableMeta{}, 0, err
	}
	if meta.entries == 0 {
		return tableMeta{}, 0, fmt.Errorf("no entries")
	}
	meta.largest = append(internalKey(nil), meta.largest...)
	return meta, tableMaxSeq, nil
}

// salvageLog counts the intact records of a WAL file.
func salvageLog(fs vfs.FS, dir string, num uint64) (records int, lastSeq seqNum) {
	f, err := fs.Open(logFileName(dir, num))
	if err != nil {
		return 0, 0
	}
	defer f.Close()
	r, err := newWALReader(f)
	if err != nil {
		return 0, 0
	}
	for {
		rec, err := r.next()
		if err == io.EOF {
			return records, lastSeq
		}
		if err != nil {
			return records, lastSeq
		}
		b, err := decodeBatch(rec)
		if err != nil {
			return records, lastSeq
		}
		records++
		if end := b.seq() + seqNum(b.Count()); end > lastSeq {
			lastSeq = end
		}
	}
}

// salvageLogInto replays a WAL file's intact prefix into mem.
func salvageLogInto(fs vfs.FS, dir string, num uint64, mem *memtable) error {
	f, err := fs.Open(logFileName(dir, num))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := newWALReader(f)
	if err != nil {
		return err
	}
	for {
		rec, err := r.next()
		if err != nil {
			return nil // EOF or torn tail: keep what we have
		}
		b, err := decodeBatch(rec)
		if err != nil {
			return nil
		}
		_ = b.forEach(func(seq seqNum, kind keyKind, key, value []byte) error {
			mem.add(seq, kind, key, append([]byte(nil), value...))
			return nil
		})
	}
}
