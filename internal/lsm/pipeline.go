package lsm

import (
	"errors"
	"time"
)

// Table-build pipeline: when Options.EncodeWorkers > 0 every output table
// is built by a two-stage pipeline instead of one serial loop. The
// producer (flush or compaction) cuts raw blocks and submits them to a
// bounded job queue; EncodeWorkers encoder tasks compress and checksum
// blocks out of order (this is where the CPU goes — Pome's observation is
// that this stage, run inline, starves the disk); one writer task drains
// finished blocks in submission order and owns the file offset and index
// construction, so the bytes on disk are identical to the serial writer's.
//
// Locking: each pipeline has its own Platform Cond, independent of the
// engine lock. Pipeline tasks never touch the engine lock, and pipeline
// methods are only called either without the engine lock (flush/compaction
// table builds run unlocked) or on the pipeline's own tasks.

// errPipelineAborted poisons a pipeline whose table build was abandoned
// (e.g. the merge iterator failed); tasks drain and exit.
var errPipelineAborted = errors.New("lsm: table pipeline aborted")

type blockKind uint8

const (
	blkData blockKind = iota
	blkFilter
)

// encodeJob is one unit of compute-stage work: a raw data block to
// compress+checksum, or the bloom-filter build (raw nil; the keys come
// from the tableWriter, which stops appending before the job is queued).
type encodeJob struct {
	seq           int
	kind          blockKind
	raw           []byte
	indexKey      internalKey // data blocks: separator key for the index
	allowCompress bool
}

// encodedBlock is the compute stage's output: encoded payload + trailer,
// ready to be appended to the file verbatim.
type encodedBlock struct {
	kind       blockKind
	enc        []byte
	payloadLen int
	indexKey   internalKey
}

// tablePipeline coordinates the encoder pool and the writer task for one
// output table. All fields below c are guarded by c.
type tablePipeline struct {
	w     *tableWriter
	plat  Platform
	m     *dbMetrics
	depth int

	c          Cond
	jobs       []encodeJob
	nextSeq    int // seq assigned to the next submitted job
	ready      map[int]encodedBlock
	writeSeq   int // next seq the writer will emit
	closed     bool
	err        error
	encoders   int
	writerDone bool
}

// newTablePipeline starts the encoder pool and writer task for w.
func newTablePipeline(w *tableWriter, workers int) *tablePipeline {
	depth := w.opts.EncodeQueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	p := &tablePipeline{
		w:        w,
		plat:     w.opts.Platform,
		m:        w.m,
		depth:    depth,
		c:        w.opts.Platform.NewCond(),
		ready:    make(map[int]encodedBlock),
		encoders: workers,
	}
	for i := 0; i < workers; i++ {
		p.plat.Go("lsm-encode", p.encoderLoop)
	}
	p.plat.Go("lsm-tblwrite", p.writerLoop)
	return p
}

// submit queues one job for the compute stage, blocking while the queue
// is at its depth bound. Returns the pipeline error, if any.
func (p *tablePipeline) submit(j encodeJob) error {
	p.c.Lock()
	for p.err == nil && len(p.jobs) >= p.depth {
		p.c.Wait()
	}
	if p.err != nil {
		err := p.err
		p.c.Unlock()
		return err
	}
	j.seq = p.nextSeq
	p.nextSeq++
	p.jobs = append(p.jobs, j)
	p.m.pipeQueueDepth.Observe(int64(len(p.jobs)))
	p.c.Broadcast()
	p.c.Unlock()
	return nil
}

// closeSubmit marks the job stream complete (carrying any producer error)
// so the stages can drain and the writer can emit the table tail.
func (p *tablePipeline) closeSubmit(perr error) {
	p.c.Lock()
	if perr != nil && p.err == nil {
		p.err = perr
	}
	p.closed = true
	p.c.Broadcast()
	p.c.Unlock()
}

// abort poisons the pipeline and blocks until every task has exited, so
// the caller may close and delete the output file underneath it.
func (p *tablePipeline) abort() {
	p.c.Lock()
	if p.err == nil {
		p.err = errPipelineAborted
	}
	p.closed = true
	p.c.Broadcast()
	for !p.writerDone || p.encoders > 0 {
		p.c.Wait()
	}
	p.c.Unlock()
}

// encoderLoop is the compute stage: pop a job, encode it outside the
// pipeline lock (compression, CRC, bloom hashing — and the simulated CPU
// charge), and deliver the result to the reorder buffer.
func (p *tablePipeline) encoderLoop() {
	p.c.Lock()
	for {
		for p.err == nil && len(p.jobs) == 0 && !p.closed {
			p.c.Wait()
		}
		if p.err != nil || len(p.jobs) == 0 {
			break
		}
		job := p.jobs[0]
		p.jobs = p.jobs[1:]
		p.c.Broadcast() // queue space freed: unblock the producer
		p.c.Unlock()

		start := p.plat.Now()
		eb := p.encode(job)
		d := p.plat.Now() - start

		p.c.Lock()
		p.m.pipeBlocks.Inc()
		p.m.pipeEncodeBusyUS.Add(int64(d / time.Microsecond))
		p.m.pipeEncodeDur.ObserveDuration(d)
		p.ready[job.seq] = eb
		p.c.Broadcast()
	}
	p.encoders--
	p.c.Broadcast()
	p.c.Unlock()
}

// encode runs one job's compute work. Called without the pipeline lock.
func (p *tablePipeline) encode(job encodeJob) encodedBlock {
	raw := job.raw
	allowCompress := job.allowCompress
	if job.kind == blkFilter {
		raw = buildBloom(p.w.userKeys, p.w.opts.BitsPerKey)
		allowCompress = false // random bits don't compress
	}
	chargeEncodeCost(p.w.opts, len(raw))
	enc, payloadLen := encodeBlock(p.w.opts, raw, allowCompress)
	return encodedBlock{
		kind:       job.kind,
		enc:        enc,
		payloadLen: payloadLen,
		indexKey:   job.indexKey,
	}
}

// writerLoop is the I/O stage: emit encoded blocks in submission order,
// owning the file offset and index construction, then write the table
// tail (index block, footer) and fsync. In piped mode the writer task is
// the sole owner of w.offset, w.index, the coalescing buffer, and the
// file handle; the producer's own error state (w.err) is never touched
// here, so the two sides share no unsynchronized fields.
func (p *tablePipeline) writerLoop() {
	w := p.w
	var filterHandle blockHandle
	var werr error
	p.c.Lock()
	for p.err == nil {
		eb, ok := p.ready[p.writeSeq]
		if !ok {
			if p.closed && p.writeSeq >= p.nextSeq {
				break // stream complete and fully written
			}
			p.c.Wait()
			continue
		}
		delete(p.ready, p.writeSeq)
		p.writeSeq++
		p.c.Unlock()

		start := p.plat.Now()
		h := blockHandle{offset: w.offset, length: int64(eb.payloadLen)}
		werr = w.writeRaw(eb.enc)
		w.offset += int64(len(eb.enc))
		switch eb.kind {
		case blkData:
			w.index.add(eb.indexKey, encodeHandle(h))
		case blkFilter:
			filterHandle = h
		}
		d := p.plat.Now() - start

		p.c.Lock()
		p.m.pipeWriteBusyUS.Add(int64(d / time.Microsecond))
		p.m.pipeWriteDur.ObserveDuration(d)
		if werr != nil && p.err == nil {
			p.err = werr
		}
	}
	finishTail := p.err == nil
	p.c.Unlock()

	if finishTail {
		start := p.plat.Now()
		err := w.writeTail(filterHandle)
		d := p.plat.Now() - start
		p.c.Lock()
		p.m.pipeWriteBusyUS.Add(int64(d / time.Microsecond))
		p.m.pipeWriteDur.ObserveDuration(d)
		if err != nil && p.err == nil {
			p.err = err
		}
	} else {
		p.c.Lock()
	}
	p.writerDone = true
	p.c.Broadcast()
	p.c.Unlock()
}

// pendingTable is a handle to a table whose tail write and fsync may
// still be in flight; wait blocks until the table is durable (or failed).
// Compactions use it to overlap one output's fsync with the next output's
// encoding; the serial writer resolves it immediately.
type pendingTable struct {
	p    *tablePipeline
	meta tableMeta
	err  error
	done bool
}

// wait blocks until the table is fully written and synced, returning its
// metadata.
func (pt *pendingTable) wait() (tableMeta, error) {
	if pt.done {
		return pt.meta, pt.err
	}
	p := pt.p
	p.c.Lock()
	for !p.writerDone {
		p.c.Wait()
	}
	err := p.err
	p.c.Unlock()
	pt.done = true
	if err != nil {
		pt.err = err
		return tableMeta{}, err
	}
	pt.meta = p.w.meta
	return pt.meta, nil
}

// chargeEncodeCost bills the platform's Compute clock for encoding
// rawBytes of block data. A no-op on the real platform and whenever
// EncodeCostPerMB is unset.
func chargeEncodeCost(opts *Options, rawBytes int) {
	if opts.EncodeCostPerMB <= 0 || opts.Platform == nil || rawBytes <= 0 {
		return
	}
	opts.Platform.Compute(time.Duration(int64(opts.EncodeCostPerMB) * int64(rawBytes) / (1 << 20)))
}
