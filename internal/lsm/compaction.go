package lsm

import (
	"bytes"
)

// Leveled compaction, LevelDB-style: L0 tables (which may overlap) are
// merged with overlapping L1 tables when their count reaches the trigger;
// deeper levels compact one file at a time, round-robin, when their
// cumulative size exceeds the level target. The LSMIO checkpoint
// configuration disables all of this — checkpoints are write-once — but the
// engine implements it fully for general workloads and the ablation
// benchmarks.

// maxBytesForLevel returns the size target of a level.
func (db *DB) maxBytesForLevel(level int) int64 {
	size := db.opts.BaseLevelSize
	for l := 1; l < level; l++ {
		size *= int64(db.opts.LevelSizeMultiplier)
	}
	return size
}

// targetFileSize is the output-table split size for a compaction.
func (db *DB) targetFileSize() int64 {
	s := int64(db.opts.WriteBufferSize) / 2
	if s < 2<<20 {
		s = 2 << 20
	}
	return s
}

// needsCompactionLocked reports whether any level is over its trigger.
func (db *DB) needsCompactionLocked() bool {
	if db.opts.DisableCompaction {
		return false
	}
	v := db.vs.current
	if len(v.levels[0]) >= db.opts.L0CompactionTrigger {
		return true
	}
	for l := 1; l < numLevels-1; l++ {
		if v.levelBytes(l) > db.maxBytesForLevel(l) {
			return true
		}
	}
	return false
}

// maybeScheduleCompaction starts the background compactor when needed.
// Called with the lock held.
func (db *DB) maybeScheduleCompaction() {
	if db.compacting || db.closed || !db.needsCompactionLocked() {
		return
	}
	db.compacting = true
	db.plat.Go("lsm-compact", db.backgroundCompact)
}

func (db *DB) backgroundCompact() {
	db.plat.Lock()
	for db.needsCompactionLocked() && db.bgErr == nil && !db.closed {
		if err := db.compactOnceLocked(); err != nil {
			db.bgErr = err
			break
		}
	}
	db.compacting = false
	db.plat.Signal()
	db.plat.Unlock()
}

// pickCompaction chooses inputs. Called with the lock held.
func (db *DB) pickCompaction() (level int, inputs, overlaps []*fileMeta) {
	v := db.vs.current
	if len(v.levels[0]) >= db.opts.L0CompactionTrigger {
		// Take every L0 file (they may all overlap) plus the L1 files
		// their combined range touches.
		inputs = append(inputs, v.levels[0]...)
		lo, hi := keyRange(inputs)
		overlaps = v.overlapping(1, lo, hi)
		return 0, inputs, overlaps
	}
	for l := 1; l < numLevels-1; l++ {
		if v.levelBytes(l) <= db.maxBytesForLevel(l) {
			continue
		}
		// Round-robin: first file after the last compaction's end point.
		files := v.levels[l]
		var pick *fileMeta
		ptr := db.vs.compactPointer[l]
		for _, f := range files {
			if !ptr.valid() || compareIKeys(f.largest, ptr) > 0 {
				pick = f
				break
			}
		}
		if pick == nil {
			pick = files[0]
		}
		inputs = []*fileMeta{pick}
		lo, hi := keyRange(inputs)
		overlaps = v.overlapping(l+1, lo, hi)
		return l, inputs, overlaps
	}
	return -1, nil, nil
}

// keyRange returns the user-key bounds spanned by files.
func keyRange(files []*fileMeta) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || bytes.Compare(f.smallest.userKey(), lo) < 0 {
			lo = f.smallest.userKey()
		}
		if hi == nil || bytes.Compare(f.largest.userKey(), hi) > 0 {
			hi = f.largest.userKey()
		}
	}
	return lo, hi
}

// compactOnceLocked runs one compaction step. The lock is released around
// the merge I/O.
func (db *DB) compactOnceLocked() error {
	level, inputs, overlaps := db.pickCompaction()
	if level < 0 {
		return nil
	}
	return db.runCompactionLocked(level, inputs, overlaps)
}

// runCompactionLocked merges inputs (level) + overlaps (level+1) into new
// tables at level+1.
func (db *DB) runCompactionLocked(level int, inputs, overlaps []*fileMeta) error {
	outLevel := level + 1
	all := append(append([]*fileMeta(nil), inputs...), overlaps...)
	// Tombstones can be dropped when no deeper level holds data under the
	// compaction's key range.
	lo, hi := keyRange(all)
	dropTombstones := true
	for l := outLevel + 1; l < numLevels; l++ {
		if len(db.vs.current.overlapping(l, lo, hi)) > 0 {
			dropTombstones = false
			break
		}
	}
	smallestSnapshot := db.smallestSnapshotLocked()
	// The number of output tables is unknown up front, so the merge
	// re-takes the lock briefly for each file-number allocation and marks
	// each output pending so the obsolete-file sweep leaves it alone.
	var outNums []uint64
	db.plat.Unlock()
	metas, err := db.mergeTables(level, all, dropTombstones, smallestSnapshot, func() uint64 {
		db.plat.Lock()
		defer db.plat.Unlock()
		n := db.vs.newFileNum()
		db.pendingOutputs[n] = true
		outNums = append(outNums, n)
		return n
	})
	db.plat.Lock()
	defer func() {
		for _, n := range outNums {
			delete(db.pendingOutputs, n)
		}
	}()
	if err != nil {
		return err
	}
	edit := &versionEdit{}
	for _, f := range inputs {
		edit.Deleted = append(edit.Deleted, deletedFile{Level: level, Num: f.num})
	}
	for _, f := range overlaps {
		edit.Deleted = append(edit.Deleted, deletedFile{Level: outLevel, Num: f.num})
	}
	var totalOut int64
	for _, m := range metas {
		edit.Added = append(edit.Added, addedFileFromMeta(outLevel, m))
		totalOut += m.size
	}
	next := db.vs.nextFileNum
	edit.NextFileNum = &next
	if _, err := db.vs.apply(edit); err != nil {
		return err
	}
	if err := db.vs.logEdit(edit); err != nil {
		return err
	}
	if len(all) > 0 {
		db.vs.compactPointer[level] = append(internalKey(nil), all[0].largest...)
	}
	db.stats.Compactions++
	db.stats.BytesCompacted += totalOut
	db.deleteObsoleteLocked()
	db.plat.Signal()
	return nil
}

// mergeTables merge-sorts the input tables into new output tables,
// keeping the newest entry per user key plus any older versions still
// visible to a snapshot at or above smallestSnapshot. Called without the
// lock.
func (db *DB) mergeTables(level int, inputs []*fileMeta, dropTombstones bool, smallestSnapshot seqNum, allocNum func() uint64) ([]tableMeta, error) {
	children := make([]internalIterator, 0, len(inputs))
	for _, fm := range inputs {
		t, err := db.getTable(fm.num)
		if err != nil {
			return nil, err
		}
		children = append(children, t.iterator())
	}
	merge := newMergingIterator(children)
	defer merge.Close()

	var metas []tableMeta
	var w *tableWriter
	var outFile interface{ Close() error }
	var lastUser []byte
	haveLast := false
	// lastSeqForKey is the sequence of the previous kept entry for the
	// current user key (maxSeq when this is the key's first entry).
	lastSeqForKey := maxSeq
	target := db.targetFileSize()

	finishOutput := func() error {
		if w == nil {
			return nil
		}
		meta, err := w.finish()
		if err != nil {
			return err
		}
		if err := outFile.Close(); err != nil {
			return err
		}
		metas = append(metas, meta)
		w = nil
		return nil
	}

	for merge.SeekToFirst(); merge.Valid(); merge.Next() {
		ik := merge.IKey()
		uk := ik.userKey()
		if !haveLast || !bytes.Equal(uk, lastUser) {
			lastUser = append(lastUser[:0], uk...)
			haveLast = true
			lastSeqForKey = maxSeq
		}
		drop := false
		if lastSeqForKey <= smallestSnapshot {
			// A newer version of this key is already visible at the
			// oldest snapshot: nothing can observe this one.
			drop = true
		} else if ik.kind() == kindDelete && dropTombstones && ik.seq() <= smallestSnapshot {
			// Tombstone at the bottom of the tree, invisible to all
			// snapshots once shadowing is resolved.
			drop = true
		}
		lastSeqForKey = ik.seq()
		if drop {
			continue
		}
		if w == nil {
			num := allocNum()
			f, err := db.fs.Create(tableFileName(db.dir, num))
			if err != nil {
				return nil, err
			}
			w = newTableWriter(f, &db.opts, num)
			outFile = f
		}
		w.add(ik, merge.Value())
		if w.offset >= target {
			if err := finishOutput(); err != nil {
				return nil, err
			}
		}
	}
	if err := finishOutput(); err != nil {
		return nil, err
	}
	return metas, nil
}

// compactEverythingLocked repeatedly compacts until all data sits in one
// level. Called with the lock held (and compacting known false).
func (db *DB) compactEverythingLocked() error {
	db.compacting = true
	defer func() {
		db.compacting = false
		db.plat.Signal()
	}()
	for {
		v := db.vs.current
		// Find the shallowest non-empty level; stop when only one level
		// holds data.
		shallowest, populated := -1, 0
		for l := 0; l < numLevels; l++ {
			if len(v.levels[l]) > 0 {
				if shallowest < 0 {
					shallowest = l
				}
				populated++
			}
		}
		if populated <= 1 && (shallowest != 0 || len(v.levels[0]) <= 1) {
			return nil
		}
		if shallowest == numLevels-1 {
			return nil
		}
		inputs := append([]*fileMeta(nil), v.levels[shallowest]...)
		lo, hi := keyRange(inputs)
		overlaps := v.overlapping(shallowest+1, lo, hi)
		if err := db.runCompactionLocked(shallowest, inputs, overlaps); err != nil {
			return err
		}
	}
}
