package lsm

import (
	"bytes"
	"fmt"
	"sort"

	"lsmio/internal/iosched"
)

// Leveled compaction, LevelDB-style: L0 tables (which may overlap) are
// merged with overlapping L1 tables when their count reaches the trigger;
// deeper levels compact one file at a time, round-robin, when their
// cumulative size exceeds the level target. The LSMIO checkpoint
// configuration disables all of this — checkpoints are write-once — but the
// engine implements it fully for general workloads and the ablation
// benchmarks.
//
// Background work is admission-controlled by a scheduler that runs up to
// Options.MaxBackgroundJobs workers at once. Each worker owns one
// compaction at a time, reserved through a versionSet claim: no two
// running compactions may share an input file or overlap key ranges on a
// level they both touch, so concurrent version edits stay exact and the
// output files of a level remain disjoint. Memtable flushes run on their
// own worker (db.flushing) and never queue behind compactions. A wide
// merge is additionally split into key-range subcompactions executed in
// parallel and stitched back in shard order.

// maxBytesForLevel returns the size target of a level.
func (db *DB) maxBytesForLevel(level int) int64 {
	size := db.opts.BaseLevelSize
	for l := 1; l < level; l++ {
		size *= int64(db.opts.LevelSizeMultiplier)
	}
	return size
}

// targetFileSize is the output-table split size for a compaction.
func (db *DB) targetFileSize() int64 {
	s := int64(db.opts.WriteBufferSize) / 2
	if s < 2<<20 {
		s = 2 << 20
	}
	return s
}

// needsCompactionLocked reports whether any level is over its trigger.
func (db *DB) needsCompactionLocked() bool {
	if db.opts.DisableCompaction {
		return false
	}
	v := db.vs.current
	if len(v.levels[0]) >= db.opts.L0CompactionTrigger {
		return true
	}
	for l := 1; l < numLevels-1; l++ {
		if v.levelBytes(l) > db.maxBytesForLevel(l) {
			return true
		}
	}
	return false
}

// compactionDebtLocked estimates the pending compaction backlog: bytes
// above each level's size target plus the L0 bytes beyond the trigger.
// The slowdown tier compares it against SoftPendingCompactionBytes.
func (db *DB) compactionDebtLocked() int64 {
	v := db.vs.current
	var debt int64
	if extra := len(v.levels[0]) - db.opts.L0CompactionTrigger; extra > 0 {
		files := v.levels[0]
		for _, f := range files[:extra] {
			debt += f.size
		}
	}
	for l := 1; l < numLevels-1; l++ {
		if over := v.levelBytes(l) - db.maxBytesForLevel(l); over > 0 {
			debt += over
		}
	}
	return debt
}

// compactionJob is one unit of background work handed to a worker, with
// its versionSet reservation.
type compactionJob struct {
	level    int
	inputs   []*fileMeta // level `level`
	overlaps []*fileMeta // level `level+1`
	claim    *compactionClaim
}

// admissibleLocked reports whether a candidate compaction is disjoint
// from every running one: none of its files claimed, and its key span
// free on both levels it touches.
func (db *DB) admissibleLocked(level int, inputs, overlaps []*fileMeta) bool {
	for _, f := range inputs {
		if db.vs.fileClaimed(f.num) {
			return false
		}
	}
	for _, f := range overlaps {
		if db.vs.fileClaimed(f.num) {
			return false
		}
	}
	all := append(append([]*fileMeta(nil), inputs...), overlaps...)
	lo, hi := keyRange(all)
	return !db.vs.rangeClaimed(level, lo, hi) && !db.vs.rangeClaimed(level+1, lo, hi)
}

// maybeScheduleCompaction spawns compaction workers up to the
// MaxBackgroundJobs cap while admissible work exists. Called with the
// lock held.
func (db *DB) maybeScheduleCompaction() {
	if db.closed || db.bgErr != nil || db.manualCompaction {
		return
	}
	for db.compactionsInFlight < db.opts.MaxBackgroundJobs {
		job := db.pickAndClaimLocked()
		if job == nil {
			return
		}
		db.compactionsInFlight++
		db.plat.Go("lsm-compact", func() { db.compactionWorker(job) })
	}
}

// compactionWorker runs claimed jobs until none remain admissible.
func (db *DB) compactionWorker(job *compactionJob) {
	db.plat.Lock()
	for job != nil {
		err := db.runCompactionLocked(job.level, job.inputs, job.overlaps)
		db.vs.releaseCompaction(job.claim)
		if err != nil {
			db.bgErr = err
			break
		}
		// Releasing the claim may have unblocked work beyond what this
		// worker can take; let the scheduler top the pool back up.
		db.maybeScheduleCompaction()
		job = db.pickAndClaimLocked()
	}
	db.compactionsInFlight--
	db.plat.Signal()
	db.plat.Unlock()
}

// pickAndClaimLocked selects the next admissible compaction and reserves
// its inputs. Returns nil when no work may start.
func (db *DB) pickAndClaimLocked() *compactionJob {
	if db.closed || db.bgErr != nil || db.manualCompaction || db.opts.DisableCompaction {
		return nil
	}
	level, inputs, overlaps := db.pickCompaction()
	if level < 0 {
		return nil
	}
	all := append(append([]*fileMeta(nil), inputs...), overlaps...)
	return &compactionJob{
		level:    level,
		inputs:   inputs,
		overlaps: overlaps,
		claim:    db.vs.claimCompaction(level, all),
	}
}

// pickCompaction chooses inputs among the candidates disjoint from all
// running compactions. Called with the lock held.
func (db *DB) pickCompaction() (level int, inputs, overlaps []*fileMeta) {
	v := db.vs.current
	if len(v.levels[0]) >= db.opts.L0CompactionTrigger {
		// Take every L0 file (they may all overlap) plus the L1 files
		// their combined range touches. At most one L0 compaction runs at
		// a time — a second candidate's span always collides with it.
		inputs = append([]*fileMeta(nil), v.levels[0]...)
		lo, hi := keyRange(inputs)
		overlaps = v.overlapping(1, lo, hi)
		if db.admissibleLocked(0, inputs, overlaps) {
			return 0, inputs, overlaps
		}
	}
	for l := 1; l < numLevels-1; l++ {
		if v.levelBytes(l) <= db.maxBytesForLevel(l) {
			continue
		}
		// Round-robin: first file after the last compaction's end point,
		// then (only when that candidate is busy) each later file in turn.
		files := v.levels[l]
		start := 0
		if ptr := db.vs.compactPointer[l]; ptr.valid() {
			start = len(files)
			for i, f := range files {
				if compareIKeys(f.largest, ptr) > 0 {
					start = i
					break
				}
			}
		}
		for k := 0; k < len(files); k++ {
			pick := files[(start+k)%len(files)]
			in := []*fileMeta{pick}
			lo, hi := keyRange(in)
			ov := v.overlapping(l+1, lo, hi)
			if db.admissibleLocked(l, in, ov) {
				return l, in, ov
			}
		}
	}
	return -1, nil, nil
}

// keyRange returns the user-key bounds spanned by files.
func keyRange(files []*fileMeta) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || bytes.Compare(f.smallest.userKey(), lo) < 0 {
			lo = f.smallest.userKey()
		}
		if hi == nil || bytes.Compare(f.largest.userKey(), hi) > 0 {
			hi = f.largest.userKey()
		}
	}
	return lo, hi
}

// shardRange is one subcompaction's half-open user-key slice
// [lower, upper); nil means unbounded.
type shardRange struct {
	lower, upper []byte
}

// contains reports whether a user key falls in the shard.
func (s shardRange) contains(uk []byte) bool {
	if s.lower != nil && bytes.Compare(uk, s.lower) < 0 {
		return false
	}
	if s.upper != nil && bytes.Compare(uk, s.upper) >= 0 {
		return false
	}
	return true
}

// filesForShard keeps the input files that can hold keys of the shard.
func filesForShard(files []*fileMeta, s shardRange) []*fileMeta {
	var out []*fileMeta
	for _, f := range files {
		if s.lower != nil && bytes.Compare(f.largest.userKey(), s.lower) < 0 {
			continue
		}
		if s.upper != nil && bytes.Compare(f.smallest.userKey(), s.upper) >= 0 {
			continue
		}
		out = append(out, f)
	}
	return out
}

// planSubcompactions splits a merge over `all` into up to
// MaxBackgroundJobs key-range shards, using the input files' smallest
// keys as boundaries (they are cheap, deterministic, and — on the sorted
// output level — align shards with existing file edges). Returns nil when
// the merge should run unsharded; every user key belongs to exactly one
// shard, so per-key shadowing and tombstone logic is unaffected.
func (db *DB) planSubcompactions(all []*fileMeta) []shardRange {
	n := db.opts.MaxBackgroundJobs
	if n <= 1 || len(all) < 2 {
		return nil
	}
	var cands [][]byte
	for _, f := range all {
		cands = append(cands, f.smallest.userKey())
	}
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i], cands[j]) < 0 })
	uniq := cands[:0]
	for i, c := range cands {
		if i > 0 && bytes.Equal(c, uniq[len(uniq)-1]) {
			continue
		}
		uniq = append(uniq, c)
	}
	// The global smallest key is not a useful boundary: everything below
	// it is empty.
	if len(uniq) > 0 {
		uniq = uniq[1:]
	}
	if len(uniq) == 0 {
		return nil
	}
	shards := n
	if shards > len(uniq)+1 {
		shards = len(uniq) + 1
	}
	if shards <= 1 {
		return nil
	}
	out := make([]shardRange, 0, shards)
	var lower []byte
	for i := 1; i < shards; i++ {
		b := uniq[i*len(uniq)/shards]
		if lower != nil && bytes.Compare(b, lower) <= 0 {
			continue
		}
		out = append(out, shardRange{lower: lower, upper: b})
		lower = b
	}
	out = append(out, shardRange{lower: lower})
	if len(out) <= 1 {
		return nil
	}
	return out
}

// runCompactionLocked merges inputs (level) + overlaps (level+1) into new
// tables at level+1, splitting the merge into parallel subcompactions
// when the worker pool allows.
func (db *DB) runCompactionLocked(level int, inputs, overlaps []*fileMeta) error {
	outLevel := level + 1
	all := append(append([]*fileMeta(nil), inputs...), overlaps...)
	// Tombstones can be dropped when no deeper level holds data under the
	// compaction's key range.
	lo, hi := keyRange(all)
	dropTombstones := true
	for l := outLevel + 1; l < numLevels; l++ {
		if len(db.vs.current.overlapping(l, lo, hi)) > 0 {
			dropTombstones = false
			break
		}
	}
	smallestSnapshot := db.smallestSnapshotLocked()
	shards := db.planSubcompactions(all)
	compactStart := db.plat.Now()
	// The number of output tables is unknown up front, so the merge
	// re-takes the lock briefly for each file-number allocation and marks
	// each output pending so the obsolete-file sweep leaves it alone.
	var outNums []uint64
	alloc := func() uint64 {
		db.plat.Lock()
		defer db.plat.Unlock()
		n := db.vs.newFileNum()
		db.pendingOutputs[n] = true
		outNums = append(outNums, n)
		return n
	}
	var metas []tableMeta
	var err error
	if len(shards) <= 1 {
		db.plat.Unlock()
		metas, err = db.mergeTables(all, shardRange{}, dropTombstones, smallestSnapshot, alloc)
		db.plat.Lock()
	} else {
		metas, err = db.runSubcompactionsLocked(all, shards, dropTombstones, smallestSnapshot, alloc)
	}
	defer func() {
		for _, n := range outNums {
			delete(db.pendingOutputs, n)
		}
	}()
	if err != nil {
		// Nothing references the outputs; drop them rather than leaving
		// orphan SSTables for a sweep that may never run (bgErr stops
		// background work).
		for _, n := range outNums {
			if t, ok := db.tables[n]; ok {
				t.close()
				delete(db.tables, n)
			}
			db.fs.Remove(tableFileName(db.dir, n))
		}
		return err
	}
	edit := &versionEdit{}
	for _, f := range inputs {
		edit.Deleted = append(edit.Deleted, deletedFile{Level: level, Num: f.num})
	}
	for _, f := range overlaps {
		edit.Deleted = append(edit.Deleted, deletedFile{Level: outLevel, Num: f.num})
	}
	var totalOut int64
	for _, m := range metas {
		edit.Added = append(edit.Added, addedFileFromMeta(outLevel, m))
		totalOut += m.size
	}
	next := db.vs.nextFileNum
	edit.NextFileNum = &next
	if _, err := db.vs.apply(edit); err != nil {
		return err
	}
	if err := db.vs.logEdit(edit); err != nil {
		return err
	}
	if len(all) > 0 {
		db.vs.compactPointer[level] = append(internalKey(nil), all[0].largest...)
	}
	db.m.compactions.Inc()
	db.m.bytesCompacted.Add(totalOut)
	db.m.compactionDur.ObserveDuration(db.plat.Now() - compactStart)
	db.m.trace.EmitSpan("lsm.compaction",
		fmt.Sprintf("L%d->L%d in=%d out_bytes=%d shards=%d", level, outLevel, len(all), totalOut, max(len(shards), 1)),
		compactStart)
	db.deleteObsoleteLocked()
	db.plat.Signal()
	return nil
}

// runSubcompactionsLocked fans the merge out over key-range shards: shard
// 0 runs on the calling worker, the rest on freshly spawned platform
// tasks, and the output tables are stitched back together in shard order
// (the shards partition the user-key space, so concatenation preserves
// the output level's sort invariant). Called with the lock held; the lock
// is released around the merges. Any shard error fails the whole
// compaction — the caller deletes every allocated output.
func (db *DB) runSubcompactionsLocked(all []*fileMeta, shards []shardRange, dropTombstones bool, smallestSnapshot seqNum, alloc func() uint64) ([]tableMeta, error) {
	metas := make([][]tableMeta, len(shards))
	errs := make([]error, len(shards))
	pending := len(shards) - 1
	db.m.subcompactions.Add(int64(len(shards)))
	for i := 1; i < len(shards); i++ {
		i := i
		db.plat.Go("lsm-subcompact", func() {
			metas[i], errs[i] = db.mergeTables(
				filesForShard(all, shards[i]), shards[i], dropTombstones, smallestSnapshot, alloc)
			db.plat.Lock()
			pending--
			db.plat.Signal()
			db.plat.Unlock()
		})
	}
	db.plat.Unlock()
	metas[0], errs[0] = db.mergeTables(
		filesForShard(all, shards[0]), shards[0], dropTombstones, smallestSnapshot, alloc)
	db.plat.Lock()
	for pending > 0 {
		db.plat.WaitCond()
	}
	var out []tableMeta
	for i := range shards {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, metas[i]...)
	}
	return out, nil
}

// mergeTables merge-sorts the input tables into new output tables,
// keeping the newest entry per user key plus any older versions still
// visible to a snapshot at or above smallestSnapshot. Only user keys
// inside shard are emitted (the zero shardRange is unbounded). Called
// without the lock.
//
// Every error return cleans up after itself: already-opened child
// iterators are closed if table opening fails midway, the in-progress
// output file is closed and deleted, and the merging iterator's own
// close error is propagated rather than swallowed.
func (db *DB) mergeTables(inputs []*fileMeta, shard shardRange, dropTombstones bool, smallestSnapshot seqNum, allocNum func() uint64) (metas []tableMeta, err error) {
	children := make([]internalIterator, 0, len(inputs))
	for _, fm := range inputs {
		t, terr := db.getTable(fm.num)
		if terr != nil {
			for _, c := range children {
				c.Close()
			}
			return nil, terr
		}
		children = append(children, t.iterator())
	}
	merge := newMergingIterator(children)

	var w *tableWriter
	var outFile interface{ Close() error }
	var outName string
	// pendings are sealed outputs whose tail write + fsync may still be in
	// flight (pipelined builds): the merge keeps encoding the next table
	// while the previous one syncs, and collects results in file order.
	type pendingOut struct {
		pt   *pendingTable
		f    interface{ Close() error }
		name string
	}
	var pendings []pendingOut
	defer func() {
		if cerr := merge.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			if w != nil {
				// A pipelined build may still have tasks running against the
				// output file; drain them before closing and deleting it.
				w.abort()
				outFile.Close()
				db.fs.Remove(outName)
			}
			for _, po := range pendings {
				po.pt.wait()
				po.f.Close()
				db.fs.Remove(po.name)
			}
			metas = nil
		}
	}()

	// collectOldest resolves the oldest pending output: wait for its sync,
	// close it, and append its metadata (or clean up on failure).
	collectOldest := func() error {
		po := pendings[0]
		pendings = pendings[1:]
		meta, werr := po.pt.wait()
		if werr != nil {
			po.f.Close()
			db.fs.Remove(po.name)
			return werr
		}
		if cerr := po.f.Close(); cerr != nil {
			db.fs.Remove(po.name)
			return cerr
		}
		metas = append(metas, meta)
		return nil
	}

	var lastUser []byte
	haveLast := false
	// lastSeqForKey is the sequence of the previous kept entry for the
	// current user key (maxSeq when this is the key's first entry).
	lastSeqForKey := maxSeq
	target := db.targetFileSize()

	finishOutput := func() error {
		if w == nil {
			return nil
		}
		pendings = append(pendings, pendingOut{pt: w.finishAsync(), f: outFile, name: outName})
		w = nil
		// Let exactly one sealed output's fsync overlap the next table's
		// encoding; beyond that, collect in order (bounds open files and
		// memory, and in serial mode degenerates to the old inline finish).
		for len(pendings) > 1 {
			if err := collectOldest(); err != nil {
				return err
			}
		}
		return nil
	}

	for merge.SeekToFirst(); merge.Valid(); merge.Next() {
		ik := merge.IKey()
		uk := ik.userKey()
		if shard.upper != nil && bytes.Compare(uk, shard.upper) >= 0 {
			break // inputs are sorted; nothing further belongs to this shard
		}
		if !shard.contains(uk) {
			continue
		}
		if !haveLast || !bytes.Equal(uk, lastUser) {
			lastUser = append(lastUser[:0], uk...)
			haveLast = true
			lastSeqForKey = maxSeq
		}
		drop := false
		if lastSeqForKey <= smallestSnapshot {
			// A newer version of this key is already visible at the
			// oldest snapshot: nothing can observe this one.
			drop = true
		} else if ik.kind() == kindDelete && dropTombstones && ik.seq() <= smallestSnapshot {
			// Tombstone at the bottom of the tree, invisible to all
			// snapshots once shadowing is resolved.
			drop = true
		}
		lastSeqForKey = ik.seq()
		if drop {
			continue
		}
		if w == nil {
			num := allocNum()
			name := tableFileName(db.dir, num)
			f, ferr := db.fs.Create(name)
			if ferr != nil {
				return nil, ferr
			}
			w = newTableWriter(f, &db.opts, num, &db.m)
			w.ioClass = iosched.Compaction
			outFile, outName = f, name
		}
		w.add(ik, merge.Value())
		if w.estimatedSize() >= target {
			if err := finishOutput(); err != nil {
				return nil, err
			}
		}
	}
	if err := finishOutput(); err != nil {
		return nil, err
	}
	for len(pendings) > 0 {
		if err := collectOldest(); err != nil {
			return nil, err
		}
	}
	return metas, nil
}

// compactEverythingLocked repeatedly compacts until all data sits in one
// level. Called with the lock held, manualCompaction set, and no
// background compaction in flight — the caller owns all compaction state,
// so no claims are needed.
func (db *DB) compactEverythingLocked() error {
	for {
		v := db.vs.current
		// Find the shallowest non-empty level; stop when only one level
		// holds data.
		shallowest, populated := -1, 0
		for l := 0; l < numLevels; l++ {
			if len(v.levels[l]) > 0 {
				if shallowest < 0 {
					shallowest = l
				}
				populated++
			}
		}
		if populated <= 1 && (shallowest != 0 || len(v.levels[0]) <= 1) {
			return nil
		}
		if shallowest == numLevels-1 {
			return nil
		}
		inputs := append([]*fileMeta(nil), v.levels[shallowest]...)
		lo, hi := keyRange(inputs)
		overlaps := v.overlapping(shallowest+1, lo, hi)
		if err := db.runCompactionLocked(shallowest, inputs, overlaps); err != nil {
			return err
		}
	}
}
