// Package lsm is a log-structured merge-tree storage engine written from
// scratch, playing the role RocksDB plays in the LSMIO paper (Bulut &
// Wright, SC-W 2023). It implements the full write and read life cycle the
// paper relies on: a skiplist memtable, an optional write-ahead log,
// block-based sorted-string tables with prefix compression, restart points
// and bloom filters, a versioned manifest, leveled compaction, write
// batches, merging iterators and an optional block cache.
//
// Every knob the paper turns on RocksDB is an Option here: the write-ahead
// log, compression, the block cache and compaction can each be disabled;
// writes can be synchronous or asynchronous; and the write buffer and block
// sizes are configurable (§3.1.1 of the paper).
//
// All I/O goes through vfs.FS, so the engine runs identically on the real
// OS filesystem and on the simulated Lustre parallel file system.
package lsm

import (
	"time"

	"lsmio/internal/iosched"
	"lsmio/internal/obs"
	"lsmio/internal/vfs"
)

// CompressionCodec names a block-compression algorithm.
type CompressionCodec string

// Available codecs.
const (
	// CompressionSnappy is the LZ77-family codec RocksDB defaults to
	// (implemented from scratch in internal/snappy).
	CompressionSnappy CompressionCodec = "snappy"
	// CompressionFlate is DEFLATE at the fastest level.
	CompressionFlate CompressionCodec = "flate"
)

// Options configures a DB. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// FS is the filesystem the database lives on.
	FS vfs.FS
	// Platform supplies background-task scheduling and locking; defaults
	// to the real-goroutine platform.
	Platform Platform
	// Obs is the metrics/trace registry the engine records into, under
	// the `lsm.` prefix. Nil creates a private registry clocked by the
	// Platform; callers that manage several subsystems (core.Manager)
	// inject a shared one so a single snapshot covers the whole stack.
	Obs *obs.Registry
	// IOSched is the shared I/O-bandwidth scheduler. When set, WAL
	// appends buy Foreground tokens and every table-build byte buys
	// Flush or Compaction tokens before hitting the filesystem, so the
	// engine's background I/O is paced against the other consumers
	// (burst drain, parity scrub) instead of free-running.
	// MaxBackgroundJobs remains purely a concurrency cap. Nil disables
	// scheduling (all I/O free-running, the pre-PR-10 behavior).
	IOSched *iosched.Scheduler

	// WriteBufferSize is the memtable capacity in bytes. When a memtable
	// reaches this size it becomes immutable and is flushed to an SSTable.
	// The paper uses 32 MB to mirror ADIOS2's BufferChunkSize.
	WriteBufferSize int
	// BlockSize is the uncompressed size of an SSTable data block.
	BlockSize int
	// BlockRestartInterval is the number of keys between restart points.
	BlockRestartInterval int
	// BitsPerKey sizes the per-table bloom filter; 0 disables filters.
	BitsPerKey int

	// DisableWAL turns off the write-ahead log (the paper's headline
	// RocksDB customization for checkpoint data: durability comes from the
	// explicit write barrier instead).
	DisableWAL bool
	// DisableCompression stores blocks raw (the paper disables compression).
	DisableCompression bool
	// Compression selects the block codec when compression is enabled:
	// CompressionSnappy (default, RocksDB's default codec) or
	// CompressionFlate (better ratio, slower).
	Compression CompressionCodec
	// DisableCache bypasses the block cache (the paper disables caching).
	DisableCache bool
	// DisableCompaction turns off background compaction (the paper
	// disables compaction: checkpoints are write-once).
	DisableCompaction bool
	// Sync forces an fsync after every WAL write (when the WAL is on).
	// With Sync off, WAL durability is deferred to WriteBarrier/Flush,
	// matching the paper's asynchronous option. SSTables are always synced
	// before the manifest references them, regardless of this setting — a
	// crash must never lose data the manifest claims to hold.
	Sync bool
	// AsyncFlush lets a full memtable be flushed by a background task
	// while new writes proceed into a fresh memtable. With it off, the
	// write that fills the memtable performs the flush inline.
	AsyncFlush bool
	// UseMMap models RocksDB's mmap-write option: table writes bypass the
	// engine's internal buffering. Behaviourally it only changes write
	// granularity; it exists because the paper exposes it.
	UseMMap bool

	// CacheSize is the block cache capacity in bytes (used when the cache
	// is enabled).
	CacheSize int

	// MaxImmutableMemtables bounds the flush backlog in async mode;
	// writers stall when it is reached (RocksDB's write stall).
	MaxImmutableMemtables int

	// L0CompactionTrigger is the number of L0 tables that triggers a
	// compaction into L1 (when compaction is enabled).
	L0CompactionTrigger int
	// LevelSizeMultiplier is the target size ratio between adjacent levels.
	LevelSizeMultiplier int
	// BaseLevelSize is the target size of L1 in bytes.
	BaseLevelSize int64

	// MaxBackgroundJobs caps the number of concurrent background
	// compaction workers (RocksDB's max_background_jobs). Workers run
	// compactions on disjoint levels/key ranges in parallel, and a wide
	// merge is split into that many key-range subcompactions. 1 (the
	// default) reproduces the single-threaded behaviour exactly; the
	// paper-reproduction configs disable compaction altogether, so this
	// knob only matters for the general-workload/ablation paths.
	MaxBackgroundJobs int

	// EncodeWorkers splits every table build (flush and compaction output)
	// into a compute stage and an I/O stage: that many encoder tasks
	// compress and checksum data blocks (and build the bloom filter) out
	// of order, feeding one sequential writer task that owns the file
	// offset and index construction. 0 (the default) keeps the fully
	// serial writer; the output bytes are identical either way.
	EncodeWorkers int
	// EncodeQueueDepth bounds the encoder job queue per table (back
	// pressure between the producer and the compute stage). 0 picks the
	// default (2x EncodeWorkers).
	EncodeQueueDepth int
	// EncodeCostPerMB charges the platform's Compute clock for block
	// encoding (compression + CRC + bloom hashing), per MiB of raw block
	// bytes. On the real platform Compute is a no-op, so this only shapes
	// the simulated benchmarks, where CPU time is otherwise free and
	// pipelining would show no benefit. 0 (the default) charges nothing,
	// preserving every previously calibrated figure.
	EncodeCostPerMB time.Duration

	// MaxWriteGroupBytes caps the coalesced record a group-commit leader
	// writes for a cohort of concurrent Apply callers (LevelDB's
	// max_write_batch_group). 0 picks the default (1 MiB).
	MaxWriteGroupBytes int
	// DisableWALGroupCommit pins every cohort to a single writer: each
	// Apply performs its own WAL append+sync. The writer queue (and its
	// ordering guarantees) stays in place; only the coalescing is off.
	// Exists for the ext-pipeline A/B and for bisection.
	DisableWALGroupCommit bool

	// The write path has two admission-control tiers in front of the hard
	// stall (the MaxImmutableMemtables backlog wait). Both only engage
	// when compaction is enabled — with compaction off nothing would ever
	// drain L0, so slowing writers for it would be pure loss.
	//
	// L0SlowdownTrigger is the L0 table count at which each write is
	// delayed by SlowdownDelay once, smoothing the approach to the stall
	// cliff (LevelDB's kL0_SlowdownWritesTrigger). 0 picks the default
	// (8); negative disables the slowdown tier.
	L0SlowdownTrigger int
	// L0StopTrigger is the L0 table count at which writers block until
	// compaction catches up (LevelDB's kL0_StopWritesTrigger). 0 picks
	// the default (12); negative disables the L0 hard stop.
	L0StopTrigger int
	// SlowdownDelay is the per-write pause applied in the slowdown tier.
	// 0 picks the default (1ms); negative disables delays.
	SlowdownDelay time.Duration
	// SoftPendingCompactionBytes additionally engages the slowdown tier
	// when the estimated compaction debt (bytes above each level's size
	// target) exceeds it. 0 picks the default (64 MB); negative disables
	// the debt-based slowdown.
	SoftPendingCompactionBytes int64
}

// DefaultOptions returns options resembling LevelDB/RocksDB defaults, on
// the given filesystem.
func DefaultOptions(fs vfs.FS) Options {
	return Options{
		FS:                    fs,
		Platform:              GoPlatform(),
		WriteBufferSize:       4 << 20,
		BlockSize:             4 << 10,
		BlockRestartInterval:  16,
		BitsPerKey:            10,
		Compression:           CompressionSnappy,
		CacheSize:             8 << 20,
		MaxImmutableMemtables: 2,
		L0CompactionTrigger:   4,
		LevelSizeMultiplier:   10,
		BaseLevelSize:         10 << 20,
		MaxBackgroundJobs:     1,
	}
}

// CheckpointOptions returns the configuration the LSMIO paper uses for the
// checkpoint write path (§3.1.1): WAL, compression, cache and compaction
// all disabled, a 32 MB write buffer, and asynchronous flushing.
func CheckpointOptions(fs vfs.FS) Options {
	o := DefaultOptions(fs)
	o.DisableWAL = true
	o.DisableCompression = true
	o.DisableCache = true
	o.DisableCompaction = true
	o.AsyncFlush = true
	o.WriteBufferSize = 32 << 20
	o.BlockSize = 64 << 10
	return o
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Platform == nil {
		out.Platform = GoPlatform()
	}
	if out.WriteBufferSize <= 0 {
		out.WriteBufferSize = 4 << 20
	}
	if out.BlockSize <= 0 {
		out.BlockSize = 4 << 10
	}
	if out.BlockRestartInterval <= 0 {
		out.BlockRestartInterval = 16
	}
	if out.CacheSize <= 0 {
		out.CacheSize = 8 << 20
	}
	if out.MaxImmutableMemtables <= 0 {
		out.MaxImmutableMemtables = 2
	}
	if out.Compression == "" {
		out.Compression = CompressionSnappy
	}
	if out.L0CompactionTrigger <= 0 {
		out.L0CompactionTrigger = 4
	}
	if out.LevelSizeMultiplier <= 0 {
		out.LevelSizeMultiplier = 10
	}
	if out.BaseLevelSize <= 0 {
		out.BaseLevelSize = 10 << 20
	}
	if out.MaxBackgroundJobs <= 0 {
		out.MaxBackgroundJobs = 1
	}
	if out.EncodeWorkers < 0 {
		out.EncodeWorkers = 0
	}
	if out.EncodeQueueDepth <= 0 {
		out.EncodeQueueDepth = 2 * out.EncodeWorkers
	}
	if out.MaxWriteGroupBytes <= 0 {
		out.MaxWriteGroupBytes = 1 << 20
	}
	if out.L0SlowdownTrigger == 0 {
		out.L0SlowdownTrigger = 8
	}
	if out.L0StopTrigger == 0 {
		out.L0StopTrigger = 12
	}
	if out.SlowdownDelay == 0 {
		out.SlowdownDelay = time.Millisecond
	}
	if out.SoftPendingCompactionBytes == 0 {
		out.SoftPendingCompactionBytes = 64 << 20
	}
	return out
}
