package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lsmio/internal/vfs"
)

func TestMemtableBackwardWalk(t *testing.T) {
	m := newMemtable()
	for i, k := range []string{"b", "d", "a", "c", "e"} {
		m.add(seqNum(i+1), kindValue, []byte(k), []byte(k))
	}
	it := m.iterator()
	var got []string
	for it.SeekToLast(); it.Valid(); it.Prev() {
		got = append(got, string(it.IKey().userKey()))
	}
	if fmt.Sprint(got) != "[e d c b a]" {
		t.Fatalf("backward walk = %v", got)
	}
	// findLessThan at the very first entry yields nil.
	it.SeekToFirst()
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev from first entry should invalidate")
	}
}

func TestBlockIteratorBackward(t *testing.T) {
	b := newBlockBuilder(4)
	const n = 57 // not a multiple of the restart interval
	for i := 0; i < n; i++ {
		b.add(makeIKey([]byte(fmt.Sprintf("k%04d", i)), 1, kindValue),
			[]byte(fmt.Sprintf("v%d", i)))
	}
	blk, err := parseBlock(append([]byte(nil), b.finish()...))
	if err != nil {
		t.Fatal(err)
	}
	it := blk.iterator()
	// Full backward walk.
	i := n - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		want := fmt.Sprintf("k%04d", i)
		if string(it.IKey().userKey()) != want {
			t.Fatalf("backward at %d: got %s", i, it.IKey().userKey())
		}
		if string(it.Value()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("backward value at %d: %q", i, it.Value())
		}
		i--
	}
	if i != -1 {
		t.Fatalf("walked %d entries backward", n-1-i)
	}
	// Ping-pong around a restart boundary.
	it.Seek(makeIKey([]byte("k0004"), maxSeq, kindValue)) // restart-aligned
	it.Prev()
	if string(it.IKey().userKey()) != "k0003" {
		t.Fatalf("prev across restart = %s", it.IKey().userKey())
	}
	it.Next()
	if string(it.IKey().userKey()) != "k0004" {
		t.Fatalf("next after prev = %s", it.IKey().userKey())
	}
}

func TestTableIteratorBackward(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := DefaultOptions(fs)
	opts.BlockSize = 256 // many small blocks
	f, _ := fs.Create("t.sst")
	w := newTableWriter(f, &opts, 1, nil)
	const n = 500
	for i := 0; i < n; i++ {
		w.add(makeIKey([]byte(fmt.Sprintf("k%05d", i)), 1, kindValue), []byte("v"))
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, _ := fs.Open("t.sst")
	r, err := openTable(g, &opts, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.iterator()
	i := n - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if string(it.IKey().userKey()) != fmt.Sprintf("k%05d", i) {
			t.Fatalf("backward at %d: %s", i, it.IKey().userKey())
		}
		i--
	}
	if i != -1 {
		t.Fatalf("walked %d entries", n-1-i)
	}
}

func TestDBIteratorReverse(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) { o.WriteBufferSize = 8 << 10 })
	defer db.Close()
	var keys []string
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("rev%04d", i)
		keys = append(keys, k)
		db.Put([]byte(k), []byte(strings.Repeat("v", 50)))
		if i%37 == 0 {
			db.Flush() // spread across several tables + memtable
		}
	}
	db.Delete([]byte("rev0100"))

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Full reverse scan.
	var got []string
	for it.SeekToLast(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key()))
	}
	want := make([]string, 0, len(keys)-1)
	for i := len(keys) - 1; i >= 0; i-- {
		if keys[i] != "rev0100" {
			want = append(want, keys[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("reverse scan %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reverse[%d] = %s, want %s", i, got[i], want[i])
		}
	}

	// Direction changes: forward a bit, then back.
	it.Seek([]byte("rev0050"))
	it.Next() // rev0051
	it.Prev() // rev0050
	if string(it.Key()) != "rev0050" {
		t.Fatalf("ping-pong landed on %q", it.Key())
	}
	it.Prev() // rev0049
	if string(it.Key()) != "rev0049" {
		t.Fatalf("second prev landed on %q", it.Key())
	}
	it.Next()
	if string(it.Key()) != "rev0050" {
		t.Fatalf("next after prevs landed on %q", it.Key())
	}
	// Prev over the tombstone.
	it.Seek([]byte("rev0101"))
	it.Prev()
	if string(it.Key()) != "rev0099" {
		t.Fatalf("prev over tombstone landed on %q", it.Key())
	}
}

func TestDBIteratorReverseOverwrites(t *testing.T) {
	// Multiple versions across memtable and tables: reverse iteration
	// must yield the newest visible version, exactly like forward.
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	db.Put([]byte("x"), []byte("v1"))
	db.Flush()
	db.Put([]byte("x"), []byte("v2"))
	db.Flush()
	db.Put([]byte("x"), []byte("v3")) // memtable
	db.Put([]byte("w"), []byte("w1"))
	db.Put([]byte("y"), []byte("y1"))

	it, _ := db.NewIterator()
	defer it.Close()
	it.SeekToLast()
	if string(it.Key()) != "y" {
		t.Fatalf("last = %q", it.Key())
	}
	it.Prev()
	if string(it.Key()) != "x" || string(it.Value()) != "v3" {
		t.Fatalf("prev = %q/%q, want x/v3", it.Key(), it.Value())
	}
	it.Prev()
	if string(it.Key()) != "w" {
		t.Fatalf("prev = %q", it.Key())
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("prev past first should invalidate")
	}
}

func TestRangeIteratorReverse(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("rr%03d", i)), []byte("v"))
	}
	db.Flush()
	it, err := db.NewRangeIterator([]byte("rr020"), []byte("rr030"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.SeekToLast(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 10 || got[0] != "rr029" || got[9] != "rr020" {
		t.Fatalf("bounded reverse = %v", got)
	}
}

// TestReverseMatchesForwardProperty: for random databases, the reverse
// scan must be exactly the forward scan reversed, and random-position
// ping-pong must be consistent.
func TestReverseMatchesForwardProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 5; round++ {
		db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
			o.WriteBufferSize = 4 << 10
		})
		model := map[string]bool{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("p%03d", rng.Intn(150))
			if rng.Intn(5) == 0 {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				db.Put([]byte(k), []byte("v"))
				model[k] = true
			}
			if rng.Intn(60) == 0 {
				db.Flush()
			}
		}
		it, err := db.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		var fwd, rev []string
		for it.SeekToFirst(); it.Valid(); it.Next() {
			fwd = append(fwd, string(it.Key()))
		}
		for it.SeekToLast(); it.Valid(); it.Prev() {
			rev = append(rev, string(it.Key()))
		}
		if len(fwd) != len(model) || len(rev) != len(fwd) {
			t.Fatalf("round %d: fwd %d rev %d model %d", round, len(fwd), len(rev), len(model))
		}
		for i := range fwd {
			if fwd[i] != rev[len(rev)-1-i] {
				t.Fatalf("round %d: fwd[%d]=%s rev-mirror=%s", round, i, fwd[i], rev[len(rev)-1-i])
			}
		}
		// Ping-pong at random positions.
		sorted := append([]string(nil), fwd...)
		sort.Strings(sorted)
		for j := 0; j < 30 && len(sorted) > 2; j++ {
			pos := 1 + rng.Intn(len(sorted)-2)
			it.Seek([]byte(sorted[pos]))
			it.Prev()
			if !it.Valid() || string(it.Key()) != sorted[pos-1] {
				t.Fatalf("round %d: prev from %s = %q, want %s",
					round, sorted[pos], it.Key(), sorted[pos-1])
			}
			it.Next()
			if !it.Valid() || string(it.Key()) != sorted[pos] {
				t.Fatalf("round %d: next back to %s = %q", round, sorted[pos], it.Key())
			}
		}
		it.Close()
		db.Close()
	}
	_ = bytes.Equal
}
