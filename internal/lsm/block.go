package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// SSTable data and index blocks use the LevelDB block format: entries with
// shared-prefix key compression, restart points every N entries, and a
// trailer listing restart offsets.
//
//	entry     := varint(shared) varint(unshared) varint(valueLen)
//	             keyDelta[unshared] value[valueLen]
//	trailer   := restartOffset*uint32 ... numRestarts:uint32

// blockBuilder accumulates sorted (internalKey, value) entries.
type blockBuilder struct {
	restartInterval int
	buf             bytes.Buffer
	restarts        []uint32
	counter         int
	lastKey         []byte
	entries         int
}

func newBlockBuilder(restartInterval int) *blockBuilder {
	b := &blockBuilder{restartInterval: restartInterval}
	b.reset()
	return b
}

func (b *blockBuilder) reset() {
	b.buf.Reset()
	b.restarts = b.restarts[:0]
	b.restarts = append(b.restarts, 0)
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

func (b *blockBuilder) empty() bool { return b.entries == 0 }

// estimatedSize returns the built block size so far.
func (b *blockBuilder) estimatedSize() int {
	return b.buf.Len() + 4*len(b.restarts) + 4
}

func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(b.buf.Len()))
		b.counter = 0
	}
	var tmp [3 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(shared))
	n += binary.PutUvarint(tmp[n:], uint64(len(key)-shared))
	n += binary.PutUvarint(tmp[n:], uint64(len(value)))
	b.buf.Write(tmp[:n])
	b.buf.Write(key[shared:])
	b.buf.Write(value)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

// finish appends the restart trailer and returns the raw block contents.
func (b *blockBuilder) finish() []byte {
	for _, r := range b.restarts {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], r)
		b.buf.Write(tmp[:])
	}
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.restarts)))
	b.buf.Write(tmp[:])
	return b.buf.Bytes()
}

// block is a parsed read-only block.
type block struct {
	data        []byte // entries only (trailer stripped)
	restarts    []uint32
	numRestarts int
}

func parseBlock(raw []byte) (*block, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("lsm: block too short (%d bytes)", len(raw))
	}
	numRestarts := int(binary.LittleEndian.Uint32(raw[len(raw)-4:]))
	trailer := 4 * (numRestarts + 1)
	if numRestarts < 0 || trailer > len(raw) {
		return nil, fmt.Errorf("lsm: corrupt block restart count %d", numRestarts)
	}
	restartStart := len(raw) - trailer
	restarts := make([]uint32, numRestarts)
	for i := 0; i < numRestarts; i++ {
		restarts[i] = binary.LittleEndian.Uint32(raw[restartStart+4*i:])
	}
	return &block{data: raw[:restartStart], restarts: restarts, numRestarts: numRestarts}, nil
}

// blockIterator walks a block's entries in order (both directions).
type blockIterator struct {
	b        *block
	off      int // offset of the NEXT entry to decode
	curStart int // offset where the current entry began
	key      []byte
	value    []byte
	valid    bool
	err      error
}

func (b *block) iterator() *blockIterator { return &blockIterator{b: b} }

// decodeNext parses the entry at it.off, extending it.key per prefix
// compression rules.
func (it *blockIterator) decodeNext() bool {
	if it.off >= len(it.b.data) {
		it.valid = false
		return false
	}
	it.curStart = it.off
	data := it.b.data[it.off:]
	shared, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		it.fail("bad shared varint")
		return false
	}
	unshared, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		it.fail("bad unshared varint")
		return false
	}
	valueLen, n3 := binary.Uvarint(data[n1+n2:])
	if n3 <= 0 {
		it.fail("bad value-length varint")
		return false
	}
	hdr := n1 + n2 + n3
	if uint64(len(data)) < uint64(hdr)+unshared+valueLen {
		it.fail("entry overruns block")
		return false
	}
	if uint64(shared) > uint64(len(it.key)) {
		it.fail("shared prefix longer than previous key")
		return false
	}
	it.key = append(it.key[:shared], data[hdr:hdr+int(unshared)]...)
	if len(it.key) < 8 {
		// Every valid entry carries an 8-byte internal-key trailer; a
		// shorter key means the block is corrupt (and would panic the
		// comparator).
		it.fail("key shorter than internal trailer")
		return false
	}
	it.value = data[hdr+int(unshared) : hdr+int(unshared)+int(valueLen)]
	it.off += hdr + int(unshared) + int(valueLen)
	it.valid = true
	return true
}

func (it *blockIterator) fail(msg string) {
	it.err = fmt.Errorf("lsm: corrupt block: %s", msg)
	it.valid = false
}

func (it *blockIterator) SeekToFirst() {
	it.off = 0
	it.key = it.key[:0]
	it.decodeNext()
}

// Seek positions at the first entry with internal key >= target.
func (it *blockIterator) Seek(target internalKey) {
	// Binary search restart points for the last restart whose key < target.
	n := it.b.numRestarts
	idx := sort.Search(n, func(i int) bool {
		k, ok := it.b.keyAtRestart(int(it.b.restarts[i]))
		if !ok || len(k) < 8 {
			return true
		}
		return compareIKeys(internalKey(k), target) >= 0
	})
	// Start from the restart before idx (entries there may still be < target).
	start := 0
	if idx > 0 {
		start = int(it.b.restarts[idx-1])
	}
	it.off = start
	it.key = it.key[:0]
	for it.decodeNext() {
		if compareIKeys(internalKey(it.key), target) >= 0 {
			return
		}
	}
}

// keyAtRestart decodes the full key stored at a restart offset (restart
// entries always have shared == 0).
func (b *block) keyAtRestart(off int) ([]byte, bool) {
	if off >= len(b.data) {
		return nil, false
	}
	data := b.data[off:]
	shared, n1 := binary.Uvarint(data)
	if n1 <= 0 || shared != 0 {
		return nil, false
	}
	unshared, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		return nil, false
	}
	_, n3 := binary.Uvarint(data[n1+n2:])
	if n3 <= 0 {
		return nil, false
	}
	hdr := n1 + n2 + n3
	if uint64(len(data)) < uint64(hdr)+unshared {
		return nil, false
	}
	return data[hdr : hdr+int(unshared)], true
}

func (it *blockIterator) Next() {
	if it.valid {
		it.decodeNext()
	}
}

// SeekToLast positions at the final entry.
func (it *blockIterator) SeekToLast() {
	if it.b.numRestarts == 0 || len(it.b.data) == 0 {
		it.valid = false
		return
	}
	it.scanForward(int(it.b.restarts[it.b.numRestarts-1]), len(it.b.data))
}

// Prev positions at the entry preceding the current one.
func (it *blockIterator) Prev() {
	if !it.valid {
		return
	}
	target := it.curStart
	if target == 0 {
		it.valid = false
		return
	}
	// Find the last restart strictly before the current entry, then scan
	// forward to the entry that ends at target.
	idx := sort.Search(it.b.numRestarts, func(i int) bool {
		return int(it.b.restarts[i]) >= target
	})
	start := 0
	if idx > 0 {
		start = int(it.b.restarts[idx-1])
	}
	it.scanForward(start, target)
}

// scanForward decodes entries from a restart offset until the entry whose
// successor starts at stop (or the last decodable entry before stop).
func (it *blockIterator) scanForward(start, stop int) {
	it.off = start
	it.key = it.key[:0]
	for it.decodeNext() {
		if it.off >= stop {
			return
		}
	}
}

func (it *blockIterator) Valid() bool       { return it.valid }
func (it *blockIterator) IKey() internalKey { return internalKey(it.key) }
func (it *blockIterator) Value() []byte     { return it.value }
func (it *blockIterator) Close() error      { return it.err }
