package lsm

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"lsmio/internal/vfs"
)

// Robustness: corrupt or adversarial on-disk bytes must surface as
// errors, never as panics or silent wrong answers.

func TestParseBlockNeverPanics(t *testing.T) {
	fn := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parseBlock panicked on %x: %v", raw, r)
			}
		}()
		b, err := parseBlock(raw)
		if err != nil {
			return true
		}
		// A parsed block must also iterate without panicking.
		it := b.iterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
		}
		it.Seek(makeIKey([]byte("probe"), 1, kindValue))
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWALReaderNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		fs := vfs.NewMemFS()
		f, _ := fs.Create("wal")
		junk := make([]byte, rng.Intn(3*walBlockSize))
		rng.Read(junk)
		f.Write(junk)
		g, _ := fs.Open("wal")
		r, err := newWALReader(g)
		if err != nil {
			continue
		}
		for {
			_, err := r.next()
			if err != nil {
				break // io.EOF or a structured error; both fine
			}
		}
		g.Close()
	}
}

func TestBatchDecodeGarbage(t *testing.T) {
	fn := func(raw []byte) bool {
		b, err := decodeBatch(raw)
		if err != nil {
			return true
		}
		// Decoded garbage must fail structurally, not panic.
		_ = b.forEach(func(seqNum, keyKind, []byte, []byte) error { return nil })
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruptCURRENT(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, nil)
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Close()

	// Point CURRENT at a manifest that does not exist.
	f, _ := fs.Create("db/CURRENT")
	f.Write([]byte("MANIFEST-999999\n"))
	f.Close()
	if _, err := Open("db", DefaultOptions(fs)); err == nil {
		t.Fatal("open with dangling CURRENT should fail")
	}

	// Empty CURRENT.
	f, _ = fs.Create("db/CURRENT")
	f.Close()
	if _, err := Open("db", DefaultOptions(fs)); err == nil {
		t.Fatal("open with empty CURRENT should fail")
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, nil)
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Close()

	cf, _ := fs.Open("db/CURRENT")
	nameBytes, _ := vfs.ReadAll(cf)
	cf.Close()
	manifestName := "db/" + string(bytes.TrimSpace(nameBytes))

	// Overwrite the manifest payload with a valid WAL record containing
	// JSON garbage.
	f, _ := fs.Create(manifestName)
	w := newWALWriter(f)
	w.addRecord([]byte("{not json"))
	f.Close()
	if _, err := Open("db", DefaultOptions(fs)); err == nil {
		t.Fatal("open with corrupt manifest should fail")
	}
}

func TestGetWithMissingTableFileErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, nil)
	db.Put([]byte("k"), bytes.Repeat([]byte("v"), 1000))
	db.Flush()
	db.Close()

	// Remove the table file behind the manifest's back.
	names, _ := fs.List("db")
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".sst" {
			fs.Remove("db/" + n)
		}
	}
	db2, err := Open("db", DefaultOptions(fs))
	if err != nil {
		// Also acceptable: open itself may notice. (It does not read
		// tables eagerly, so normally it succeeds.)
		return
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("k")); err == nil {
		t.Fatal("get with missing table should error")
	}
}

func TestIteratorOverMixedSourcesProperty(t *testing.T) {
	// Model comparison across memtable + flushed tables + deletes, with
	// random flush points.
	rng := rand.New(rand.NewSource(31))
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 4 << 10
	})
	defer db.Close()
	model := map[string]string{}
	for i := 0; i < 1200; i++ {
		k := fmt.Sprintf("pk%03d", rng.Intn(250))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(model, k)
		case 1:
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		default:
			v := fmt.Sprintf("val-%d", i)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	seen := map[string]string{}
	var prev string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("iterator order violated: %q after %q", k, prev)
		}
		prev = k
		seen[k] = string(it.Value())
	}
	if len(seen) != len(model) {
		t.Fatalf("iterator saw %d keys, model %d", len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("key %s: iterator %q, model %q", k, seen[k], v)
		}
	}
	// Random seeks agree with the model too.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("pk%03d", rng.Intn(250))
		it.Seek([]byte(k))
		if v, ok := model[k]; ok {
			if !it.Valid() || string(it.Key()) != k || string(it.Value()) != v {
				t.Fatalf("seek %s: got %q", k, it.Key())
			}
		} else if it.Valid() && string(it.Key()) == k {
			t.Fatalf("seek found deleted key %s", k)
		}
	}
}

func TestWriteStallEngages(t *testing.T) {
	// With a tiny buffer, a slow flush backlog must stall writers rather
	// than grow without bound.
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 4 << 10
		o.AsyncFlush = true
		o.MaxImmutableMemtables = 1
	})
	defer db.Close()
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("st%04d", i)), bytes.Repeat([]byte("x"), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.StallWaits == 0 {
		t.Fatal("expected write stalls with a 1-deep immutable queue")
	}
}

func TestReadAllHelper(t *testing.T) {
	fs := vfs.NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte("abc"))
	data, err := vfs.ReadAll(f)
	if err != nil || string(data) != "abc" {
		t.Fatalf("%q %v", data, err)
	}
	empty, _ := fs.Create("e")
	data, err = vfs.ReadAll(empty)
	if err != nil || len(data) != 0 {
		t.Fatalf("empty: %q %v", data, err)
	}
	_ = io.EOF
}
