package lsm

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"lsmio/internal/obs"
	"lsmio/internal/vfs"
)

func TestInternalKeyRoundTrip(t *testing.T) {
	ik := makeIKey([]byte("user-key"), 12345, kindValue)
	if string(ik.userKey()) != "user-key" {
		t.Fatalf("userKey = %q", ik.userKey())
	}
	if ik.seq() != 12345 {
		t.Fatalf("seq = %d", ik.seq())
	}
	if ik.kind() != kindValue {
		t.Fatalf("kind = %d", ik.kind())
	}
}

func TestInternalKeyOrdering(t *testing.T) {
	// Same user key: higher seq sorts first.
	a := makeIKey([]byte("k"), 10, kindValue)
	b := makeIKey([]byte("k"), 5, kindValue)
	if compareIKeys(a, b) >= 0 {
		t.Fatal("newer seq must sort before older")
	}
	// Different user keys: bytewise order dominates.
	c := makeIKey([]byte("a"), 1, kindValue)
	d := makeIKey([]byte("b"), 100, kindValue)
	if compareIKeys(c, d) >= 0 {
		t.Fatal("user key order must dominate")
	}
}

func TestQuickIKeyOrderMatchesSpec(t *testing.T) {
	fn := func(ka, kb []byte, sa, sb uint32) bool {
		a := makeIKey(ka, seqNum(sa), kindValue)
		b := makeIKey(kb, seqNum(sb), kindValue)
		got := compareIKeys(a, b)
		want := bytes.Compare(ka, kb)
		if want == 0 {
			switch {
			case sa > sb:
				want = -1
			case sa < sb:
				want = 1
			}
		}
		return got == want
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemtableBasic(t *testing.T) {
	m := newMemtable()
	m.add(1, kindValue, []byte("a"), []byte("1"))
	m.add(2, kindValue, []byte("b"), []byte("2"))
	m.add(3, kindValue, []byte("a"), []byte("1v2")) // overwrite

	if v, found, deleted := m.get([]byte("a"), 100); !found || deleted || string(v) != "1v2" {
		t.Fatalf("get a: %q %v %v", v, found, deleted)
	}
	// Snapshot read below the overwrite sees the old value.
	if v, found, _ := m.get([]byte("a"), 1); !found || string(v) != "1" {
		t.Fatalf("snapshot get a: %q %v", v, found)
	}
	// Snapshot read below any write sees nothing.
	if _, found, _ := m.get([]byte("b"), 1); found {
		t.Fatal("b should be invisible at seq 1")
	}
	m.add(4, kindDelete, []byte("a"), nil)
	if _, found, deleted := m.get([]byte("a"), 100); !found || !deleted {
		t.Fatal("tombstone should be found+deleted")
	}
}

func TestMemtableIterationSorted(t *testing.T) {
	m := newMemtable()
	keys := []string{"mango", "apple", "zebra", "kiwi", "banana"}
	for i, k := range keys {
		m.add(seqNum(i+1), kindValue, []byte(k), []byte(k))
	}
	var got []string
	it := m.iterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.IKey().userKey()))
	}
	want := "[apple banana kiwi mango zebra]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMemtableQuickMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := newMemtable()
	model := map[string]string{}
	seq := seqNum(0)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(300))
		seq++
		if rng.Intn(5) == 0 {
			m.add(seq, kindDelete, []byte(key), nil)
			delete(model, key)
		} else {
			val := fmt.Sprintf("val-%d", i)
			m.add(seq, kindValue, []byte(key), []byte(val))
			model[key] = val
		}
	}
	for k, want := range model {
		v, found, deleted := m.get([]byte(k), seq)
		if !found || deleted || string(v) != want {
			t.Fatalf("key %s: got %q found=%v deleted=%v want %q", k, v, found, deleted, want)
		}
	}
}

func TestBloomFilter(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 1000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("bloom-key-%d", i)))
	}
	filter := buildBloom(keys, 10)
	for _, k := range keys {
		if !bloomMayContain(filter, k) {
			t.Fatalf("false negative for %s", k)
		}
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if bloomMayContain(filter, []byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	// 10 bits/key gives ~1% theoretical FP rate; allow slack.
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestBloomEmptyAndTiny(t *testing.T) {
	f := buildBloom(nil, 10)
	_ = bloomMayContain(f, []byte("anything")) // must not panic
	f2 := buildBloom([][]byte{[]byte("only")}, 10)
	if !bloomMayContain(f2, []byte("only")) {
		t.Fatal("single key must be found")
	}
}

func TestBlockBuilderRoundTrip(t *testing.T) {
	b := newBlockBuilder(4)
	var keys []internalKey
	for i := 0; i < 100; i++ {
		ik := makeIKey([]byte(fmt.Sprintf("key-%04d", i)), seqNum(i+1), kindValue)
		keys = append(keys, ik)
		b.add(ik, []byte(fmt.Sprintf("value-%d", i)))
	}
	blk, err := parseBlock(append([]byte(nil), b.finish()...))
	if err != nil {
		t.Fatal(err)
	}
	it := blk.iterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if compareIKeys(it.IKey(), keys[i]) != 0 {
			t.Fatalf("entry %d: got %s want %s", i, it.IKey(), keys[i])
		}
		if want := fmt.Sprintf("value-%d", i); string(it.Value()) != want {
			t.Fatalf("entry %d: value %q want %q", i, it.Value(), want)
		}
		i++
	}
	if i != 100 {
		t.Fatalf("iterated %d entries", i)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSeek(t *testing.T) {
	b := newBlockBuilder(3)
	for i := 0; i < 50; i += 2 { // even keys only
		ik := makeIKey([]byte(fmt.Sprintf("k%04d", i)), 1, kindValue)
		b.add(ik, []byte("v"))
	}
	blk, err := parseBlock(append([]byte(nil), b.finish()...))
	if err != nil {
		t.Fatal(err)
	}
	it := blk.iterator()
	// Seek to an absent odd key: lands on the next even key.
	it.Seek(makeIKey([]byte("k0007"), maxSeq, kindValue))
	if !it.Valid() || string(it.IKey().userKey()) != "k0008" {
		t.Fatalf("seek landed on %v", it.IKey())
	}
	// Seek before all keys.
	it.Seek(makeIKey([]byte("a"), maxSeq, kindValue))
	if !it.Valid() || string(it.IKey().userKey()) != "k0000" {
		t.Fatalf("seek-before landed on %v", it.IKey())
	}
	// Seek past all keys.
	it.Seek(makeIKey([]byte("z"), maxSeq, kindValue))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestBatchEncodeDecode(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("alpha"), []byte("1"))
	b.Delete([]byte("beta"))
	b.Put([]byte("gamma"), bytes.Repeat([]byte("x"), 300))
	b.setSeq(100)
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	var ops []string
	err := b.forEach(func(seq seqNum, kind keyKind, key, value []byte) error {
		ops = append(ops, fmt.Sprintf("%d/%d/%s/%d", seq, kind, key, len(value)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "[100/1/alpha/1 101/0/beta/0 102/1/gamma/300]"
	if fmt.Sprint(ops) != want {
		t.Fatalf("ops = %v\nwant %v", ops, want)
	}
	// Round-trip through raw payload (the WAL path).
	b2, err := decodeBatch(b.data)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Count() != 3 || b2.seq() != 100 {
		t.Fatalf("decoded count=%d seq=%d", b2.Count(), b2.seq())
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("k"), []byte("v"))
	b.Reset()
	if b.Count() != 0 || b.Size() != batchHeaderLen {
		t.Fatalf("after reset: count=%d size=%d", b.Count(), b.Size())
	}
}

func TestWALRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	f, _ := fs.Create("wal")
	w := newWALWriter(f)
	var records [][]byte
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		// Mix tiny records and ones spanning multiple 32K blocks.
		size := rng.Intn(100)
		if i%7 == 0 {
			size = walBlockSize*2 + rng.Intn(1000)
		}
		rec := make([]byte, size)
		rng.Read(rec)
		records = append(records, rec)
		if err := w.addRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := fs.Open("wal")
	r, err := newWALReader(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range records {
		got, err := r.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if _, err := r.next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWALTornTailStopsReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	f, _ := fs.Create("wal")
	w := newWALWriter(f)
	w.addRecord([]byte("complete-record"))
	w.addRecord(bytes.Repeat([]byte("y"), 500))
	size, _ := f.Size()
	f.Truncate(size - 100) // tear the second record

	g, _ := fs.Open("wal")
	r, _ := newWALReader(g)
	got, err := r.next()
	if err != nil || string(got) != "complete-record" {
		t.Fatalf("first record: %q %v", got, err)
	}
	if _, err := r.next(); err != io.EOF {
		t.Fatalf("torn tail should read as EOF, got %v", err)
	}
}

func TestWALCorruptCRCStopsReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	f, _ := fs.Create("wal")
	w := newWALWriter(f)
	w.addRecord([]byte("good"))
	w.addRecord([]byte("will-be-corrupted"))
	// Flip a byte in the second record's payload.
	f.WriteAt([]byte{0xFF}, int64(walHeaderSize+4+walHeaderSize+3))

	g, _ := fs.Open("wal")
	r, _ := newWALReader(g)
	if got, err := r.next(); err != nil || string(got) != "good" {
		t.Fatalf("first record: %q %v", got, err)
	}
	if _, err := r.next(); err != io.EOF {
		t.Fatalf("corrupt record should end replay, got %v", err)
	}
}

func TestBlockCacheLRU(t *testing.T) {
	var hits, misses obs.Counter
	// One shard: exact global LRU order, so eviction is deterministic.
	c := newBlockCacheShards(100, 1, &hits, &misses)
	b := &block{}
	c.put(1, 0, b, 40)
	c.put(1, 40, b, 40)
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("entry 0 should be cached")
	}
	// Insert a third entry: evicts (1,40), the least recently used.
	c.put(1, 80, b, 40)
	if _, ok := c.get(1, 40); ok {
		t.Fatal("entry 40 should have been evicted")
	}
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("recently-used entry 0 should survive")
	}
	c.evictFile(1)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("evictFile should drop everything")
	}
	if hits.Load() == 0 || misses.Load() == 0 {
		t.Fatalf("stats: hits=%d misses=%d", hits.Load(), misses.Load())
	}
}

// TestBlockCacheShardedConcurrent hammers the sharded cache from many
// goroutines (get/put/evictFile interleaved) and then checks the
// bookkeeping invariants shard by shard. Run under -race this is the
// lock-contention regression test for the parallel restore read path.
func TestBlockCacheShardedConcurrent(t *testing.T) {
	var hits, misses obs.Counter
	c := newBlockCache(1<<16, &hits, &misses)
	b := &block{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				fileNum := uint64(g%4 + 1)
				off := int64(i%64) * 512
				c.put(fileNum, off, b, 256)
				c.get(fileNum, off)
				c.get(uint64(g+10), int64(i)) // guaranteed miss
				if i%500 == 499 {
					c.evictFile(fileNum)
				}
			}
		}()
	}
	wg.Wait()
	for i := range c.shards {
		s := &c.shards[i]
		if s.used > s.capacity && s.order.Len() > 1 {
			t.Fatalf("shard %d over capacity: used=%d cap=%d entries=%d",
				i, s.used, s.capacity, s.order.Len())
		}
		if s.order.Len() != len(s.items) {
			t.Fatalf("shard %d list/map mismatch: %d vs %d", i, s.order.Len(), len(s.items))
		}
		var sum int64
		for el := s.order.Front(); el != nil; el = el.Next() {
			sum += el.Value.(*cacheEntry).size
		}
		if sum != s.used {
			t.Fatalf("shard %d used accounting drifted: %d vs %d", i, s.used, sum)
		}
	}
	if hits.Load() == 0 || misses.Load() == 0 {
		t.Fatalf("stats: hits=%d misses=%d", hits.Load(), misses.Load())
	}
}

func TestSSTableWriteRead(t *testing.T) {
	for _, codec := range []string{"raw", "snappy", "flate"} {
		codec := codec
		t.Run(codec, func(t *testing.T) {
			fs := vfs.NewMemFS()
			opts := DefaultOptions(fs)
			switch codec {
			case "raw":
				opts.DisableCompression = true
			case "snappy":
				opts.Compression = CompressionSnappy
			case "flate":
				opts.Compression = CompressionFlate
			}
			f, _ := fs.Create("t.sst")
			w := newTableWriter(f, &opts, 1, nil)
			const n = 3000
			for i := 0; i < n; i++ {
				ik := makeIKey([]byte(fmt.Sprintf("key-%06d", i)), seqNum(i+1), kindValue)
				// Compressible values so flate actually engages.
				w.add(ik, bytes.Repeat([]byte{byte('a' + i%26)}, 64))
			}
			meta, err := w.finish()
			if err != nil {
				t.Fatal(err)
			}
			f.Close()
			if meta.entries != n {
				t.Fatalf("entries = %d", meta.entries)
			}
			if string(meta.smallest.userKey()) != "key-000000" ||
				string(meta.largest.userKey()) != fmt.Sprintf("key-%06d", n-1) {
				t.Fatalf("bounds: %s .. %s", meta.smallest, meta.largest)
			}

			g, _ := fs.Open("t.sst")
			r, err := openTable(g, &opts, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Point lookups.
			for _, i := range []int{0, 1, 500, 1234, n - 1} {
				v, found, deleted, err := r.get([]byte(fmt.Sprintf("key-%06d", i)), maxSeq)
				if err != nil || !found || deleted {
					t.Fatalf("get %d: found=%v deleted=%v err=%v", i, found, deleted, err)
				}
				if want := bytes.Repeat([]byte{byte('a' + i%26)}, 64); !bytes.Equal(v, want) {
					t.Fatalf("get %d: wrong value", i)
				}
			}
			// Absent keys.
			if _, found, _, err := r.get([]byte("zzz"), maxSeq); err != nil || found {
				t.Fatalf("absent key: found=%v err=%v", found, err)
			}
			if _, found, _, err := r.get([]byte("key-0000005x"), maxSeq); err != nil || found {
				t.Fatalf("absent key 2: found=%v err=%v", found, err)
			}
			// Full scan.
			it := r.iterator()
			count := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				count++
			}
			if count != n {
				t.Fatalf("scan count = %d", count)
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSSTableSeek(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := DefaultOptions(fs)
	f, _ := fs.Create("t.sst")
	w := newTableWriter(f, &opts, 1, nil)
	for i := 0; i < 1000; i += 2 {
		w.add(makeIKey([]byte(fmt.Sprintf("k%06d", i)), 1, kindValue), []byte("v"))
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, _ := fs.Open("t.sst")
	r, err := openTable(g, &opts, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.iterator()
	it.Seek(makeIKey([]byte("k000501"), maxSeq, kindValue))
	if !it.Valid() || string(it.IKey().userKey()) != "k000502" {
		t.Fatalf("seek landed on %s", it.IKey())
	}
	it.Seek(makeIKey([]byte("zzzz"), maxSeq, kindValue))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestSSTableDetectsCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := DefaultOptions(fs)
	opts.DisableCompression = true
	f, _ := fs.Create("t.sst")
	w := newTableWriter(f, &opts, 1, nil)
	for i := 0; i < 500; i++ {
		w.add(makeIKey([]byte(fmt.Sprintf("k%06d", i)), 1, kindValue), bytes.Repeat([]byte("v"), 50))
	}
	if _, err := w.finish(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte early in the first data block.
	f.WriteAt([]byte{0xAA}, 20)
	f.Close()
	g, _ := fs.Open("t.sst")
	r, err := openTable(g, &opts, 1, nil)
	if err != nil {
		t.Fatal(err) // index block is at the end, still intact
	}
	if _, _, _, err := r.get([]byte("k000001"), maxSeq); err == nil {
		t.Fatal("expected checksum error reading corrupted block")
	}
}

func TestMergingIterator(t *testing.T) {
	m1, m2 := newMemtable(), newMemtable()
	m1.add(1, kindValue, []byte("a"), []byte("m1"))
	m1.add(2, kindValue, []byte("c"), []byte("m1"))
	m2.add(3, kindValue, []byte("b"), []byte("m2"))
	m2.add(4, kindValue, []byte("a"), []byte("m2-newer"))
	mi := newMergingIterator([]internalIterator{m1.iterator(), m2.iterator()})
	var got []string
	for mi.SeekToFirst(); mi.Valid(); mi.Next() {
		got = append(got, fmt.Sprintf("%s@%d", mi.IKey().userKey(), mi.IKey().seq()))
	}
	// "a" appears twice: seq 4 (newer) then seq 1.
	want := "[a@4 a@1 b@3 c@2]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
}
