package lsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lsmio/internal/vfs"
)

func TestRepairRebuildsLostManifest(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) { o.WriteBufferSize = 16 << 10 })
	model := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("r%04d", i%120) // overwrites across tables
		v := fmt.Sprintf("val-%d", i)
		db.Put([]byte(k), []byte(v))
		model[k] = v
	}
	db.Delete([]byte("r0007"))
	delete(model, "r0007")
	db.Flush()
	db.Close()

	// Catastrophe: metadata gone.
	fs.Remove("db/CURRENT")
	for _, n := range mustList(t, fs, "db") {
		if strings.HasPrefix(n, "MANIFEST-") {
			fs.Remove("db/" + n)
		}
	}
	if _, err := Open("db", DefaultOptions(fs)); err == nil {
		t.Fatal("open without metadata should fail before repair")
	}

	sum, err := Repair("db", DefaultOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TablesRecovered == 0 || sum.EntriesRecovered == 0 {
		t.Fatalf("summary: %+v", sum)
	}

	db2 := openTestDB(t, fs, nil)
	defer db2.Close()
	for k, want := range model {
		v, err := db2.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("after repair %s = %q, %v; want %q", k, v, err, want)
		}
	}
	if _, err := db2.Get([]byte("r0007")); err != ErrNotFound {
		t.Fatalf("deleted key resurrected: %v", err)
	}
	if err := db2.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairSalvagesWAL(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, nil) // WAL on by default
	for i := 0; i < 40; i++ {
		db.Put([]byte(fmt.Sprintf("w%02d", i)), []byte("wal-data"))
	}
	// Crash without flush or close: data lives only in the WAL. Then the
	// metadata is lost too.
	fs.Remove("db/CURRENT")
	for _, n := range mustList(t, fs, "db") {
		if strings.HasPrefix(n, "MANIFEST-") {
			fs.Remove("db/" + n)
		}
	}
	sum, err := Repair("db", DefaultOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if sum.LogRecordsRecovered != 40 {
		t.Fatalf("recovered %d log records", sum.LogRecordsRecovered)
	}
	db2 := openTestDB(t, fs, nil)
	defer db2.Close()
	for i := 0; i < 40; i++ {
		if v, err := db2.Get([]byte(fmt.Sprintf("w%02d", i))); err != nil || string(v) != "wal-data" {
			t.Fatalf("w%02d after repair: %q %v", i, v, err)
		}
	}
}

func TestRepairSkipsCorruptTable(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) {
		o.WriteBufferSize = 8 << 10
		o.DisableCompression = true
		o.DisableCompaction = true // keep several independent L0 tables
	})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("c%04d", i)), bytes.Repeat([]byte("x"), 200))
	}
	db.Flush()
	db.Close()

	// Destroy one table's contents entirely.
	var victim string
	for _, n := range mustList(t, fs, "db") {
		if strings.HasSuffix(n, ".sst") {
			victim = n
			break
		}
	}
	f, _ := fs.Create("db/" + victim) // truncate to nothing
	f.Write([]byte("not a table"))
	f.Close()
	fs.Remove("db/CURRENT")

	sum, err := Repair("db", DefaultOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TablesSkipped != 1 || len(sum.Problems) != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	// The rest of the data is back.
	db2 := openTestDB(t, fs, nil)
	defer db2.Close()
	it, _ := db2.NewIterator()
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if count == 0 || count >= 200 {
		t.Fatalf("recovered %d keys; expected partial recovery", count)
	}
}

func TestRepairShadowingOrder(t *testing.T) {
	// Two tables hold different versions of one key: repair must keep the
	// newer version (higher file number) on top.
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) { o.DisableCompaction = true })
	db.Put([]byte("dup"), []byte("old"))
	db.Flush()
	db.Put([]byte("dup"), []byte("new"))
	db.Flush()
	db.Close()
	fs.Remove("db/CURRENT")

	if _, err := Repair("db", DefaultOptions(fs)); err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, fs, nil)
	defer db2.Close()
	if v, err := db2.Get([]byte("dup")); err != nil || string(v) != "new" {
		t.Fatalf("dup = %q, %v; repair broke shadowing", v, err)
	}
}

func mustList(t *testing.T, fs vfs.FS, dir string) []string {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestSalvageLogTruncatedTail(t *testing.T) {
	// A crash mid-write leaves the WAL's final record cut inside its
	// payload. salvageLog must keep every complete record and stop cleanly
	// at the torn tail.
	fs := vfs.NewMemFS()
	fs.MkdirAll("db")
	f, err := fs.Create(logFileName("db", 7))
	if err != nil {
		t.Fatal(err)
	}
	w := newWALWriter(f)
	const complete = 5
	for i := 0; i < complete; i++ {
		b := NewBatch()
		b.Put([]byte(fmt.Sprintf("key%02d", i)), bytes.Repeat([]byte{byte('a' + i)}, 100))
		b.setSeq(seqNum(i + 1))
		if err := w.addRecord(b.data); err != nil {
			t.Fatal(err)
		}
	}
	// One more record, then cut mid-payload.
	b := NewBatch()
	b.Put([]byte("tail"), bytes.Repeat([]byte("z"), 300))
	b.setSeq(seqNum(complete + 1))
	if err := w.addRecord(b.data); err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(size - 150); err != nil {
		t.Fatal(err)
	}
	f.Close()

	records, lastSeq := salvageLog(fs, "db", 7)
	if records != complete {
		t.Fatalf("salvaged %d records, want %d", records, complete)
	}
	if want := seqNum(complete + 1); lastSeq != want {
		t.Fatalf("lastSeq = %d, want %d", lastSeq, want)
	}

	// The replay keeps exactly the complete records.
	mem := newMemtable()
	if err := salvageLogInto(fs, "db", 7, mem); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < complete; i++ {
		k := []byte(fmt.Sprintf("key%02d", i))
		v, found, deleted := mem.get(k, maxSeq)
		if !found || deleted || len(v) != 100 {
			t.Fatalf("%s missing after salvage: found=%v deleted=%v len=%d", k, found, deleted, len(v))
		}
	}
	if _, found, _ := mem.get([]byte("tail"), maxSeq); found {
		t.Fatal("torn record's key survived salvage")
	}
}
