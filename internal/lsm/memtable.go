package lsm

// The memtable is a skiplist keyed by internal keys, the C0 tree of the
// LSM paper (O'Neil et al., 1996). Inserts are O(log n); iteration is in
// sorted order. The skiplist's level generator is seeded deterministically
// so that simulations are reproducible.

const (
	maxSkipHeight = 12
	skipBranching = 4
)

type skipNode struct {
	ikey  internalKey
	value []byte
	next  []*skipNode
}

type memtable struct {
	head   *skipNode
	height int
	rnd    uint64 // xorshift state
	size   int64  // approximate memory usage in bytes
	count  int
}

func newMemtable() *memtable {
	return &memtable{
		head:   &skipNode{next: make([]*skipNode, maxSkipHeight)},
		height: 1,
		rnd:    0x9E3779B97F4A7C15, // fixed seed: deterministic shape
	}
}

func (m *memtable) randomHeight() int {
	h := 1
	for h < maxSkipHeight {
		m.rnd ^= m.rnd << 13
		m.rnd ^= m.rnd >> 7
		m.rnd ^= m.rnd << 17
		if m.rnd%skipBranching != 0 {
			break
		}
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with ikey >= key, filling prev
// (when non-nil) with the rightmost node before key at every level.
func (m *memtable) findGreaterOrEqual(key internalKey, prev []*skipNode) *skipNode {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil && compareIKeys(next.ikey, key) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findLessThan returns the last node with ikey < key, or nil if none.
func (m *memtable) findLessThan(key internalKey) *skipNode {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil && compareIKeys(next.ikey, key) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findLast returns the last node, or nil when empty.
func (m *memtable) findLast() *skipNode {
	x := m.head
	level := m.height - 1
	for {
		next := x.next[level]
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == m.head {
				return nil
			}
			return x
		}
		level--
	}
}

// add inserts an entry. Keys are unique per (userKey, seq, kind) because
// the sequence number increases on every write.
func (m *memtable) add(seq seqNum, kind keyKind, userKey, value []byte) {
	ik := makeIKey(userKey, seq, kind)
	var prev [maxSkipHeight]*skipNode
	m.findGreaterOrEqual(ik, prev[:])
	h := m.randomHeight()
	if h > m.height {
		for i := m.height; i < h; i++ {
			prev[i] = m.head
		}
		m.height = h
	}
	n := &skipNode{ikey: ik, value: value, next: make([]*skipNode, h)}
	for i := 0; i < h; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	m.size += int64(len(ik) + len(value) + 48) // entry + node overhead
	m.count++
}

// get looks up userKey at snapshot seq. It returns (value, true, nil-err)
// for a live entry, (nil, true, ...) deleted=true semantics folded:
// found reports whether any entry for the key exists at or below seq;
// deleted reports whether the newest such entry is a tombstone.
func (m *memtable) get(userKey []byte, seq seqNum) (value []byte, found, deleted bool) {
	n := m.findGreaterOrEqual(lookupKey(userKey, seq), nil)
	if n == nil || string(n.ikey.userKey()) != string(userKey) {
		return nil, false, false
	}
	if n.ikey.kind() == kindDelete {
		return nil, true, true
	}
	return n.value, true, false
}

// approximateSize returns the memtable's memory footprint in bytes.
func (m *memtable) approximateSize() int64 { return m.size }

// empty reports whether the memtable holds no entries.
func (m *memtable) empty() bool { return m.count == 0 }

// iterator returns a sorted iterator over all internal entries.
func (m *memtable) iterator() *memIterator {
	return &memIterator{m: m}
}

// memIterator walks the skiplist in internal-key order. It satisfies the
// internal iterator contract used by the merging iterator.
type memIterator struct {
	m *memtable
	n *skipNode
}

func (it *memIterator) SeekToFirst()        { it.n = it.m.head.next[0] }
func (it *memIterator) SeekToLast()         { it.n = it.m.findLast() }
func (it *memIterator) Seek(ik internalKey) { it.n = it.m.findGreaterOrEqual(ik, nil) }
func (it *memIterator) Next()               { it.n = it.n.next[0] }
func (it *memIterator) Prev() {
	if it.n != nil {
		it.n = it.m.findLessThan(it.n.ikey)
	}
}
func (it *memIterator) Valid() bool       { return it.n != nil }
func (it *memIterator) IKey() internalKey { return it.n.ikey }
func (it *memIterator) Value() []byte     { return it.n.value }
func (it *memIterator) Close() error      { return nil }
