package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// keyKind distinguishes live values from tombstones in internal keys.
type keyKind uint8

const (
	kindDelete keyKind = 0
	kindValue  keyKind = 1
)

// seqNum is a global, monotonically increasing write sequence number. It
// orders overlapping entries: a higher sequence number shadows a lower one
// for the same user key.
type seqNum uint64

const maxSeq = seqNum(1)<<56 - 1

// internalKey is userKey + an 8-byte trailer: (seq << 8) | kind.
// Internal keys sort by user key ascending, then by sequence number
// descending (newest first), then by kind descending — the LevelDB order.
type internalKey []byte

// makeIKey builds an internal key from its parts.
func makeIKey(userKey []byte, seq seqNum, kind keyKind) internalKey {
	ik := make([]byte, len(userKey)+8)
	copy(ik, userKey)
	binary.LittleEndian.PutUint64(ik[len(userKey):], uint64(seq)<<8|uint64(kind))
	return ik
}

// userKey returns the user portion of an internal key.
func (ik internalKey) userKey() []byte { return ik[:len(ik)-8] }

// seq returns the sequence number.
func (ik internalKey) seq() seqNum {
	return seqNum(binary.LittleEndian.Uint64(ik[len(ik)-8:]) >> 8)
}

// kind returns the entry kind.
func (ik internalKey) kind() keyKind {
	return keyKind(ik[len(ik)-8] & 0xff)
}

// valid reports whether ik is long enough to carry a trailer.
func (ik internalKey) valid() bool { return len(ik) >= 8 }

func (ik internalKey) String() string {
	if !ik.valid() {
		return fmt.Sprintf("invalid:%x", []byte(ik))
	}
	return fmt.Sprintf("%q#%d,%d", ik.userKey(), ik.seq(), ik.kind())
}

// compareIKeys orders internal keys: user key ascending, then sequence
// descending, then kind descending.
func compareIKeys(a, b internalKey) int {
	if c := bytes.Compare(a.userKey(), b.userKey()); c != 0 {
		return c
	}
	ta := binary.LittleEndian.Uint64(a[len(a)-8:])
	tb := binary.LittleEndian.Uint64(b[len(b)-8:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// lookupKey returns the internal key that starts a search for userKey at
// snapshot seq: the largest internal key <= any entry for userKey with
// sequence <= seq.
func lookupKey(userKey []byte, seq seqNum) internalKey {
	return makeIKey(userKey, seq, kindValue)
}
