package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"lsmio/internal/vfs"
)

// Write-ahead log, LevelDB record framing: the file is a sequence of 32 KB
// blocks; each record is split into fragments that never span a block
// boundary.
//
//	fragment := crc32(4) length(2) type(1) payload
//	type     := full | first | middle | last
const (
	walBlockSize  = 32 << 10
	walHeaderSize = 7

	recFull   = 1
	recFirst  = 2
	recMiddle = 3
	recLast   = 4
)

// walWriter appends records to a log file.
type walWriter struct {
	f        vfs.File
	off      int64 // bytes successfully written to f
	blockOff int   // offset within the current 32 KB block
	buf      []byte
}

func newWALWriter(f vfs.File) *walWriter { return &walWriter{f: f} }

// addRecord appends one record, fragmenting across block boundaries.
//
// Failure model: a failed write may still have persisted a prefix of its
// bytes (a torn write), so on any write error the position model is
// resynchronized from the file itself (resync) instead of being left
// where a clean failure would have put it. Without that, a retried
// append after a failed pad write would pad again past the block
// boundary and land the next record header mid-block — the reader then
// misparses the header and silently truncates replay at that point.
func (w *walWriter) addRecord(data []byte) error {
	first := true
	for {
		leftover := walBlockSize - w.blockOff
		if leftover < walHeaderSize {
			// Pad the tail of the block with zeros.
			if leftover > 0 {
				if _, err := w.f.Write(make([]byte, leftover)); err != nil {
					w.resync()
					return err
				}
				w.off += int64(leftover)
			}
			w.blockOff = 0
			continue
		}
		avail := walBlockSize - w.blockOff - walHeaderSize
		n := len(data)
		if n > avail {
			n = avail
		}
		var typ byte
		switch {
		case first && n == len(data):
			typ = recFull
		case first:
			typ = recFirst
		case n == len(data):
			typ = recLast
		default:
			typ = recMiddle
		}
		if err := w.emit(typ, data[:n]); err != nil {
			return err
		}
		data = data[n:]
		first = false
		if len(data) == 0 {
			return nil
		}
	}
}

func (w *walWriter) emit(typ byte, payload []byte) error {
	w.buf = w.buf[:0]
	var hdr [walHeaderSize]byte
	crc := crc32.Checksum([]byte{typ}, crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[0:], crc)
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(payload)))
	hdr[6] = typ
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		w.resync()
		return err
	}
	w.off += int64(len(w.buf))
	w.blockOff += len(w.buf)
	if w.blockOff == walBlockSize {
		w.blockOff = 0
	}
	return nil
}

// resync realigns the writer's position model with the bytes that
// actually reached the file after a failed write: a torn write may have
// persisted any prefix, and the file is the only source of truth. If
// even the size probe fails the model is left untouched — the caller is
// expected to stop using the log (the DB poisons itself on WAL errors).
func (w *walWriter) resync() {
	if size, err := w.f.Size(); err == nil {
		w.off = size
		w.blockOff = int(size % walBlockSize)
	}
}

// tell returns the number of bytes successfully appended so far; the
// group-commit leader records it before an append so a failed cohort's
// partial record can be rolled back.
func (w *walWriter) tell() int64 { return w.off }

// rollback truncates the log to off, discarding a suspect tail (e.g. a
// record whose append or fsync failed): even a reopen without a crash
// must never resurrect a write whose caller saw an error.
func (w *walWriter) rollback(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	w.off = off
	w.blockOff = int(off % walBlockSize)
	return nil
}

// sync flushes the log to stable storage.
func (w *walWriter) sync() error { return w.f.Sync() }

// close closes the underlying file.
func (w *walWriter) close() error { return w.f.Close() }

// walReader replays a log file record by record.
type walReader struct {
	f        vfs.File
	off      int64
	size     int64
	blockOff int
	frag     []byte
}

func newWALReader(f vfs.File) (*walReader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	return &walReader{f: f, size: size}, nil
}

// next returns the next record, or io.EOF at the end of the log. A torn
// tail (partial final record, as after a crash) also ends iteration.
func (r *walReader) next() ([]byte, error) {
	var record []byte
	inFragmented := false
	for {
		leftover := walBlockSize - r.blockOff
		if leftover < walHeaderSize {
			r.off += int64(leftover)
			r.blockOff = 0
			continue
		}
		if r.off+walHeaderSize > r.size {
			return nil, io.EOF
		}
		var hdr [walHeaderSize]byte
		if _, err := r.f.ReadAt(hdr[:], r.off); err != nil && err != io.EOF {
			return nil, err
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		length := int(binary.LittleEndian.Uint16(hdr[4:]))
		typ := hdr[6]
		if typ == 0 && length == 0 && wantCRC == 0 {
			// Zero padding / preallocated space: end of log.
			return nil, io.EOF
		}
		if r.off+walHeaderSize+int64(length) > r.size {
			return nil, io.EOF // torn write at the tail
		}
		payload := make([]byte, length)
		if _, err := r.f.ReadAt(payload, r.off+walHeaderSize); err != nil && err != io.EOF {
			return nil, err
		}
		crc := crc32.Checksum([]byte{typ}, crcTable)
		crc = crc32.Update(crc, crcTable, payload)
		if crc != wantCRC {
			return nil, io.EOF // corrupt tail: stop replay
		}
		r.off += int64(walHeaderSize + length)
		r.blockOff += walHeaderSize + length
		if r.blockOff >= walBlockSize {
			r.blockOff = 0
		}
		switch typ {
		case recFull:
			if inFragmented {
				return nil, fmt.Errorf("lsm: wal: full record inside fragmented record")
			}
			return payload, nil
		case recFirst:
			if inFragmented {
				return nil, fmt.Errorf("lsm: wal: first record inside fragmented record")
			}
			inFragmented = true
			record = append(record[:0], payload...)
		case recMiddle:
			if !inFragmented {
				return nil, fmt.Errorf("lsm: wal: middle record outside fragmented record")
			}
			record = append(record, payload...)
		case recLast:
			if !inFragmented {
				return nil, fmt.Errorf("lsm: wal: last record outside fragmented record")
			}
			return append(record, payload...), nil
		default:
			return nil, fmt.Errorf("lsm: wal: unknown record type %d", typ)
		}
	}
}
