package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"lsmio/internal/faultfs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

func readWholeFile(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return buf
}

func listTables(t *testing.T, fs vfs.FS) []string {
	t.Helper()
	names, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	var ssts []string
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".sst" {
			ssts = append(ssts, n)
		}
	}
	sort.Strings(ssts)
	return ssts
}

// TestPipelinedTableBytesIdentical: the encode pipeline reorders work,
// not bytes. A flush through N encoder workers must produce exactly the
// file the serial writer produces — same block boundaries, same
// compression decisions, same bloom filter, same index and footer. This
// is what lets the pipeline default on without invalidating any
// calibrated figure or on-disk expectation.
func TestPipelinedTableBytesIdentical(t *testing.T) {
	build := func(workers int) vfs.FS {
		fs := vfs.NewMemFS()
		db := openTestDB(t, fs, func(o *Options) {
			o.EncodeWorkers = workers
			o.DisableCompaction = true
		})
		// Mixed workload: compressible values exercise the snappy path,
		// random values the stored-raw fallback, so both sides of the
		// per-block compression decision are covered.
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 400; i++ {
			val := make([]byte, 1024)
			if i%2 == 0 {
				for j := range val {
					val[j] = byte('a' + j%4)
				}
			} else {
				rng.Read(val)
			}
			if err := db.Put([]byte(fmt.Sprintf("pk%05d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	serialFS := build(0)
	pipedFS := build(4)

	serialTables := listTables(t, serialFS)
	pipedTables := listTables(t, pipedFS)
	if len(serialTables) == 0 {
		t.Fatal("flush produced no tables")
	}
	if fmt.Sprint(serialTables) != fmt.Sprint(pipedTables) {
		t.Fatalf("table sets differ: serial %v, piped %v", serialTables, pipedTables)
	}
	for _, name := range serialTables {
		a := readWholeFile(t, serialFS, "db/"+name)
		b := readWholeFile(t, pipedFS, "db/"+name)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between serial (%d bytes) and piped (%d bytes) builds", name, len(a), len(b))
		}
	}
}

// TestPipelinedCompactionStress runs overwrites and deletes through
// background flushes and multi-job compactions with the encode pipeline
// enabled, then verifies every surviving key and all block checksums.
// Under -race (make check) this is the data-race gate for the
// encoder/writer handoff.
func TestPipelinedCompactionStress(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 16 << 10
		o.L0CompactionTrigger = 2
		o.BaseLevelSize = 32 << 10
		o.LevelSizeMultiplier = 2
		o.EncodeWorkers = 3
		o.MaxBackgroundJobs = 2
		o.AsyncFlush = true
	})
	defer db.Close()

	want := map[string]string{}
	payload := bytes.Repeat([]byte("p"), 256)
	for i := 0; i < 1200; i++ {
		key := fmt.Sprintf("st%04d", i%300)
		if i%17 == 16 {
			if err := db.Delete([]byte(key)); err != nil {
				t.Fatal(err)
			}
			delete(want, key)
			continue
		}
		val := fmt.Sprintf("%s-%05d", payload, i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for key, val := range want {
		got, err := db.Get([]byte(key))
		if err != nil || string(got) != val {
			t.Fatalf("%s: got %q, %v", key, got, err)
		}
	}
	if err := db.VerifyChecksums(); err != nil {
		t.Fatalf("checksum verification after piped compaction: %v", err)
	}
	if db.m.pipeBlocks.Load() == 0 {
		t.Fatal("pipeline never ran: pipeline.blocks is zero")
	}
}

// TestPipelinedCompactionCleansPartialOutputsOnError re-runs the
// compaction fault-injection gate with the pipeline enabled: a failing
// output write or create must abort the encoder/writer tasks without
// hanging, leak no partial tables, and leave the tree readable.
func TestPipelinedCompactionCleansPartialOutputsOnError(t *testing.T) {
	for _, rule := range []faultfs.Rule{
		{Op: faultfs.OpWrite, Path: ".sst", Nth: 3},
		{Op: faultfs.OpCreate, Path: ".sst", Nth: 1},
	} {
		rule := rule
		t.Run(rule.Op.String(), func(t *testing.T) {
			ffs := faultfs.New(vfs.NewMemFS())
			opts := DefaultOptions(ffs)
			smallTreeOpts(&opts)
			opts.EncodeWorkers = 3
			opts.DisableCompaction = true // drive the failing compaction manually
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("e"), 300)
			for i := 0; i < 300; i++ {
				if err := db.Put([]byte(fmt.Sprintf("pe%04d", i%120)), payload); err != nil {
					t.Fatal(err)
				}
				if i%60 == 59 {
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}

			live := map[string]bool{}
			names, _ := ffs.List("db")
			for _, n := range names {
				live[n] = true
			}
			ffs.AddRule(&rule)
			if err := db.CompactAll(); err == nil {
				t.Fatal("piped compaction with injected table fault should fail")
			}
			ffs.ClearRules()

			names, err = ffs.List("db")
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range names {
				if len(n) > 4 && n[len(n)-4:] == ".sst" && !live[n] {
					t.Fatalf("failed piped compaction leaked output table %s", n)
				}
			}
			db.Close()

			opts.FS = ffs
			opts.Platform = nil
			db2, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			for i := 0; i < 120; i++ {
				if _, err := db2.Get([]byte(fmt.Sprintf("pe%04d", i))); err != nil {
					t.Fatalf("pe%04d after failed compaction: %v", i, err)
				}
			}
		})
	}
}

// TestPipelinedFlushPropagatesWriteError: a write fault on the flush
// output must surface from Flush (no hang waiting on the writer task)
// and leave no partial table behind.
func TestPipelinedFlushPropagatesWriteError(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	db := openTestDB(t, ffs, func(o *Options) {
		o.EncodeWorkers = 2
		o.DisableCompaction = true
	})
	payload := bytes.Repeat([]byte("f"), 512)
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("ff%04d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	ffs.AddRule(&faultfs.Rule{Op: faultfs.OpWrite, Path: ".sst", Nth: 2})
	if err := db.Flush(); err == nil {
		t.Fatal("flush with injected .sst write fault should fail")
	}
	ffs.ClearRules()
	names, err := ffs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".sst" {
			t.Fatalf("failed flush leaked partial table %s", n)
		}
	}
}

// TestPipelineSimSpeedup is the deterministic performance guard: on the
// simulator, with a modeled encode cost, four encoder workers must beat
// the serial builder by a wide margin on the same flush. This is the
// same mechanism the ext-pipeline figure measures, reduced to a unit
// test that runs in milliseconds of wall time.
func TestPipelineSimSpeedup(t *testing.T) {
	run := func(workers int) time.Duration {
		k := sim.NewKernel()
		var dur time.Duration
		k.Spawn("flush", func(p *sim.Proc) {
			opts := DefaultOptions(vfs.NewMemFS())
			opts.Platform = SimPlatform(k)
			opts.EncodeWorkers = workers
			opts.EncodeCostPerMB = 8 * time.Millisecond
			opts.DisableWAL = true
			opts.DisableCompaction = true
			opts.WriteBufferSize = 64 << 20
			db, err := Open("db", opts)
			if err != nil {
				t.Error(err)
				return
			}
			payload := bytes.Repeat([]byte("x"), 4096)
			for i := 0; i < 1024; i++ {
				if err := db.Put([]byte(fmt.Sprintf("sim%05d", i)), payload); err != nil {
					t.Error(err)
					return
				}
			}
			start := opts.Platform.Now()
			if err := db.Flush(); err != nil {
				t.Error(err)
				return
			}
			dur = opts.Platform.Now() - start
			if err := db.Close(); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return dur
	}

	serial := run(0)
	piped := run(4)
	if t.Failed() {
		return
	}
	if serial == 0 || piped == 0 {
		t.Fatalf("flush durations not captured (serial %v, piped %v)", serial, piped)
	}
	if piped*2 >= serial {
		t.Fatalf("4 encode workers give no speedup: serial flush %v, piped %v", serial, piped)
	}
}
