package lsm

import (
	"bytes"
	"testing"

	"lsmio/internal/snappy"
	"lsmio/internal/vfs"
)

// Native fuzz targets (run as seed-corpus unit tests under `go test`, and
// as fuzzers under `go test -fuzz`). They harden the three parsers that
// consume on-disk bytes.

func FuzzParseBlock(f *testing.F) {
	// Seed with a real block.
	b := newBlockBuilder(4)
	for i := 0; i < 10; i++ {
		b.add(makeIKey([]byte{byte('a' + i)}, seqNum(i+1), kindValue), []byte("v"))
	}
	f.Add(append([]byte(nil), b.finish()...))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		blk, err := parseBlock(raw)
		if err != nil {
			return
		}
		it := blk.iterator()
		n := 0
		for it.SeekToFirst(); it.Valid() && n < 10000; it.Next() {
			n++
		}
		it.Seek(makeIKey([]byte("q"), 1, kindValue))
		if it.Valid() {
			it.Prev()
		}
	})
}

func FuzzWALReader(f *testing.F) {
	fs := vfs.NewMemFS()
	wf, _ := fs.Create("seed")
	w := newWALWriter(wf)
	w.addRecord([]byte("seed-record"))
	seed, _ := vfs.ReadAll(wf)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m := vfs.NewMemFS()
		g, _ := m.Create("w")
		g.Write(raw)
		r, err := newWALReader(g)
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			if _, err := r.next(); err != nil {
				return
			}
		}
	})
}

func FuzzSnappyDecode(f *testing.F) {
	f.Add(snappy.Encode(nil, []byte("seed data seed data seed data")))
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		out, err := snappy.Decode(nil, raw)
		if err != nil {
			return
		}
		// A successful decode must re-encode and decode to the same bytes.
		redec, err := snappy.Decode(nil, snappy.Encode(nil, out))
		if err != nil || !bytes.Equal(redec, out) {
			t.Fatalf("re-round-trip failed: %v", err)
		}
	})
}

func FuzzBatchDecode(f *testing.F) {
	b := NewBatch()
	b.Put([]byte("k"), []byte("v"))
	b.setSeq(1)
	f.Add(append([]byte(nil), b.data...))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := decodeBatch(append([]byte(nil), raw...))
		if err != nil {
			return
		}
		_ = dec.forEach(func(seqNum, keyKind, []byte, []byte) error { return nil })
	})
}
