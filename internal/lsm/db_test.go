package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lsmio/internal/vfs"
)

func openTestDB(t *testing.T, fs vfs.FS, mutate func(*Options)) *DB {
	t.Helper()
	opts := DefaultOptions(fs)
	if mutate != nil {
		mutate(&opts)
	}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
	// Overwrite.
	db.Put([]byte("k2"), []byte("a"))
	db.Put([]byte("k2"), []byte("b"))
	if v, _ := db.Get([]byte("k2")); string(v) != "b" {
		t.Fatalf("overwrite: %q", v)
	}
}

func TestGetAfterFlush(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if files := db.NumTableFiles(); files[0] == 0 {
		t.Fatal("flush should have produced an L0 table")
	}
	for i := 0; i < 100; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d after flush: %q %v", i, v, err)
		}
	}
	// A write after the flush shadows the table entry.
	db.Put([]byte("key-050"), []byte("newer"))
	if v, _ := db.Get([]byte("key-050")); string(v) != "newer" {
		t.Fatalf("shadow: %q", v)
	}
	// A delete after the flush hides the table entry.
	db.Delete([]byte("key-051"))
	if _, err := db.Get([]byte("key-051")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete-after-flush: %v", err)
	}
}

func TestAutomaticMemtableRotation(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 32 << 10
		o.DisableCompaction = true
	})
	defer db.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	files := db.NumTableFiles()
	if files[0] < 3 {
		t.Fatalf("expected several L0 files from rotation, got %d", files[0])
	}
	for i := 0; i < 200; i++ {
		if v, err := db.Get([]byte(fmt.Sprintf("k%04d", i))); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("k%04d: err=%v", i, err)
		}
	}
	if s := db.Stats(); s.Flushes < 3 || s.BytesFlushed == 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, nil)
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("wal-%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("wal-10"))
	// No flush: simulate a crash by reopening without Close.
	db2 := openTestDB(t, fs, nil)
	defer db2.Close()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("wal-%02d", i)
		v, err := db2.Get([]byte(key))
		if i == 10 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key survived recovery: %q %v", v, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %s after recovery: %q %v", key, v, err)
		}
	}
}

func TestRecoveryWithoutWALNeedsFlush(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) { o.DisableWAL = true })
	db.Put([]byte("flushed"), []byte("yes"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("unflushed"), []byte("lost"))
	// Crash: reopen without Close or Flush.
	db2 := openTestDB(t, fs, func(o *Options) { o.DisableWAL = true })
	defer db2.Close()
	if v, err := db2.Get([]byte("flushed")); err != nil || string(v) != "yes" {
		t.Fatalf("flushed key: %q %v", v, err)
	}
	// Without a WAL, unflushed data is gone — the documented contract.
	if _, err := db2.Get([]byte("unflushed")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unflushed key should be lost, got err=%v", err)
	}
}

func TestRecoveryAcrossManyReopens(t *testing.T) {
	fs := vfs.NewMemFS()
	total := 0
	for round := 0; round < 5; round++ {
		db := openTestDB(t, fs, nil)
		for i := 0; i < 30; i++ {
			db.Put([]byte(fmt.Sprintf("r%d-k%02d", round, i)), []byte("v"))
			total++
		}
		if round%2 == 0 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	db := openTestDB(t, fs, nil)
	defer db.Close()
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if count != total {
		t.Fatalf("recovered %d keys, want %d", count, total)
	}
}

func TestIteratorOrderAndSnapshot(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) { o.WriteBufferSize = 16 << 10 })
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("it-%03d", i)), bytes.Repeat([]byte("v"), 200))
	}
	db.Delete([]byte("it-050"))
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	// Writes after iterator creation must be invisible.
	db.Put([]byte("it-200"), []byte("late"))
	db.Put([]byte("it-000"), []byte("mutated"))

	var keys []string
	prev := ""
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		if k <= prev && prev != "" {
			t.Fatalf("keys out of order: %s after %s", k, prev)
		}
		prev = k
		keys = append(keys, k)
		if k == "it-000" && string(it.Value()) == "mutated" {
			t.Fatal("snapshot isolation violated")
		}
	}
	if len(keys) != 99 { // 100 - 1 deleted
		t.Fatalf("iterated %d keys", len(keys))
	}
	for _, k := range keys {
		if k == "it-050" || k == "it-200" {
			t.Fatalf("unexpected key %s", k)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorSeek(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	for i := 0; i < 100; i += 2 {
		db.Put([]byte(fmt.Sprintf("s%03d", i)), []byte("v"))
	}
	db.Flush()
	it, _ := db.NewIterator()
	defer it.Close()
	it.Seek([]byte("s051"))
	if !it.Valid() || string(it.Key()) != "s052" {
		t.Fatalf("seek landed on %q", it.Key())
	}
	it.Seek([]byte("s098"))
	if !it.Valid() || string(it.Key()) != "s098" {
		t.Fatalf("exact seek landed on %q", it.Key())
	}
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end")
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	b := NewBatch()
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("b%d", i)), []byte("v"))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatalf("b%d: %v", i, err)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) {
		o.WriteBufferSize = 16 << 10
		o.L0CompactionTrigger = 2
		o.BaseLevelSize = 64 << 10
	})
	defer db.Close()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	val := func(i int) string { return strings.Repeat(fmt.Sprintf("v%d-", i), 20) }
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("c%04d", rng.Intn(500))
		if rng.Intn(6) == 0 {
			db.Delete([]byte(k))
			delete(model, k)
		} else {
			db.Put([]byte(k), []byte(val(i)))
			model[k] = val(i)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	files := db.NumTableFiles()
	if files[0] > 1 {
		t.Fatalf("CompactAll left %d L0 files", files[0])
	}
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s after compaction: err=%v", k, err)
		}
	}
	it, _ := db.NewIterator()
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if _, ok := model[string(it.Key())]; !ok {
			t.Fatalf("iterator yielded unexpected key %q", it.Key())
		}
		count++
	}
	if count != len(model) {
		t.Fatalf("iterator count %d != model %d", count, len(model))
	}
}

func TestCompactionDropsObsoleteFiles(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) {
		o.WriteBufferSize = 8 << 10
		o.L0CompactionTrigger = 2
	})
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("g%04d", i)), bytes.Repeat([]byte("z"), 100))
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	names, _ := fs.List("db")
	ssts := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			ssts++
		}
	}
	live := 0
	for _, c := range db.vs.liveFileNums() {
		if c {
			live++
		}
	}
	if ssts != live {
		t.Fatalf("%d .sst files on disk but %d live", ssts, live)
	}
}

func TestDisableCompactionLeavesL0Alone(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 8 << 10
		o.DisableCompaction = true
		o.L0CompactionTrigger = 2
	})
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("n%04d", i)), bytes.Repeat([]byte("z"), 100))
	}
	db.Flush()
	files := db.NumTableFiles()
	if files[0] < 4 {
		t.Fatalf("expected many L0 files with compaction off, got %d", files[0])
	}
	if db.Stats().Compactions != 0 {
		t.Fatal("compaction ran despite being disabled")
	}
}

func TestCheckpointOptionsEndToEnd(t *testing.T) {
	// The paper's configuration: WAL/compression/cache/compaction off,
	// async flush, 32 MB buffer (scaled down here).
	fs := vfs.NewMemFS()
	opts := CheckpointOptions(fs)
	opts.WriteBufferSize = 64 << 10
	db, err := Open("ckpt", opts)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("c"), 4096)
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("ck-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil { // the write barrier
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v, err := db.Get([]byte(fmt.Sprintf("ck-%04d", i))); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("ck-%04d: %v", i, err)
		}
	}
	if s := db.Stats(); s.WALBytes != 0 {
		t.Fatalf("WAL was written despite DisableWAL: %d bytes", s.WALBytes)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: all barrier-flushed data must be durable.
	db2, err := Open("ckpt", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 100; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("ck-%04d", i))); err != nil {
			t.Fatalf("reopen ck-%04d: %v", i, err)
		}
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("get: %v", err)
	}
	if err := db.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush: %v", err)
	}
	if _, err := db.NewIterator(); !errors.Is(err, ErrClosed) {
		t.Fatalf("iter: %v", err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestHas(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	db.Put([]byte("present"), []byte("v"))
	if ok, err := db.Has([]byte("present")); err != nil || !ok {
		t.Fatalf("present: %v %v", ok, err)
	}
	if ok, err := db.Has([]byte("absent")); err != nil || ok {
		t.Fatalf("absent: %v %v", ok, err)
	}
}

func TestEmptyValueAndLargeValue(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	if err := db.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Fatalf("empty value: %q %v", v, err)
	}
	large := bytes.Repeat([]byte("L"), 5<<20)
	if err := db.Put([]byte("large"), large); err != nil {
		t.Fatal(err)
	}
	db.Flush()
	v, err = db.Get([]byte("large"))
	if err != nil || !bytes.Equal(v, large) {
		t.Fatalf("large value: len=%d %v", len(v), err)
	}
}

// TestRandomOpsMatchModel is the main property test: a long random
// schedule of puts, deletes, flushes, compactions and reopens must always
// agree with an in-memory map.
func TestRandomOpsMatchModel(t *testing.T) {
	fs := vfs.NewMemFS()
	opts := DefaultOptions(fs)
	opts.WriteBufferSize = 8 << 10
	opts.L0CompactionTrigger = 3
	opts.BaseLevelSize = 32 << 10
	db, err := Open("rnd", opts)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	rng := rand.New(rand.NewSource(1234))
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // put
			k := fmt.Sprintf("p%03d", rng.Intn(400))
			v := fmt.Sprintf("val-%d-%s", step, strings.Repeat("x", rng.Intn(100)))
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case op < 75: // delete
			k := fmt.Sprintf("p%03d", rng.Intn(400))
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case op < 85: // get
			k := fmt.Sprintf("p%03d", rng.Intn(400))
			v, err := db.Get([]byte(k))
			want, ok := model[k]
			if ok && (err != nil || string(v) != want) {
				t.Fatalf("step %d: get %s = %q, %v; want %q", step, k, v, err, want)
			}
			if !ok && !errors.Is(err, ErrNotFound) {
				t.Fatalf("step %d: get %s = %q, %v; want NotFound", step, k, v, err)
			}
		case op < 92: // flush
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		case op < 95: // full compaction
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
		default: // reopen
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if db, err = Open("rnd", opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Final sweep: every model key, plus iterator agreement.
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("final get %s: %q %v, want %q", k, v, err, want)
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if want, ok := model[string(it.Key())]; !ok || want != string(it.Value()) {
			t.Fatalf("iterator key %q disagrees with model", it.Key())
		}
		seen++
	}
	it.Close()
	if seen != len(model) {
		t.Fatalf("iterator saw %d keys, model has %d", seen, len(model))
	}
	db.Close()
}

func TestConcurrentWriters(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 32 << 10
		o.AsyncFlush = true
	})
	defer db.Close()
	const writers, perWriter = 8, 200
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := db.Put(k, bytes.Repeat([]byte("v"), 100)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, err := db.Get([]byte(fmt.Sprintf("w%d-%04d", w, i))); err != nil {
				t.Fatalf("w%d-%04d: %v", w, i, err)
			}
		}
	}
}

func TestRangeIterator(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) { o.WriteBufferSize = 8 << 10 })
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("rng%04d", i)), bytes.Repeat([]byte("v"), 64))
	}
	db.Flush()
	it, err := db.NewRangeIterator([]byte("rng0100"), []byte("rng0200"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		if k < "rng0100" || k >= "rng0200" {
			t.Fatalf("out-of-bounds key %q", k)
		}
		count++
	}
	if count != 100 {
		t.Fatalf("range saw %d keys, want 100", count)
	}
	// Seek below the lower bound clamps.
	it.Seek([]byte("rng0000"))
	if !it.Valid() || string(it.Key()) != "rng0100" {
		t.Fatalf("clamped seek landed on %q", it.Key())
	}
	// Seek beyond the upper bound is invalid.
	it.Seek([]byte("rng0205"))
	if it.Valid() {
		t.Fatalf("seek past upper bound returned %q", it.Key())
	}
}

func TestRangeIteratorSkipsNonOverlappingTables(t *testing.T) {
	// Keys in two disjoint clusters flushed to separate tables: a scan of
	// one cluster must not open the other's table (observable through the
	// block cache miss count staying flat for it).
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.DisableCompaction = true
	})
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("aaa%03d", i)), []byte("v"))
	}
	db.Flush()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("zzz%03d", i)), []byte("v"))
	}
	db.Flush()
	it, err := db.NewRangeIterator([]byte("aaa"), []byte("aab"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	if n != 50 {
		t.Fatalf("saw %d keys", n)
	}
}

func TestSizeTriggeredDeepCompaction(t *testing.T) {
	// Small level targets force data past L1 into L2, exercising the
	// round-robin compaction pointer and deep-level routing.
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 8 << 10
		o.L0CompactionTrigger = 2
		o.BaseLevelSize = 16 << 10
		o.LevelSizeMultiplier = 2
		o.DisableCompression = true
	})
	defer db.Close()
	payload := bytes.Repeat([]byte("deep"), 100)
	for i := 0; i < 1500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("dc%05d", i%600)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait for background compaction to settle.
	if err := db.WaitBackground(); err != nil {
		t.Fatal(err)
	}
	files := db.NumTableFiles()
	deep := 0
	for l := 2; l < len(files); l++ {
		deep += files[l]
	}
	if deep == 0 {
		t.Fatalf("no tables below L1: %v", files)
	}
	// All data remains readable.
	for i := 0; i < 600; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("dc%05d", i))); err != nil {
			t.Fatalf("dc%05d: %v", i, err)
		}
	}
	if err := db.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestMMapStyleTableWrites(t *testing.T) {
	// UseMMap coalesces table writes into ~1MB segments; data must be
	// identical either way.
	for _, mm := range []bool{false, true} {
		fs := vfs.NewMemFS()
		db := openTestDB(t, fs, func(o *Options) {
			o.UseMMap = mm
			o.WriteBufferSize = 64 << 10
		})
		for i := 0; i < 500; i++ {
			db.Put([]byte(fmt.Sprintf("mm%04d", i)), bytes.Repeat([]byte("m"), 200))
		}
		db.Flush()
		for i := 0; i < 500; i += 41 {
			if _, err := db.Get([]byte(fmt.Sprintf("mm%04d", i))); err != nil {
				t.Fatalf("mmap=%v mm%04d: %v", mm, i, err)
			}
		}
		db.Close()
	}
}

func TestObsRegistryAndResetStats(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) { o.WriteBufferSize = 16 << 10 })
	defer db.Close()
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Puts != 200 || st.Flushes == 0 {
		t.Fatalf("stats before reset: puts=%d flushes=%d", st.Puts, st.Flushes)
	}
	// The legacy Stats view and the registry snapshot must agree.
	snap := db.Obs().Snapshot()
	if got := snap.Counters["lsm.puts"]; got != 200 {
		t.Fatalf("registry lsm.puts = %d, want 200", got)
	}
	if got := snap.Counters["lsm.flush.count"]; got != int64(st.Flushes) {
		t.Fatalf("registry lsm.flush.count = %d, Stats().Flushes = %d", got, st.Flushes)
	}
	db.ResetStats()
	st = db.Stats()
	if st.Puts != 0 || st.Flushes != 0 || st.BytesFlushed != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
	// Handles stay live after reset: new work is counted from zero.
	if err := db.Put([]byte("after"), []byte("reset")); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Puts != 1 {
		t.Fatalf("puts after reset = %d, want 1", st.Puts)
	}
}
