package lsm

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"lsmio/internal/iosched"
	"lsmio/internal/snappy"
	"lsmio/internal/vfs"
)

// Sorted-string tables are the C1..Ck trees of the LSM paper: immutable,
// sorted, block-structured files written once by a flush or compaction and
// never edited in place.
//
// Layout:
//
//	data block*      each followed by a 5-byte trailer: type(1) crc32(4)
//	filter block     bloom filter over user keys (same trailer)
//	index block      lastIKey(block) -> handle (same trailer)
//	footer (40 B)    filterOff filterLen indexOff indexLen magic
const (
	tableMagic      = 0x4c534d494f544221 // "LSMIOTB!"
	footerLen       = 40
	blockTrailerLen = 5

	compressionNone   = 0
	compressionFlate  = 1
	compressionSnappy = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockHandle locates a block within a table file.
type blockHandle struct {
	offset int64
	length int64 // without trailer
}

func encodeHandle(h blockHandle) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(h.offset))
	binary.LittleEndian.PutUint64(b[8:], uint64(h.length))
	return b[:]
}

func decodeHandle(b []byte) (blockHandle, error) {
	if len(b) < 16 {
		return blockHandle{}, fmt.Errorf("lsm: handle too short")
	}
	return blockHandle{
		offset: int64(binary.LittleEndian.Uint64(b[:8])),
		length: int64(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}

// tableMeta describes a finished table.
type tableMeta struct {
	fileNum  uint64
	size     int64
	smallest internalKey
	largest  internalKey
	entries  int
}

// tableWriter builds a table by streaming sorted internal entries.
//
// With Options.EncodeWorkers > 0 the build runs as a two-stage pipeline
// (see pipeline.go): the producer side (add, finishDataBlock, finishAsync)
// owns dataBlock, userKeys, lastIKey, approxSize and err; the pipeline's
// writer task owns f, buf, offset, index and meta.size. In serial mode
// (pipe == nil) one caller owns everything, exactly as before.
type tableWriter struct {
	f    vfs.File
	opts *Options
	m    *dbMetrics

	// ioClass is the scheduler class this build's bytes are charged to:
	// Flush for memtable flushes (the default), Compaction for
	// compaction outputs. Unused when opts.IOSched is nil.
	ioClass iosched.Class

	buf        bytes.Buffer // pending bytes when coalescing writes
	coalesce   int          // flush granularity for buf; 0 = write-through
	offset     int64
	dataBlock  *blockBuilder
	index      *blockBuilder
	userKeys   [][]byte // for the bloom filter
	meta       tableMeta
	lastIKey   internalKey
	err        error
	pipe       *tablePipeline
	approxSize int64 // producer-side size estimate (piped mode)
}

// newTableWriter starts a table on f. With UseMMap the writer models
// mmap-style I/O by coalescing block writes into large segments (one
// write per ~1 MB region); otherwise each block is written as produced.
// m may be nil (standalone/repair use); EncodeWorkers > 0 starts the
// two-stage build pipeline.
func newTableWriter(f vfs.File, opts *Options, fileNum uint64, m *dbMetrics) *tableWriter {
	w := &tableWriter{
		f:         f,
		opts:      opts,
		m:         m,
		ioClass:   iosched.Flush,
		dataBlock: newBlockBuilder(opts.BlockRestartInterval),
		index:     newBlockBuilder(1),
	}
	w.meta.fileNum = fileNum
	if opts.UseMMap {
		w.coalesce = 1 << 20
	}
	if w.m == nil {
		w.m = &discardMetrics
	}
	if opts.EncodeWorkers > 0 && opts.Platform != nil {
		w.pipe = newTablePipeline(w, opts.EncodeWorkers)
	}
	return w
}

// writeRaw appends p through the coalescing buffer, returning the write
// error instead of latching it — the pipeline's writer task keeps its own
// error state so it never races the producer's w.err.
func (w *tableWriter) writeRaw(p []byte) error {
	if w.coalesce == 0 {
		return w.writeScheduled(p)
	}
	w.buf.Write(p)
	if w.buf.Len() >= w.coalesce {
		err := w.writeScheduled(w.buf.Bytes())
		w.buf.Reset()
		return err
	}
	return nil
}

// drainRaw flushes any coalesced bytes still buffered.
func (w *tableWriter) drainRaw() error {
	if w.buf.Len() == 0 {
		return nil
	}
	err := w.writeScheduled(w.buf.Bytes())
	w.buf.Reset()
	return err
}

// writeScheduled is the single funnel every table-build byte passes
// through on its way to the filesystem: it buys ioClass tokens from the
// shared bandwidth scheduler (free when none is configured) and refunds
// them if the write fails, so an errored build does not hold budget the
// device never saw.
func (w *tableWriter) writeScheduled(p []byte) error {
	w.opts.IOSched.Acquire(w.ioClass, int64(len(p)))
	_, err := w.f.Write(p)
	if err != nil {
		w.opts.IOSched.Cancel(w.ioClass, int64(len(p)))
	}
	return err
}

func (w *tableWriter) write(p []byte) {
	if w.err != nil {
		return
	}
	w.err = w.writeRaw(p)
}

func (w *tableWriter) drain() {
	if w.err == nil {
		w.err = w.drainRaw()
	}
}

// add appends an entry; keys must arrive in increasing internal-key order.
func (w *tableWriter) add(ik internalKey, value []byte) {
	if w.err != nil {
		return
	}
	if w.lastIKey.valid() && compareIKeys(ik, w.lastIKey) <= 0 {
		w.err = fmt.Errorf("lsm: keys out of order: %s after %s", ik, w.lastIKey)
		return
	}
	if !w.meta.smallest.valid() {
		w.meta.smallest = append(internalKey(nil), ik...)
	}
	w.lastIKey = append(w.lastIKey[:0], ik...)
	if w.opts.BitsPerKey > 0 {
		w.userKeys = append(w.userKeys, append([]byte(nil), ik.userKey()...))
	}
	w.dataBlock.add(ik, value)
	w.meta.entries++
	if w.dataBlock.estimatedSize() >= w.opts.BlockSize {
		w.finishDataBlock()
	}
}

func (w *tableWriter) finishDataBlock() {
	if w.dataBlock.empty() || w.err != nil {
		return
	}
	if w.pipe != nil {
		// The block builder reuses its buffer across blocks, so the raw
		// bytes are snapshotted before they cross into the compute stage.
		raw := append([]byte(nil), w.dataBlock.finish()...)
		w.approxSize += int64(len(raw)) + blockTrailerLen
		w.err = w.pipe.submit(encodeJob{
			kind:          blkData,
			raw:           raw,
			indexKey:      append(internalKey(nil), w.lastIKey...),
			allowCompress: !w.opts.DisableCompression,
		})
		w.dataBlock.reset()
		return
	}
	handle := w.writeBlock(w.dataBlock.finish(), !w.opts.DisableCompression)
	w.dataBlock.reset()
	w.index.add(append(internalKey(nil), w.lastIKey...), encodeHandle(handle))
}

// encodeBlock compresses raw per opts (when allowed and the compressed
// form is >12.5% smaller) and appends the 5-byte block trailer. Returns
// the bytes to append to the file and the payload length (trailer
// excluded). Pure function of (opts, raw), so the pipelined and serial
// writers produce identical files.
func encodeBlock(opts *Options, raw []byte, allowCompress bool) (enc []byte, payloadLen int) {
	blockType := byte(compressionNone)
	out := raw
	if allowCompress {
		switch opts.Compression {
		case CompressionFlate:
			var cbuf bytes.Buffer
			fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
			if err == nil {
				if _, err = fw.Write(raw); err == nil && fw.Close() == nil &&
					cbuf.Len() < len(raw)-len(raw)/8 {
					out = cbuf.Bytes()
					blockType = compressionFlate
				}
			}
		default: // CompressionSnappy (and unset)
			c := snappy.Encode(nil, raw)
			if len(c) < len(raw)-len(raw)/8 {
				out = c
				blockType = compressionSnappy
			}
		}
	}
	crc := crc32.Checksum(out, crcTable)
	crc = crc32.Update(crc, crcTable, []byte{blockType})
	enc = make([]byte, 0, len(out)+blockTrailerLen)
	enc = append(enc, out...)
	var trailer [blockTrailerLen]byte
	trailer[0] = blockType
	binary.LittleEndian.PutUint32(trailer[1:], crc)
	enc = append(enc, trailer[:]...)
	return enc, len(out)
}

// writeBlock encodes raw and emits it at the current offset, returning
// its handle. Serial path only (the pipeline splits the same work across
// its encoder and writer stages).
func (w *tableWriter) writeBlock(raw []byte, allowCompress bool) blockHandle {
	chargeEncodeCost(w.opts, len(raw))
	enc, payloadLen := encodeBlock(w.opts, raw, allowCompress)
	h := blockHandle{offset: w.offset, length: int64(payloadLen)}
	w.write(enc)
	w.offset += int64(len(enc))
	return h
}

// estimatedSize is the producer-visible output size, used for the
// compaction split heuristic: the exact offset in serial mode, the sum
// of raw block sizes in piped mode (the writer task owns the real
// offset; compression only shrinks it, so splits err slightly early).
func (w *tableWriter) estimatedSize() int64 {
	if w.pipe != nil {
		return w.approxSize
	}
	return w.offset
}

// writeTail emits the index block and footer, drains the coalescing
// buffer and fsyncs — the common epilogue of both build modes. It uses
// the error-returning write path so the pipeline's writer task can call
// it without touching the producer's w.err.
func (w *tableWriter) writeTail(filterHandle blockHandle) error {
	indexRaw := w.index.finish()
	chargeEncodeCost(w.opts, len(indexRaw))
	enc, payloadLen := encodeBlock(w.opts, indexRaw, !w.opts.DisableCompression)
	indexHandle := blockHandle{offset: w.offset, length: int64(payloadLen)}
	if err := w.writeRaw(enc); err != nil {
		return err
	}
	w.offset += int64(len(enc))
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(filterHandle.offset))
	binary.LittleEndian.PutUint64(footer[8:], uint64(filterHandle.length))
	binary.LittleEndian.PutUint64(footer[16:], uint64(indexHandle.offset))
	binary.LittleEndian.PutUint64(footer[24:], uint64(indexHandle.length))
	binary.LittleEndian.PutUint64(footer[32:], tableMagic)
	if err := w.writeRaw(footer[:]); err != nil {
		return err
	}
	w.offset += footerLen
	if err := w.drainRaw(); err != nil {
		return err
	}
	// Tables are always synced before they are returned, regardless of
	// Options.Sync: the caller installs the table into the (synced) manifest
	// immediately, and a manifest referencing a table whose bytes could
	// still be lost to a crash would silently drop acknowledged data.
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.meta.size = w.offset
	return nil
}

// finish completes the table and returns its metadata, waiting for the
// pipeline when one is running.
func (w *tableWriter) finish() (tableMeta, error) {
	if w.pipe != nil {
		return w.finishAsync().wait()
	}
	w.finishDataBlock()
	// Filter block (never compressed: it is random bits).
	var filterHandle blockHandle
	if w.opts.BitsPerKey > 0 && len(w.userKeys) > 0 {
		filterHandle = w.writeBlock(buildBloom(w.userKeys, w.opts.BitsPerKey), false)
	}
	if w.err != nil {
		return tableMeta{}, w.err
	}
	w.meta.largest = append(internalKey(nil), w.lastIKey...)
	if err := w.writeTail(filterHandle); err != nil {
		return tableMeta{}, err
	}
	return w.meta, nil
}

// finishAsync seals the producer side of the build — trailing data
// block, bloom-filter job, metadata — and returns a handle whose wait
// resolves when the writer task has written the tail and fsynced. The
// caller may start encoding its next output table while this one syncs.
// In serial mode the build completes inline and wait returns immediately.
func (w *tableWriter) finishAsync() *pendingTable {
	if w.pipe == nil {
		meta, err := w.finish()
		return &pendingTable{meta: meta, err: err, done: true}
	}
	w.finishDataBlock()
	if w.err == nil && w.opts.BitsPerKey > 0 && len(w.userKeys) > 0 {
		w.err = w.pipe.submit(encodeJob{kind: blkFilter})
	}
	w.meta.largest = append(internalKey(nil), w.lastIKey...)
	w.pipe.closeSubmit(w.err)
	return &pendingTable{p: w.pipe}
}

// abort tears down a build that will not be finished (error paths): the
// pipeline tasks are drained so the caller may close and delete the
// output file. Safe to call in serial mode (no-op) and after finish.
func (w *tableWriter) abort() {
	if w.pipe != nil {
		w.pipe.abort()
	}
}

// tableReader serves point lookups and scans from one table file.
type tableReader struct {
	f       vfs.File
	fileNum uint64
	opts    *Options
	cache   *blockCache // shared, may be nil
	index   *block
	filter  []byte
	size    int64
}

// openTable reads the footer, index and filter of a table file.
func openTable(f vfs.File, opts *Options, fileNum uint64, cache *blockCache) (*tableReader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, fmt.Errorf("lsm: table %d too small (%d bytes)", fileNum, size)
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil && err != io.EOF {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[32:]) != tableMagic {
		return nil, fmt.Errorf("lsm: table %d: bad magic", fileNum)
	}
	t := &tableReader{f: f, fileNum: fileNum, opts: opts, cache: cache, size: size}
	filterHandle := blockHandle{
		offset: int64(binary.LittleEndian.Uint64(footer[0:])),
		length: int64(binary.LittleEndian.Uint64(footer[8:])),
	}
	indexHandle := blockHandle{
		offset: int64(binary.LittleEndian.Uint64(footer[16:])),
		length: int64(binary.LittleEndian.Uint64(footer[24:])),
	}
	rawIndex, err := t.readRawBlock(indexHandle)
	if err != nil {
		return nil, fmt.Errorf("lsm: table %d index: %w", fileNum, err)
	}
	if t.index, err = parseBlock(rawIndex); err != nil {
		return nil, err
	}
	if filterHandle.length > 0 {
		if t.filter, err = t.readRawBlock(filterHandle); err != nil {
			return nil, fmt.Errorf("lsm: table %d filter: %w", fileNum, err)
		}
	}
	return t, nil
}

// readRawBlock reads, verifies and decompresses one block (no cache).
func (t *tableReader) readRawBlock(h blockHandle) ([]byte, error) {
	buf := make([]byte, h.length+blockTrailerLen)
	if _, err := t.f.ReadAt(buf, h.offset); err != nil && err != io.EOF {
		return nil, err
	}
	data, trailer := buf[:h.length], buf[h.length:]
	blockType := trailer[0]
	wantCRC := binary.LittleEndian.Uint32(trailer[1:])
	crc := crc32.Checksum(data, crcTable)
	crc = crc32.Update(crc, crcTable, []byte{blockType})
	if crc != wantCRC {
		return nil, fmt.Errorf("lsm: block at %d: checksum mismatch: %w", h.offset, ErrCorruption)
	}
	switch blockType {
	case compressionNone:
		return data, nil
	case compressionFlate:
		fr := flate.NewReader(bytes.NewReader(data))
		out, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("lsm: block at %d: decompress: %w", h.offset, err)
		}
		return out, fr.Close()
	case compressionSnappy:
		out, err := snappy.Decode(nil, data)
		if err != nil {
			return nil, fmt.Errorf("lsm: block at %d: decompress: %w", h.offset, err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("lsm: block at %d: unknown type %d", h.offset, blockType)
	}
}

// readBlock returns a parsed block, using the shared cache when enabled.
func (t *tableReader) readBlock(h blockHandle) (*block, error) {
	if t.cache != nil {
		if b, ok := t.cache.get(t.fileNum, h.offset); ok {
			return b, nil
		}
	}
	raw, err := t.readRawBlock(h)
	if err != nil {
		return nil, err
	}
	b, err := parseBlock(raw)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache.put(t.fileNum, h.offset, b, int64(len(raw)))
	}
	return b, nil
}

// get finds the newest entry for userKey at snapshot seq within this table.
func (t *tableReader) get(userKey []byte, seq seqNum) (value []byte, found, deleted bool, err error) {
	if t.filter != nil && !bloomMayContain(t.filter, userKey) {
		return nil, false, false, nil
	}
	target := lookupKey(userKey, seq)
	idxIter := t.index.iterator()
	idxIter.Seek(target)
	if !idxIter.Valid() {
		return nil, false, false, idxIter.Close()
	}
	h, err := decodeHandle(idxIter.Value())
	if err != nil {
		return nil, false, false, err
	}
	b, err := t.readBlock(h)
	if err != nil {
		return nil, false, false, err
	}
	it := b.iterator()
	it.Seek(target)
	if !it.Valid() {
		return nil, false, false, it.Close()
	}
	ik := it.IKey()
	if !bytes.Equal(ik.userKey(), userKey) {
		return nil, false, false, it.Close()
	}
	if ik.kind() == kindDelete {
		return nil, true, true, it.Close()
	}
	return append([]byte(nil), it.Value()...), true, false, it.Close()
}

// iterator returns an ordered iterator over the whole table.
func (t *tableReader) iterator() *tableIterator {
	return &tableIterator{t: t, idx: t.index.iterator()}
}

// close releases the underlying file.
func (t *tableReader) close() error { return t.f.Close() }

// tableIterator is a two-level iterator: index block -> data blocks.
type tableIterator struct {
	t    *tableReader
	idx  *blockIterator
	data *blockIterator
	err  error
}

func (it *tableIterator) loadData() {
	it.data = nil
	if !it.idx.Valid() {
		return
	}
	h, err := decodeHandle(it.idx.Value())
	if err != nil {
		it.err = err
		return
	}
	b, err := it.t.readBlock(h)
	if err != nil {
		it.err = err
		return
	}
	it.data = b.iterator()
}

func (it *tableIterator) SeekToFirst() {
	it.idx.SeekToFirst()
	it.loadData()
	if it.data != nil {
		it.data.SeekToFirst()
	}
	it.skipEmpty()
}

func (it *tableIterator) Seek(ik internalKey) {
	it.idx.Seek(ik)
	it.loadData()
	if it.data != nil {
		it.data.Seek(ik)
	}
	it.skipEmpty()
}

// skipEmpty advances to the next data block while the current one is
// exhausted.
func (it *tableIterator) skipEmpty() {
	for it.err == nil && it.data != nil && !it.data.Valid() {
		it.idx.Next()
		it.loadData()
		if it.data != nil {
			it.data.SeekToFirst()
		}
	}
}

func (it *tableIterator) Next() {
	if it.data == nil {
		return
	}
	it.data.Next()
	it.skipEmpty()
}

// SeekToLast positions at the table's final entry.
func (it *tableIterator) SeekToLast() {
	it.idx.SeekToLast()
	it.loadData()
	if it.data != nil {
		it.data.SeekToLast()
	}
	it.skipEmptyBack()
}

// Prev positions at the preceding entry, crossing block boundaries.
func (it *tableIterator) Prev() {
	if it.data == nil {
		return
	}
	it.data.Prev()
	it.skipEmptyBack()
}

// skipEmptyBack walks to the previous data block while the current one is
// exhausted backwards.
func (it *tableIterator) skipEmptyBack() {
	for it.err == nil && it.data != nil && !it.data.Valid() {
		it.idx.Prev()
		it.loadData()
		if it.data != nil {
			it.data.SeekToLast()
		}
	}
}

func (it *tableIterator) Valid() bool {
	return it.err == nil && it.data != nil && it.data.Valid()
}

func (it *tableIterator) IKey() internalKey { return it.data.IKey() }
func (it *tableIterator) Value() []byte     { return it.data.Value() }
func (it *tableIterator) Close() error      { return it.err }
