package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmio/internal/vfs"
)

func TestSnapshotIsolation(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	db.Put([]byte("gone"), []byte("x"))

	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Mutate after the snapshot.
	db.Put([]byte("k"), []byte("v2"))
	db.Delete([]byte("gone"))
	db.Put([]byte("new"), []byte("n"))
	db.Flush()

	if v, err := snap.Get([]byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot k = %q, %v", v, err)
	}
	if v, err := snap.Get([]byte("gone")); err != nil || string(v) != "x" {
		t.Fatalf("snapshot gone = %q, %v", v, err)
	}
	if _, err := snap.Get([]byte("new")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot new: %v", err)
	}
	// Live reads see the new world.
	if v, _ := db.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("live k = %q", v)
	}
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.WriteBufferSize = 8 << 10
		o.L0CompactionTrigger = 2
	})
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("s%03d", i)), bytes.Repeat([]byte("a"), 100))
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// Overwrite everything and force compaction: the snapshot's tables
	// must stay pinned and readable.
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("s%03d", i)), bytes.Repeat([]byte("b"), 100))
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 13 {
		v, err := snap.Get([]byte(fmt.Sprintf("s%03d", i)))
		if err != nil || v[0] != 'a' {
			t.Fatalf("snapshot s%03d = %q, %v", i, v, err)
		}
	}
	snap.Release()
	// Double release is harmless; use after release errors.
	snap.Release()
	if _, err := snap.Get([]byte("s000")); err == nil {
		t.Fatal("get after release should error")
	}
}

func TestVerifyChecksumsCleanAndCorrupt(t *testing.T) {
	fs := vfs.NewMemFS()
	db := openTestDB(t, fs, func(o *Options) { o.WriteBufferSize = 16 << 10 })
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("v%04d", i)), bytes.Repeat([]byte("z"), 100))
	}
	db.Flush()
	if err := db.VerifyChecksums(); err != nil {
		t.Fatalf("clean db failed verification: %v", err)
	}
	// Corrupt one table file on disk.
	names, _ := fs.List("db")
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".sst" {
			f, _ := fs.Open("db/" + n)
			f.WriteAt([]byte{0xFF, 0xEE, 0xDD}, 30)
			f.Close()
			break
		}
	}
	// A fresh DB handle must detect it (the open one may have cached the
	// reader, which is fine — caching is the point of table readers).
	db.Close()
	db2 := openTestDB(t, fs, nil)
	defer db2.Close()
	if err := db2.VerifyChecksums(); err == nil {
		t.Fatal("corrupted table passed verification")
	}
}

func TestGetProperty(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	db.Put([]byte("p"), []byte("v"))
	if v, ok := db.GetProperty(PropMemtableSize); !ok || v == "0" {
		t.Fatalf("memtable-size = %q %v", v, ok)
	}
	db.Flush()
	if v, ok := db.GetProperty(PropNumFilesAtLevelPrefix + "0"); !ok || v != "1" {
		t.Fatalf("files at L0 = %q %v", v, ok)
	}
	if v, ok := db.GetProperty(PropLevelBytesPrefix + "0"); !ok || v == "0" {
		t.Fatalf("level bytes = %q %v", v, ok)
	}
	if v, ok := db.GetProperty(PropLastSeq); !ok || v != "1" {
		t.Fatalf("last seq = %q %v", v, ok)
	}
	if v, ok := db.GetProperty(PropTableFiles); !ok || v != "1" {
		t.Fatalf("table files = %q %v", v, ok)
	}
	if v, ok := db.GetProperty(PropImmutableCount); !ok || v != "0" {
		t.Fatalf("immutables = %q %v", v, ok)
	}
	if _, ok := db.GetProperty("lsmio.nonsense"); ok {
		t.Fatal("unknown property matched")
	}
	if _, ok := db.GetProperty(PropNumFilesAtLevelPrefix + "99"); ok {
		t.Fatal("out-of-range level matched")
	}
}

func TestApproximateSize(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), func(o *Options) {
		o.DisableCompression = true // keep on-disk bytes ~= payload bytes
	})
	defer db.Close()
	payload := bytes.Repeat([]byte("s"), 1000)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("a%03d", i)), payload)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("z%03d", i)), payload)
	}
	db.Flush()
	whole := db.ApproximateSize(nil, nil)
	if whole < 100_000 {
		t.Fatalf("whole size = %d", whole)
	}
	// A range with no keys overlaps no tables only if tables are split;
	// with one L0 table the estimate is coarse — just check monotonicity.
	sub := db.ApproximateSize([]byte("a"), []byte("b"))
	if sub > whole {
		t.Fatalf("sub (%d) > whole (%d)", sub, whole)
	}
	if db.ApproximateSize([]byte("only-memtable"), nil) < 0 {
		t.Fatal("negative size")
	}
}

func TestSnapshotIterator(t *testing.T) {
	db := openTestDB(t, vfs.NewMemFS(), nil)
	defer db.Close()
	for i := 0; i < 20; i++ {
		db.Put([]byte(fmt.Sprintf("si%02d", i)), []byte("old"))
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// Post-snapshot churn.
	for i := 0; i < 20; i++ {
		db.Put([]byte(fmt.Sprintf("si%02d", i)), []byte("new"))
	}
	db.Put([]byte("si99"), []byte("late"))
	db.Delete([]byte("si05"))
	db.Flush()

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Value()) != "old" {
			t.Fatalf("snapshot iterator saw %q at %q", it.Value(), it.Key())
		}
		count++
	}
	if count != 20 {
		t.Fatalf("snapshot iterator saw %d keys, want 20", count)
	}
	// Reverse through the snapshot too.
	it.SeekToLast()
	if string(it.Key()) != "si19" || string(it.Value()) != "old" {
		t.Fatalf("snapshot SeekToLast = %q/%q", it.Key(), it.Value())
	}
	// Bounded snapshot iterator.
	rit, err := snap.NewRangeIterator([]byte("si05"), []byte("si10"))
	if err != nil {
		t.Fatal(err)
	}
	defer rit.Close()
	n := 0
	for rit.SeekToFirst(); rit.Valid(); rit.Next() {
		n++
	}
	if n != 5 { // si05..si09, all visible in the snapshot (delete came after)
		t.Fatalf("bounded snapshot iterator saw %d", n)
	}
	snap.Release()
	if _, err := snap.NewIterator(); err == nil {
		t.Fatal("iterator after release should fail")
	}
}
