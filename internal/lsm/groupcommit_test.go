package lsm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lsmio/internal/faultfs"
	"lsmio/internal/vfs"
)

// TestGroupCommitCoalescesConcurrentSyncWriters drives many goroutines
// of Sync writes through the writer queue and checks that (a) WAL fsyncs
// are amortized across cohorts — far fewer syncs than writes — and
// (b) every acked write is nonetheless durable: one cohort sync covers
// all of its members, so a crash that drops unsynced bytes loses nothing
// that was acknowledged. Run under -race this also exercises the
// lock-release-during-sync handoff.
func TestGroupCommitCoalescesConcurrentSyncWriters(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	// Stretch every log fsync so overlapping writers pile up behind the
	// leader and cohorts actually form.
	ffs.AddRule(&faultfs.Rule{
		Op: faultfs.OpSync, Path: ".log",
		Nth: 1, Times: -1,
		Delay: time.Millisecond, DelayOnly: true,
	})
	db := openTestDB(t, ffs, func(o *Options) { o.Sync = true })

	const writers, perWriter = 12, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("gc-w%02d-%04d", w, i))
				if err := db.Put(key, key); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	const total = int64(writers * perWriter)
	syncs := db.m.walSyncs.Load()
	groups := db.m.walGroupCommits.Load()
	if syncs == 0 || groups == 0 {
		t.Fatalf("no group commits recorded (syncs=%d groups=%d)", syncs, groups)
	}
	if syncs > total/2 {
		t.Fatalf("%d fsyncs for %d sync writes: group commit is not coalescing", syncs, total)
	}
	if n := db.m.walGroupSize.Count(); n != groups {
		t.Fatalf("group size histogram has %d samples, want %d", n, groups)
	}

	// Durability of every ack: crash away all unsynced state and replay.
	ffs.ClearRules()
	ffs.Crash()
	db2, err := Open("db", DefaultOptions(ffs))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("gc-w%02d-%04d", w, i)
			if v, err := db2.Get([]byte(key)); err != nil || string(v) != key {
				t.Fatalf("acked write %s not durable after crash: %q, %v", key, v, err)
			}
		}
	}
}

// TestGroupCommitFailureFansOutToCohort injects one fsync failure under
// concurrent writers: every member of the doomed cohort must get the
// error, the DB must poison itself, and after a crash recovery must show
// exactly the acked writes — none of the failed ones.
func TestGroupCommitFailureFansOutToCohort(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	ffs.AddRule(&faultfs.Rule{Op: faultfs.OpSync, Path: ".log", Nth: 3, Times: 1})
	db := openTestDB(t, ffs, func(o *Options) { o.Sync = true })

	const writers, perWriter = 8, 10
	var (
		mu        sync.Mutex
		acked     []string
		failed    []string
		wg        sync.WaitGroup
		sawInject bool
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("fan-w%02d-%04d", w, i)
				err := db.Put([]byte(key), []byte(key))
				mu.Lock()
				if err == nil {
					acked = append(acked, key)
				} else {
					failed = append(failed, key)
					if errors.Is(err, faultfs.ErrInjected) {
						sawInject = true
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if !sawInject {
		t.Fatal("injected sync failure never surfaced to a writer")
	}
	// The first two cohorts preceded the failing sync; everything queued
	// with the doomed leader, or arriving after the poison, fails.
	if len(acked) == 0 || len(failed) == 0 {
		t.Fatalf("want a mix of acked and failed writes, got %d acked / %d failed", len(acked), len(failed))
	}

	ffs.ClearRules()
	ffs.Crash()
	db2, err := Open("db", DefaultOptions(ffs))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	for _, key := range acked {
		if v, err := db2.Get([]byte(key)); err != nil || string(v) != key {
			t.Fatalf("acked write %s lost: %q, %v", key, v, err)
		}
	}
	for _, key := range failed {
		if v, err := db2.Get([]byte(key)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("failed write %s resurrected: %q, %v", key, v, err)
		}
	}
}

// TestGroupCommitDisabled pins the escape hatch: with
// DisableWALGroupCommit every Sync write pays its own fsync (cohorts of
// one), which is both the A/B baseline for the bench figure and the
// pre-change behavior.
func TestGroupCommitDisabled(t *testing.T) {
	ffs := faultfs.New(vfs.NewMemFS())
	db := openTestDB(t, ffs, func(o *Options) {
		o.Sync = true
		o.DisableWALGroupCommit = true
	})
	defer db.Close()

	const writers, perWriter = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("solo-w%02d-%04d", w, i))
				if err := db.Put(key, key); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if syncs := db.m.walSyncs.Load(); syncs != writers*perWriter {
		t.Fatalf("with group commit disabled want %d fsyncs (one per write), got %d", writers*perWriter, syncs)
	}
}
