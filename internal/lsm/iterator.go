package lsm

import (
	"bytes"
	"container/heap"
)

// internalIterator is the contract shared by memtable, block and table
// iterators: bidirectional iteration over (internalKey, value) pairs in
// internal-key order. Prev is defined only from a valid position;
// SeekToLast recovers from an invalid one.
type internalIterator interface {
	SeekToFirst()
	SeekToLast()
	Seek(ik internalKey)
	Next()
	Prev()
	Valid() bool
	IKey() internalKey
	Value() []byte
	Close() error
}

// mergingIterator merges several sorted internal iterators, the read-side
// merge-sort the LSM paper describes for reads spanning C0 and C1..Ck.
// It supports both directions; switching direction repositions every
// child relative to the current key, LevelDB-style.
type mergingIterator struct {
	children []internalIterator
	h        iterHeap
	inited   bool
	reverse  bool
}

func newMergingIterator(children []internalIterator) *mergingIterator {
	return &mergingIterator{children: children}
}

type iterHeap struct {
	its     []internalIterator
	reverse bool
}

func (h iterHeap) Len() int { return len(h.its) }
func (h iterHeap) Less(i, j int) bool {
	c := compareIKeys(h.its[i].IKey(), h.its[j].IKey())
	if h.reverse {
		return c > 0
	}
	return c < 0
}
func (h iterHeap) Swap(i, j int) { h.its[i], h.its[j] = h.its[j], h.its[i] }
func (h *iterHeap) Push(x any)   { h.its = append(h.its, x.(internalIterator)) }
func (h *iterHeap) Pop() any {
	old := h.its
	n := len(old)
	it := old[n-1]
	h.its = old[:n-1]
	return it
}

func (m *mergingIterator) rebuild() {
	m.h.its = m.h.its[:0]
	m.h.reverse = m.reverse
	for _, c := range m.children {
		if c.Valid() {
			m.h.its = append(m.h.its, c)
		}
	}
	heap.Init(&m.h)
	m.inited = true
}

func (m *mergingIterator) SeekToFirst() {
	m.reverse = false
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.rebuild()
}

func (m *mergingIterator) SeekToLast() {
	m.reverse = true
	for _, c := range m.children {
		c.SeekToLast()
	}
	m.rebuild()
}

func (m *mergingIterator) Seek(ik internalKey) {
	m.reverse = false
	for _, c := range m.children {
		c.Seek(ik)
	}
	m.rebuild()
}

func (m *mergingIterator) Next() {
	if len(m.h.its) == 0 {
		return
	}
	if m.reverse {
		// Direction switch: every child must sit at the first entry
		// strictly after the current key.
		cur := append(internalKey(nil), m.h.its[0].IKey()...)
		m.reverse = false
		for _, c := range m.children {
			c.Seek(cur)
			if c.Valid() && compareIKeys(c.IKey(), cur) == 0 {
				c.Next()
			}
		}
		m.rebuild()
		return
	}
	top := m.h.its[0]
	top.Next()
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

func (m *mergingIterator) Prev() {
	if len(m.h.its) == 0 {
		return
	}
	if !m.reverse {
		// Direction switch: every child must sit at the last entry
		// strictly before the current key.
		cur := append(internalKey(nil), m.h.its[0].IKey()...)
		m.reverse = true
		for _, c := range m.children {
			c.Seek(cur)
			if c.Valid() {
				c.Prev() // lands strictly before cur (Seek was >= cur)
			} else {
				c.SeekToLast() // everything is before cur
			}
		}
		m.rebuild()
		return
	}
	top := m.h.its[0]
	top.Prev()
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

func (m *mergingIterator) Valid() bool       { return m.inited && len(m.h.its) > 0 }
func (m *mergingIterator) IKey() internalKey { return m.h.its[0].IKey() }
func (m *mergingIterator) Value() []byte     { return m.h.its[0].Value() }

func (m *mergingIterator) Close() error {
	var first error
	for _, c := range m.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Iterator is the public iterator over user keys: it collapses internal
// entries to the newest visible version of each key and skips tombstones.
type Iterator struct {
	merge *mergingIterator
	seq   seqNum
	db    *DB
	ver   *version
	// Range bounds on user keys: [lower, upper). Empty slices mean
	// unbounded (NewRangeIterator copies nil to empty).
	lower []byte
	upper []byte

	key   []byte
	value []byte
	valid bool
	// dirBack records whether the last positioning left the merge
	// iterator behind (true) or at (false) the current entry.
	dirBack bool
}

// SeekToFirst positions at the smallest live user key within the bounds.
func (it *Iterator) SeekToFirst() {
	if len(it.lower) > 0 {
		it.merge.Seek(lookupKey(it.lower, it.seq))
	} else {
		it.merge.SeekToFirst()
	}
	it.dirBack = false
	it.settle(nil)
}

// SeekToLast positions at the largest live user key within the bounds.
func (it *Iterator) SeekToLast() {
	if len(it.upper) > 0 {
		it.merge.Seek(makeIKey(it.upper, maxSeq, kindValue))
		if it.merge.Valid() {
			it.merge.Prev()
		} else {
			it.merge.SeekToLast()
		}
	} else {
		it.merge.SeekToLast()
	}
	it.dirBack = true
	it.settleBack(nil)
}

// Prev moves to the preceding live user key.
func (it *Iterator) Prev() {
	if !it.valid {
		return
	}
	cur := append([]byte(nil), it.key...)
	if !it.dirBack {
		// The merge iterator sits at the current entry; step behind it.
		it.merge.Prev()
		it.dirBack = true
	}
	it.settleBack(cur)
}

// settleBack finds the newest visible entry of the largest user key before
// the current position, skipping the given key, invisible versions,
// deletions and anything outside the bounds. On return the merge iterator
// sits behind the accepted key's version cluster.
func (it *Iterator) settleBack(skip []byte) {
	for it.merge.Valid() {
		ik := it.merge.IKey()
		uk := ik.userKey()
		if skip != nil && bytes.Equal(uk, skip) {
			it.merge.Prev()
			continue
		}
		if ik.seq() > it.seq {
			it.merge.Prev()
			continue
		}
		// Gather this user key's visible versions; backward traversal
		// visits them oldest to newest, so the last one kept wins.
		candKey := append([]byte(nil), uk...)
		var candVal []byte
		var candKind keyKind
		for it.merge.Valid() && bytes.Equal(it.merge.IKey().userKey(), candKey) {
			ik2 := it.merge.IKey()
			if ik2.seq() <= it.seq {
				candVal = append(candVal[:0], it.merge.Value()...)
				candKind = ik2.kind()
			}
			it.merge.Prev()
		}
		if candKind == kindDelete {
			skip = nil
			continue
		}
		if len(it.lower) > 0 && bytes.Compare(candKey, it.lower) < 0 {
			break
		}
		it.key = candKey
		it.value = candVal
		it.valid = true
		return
	}
	it.valid = false
}

// Seek positions at the first live user key >= key (clamped to the
// iterator's bounds).
func (it *Iterator) Seek(key []byte) {
	if len(it.lower) > 0 && bytes.Compare(key, it.lower) < 0 {
		key = it.lower
	}
	it.merge.Seek(lookupKey(key, it.seq))
	it.dirBack = false
	it.settle(nil)
}

// Next advances to the next live user key.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	prev := append([]byte(nil), it.key...)
	it.merge.Next()
	it.dirBack = false
	it.settle(prev)
}

// settle finds the newest visible entry for the next user key after skip,
// skipping shadowed versions, invisible sequence numbers and deletions.
func (it *Iterator) settle(skip []byte) {
	for it.merge.Valid() {
		ik := it.merge.IKey()
		if ik.seq() > it.seq {
			it.merge.Next()
			continue
		}
		uk := ik.userKey()
		if skip != nil && bytes.Equal(uk, skip) {
			it.merge.Next()
			continue
		}
		if ik.kind() == kindDelete {
			skip = append(skip[:0], uk...)
			it.merge.Next()
			continue
		}
		if len(it.upper) > 0 && bytes.Compare(uk, it.upper) >= 0 {
			it.valid = false
			return
		}
		it.key = append(it.key[:0], uk...)
		it.value = append(it.value[:0], it.merge.Value()...)
		it.valid = true
		return
	}
	it.valid = false
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key; valid until the next positioning call.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next positioning call.
func (it *Iterator) Value() []byte { return it.value }

// Close releases the iterator's snapshot.
func (it *Iterator) Close() error {
	err := it.merge.Close()
	if it.db != nil && it.ver != nil {
		it.db.opts.Platform.Lock()
		it.db.unrefVersion(it.ver)
		it.db.opts.Platform.Unlock()
		it.ver = nil
	}
	return err
}
