// Package resil is the storage-target resilience toolkit used by the
// simulated parallel file system's degraded-mode write path: a per-target
// health tracker (EWMA of served latency plus consecutive-error counts)
// feeding a per-target circuit breaker with half-open probing, and a
// shared obs.Histogram of recent latencies whose quantiles calibrate
// hedged-request trigger delays.
//
// The package is deliberately independent of the PFS: targets are plain
// indexes and time is an injected monotonic clock, so the tracker runs
// identically under the discrete-event simulator (virtual time) and in
// real time. All methods are safe for concurrent use.
//
// Breaker life cycle (per target):
//
//	Closed ──(ErrThreshold consecutive errors, or
//	          SlowStrikes consecutive ≥SlowFactor×median observations)──▶ Open
//	Open ──(OpenTimeout elapsed; next Route() grants one probe)──▶ HalfOpen
//	HalfOpen ──(probe ObserveOK)──▶ Closed
//	HalfOpen ──(probe ObserveErr)──▶ Open (timer restarts)
//
// Routing policy (`Route`) answers "should new work be placed on this
// target?": yes while Closed, no while Open (until the timeout converts
// the next call into the half-open probe), and exactly one in-flight
// probe while HalfOpen.
package resil

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lsmio/internal/obs"
)

// State is a breaker state.
type State int

// Breaker states.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Options tunes the tracker. The zero value uses the defaults below.
type Options struct {
	// Alpha is the EWMA smoothing factor for served latency (default 0.3).
	Alpha float64
	// ErrThreshold is how many consecutive errors open the breaker
	// (default 3).
	ErrThreshold int
	// OpenTimeout is how long an open breaker rejects routing before the
	// next Route call is granted as a half-open probe (default 200ms).
	OpenTimeout time.Duration
	// SlowFactor and SlowStrikes open the breaker on sustained slowness:
	// SlowStrikes consecutive observations, each at least SlowFactor times
	// the median EWMA across closed targets, trip the breaker even though
	// every request succeeded (defaults 6× and 16).
	SlowFactor  float64
	SlowStrikes int
	// Latency optionally injects a shared latency histogram for quantile
	// estimation (replacing the private sorted-sample ring the tracker
	// used to own). When injected the OWNER records observations into it
	// and the tracker only reads quantiles — so the same instrument that
	// feeds hedging also shows up in the owner's registry snapshot with
	// no duplicated state. When nil the tracker creates a private
	// histogram and records every ObserveOK latency itself.
	Latency *obs.Histogram
	// Trace optionally receives breaker life-cycle events
	// ("resil.breaker.trip", "resil.breaker.probe", "resil.breaker.close").
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.ErrThreshold <= 0 {
		o.ErrThreshold = 3
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 200 * time.Millisecond
	}
	if o.SlowFactor <= 1 {
		o.SlowFactor = 6
	}
	if o.SlowStrikes <= 0 {
		o.SlowStrikes = 16
	}
	return o
}

// target is one tracked storage target.
type target struct {
	ewma       float64 // ns; 0 = no observation yet
	consecErr  int
	consecSlow int
	state      State
	openedAt   time.Duration
	probing    bool // half-open: one probe currently granted
	trips      int64
	probes     int64
	lastReason string
}

// TargetHealth is a point-in-time snapshot of one target.
type TargetHealth struct {
	State      State
	EWMA       time.Duration
	ConsecErrs int
	Trips      int64
	Probes     int64
	Reason     string // why the breaker last opened ("errors", "slow")
}

// Tracker tracks n storage targets.
type Tracker struct {
	mu   sync.Mutex
	now  func() time.Duration
	opts Options
	t    []target

	lat     *obs.Histogram // shared latency histogram (see Options.Latency)
	ownsLat bool           // tracker records into lat itself

	denials int64
}

// New builds a tracker for n targets. now is the monotonic clock the
// breaker timers run on (virtual time inside the simulator).
func New(n int, now func() time.Duration, opts Options) *Tracker {
	if n <= 0 {
		panic("resil: tracker needs at least one target")
	}
	o := opts.withDefaults()
	tr := &Tracker{
		now:  now,
		opts: o,
		t:    make([]target, n),
		lat:  o.Latency,
	}
	if tr.lat == nil {
		tr.lat = obs.NewHistogram()
		tr.ownsLat = true
	}
	return tr
}

// Targets returns how many targets are tracked.
func (tr *Tracker) Targets() int { return len(tr.t) }

// ObserveOK records a successful request against target i with the given
// served latency. It resets the error streak, closes a half-open breaker
// whose probe this was, and applies the sustained-slowness trip.
func (tr *Tracker) ObserveOK(i int, lat time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := &tr.t[i]
	t.consecErr = 0
	if t.ewma == 0 {
		t.ewma = float64(lat)
	} else {
		t.ewma = tr.opts.Alpha*float64(lat) + (1-tr.opts.Alpha)*t.ewma
	}
	if tr.ownsLat {
		tr.lat.ObserveDuration(lat)
	}
	if t.state == HalfOpen {
		t.state = Closed
		t.probing = false
		t.consecSlow = 0
		if tr.opts.Trace != nil {
			tr.opts.Trace.Emitf("resil.breaker.close", "target=%d probe ok", i)
		}
		return
	}
	if t.state != Closed {
		return
	}
	// Sustained-slowness trip: compare against the median EWMA of the
	// other closed targets, so a uniformly loaded cluster never trips.
	med := tr.medianEWMALocked(i)
	if med > 0 && float64(lat) >= tr.opts.SlowFactor*med {
		t.consecSlow++
		if t.consecSlow >= tr.opts.SlowStrikes {
			tr.openLocked(i, "slow")
		}
	} else {
		t.consecSlow = 0
	}
}

// ObserveErr records a failed request against target i. Enough
// consecutive errors open the breaker; a failed half-open probe reopens
// it immediately.
func (tr *Tracker) ObserveErr(i int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := &tr.t[i]
	t.consecErr++
	t.consecSlow = 0
	switch t.state {
	case HalfOpen:
		tr.openLocked(i, "probe-failed")
	case Closed:
		if t.consecErr >= tr.opts.ErrThreshold {
			tr.openLocked(i, "errors")
		}
	}
}

func (tr *Tracker) openLocked(i int, reason string) {
	t := &tr.t[i]
	t.state = Open
	t.openedAt = tr.now()
	t.probing = false
	t.trips++
	t.lastReason = reason
	if tr.opts.Trace != nil {
		tr.opts.Trace.Emitf("resil.breaker.trip", "target=%d reason=%s trips=%d", i, reason, t.trips)
	}
}

// Route reports whether new work should be placed on target i. An open
// breaker past its timeout converts the call into the half-open probe
// (returns true exactly once until the probe resolves).
func (tr *Tracker) Route(i int) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := &tr.t[i]
	switch t.state {
	case Closed:
		return true
	case Open:
		if tr.now()-t.openedAt >= tr.opts.OpenTimeout {
			t.state = HalfOpen
			t.probing = true
			t.probes++
			if tr.opts.Trace != nil {
				tr.opts.Trace.Emitf("resil.breaker.probe", "target=%d", i)
			}
			return true
		}
		tr.denials++
		return false
	case HalfOpen:
		if !t.probing {
			t.probing = true
			t.probes++
			if tr.opts.Trace != nil {
				tr.opts.Trace.Emitf("resil.breaker.probe", "target=%d", i)
			}
			return true
		}
		tr.denials++
		return false
	}
	return false
}

// State returns target i's breaker state without granting a probe.
func (tr *Tracker) State(i int) State {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.t[i].state
}

// EWMA returns target i's smoothed served latency (0 before any
// observation).
func (tr *Tracker) EWMA(i int) time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return time.Duration(tr.t[i].ewma)
}

// medianEWMALocked is the median EWMA across closed targets other than
// `skip` (0 when fewer than two have observations).
func (tr *Tracker) medianEWMALocked(skip int) float64 {
	vals := make([]float64, 0, len(tr.t))
	for j := range tr.t {
		if j == skip || tr.t[j].state != Closed || tr.t[j].ewma == 0 {
			continue
		}
		vals = append(vals, tr.t[j].ewma)
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// Quantile returns the q-quantile (0..1) of the shared latency
// histogram, 0 when no observations have been recorded. Quantile(0) and
// Quantile(1) are the exact min and max; interior quantiles are
// log-bucket estimates (≤25% bucket width).
func (tr *Tracker) Quantile(q float64) time.Duration {
	return time.Duration(tr.lat.Quantile(q))
}

// Denials returns how many Route calls were rejected by open breakers.
func (tr *Tracker) Denials() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.denials
}

// Snapshot returns every target's health.
func (tr *Tracker) Snapshot() []TargetHealth {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TargetHealth, len(tr.t))
	for i, t := range tr.t {
		out[i] = TargetHealth{
			State:      t.state,
			EWMA:       time.Duration(t.ewma),
			ConsecErrs: t.consecErr,
			Trips:      t.trips,
			Probes:     t.probes,
			Reason:     t.lastReason,
		}
	}
	return out
}
