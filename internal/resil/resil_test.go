package resil

import (
	"sync"
	"testing"
	"time"

	"lsmio/internal/obs"
)

// fakeClock is a manually advanced monotonic clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestTracker(n int, opts Options) (*Tracker, *fakeClock) {
	clk := &fakeClock{}
	return New(n, clk.Now, opts), clk
}

func TestBreakerOpensOnConsecutiveErrors(t *testing.T) {
	tr, _ := newTestTracker(4, Options{ErrThreshold: 3})
	if !tr.Route(0) {
		t.Fatal("healthy target should route")
	}
	tr.ObserveErr(0)
	tr.ObserveErr(0)
	if tr.State(0) != Closed {
		t.Fatalf("state after 2 errors = %v, want closed", tr.State(0))
	}
	tr.ObserveErr(0)
	if tr.State(0) != Open {
		t.Fatalf("state after 3 errors = %v, want open", tr.State(0))
	}
	if tr.Route(0) {
		t.Fatal("open breaker should not route before timeout")
	}
	if tr.Denials() == 0 {
		t.Fatal("denial not counted")
	}
}

func TestSuccessResetsErrorStreak(t *testing.T) {
	tr, _ := newTestTracker(2, Options{ErrThreshold: 3})
	tr.ObserveErr(0)
	tr.ObserveErr(0)
	tr.ObserveOK(0, time.Millisecond)
	tr.ObserveErr(0)
	tr.ObserveErr(0)
	if tr.State(0) != Closed {
		t.Fatalf("streak should have reset; state = %v", tr.State(0))
	}
}

func TestHalfOpenProbeRecovers(t *testing.T) {
	tr, clk := newTestTracker(2, Options{ErrThreshold: 1, OpenTimeout: 100 * time.Millisecond})
	tr.ObserveErr(0)
	if tr.State(0) != Open {
		t.Fatal("breaker should be open")
	}
	clk.Advance(50 * time.Millisecond)
	if tr.Route(0) {
		t.Fatal("should still be rejecting before OpenTimeout")
	}
	clk.Advance(60 * time.Millisecond)
	if !tr.Route(0) {
		t.Fatal("first Route after timeout should grant the half-open probe")
	}
	if tr.State(0) != HalfOpen {
		t.Fatalf("state = %v, want half-open", tr.State(0))
	}
	if tr.Route(0) {
		t.Fatal("only one probe may be in flight while half-open")
	}
	tr.ObserveOK(0, time.Millisecond)
	if tr.State(0) != Closed {
		t.Fatalf("successful probe should close breaker; state = %v", tr.State(0))
	}
	if !tr.Route(0) {
		t.Fatal("closed breaker should route")
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	tr, clk := newTestTracker(2, Options{ErrThreshold: 1, OpenTimeout: 100 * time.Millisecond})
	tr.ObserveErr(0)
	clk.Advance(150 * time.Millisecond)
	if !tr.Route(0) {
		t.Fatal("probe should be granted")
	}
	tr.ObserveErr(0)
	if tr.State(0) != Open {
		t.Fatalf("failed probe should reopen; state = %v", tr.State(0))
	}
	// Timer restarted: still rejecting until a fresh timeout elapses.
	clk.Advance(50 * time.Millisecond)
	if tr.Route(0) {
		t.Fatal("reopened breaker should reject until a fresh timeout elapses")
	}
	clk.Advance(60 * time.Millisecond)
	if !tr.Route(0) {
		t.Fatal("second probe should be granted after fresh timeout")
	}
}

func TestSlownessTripsBreaker(t *testing.T) {
	tr, _ := newTestTracker(4, Options{SlowFactor: 5, SlowStrikes: 4})
	// Establish a 1ms baseline on targets 1..3.
	for r := 0; r < 8; r++ {
		for i := 1; i < 4; i++ {
			tr.ObserveOK(i, time.Millisecond)
		}
	}
	// Target 0 serves 10x the median.
	for r := 0; r < 4; r++ {
		if tr.State(0) != Closed {
			break
		}
		tr.ObserveOK(0, 10*time.Millisecond)
	}
	if tr.State(0) != Open {
		t.Fatalf("sustained slowness should open breaker; state = %v", tr.State(0))
	}
	snap := tr.Snapshot()
	if snap[0].Reason != "slow" {
		t.Fatalf("trip reason = %q, want slow", snap[0].Reason)
	}
	if snap[0].Trips != 1 {
		t.Fatalf("trips = %d, want 1", snap[0].Trips)
	}
}

func TestUniformLoadNeverTrips(t *testing.T) {
	tr, _ := newTestTracker(4, Options{SlowFactor: 5, SlowStrikes: 4})
	for r := 0; r < 64; r++ {
		for i := 0; i < 4; i++ {
			tr.ObserveOK(i, time.Duration(1+r%3)*time.Millisecond)
		}
	}
	for i := 0; i < 4; i++ {
		if tr.State(i) != Closed {
			t.Fatalf("target %d tripped under uniform load", i)
		}
	}
}

func TestEWMAAndQuantile(t *testing.T) {
	tr, _ := newTestTracker(2, Options{Alpha: 0.5})
	tr.ObserveOK(0, 10*time.Millisecond)
	if got := tr.EWMA(0); got != 10*time.Millisecond {
		t.Fatalf("first EWMA = %v, want 10ms", got)
	}
	tr.ObserveOK(0, 20*time.Millisecond)
	if got := tr.EWMA(0); got != 15*time.Millisecond {
		t.Fatalf("EWMA = %v, want 15ms", got)
	}
	if tr.Quantile(0.5) == 0 {
		t.Fatal("quantile should be non-zero after observations")
	}
	// Histogram min/max are tracked exactly, so the extremes stay exact.
	if lo, hi := tr.Quantile(0), tr.Quantile(1); lo != 10*time.Millisecond || hi != 20*time.Millisecond {
		t.Fatalf("quantile bounds = %v..%v, want 10ms..20ms", lo, hi)
	}
	for i := 0; i < 32; i++ {
		tr.ObserveOK(1, time.Millisecond)
	}
	if tr.Quantile(0.99) == 0 {
		t.Fatal("quantile after many observations should be non-zero")
	}
}

func TestQuantileEmpty(t *testing.T) {
	tr, _ := newTestTracker(1, Options{})
	if tr.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram should be 0")
	}
}

// An injected shared histogram is read-only for the tracker: the owner
// records observations, the tracker serves quantiles from it, and
// ObserveOK must not double-record.
func TestInjectedLatencyHistogram(t *testing.T) {
	h := obs.NewHistogram()
	clk := &fakeClock{}
	tr := New(2, clk.Now, Options{Latency: h})
	tr.ObserveOK(0, 10*time.Millisecond)
	if h.Count() != 0 {
		t.Fatalf("tracker recorded %d samples into an injected histogram (owner records)", h.Count())
	}
	h.ObserveDuration(10 * time.Millisecond)
	h.ObserveDuration(30 * time.Millisecond)
	if lo, hi := tr.Quantile(0), tr.Quantile(1); lo != 10*time.Millisecond || hi != 30*time.Millisecond {
		t.Fatalf("quantiles from injected histogram = %v..%v", lo, hi)
	}
}

// Breaker life-cycle events land in an injected trace ring.
func TestBreakerTraceEvents(t *testing.T) {
	clk := &fakeClock{}
	trace := obs.NewTrace(16, clk.Now)
	tr := New(2, clk.Now, Options{ErrThreshold: 1, OpenTimeout: 100 * time.Millisecond, Trace: trace})
	tr.ObserveErr(0)
	clk.Advance(150 * time.Millisecond)
	if !tr.Route(0) {
		t.Fatal("probe should be granted")
	}
	tr.ObserveOK(0, time.Millisecond)
	kinds := make(map[string]int)
	for _, ev := range trace.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []string{"resil.breaker.trip", "resil.breaker.probe", "resil.breaker.close"} {
		if kinds[k] == 0 {
			t.Fatalf("missing trace event %s; got %v", k, kinds)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	tr, clk := newTestTracker(8, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 4 {
				case 0:
					tr.ObserveOK(g, time.Duration(i)*time.Microsecond)
				case 1:
					tr.ObserveErr(g)
				case 2:
					tr.Route(g)
					clk.Advance(time.Microsecond)
				case 3:
					tr.Quantile(0.9)
					tr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
}
