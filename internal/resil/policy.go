package resil

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy is the single retry/timeout discipline shared by every storage
// tier (pfs RPCs, burst drain, ckpt restore): bounded retries of
// transient faults with deterministic exponential backoff, an optional
// overall deadline on an injected monotonic clock, and cooperative
// context cancellation between attempts. Keeping the policy in one type
// means every tier classifies transient vs target-down vs corrupt
// identically instead of growing ad-hoc retry loops.
//
// The zero Policy performs exactly one attempt with no backoff.
type Policy struct {
	// MaxRetries bounds how many times a transient failure is retried
	// (total attempts = MaxRetries+1). Zero disables retry.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default: no cap beyond
	// overflow protection).
	MaxDelay time.Duration
	// Timeout bounds one whole Do call — attempts plus backoffs — on
	// the injected clock. Zero means no deadline. Expiry surfaces as an
	// error wrapping context.DeadlineExceeded.
	Timeout time.Duration
	// OnRetry, when set, observes each retry decision just before the
	// backoff sleep (attempt is the 0-based attempt that failed).
	OnRetry func(attempt int, err error)
}

// Clock is the monotonic time source a Policy runs on: virtual time
// inside the simulator (a sim.Proc adapter), wall time outside. Sleep
// must charge the backoff to the calling process.
type Clock interface {
	Now() time.Duration
	Sleep(d time.Duration)
}

type wallClock struct{ epoch time.Time }

func (c wallClock) Now() time.Duration    { return time.Since(c.epoch) }
func (c wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// WallClock returns a real-time Clock (used outside the simulator).
func WallClock() Clock { return wallClock{epoch: time.Now()} }

// Class is the failure classification every tier shares. Markers are
// method interfaces (TransientFault / TargetDown), so classification
// needs no storage-layer imports and works across wrapped chains.
type Class int

const (
	// ClassOK classifies a nil error.
	ClassOK Class = iota
	// ClassTransient marks a retryable fault (e.g. a flaky OST RPC).
	ClassTransient
	// ClassTargetDown marks a request refused by a down storage target
	// (e.g. pfs.DeadOSTError). Never retried: the target needs repair
	// or re-striping, not patience.
	ClassTargetDown
	// ClassCanceled marks context cancellation or a policy/context
	// deadline expiry.
	ClassCanceled
	// ClassFatal is everything else (corruption, programming errors);
	// surfaced immediately.
	ClassFatal
)

func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassTransient:
		return "transient"
	case ClassTargetDown:
		return "target-down"
	case ClassCanceled:
		return "canceled"
	case ClassFatal:
		return "fatal"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classify maps an error onto the shared failure taxonomy.
func Classify(err error) Class {
	if err == nil {
		return ClassOK
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	var down interface{ TargetDown() bool }
	if errors.As(err, &down) && down.TargetDown() {
		return ClassTargetDown
	}
	var tr interface{ TransientFault() bool }
	if errors.As(err, &tr) && tr.TransientFault() {
		return ClassTransient
	}
	return ClassFatal
}

// ClassError is a Class plus a message: the form an error takes after
// crossing a serialization boundary (the collective-I/O fabric, the
// multi-tenant service front-end). The original error value cannot
// travel over a wire, but its classification can — ClassError carries
// it so Classify on the client side returns the same Class the server
// side computed. It implements the marker interfaces Classify probes
// for, and unwraps to the matching context error for ClassCanceled.
type ClassError struct {
	C   Class
	Msg string
}

// NewClassError re-types err for transport: the returned error carries
// err's message and Classify(err). A nil err returns nil.
func NewClassError(err error) *ClassError {
	if err == nil {
		return nil
	}
	return &ClassError{C: Classify(err), Msg: err.Error()}
}

func (e *ClassError) Error() string { return e.Msg }

// Class returns the carried classification.
func (e *ClassError) Class() Class { return e.C }

// TransientFault marks the error retryable when it crossed the wire as
// ClassTransient.
func (e *ClassError) TransientFault() bool { return e.C == ClassTransient }

// TargetDown marks the error as a refused-by-down-target failure when
// it crossed the wire as ClassTargetDown.
func (e *ClassError) TargetDown() bool { return e.C == ClassTargetDown }

// Is lets errors.Is(err, context.Canceled) keep working across the
// wire for canceled requests.
func (e *ClassError) Is(target error) bool {
	return e.C == ClassCanceled && (target == context.Canceled || target == context.DeadlineExceeded)
}

// Backoff computes the delay before retry number attempt+1: exponential
// from BaseDelay, capped at MaxDelay, with a deterministic jitter factor
// in [0.5, 1.5) derived from the attempt and the caller-supplied seed —
// no real-time randomness, so simulations stay reproducible.
func (p Policy) Backoff(attempt int, seed uint64) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if (p.MaxDelay > 0 && d > p.MaxDelay) || d <= 0 {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	h := seed*0x9e3779b97f4a7c15 + uint64(attempt+1)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	frac := float64(h%1024) / 1024.0
	return time.Duration(float64(d) * (0.5 + frac))
}

// Do runs op under the policy: transient failures (ClassTransient) are
// retried up to MaxRetries times with Backoff sleeps on clk; any other
// class — target-down, canceled, fatal — surfaces immediately. ctx is
// checked between attempts (cooperative cancellation: an attempt in
// flight is never interrupted), and Timeout bounds the whole call on
// clk. op receives the 0-based attempt number; the last attempt's error
// is returned on exhaustion.
func (p Policy) Do(ctx context.Context, clk Clock, seed uint64, op func(attempt int) error) error {
	if clk == nil {
		clk = WallClock()
	}
	var deadline time.Duration
	hasDeadline := p.Timeout > 0
	if hasDeadline {
		deadline = clk.Now() + p.Timeout
	}
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("resil: attempt %d not started: %w", attempt+1, err)
			}
		}
		if hasDeadline && clk.Now() >= deadline {
			return fmt.Errorf("resil: policy timeout %v exceeded before attempt %d: %w",
				p.Timeout, attempt+1, context.DeadlineExceeded)
		}
		err := op(attempt)
		if err == nil {
			return nil
		}
		if Classify(err) != ClassTransient || attempt >= p.MaxRetries {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		d := p.Backoff(attempt, seed)
		if hasDeadline {
			rem := deadline - clk.Now()
			if rem <= 0 {
				return fmt.Errorf("resil: policy timeout %v exceeded after %d attempt(s): %w (last error: %v)",
					p.Timeout, attempt+1, context.DeadlineExceeded, err)
			}
			if d > rem {
				d = rem
			}
		}
		clk.Sleep(d)
	}
}
