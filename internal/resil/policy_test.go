package resil

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// policyClock is a manually-advanced monotonic clock; Sleep advances it.
type policyClock struct {
	mu  sync.Mutex
	now time.Duration
	log []time.Duration
}

func (c *policyClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *policyClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	c.log = append(c.log, d)
}

type transientErr struct{}

func (transientErr) Error() string        { return "flaky" }
func (transientErr) TransientFault() bool { return true }

type downErr struct{}

func (downErr) Error() string    { return "target dead" }
func (downErr) TargetDown() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassOK},
		{transientErr{}, ClassTransient},
		{fmt.Errorf("wrapped: %w", transientErr{}), ClassTransient},
		{downErr{}, ClassTargetDown},
		{fmt.Errorf("wrapped: %w", downErr{}), ClassTargetDown},
		{context.Canceled, ClassCanceled},
		{fmt.Errorf("op: %w", context.DeadlineExceeded), ClassCanceled},
		{errors.New("corrupt block"), ClassFatal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestPolicyRetriesTransientUntilSuccess(t *testing.T) {
	clk := &policyClock{}
	p := Policy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}
	fails := 2
	attempts := 0
	err := p.Do(nil, clk, 7, func(attempt int) error {
		attempts++
		if attempt != attempts-1 {
			t.Errorf("attempt = %d, want %d", attempt, attempts-1)
		}
		if fails > 0 {
			fails--
			return transientErr{}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	// Two backoffs, exponential with jitter in [0.5, 1.5).
	if len(clk.log) != 2 {
		t.Fatalf("backoff sleeps = %d, want 2", len(clk.log))
	}
	for i, d := range clk.log {
		base := time.Millisecond << uint(i)
		if d < base/2 || d >= base*3/2 {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, d, base/2, base*3/2)
		}
	}
}

func TestPolicyBudgetExhaustionReturnsLastError(t *testing.T) {
	clk := &policyClock{}
	retried := 0
	p := Policy{
		MaxRetries: 2, BaseDelay: time.Millisecond,
		OnRetry: func(int, error) { retried++ },
	}
	attempts := 0
	err := p.Do(nil, clk, 1, func(int) error { attempts++; return transientErr{} })
	if !errors.As(err, &transientErr{}) {
		t.Fatalf("err = %v, want transientErr", err)
	}
	if attempts != 3 || retried != 2 {
		t.Fatalf("attempts = %d retries = %d, want 3 and 2", attempts, retried)
	}
}

func TestPolicyNeverRetriesTargetDownOrFatal(t *testing.T) {
	clk := &policyClock{}
	p := Policy{MaxRetries: 5, BaseDelay: time.Millisecond}
	for _, bad := range []error{downErr{}, errors.New("fatal")} {
		attempts := 0
		err := p.Do(nil, clk, 1, func(int) error { attempts++; return bad })
		if !errors.Is(err, bad) {
			t.Fatalf("err = %v, want %v", err, bad)
		}
		if attempts != 1 {
			t.Fatalf("attempts = %d for %v, want 1 (no retry)", attempts, bad)
		}
	}
}

func TestPolicyTimeoutBoundsAttemptsAndBackoff(t *testing.T) {
	clk := &policyClock{}
	p := Policy{MaxRetries: 100, BaseDelay: 10 * time.Millisecond, Timeout: 25 * time.Millisecond}
	attempts := 0
	err := p.Do(nil, clk, 1, func(int) error { attempts++; return transientErr{} })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if attempts == 0 || attempts > 4 {
		t.Fatalf("attempts = %d, want a small bounded number", attempts)
	}
	if clk.Now() > 25*time.Millisecond {
		t.Fatalf("clock advanced to %v, past the %v deadline", clk.Now(), p.Timeout)
	}
}

func TestPolicyContextCancellationBetweenAttempts(t *testing.T) {
	clk := &policyClock{}
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxRetries: 10, BaseDelay: time.Millisecond}
	attempts := 0
	err := p.Do(ctx, clk, 1, func(int) error {
		attempts++
		cancel() // cancel while the attempt is in flight
		return transientErr{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled before retry)", attempts)
	}
}

func TestPolicyBackoffDeterministic(t *testing.T) {
	p := Policy{MaxRetries: 4, BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond}
	for attempt := 0; attempt < 4; attempt++ {
		for seed := uint64(0); seed < 8; seed++ {
			a, b := p.Backoff(attempt, seed), p.Backoff(attempt, seed)
			if a != b {
				t.Fatalf("Backoff(%d, %d) not deterministic: %v vs %v", attempt, seed, a, b)
			}
		}
	}
	// The cap must hold even deep into the sequence.
	if d := p.Backoff(40, 3); d >= 96*time.Millisecond {
		t.Fatalf("Backoff(40) = %v, exceeds jittered MaxDelay", d)
	}
}

// TestHalfOpenSingleProbeUnderConcurrency drives an opened breaker past
// its timeout and hammers Route from many goroutines: exactly one caller
// may win the half-open probe, however the race resolves (satellite
// coverage for the breaker's probe single-flight, run under -race).
func TestHalfOpenSingleProbeUnderConcurrency(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Duration { return time.Duration(now.Load()) }
	tr := New(1, clock, Options{ErrThreshold: 1, OpenTimeout: 10 * time.Millisecond})

	tr.ObserveErr(0)
	if tr.State(0) != Open {
		t.Fatalf("state = %v, want Open", tr.State(0))
	}
	if tr.Route(0) {
		t.Fatal("open breaker routed before its timeout")
	}
	now.Store(int64(20 * time.Millisecond))

	const callers = 64
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tr.Route(0) {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()
	if granted.Load() != 1 {
		t.Fatalf("half-open granted %d probes, want exactly 1", granted.Load())
	}
	if tr.State(0) != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", tr.State(0))
	}

	// The probe's success closes the breaker for everyone.
	tr.ObserveOK(0, time.Millisecond)
	var reopened atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tr.Route(0) {
				reopened.Add(1)
			}
		}()
	}
	wg.Wait()
	if reopened.Load() != callers {
		t.Fatalf("closed breaker routed %d/%d callers", reopened.Load(), callers)
	}
}

// TestHalfOpenFailedProbeReopens covers the probe-failure edge under the
// same concurrent load: the failed probe restarts the open timer and no
// caller routes until it elapses again.
func TestHalfOpenFailedProbeReopens(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Duration { return time.Duration(now.Load()) }
	tr := New(1, clock, Options{ErrThreshold: 1, OpenTimeout: 10 * time.Millisecond})

	tr.ObserveErr(0)
	now.Store(int64(15 * time.Millisecond))
	if !tr.Route(0) {
		t.Fatal("timeout elapsed but no probe granted")
	}
	tr.ObserveErr(0) // probe fails
	if tr.State(0) != Open {
		t.Fatalf("state = %v, want Open after failed probe", tr.State(0))
	}
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tr.Route(0) {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()
	if granted.Load() != 0 {
		t.Fatalf("reopened breaker granted %d routes before its timer", granted.Load())
	}
}
