package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("lsm.puts")
	c2 := r.Counter("lsm.puts")
	if c1 != c2 {
		t.Fatal("Counter not get-or-create")
	}
	if r.Gauge("lsm.pending") != r.Gauge("lsm.pending") {
		t.Fatal("Gauge not get-or-create")
	}
	if r.Histogram("lsm.put_latency") != r.Histogram("lsm.put_latency") {
		t.Fatal("Histogram not get-or-create")
	}
	c1.Add(3)
	c1.Inc()
	if got := c2.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	names := r.Names()
	want := []string{"lsm.pending", "lsm.put_latency", "lsm.puts"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").SetMax(int64(i))
				r.Histogram("shared.hist").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared.counter"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["shared.counter"])
	}
	if s.Gauges["shared.gauge"] != 999 {
		t.Fatalf("gauge max = %d, want 999", s.Gauges["shared.gauge"])
	}
	if s.Hists["shared.hist"].Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", s.Hists["shared.hist"].Count)
	}
}

func TestResetAndResetPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("lsm.puts").Add(10)
	r.Counter("pfs.write_ops").Add(20)
	r.Gauge("lsm.pending").Set(5)
	r.Histogram("pfs.lat").Observe(100)
	r.Trace().Emit("test", "x")

	r.ResetPrefix("lsm.")
	s := r.Snapshot()
	if s.Counters["lsm.puts"] != 0 || s.Gauges["lsm.pending"] != 0 {
		t.Fatalf("lsm.* not reset: %+v", s.Counters)
	}
	if s.Counters["pfs.write_ops"] != 20 || s.Hists["pfs.lat"].Count != 1 {
		t.Fatalf("pfs.* should survive a lsm.-prefix reset")
	}
	if r.Trace().Len() != 1 {
		t.Fatal("ResetPrefix must not clear the trace ring")
	}

	r.Reset()
	s = r.Snapshot()
	if s.Counters["pfs.write_ops"] != 0 || s.Hists["pfs.lat"].Count != 0 {
		t.Fatalf("full reset left state: %+v", s.Counters)
	}
	if r.Trace().Len() != 0 {
		t.Fatal("full reset must clear the trace ring")
	}
	// Handles created before the reset keep recording.
	r.Counter("lsm.puts").Inc()
	if r.Snapshot().Counters["lsm.puts"] != 1 {
		t.Fatal("handle dead after reset")
	}
}

func TestSnapshotDeltaAndTree(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.puts").Add(100)
	r.Gauge("burst.pending_bytes").Set(42)
	r.Histogram("pfs.ost.write_latency").Observe(int64(3 * time.Millisecond))
	before := r.Snapshot()
	r.Counter("core.puts").Add(7)
	r.Gauge("burst.pending_bytes").Set(10)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counters["core.puts"] != 7 {
		t.Fatalf("delta counter = %d, want 7", d.Counters["core.puts"])
	}
	if d.Gauges["burst.pending_bytes"] != 10 {
		t.Fatalf("delta gauge should carry the later level, got %d", d.Gauges["burst.pending_bytes"])
	}

	tree := after.Tree()
	b, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	js := string(b)
	for _, frag := range []string{`"core"`, `"puts":107`, `"pfs"`, `"ost"`, `"write_latency"`, `"p99"`} {
		if !strings.Contains(js, frag) {
			t.Fatalf("tree JSON missing %s: %s", frag, js)
		}
	}

	var buf bytes.Buffer
	if err := after.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	txt := buf.String()
	if !strings.Contains(txt, "core.puts") || !strings.Contains(txt, "p999=") {
		t.Fatalf("table output incomplete:\n%s", txt)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("core.puts").Add(5)
	b.Counter("core.puts").Add(9)
	a.Histogram("core.put_latency").Observe(10)
	b.Histogram("core.put_latency").Observe(30)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["core.puts"] != 14 {
		t.Fatalf("merged counter = %d, want 14", m.Counters["core.puts"])
	}
	h := m.Hists["core.put_latency"]
	if h.Count != 2 || h.Min != 10 || h.Max != 30 {
		t.Fatalf("merged hist = %+v", h)
	}
}

func TestTraceRing(t *testing.T) {
	var clock time.Duration
	tr := NewTrace(4, func() time.Duration { return clock })
	for i := 0; i < 6; i++ {
		clock = time.Duration(i) * time.Second
		tr.Emitf("k", "event %d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4 (bounded)", len(evs))
	}
	if evs[0].Detail != "event 2" || evs[3].Detail != "event 5" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq not contiguous: %+v", evs)
		}
	}

	clock = 10 * time.Second
	tr.EmitSpan("span", "work", 8*time.Second)
	evs = tr.Events()
	last := evs[len(evs)-1]
	if last.At != 8*time.Second || last.Dur != 2*time.Second {
		t.Fatalf("span = %+v", last)
	}

	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "span") {
		t.Fatalf("dump:\n%s", buf.String())
	}

	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("reset failed")
	}
}

func TestScope(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("ckpt")
	s.Counter("commits").Inc()
	s.Gauge("keep").Set(3)
	s.Histogram("commit_latency").Observe(1000)
	snap := r.Snapshot()
	if snap.Counters["ckpt.commits"] != 1 || snap.Gauges["ckpt.keep"] != 3 {
		t.Fatalf("scope names wrong: %v", snap.Names())
	}
	if s.Trace() != r.Trace() || s.Registry() != r {
		t.Fatal("scope plumbing wrong")
	}
}

func TestRegistryClock(t *testing.T) {
	r := NewRegistry()
	var virt time.Duration = 5 * time.Minute
	r.SetClock(func() time.Duration { return virt })
	if r.Now() != 5*time.Minute {
		t.Fatalf("Now = %v", r.Now())
	}
	r.Trace().Emit("k", "")
	if evs := r.Trace().Events(); evs[0].At != 5*time.Minute {
		t.Fatalf("trace uses registry clock: %+v", evs[0])
	}
	if s := r.Snapshot(); s.At != 5*time.Minute {
		t.Fatalf("snapshot At = %v", s.At)
	}
}
