package obs

import (
	"testing"
	"time"
)

func TestWindowDeltaViewsDoNotResetCumulativeState(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("w.bytes")
	h := reg.Histogram("w.lat")

	c.Add(100)
	h.ObserveDuration(10 * time.Millisecond)
	w := NewWindow(reg) // primed: pre-window activity excluded

	c.Add(40)
	h.ObserveDuration(20 * time.Millisecond)
	h.ObserveDuration(30 * time.Millisecond)
	win1 := w.Advance()
	if got := win1.Counters["w.bytes"]; got != 40 {
		t.Fatalf("window 1 counter = %d, want 40", got)
	}
	if got := win1.Hists["w.lat"].Count; got != 2 {
		t.Fatalf("window 1 hist count = %d, want 2", got)
	}

	// An empty window is empty, not a repeat of the previous one.
	win2 := w.Advance()
	if got := win2.Counters["w.bytes"]; got != 0 {
		t.Fatalf("idle window counter = %d, want 0", got)
	}
	if got := win2.Hists["w.lat"].Count; got != 0 {
		t.Fatalf("idle window hist count = %d, want 0", got)
	}

	c.Add(5)
	if got := w.Advance().Counters["w.bytes"]; got != 5 {
		t.Fatalf("window 3 counter = %d, want 5", got)
	}

	// The cumulative registry state was never touched: other consumers
	// still see running totals.
	snap := reg.Snapshot()
	if got := snap.Counters["w.bytes"]; got != 145 {
		t.Fatalf("cumulative counter = %d, want 145", got)
	}
	if got := snap.Hists["w.lat"].Count; got != 3 {
		t.Fatalf("cumulative hist count = %d, want 3", got)
	}
	if got := w.Last().Counters["w.bytes"]; got != 145 {
		t.Fatalf("Last() counter = %d, want 145", got)
	}
}

func TestWindowQuantilesArePerWindow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w.lat")
	w := NewWindow(reg)

	// Window 1: fast observations. Window 2: a 10% slow tail. The
	// windowed p99 must reflect only its own window — the cumulative
	// histogram would dilute the tail with all of history.
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	win1 := w.Advance()
	for i := 0; i < 90; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Second)
	}
	win2 := w.Advance()

	if p := win1.Hists["w.lat"].Quantile(0.99); p > int64(10*time.Millisecond) {
		t.Fatalf("window 1 p99 = %v, want ~1ms", time.Duration(p))
	}
	if p := win2.Hists["w.lat"].Quantile(0.99); p < int64(100*time.Millisecond) {
		t.Fatalf("window 2 p99 = %v, want to catch the 1s outlier", time.Duration(p))
	}
}
