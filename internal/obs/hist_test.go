package obs

import (
	"math/rand"
	"sync"
	"testing"
)

// Every value must land in a bucket whose bounds contain it, and bucket
// width must stay within 25% of the lower bound (the log-bucket error
// guarantee the quantile estimates rely on).
func TestBucketBoundaries(t *testing.T) {
	probe := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65,
		1000, 4095, 4096, 4097, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345}
	for _, v := range probe {
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket %d with bounds [%d,%d)", v, idx, lo, hi)
		}
		if lo >= histSmall {
			if width := hi - lo; width*4 > lo {
				t.Fatalf("bucket %d [%d,%d): width %d exceeds 25%% of %d", idx, lo, hi, width, lo)
			}
		}
	}
	// Boundaries are exact: the last value of one bucket and the first of
	// the next must differ in index.
	for _, v := range []int64{3, 4, 7, 8, 15, 16, 4095, 4096} {
		if bucketIndex(v-1) == bucketIndex(v) && v >= histSmall {
			lo, _ := bucketBounds(bucketIndex(v))
			if lo == v {
				t.Fatalf("boundary %d not the start of a new bucket", v)
			}
		}
	}
	// Index function is monotone non-decreasing and stays in range.
	prev := -1
	for v := int64(0); v < 100000; v += 7 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucket index %d out of range for value %d", idx, v)
		}
		prev = idx
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000) // 1µs .. 1ms in ns
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	// Extremes are exact.
	if s.Quantile(0) != 1000 || s.Quantile(1) != 1000000 {
		t.Fatalf("extremes: q0=%d q1=%d, want 1000/1000000", s.Quantile(0), s.Quantile(1))
	}
	// Interior quantiles are bucket estimates: assert within the 25%
	// bucket-width guarantee around the true value.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500000}, {0.9, 900000}, {0.99, 990000}} {
		got := s.Quantile(tc.q)
		lo, hi := tc.want*3/4, tc.want*5/4
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %d, want within [%d,%d]", tc.q, got, lo, hi)
		}
	}
	if mean := s.Mean(); mean != 500500 {
		t.Fatalf("mean = %f, want exactly 500500", mean)
	}
}

// Concurrent recording must be safe (run under -race) and lose nothing.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	if s.Min > s.Max || s.Min < 0 {
		t.Fatalf("min/max inconsistent: %d/%d", s.Min, s.Max)
	}
}

// Merge must be associative (and commutative): merging per-rank
// snapshots in any grouping yields the same aggregate.
func TestMergeAssociativity(t *testing.T) {
	mk := func(seed int64, n int) HistSnapshot {
		h := NewHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1 << 40))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1, 100), mk(2, 300), mk(3, 50)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	comm := c.Merge(a).Merge(b)
	for _, pair := range []struct {
		name string
		x, y HistSnapshot
	}{{"assoc", left, right}, {"comm", left, comm}} {
		x, y := pair.x, pair.y
		if x.Count != y.Count || x.Sum != y.Sum || x.Min != y.Min || x.Max != y.Max {
			t.Fatalf("%s: header mismatch: %+v vs %+v", pair.name, x, y)
		}
		if len(x.Buckets) != len(y.Buckets) {
			t.Fatalf("%s: bucket sets differ", pair.name)
		}
		for i, n := range x.Buckets {
			if y.Buckets[i] != n {
				t.Fatalf("%s: bucket %d: %d vs %d", pair.name, i, n, y.Buckets[i])
			}
		}
	}
	// Merging with an empty snapshot is the identity.
	empty := NewHistogram().Snapshot()
	id := a.Merge(empty)
	if id.Count != a.Count || id.Sum != a.Sum || id.Min != a.Min || id.Max != a.Max {
		t.Fatalf("merge with empty changed the snapshot: %+v vs %+v", id, a)
	}
}

// Delta of two snapshots equals exactly the activity recorded between
// them — the invariant `lsmioctl stats -interval` depends on.
func TestSnapshotDeltaInvariant(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		h.Observe(rng.Int63n(1 << 20))
	}
	before := h.Snapshot()

	between := NewHistogram() // records the same values, independently
	for i := 0; i < 500; i++ {
		v := rng.Int63n(1 << 20)
		h.Observe(v)
		between.Observe(v)
	}
	after := h.Snapshot()

	delta := after.Sub(before)
	want := between.Snapshot()
	if delta.Count != want.Count || delta.Sum != want.Sum {
		t.Fatalf("delta count/sum = %d/%d, want %d/%d", delta.Count, delta.Sum, want.Count, want.Sum)
	}
	for i, n := range want.Buckets {
		if delta.Buckets[i] != n {
			t.Fatalf("delta bucket %d = %d, want %d", i, delta.Buckets[i], n)
		}
	}
	for i := range delta.Buckets {
		if _, ok := want.Buckets[i]; !ok {
			t.Fatalf("delta has spurious bucket %d", i)
		}
	}
	// Delta after a Reset falls back to the later snapshot whole.
	h.Reset()
	h.Observe(7)
	d := h.Snapshot().Sub(after)
	if d.Count != 1 {
		t.Fatalf("post-reset delta count = %d, want 1", d.Count)
	}
}
