package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of every instrument in a registry.
// It is a plain value: safe to retain, merge, diff and serialise.
type Snapshot struct {
	At       time.Duration           `json:"at"`
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"-"`
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0
}

// Delta returns the activity between prev and s: counters and histogram
// buckets are subtracted; gauges are levels, so the later value is kept.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		At:       s.At,
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for n, v := range s.Counters {
		out.Counters[n] = v - prev.Counters[n]
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Hists {
		out.Hists[n] = h.Sub(prev.Hists[n])
	}
	return out
}

// Merge combines two snapshots from distinct registries measuring the
// same kind of work (e.g. per-rank registries): counters, gauges and
// histogram buckets are added bucket-wise.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		At:       s.At,
		Counters: make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)+len(o.Hists)),
	}
	if o.At > out.At {
		out.At = o.At
	}
	for n, v := range s.Counters {
		out.Counters[n] = v
	}
	for n, v := range o.Counters {
		out.Counters[n] += v
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range o.Gauges {
		out.Gauges[n] += v
	}
	for n, h := range s.Hists {
		out.Hists[n] = h.clone()
	}
	for n, h := range o.Hists {
		out.Hists[n] = out.Hists[n].Merge(h)
	}
	return out
}

// Names returns every instrument name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n := range s.Counters {
		out = append(out, n)
	}
	for n := range s.Gauges {
		out = append(out, n)
	}
	for n := range s.Hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Tree renders the snapshot as a nested map keyed by the dotted name
// segments — the shape `lsmioctl stats -json` and the bench JSON emit.
// Counter/gauge leaves are numbers; histogram leaves are summary maps
// (count, sum, min, max, mean, p50, p99, p999, in nanoseconds).
func (s Snapshot) Tree() map[string]any {
	root := make(map[string]any)
	insert := func(name string, v any) {
		parts := strings.Split(name, ".")
		node := root
		for i, p := range parts {
			if i == len(parts)-1 {
				node[p] = v
				return
			}
			child, ok := node[p].(map[string]any)
			if !ok {
				// A leaf and an interior node collide on the same
				// segment; keep the leaf under an empty key.
				if existing, has := node[p]; has {
					child = map[string]any{"": existing}
				} else {
					child = make(map[string]any)
				}
				node[p] = child
			}
			node = child
		}
	}
	for n, v := range s.Counters {
		insert(n, v)
	}
	for n, v := range s.Gauges {
		insert(n, v)
	}
	for n, h := range s.Hists {
		insert(n, h.Summary())
	}
	return root
}

// WriteTable prints the snapshot as an aligned two-column text table,
// one instrument per row, histograms expanded to their summary fields.
func (s Snapshot) WriteTable(w io.Writer) error {
	type row struct{ name, value string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n, v := range s.Counters {
		rows = append(rows, row{n, fmt.Sprintf("%d", v)})
	}
	for n, v := range s.Gauges {
		rows = append(rows, row{n, fmt.Sprintf("%d", v)})
	}
	for n, h := range s.Hists {
		if h.Count == 0 {
			rows = append(rows, row{n, "count=0"})
			continue
		}
		rows = append(rows, row{n, fmt.Sprintf(
			"count=%d mean=%s p50=%s p99=%s p999=%s max=%s",
			h.Count,
			time.Duration(int64(h.Mean())).Round(time.Microsecond),
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.999)).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond),
		)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}
