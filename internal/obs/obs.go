// Package obs is the repo-wide observability core: a dependency-free
// metrics registry (atomic counters, gauges, and log-bucketed latency
// histograms with mergeable snapshots) plus a bounded structured-event
// trace ring. Every layer of the stack — the LSM engine, the simulated
// PFS, the burst-buffer tier, the Manager and the checkpoint store —
// registers its instruments here under hierarchical dotted names
// (`lsm.compaction.bytes_written`, `pfs.ost.write_latency`, ...), so a
// single Snapshot()/Reset()/Delta() surface replaces the five ad-hoc
// per-package stats structs the repo grew in its first PRs.
//
// Conventions:
//
//   - Names are dotted paths, lowercase, with the owning subsystem as
//     the first segment. Counters count events or bytes; gauges hold a
//     level (pending bytes, high-water marks); histograms record
//     latencies in nanoseconds.
//   - Instruments are created on first use (get-or-create) and are safe
//     for concurrent use; recording is lock-free atomics.
//   - Time is an injected monotonic clock so the same instruments work
//     under the discrete-event simulator (virtual time) and in real
//     time. The default clock is wall time since registry creation.
//
// DESIGN.md §10 documents the naming scheme, the trace-event schema and
// the compatibility story for the legacy Stats structs.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic level: it can move both ways, and SetMax keeps a
// monotonic high-water mark.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (high-water tracking).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Registry is a named collection of instruments plus a trace ring. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
	now      func() time.Duration
}

// NewRegistry builds an empty registry whose clock defaults to wall
// time since creation.
func NewRegistry() *Registry {
	start := time.Now()
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		now:      func() time.Duration { return time.Since(start) },
	}
	r.trace = NewTrace(DefaultTraceCapacity, r.Now)
	return r
}

// SetClock replaces the registry's monotonic clock (virtual time inside
// the simulator). The trace ring timestamps with the same clock.
func (r *Registry) SetClock(now func() time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Now reads the registry's monotonic clock.
func (r *Registry) Now() time.Duration {
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return now()
}

// Counter returns (creating on first use) the counter named name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the gauge named name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the histogram named name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// Trace returns the registry's bounded event ring.
func (r *Registry) Trace() *Trace { return r.trace }

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot captures every instrument's current value. The snapshot is a
// plain value: Delta of two snapshots yields exactly the activity that
// happened between them.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		At:       r.now(),
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		s.Hists[n] = h.Snapshot()
	}
	return s
}

// Reset zeroes every instrument and clears the trace ring, starting a
// fresh measurement window. Instrument identities are preserved: handles
// held by subsystems keep recording into the same instruments.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	r.trace.Reset()
}

// ResetPrefix zeroes only the instruments whose dotted name starts with
// prefix (e.g. "lsm."), leaving the rest of a shared registry alone.
func (r *Registry) ResetPrefix(prefix string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		if strings.HasPrefix(n, prefix) {
			c.reset()
		}
	}
	for n, g := range r.gauges {
		if strings.HasPrefix(n, prefix) {
			g.reset()
		}
	}
	for n, h := range r.hists {
		if strings.HasPrefix(n, prefix) {
			h.Reset()
		}
	}
}

// Scope is a name-prefixed view of a registry, so a layer can register
// its instruments under its own subsystem segment without repeating it.
type Scope struct {
	r   *Registry
	pfx string
}

// Scope returns a view that prepends "prefix." to every instrument name.
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, pfx: prefix + "."} }

// Counter returns the scoped counter.
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.pfx + name) }

// Gauge returns the scoped gauge.
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.pfx + name) }

// Histogram returns the scoped histogram.
func (s Scope) Histogram(name string) *Histogram { return s.r.Histogram(s.pfx + name) }

// Trace returns the underlying registry's trace ring.
func (s Scope) Trace() *Trace { return s.r.Trace() }

// Registry returns the underlying registry.
func (s Scope) Registry() *Registry { return s.r }
