package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the registry's embedded event ring. Old
// events are overwritten; Dropped() reports how many.
const DefaultTraceCapacity = 1024

// Event is one structured trace record: a point event (Dur == 0) or a
// span (At = start, Dur = length). Kind is a stable dotted identifier
// ("lsm.flush", "pfs.hedge", "burst.drain.step", ...); Detail is
// free-form human-readable context.
type Event struct {
	Seq    uint64        `json:"seq"`
	At     time.Duration `json:"at"`
	Dur    time.Duration `json:"dur,omitempty"`
	Kind   string        `json:"kind"`
	Detail string        `json:"detail,omitempty"`
}

// Trace is a bounded ring of Events. Emitting never blocks and never
// allocates beyond the ring; when full, the oldest event is dropped.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int // index of the slot to write next
	full    bool
	seq     uint64
	dropped int64
	now     func() time.Duration
}

// NewTrace builds a ring holding at most capacity events, timestamped
// with the given monotonic clock.
func NewTrace(capacity int, now func() time.Duration) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity), now: now}
}

// Emit records a point event at the current clock reading.
func (t *Trace) Emit(kind, detail string) {
	t.emit(Event{Kind: kind, Detail: detail, At: t.now()})
}

// Emitf records a point event with a formatted detail string.
func (t *Trace) Emitf(kind, format string, args ...any) {
	t.Emit(kind, fmt.Sprintf(format, args...))
}

// EmitSpan records a span that started at start and ends now.
func (t *Trace) EmitSpan(kind, detail string, start time.Duration) {
	end := t.now()
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.emit(Event{Kind: kind, Detail: detail, At: start, Dur: dur})
}

func (t *Trace) emit(ev Event) {
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dropped reports how many events were overwritten since the last Reset.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many events are currently buffered.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Reset clears the ring and the dropped count.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = 0
	t.full = false
	t.dropped = 0
}

// Dump writes the buffered events as human-readable lines, oldest
// first, for post-mortem inspection (robustness sweeps dump this on
// failure).
func (t *Trace) Dump(w io.Writer) error {
	events := t.Events()
	dropped := t.Dropped()
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events dropped ...\n", dropped); err != nil {
			return err
		}
	}
	for _, ev := range events {
		var err error
		if ev.Dur > 0 {
			_, err = fmt.Fprintf(w, "%12s +%-10s %-24s %s\n", ev.At, ev.Dur, ev.Kind, ev.Detail)
		} else {
			_, err = fmt.Fprintf(w, "%12s %11s %-24s %s\n", ev.At, "", ev.Kind, ev.Detail)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
