package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..3 get their own bucket; every
// power-of-two range above that is split into 4 linear sub-buckets, so
// bucket width is at most 25% of the value (~12.5% representative
// error at the midpoint). With int64 nanosecond values that is
// 4 + 62*4 = 252 buckets, all atomics — recording is lock-free and
// snapshots are mergeable bucket-wise.
const (
	histSmall   = 4 // values 0..3 map to buckets 0..3 exactly
	histSubBits = 2 // 4 linear sub-buckets per power of two
	numBuckets  = histSmall + (63-histSubBits+1)*(1<<histSubBits)
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSmall {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= 2
	sub := int((uint64(v) >> (uint(e) - histSubBits)) & (1<<histSubBits - 1))
	return histSmall + (e-histSubBits)*(1<<histSubBits) + sub
}

// bucketBounds returns the inclusive lower and exclusive upper value
// bound of bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSmall {
		return int64(idx), int64(idx) + 1
	}
	b := idx - histSmall
	e := uint(b>>histSubBits) + histSubBits
	sub := int64(b & (1<<histSubBits - 1))
	width := int64(1) << (e - histSubBits)
	lo = int64(1)<<e + sub*width
	return lo, lo + width
}

// Histogram is a lock-free log-bucketed histogram of int64 values
// (latencies in nanoseconds by convention). Min and max are tracked
// exactly, so Quantile(0) and Quantile(1) are exact; interior quantiles
// are bucket-midpoint estimates with ≤25% bucket width.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile of the live histogram.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observe calls; callers reset between measurement windows.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
}

// Snapshot captures the histogram's current contents as a plain value.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram. Only non-empty
// buckets are materialised. Merge is associative and commutative
// (bucket-wise addition), and Sub produces the delta between two
// snapshots of the same histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Min     int64 // exact; valid when Count > 0
	Max     int64
	Buckets map[int]int64 // bucket index -> count, empty buckets omitted
}

// Quantile estimates the q-quantile (q in [0,1]). Returns 0 on an empty
// snapshot. Quantile(0) and Quantile(1) return the exact min and max.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(q * float64(s.Count-1))
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum > rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo)/2
			// The exact extremes bound every estimate.
			if mid < s.Min {
				mid = s.Min
			}
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge combines two snapshots (e.g. the same instrument from several
// ranks). Bucket-wise addition: associative and commutative.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if o.Count == 0 {
		return s.clone()
	}
	if s.Count == 0 {
		return o.clone()
	}
	out := HistSnapshot{
		Count:   s.Count + o.Count,
		Sum:     s.Sum + o.Sum,
		Min:     s.Min,
		Max:     s.Max,
		Buckets: make(map[int]int64, len(s.Buckets)+len(o.Buckets)),
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i, n := range s.Buckets {
		out.Buckets[i] = n
	}
	for i, n := range o.Buckets {
		out.Buckets[i] += n
	}
	return out
}

// Sub returns the activity between prev and s, where prev is an earlier
// snapshot of the same histogram: bucket-wise subtraction. Min/Max of a
// window cannot be recovered from cumulative extremes, so the delta
// carries the cumulative Min/Max (still valid bounds for the window).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	if out.Count < 0 { // prev is from after a Reset; treat s as the window
		return s.clone()
	}
	for i, n := range s.Buckets {
		if d := n - prev.Buckets[i]; d > 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]int64)
			}
			out.Buckets[i] = d
		}
	}
	return out
}

func (s HistSnapshot) clone() HistSnapshot {
	out := s
	if s.Buckets != nil {
		out.Buckets = make(map[int]int64, len(s.Buckets))
		for i, n := range s.Buckets {
			out.Buckets[i] = n
		}
	}
	return out
}

// Summary flattens the snapshot into the fixed set of derived values
// used by JSON emitters: count, sum, min, max, mean, p50, p99, p999.
func (s HistSnapshot) Summary() map[string]float64 {
	if s.Count <= 0 {
		return map[string]float64{"count": 0}
	}
	return map[string]float64{
		"count": float64(s.Count),
		"sum":   float64(s.Sum),
		"min":   float64(s.Min),
		"max":   float64(s.Max),
		"mean":  s.Mean(),
		"p50":   float64(s.Quantile(0.50)),
		"p99":   float64(s.Quantile(0.99)),
		"p999":  float64(s.Quantile(0.999)),
	}
}
