package obs

// Window provides windowed (delta-since-last-advance) views over a
// registry's cumulative instruments without resetting them: other
// consumers reading the same registry keep seeing monotonic counters
// and ever-growing histograms, while the Window's owner sees only the
// activity inside each window. The stability harness uses one Window
// per reporting period to compute per-window throughput and quantiles
// (windowed p999 drift) from the same registry the engine, burst tier
// and scheduler record into.
//
// A Window is a cursor, not a copy of the registry: it retains the last
// snapshot it was primed or advanced with. It is not safe for
// concurrent use by multiple goroutines.
type Window struct {
	reg  *Registry
	prev Snapshot
}

// NewWindow opens a windowed view over reg, primed at the registry's
// current state: the first Advance returns only activity after this
// call.
func NewWindow(reg *Registry) *Window {
	return &Window{reg: reg, prev: reg.Snapshot()}
}

// Advance closes the current window and opens the next one, returning
// the delta snapshot for the closed window: counters and histogram
// buckets are activity within the window, gauges are the level at the
// window's end. The registry itself is never mutated.
func (w *Window) Advance() Snapshot {
	cur := w.reg.Snapshot()
	delta := cur.Delta(w.prev)
	w.prev = cur
	return delta
}

// Last returns the cumulative snapshot the window is currently primed
// at (the state as of the latest NewWindow/Advance), for callers that
// need both the windowed and the running totals.
func (w *Window) Last() Snapshot { return w.prev }
