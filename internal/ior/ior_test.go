package ior

import (
	"fmt"
	"testing"

	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

func smallCluster(nodes int) *pfs.Cluster {
	cfg := pfs.VikingConfig(nodes)
	return pfs.NewCluster(sim.NewKernel(), cfg)
}

// smallParams keeps the data volume tiny so correctness tests are fast.
func smallParams(api API) Params {
	p := DefaultParams(api, 64<<10, 4) // 4 segments of 64 KB per rank
	p.DoRead = true
	p.Verify = true
	p.WriteBufferSize = 256 << 10
	return p
}

func TestAllAPIsWriteReadVerify(t *testing.T) {
	for _, api := range []API{APIPosix, APIHDF5, APIADIOS2, APILSMIO, APILSMIOPlugin} {
		for _, nodes := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/n%d", api, nodes), func(t *testing.T) {
				cluster := smallCluster(nodes)
				res, err := Run(cluster, nodes, smallParams(api))
				if err != nil {
					t.Fatal(err)
				}
				if res.WriteBW <= 0 || res.ReadBW <= 0 {
					t.Fatalf("bandwidths: write=%v read=%v", res.WriteBW, res.ReadBW)
				}
				if res.TotalBytes != int64(nodes)*4*64<<10 {
					t.Fatalf("total bytes = %d", res.TotalBytes)
				}
			})
		}
	}
}

func TestCollectiveWriteReadVerify(t *testing.T) {
	for _, api := range []API{APIPosix, APIHDF5} {
		for _, nodes := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/n%d", api, nodes), func(t *testing.T) {
				cluster := smallCluster(nodes)
				p := smallParams(api)
				p.Collective = true
				res, err := Run(cluster, nodes, p)
				if err != nil {
					t.Fatal(err)
				}
				if res.WriteBW <= 0 || res.ReadBW <= 0 {
					t.Fatalf("bandwidths: %+v", res)
				}
			})
		}
	}
}

func TestFilePerProcess(t *testing.T) {
	for _, api := range []API{APIPosix, APIHDF5} {
		t.Run(string(api), func(t *testing.T) {
			cluster := smallCluster(4)
			p := smallParams(api)
			p.FilePerProc = true
			res, err := Run(cluster, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.WriteBW <= 0 || res.ReadBW <= 0 {
				t.Fatalf("bandwidths: %+v", res)
			}
		})
	}
}

func TestLevelBackendLSMIO(t *testing.T) {
	cluster := smallCluster(2)
	p := smallParams(APILSMIO)
	p.LSMIOBackend = "level"
	res, err := Run(cluster, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteBW <= 0 || res.ReadBW <= 0 {
		t.Fatalf("bandwidths: %+v", res)
	}
}

func TestTransferSmallerThanBlock(t *testing.T) {
	cluster := smallCluster(2)
	p := smallParams(APIPosix)
	p.BlockSize = 4 * p.TransferSize // 4 transfers per block
	res, err := Run(cluster, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerRank != p.BlockSize*int64(p.SegmentCount) {
		t.Fatalf("bytes per rank = %d", res.BytesPerRank)
	}
}

func TestParamValidation(t *testing.T) {
	cluster := smallCluster(1)
	p := smallParams(APIPosix)
	p.TransferSize = 0
	if _, err := Run(cluster, 1, p); err == nil {
		t.Fatal("zero transfer size should error")
	}
	p = smallParams(APIPosix)
	p.BlockSize = p.TransferSize * 3 / 2
	if _, err := Run(cluster, 1, p); err == nil {
		t.Fatal("non-multiple block size should error")
	}
	p = smallParams("bogus")
	if _, err := Run(cluster, 1, p); err == nil {
		t.Fatal("unknown API should error")
	}
}

func TestSegmentedLayoutInterleavesRanks(t *testing.T) {
	e := &env{p: &Params{TransferSize: 64 << 10, BlockSize: 64 << 10}, nodes: 4}
	// Segment 0: ranks at 0, 64K, 128K, 192K. Segment 1 starts at 256K.
	if got := e.fileOffsetFor(2, 0, 0); got != 128<<10 {
		t.Fatalf("rank2 seg0 = %d", got)
	}
	if got := e.fileOffsetFor(0, 1, 0); got != 256<<10 {
		t.Fatalf("rank0 seg1 = %d", got)
	}
	e.p.FilePerProc = true
	if got := e.fileOffsetFor(2, 1, 0); got != 64<<10 {
		t.Fatalf("fpp rank2 seg1 = %d", got)
	}
}

// TestWriteReadBandwidthOrdering sanity-checks the model at a small scale:
// LSMIO must beat the interleaved shared-file baseline once ranks exceed
// the stripe count.
func TestLSMIOBeatsBaselinePastStripeCount(t *testing.T) {
	const nodes = 8 // stripe count 4
	base, err := Run(smallCluster(nodes), nodes, func() Params {
		p := DefaultParams(APIPosix, 64<<10, 16)
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	lsmio, err := Run(smallCluster(nodes), nodes, func() Params {
		p := DefaultParams(APILSMIO, 64<<10, 16)
		p.WriteBufferSize = 1 << 20
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	if lsmio.WriteBW <= base.WriteBW {
		t.Fatalf("LSMIO (%.1f MB/s) should beat baseline (%.1f MB/s) at %d nodes",
			lsmio.WriteBW/1e6, base.WriteBW/1e6, nodes)
	}
}

func TestCollectiveLSMIOSharedStore(t *testing.T) {
	for _, group := range []int{0, 2} {
		t.Run(fmt.Sprintf("group%d", group), func(t *testing.T) {
			cluster := smallCluster(4)
			p := smallParams(APILSMIO)
			p.LSMIOCollective = true
			p.LSMIOGroupSize = group
			res, err := Run(cluster, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.WriteBW <= 0 || res.ReadBW <= 0 {
				t.Fatalf("bandwidths: %+v", res)
			}
		})
	}
}

func TestLSMIOBatchRead(t *testing.T) {
	cluster := smallCluster(4)
	p := smallParams(APILSMIO)
	p.LSMIOBatchRead = true
	res, err := Run(cluster, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadBW <= 0 {
		t.Fatalf("read bandwidth: %+v", res)
	}
}

// TestDeterminism runs the same experiment twice on fresh clusters and
// demands identical virtual-time results — the property that makes every
// number in EXPERIMENTS.md exactly reproducible.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		cluster := smallCluster(4)
		p := smallParams(APILSMIO)
		res, err := Run(cluster, 4, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.WriteSeconds != b.WriteSeconds || a.ReadSeconds != b.ReadSeconds {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
