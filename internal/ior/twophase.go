package ior

import (
	"fmt"
)

// Two-phase (collective buffering) I/O, ROMIO-style as tuned for Lustre:
// one aggregator per file stripe (cb_nodes = stripe count, capped at the
// world size). In the exchange phase every rank ships each stripe-sized
// piece of its transfer to the piece's owning aggregator; in the I/O phase
// the aggregator writes the pieces it owns, which land on a single OST as
// an ascending single-writer stream — eliminating the extent-lock
// migration and seek storm that kill interleaved N-to-1 writes.
//
// Sends are eager (buffered at the destination), so the per-transfer
// exchange cannot deadlock even though all ranks run the same loop.

const tagTwoPhase = 7

type twoPhasePiece struct {
	off  int64
	data []byte
}

type twoPhase struct {
	e        *env
	aggCount int
	// writeRaw is the aggregator's bulk write path (posix WriteAt or the
	// HDF5 raw data channel).
	writeRaw func(data []byte, off int64) error
}

func newTwoPhase(e *env, writeRaw func(data []byte, off int64) error) *twoPhase {
	agg := e.p.StripeCount
	if agg > e.nodes {
		agg = e.nodes
	}
	if agg < 1 {
		agg = 1
	}
	return &twoPhase{e: e, aggCount: agg, writeRaw: writeRaw}
}

// owner returns the aggregator rank owning the stripe at a file offset.
func (tp *twoPhase) owner(fileOff int64) int {
	return int((fileOff / tp.e.p.StripeSize) % int64(tp.aggCount))
}

// splitByStripe cuts [off, off+n) at stripe boundaries.
func (tp *twoPhase) splitByStripe(off, n int64) []twoPhasePiece {
	var pieces []twoPhasePiece
	ss := tp.e.p.StripeSize
	for n > 0 {
		within := off % ss
		take := ss - within
		if take > n {
			take = n
		}
		pieces = append(pieces, twoPhasePiece{off: off, data: nil})
		pieces[len(pieces)-1].data = make([]byte, take) // filled by caller
		off += take
		n -= take
	}
	return pieces
}

// write performs the exchange + I/O phases for this rank's transfer
// (seg, t) at file offset off. All ranks call it for the same (seg, t) in
// the same order; fileOffsetOf tells the aggregator where every other
// rank's transfer landed. dataFileOff maps the transfer's logical offset
// to the physical file offset (identity for posix; dataset shift for
// HDF5).
func (tp *twoPhase) write(seg, t int, off int64, data []byte,
	fileOffsetOf func(rank, seg, t int) int64) error {
	r := tp.e.rank
	me := r.Rank()

	// Exchange phase: ship my pieces to their owners (copies, since the
	// caller reuses its buffer).
	var mine []twoPhasePiece
	pos := int64(0)
	for _, pc := range tp.splitByStripe(off, int64(len(data))) {
		copy(pc.data, data[pos:pos+int64(len(pc.data))])
		pos += int64(len(pc.data))
		owner := tp.owner(pc.off)
		if owner == me {
			mine = append(mine, pc)
			continue
		}
		r.Send(owner, tagTwoPhase, pc, int64(len(pc.data))+16)
	}

	// I/O phase: aggregators collect every piece of this round and write
	// them in rank order (ascending object offsets per OST).
	if me < tp.aggCount {
		myIdx := 0
		for src := 0; src < tp.e.nodes; src++ {
			srcOff := fileOffsetOf(src, seg, t)
			for _, pc := range tp.splitByStripe(srcOff, int64(len(data))) {
				if tp.owner(pc.off) != me {
					continue
				}
				var piece twoPhasePiece
				if src == me {
					piece = mine[myIdx]
					myIdx++
				} else {
					piece = r.Recv(src, tagTwoPhase).(twoPhasePiece)
				}
				if piece.off != pc.off {
					return fmt.Errorf("ior: two-phase protocol error: expected piece at %d, got %d", pc.off, piece.off)
				}
				if err := tp.writeRaw(piece.data, piece.off); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sieveReader models ROMIO's data-sieving read path for non-contiguous
// (interleaved N-to-1) collective reads: to read a strided piece, the
// library reads the whole covering extent into a scratch buffer and copies
// the wanted bytes out. Amplification grows with the interleave factor —
// the mechanism behind the paper's observation that collective I/O makes
// IOR reads dramatically slower.
type sieveReader struct {
	e       *env
	readRaw func(dst []byte, off int64) error
	scratch []byte
	window  int64
}

const maxSieveBuffer = 4 << 20 // ROMIO's default ind_rd_buffer_size ballpark

func newSieveReader(e *env, readRaw func(dst []byte, off int64) error) *sieveReader {
	window := int64(e.nodes) * e.p.TransferSize
	if window > maxSieveBuffer {
		window = maxSieveBuffer
	}
	if window < e.p.TransferSize {
		window = e.p.TransferSize
	}
	return &sieveReader{e: e, readRaw: readRaw, window: window}
}

func (sr *sieveReader) read(off int64, dst []byte, fileSize int64) error {
	start := off - off%sr.window
	end := start + sr.window
	// The requested range must always be covered, even when it straddles
	// a window boundary (HDF5 shifts data extents by its metadata region).
	if want := off + int64(len(dst)); want > end {
		end = want
	}
	if fileSize > 0 && end > fileSize {
		end = fileSize
	}
	if want := off + int64(len(dst)); end < want {
		end = want
	}
	length := end - start
	if int64(cap(sr.scratch)) < length {
		sr.scratch = make([]byte, length)
	}
	buf := sr.scratch[:length]
	if err := sr.readRaw(buf, start); err != nil {
		return err
	}
	copy(dst, buf[off-start:])
	return nil
}
