// Package ior reimplements the IOR parallel I/O benchmark on the
// simulated cluster: the same block/transfer/segment access-pattern
// generator, N-to-1 shared-file and file-per-process layouts, optional
// collective I/O, write and read-back phases, and the same measurement
// rule the paper uses (first MPI barrier → last I/O operation → second
// MPI barrier).
//
// Five API backends mirror the paper's comparison: posix (the IOR
// baseline), hdf5, adios2, lsmio (the paper's library driven through its
// K/V API) and lsmio-plugin (LSMIO behind the ADIOS2 plugin interface).
package ior

import (
	"fmt"

	"lsmio/internal/core"
	"lsmio/internal/mpisim"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// API selects the I/O backend.
type API string

// Backends.
const (
	APIPosix       API = "posix"
	APIHDF5        API = "hdf5"
	APIADIOS2      API = "adios2"
	APILSMIO       API = "lsmio"
	APILSMIOPlugin API = "lsmio-plugin"
)

// Params mirrors the IOR command line options the paper exercises.
type Params struct {
	API API
	// TransferSize is the bytes moved per I/O call; the paper sets it
	// equal to BlockSize (Appendix A.1.6).
	TransferSize int64
	// BlockSize is each rank's contiguous extent per segment.
	BlockSize int64
	// SegmentCount repeats the block pattern; per-rank data volume is
	// BlockSize * SegmentCount.
	SegmentCount int
	// FilePerProc switches from N-to-1 shared file to N-to-N.
	FilePerProc bool
	// Collective enables two-phase (ROMIO-style) I/O for posix and hdf5.
	Collective bool
	// StripeCount / StripeSize configure the file's Lustre layout.
	StripeCount int
	StripeSize  int64
	// DoWrite / DoRead select the phases; Verify checks data content on
	// read-back.
	DoWrite bool
	DoRead  bool
	Verify  bool
	// Fsync drains device queues inside the measured write phase (IOR -e).
	Fsync bool
	// TestFile is the base path on the PFS.
	TestFile string
	// WriteBufferSize sets LSMIO's memtable and ADIOS2's BufferChunkSize
	// (the paper uses 32 MB for both).
	WriteBufferSize int
	// LSMIOBackend picks the rocks- or level-style local store.
	LSMIOBackend core.Backend
	// LSMIOCollective enables the paper's §5.1 collective mode: one
	// leader-hosted store per group of LSMIOGroupSize ranks (0 = one
	// group spanning all ranks), members forwarding K/V operations.
	LSMIOCollective bool
	LSMIOGroupSize  int
	// LSMIOBatchRead reads back via one sequential batch sweep instead of
	// per-key point lookups (the paper's §5.1 read optimization).
	LSMIOBatchRead bool
}

// DefaultParams returns the paper's headline configuration for a given
// transfer size: transfer == block, N-to-1, stripe count 4.
func DefaultParams(api API, transfer int64, segments int) Params {
	return Params{
		API:             api,
		TransferSize:    transfer,
		BlockSize:       transfer,
		SegmentCount:    segments,
		StripeCount:     4,
		StripeSize:      transfer,
		DoWrite:         true,
		DoRead:          false,
		Fsync:           true,
		TestFile:        "testfile",
		WriteBufferSize: 32 << 20,
	}
}

func (p *Params) normalize() error {
	if p.TransferSize <= 0 || p.BlockSize <= 0 || p.SegmentCount <= 0 {
		return fmt.Errorf("ior: transfer/block/segments must be positive")
	}
	if p.BlockSize%p.TransferSize != 0 {
		return fmt.Errorf("ior: block size must be a multiple of transfer size")
	}
	if p.TestFile == "" {
		p.TestFile = "testfile"
	}
	if p.WriteBufferSize <= 0 {
		p.WriteBufferSize = 32 << 20
	}
	if p.StripeCount <= 0 {
		p.StripeCount = 4
	}
	if p.StripeSize <= 0 {
		p.StripeSize = p.TransferSize
	}
	return nil
}

// Result reports aggregate bandwidths in bytes/second, as IOR does.
type Result struct {
	Nodes        int
	WriteBW      float64
	ReadBW       float64
	WriteSeconds float64
	ReadSeconds  float64
	BytesPerRank int64
	TotalBytes   int64
	Storage      pfs.Stats // cumulative cluster stats after the run
}

// backend is one rank's API driver. Offsets are file offsets for the
// shared-file layout and per-own-file offsets for file-per-process.
type backend interface {
	// setupWrite prepares files for the write phase (outside the timed
	// region, like IOR's open outside -O useO_DIRECT ... timing).
	setupWrite() error
	// writeAt stores one transfer.
	writeAt(seg int, off int64, data []byte) error
	// finishWrite completes the write phase inside the timed region
	// (PerformPuts/close/write barrier, per API).
	finishWrite() error
	// setupRead prepares the read phase.
	setupRead() error
	// readAt loads one transfer.
	readAt(seg int, off int64, dst []byte) error
	// finishRead completes the read phase.
	finishRead() error
}

// env is what a backend needs from the harness.
type env struct {
	p       *Params
	rank    *mpisim.Rank
	cluster *pfs.Cluster
	fs      *pfs.ClientFS
	kern    *sim.Kernel
	nodes   int
	shared  *sharedState
}

// sharedState is cross-rank rendezvous state for one Run (the simulation
// is cooperatively scheduled, so plain fields suffice; ranks synchronize
// access with barriers).
type sharedState struct {
	// kvServices maps a group-leader rank to its collective K/V service.
	kvServices map[int]*core.KVService
}

// fileOffset computes where (seg, transfer t) of this rank lands.
// IOR's segmented layout: segment s holds rank blocks back to back.
func (e *env) fileOffset(seg, t int) int64 {
	if e.p.FilePerProc {
		return int64(seg)*e.p.BlockSize + int64(t)*e.p.TransferSize
	}
	n := int64(e.nodes)
	return int64(seg)*n*e.p.BlockSize +
		int64(e.rank.Rank())*e.p.BlockSize +
		int64(t)*e.p.TransferSize
}

// pattern fills buf with a deterministic, offset-dependent byte pattern so
// read-back verification is meaningful.
func pattern(buf []byte, rank int, globalOff int64) {
	x := uint64(globalOff)*2654435761 + uint64(rank)*97
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// Run executes one IOR experiment on a fresh MPI world over the cluster.
func Run(cluster *pfs.Cluster, nodes int, p Params) (Result, error) {
	if err := p.normalize(); err != nil {
		return Result{}, err
	}
	k := cluster.Kernel()
	world := mpisim.NewWorld(k, cluster.Fabric(), nodes)

	res := Result{Nodes: nodes}
	res.BytesPerRank = p.BlockSize * int64(p.SegmentCount)
	res.TotalBytes = res.BytesPerRank * int64(nodes)
	xfersPerBlock := int(p.BlockSize / p.TransferSize)

	var firstErr error
	fail := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}

	shared := &sharedState{kvServices: make(map[int]*core.KVService)}
	world.Launch(func(r *mpisim.Rank) {
		e := &env{
			p:       &p,
			rank:    r,
			cluster: cluster,
			fs:      cluster.Client(r.Rank()),
			kern:    k,
			nodes:   nodes,
			shared:  shared,
		}
		b, err := newBackend(e)
		if err != nil {
			fail(err)
			return
		}
		buf := make([]byte, p.TransferSize)

		if p.DoWrite {
			if err := b.setupWrite(); err != nil {
				fail(fmt.Errorf("rank %d setupWrite: %w", r.Rank(), err))
				return
			}
			r.Barrier()
			t0 := r.MaxTime(r.Now())
			for seg := 0; seg < p.SegmentCount; seg++ {
				for t := 0; t < xfersPerBlock; t++ {
					off := e.fileOffset(seg, t)
					pattern(buf, r.Rank(), off)
					if err := b.writeAt(seg, off, buf); err != nil {
						fail(fmt.Errorf("rank %d write seg %d: %w", r.Rank(), seg, err))
						return
					}
				}
			}
			if err := b.finishWrite(); err != nil {
				fail(fmt.Errorf("rank %d finishWrite: %w", r.Rank(), err))
				return
			}
			r.Barrier()
			t1 := r.MaxTime(r.Now())
			if r.Rank() == 0 {
				res.WriteSeconds = t1.Sub(t0).Seconds()
			}
		}

		if p.DoRead {
			if err := b.setupRead(); err != nil {
				fail(fmt.Errorf("rank %d setupRead: %w", r.Rank(), err))
				return
			}
			r.Barrier()
			t0 := r.MaxTime(r.Now())
			dst := make([]byte, p.TransferSize)
			want := make([]byte, p.TransferSize)
			for seg := 0; seg < p.SegmentCount; seg++ {
				for t := 0; t < xfersPerBlock; t++ {
					off := e.fileOffset(seg, t)
					if err := b.readAt(seg, off, dst); err != nil {
						fail(fmt.Errorf("rank %d read seg %d: %w", r.Rank(), seg, err))
						return
					}
					if p.Verify {
						pattern(want, r.Rank(), off)
						if string(dst) != string(want) {
							fail(fmt.Errorf("rank %d seg %d: data verification failed", r.Rank(), seg))
							return
						}
					}
				}
			}
			if err := b.finishRead(); err != nil {
				fail(fmt.Errorf("rank %d finishRead: %w", r.Rank(), err))
				return
			}
			r.Barrier()
			t1 := r.MaxTime(r.Now())
			if r.Rank() == 0 {
				res.ReadSeconds = t1.Sub(t0).Seconds()
			}
		}
	})
	err := k.Run()
	// A rank that fails bails out of the collective pattern, so the
	// kernel typically reports a deadlock too; the root cause is the
	// rank's own error.
	if firstErr != nil {
		return Result{}, firstErr
	}
	if err != nil {
		return Result{}, err
	}
	if res.WriteSeconds > 0 {
		res.WriteBW = float64(res.TotalBytes) / res.WriteSeconds
	}
	if res.ReadSeconds > 0 {
		res.ReadBW = float64(res.TotalBytes) / res.ReadSeconds
	}
	res.Storage = cluster.Stats()
	return res, nil
}
