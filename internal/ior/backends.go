package ior

import (
	"fmt"
	"io"

	"lsmio/internal/adios2"
	"lsmio/internal/core"
	"lsmio/internal/hdf5sim"
	"lsmio/internal/lsm"
	"lsmio/internal/lsmioplugin"
	"lsmio/internal/mpisim"
	"lsmio/internal/vfs"
)

func newBackend(e *env) (backend, error) {
	switch e.p.API {
	case APIPosix, "":
		return &posixBackend{e: e}, nil
	case APIHDF5:
		return &hdf5Backend{e: e}, nil
	case APIADIOS2:
		return &adios2Backend{e: e, engineType: "BP5"}, nil
	case APILSMIOPlugin:
		lsmioplugin.Register()
		return &adios2Backend{e: e, engineType: "plugin"}, nil
	case APILSMIO:
		return &lsmioBackend{e: e}, nil
	default:
		return nil, fmt.Errorf("ior: unknown API %q", e.p.API)
	}
}

// fileOffsetFor is fileOffset generalized to any rank (two-phase
// aggregators need to know every rank's access pattern).
func (e *env) fileOffsetFor(rank, seg, t int) int64 {
	if e.p.FilePerProc {
		return int64(seg)*e.p.BlockSize + int64(t)*e.p.TransferSize
	}
	n := int64(e.nodes)
	return int64(seg)*n*e.p.BlockSize +
		int64(rank)*e.p.BlockSize +
		int64(t)*e.p.TransferSize
}

// ---------------------------------------------------------------- posix

// posixBackend is the IOR baseline: plain WriteAt/ReadAt against one
// shared striped file (or one file per process), optionally through
// two-phase collective buffering.
type posixBackend struct {
	e  *env
	f  vfs.File
	tp *twoPhase
	sv *sieveReader
}

func (b *posixBackend) path() string {
	if b.e.p.FilePerProc {
		return fmt.Sprintf("%s.%08d", b.e.p.TestFile, b.e.rank.Rank())
	}
	return b.e.p.TestFile
}

func (b *posixBackend) setupWrite() error {
	p, fs, r := b.e.p, b.e.fs, b.e.rank
	if p.FilePerProc {
		f, err := fs.CreateStriped(b.path(), p.StripeCount, p.StripeSize)
		if err != nil {
			return err
		}
		b.f = f
	} else {
		if r.Rank() == 0 {
			f, err := fs.CreateStriped(b.path(), p.StripeCount, p.StripeSize)
			if err != nil {
				return err
			}
			b.f = f
		}
		r.Barrier()
		if r.Rank() != 0 {
			f, err := fs.Open(b.path())
			if err != nil {
				return err
			}
			b.f = f
		}
	}
	if p.Collective && !p.FilePerProc {
		b.tp = newTwoPhase(b.e, func(data []byte, off int64) error {
			_, err := b.f.WriteAt(data, off)
			return err
		})
	}
	return nil
}

func (b *posixBackend) writeAt(seg int, off int64, data []byte) error {
	if b.tp != nil {
		t := int((off - b.e.fileOffsetFor(b.e.rank.Rank(), seg, 0)) / b.e.p.TransferSize)
		return b.tp.write(seg, t, off, data, b.e.fileOffsetFor)
	}
	_, err := b.f.WriteAt(data, off)
	return err
}

func (b *posixBackend) finishWrite() error {
	if b.e.p.Fsync {
		return b.f.Sync()
	}
	return nil
}

func (b *posixBackend) setupRead() error {
	if b.f == nil {
		f, err := b.e.fs.Open(b.path())
		if err != nil {
			return err
		}
		b.f = f
	}
	if b.e.p.Collective && !b.e.p.FilePerProc {
		b.sv = newSieveReader(b.e, func(dst []byte, off int64) error {
			_, err := b.f.ReadAt(dst, off)
			if err == io.EOF {
				err = nil
			}
			return err
		})
	}
	return nil
}

func (b *posixBackend) readAt(seg int, off int64, dst []byte) error {
	if b.sv != nil {
		size, err := b.f.Size()
		if err != nil {
			return err
		}
		return b.sv.read(off, dst, size)
	}
	_, err := b.f.ReadAt(dst, off)
	if err == io.EOF {
		err = nil
	}
	return err
}

func (b *posixBackend) finishRead() error { return nil }

// ----------------------------------------------------------------- hdf5

// hdf5Backend drives IOR's HDF5 mode: one chunked dataset in a shared
// file, chunk size = transfer size; every chunk write also updates the
// object header and the chunk B-tree near the head of the file.
type hdf5Backend struct {
	e  *env
	h  *hdf5sim.File
	tp *twoPhase
	sv *sieveReader
}

func (b *hdf5Backend) path() string {
	if b.e.p.FilePerProc {
		return fmt.Sprintf("%s.%08d.h5", b.e.p.TestFile, b.e.rank.Rank())
	}
	return b.e.p.TestFile + ".h5"
}

func (b *hdf5Backend) spec() hdf5sim.DatasetSpec {
	p := b.e.p
	total := p.BlockSize * int64(p.SegmentCount)
	if !p.FilePerProc {
		total *= int64(b.e.nodes)
	}
	return hdf5sim.DatasetSpec{
		Name:     "data",
		TotalLen: total,
		ChunkLen: p.TransferSize,
		ElemSize: 1,
	}
}

func (b *hdf5Backend) setupWrite() error {
	p, r := b.e.p, b.e.rank
	// The creating rank lays down superblock + headers. The file takes
	// the directory-default striping, which the harness sets to the
	// experiment's stripe count/size (the `lfs setstripe` convention; an
	// explicit per-file layout here would be discarded by the format
	// layer's own create call).
	create := func() error {
		h, err := hdf5sim.Create(b.e.fs, b.path(), b.spec())
		if err != nil {
			return err
		}
		b.h = h
		return nil
	}
	if p.FilePerProc {
		if err := create(); err != nil {
			return err
		}
	} else {
		if r.Rank() == 0 {
			if err := create(); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.Rank() != 0 {
			h, err := hdf5sim.OpenShared(b.e.fs, b.path())
			if err != nil {
				return err
			}
			b.h = h
		}
	}
	if p.Collective && !p.FilePerProc {
		b.tp = newTwoPhase(b.e, b.h.RawWriteAt)
		// Collective mode coordinates every metadata update (chunk
		// allocation must be consistent across ranks), which costs an
		// all-ranks synchronization per operation — the reason the paper
		// sees collective I/O *hurt* HDF5 at scale.
		b.h.SetMetadataPolicy(collectiveMetadata{rank: b.e.rank})
	}
	return nil
}

// collectiveMetadata synchronizes all ranks around each metadata update.
type collectiveMetadata struct{ rank *mpisim.Rank }

func (c collectiveMetadata) Do(write func() error) error {
	c.rank.Allreduce(nil, 16, nil)
	return write()
}

func (b *hdf5Backend) writeAt(seg int, off int64, data []byte) error {
	if b.tp != nil {
		// Metadata (header + B-tree) writes stay independent; only chunk
		// data flows through the collective exchange. Dataset offsets are
		// shifted into file offsets by the chunk allocator, and the shift
		// is uniform, so stripe ownership math still works.
		t := int((off - b.e.fileOffsetFor(b.e.rank.Rank(), seg, 0)) / b.e.p.TransferSize)
		shift := b.dataShift()
		return b.h.WriteHyperslab(off, data, sinkFunc(func(chunk []byte, fileOff int64) error {
			return b.tp.write(seg, t, fileOff, chunk, func(rank, seg, t int) int64 {
				return b.e.fileOffsetFor(rank, seg, t) + shift
			})
		}))
	}
	return b.h.WriteHyperslab(off, data, nil)
}

// dataShift is the constant offset between dataset space and file space.
func (b *hdf5Backend) dataShift() int64 {
	off, _ := b.spec().ChunkExtent(0)
	return off
}

func (b *hdf5Backend) finishWrite() error {
	if b.e.p.Fsync {
		return b.h.Sync()
	}
	return nil
}

func (b *hdf5Backend) setupRead() error {
	if b.h == nil {
		h, err := hdf5sim.Open(b.e.fs, b.path())
		if err != nil {
			return err
		}
		b.h = h
	}
	// Shared-file HDF5 reads go through MPI-IO, whose ROMIO layer applies
	// data sieving to the small strided chunk requests — the read
	// amplification behind HDF5's dramatic read-side collapse in the
	// paper's Figure 10 (125-687x below the alternatives).
	if !b.e.p.FilePerProc {
		b.sv = newSieveReader(b.e, b.h.RawReadAt)
	}
	return nil
}

func (b *hdf5Backend) readAt(seg int, off int64, dst []byte) error {
	if b.sv != nil {
		// Chunk lookup still goes through the B-tree; the bulk read is
		// sieved.
		return b.h.ReadHyperslab(off, dst, sourceFunc(func(chunk []byte, fileOff int64) error {
			return b.sv.read(fileOff, chunk, 0)
		}))
	}
	return b.h.ReadHyperslab(off, dst, nil)
}

func (b *hdf5Backend) finishRead() error { return nil }

type sinkFunc func(data []byte, off int64) error

func (f sinkFunc) WriteAt(data []byte, off int64) error { return f(data, off) }

type sourceFunc func(data []byte, off int64) error

func (f sourceFunc) ReadAt(data []byte, off int64) error { return f(data, off) }

// --------------------------------------------------------------- adios2

// adios2Backend drives the BP5-like engine (engineType "BP5") or LSMIO's
// ADIOS2 plugin (engineType "plugin"): deferred Puts per transfer, one
// PerformPuts + Close at the end of the phase — exactly the measurement
// sequence the paper describes.
type adios2Backend struct {
	e          *env
	engineType string
	a          *adios2.Adios
	io         *adios2.IO
	eng        adios2.Engine
	vars       map[int]*adios2.Variable
}

func (b *adios2Backend) path() string { return b.e.p.TestFile }

func (b *adios2Backend) variable(seg int) *adios2.Variable {
	if v, ok := b.vars[seg]; ok {
		return v
	}
	v := b.io.DefineVariable(fmt.Sprintf("data%06d", seg), 1, b.e.p.TransferSize)
	b.vars[seg] = v
	return v
}

func (b *adios2Backend) setupEngine(mode adios2.Mode) error {
	if b.a == nil {
		b.a = adios2.New(adios2.Config{
			FS:     b.e.fs,
			Kernel: b.e.kern,
			Rank:   b.e.rank,
		})
		b.io = b.a.DeclareIO("ior")
		b.io.SetEngine(b.engineType)
		b.io.SetParameter("BufferChunkSize", fmt.Sprint(b.e.p.WriteBufferSize))
		if b.engineType == "plugin" {
			b.io.SetParameter("PluginName", lsmioplugin.PluginName)
			if b.e.p.LSMIOBackend != "" {
				b.io.SetParameter("Backend", string(b.e.p.LSMIOBackend))
			}
		}
		b.vars = make(map[int]*adios2.Variable)
	}
	eng, err := b.io.Open(b.path(), mode)
	if err != nil {
		return err
	}
	b.eng = eng
	return nil
}

func (b *adios2Backend) setupWrite() error { return b.setupEngine(adios2.ModeWrite) }

func (b *adios2Backend) writeAt(seg int, off int64, data []byte) error {
	// Deferred puts keep a reference until PerformPuts, so hand the
	// engine its own copy (ADIOS2 applications do the same or use Sync).
	cp := append([]byte(nil), data...)
	return b.eng.Put(b.variable(seg), cp, adios2.Deferred)
}

func (b *adios2Backend) finishWrite() error {
	if err := b.eng.PerformPuts(); err != nil {
		return err
	}
	return b.eng.Close()
}

func (b *adios2Backend) setupRead() error { return b.setupEngine(adios2.ModeRead) }

func (b *adios2Backend) readAt(seg int, off int64, dst []byte) error {
	return b.eng.Get(b.variable(seg), dst)
}

func (b *adios2Backend) finishRead() error { return b.eng.Close() }

// ---------------------------------------------------------------- lsmio

// lsmioBackend drives LSMIO directly through its K/V API: one store per
// rank on the PFS, one put per transfer, write barrier at the end.
type lsmioBackend struct {
	e   *env
	mgr *core.Manager
	// batch holds the pre-loaded values when LSMIOBatchRead is on.
	batch map[string][]byte
}

func (b *lsmioBackend) dir() string {
	return fmt.Sprintf("%s.lsmio.%08d", b.e.p.TestFile, b.e.rank.Rank())
}

func (b *lsmioBackend) key(off int64) string {
	if b.e.p.LSMIOCollective {
		// Group members share one store: qualify keys by rank.
		return fmt.Sprintf("ior/r%06d/%016d", b.e.rank.Rank(), off)
	}
	return fmt.Sprintf("ior/%016d", off)
}

func (b *lsmioBackend) storeOptions() core.StoreOptions {
	return core.StoreOptions{
		Backend:         b.e.p.LSMIOBackend,
		FS:              b.e.fs,
		Platform:        lsm.SimPlatform(b.e.kern),
		WriteBufferSize: b.e.p.WriteBufferSize,
		BlockSize:       64 << 10,
		Async:           true,
	}
}

func (b *lsmioBackend) setupWrite() error {
	if b.e.p.LSMIOCollective {
		return b.setupCollective()
	}
	mgr, err := core.NewManager(b.dir(), core.ManagerOptions{
		Store:  b.storeOptions(),
		Kernel: b.e.kern,
	})
	if err != nil {
		return err
	}
	b.mgr = mgr
	return nil
}

// setupCollective wires the §5.1 collective mode: the first rank of each
// group opens the group's store and hosts a K/V service; the others
// connect as remote stores. Keys carry the rank, so one shared store
// holds the whole group's data.
func (b *lsmioBackend) setupCollective() error {
	group := b.e.p.LSMIOGroupSize
	if group <= 0 || group > b.e.nodes {
		group = b.e.nodes
	}
	leader := (b.e.rank.Rank() / group) * group
	if b.e.rank.Rank() == leader {
		st, err := core.OpenStore(fmt.Sprintf("%s.lsmio.group%08d", b.e.p.TestFile, leader),
			b.storeOptions())
		if err != nil {
			return err
		}
		svc := core.NewKVService(b.e.kern, b.e.cluster.Fabric(), leader, st)
		b.e.shared.kvServices[leader] = svc
		mgr, err := core.NewManager("", core.ManagerOptions{Kernel: b.e.kern, Remote: st})
		if err != nil {
			return err
		}
		b.mgr = mgr
	}
	b.e.rank.Barrier() // leaders publish their services before members connect
	if b.e.rank.Rank() != leader {
		svc := b.e.shared.kvServices[leader]
		if svc == nil {
			return fmt.Errorf("ior: no collective service for leader %d", leader)
		}
		mgr, err := core.NewManager("", core.ManagerOptions{
			Kernel: b.e.kern,
			Remote: svc.Connect(b.e.rank.Rank()),
		})
		if err != nil {
			return err
		}
		b.mgr = mgr
	}
	return nil
}

func (b *lsmioBackend) writeAt(seg int, off int64, data []byte) error {
	return b.mgr.Put(b.key(off), data)
}

func (b *lsmioBackend) finishWrite() error { return b.mgr.WriteBarrier() }

func (b *lsmioBackend) setupRead() error {
	if b.mgr == nil {
		if err := b.setupWrite(); err != nil {
			return err
		}
	}
	return nil
}

func (b *lsmioBackend) readAt(seg int, off int64, dst []byte) error {
	var v []byte
	if b.e.p.LSMIOBatchRead {
		if b.batch == nil {
			// §5.1 batch read: one sequential sweep on first access,
			// inside the timed region, then serve from memory.
			all, err := b.mgr.ReadBatchAll("ior/")
			if err != nil {
				return err
			}
			b.batch = all
		}
		var ok bool
		v, ok = b.batch[b.key(off)]
		if !ok {
			return fmt.Errorf("ior: lsmio batch read missing key %s", b.key(off))
		}
	} else {
		var err error
		v, err = b.mgr.Get(b.key(off))
		if err != nil {
			return err
		}
	}
	if len(v) != len(dst) {
		return fmt.Errorf("ior: lsmio read length %d, want %d", len(v), len(dst))
	}
	copy(dst, v)
	return nil
}

func (b *lsmioBackend) finishRead() error { return nil }
