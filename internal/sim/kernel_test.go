package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(15 * time.Millisecond); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestEventOrderingIsFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Fatalf("order = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		r := NewResource(k, "disk", 1)
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(time.Duration(i%3) * time.Millisecond)
				r.Acquire(p, 1)
				p.Sleep(2 * time.Millisecond)
				r.Release(1)
				trace = append(trace, fmt.Sprintf("%d@%v", i, p.Now()))
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic traces:\n%v\n%v", a, b)
	}
}

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	ends := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)} {
		if ends[i] != want {
			t.Errorf("proc %d ended at %v, want %v", i, ends[i], want)
		}
	}
}

func TestResourceCapacityTwoAdmitsPairs(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "lanes", 2)
	ends := make([]Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)} {
		if ends[i] != want {
			t.Errorf("proc %d ended at %v, want %v", i, ends[i], want)
		}
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	k.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestQueueSendRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue(k, "mb")
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Recv(p).(int))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			q.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	k.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) { panic("kapow") })
	err := k.Run()
	if err == nil {
		t.Fatal("expected panic error")
	}
}

func TestJoin(t *testing.T) {
	k := NewKernel()
	var childEnd, parentEnd Time
	child := k.Spawn("child", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		childEnd = p.Now()
	})
	k.Spawn("parent", func(p *Proc) {
		p.Join(child)
		parentEnd = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != parentEnd || parentEnd != Time(7*time.Millisecond) {
		t.Fatalf("childEnd=%v parentEnd=%v", childEnd, parentEnd)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	var end Time
	k.Spawn("parent", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * time.Millisecond
			wg.Go("child", func(c *Proc) { c.Sleep(d) })
		}
		wg.Wait(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(3*time.Millisecond) {
		t.Fatalf("end = %v, want 3ms", end)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var seen []string
	k.Spawn("outer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		inner := k.Spawn("inner", func(q *Proc) {
			q.Sleep(time.Millisecond)
			seen = append(seen, "inner")
		})
		p.Join(inner)
		seen = append(seen, "outer")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seen) != "[inner outer]" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Time(0)) != 1500*time.Millisecond {
		t.Fatalf("Sub = %v", tm.Sub(0))
	}
	if tm.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", tm.Duration())
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	k := NewKernel()
	q := NewQueue(k, "svc")
	served := 0
	k.Spawn("service", func(p *Proc) {
		for {
			if q.Recv(p) == nil {
				return
			}
			served++
		}
	}).SetDaemon(true)
	k.Spawn("client", func(p *Proc) {
		q.Send(1)
		q.Send(2)
		p.Sleep(time.Millisecond)
	})
	// The daemon stays parked on Recv, but Run must end cleanly.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 2 {
		t.Fatalf("served = %d", served)
	}
	// A second phase reuses the still-parked daemon.
	k.Spawn("client2", func(p *Proc) { q.Send(3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 3 {
		t.Fatalf("served = %d after phase 2", served)
	}
}

func TestCurrentProcVisibleToNestedCode(t *testing.T) {
	k := NewKernel()
	if k.Current() != nil {
		t.Fatal("Current outside run should be nil")
	}
	var insideName string
	library := func() { // library code with no *Proc plumbed through
		insideName = k.Current().Name()
		k.Compute(5 * time.Millisecond)
	}
	var end Time
	k.Spawn("worker", func(p *Proc) {
		library()
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if insideName != "worker" {
		t.Fatalf("Current().Name() = %q", insideName)
	}
	if end != Time(5*time.Millisecond) {
		t.Fatalf("Compute charged %v", end)
	}
	// Compute with no kernel / outside sim is a harmless no-op.
	k.Compute(time.Hour)
	var nilK *Kernel
	nilK.Compute(time.Hour)
}

func TestSignalPending(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	k.Spawn("waiter", func(p *Proc) { s.Wait(p) })
	k.Spawn("checker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if s.Pending() != 1 {
			t.Errorf("pending = %d", s.Pending())
		}
		s.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
