// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated entities are processes: ordinary Go functions that run in their
// own goroutine but are scheduled cooperatively, one at a time, by the
// Kernel. A process advances virtual time by sleeping, waiting on a Signal,
// or acquiring a Resource. Because exactly one process runs at any moment
// and the event queue is ordered by (time, sequence), a simulation is fully
// deterministic: the same program produces the same trajectory on every run.
//
// The kernel is the substrate for the simulated cluster used by the LSMIO
// benchmarks: MPI ranks, network transfers and Lustre object storage targets
// are all processes and resources on a single Kernel.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp, in nanoseconds since the start of
// the simulation. The zero Time is the simulation epoch.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration returns t as a duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq int64 // tie-breaker: FIFO among simultaneous events
	p   *Proc
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel owns the virtual clock, the event queue, and every process.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now     Time
	seq     int64
	events  eventHeap
	yield   chan struct{} // handshake: running proc -> scheduler
	procs   map[int]*Proc // live (started, unfinished) processes
	nextID  int
	running bool
	current *Proc // the process currently executing, nil between events
	failure error // first panic captured from a process
}

// NewKernel returns a ready-to-use kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Current returns the process currently executing. Because the kernel is
// cooperative, any code reached from a process body — however deeply nested
// in libraries that know nothing about the simulator — can discover the
// process on whose behalf it runs and charge virtual time to it. It returns
// nil outside the simulation.
func (k *Kernel) Current() *Proc { return k.current }

// Compute charges d of CPU time to the currently running process. It is a
// convenience for cost models embedded in library code: a nil kernel or a
// call from outside the simulation is a no-op.
func (k *Kernel) Compute(d time.Duration) {
	if k == nil || d <= 0 {
		return
	}
	if p := k.current; p != nil {
		p.Sleep(d)
	}
}

func (k *Kernel) nextSeq() int64 {
	k.seq++
	return k.seq
}

// schedule enqueues a resumption of p at the given time.
func (k *Kernel) schedule(at Time, p *Proc) {
	if at < k.now {
		at = k.now
	}
	heap.Push(&k.events, &event{at: at, seq: k.nextSeq(), p: p})
}

// Proc is a simulated process. All blocking methods (Sleep, Signal.Wait,
// Resource.Acquire, ...) must be called from within the process's own body
// function; calling them from outside the simulation is a programming error.
type Proc struct {
	k       *Kernel
	id      int
	name    string
	resume  chan struct{}
	state   string // for deadlock diagnostics: "" running, else what it waits on
	done    bool
	daemon  bool
	doneSig *Signal // lazily created by Join
}

// SetDaemon marks the process as a background service: it may remain
// parked (waiting for requests) when the event queue drains without the
// kernel reporting a deadlock, like a daemon thread. It returns p.
func (p *Proc) SetDaemon(on bool) *Proc {
	p.daemon = on
	return p
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the kernel-unique process id.
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process running body and schedules it to start at the
// current virtual time. It may be called before Run or from a running
// process.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs[p.id] = p
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			delete(k.procs, p.id)
			if p.doneSig != nil {
				p.doneSig.Broadcast()
			}
			k.yield <- struct{}{}
		}()
		body(p)
	}()
	k.schedule(k.now, p)
	return p
}

// park suspends the calling process until it is rescheduled. The caller must
// have arranged (event, signal wait list, resource queue) for a future
// resumption before parking.
func (p *Proc) park(state string) {
	p.state = state
	p.k.yield <- struct{}{}
	<-p.resume
	p.state = ""
}

// Sleep advances the process's virtual clock by d (negative d counts as 0).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now.Add(d), p)
	p.park(fmt.Sprintf("sleep %v", d))
}

// Yield gives other processes scheduled at the same instant a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until q has finished. Joining a finished process returns
// immediately.
func (p *Proc) Join(q *Proc) {
	if q.done {
		return
	}
	if q.doneSig == nil {
		q.doneSig = NewSignal(q.k)
	}
	q.doneSig.Wait(p)
}

// Run executes the simulation until no events remain. It returns an error if
// a process panicked, or if live processes remain parked with an empty event
// queue (deadlock).
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if e.p.done {
			continue
		}
		k.now = e.at
		k.current = e.p
		e.p.resume <- struct{}{}
		<-k.yield
		k.current = nil
		if k.failure != nil {
			return k.failure
		}
	}
	stuck := 0
	for _, p := range k.procs {
		if !p.daemon {
			stuck++
		}
	}
	if stuck > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) parked: %s",
			k.now, stuck, k.parkedSummary())
	}
	return nil
}

func (k *Kernel) parkedSummary() string {
	names := make([]string, 0, len(k.procs))
	for _, p := range k.procs {
		if p.daemon {
			continue
		}
		names = append(names, fmt.Sprintf("%s(%s)", p.name, p.state))
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		if i == 8 {
			s += "..."
			break
		}
		s += n
	}
	return s
}
