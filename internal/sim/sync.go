package sim

import "time"

// Signal is a broadcast condition: processes Wait on it and are all resumed
// by the next Broadcast. There is no Wait-with-predicate; callers re-check
// their condition after waking, as with sync.Cond.
type Signal struct {
	k       *Kernel
	waiters []*Proc
}

// NewSignal returns a Signal bound to k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park("signal")
}

// Broadcast wakes every waiting process at the current virtual time, in the
// order they began waiting.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.k.schedule(s.k.now, w)
	}
}

// Pending reports how many processes are waiting.
func (s *Signal) Pending() int { return len(s.waiters) }

// Resource models a capacity-limited facility (a disk, a NIC, a server
// thread pool) with FIFO admission. A process holds n units between Acquire
// and Release.
type Resource struct {
	k     *Kernel
	cap   int64
	inUse int64
	queue []resWaiter
	name  string
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource returns a resource with the given capacity (must be positive).
func NewResource(k *Kernel, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, cap: capacity, name: name}
}

// Acquire blocks p until n units are available and claims them.
// n must be in [1, capacity].
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.cap {
		panic("sim: bad acquire count")
	}
	if len(r.queue) == 0 && r.inUse+n <= r.cap {
		r.inUse += n
		return
	}
	r.queue = append(r.queue, resWaiter{p, n})
	p.park("acquire " + r.name)
}

// Release returns n units and admits queued processes in FIFO order.
func (r *Resource) Release(n int64) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource over-released: " + r.name)
	}
	for len(r.queue) > 0 && r.inUse+r.queue[0].n <= r.cap {
		w := r.queue[0]
		r.queue = r.queue[1:]
		r.inUse += w.n
		r.k.schedule(r.k.now, w.p)
	}
}

// Use acquires n units, sleeps for d, and releases: the common
// "occupy a facility for a service time" pattern.
func (r *Resource) Use(p *Proc, n int64, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int64 { return r.inUse }

// Queue is an unbounded FIFO mailbox between processes. Send never blocks;
// Recv blocks until an item is available. It is the building block for
// simulated message passing.
type Queue struct {
	k       *Kernel
	items   []any
	waiters []*Proc
	name    string
}

// NewQueue returns an empty mailbox bound to k.
func NewQueue(k *Kernel, name string) *Queue { return &Queue{k: k, name: name} }

// Send enqueues v and wakes one waiting receiver, if any.
func (q *Queue) Send(v any) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.schedule(q.k.now, w)
	}
}

// Recv dequeues the oldest item, blocking p until one is available.
func (q *Queue) Recv(p *Proc) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park("recv " + q.name)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// WaitGroup tracks a set of child processes and lets a parent wait for all
// of them, mirroring sync.WaitGroup for simulated processes.
type WaitGroup struct {
	k     *Kernel
	count int
	sig   *Signal
}

// NewWaitGroup returns a WaitGroup bound to k.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k, sig: NewSignal(k)}
}

// Add increments the outstanding count by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the count, waking waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if wg.count == 0 {
		wg.sig.Broadcast()
	}
}

// Wait parks p until the count is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.sig.Wait(p)
	}
}

// Go spawns body as a child process tracked by the WaitGroup.
func (wg *WaitGroup) Go(name string, body func(p *Proc)) {
	wg.Add(1)
	wg.k.Spawn(name, func(p *Proc) {
		defer wg.Done()
		body(p)
	})
}
