package mpisim

import (
	"fmt"
	"testing"
	"time"

	"lsmio/internal/netsim"
	"lsmio/internal/sim"
)

func newWorld(t *testing.T, n int) *World {
	t.Helper()
	k := sim.NewKernel()
	f := netsim.New(k, netsim.DefaultConfig(n))
	return NewWorld(k, f, n)
}

func TestSendRecv(t *testing.T) {
	w := newWorld(t, 2)
	var got string
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, "hello", 5)
		case 1:
			got = r.Recv(0, 7).(string)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMessagesFromSameSourceArriveInOrder(t *testing.T) {
	w := newWorld(t, 2)
	var got []int
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 3, i, 8)
			}
		} else {
			for i := 0; i < 5; i++ {
				got = append(got, r.Recv(0, 3).(int))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			w := newWorld(t, n)
			after := make([]sim.Time, n)
			err := w.Run(func(r *Rank) {
				// Rank i computes for i ms, then everyone meets.
				r.Sleep(time.Duration(r.Rank()) * time.Millisecond)
				r.Barrier()
				after[r.Rank()] = r.Now()
			})
			if err != nil {
				t.Fatal(err)
			}
			slowest := sim.Time(time.Duration(n-1) * time.Millisecond)
			for i, at := range after {
				if at < slowest {
					t.Errorf("rank %d left barrier at %v, before slowest entered (%v)", i, at, slowest)
				}
			}
		})
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 6
	for root := 0; root < n; root++ {
		w := newWorld(t, n)
		got := make([]int, n)
		err := w.Run(func(r *Rank) {
			var v any
			if r.Rank() == root {
				v = 42
			}
			got[r.Rank()] = r.Bcast(root, v, 4).(int)
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		for i, v := range got {
			if v != 42 {
				t.Fatalf("root %d: rank %d got %d", root, i, v)
			}
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		w := newWorld(t, n)
		got := make([]float64, n)
		err := w.Run(func(r *Rank) {
			got[r.Rank()] = r.AllreduceF64(float64(r.Rank()+1), func(a, b float64) float64 { return a + b })
		})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n*(n+1)) / 2
		for i, v := range got {
			if v != want {
				t.Fatalf("n=%d rank %d got %v want %v", n, i, v, want)
			}
		}
	}
}

func TestReduceToNonZeroRoot(t *testing.T) {
	const n, root = 5, 3
	w := newWorld(t, n)
	var atRoot int
	err := w.Run(func(r *Rank) {
		res := r.Reduce(root, r.Rank(), 4, func(a, b any) any { return a.(int) + b.(int) })
		if r.Rank() == root {
			atRoot = res.(int)
		} else if res != nil {
			t.Errorf("rank %d got non-nil reduce result", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0 + 1 + 2 + 3 + 4; atRoot != want {
		t.Fatalf("root got %d, want %d", atRoot, want)
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	w := newWorld(t, n)
	var gathered []any
	scattered := make([]int, n)
	err := w.Run(func(r *Rank) {
		g := r.Gather(0, r.Rank()*10, 4)
		if r.Rank() == 0 {
			gathered = g
		}
		var items []any
		if r.Rank() == 0 {
			items = []any{100, 101, 102, 103}
		}
		scattered[r.Rank()] = r.Scatter(0, items, 4).(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gathered {
		if v.(int) != i*10 {
			t.Fatalf("gathered[%d] = %v", i, v)
		}
	}
	for i, v := range scattered {
		if v != 100+i {
			t.Fatalf("scattered[%d] = %v", i, v)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 9} {
		w := newWorld(t, n)
		results := make([][]any, n)
		err := w.Run(func(r *Rank) {
			items := make([]any, n)
			for i := range items {
				items[i] = r.Rank()*100 + i // destined for rank i
			}
			results[r.Rank()] = r.Alltoall(items, 64)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for me := 0; me < n; me++ {
			for src := 0; src < n; src++ {
				if got := results[me][src].(int); got != src*100+me {
					t.Fatalf("n=%d rank %d from %d: got %d want %d", n, me, src, got, src*100+me)
				}
			}
		}
	}
}

func TestMaxTime(t *testing.T) {
	const n = 4
	w := newWorld(t, n)
	got := make([]sim.Time, n)
	err := w.Run(func(r *Rank) {
		got[r.Rank()] = r.MaxTime(sim.Time(r.Rank() * 1000))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != sim.Time((n-1)*1000) {
			t.Fatalf("rank %d MaxTime = %v", i, v)
		}
	}
}

func TestBarrierCostGrowsLogarithmically(t *testing.T) {
	elapsed := func(n int) time.Duration {
		w := newWorld(t, n)
		var d time.Duration
		if err := w.Run(func(r *Rank) {
			r.Barrier()
			if r.Rank() == 0 {
				d = r.Now().Duration()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	t2, t32 := elapsed(2), elapsed(32)
	if t32 < t2 {
		t.Fatalf("barrier(32)=%v < barrier(2)=%v", t32, t2)
	}
	// log2(32)=5 tree levels each way; must stay well under a linear 31x.
	if t32 > 12*t2 {
		t.Fatalf("barrier(32)=%v too expensive vs barrier(2)=%v", t32, t2)
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		w := newWorld(t, n)
		results := make([][]any, n)
		err := w.Run(func(r *Rank) {
			results[r.Rank()] = r.Allgather(r.Rank()*7, 8)
		})
		if err != nil {
			t.Fatal(err)
		}
		for me := 0; me < n; me++ {
			if len(results[me]) != n {
				t.Fatalf("rank %d gathered %d items", me, len(results[me]))
			}
			for src := 0; src < n; src++ {
				if results[me][src].(int) != src*7 {
					t.Fatalf("rank %d item %d = %v", me, src, results[me][src])
				}
			}
		}
	}
}
