// Package mpisim is a simulated MPI runtime. Ranks are processes on the
// discrete-event kernel, one per simulated compute node, exchanging
// messages over a netsim.Fabric so that every point-to-point and collective
// operation is charged a realistic virtual-time cost (latency, bandwidth,
// NIC contention).
//
// The subset implemented is what HPC checkpointing middleware and the IOR
// benchmark need: Send/Recv with tags, Barrier, Bcast, Reduce, Allreduce,
// Gather/Gatherv, Scatter and Alltoall. Collectives use binomial-tree
// algorithms like a real MPI implementation, so their cost scales as
// O(log P) in latency.
package mpisim

import (
	"fmt"
	"time"

	"lsmio/internal/netsim"
	"lsmio/internal/sim"
)

// World is an MPI job: a set of ranks over a fabric.
type World struct {
	k      *sim.Kernel
	fabric *netsim.Fabric
	size   int
	ranks  []*Rank
}

// NewWorld creates a world with size ranks, where rank i lives on fabric
// node i.
func NewWorld(k *sim.Kernel, fabric *netsim.Fabric, size int) *World {
	if size <= 0 || size > fabric.Nodes() {
		panic(fmt.Sprintf("mpisim: size %d exceeds fabric nodes %d", size, fabric.Nodes()))
	}
	w := &World{k: k, fabric: fabric, size: size}
	w.ranks = make([]*Rank, size)
	for i := 0; i < size; i++ {
		w.ranks[i] = &Rank{
			world:   w,
			rank:    i,
			inboxes: make(map[msgKey]*sim.Queue),
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Kernel returns the underlying simulation kernel.
func (w *World) Kernel() *sim.Kernel { return w.k }

// Fabric returns the interconnect.
func (w *World) Fabric() *netsim.Fabric { return w.fabric }

// Launch spawns one process per rank running body and returns immediately;
// the caller runs the kernel to completion.
func (w *World) Launch(body func(r *Rank)) {
	for i := 0; i < w.size; i++ {
		r := w.ranks[i]
		w.k.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			r.proc = p
			body(r)
		})
	}
}

// Run is a convenience that launches body on every rank and runs the
// kernel to completion.
func (w *World) Run(body func(r *Rank)) error {
	w.Launch(body)
	return w.k.Run()
}

type msgKey struct {
	src int
	tag int
}

type message struct {
	data any
	size int64
}

// Rank is one MPI process. All methods must be called from the rank's own
// process (the body function passed to Launch).
type Rank struct {
	world   *World
	rank    int
	proc    *sim.Proc
	inboxes map[msgKey]*sim.Queue
}

// Rank returns this process's rank in the world.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Proc returns the simulation process backing this rank.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns the rank's current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Sleep advances the rank's clock, modelling local computation.
func (r *Rank) Sleep(d time.Duration) { r.proc.Sleep(d) }

func (r *Rank) inbox(src, tag int) *sim.Queue {
	key := msgKey{src, tag}
	q, ok := r.inboxes[key]
	if !ok {
		q = sim.NewQueue(r.world.k, fmt.Sprintf("r%d<-r%d#%d", r.rank, src, tag))
		r.inboxes[key] = q
	}
	return q
}

// Send transmits data of the given modelled size to rank dst with a tag,
// blocking the sender for the full transfer time (rendezvous-free eager
// model: the payload is buffered at the destination).
func (r *Rank) Send(dst, tag int, data any, size int64) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mpisim: send to bad rank %d", dst))
	}
	r.world.fabric.Transfer(r.proc, r.rank, dst, size)
	r.world.ranks[dst].inbox(r.rank, tag).Send(message{data: data, size: size})
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload.
func (r *Rank) Recv(src, tag int) any {
	m := r.inbox(src, tag).Recv(r.proc).(message)
	return m.data
}

// Internal tags reserved for collectives; user code should use tags >= 0.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
)

// Barrier blocks until every rank in the world has entered it.
// It is implemented as a zero-byte binomial-tree reduce followed by a
// broadcast, the textbook MPI algorithm.
func (r *Rank) Barrier() {
	r.reduceTree(tagBarrier, nil, 0, nil)
	r.bcastTree(tagBarrier, nil, 0)
}

// Bcast distributes data of the modelled size from root to all ranks,
// returning the payload on every rank.
func (r *Rank) Bcast(root int, data any, size int64) any {
	return r.bcastRooted(tagBcast, root, data, size)
}

func (r *Rank) bcastRooted(tag, root int, data any, size int64) any {
	// Re-number so root is 0 in the tree, then run a binomial broadcast.
	if r.virt(root) != 0 {
		data = r.recvVirtual(tag, root)
	}
	return r.bcastVirtualSend(tag, root, data, size)
}

// Virtual-rank helpers for rooted collectives.
func (r *Rank) virt(root int) int { return (r.rank - root + r.world.size) % r.world.size }
func (r *Rank) real(v, root int) int {
	return (v + root) % r.world.size
}

func (r *Rank) recvVirtual(tag, root int) any {
	v := r.virt(root)
	// Parent in binomial tree: clear lowest set bit.
	parent := v & (v - 1)
	return r.Recv(r.real(parent, root), tag)
}

func (r *Rank) bcastVirtualSend(tag, root int, data any, size int64) any {
	v := r.virt(root)
	// Children: v | bit for each bit below v's lowest set bit.
	for bit := 1; bit < r.world.size; bit <<= 1 {
		if v&bit != 0 {
			break
		}
		child := v | bit
		if child < r.world.size {
			r.Send(r.real(child, root), tag, data, size)
		}
	}
	return data
}

// bcastTree broadcasts from rank 0 (used by Barrier).
func (r *Rank) bcastTree(tag int, data any, size int64) any {
	return r.bcastRooted(tag, 0, data, size)
}

// ReduceFunc combines two payloads into one.
type ReduceFunc func(a, b any) any

// reduceTree performs a binomial-tree reduction to virtual rank 0 (root 0).
func (r *Rank) reduceTree(tag int, data any, size int64, combine ReduceFunc) any {
	v := r.rank
	for bit := 1; bit < r.world.size; bit <<= 1 {
		if v&bit != 0 {
			// Send partial to parent and leave.
			parent := v &^ bit
			r.Send(parent, tag, data, size)
			return nil
		}
		peer := v | bit
		if peer < r.world.size {
			other := r.Recv(peer, tag)
			if combine != nil {
				data = combine(data, other)
			}
		}
	}
	return data
}

// Reduce combines payloads from all ranks at root using combine; only root
// receives the final value (others get nil).
func (r *Rank) Reduce(root int, data any, size int64, combine ReduceFunc) any {
	// Rotate so the tree is rooted at `root`.
	if root == 0 {
		return r.reduceTree(tagReduce, data, size, combine)
	}
	// Reduce to 0 then forward; adequate cost model, avoids re-deriving
	// the rotated tree.
	v := r.reduceTree(tagReduce, data, size, combine)
	if r.rank == 0 {
		if root != 0 {
			r.Send(root, tagReduce, v, size)
			return nil
		}
		return v
	}
	if r.rank == root {
		return r.Recv(0, tagReduce)
	}
	return nil
}

// Allreduce combines payloads from all ranks and distributes the result to
// every rank.
func (r *Rank) Allreduce(data any, size int64, combine ReduceFunc) any {
	v := r.reduceTree(tagReduce, data, size, combine)
	return r.bcastTree(tagBcast, v, size)
}

// AllreduceF64 is Allreduce specialised to a float64 with a sum/min/max op.
func (r *Rank) AllreduceF64(x float64, op func(a, b float64) float64) float64 {
	res := r.Allreduce(x, 8, func(a, b any) any { return op(a.(float64), b.(float64)) })
	return res.(float64)
}

// MaxTime returns the maximum of a virtual timestamp across ranks;
// benchmarks use it to find the latest I/O completion.
func (r *Rank) MaxTime(t sim.Time) sim.Time {
	res := r.Allreduce(int64(t), 8, func(a, b any) any {
		x, y := a.(int64), b.(int64)
		if x > y {
			return x
		}
		return y
	})
	return sim.Time(res.(int64))
}

// Gather collects each rank's payload at root, returned as a slice indexed
// by rank (nil on non-roots). Linear algorithm, like MPI for small worlds.
func (r *Rank) Gather(root int, data any, size int64) []any {
	if r.rank != root {
		r.Send(root, tagGather, data, size)
		return nil
	}
	out := make([]any, r.world.size)
	out[root] = data
	for src := 0; src < r.world.size; src++ {
		if src == root {
			continue
		}
		out[src] = r.Recv(src, tagGather)
	}
	return out
}

// Scatter distributes items[i] from root to rank i; returns this rank's
// item. size is the per-item modelled size.
func (r *Rank) Scatter(root int, items []any, size int64) any {
	if r.rank == root {
		if len(items) != r.world.size {
			panic("mpisim: scatter item count != world size")
		}
		for dst := 0; dst < r.world.size; dst++ {
			if dst == root {
				continue
			}
			r.Send(dst, tagScatter, items[dst], size)
		}
		return items[root]
	}
	return r.Recv(root, tagScatter)
}

// Allgather collects every rank's item on every rank, returned as a slice
// indexed by rank (gather to 0 + broadcast, the common implementation for
// modest payloads).
func (r *Rank) Allgather(item any, size int64) []any {
	gathered := r.Gather(0, item, size)
	res := r.Bcast(0, gathered, size*int64(r.world.size))
	return res.([]any)
}

// Alltoall exchanges items[i] with every rank i using a ring schedule
// (round k: send to rank+k, receive from rank-k); returns received items
// indexed by source rank. size is the per-item modelled size. Sends are
// eager (buffered at the destination), so the schedule cannot deadlock.
func (r *Rank) Alltoall(items []any, size int64) []any {
	p := r.world.size
	if len(items) != p {
		panic("mpisim: alltoall item count != world size")
	}
	out := make([]any, p)
	out[r.rank] = items[r.rank]
	for round := 1; round < p; round++ {
		dst := (r.rank + round) % p
		src := (r.rank - round + p) % p
		r.Send(dst, tagAlltoall, items[dst], size)
		out[src] = r.Recv(src, tagAlltoall)
	}
	return out
}
