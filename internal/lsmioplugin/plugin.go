// Package lsmioplugin is the ADIOS2 storage plugin for LSMIO (§3.1.7 of
// the paper): it implements the adios2.Engine interface on top of the
// LSMIO Manager's external K/V API, so any ADIOS2 application can write
// through the LSM-tree by changing only its XML configuration.
//
// The paper measures the plugin at roughly 1.5× ADIOS2 and 1/1.5× of
// direct LSMIO, attributing the gap to (i) ADIOS2's extra abstraction
// layers, (ii) strong typing versus LSMIO's raw byte arrays ("a simple
// serialization into a string"), and (iii) an extra buffer copy in the
// plugin's memory management. The cost model charges exactly those three
// components.
package lsmioplugin

import (
	"fmt"
	"time"

	"lsmio/internal/adios2"
	"lsmio/internal/core"
	"lsmio/internal/lsm"
)

// PluginName is the name applications put in their XML configuration.
const PluginName = "lsmio"

// CostModel is the plugin-path CPU overhead on top of the Manager's own
// put costs.
type CostModel struct {
	SerializePerByte float64       // ns/B: multi-dimensional value -> string
	ExtraCopyPerByte float64       // ns/B: plugin buffer management copy
	PutFixed         time.Duration // per-Put plugin dispatch overhead
}

// DefaultCostModel returns the calibrated plugin overheads: the paper
// puts the plugin about halfway between ADIOS2 (1.5x faster than it) and
// direct LSMIO (1.5x slower than it), so its per-byte serialization cost
// sits between LSMIO's raw byte-array path and ADIOS2's strong-typing
// path (EXPERIMENTS.md records the calibration).
func DefaultCostModel() CostModel {
	return CostModel{
		SerializePerByte: 10.6,
		ExtraCopyPerByte: 0.35,
		PutFixed:         2 * time.Microsecond,
	}
}

// Register installs the plugin into the ADIOS2 plugin registry. It is safe
// to call more than once.
func Register() {
	adios2.RegisterPlugin(PluginName, open)
}

type engine struct {
	ctx     adios2.PluginContext
	mgr     *core.Manager
	ownsMgr bool
	cost    CostModel
	mode    adios2.Mode
	step    int
	pending []pendingPut
	// blocks counts the Puts of each variable within the current step;
	// every block gets its own key and the count is persisted at EndStep
	// so readers can reassemble the variable.
	blocks map[string]int64
}

type pendingPut struct {
	v    *adios2.Variable
	data []byte
}

func open(ctx adios2.PluginContext) (adios2.Engine, error) {
	storeOpts := core.StoreOptions{
		FS:    ctx.FS,
		Async: true,
	}
	if ctx.Kernel != nil {
		storeOpts.Platform = lsm.SimPlatform(ctx.Kernel)
	}
	// Inherit the buffer size from the ADIOS2 configuration (the paper:
	// "inherit the value from ADIOS2 configuration when used as a plugin").
	if bcs, ok := ctx.IO.Parameter("BufferChunkSize"); ok {
		var v int64
		if _, err := fmt.Sscan(bcs, &v); err == nil && v > 0 {
			storeOpts.WriteBufferSize = int(v)
		}
	}
	if b, ok := ctx.Params["Backend"]; ok {
		storeOpts.Backend = core.Backend(b)
	}
	// One store per rank, mirroring BP5's per-rank subfiles: ranks must
	// not contend for one store directory's manifest.
	rank := 0
	if ctx.Rank != nil {
		rank = ctx.Rank.Rank()
	}
	dir := fmt.Sprintf("%s.lsmio/rank%06d", ctx.Path, rank)
	mgr, err := core.NewManager(dir, core.ManagerOptions{
		Store:  storeOpts,
		Kernel: ctx.Kernel,
		MPI:    ctx.Rank,
	})
	if err != nil {
		return nil, fmt.Errorf("lsmio plugin: %w", err)
	}
	return &engine{
		ctx:     ctx,
		mgr:     mgr,
		ownsMgr: true,
		cost:    DefaultCostModel(),
		mode:    ctx.Mode,
		blocks:  make(map[string]int64),
	}, nil
}

func (e *engine) varKey(v *adios2.Variable, step int) string {
	return fmt.Sprintf("adios2/%s/step%06d/rank%06d", v.Name, step, e.rankID())
}

func (e *engine) blockKey(base string, blk int64) string {
	return fmt.Sprintf("%s/blk%06d", base, blk)
}

func (e *engine) countKey(base string) string { return base + "/count" }

func (e *engine) rankID() int {
	if e.ctx.Rank == nil {
		return 0
	}
	return e.ctx.Rank.Rank()
}

func (e *engine) compute(d time.Duration) {
	e.ctx.Kernel.Compute(d)
}

// BeginStep implements adios2.Engine.
func (e *engine) BeginStep() error { return nil }

// Put implements adios2.Engine.
func (e *engine) Put(v *adios2.Variable, data []byte, mode adios2.PutMode) error {
	if e.mode != adios2.ModeWrite {
		return fmt.Errorf("lsmio plugin: Put on a read engine")
	}
	e.compute(e.cost.PutFixed)
	if mode == adios2.Sync {
		return e.store(v, data)
	}
	e.pending = append(e.pending, pendingPut{v, data})
	return nil
}

// PerformPuts implements adios2.Engine.
func (e *engine) PerformPuts() error {
	for _, p := range e.pending {
		if err := e.store(p.v, p.data); err != nil {
			return err
		}
	}
	e.pending = e.pending[:0]
	return nil
}

// store serializes the typed variable block into a byte value ("a simple
// serialization into a string", §3.1.7) under its own block key.
func (e *engine) store(v *adios2.Variable, data []byte) error {
	n := float64(len(data))
	e.compute(time.Duration(e.cost.SerializePerByte*n) +
		time.Duration(e.cost.ExtraCopyPerByte*n))
	base := e.varKey(v, e.step)
	blk := e.blocks[base]
	e.blocks[base] = blk + 1
	return e.mgr.Put(e.blockKey(base, blk), data)
}

// Get implements adios2.Engine: reassembles the variable's blocks for the
// current step into dst, in block order.
func (e *engine) Get(v *adios2.Variable, dst []byte) error {
	base := e.varKey(v, e.step)
	count, err := e.mgr.GetInt64(e.countKey(base))
	if err != nil {
		return fmt.Errorf("lsmio plugin: variable %q step %d: %w", v.Name, e.step, err)
	}
	pos := 0
	for blk := int64(0); blk < count; blk++ {
		val, err := e.mgr.Get(e.blockKey(base, blk))
		if err != nil {
			return err
		}
		if pos+len(val) > len(dst) {
			return fmt.Errorf("lsmio plugin: Get buffer too small for %q", v.Name)
		}
		e.compute(time.Duration(e.cost.ExtraCopyPerByte * float64(len(val))))
		copy(dst[pos:], val)
		pos += len(val)
	}
	return nil
}

// EndStep implements adios2.Engine.
func (e *engine) EndStep() error {
	if e.mode == adios2.ModeWrite {
		if err := e.PerformPuts(); err != nil {
			return err
		}
		// Persist block counts so readers can reassemble variables.
		for base, n := range e.blocks {
			if err := e.mgr.PutInt64(e.countKey(base), n); err != nil {
				return err
			}
		}
		e.blocks = make(map[string]int64)
	}
	e.step++
	return nil
}

// Close implements adios2.Engine: it performs outstanding puts, persists
// block counts for an unfinished step (applications may PerformPuts and
// Close without EndStep, as the paper's benchmarks do), and calls the
// write barrier implicitly — the paper's end-of-checkpoint contract.
func (e *engine) Close() error {
	if e.mode == adios2.ModeWrite {
		if err := e.PerformPuts(); err != nil {
			return err
		}
		for base, n := range e.blocks {
			if err := e.mgr.PutInt64(e.countKey(base), n); err != nil {
				return err
			}
		}
		e.blocks = make(map[string]int64)
		if err := e.mgr.WriteBarrier(); err != nil {
			return err
		}
	}
	if e.ownsMgr {
		return e.mgr.Close()
	}
	return nil
}
