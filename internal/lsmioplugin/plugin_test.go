package lsmioplugin

import (
	"bytes"
	"testing"

	"lsmio/internal/adios2"
	"lsmio/internal/vfs"
)

func pluginIO(t *testing.T, fs vfs.FS) *adios2.IO {
	t.Helper()
	Register()
	a := adios2.New(adios2.Config{FS: fs})
	io := a.DeclareIO("checkpoint")
	io.SetEngine("plugin")
	io.SetParameter("PluginName", PluginName)
	io.SetParameter("BufferChunkSize", "1048576")
	return io
}

func TestPluginWriteReadRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	io := pluginIO(t, fs)
	v := io.DefineVariable("field", 8, 4096)

	w, err := io.Open("out", adios2.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	for blk := 0; blk < 5; blk++ {
		b := bytes.Repeat([]byte{byte('A' + blk)}, 32<<10)
		payload = append(payload, b...)
		if err := w.Put(v, b, adios2.Deferred); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.PerformPuts(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // implicit write barrier
		t.Fatal(err)
	}

	r, err := io.Open("out", adios2.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	if err := r.Get(v, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("payload corrupted through the plugin")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPluginMultiStep(t *testing.T) {
	fs := vfs.NewMemFS()
	io := pluginIO(t, fs)
	v := io.DefineVariable("x", 1, 1024)
	w, _ := io.Open("steps", adios2.ModeWrite)
	for s := 0; s < 3; s++ {
		w.BeginStep()
		w.Put(v, bytes.Repeat([]byte{byte(s)}, 1024), adios2.Deferred)
		w.EndStep()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := io.Open("steps", adios2.ModeRead)
	for s := 0; s < 3; s++ {
		r.BeginStep()
		dst := make([]byte, 1024)
		if err := r.Get(v, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != byte(s) || dst[1023] != byte(s) {
			t.Fatalf("step %d data mismatch", s)
		}
		r.EndStep()
	}
	r.Close()
}

func TestPluginSyncPut(t *testing.T) {
	fs := vfs.NewMemFS()
	io := pluginIO(t, fs)
	v := io.DefineVariable("x", 1, 16)
	w, _ := io.Open("sync", adios2.ModeWrite)
	if err := w.Put(v, []byte("sync-data-here!!"), adios2.Sync); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := io.Open("sync", adios2.ModeRead)
	dst := make([]byte, 16)
	if err := r.Get(v, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "sync-data-here!!" {
		t.Fatalf("got %q", dst)
	}
	r.Close()
}

func TestPluginGetMissingVariable(t *testing.T) {
	fs := vfs.NewMemFS()
	io := pluginIO(t, fs)
	v := io.DefineVariable("x", 1, 16)
	w, _ := io.Open("empty", adios2.ModeWrite)
	w.Close()
	r, _ := io.Open("empty", adios2.ModeRead)
	if err := r.Get(v, make([]byte, 16)); err == nil {
		t.Fatal("missing variable should error")
	}
	r.Close()
}

func TestPluginRegisteredName(t *testing.T) {
	Register()
	found := false
	for _, n := range adios2.RegisteredPlugins() {
		if n == PluginName {
			found = true
		}
	}
	if !found {
		t.Fatalf("plugin %q not registered", PluginName)
	}
}
