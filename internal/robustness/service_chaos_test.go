package robustness

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/netsim"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/svc"
	"lsmio/internal/vfs"
)

// service_chaos_test.go is the end-to-end service chaos sweep
// (`make svc-chaos`): shard crashes injected at every rebalance phase,
// a fabric partition dropped onto live commits, and a whole-daemon
// kill-and-restart. Two invariants hold throughout:
//
//  1. Every client-acknowledged commit (a Barrier that returned nil) is
//     restorable afterwards, byte-exact.
//  2. No tenant ever sees a non-typed error: everything surfacing from
//     the service maps onto the shared taxonomy (QuotaError,
//     ShardDownError, WriteLossError, resil.ClassError / class
//     markers) — never a raw internal error.

// typedSvcError reports whether err is acceptable for a tenant to see
// under chaos: a typed transient (retry), a canceled deadline (the
// caller's own timeout), or a domain sentinel.
func typedSvcError(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, svc.ErrNotFound) || errors.Is(err, svc.ErrClosed) {
		return true
	}
	switch resil.Classify(err) {
	case resil.ClassTransient, resil.ClassCanceled:
		return true
	}
	return false
}

// chaosTenant drives steps of (put xN, barrier) against an in-process
// tenant handle, retrying typed transient errors, and records which
// steps were acknowledged. Any non-typed error aborts and is reported.
type chaosTenant struct {
	name  string
	acked []int // step numbers whose Barrier returned nil
	fatal error // first non-typed error observed (invariant breach)
}

func (ct *chaosTenant) run(tn *svc.Tenant, steps, blocks int, pause func()) {
	for step := 0; step < steps; step++ {
		for b := 0; b < blocks; b++ {
			if !ct.retry(func() error {
				return tn.Put(svcKey(step, b), svcPayload(0, step, b))
			}, pause) {
				return
			}
		}
		if !ct.retry(tn.Barrier, pause) {
			return
		}
		ct.acked = append(ct.acked, step)
	}
}

// retry drives op to success, pausing between typed transient
// rejections. It returns false on an invariant breach (non-typed
// error) or on retry exhaustion.
func (ct *chaosTenant) retry(op func() error, pause func()) bool {
	for attempt := 0; attempt < 4000; attempt++ {
		err := op()
		if err == nil {
			return true
		}
		if !typedSvcError(err) {
			ct.fatal = fmt.Errorf("tenant %s: non-typed error: %w", ct.name, err)
			return false
		}
		pause()
	}
	ct.fatal = fmt.Errorf("tenant %s: retries exhausted", ct.name)
	return false
}

// rebalancePhases mirrors the hook points fired by Service.Rebalance.
var rebalancePhases = []string{"open", "warm", "fence", "delta", "flip", "cleanup"}

// TestServiceChaosRebalancePhaseCrash crashes shard 0 at every
// rebalance phase in turn (one fresh deployment per phase), with
// tenants committing throughout. The rebalance may abort — it is
// retried once the shard recovers — but acknowledged commits survive
// and only typed errors ever surface.
func TestServiceChaosRebalancePhaseCrash(t *testing.T) {
	const shards, target, tenants, steps, blocks = 3, 4, 3, 4, 6
	for _, phase := range rebalancePhases {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			reg := obs.NewRegistry()
			dumpTraceOnFailure(t, "", reg)
			ffs := make([]*faultfs.FS, target)
			for i := range ffs {
				ffs[i] = faultfs.New(vfs.NewMemFS())
			}
			s, err := svc.New(svc.Options{
				Shards: shards,
				OpenShard: func(i int) (*core.Manager, error) {
					return core.NewManager("store", core.ManagerOptions{
						Store: core.StoreOptions{FS: ffs[i], Async: true},
						Obs:   reg,
					})
				},
				Obs:        reg,
				Supervisor: svc.SupervisorConfig{RestartBackoff: 2 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Crash shard 0 the first time the rebalance reaches the
			// target phase: detach it first (typed errors from then on),
			// then crash its filesystem so unbarriered bytes are really
			// gone when the supervisor's reopen recovers it.
			var once sync.Once
			s.SetRebalanceHook(func(p string) {
				if p != phase {
					return
				}
				once.Do(func() {
					if err := s.CrashShard(0); err != nil {
						t.Errorf("CrashShard: %v", err)
					}
					if err := ffs[0].Crash(); err != nil {
						t.Errorf("fs crash: %v", err)
					}
				})
			})

			cts := make([]*chaosTenant, tenants)
			var wg sync.WaitGroup
			for i := 0; i < tenants; i++ {
				ct := &chaosTenant{name: fmt.Sprintf("tenant%d", i)}
				cts[i] = ct
				wg.Add(1)
				go func() {
					defer wg.Done()
					ct.run(s.Tenant(ct.name), steps, blocks,
						func() { time.Sleep(500 * time.Microsecond) })
				}()
			}

			// Rebalance concurrently; an abort (the crashed shard is a
			// typed failure inside the migration) is retried after the
			// supervisor brings the shard back.
			wg.Add(1)
			var rebErr error
			go func() {
				defer wg.Done()
				for attempt := 0; attempt < 400; attempt++ {
					err := s.Rebalance(target)
					if err == nil {
						return
					}
					if !typedSvcError(err) {
						rebErr = fmt.Errorf("rebalance: non-typed error: %w", err)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				rebErr = errors.New("rebalance never completed")
			}()
			wg.Wait()
			if rebErr != nil {
				t.Fatal(rebErr)
			}
			for _, ct := range cts {
				if ct.fatal != nil {
					t.Fatal(ct.fatal)
				}
			}
			if got := s.Shards(); got != target {
				t.Fatalf("pool at %d shards after rebalance, want %d", got, target)
			}

			// Every acknowledged commit is restorable, byte-exact.
			for _, ct := range cts {
				tn := s.Tenant(ct.name)
				if len(ct.acked) != steps {
					t.Fatalf("%s acked %d/%d steps", ct.name, len(ct.acked), steps)
				}
				for _, step := range ct.acked {
					for b := 0; b < blocks; b++ {
						v, err := tn.Get(svcKey(step, b))
						if err != nil {
							t.Fatalf("%s %s: %v", ct.name, svcKey(step, b), err)
						}
						if !bytes.Equal(v, svcPayload(0, step, b)) {
							t.Fatalf("%s %s: corrupt payload", ct.name, svcKey(step, b))
						}
					}
				}
			}
			if phase != "cleanup" && reg.Snapshot().Counters["svc.supervisor.restarts"] == 0 {
				t.Error("supervisor never restarted the crashed shard")
			}
		})
	}
}

// TestServiceChaosPartitionMidCommit partitions the clients from the
// shard nodes for a window in the middle of a committing run, over a
// front configured with request deadlines and hedged retries. During
// the partition tenants see only typed transient/canceled errors; after
// it heals, every acknowledged commit reads back exactly.
func TestServiceChaosPartitionMidCommit(t *testing.T) {
	const shards, tenants, steps, blocks = 3, 3, 5, 8
	k := sim.NewKernel()
	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })
	dumpTraceOnFailure(t, "", reg)
	cluster := pfs.NewCluster(k, pfs.VikingConfig(tenants+shards))

	// Partition every client from every shard node for [2ms, 50ms) of
	// virtual time — wide enough to straddle several commit steps (a
	// barrier apply alone spends tens of virtual milliseconds in pfs
	// I/O, during which no client<->shard message is in flight).
	plan := netsim.NewPlan()
	clientNodes := make([]int, tenants)
	shardNodes := make([]int, shards)
	for i := range clientNodes {
		clientNodes[i] = i
	}
	for i := range shardNodes {
		shardNodes[i] = tenants + i
	}
	plan.Partition(clientNodes, shardNodes, 2*time.Millisecond, 50*time.Millisecond)
	cluster.Fabric().SetPlan(plan)

	var s *svc.Service
	var front *svc.Front
	var setupErr error
	k.Spawn("setup", func(p *sim.Proc) {
		s, setupErr = svc.New(svc.Options{
			Shards: shards,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager(fmt.Sprintf("svc/shard%03d", i), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:       cluster.Client(tenants + i),
						Platform: lsm.SimPlatform(k),
						Async:    true,
					},
					Kernel: k,
					Obs:    reg,
				})
			},
			Kernel: k,
			Obs:    reg,
		})
		if setupErr != nil {
			return
		}
		// The deadline sits well above steady-state op latency (a
		// barrier apply spends tens of virtual ms in pfs I/O) but still
		// bounds a request wedged behind the partition.
		front = svc.NewFrontOpts(s, cluster.Fabric(), shardNodes, svc.FrontOptions{
			RequestTimeout: 400 * time.Millisecond,
		})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("setup run: %v", err)
	}
	if setupErr != nil {
		t.Fatal(setupErr)
	}

	cts := make([]*chaosTenant, tenants)
	for i := 0; i < tenants; i++ {
		i := i
		ct := &chaosTenant{name: fmt.Sprintf("tenant%d", i)}
		cts[i] = ct
		k.Spawn(ct.name, func(p *sim.Proc) {
			c := front.Connect(ct.name, i)
			for step := 0; step < steps; step++ {
				for b := 0; b < blocks; b++ {
					if !ct.retry(func() error {
						return c.Put(svcKey(step, b), svcPayload(i, step, b))
					}, func() { p.Sleep(300 * time.Microsecond) }) {
						return
					}
				}
				if !ct.retry(c.Barrier, func() { p.Sleep(300 * time.Microsecond) }) {
					return
				}
				ct.acked = append(ct.acked, step)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("load run: %v", err)
	}
	t.Logf("load finished at %v (dropped=%d delayed=%d)", k.Now().Duration(), plan.Dropped(), plan.Delayed())
	for _, ct := range cts {
		if ct.fatal != nil {
			t.Fatal(ct.fatal)
		}
		if len(ct.acked) != steps {
			t.Fatalf("%s acked %d/%d steps", ct.name, len(ct.acked), steps)
		}
	}
	// The partition really bit: the plan dropped traffic mid-run.
	if plan.Dropped() == 0 {
		t.Fatal("fault plan dropped nothing; the partition never engaged")
	}

	var verifyErr error
	k.Spawn("verify", func(p *sim.Proc) {
		for i, ct := range cts {
			c := front.Connect(ct.name, i)
			for _, step := range ct.acked {
				for b := 0; b < blocks; b++ {
					v, err := c.Get(svcKey(step, b))
					if err != nil {
						verifyErr = fmt.Errorf("%s %s: %w", ct.name, svcKey(step, b), err)
						return
					}
					if !bytes.Equal(v, svcPayload(i, step, b)) {
						verifyErr = fmt.Errorf("%s %s: corrupt payload", ct.name, svcKey(step, b))
						return
					}
				}
			}
		}
		verifyErr = s.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("verify run: %v", err)
	}
	if verifyErr != nil {
		t.Fatal(verifyErr)
	}
}

// TestServiceChaosDaemonKillRestart kills the whole daemon — every
// shard's node crashes (unsynced state gone), then the service object
// is torn down — and brings a fresh Service up over the surviving
// storage. Every barriered commit is restorable in the new incarnation,
// and it accepts new commits.
func TestServiceChaosDaemonKillRestart(t *testing.T) {
	const shards, tenants, steps, blocks = 3, 3, 3, 8
	reg := obs.NewRegistry()
	dumpTraceOnFailure(t, "", reg)
	ffs := make([]*faultfs.FS, shards)
	for i := range ffs {
		ffs[i] = faultfs.New(vfs.NewMemFS())
	}
	mfs := vfs.NewMemFS()
	openService := func(reg *obs.Registry) (*svc.Service, error) {
		return svc.New(svc.Options{
			Shards: shards,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager("store", core.ManagerOptions{
					Store: core.StoreOptions{FS: ffs[i], Async: true},
					Obs:   reg,
				})
			},
			Obs:        reg,
			ManifestFS: mfs,
		})
	}
	s, err := openService(reg)
	if err != nil {
		t.Fatal(err)
	}

	cts := make([]*chaosTenant, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		ct := &chaosTenant{name: fmt.Sprintf("tenant%d", i)}
		cts[i] = ct
		wg.Add(1)
		go func() {
			defer wg.Done()
			ct.run(s.Tenant(ct.name), steps, blocks,
				func() { time.Sleep(200 * time.Microsecond) })
		}()
	}
	wg.Wait()
	for _, ct := range cts {
		if ct.fatal != nil {
			t.Fatal(ct.fatal)
		}
		if len(ct.acked) != steps {
			t.Fatalf("%s acked %d/%d steps before the kill", ct.name, len(ct.acked), steps)
		}
	}

	// Unacknowledged tail: written but never barriered — the kill may
	// legally eat it.
	for i := 0; i < tenants; i++ {
		tn := s.Tenant(fmt.Sprintf("tenant%d", i))
		for b := 0; b < blocks/2; b++ {
			if err := tn.Put(svcKey(steps, b), svcPayload(0, steps, b)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Kill: every node loses unsynced state, then the daemon dies. The
	// teardown's flush attempts fail against the crashed filesystems —
	// that is the point: only barriered data may survive.
	for i := range ffs {
		if err := ffs[i].Crash(); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close() // errors expected: the stores are dead

	// Restart the daemon over the surviving storage.
	reg2 := obs.NewRegistry()
	dumpTraceOnFailure(t, "restarted", reg2)
	s2, err := openService(reg2)
	if err != nil {
		t.Fatalf("daemon restart: %v", err)
	}
	defer s2.Close()
	for i, ct := range cts {
		_ = i
		tn := s2.Tenant(ct.name)
		for _, step := range ct.acked {
			for b := 0; b < blocks; b++ {
				v, err := tn.Get(svcKey(step, b))
				if err != nil {
					t.Fatalf("%s %s lost across daemon restart: %v", ct.name, svcKey(step, b), err)
				}
				if !bytes.Equal(v, svcPayload(0, step, b)) {
					t.Fatalf("%s %s corrupt across daemon restart", ct.name, svcKey(step, b))
				}
			}
		}
		// The new incarnation accepts fresh commits.
		if err := tn.Put("post-restart", []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := tn.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
}
