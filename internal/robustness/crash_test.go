// Package robustness sweeps the repository's crash-recovery guarantees
// end-to-end: a workload runs on a recording faultfs wrapper, and for
// every durability boundary the workload crossed, the durable state a
// crash there would leave is materialized and reopened. Recovery must
// never panic and never silently lose an acknowledged-durable write.
package robustness

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/vfs"
)

// lsmOp is one acknowledged mutation of the LSM workload: after boundary
// `after`, key either maps to value (del=false) or is deleted.
type lsmOp struct {
	after int
	key   string
	value string
	del   bool
}

// TestLSMCrashSweep drives a put/overwrite/delete/flush/compact workload
// on a synced WAL and proves that a crash at EVERY durability boundary
// recovers all acknowledged writes — zero panics, zero silent loss.
func TestLSMCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration sweep skipped in -short mode")
	}
	ffs := faultfs.New(vfs.NewMemFS())
	if err := ffs.StartRecording(); err != nil {
		t.Fatal(err)
	}

	opts := lsm.DefaultOptions(ffs)
	opts.Sync = true              // every acked write is WAL-synced
	opts.AsyncFlush = false       // deterministic journal order
	opts.DisableCompaction = true // compaction driven explicitly below
	opts.WriteBufferSize = 4 << 10
	opts.BitsPerKey = 0

	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	dumpTraceOnFailure(t, "", db.Obs())

	var ops []lsmOp
	ack := func(key, value string, del bool) {
		ops = append(ops, lsmOp{after: ffs.Boundaries(), key: key, value: value, del: del})
	}
	put := func(key, value string) {
		if err := db.Put([]byte(key), []byte(value)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		ack(key, value, false)
	}
	del := func(key string) {
		if err := db.Delete([]byte(key)); err != nil {
			t.Fatalf("delete %s: %v", key, err)
		}
		ack(key, "", true)
	}

	// Phase 1: enough puts to roll the memtable (inline flush).
	for i := 0; i < 12; i++ {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d-gen1-%s", i, pad(200)))
	}
	// Phase 2: overwrites and deletes.
	for i := 0; i < 6; i++ {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d-gen2-%s", i, pad(200)))
	}
	del("k07")
	del("k08")
	// Phase 3: explicit flush, more writes, then full compaction.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	put("late0", "after-flush-"+pad(100))
	put("late1", "after-flush-"+pad(100))
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	put("final", "post-compact")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ffs.StopRecording()

	pts := ffs.CrashPoints()
	if len(pts) < 20 {
		t.Fatalf("workload crossed only %d boundaries; sweep too weak", len(pts))
	}
	var sawSync, sawRename bool
	for _, pt := range pts {
		sawSync = sawSync || pt.Op == faultfs.OpSync
		sawRename = sawRename || pt.Op == faultfs.OpRename
	}
	if !sawSync || !sawRename {
		t.Fatalf("sweep misses op classes: sync=%v rename=%v", sawSync, sawRename)
	}

	reopenOpts := opts
	for _, pt := range pts {
		pt := pt
		t.Run(fmt.Sprintf("boundary%03d_%s", pt.Boundary, pt.Op), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic recovering at boundary %d (%s %s): %v",
						pt.Boundary, pt.Op, pt.Path, r)
				}
			}()
			state, err := ffs.StateAfter(pt.Boundary)
			if err != nil {
				t.Fatalf("StateAfter: %v", err)
			}
			// Count ops acknowledged by this boundary; the first op beyond
			// it may be partially applied (its effects are allowed but not
			// required to survive).
			acked := 0
			for acked < len(ops) && ops[acked].after <= pt.Boundary {
				acked++
			}
			o := reopenOpts
			o.FS = state
			o.Platform = nil
			db2, err := lsm.Open("db", o)
			if err != nil {
				if acked > 0 {
					t.Fatalf("clean-open failed with %d acked writes: %v", acked, err)
				}
				// Nothing acknowledged yet: a clean error is acceptable,
				// but Repair must still yield a working (empty-ish) DB.
				if _, rerr := lsm.Repair("db", o); rerr != nil {
					t.Fatalf("repair after early-crash open error (%v): %v", err, rerr)
				}
				db2, err = lsm.Open("db", o)
				if err != nil {
					t.Fatalf("open after repair: %v", err)
				}
			}
			defer db2.Close()
			checkLSMModel(t, db2, ops, acked)
		})
	}
}

// checkLSMModel folds ops[:acked] into the expected map and verifies db
// against it, tolerating exactly the one possibly-in-flight next op.
func checkLSMModel(t *testing.T, db *lsm.DB, ops []lsmOp, acked int) {
	t.Helper()
	expect := map[string]string{}
	dead := map[string]bool{}
	for _, op := range ops[:acked] {
		if op.del {
			delete(expect, op.key)
			dead[op.key] = true
		} else {
			expect[op.key] = op.value
			delete(dead, op.key)
		}
	}
	var next *lsmOp
	if acked < len(ops) {
		next = &ops[acked]
	}
	inFlight := func(key string) bool { return next != nil && next.key == key }

	for key, want := range expect {
		v, err := db.Get([]byte(key))
		if err == nil && string(v) == want {
			continue
		}
		if inFlight(key) {
			if next.del && err == lsm.ErrNotFound {
				continue // the in-flight delete landed
			}
			if !next.del && err == nil && string(v) == next.value {
				continue // the in-flight overwrite landed
			}
		}
		t.Errorf("acked key %s = %q, %v; want %q", key, v, err, want)
	}
	for key := range dead {
		if _, tracked := expect[key]; tracked {
			continue
		}
		v, err := db.Get([]byte(key))
		if err == lsm.ErrNotFound {
			continue
		}
		if inFlight(key) && next != nil && !next.del && err == nil && string(v) == next.value {
			continue
		}
		t.Errorf("acked-deleted key %s resurrected: %q, %v", key, v, err)
	}
}

// ckptStep records one committed checkpoint: its contents and the
// boundary counter at commit acknowledgment.
type ckptStep struct {
	step  int64
	after int
	vars  map[string][]byte
}

// TestCkptCrashSweep drives multiple Begin/Write/Commit checkpoint steps
// through the manager's barrier-then-manifest protocol and proves that a
// crash at EVERY durability boundary restores the newest fully-committed
// step (or a legitimately-durable newer one) with verified contents.
func TestCkptCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration sweep skipped in -short mode")
	}
	ffs := faultfs.New(vfs.NewMemFS())
	if err := ffs.StartRecording(); err != nil {
		t.Fatal(err)
	}

	storeOpts := core.StoreOptions{FS: ffs, WriteBufferSize: 8 << 10}
	mgr, err := core.NewManager("app", core.ManagerOptions{Store: storeOpts})
	if err != nil {
		t.Fatal(err)
	}
	store := ckpt.New(mgr, ckpt.Options{}) // Keep: everything

	var committed []ckptStep
	allSteps := map[int64]map[string][]byte{}
	for step := int64(1); step <= 4; step++ {
		vars := map[string][]byte{
			"temperature": bytes.Repeat([]byte{byte(step)}, 600),
			"pressure":    []byte(fmt.Sprintf("p-step-%d-%s", step, pad(300))),
		}
		allSteps[step] = vars
		c, err := store.Begin(step)
		if err != nil {
			t.Fatalf("begin %d: %v", step, err)
		}
		for name, data := range vars {
			if err := c.Write(name, data); err != nil {
				t.Fatalf("write %d/%s: %v", step, name, err)
			}
		}
		if err := c.Commit(); err != nil {
			t.Fatalf("commit %d: %v", step, err)
		}
		committed = append(committed, ckptStep{step: step, after: ffs.Boundaries(), vars: vars})
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	ffs.StopRecording()

	pts := ffs.CrashPoints()
	if len(pts) < 8 {
		t.Fatalf("workload crossed only %d boundaries; sweep too weak", len(pts))
	}

	for _, pt := range pts {
		pt := pt
		t.Run(fmt.Sprintf("boundary%03d_%s", pt.Boundary, pt.Op), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic restoring at boundary %d (%s %s): %v",
						pt.Boundary, pt.Op, pt.Path, r)
				}
			}()
			state, err := ffs.StateAfter(pt.Boundary)
			if err != nil {
				t.Fatalf("StateAfter: %v", err)
			}
			// Newest step whose Commit was acknowledged by this boundary.
			var wantStep int64
			for _, cs := range committed {
				if cs.after <= pt.Boundary {
					wantStep = cs.step
				}
			}
			o := storeOpts
			o.FS = state
			mgr2, err := core.NewManager("app", core.ManagerOptions{Store: o})
			if err != nil {
				if wantStep != 0 {
					t.Fatalf("manager reopen failed with step %d committed: %v", wantStep, err)
				}
				return // nothing promised yet; clean error is fine
			}
			defer mgr2.Close()
			store2 := ckpt.New(mgr2, ckpt.Options{})
			step, restored, err := store2.RestoreLatest()
			if err != nil {
				if wantStep == 0 && err == ckpt.ErrNoCheckpoint {
					return
				}
				t.Fatalf("RestoreLatest with step %d committed: %v", wantStep, err)
			}
			// A newer, not-yet-acked step may legitimately be durable if
			// the crash fell between its manifest barrier and Commit's
			// return — but never an older one than promised.
			if step < wantStep {
				t.Fatalf("restored step %d, want >= %d (silent rollback)", step, wantStep)
			}
			want, known := allSteps[step]
			if !known {
				t.Fatalf("restored unknown step %d", step)
			}
			if len(restored) != len(want) {
				t.Fatalf("step %d restored %d vars, want %d", step, len(restored), len(want))
			}
			for name, data := range want {
				if !bytes.Equal(restored[name], data) {
					t.Errorf("step %d variable %q corrupted after restore", step, name)
				}
			}
		})
	}
}

// pad returns a deterministic filler string of length n.
func pad(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return string(b)
}
