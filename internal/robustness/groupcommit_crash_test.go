package robustness

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/vfs"
)

// TestGroupCommitCrashSweep extends the crash sweep to the coalesced WAL
// append: several concurrent writers commit multi-key batches through
// the group-commit writer queue (one WAL record and one fsync can cover
// many batches), and a crash at every recorded durability boundary must
// uphold two invariants:
//
//  1. Acked implies durable — a batch whose Apply returned before the
//     boundary is fully visible after recovery, even though its bytes
//     and fsync were shared with cohort peers.
//  2. Batch atomicity — each batch's three keys recover together or not
//     at all; a coalesced record is replayed whole or (torn tail)
//     dropped whole, never split.
//
// A batch that is durable but whose ack the recording missed (its
// covering sync boundary lands just before the ack is noted) may
// legitimately surface after recovery — newer generations than promised
// are fine, older ones are silent loss.
func TestGroupCommitCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration sweep skipped in -short mode")
	}
	const writers, gens = 4, 8

	ffs := faultfs.New(vfs.NewMemFS())
	if err := ffs.StartRecording(); err != nil {
		t.Fatal(err)
	}
	// Stretch each log fsync so the concurrent writers actually pile up
	// behind a leader and cohorts form.
	ffs.AddRule(&faultfs.Rule{
		Op: faultfs.OpSync, Path: ".log",
		Nth: 1, Times: -1,
		Delay: time.Millisecond, DelayOnly: true,
	})

	opts := lsm.DefaultOptions(ffs)
	opts.Sync = true
	opts.DisableCompaction = true
	opts.BitsPerKey = 0
	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	// ackedAt[w][g] is a boundary count recorded after writer w's
	// generation-g batch was acknowledged; the batch's covering sync
	// necessarily happened at or before it.
	ackedAt := make([][]int, writers)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		ackedAt[w] = make([]int, gens+1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := 1; g <= gens; g++ {
				b := lsm.NewBatch()
				for k := 0; k < 3; k++ {
					b.Put(
						[]byte(fmt.Sprintf("w%dk%d", w, k)),
						[]byte(fmt.Sprintf("w%d-gen%03d-%s", w, g, pad(120))),
					)
				}
				if err := db.Apply(b); err != nil {
					t.Errorf("writer %d gen %d: %v", w, g, err)
					return
				}
				mu.Lock()
				ackedAt[w][g] = ffs.Boundaries()
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	stats := db.Stats()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ffs.StopRecording()
	ffs.ClearRules()

	if stats.WALGroupCommits >= int64(writers*gens) {
		t.Fatalf("no coalescing happened (%d leader rounds for %d batches); the sweep would not cover shared records",
			stats.WALGroupCommits, writers*gens)
	}

	pts := ffs.CrashPoints()
	if len(pts) < 20 {
		t.Fatalf("workload crossed only %d boundaries; sweep too weak", len(pts))
	}

	for _, pt := range pts {
		pt := pt
		t.Run(fmt.Sprintf("boundary%03d_%s", pt.Boundary, pt.Op), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic recovering at boundary %d (%s %s): %v",
						pt.Boundary, pt.Op, pt.Path, r)
				}
			}()
			state, err := ffs.StateAfter(pt.Boundary)
			if err != nil {
				t.Fatalf("StateAfter: %v", err)
			}
			o := opts
			o.FS = state
			o.Platform = nil
			anythingPromised := false
			for w := 0; w < writers; w++ {
				if a := ackedAt[w][1]; a != 0 && a <= pt.Boundary {
					anythingPromised = true
				}
			}
			db2, err := lsm.Open("db", o)
			if err != nil {
				// Boundaries inside the initial Open (manifest written,
				// CURRENT not yet) predate any promise; Repair must still
				// produce a working DB.
				if anythingPromised {
					t.Fatalf("reopen failed with acked batches at boundary %d: %v", pt.Boundary, err)
				}
				if _, rerr := lsm.Repair("db", o); rerr != nil {
					t.Fatalf("repair after early-crash open error (%v): %v", err, rerr)
				}
				db2, err = lsm.Open("db", o)
				if err != nil {
					t.Fatalf("open after repair: %v", err)
				}
			}
			defer db2.Close()

			for w := 0; w < writers; w++ {
				// Highest generation this writer had acked by the boundary.
				promised := 0
				for g := 1; g <= gens; g++ {
					if a := ackedAt[w][g]; a != 0 && a <= pt.Boundary {
						promised = g
					}
				}
				// Recover the visible generation of each of the batch's
				// three keys; -1 marks an absent key.
				seen := [3]int{}
				for k := 0; k < 3; k++ {
					v, err := db2.Get([]byte(fmt.Sprintf("w%dk%d", w, k)))
					switch {
					case err == lsm.ErrNotFound:
						seen[k] = -1
					case err != nil:
						t.Fatalf("writer %d key %d: %v", w, k, err)
					default:
						g, perr := parseGen(string(v))
						if perr != nil {
							t.Fatalf("writer %d key %d has corrupt value %q: %v", w, k, v, perr)
						}
						seen[k] = g
					}
				}
				// Atomicity: the three keys were only ever written together.
				if seen[0] != seen[1] || seen[1] != seen[2] {
					t.Fatalf("writer %d batch split by crash: key generations %v", w, seen)
				}
				visible := seen[0]
				if visible == -1 {
					visible = 0
				}
				if visible < promised {
					t.Fatalf("writer %d: acked generation %d rolled back to %d", w, promised, visible)
				}
				if visible > gens {
					t.Fatalf("writer %d: impossible generation %d", w, visible)
				}
			}
		})
	}
}

// parseGen extracts the generation from a "w<N>-gen<GGG>-..." value.
func parseGen(v string) (int, error) {
	i := strings.Index(v, "-gen")
	if i < 0 || len(v) < i+7 {
		return 0, fmt.Errorf("no generation marker")
	}
	return strconv.Atoi(v[i+4 : i+7])
}
